package main

import (
	"strings"
	"testing"
)

func TestStripCPU(t *testing.T) {
	cases := map[string]string{
		"DistributedPruneN256-8":    "DistributedPruneN256",
		"EngineRound/n=1000-16":     "EngineRound/n=1000",
		"DistributedPruneN256":      "DistributedPruneN256",
		"Weird-name":                "Weird-name",
		"Trailing-":                 "Trailing-",
		"FloodRadius/r=4-8":         "FloodRadius/r=4",
		"Mixed/sub-case-with-cpu-4": "Mixed/sub-case-with-cpu",
	}
	for in, want := range cases {
		if got := stripCPU(in); got != want {
			t.Errorf("stripCPU(%q) = %q, want %q", in, got, want)
		}
	}
}

func rec(benches ...Benchmark) *Record {
	return &Record{V: 1, Benchmarks: benches}
}

func TestCompareRecordsAlignsAcrossCPUSuffix(t *testing.T) {
	oldRec := rec(
		Benchmark{Name: "Prune-8", NsPerOp: 100, Metrics: map[string]float64{"B/op": 50, "allocs/op": 10}},
		Benchmark{Name: "OnlyOld-8", NsPerOp: 7},
	)
	newRec := rec(
		Benchmark{Name: "Prune-16", NsPerOp: 40, Metrics: map[string]float64{"B/op": 20, "allocs/op": 4}},
		Benchmark{Name: "OnlyNew-16", NsPerOp: 3},
	)
	rows := compareRecords(oldRec, newRec)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	// Sorted by stripped name: OnlyNew, OnlyOld, Prune.
	if rows[0].Name != "OnlyNew" || rows[0].Old != nil || rows[0].New == nil {
		t.Errorf("row 0: %+v", rows[0])
	}
	if rows[1].Name != "OnlyOld" || rows[1].Old == nil || rows[1].New != nil {
		t.Errorf("row 1: %+v", rows[1])
	}
	if rows[2].Name != "Prune" || rows[2].Old == nil || rows[2].New == nil {
		t.Errorf("row 2: %+v", rows[2])
	}
}

func TestWriteCompareImprovementNoWarning(t *testing.T) {
	rows := compareRecords(
		rec(Benchmark{Name: "Prune-8", NsPerOp: 100, Metrics: map[string]float64{"B/op": 50, "allocs/op": 10}}),
		rec(Benchmark{Name: "Prune-8", NsPerOp: 40, Metrics: map[string]float64{"B/op": 20, "allocs/op": 4}}),
	)
	var out, warn strings.Builder
	if sum := writeCompare(&out, &warn, "old.json", "new.json", rows); sum.Warnings != 0 {
		t.Fatalf("got %d warnings, want 0; stderr:\n%s", sum.Warnings, warn.String())
	}
	text := out.String()
	for _, want := range []string{"Prune", "ns/op", "-60.0%", "B/op", "allocs/op", "PASS: 1 benchmarks compared (0 added, 0 removed)"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestWriteCompareRegressionWarns(t *testing.T) {
	rows := compareRecords(
		rec(Benchmark{Name: "Prune-8", NsPerOp: 100}),
		rec(Benchmark{Name: "Prune-8", NsPerOp: 115}),
	)
	var out, warn strings.Builder
	if sum := writeCompare(&out, &warn, "old.json", "new.json", rows); sum.Warnings != 1 {
		t.Fatalf("got %d warnings, want 1; stderr:\n%s", sum.Warnings, warn.String())
	}
	if !strings.Contains(warn.String(), "ns/op regressed 15.0%") {
		t.Errorf("warning text: %q", warn.String())
	}
	if !strings.Contains(out.String(), "FAIL: 1 metric regression(s)") {
		t.Errorf("summary line missing from:\n%s", out.String())
	}
}

// TestWriteCompareMemoryRegressionWarns: B/op and allocs/op regressions
// warn like timing ones — the CSR-takeover work is largely about
// allocation behavior, so the compare gate must see it move.
func TestWriteCompareMemoryRegressionWarns(t *testing.T) {
	rows := compareRecords(
		rec(Benchmark{Name: "Flood-8", NsPerOp: 100, Metrics: map[string]float64{"B/op": 1000, "allocs/op": 100}}),
		rec(Benchmark{Name: "Flood-8", NsPerOp: 101, Metrics: map[string]float64{"B/op": 1300, "allocs/op": 140}}),
	)
	var out, warn strings.Builder
	if sum := writeCompare(&out, &warn, "old.json", "new.json", rows); sum.Warnings != 2 {
		t.Fatalf("got %d warnings, want 2; stderr:\n%s", sum.Warnings, warn.String())
	}
	for _, want := range []string{"B/op regressed 30.0%", "allocs/op regressed 40.0%"} {
		if !strings.Contains(warn.String(), want) {
			t.Errorf("warning output missing %q:\n%s", want, warn.String())
		}
	}
}

func TestWriteCompareWithinThresholdNoWarning(t *testing.T) {
	rows := compareRecords(
		rec(Benchmark{Name: "Prune-8", NsPerOp: 100}),
		rec(Benchmark{Name: "Prune-8", NsPerOp: 109}),
	)
	var out, warn strings.Builder
	if sum := writeCompare(&out, &warn, "old.json", "new.json", rows); sum.Warnings != 0 {
		t.Fatalf("9%% drift warned: %s", warn.String())
	}
}

// TestWriteCompareCountsOneSidedBenchmarks: benchmarks present in only
// one record must be counted in the summary, and a removed name — one
// that silently left the regression gate — must produce a warning and a
// FAIL summary. Before the fix, one-sided rows were printed but excluded
// from every count, so a rename could drop a benchmark from the gate
// with a PASS summary.
func TestWriteCompareCountsOneSidedBenchmarks(t *testing.T) {
	rows := compareRecords(
		rec(
			Benchmark{Name: "Prune-8", NsPerOp: 100},
			Benchmark{Name: "Gone-8", NsPerOp: 7},
		),
		rec(
			Benchmark{Name: "Prune-8", NsPerOp: 100},
			Benchmark{Name: "Fresh-8", NsPerOp: 3},
		),
	)
	var out, warn strings.Builder
	sum := writeCompare(&out, &warn, "old.json", "new.json", rows)
	if sum.Compared != 1 || sum.Added != 1 || sum.Removed != 1 || sum.Warnings != 0 {
		t.Fatalf("summary = %+v, want {Compared:1 Added:1 Removed:1 Warnings:0}", sum)
	}
	if !strings.Contains(warn.String(), "Gone is in old.json but not new.json") {
		t.Errorf("removed benchmark not warned about: %q", warn.String())
	}
	if strings.Contains(warn.String(), "Fresh") {
		t.Errorf("added benchmark should not warn: %q", warn.String())
	}
	text := out.String()
	for _, want := range []string{
		"only in new.json (added)",
		"only in old.json (removed)",
		"FAIL: 0 metric regression(s)",
		"(1 added, 1 removed)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestWriteCompareAddedOnlyStillPasses: new coverage alone (no removals,
// no regressions) keeps the PASS summary — additions are informational.
func TestWriteCompareAddedOnlyStillPasses(t *testing.T) {
	rows := compareRecords(
		rec(Benchmark{Name: "Prune-8", NsPerOp: 100}),
		rec(
			Benchmark{Name: "Prune-8", NsPerOp: 100},
			Benchmark{Name: "Fresh-8", NsPerOp: 3},
		),
	)
	var out, warn strings.Builder
	sum := writeCompare(&out, &warn, "old.json", "new.json", rows)
	if sum.Removed != 0 || sum.Added != 1 || sum.Warnings != 0 {
		t.Fatalf("summary = %+v, want {Added:1 Removed:0 Warnings:0}", sum)
	}
	if !strings.Contains(out.String(), "PASS: 1 benchmarks compared (1 added, 0 removed)") {
		t.Errorf("summary line missing from:\n%s", out.String())
	}
	if warn.Len() != 0 {
		t.Errorf("added-only compare warned: %q", warn.String())
	}
}
