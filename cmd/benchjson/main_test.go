package main

import (
	"strings"
	"testing"
)

func TestParseTest2JSONStream(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"repro"}`,
		`{"Action":"output","Package":"repro","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"repro","Output":"BenchmarkEngineRound/n=1000-8         \t     796\t   1479493 ns/op\t 1062033 B/op\t   18008 allocs/op\n"}`,
		`{"Action":"output","Package":"repro","Output":"BenchmarkFloodRadius/r=4-8 \t      12\t  95000000 ns/op\n"}`,
		`{"Action":"output","Package":"repro","Output":"PASS\n"}`,
		`{"Action":"pass","Package":"repro"}`,
	}, "\n")
	rec, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rec.Benchmarks))
	}
	// Sorted by name: EngineRound before FloodRadius.
	b := rec.Benchmarks[0]
	if b.Name != "EngineRound/n=1000-8" {
		t.Errorf("name=%q", b.Name)
	}
	if b.Iterations != 796 || b.NsPerOp != 1479493 {
		t.Errorf("iters=%d ns=%v", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["B/op"] != 1062033 || b.Metrics["allocs/op"] != 18008 {
		t.Errorf("metrics=%v", b.Metrics)
	}
	if rec.Benchmarks[1].Metrics != nil {
		t.Errorf("FloodRadius picked up phantom metrics: %v", rec.Benchmarks[1].Metrics)
	}
}

// test2json flushes output as it arrives, so one benchmark result line
// arrives split across several Output events: the bare name announcement,
// then the padded name fragment (no newline), then the numbers. The
// parser must reassemble the fragments and not double-count the
// announcement line.
func TestParseSplitBenchLine(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"run","Package":"repro","Test":"BenchmarkDistributedPruneN256"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkDistributedPruneN256","Output":"BenchmarkDistributedPruneN256\n"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkDistributedPruneN256","Output":"BenchmarkDistributedPruneN256 \t"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkDistributedPruneN256","Output":"       1\t  98338248 ns/op\t43866784 B/op\t  187946 allocs/op\n"}`,
		`{"Action":"output","Package":"repro","Output":"PASS\n"}`,
	}, "\n")
	rec, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	b := rec.Benchmarks[0]
	if b.Name != "DistributedPruneN256" || b.Iterations != 1 || b.NsPerOp != 98338248 {
		t.Errorf("got %+v", b)
	}
	if b.Metrics["B/op"] != 43866784 || b.Metrics["allocs/op"] != 187946 {
		t.Errorf("metrics=%v", b.Metrics)
	}
}

// A final stream fragment with no trailing newline must still be parsed.
func TestParseFlushesUnterminatedLine(t *testing.T) {
	in := `{"Action":"output","Package":"repro","Test":"BenchmarkX","Output":"BenchmarkX-8 \t       3\t  100 ns/op"}`
	rec, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "X-8" {
		t.Fatalf("got %+v", rec.Benchmarks)
	}
}

func TestParsePlainBenchOutput(t *testing.T) {
	in := "goos: linux\nBenchmarkPeelingN4096-8   \t       5\t 240000000 ns/op\nPASS\n"
	rec, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 || rec.Benchmarks[0].Name != "PeelingN4096-8" {
		t.Fatalf("got %+v", rec.Benchmarks)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty input accepted")
	}
}
