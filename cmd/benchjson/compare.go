package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// regressionWarnThreshold is the fractional increase in ns/op, B/op, or
// allocs/op above which compare prints a (non-fatal) regression warning.
const regressionWarnThreshold = 0.10

// compareRow is one benchmark's old-vs-new delta. A nil side means the
// benchmark exists in only one record.
type compareRow struct {
	Name     string
	Old, New *Benchmark
}

// delta returns (new-old)/old for a metric pair; ok is false when the
// base is zero (no relative change is defined).
func delta(oldV, newV float64) (float64, bool) {
	if oldV == 0 { //chordalvet:ignore floatcmp zero base is an exact parsed sentinel, not a computed float
		return 0, false
	}
	return (newV - oldV) / oldV, true
}

// metric returns a benchmark's value for unit and whether the record
// carries it (B/op and allocs/op are absent without -benchmem; ns/op is
// always recorded).
func metric(b *Benchmark, unit string) (float64, bool) {
	if unit == "ns/op" {
		return b.NsPerOp, true
	}
	v, ok := b.Metrics[unit]
	return v, ok
}

// stripCPU removes the -N GOMAXPROCS suffix the testing package appends
// to benchmark names, so records taken on machines with different core
// counts still line up.
func stripCPU(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// compareRecords lines up two records by cpu-stripped benchmark name.
func compareRecords(oldRec, newRec *Record) []compareRow {
	byName := make(map[string]*compareRow)
	var order []string
	add := func(b Benchmark, isNew bool) {
		key := stripCPU(b.Name)
		row := byName[key]
		if row == nil {
			row = &compareRow{Name: key}
			byName[key] = row
			order = append(order, key)
		}
		bc := b
		if isNew {
			row.New = &bc
		} else {
			row.Old = &bc
		}
	}
	for _, b := range oldRec.Benchmarks {
		add(b, false)
	}
	for _, b := range newRec.Benchmarks {
		add(b, true)
	}
	sort.Strings(order)
	rows := make([]compareRow, 0, len(order))
	for _, key := range order {
		rows = append(rows, *byName[key])
	}
	return rows
}

// compareSummary is writeCompare's tally: metric regressions past the
// threshold, benchmarks compared on both sides, and the names present on
// only one side. Added names are new coverage (informational); removed
// names mean a benchmark vanished from the regression gate — usually a
// rename — which runCompare treats as a failure.
type compareSummary struct {
	Warnings int
	Compared int
	Added    int
	Removed  int
}

// writeCompare renders the comparison table to w, any regression or
// coverage warnings to warn, and a one-line PASS/FAIL summary (which
// always counts added/removed names) to w. All three metrics — ns/op,
// B/op, allocs/op — warn past the threshold, so allocation regressions
// are as visible as timing ones; benchmarks present in only one record
// are counted and reported instead of silently dropping out of the
// table.
func writeCompare(w, warn io.Writer, oldName, newName string, rows []compareRow) compareSummary {
	fmt.Fprintf(w, "benchmark comparison: %s -> %s\n", oldName, newName)
	var sum compareSummary
	for _, row := range rows {
		switch {
		case row.Old == nil:
			sum.Added++
			fmt.Fprintf(w, "%-40s only in %s (added)\n", row.Name, newName)
			continue
		case row.New == nil:
			sum.Removed++
			fmt.Fprintf(w, "%-40s only in %s (removed)\n", row.Name, oldName)
			fmt.Fprintf(warn, "benchjson: WARNING: %s is in %s but not %s — it left the regression gate (renamed or deleted?)\n",
				row.Name, oldName, newName)
			continue
		}
		sum.Compared++
		fmt.Fprintf(w, "%s\n", row.Name)
		for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
			ov, oOK := metric(row.Old, unit)
			nv, nOK := metric(row.New, unit)
			if !oOK && !nOK {
				continue // metric absent on both sides (no -benchmem)
			}
			d, ok := delta(ov, nv)
			if !ok {
				fmt.Fprintf(w, "  %-10s %14.0f -> %14.0f\n", unit, ov, nv)
				continue
			}
			fmt.Fprintf(w, "  %-10s %14.0f -> %14.0f  %+7.1f%%\n", unit, ov, nv, 100*d)
			if d > regressionWarnThreshold {
				fmt.Fprintf(warn, "benchjson: WARNING: %s %s regressed %.1f%% (%s -> %s)\n",
					row.Name, unit, 100*d, oldName, newName)
				sum.Warnings++
			}
		}
	}
	if sum.Warnings == 0 && sum.Removed == 0 {
		fmt.Fprintf(w, "PASS: %d benchmarks compared (%d added, %d removed), no metric regressed >%.0f%%\n",
			sum.Compared, sum.Added, sum.Removed, 100*regressionWarnThreshold)
	} else {
		fmt.Fprintf(w, "FAIL: %d metric regression(s) >%.0f%% across %d benchmarks (%d added, %d removed)\n",
			sum.Warnings, 100*regressionWarnThreshold, sum.Compared, sum.Added, sum.Removed)
	}
	return sum
}

func loadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// runCompare implements `benchjson compare OLD.json NEW.json`. Missing
// record files and metric regressions are reported but do not fail the
// run — the metric deltas are a CI trend report, not a gate. Benchmarks
// that disappeared between the records DO fail it (exit 1): a vanished
// name means a benchmark silently left the regression gate, which is
// exactly how a rename would mask a regression. Newly added benchmarks
// are counted but never fatal.
func runCompare(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare OLD.json NEW.json")
		return 2
	}
	oldRec, err := loadRecord(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: skipping comparison:", err)
		return 0
	}
	newRec, err := loadRecord(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: skipping comparison:", err)
		return 0
	}
	sum := writeCompare(os.Stdout, os.Stderr, args[0], args[1], compareRecords(oldRec, newRec))
	if sum.Removed > 0 {
		return 1
	}
	return 0
}
