package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// regressionWarnThreshold is the fractional increase in ns/op, B/op, or
// allocs/op above which compare prints a (non-fatal) regression warning.
const regressionWarnThreshold = 0.10

// compareRow is one benchmark's old-vs-new delta. A nil side means the
// benchmark exists in only one record.
type compareRow struct {
	Name     string
	Old, New *Benchmark
}

// delta returns (new-old)/old for a metric pair; ok is false when the
// base is zero (no relative change is defined).
func delta(oldV, newV float64) (float64, bool) {
	if oldV == 0 { //chordalvet:ignore floatcmp zero base is an exact parsed sentinel, not a computed float
		return 0, false
	}
	return (newV - oldV) / oldV, true
}

// metric returns a benchmark's value for unit and whether the record
// carries it (B/op and allocs/op are absent without -benchmem; ns/op is
// always recorded).
func metric(b *Benchmark, unit string) (float64, bool) {
	if unit == "ns/op" {
		return b.NsPerOp, true
	}
	v, ok := b.Metrics[unit]
	return v, ok
}

// stripCPU removes the -N GOMAXPROCS suffix the testing package appends
// to benchmark names, so records taken on machines with different core
// counts still line up.
func stripCPU(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// compareRecords lines up two records by cpu-stripped benchmark name.
func compareRecords(oldRec, newRec *Record) []compareRow {
	byName := make(map[string]*compareRow)
	var order []string
	add := func(b Benchmark, isNew bool) {
		key := stripCPU(b.Name)
		row := byName[key]
		if row == nil {
			row = &compareRow{Name: key}
			byName[key] = row
			order = append(order, key)
		}
		bc := b
		if isNew {
			row.New = &bc
		} else {
			row.Old = &bc
		}
	}
	for _, b := range oldRec.Benchmarks {
		add(b, false)
	}
	for _, b := range newRec.Benchmarks {
		add(b, true)
	}
	sort.Strings(order)
	rows := make([]compareRow, 0, len(order))
	for _, key := range order {
		rows = append(rows, *byName[key])
	}
	return rows
}

// writeCompare renders the comparison table to w, any regression
// warnings to warn, and a one-line PASS/FAIL summary to w. It returns
// the number of warnings issued. All three metrics — ns/op, B/op,
// allocs/op — warn past the threshold, so allocation regressions are as
// visible as timing ones.
func writeCompare(w, warn io.Writer, oldName, newName string, rows []compareRow) int {
	fmt.Fprintf(w, "benchmark comparison: %s -> %s\n", oldName, newName)
	warnings := 0
	compared := 0
	for _, row := range rows {
		switch {
		case row.Old == nil:
			fmt.Fprintf(w, "%-40s only in %s\n", row.Name, newName)
			continue
		case row.New == nil:
			fmt.Fprintf(w, "%-40s only in %s\n", row.Name, oldName)
			continue
		}
		compared++
		fmt.Fprintf(w, "%s\n", row.Name)
		for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
			ov, oOK := metric(row.Old, unit)
			nv, nOK := metric(row.New, unit)
			if !oOK && !nOK {
				continue // metric absent on both sides (no -benchmem)
			}
			d, ok := delta(ov, nv)
			if !ok {
				fmt.Fprintf(w, "  %-10s %14.0f -> %14.0f\n", unit, ov, nv)
				continue
			}
			fmt.Fprintf(w, "  %-10s %14.0f -> %14.0f  %+7.1f%%\n", unit, ov, nv, 100*d)
			if d > regressionWarnThreshold {
				fmt.Fprintf(warn, "benchjson: WARNING: %s %s regressed %.1f%% (%s -> %s)\n",
					row.Name, unit, 100*d, oldName, newName)
				warnings++
			}
		}
	}
	if warnings == 0 {
		fmt.Fprintf(w, "PASS: %d benchmarks compared, no metric regressed >%.0f%%\n",
			compared, 100*regressionWarnThreshold)
	} else {
		fmt.Fprintf(w, "FAIL: %d metric regression(s) >%.0f%% across %d benchmarks (non-fatal)\n",
			warnings, 100*regressionWarnThreshold, compared)
	}
	return warnings
}

func loadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// runCompare implements `benchjson compare OLD.json NEW.json`. Missing
// record files and regressions are reported but never fail the run: the
// subcommand is a CI trend report, not a gate.
func runCompare(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare OLD.json NEW.json")
		return 2
	}
	oldRec, err := loadRecord(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: skipping comparison:", err)
		return 0
	}
	newRec, err := loadRecord(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: skipping comparison:", err)
		return 0
	}
	writeCompare(os.Stdout, os.Stderr, args[0], args[1], compareRecords(oldRec, newRec))
	return 0
}
