// Command benchjson converts `go test -bench -json` output (the
// test2json stream) into a compact JSON benchmark record, the format of
// the repo's BENCH_*.json perf-trajectory files.
//
// Usage:
//
//	go test -run - -bench 'EngineRound' -benchmem -json | go run ./cmd/benchjson -out BENCH_3.json
//
// Plain (non -json) `go test -bench` output is accepted too: any line
// that is not a test2json event is scanned for benchmark results
// directly.
//
// The compare subcommand diffs two records per benchmark (ns/op, B/op,
// allocs/op), matching names with the -cpu suffix stripped:
//
//	go run ./cmd/benchjson compare BENCH_4.json BENCH_5.json
//
// A >10% regression in ns/op, B/op, or allocs/op prints a warning to
// stderr but keeps exit status 0 — metric deltas are a CI trend line,
// not a gate. A benchmark name present in the old record but missing
// from the new one exits 1: a vanished name has silently left the
// regression gate (usually a rename), which the trend line must not
// paper over. Added names are reported but stay non-fatal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -cpu suffix intact
	// (e.g. "BenchmarkEngineRound/n=1000-8").
	Name string `json:"name"`
	// Iterations is b.N of the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further value/unit pair ("B/op", "allocs/op",
	// and any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole BENCH_*.json document.
type Record struct {
	V          int         `json:"v"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// event is the subset of the test2json schema benchjson needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

func parse(r io.Reader) (*Record, error) {
	rec := &Record{
		V:         1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	// test2json flushes output as it arrives, so one benchmark result can
	// span several Output events (the name in one, the numbers in the
	// next). Reassemble per (package, test) stream and only parse
	// newline-complete lines.
	partial := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return nil, fmt.Errorf("bad test2json line: %w", err)
			}
			if ev.Action != "output" {
				continue
			}
			key := ev.Package + "\x00" + ev.Test
			text := partial[key] + ev.Output
			for {
				nl := strings.IndexByte(text, '\n')
				if nl < 0 {
					break
				}
				if b, ok := parseBenchLine(text[:nl]); ok {
					rec.Benchmarks = append(rec.Benchmarks, b)
				}
				text = text[nl+1:]
			}
			if text == "" {
				delete(partial, key)
			} else {
				partial[key] = text
			}
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Flush streams whose final line had no trailing newline, in sorted
	// key order so the pre-sort append order is deterministic.
	keys := make([]string, 0, len(partial))
	for k := range partial {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if b, ok := parseBenchLine(partial[k]); ok {
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	sort.SliceStable(rec.Benchmarks, func(i, j int) bool {
		return rec.Benchmarks[i].Name < rec.Benchmarks[j].Name
	})
	return rec, nil
}

// parseBenchLine parses one `BenchmarkX-8  N  v1 u1  v2 u2 ...` result
// line, the format specified by the testing package.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			sawNs = true
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	if !sawNs && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}
