// Command chordald-shard is a standalone shard host for the partitioned
// runtime: it dials a coordinator (retrying while the listener comes
// up), announces its shard index, and serves graph sessions and protocol
// rounds until the coordinator shuts it down. cmd/chordal and
// cmd/experiments normally re-execute themselves as shard hosts
// (-partitions), so this binary exists for driving shard hosts
// explicitly — other machines, containers, or debugging one shard under
// a separate process.
//
// Usage:
//
//	chordald-shard -addr 127.0.0.1:4000 -shard 0
//
// The spawn environment variables used by self-execution
// (CHORDALD_SHARD_ADDR / CHORDALD_SHARD_INDEX) work here too and take
// precedence over the flags.
package main

import (
	"flag"
	"fmt"
	"os"

	// Registers the "correction" program so coordinators can run the
	// color-correction choreography on this host; the flood programs
	// register from internal/dist itself.
	_ "repro/internal/core"
	"repro/internal/wire"
)

func main() {
	wire.MaybeShardHost()
	var (
		addr  = flag.String("addr", "", "coordinator address to dial (host:port)")
		shard = flag.Int("shard", -1, "shard index to announce")
	)
	flag.Parse()
	if *addr == "" || *shard < 0 {
		fmt.Fprintln(os.Stderr, "chordald-shard: -addr and -shard are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := wire.RunShard(*addr, *shard); err != nil {
		fmt.Fprintf(os.Stderr, "chordald-shard: shard %d: %v\n", *shard, err)
		os.Exit(1)
	}
}
