package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// TestShippedTreeIsClean is the gate behind `make lint`: the repo's own
// source must produce zero diagnostics from the full analyzer suite.
// Violations either get fixed or carry an explicit chordalvet:ignore
// justification; silent regressions fail CI here.
func TestShippedTreeIsClean(t *testing.T) {
	pkgs, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module tree", len(pkgs))
	}
	diags := analysis.Run(pkgs, analysis.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestListAndBadFlags(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"-run", "("}); got != 2 {
		t.Errorf("run(-run '(') = %d, want 2", got)
	}
	if got := run([]string{"-run", "nosuchanalyzer"}); got != 2 {
		t.Errorf("run(-run nosuchanalyzer) = %d, want 2", got)
	}
}

func TestJSONEncoding(t *testing.T) {
	diags := []analysis.Diagnostic{{
		Pos:      token.Position{Filename: filepath.FromSlash("/mod/pkg/a.go"), Line: 3, Column: 7},
		Analyzer: "hotalloc",
		Message:  "over budget",
	}}
	var buf bytes.Buffer
	if err := writeJSON(&buf, diags, moduleRel(filepath.FromSlash("/mod"))); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var got []finding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	want := finding{File: "pkg/a.go", Line: 3, Column: 7, Analyzer: "hotalloc", Message: "over budget"}
	if len(got) != 1 || got[0] != want {
		t.Errorf("writeJSON = %+v, want [%+v]", got, want)
	}

	// An empty run must still be a JSON array, so the lint-diff baseline
	// for a clean tree is the literal "[]".
	buf.Reset()
	if err := writeJSON(&buf, nil, moduleRel("/")); err != nil {
		t.Fatalf("writeJSON(empty): %v", err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty findings encoded as %q, want []", s)
	}
}

func TestSARIFEncoding(t *testing.T) {
	diags := []analysis.Diagnostic{{
		Pos:      token.Position{Filename: filepath.FromSlash("/mod/pkg/a.go"), Line: 3, Column: 7},
		Analyzer: "goroleak",
		Message:  "no join evidence",
	}}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, analysis.All(), diags, moduleRel(filepath.FromSlash("/mod"))); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if got, want := len(run.Tool.Driver.Rules), len(analysis.All()); got != want {
		t.Errorf("SARIF carries %d rules, want one per analyzer (%d)", got, want)
	}
	if len(run.Results) != 1 {
		t.Fatalf("SARIF has %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "goroleak" || loc.ArtifactLocation.URI != "pkg/a.go" || loc.Region.StartLine != 3 {
		t.Errorf("SARIF result = rule %q uri %q line %d, want goroleak pkg/a.go 3",
			res.RuleID, loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

// TestFlagsOverFixtureModule drives the new flags end to end over the
// hotalloc fixture module, which deliberately contains findings.
func TestFlagsOverFixtureModule(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "analysis", "testdata", "hotalloc")
	sarif := filepath.Join(t.TempDir(), "out.sarif")

	if got := run([]string{"-run", "hotalloc", "-sarif", sarif, fixture}); got != 1 {
		t.Errorf("run(-sarif over hotalloc fixture) = %d, want 1 (fixture has findings)", got)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF file is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("SARIF file has no results for a fixture with findings")
	}
	for _, res := range log.Runs[0].Results {
		uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") || strings.Contains(uri, "\\") {
			t.Errorf("SARIF URI %q is not a module-relative slash path", uri)
		}
	}

	if got := run([]string{"-budgets", fixture}); got != 0 {
		t.Errorf("run(-budgets) = %d, want 0 (informational)", got)
	}
	if got := run([]string{"-sarif", filepath.Join(t.TempDir(), "no", "such", "dir", "x.sarif"), fixture}); got != 2 {
		t.Errorf("run(-sarif into missing dir) = %d, want 2", got)
	}
}

// TestModuleAnalysisUnderBudget is the `make lint-bench` gate: loading,
// type-checking, and analyzing the whole module must finish inside a
// fixed wall-clock budget, so the analyzers stay cheap enough to run on
// every push. Override the budget with CHORDALVET_BENCH_BUDGET (a Go
// duration) when profiling slower machines.
func TestModuleAnalysisUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full module analysis in -short mode")
	}
	budget := 45 * time.Second
	if s := os.Getenv("CHORDALVET_BENCH_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("bad CHORDALVET_BENCH_BUDGET %q: %v", s, err)
		}
		budget = d
	}
	start := time.Now()
	pkgs, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	_ = analysis.Run(pkgs, analysis.All())
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("full-module analysis took %v, over the %v budget", elapsed, budget)
	} else {
		t.Logf("full-module analysis: %v (budget %v)", elapsed, budget)
	}
}

func TestRunOverModuleRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("full module load in -short mode")
	}
	// "../../..." exercises the ./... spelling and the module-root walk.
	if got := run([]string{"-run", "wallclock", "../../..."}); got != 0 {
		t.Errorf("run over module root = %d, want 0", got)
	}
}
