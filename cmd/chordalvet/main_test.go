package main

import (
	"testing"

	"repro/internal/analysis"
)

// TestShippedTreeIsClean is the gate behind `make lint`: the repo's own
// source must produce zero diagnostics from the full analyzer suite.
// Violations either get fixed or carry an explicit chordalvet:ignore
// justification; silent regressions fail CI here.
func TestShippedTreeIsClean(t *testing.T) {
	pkgs, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module tree", len(pkgs))
	}
	diags := analysis.Run(pkgs, analysis.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestListAndBadFlags(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"-run", "("}); got != 2 {
		t.Errorf("run(-run '(') = %d, want 2", got)
	}
	if got := run([]string{"-run", "nosuchanalyzer"}); got != 2 {
		t.Errorf("run(-run nosuchanalyzer) = %d, want 2", got)
	}
}

func TestRunOverModuleRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("full module load in -short mode")
	}
	// "../../..." exercises the ./... spelling and the module-root walk.
	if got := run([]string{"-run", "wallclock", "../../..."}); got != 0 {
		t.Errorf("run over module root = %d, want 0", got)
	}
}
