package main

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
)

// Minimal SARIF 2.1.0 writer for chordalvet findings: one run, one rule
// per analyzer, one result per diagnostic, URIs relative to the module
// root. The schema subset here is what code-scanning UIs consume; no
// external SARIF module is involved (the repo is stdlib-only).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits the findings as a SARIF 2.1.0 log. rel maps absolute
// diagnostic filenames to module-relative slash paths.
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic, rel func(string) string) error {
	driver := sarifDriver{Name: "chordalvet"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: rel(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
