// Command chordalvet runs the repo's determinism and concurrency
// analyzers (internal/analysis) over every package in the module and
// exits nonzero if any diagnostic survives. It is stdlib-only: packages
// are loaded with go/parser and type-checked with go/types against the
// source importer, so the tool needs no compiled export data, no
// network, and no modules beyond this repository.
//
// Usage:
//
//	chordalvet [flags] [dir]
//
// dir is a directory inside the module to vet (default "."); the whole
// module containing it is always loaded, so "./..." is accepted as an
// alias for the module root. Diagnostics can be suppressed per line with
// a `//chordalvet:ignore <analyzers> <reason>` comment (see package
// analysis).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"text/tabwriter"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("chordalvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "run only analyzers whose name matches this regexp")
	verbose := fs.Bool("v", false, "report the packages loaded and analyzers run")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout instead of text")
	sarifOut := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	budgets := fs.Bool("budgets", false, "print hot-path allocation budget usage and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chordalvet: bad -run pattern: %v\n", err)
			return 2
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "chordalvet: -run %q matches no analyzer\n", *only)
			return 2
		}
		analyzers = kept
	}

	dir := "."
	if fs.NArg() > 0 {
		// "./..." and friends mean "the module around here".
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		if dir == "" {
			dir = "."
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chordalvet: %v\n", err)
		return 2
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chordalvet: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "chordalvet: loaded %d packages from %s\n", len(pkgs), root)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "chordalvet: running %s\n", a.Name)
		}
	}
	rel := moduleRel(root)
	if *budgets {
		printBudgets(os.Stdout, analysis.BuildFacts(pkgs), rel)
		return 0
	}
	diags := analysis.Run(pkgs, analyzers)
	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chordalvet: %v\n", err)
			return 2
		}
		werr := writeSARIF(f, analyzers, diags, rel)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "chordalvet: writing SARIF: %v\n", werr)
			return 2
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags, rel); err != nil {
			fmt.Fprintf(os.Stderr, "chordalvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "chordalvet: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRel maps absolute diagnostic filenames to stable module-relative
// slash paths, so JSON/SARIF output is identical across checkouts.
func moduleRel(root string) func(string) string {
	return func(filename string) string {
		if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(filename)
	}
}

// finding is one diagnostic in the machine-readable -json output; the
// lint-diff baseline (scripts/lintdiff.sh) compares arrays of these.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic, rel func(string) string) error {
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     rel(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// printBudgets renders the hot-path allocation accounting as a table:
// one row per //chordalvet:hotpath root with its budget, current usage,
// region size, and the largest per-function contributors.
func printBudgets(w io.Writer, facts *analysis.Facts, rel func(string) string) {
	reports := analysis.HotPathReports(facts)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "HOT ROOT\tWHERE\tBUDGET\tSITES\tFUNCS\tBREAKDOWN")
	for _, r := range reports {
		pos := facts.Graph.Fset.Position(r.Root.Pos)
		budget := fmt.Sprintf("%d", r.Root.Budget)
		if r.Root.Budget < 0 {
			budget = "malformed"
		}
		fmt.Fprintf(tw, "%s\t%s:%d\t%s\t%d\t%d\t%s\n",
			r.Root.Node.Name(), rel(pos.Filename), pos.Line, budget, r.Sites, r.Region, r.Breakdown())
	}
	tw.Flush()
	if len(reports) == 0 {
		fmt.Fprintln(w, "no //chordalvet:hotpath roots in this module")
	}
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
