// Command chordalvet runs the repo's determinism and concurrency
// analyzers (internal/analysis) over every package in the module and
// exits nonzero if any diagnostic survives. It is stdlib-only: packages
// are loaded with go/parser and type-checked with go/types against the
// source importer, so the tool needs no compiled export data, no
// network, and no modules beyond this repository.
//
// Usage:
//
//	chordalvet [flags] [dir]
//
// dir is a directory inside the module to vet (default "."); the whole
// module containing it is always loaded, so "./..." is accepted as an
// alias for the module root. Diagnostics can be suppressed per line with
// a `//chordalvet:ignore <analyzers> <reason>` comment (see package
// analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("chordalvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "run only analyzers whose name matches this regexp")
	verbose := fs.Bool("v", false, "report the packages loaded and analyzers run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chordalvet: bad -run pattern: %v\n", err)
			return 2
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "chordalvet: -run %q matches no analyzer\n", *only)
			return 2
		}
		analyzers = kept
	}

	dir := "."
	if fs.NArg() > 0 {
		// "./..." and friends mean "the module around here".
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		if dir == "" {
			dir = "."
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chordalvet: %v\n", err)
		return 2
	}

	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chordalvet: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "chordalvet: loaded %d packages from %s\n", len(pkgs), root)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "chordalvet: running %s\n", a.Name)
		}
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "chordalvet: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
