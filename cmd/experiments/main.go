// Command experiments regenerates every experiment table from DESIGN.md's
// per-experiment index (E1–E21); EXPERIMENTS.md records a full run.
//
// Usage:
//
//	experiments [-quick] [-only E7,E13]
//	experiments [-quick] -trace out.jsonl [-faults drop=0.2,dup=0.2,delay=2] [-fault-seed 7]
//	experiments [-quick] -trace out.jsonl [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-pprof 127.0.0.1:6060]
//
// With -trace the command runs the round-tracing workload (the full
// distributed coloring of the Figure-1 graph plus flooding and peeling
// on a 10^4-node random chordal graph — 10^3 with -quick) and streams a
// JSONL trace, one event per engine round. Adding -faults switches to
// the fault-injection workload: the spec is
// drop=P,dup=P,delay=D,crash=NODE@ROUND (any subset), the schedule is a
// pure function of -fault-seed, and the trace carries the schema-v2
// fault fields. The profiling flags work with or without -trace; they
// wrap whatever workload the invocation runs.
//
// -metrics runs the same tracing workload with the deep-metrics
// collector (obs schema v3): per-kernel worker spans, phase timeline
// spans, and per-phase heap/GC snapshots, printed as aggregate tables
// on stderr. It works with or without -trace (without, the records stay
// in memory and only the tables appear).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/peel"
	"repro/internal/wire"
)

func main() {
	// When re-executed as a shard host (-partitions spawns copies of this
	// binary), serve the shard and exit before touching flags.
	wire.MaybeShardHost()
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast run")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E7); empty = all")
	trace := flag.String("trace", "", "write a JSONL round trace of the tracing workload to this file (skips the tables)")
	metrics := flag.Bool("metrics", false, "run the tracing workload with deep kernel metrics (worker spans, phase timelines, heap snapshots) and print aggregate tables to stderr (skips the experiment tables)")
	partitions := flag.Int("partitions", 0, "run the -trace workload's message-passing stages on this many shard-host child processes (0 = in-process LOCAL engine; deterministic trace fields are byte-identical)")
	faults := flag.String("faults", "", "fault spec drop=P,dup=P,delay=D,crash=NODE@ROUND for the -trace workload")
	faultSeed := flag.Uint64("fault-seed", 7, "seed of the deterministic fault schedule used by -faults")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for the duration of the run")
	decideWork := flag.Int("decide-workers", 0, "worker count of the pruning decide kernel (0 = GOMAXPROCS, 1 = sequential; tables are bit-identical for every value)")
	workers := flag.Int("workers", 0, "worker count of the pure-compute pipeline stages: peeling path measurement, per-path coloring, MIS components, correction setup (0 = GOMAXPROCS, 1 = sequential; tables are bit-identical for every value)")
	flag.Parse()
	core.DefaultDecideWorkers = *decideWork
	core.DefaultStageWorkers = *workers
	peel.DefaultWorkers = *workers

	if err := run(*quick, *only, *trace, *metrics, *partitions, *faults, *faultSeed, *cpuprofile, *memprofile, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(quick bool, only, trace string, metrics bool, partitions int, faults string, faultSeed uint64, cpuprofile, memprofile, pprofAddr string) error {
	if cpuprofile != "" {
		stop, err := obs.StartCPUProfile(cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if memprofile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if pprofAddr != "" {
		shutdown, bound, err := obs.Serve(pprofAddr, nil)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", bound)
	}

	if faults != "" && trace == "" && !metrics {
		return fmt.Errorf("-faults applies to the tracing workload; pass -trace or -metrics too")
	}
	if partitions > 0 && trace == "" && !metrics {
		return fmt.Errorf("-partitions applies to the tracing workload; pass -trace or -metrics too")
	}
	if trace != "" || metrics {
		c := obs.NewCollector()
		var f *os.File
		if trace != "" {
			var err error
			if f, err = os.Create(trace); err != nil {
				return err
			}
			defer f.Close()
			c.SetTrace(f)
		}
		if metrics {
			c.SetMemStats(true)
		}
		// With -partitions the workload's message-passing stages run on
		// shard-host child processes (copies of this binary, see
		// MaybeShardHost); the partitioner re-sessions the fleet for each
		// graph the workload visits.
		var partFor exp.Partitioner
		if partitions > 0 {
			cluster, err := wire.StartCluster(partitions, wire.SelfSpawn())
			if err != nil {
				return err
			}
			defer func() {
				if err := cluster.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
			}()
			partFor = func(ix *graph.Indexed) (*dist.Partition, error) {
				return cluster.Partition(ix)
			}
		}
		if faults != "" {
			plan, err := dist.ParseFaults(faults, faultSeed)
			if err != nil {
				if dist.IsInactive(err) {
					return fmt.Errorf("-faults %q parses to a schedule that can never fire (all rates zero, no crashes); fix the spec or drop the flag for a fault-free run", faults)
				}
				return err
			}
			if err := exp.FaultTraceRunCollectorPart(c, quick, plan, partFor); err != nil {
				return err
			}
		} else if err := exp.TraceRunCollectorPart(c, quick, partFor); err != nil {
			return err
		}
		if metrics {
			if err := obs.WriteReport(os.Stderr, obs.Summarize(c.Events())); err != nil {
				return err
			}
		}
		if f != nil {
			return f.Close()
		}
		return nil
	}

	if only == "" {
		return exp.All(os.Stdout, quick)
	}
	wanted := make(map[string]bool)
	for _, id := range strings.Split(only, ",") {
		wanted[strings.TrimSpace(strings.ToUpper(id))] = true
	}
	runs := map[string]func(bool) (*exp.Table, error){
		"E1": exp.E1Fig12, "E2": exp.E2Fig34, "E3": exp.E3Fig56,
		"E4": exp.E4PruningLayers, "E5": exp.E5MVCApproximation,
		"E6": exp.E6MVCRounds, "E7": exp.E7ColIntGraph, "E8": exp.E8Recoloring,
		"E9": exp.E9IntervalMIS, "E10": exp.E10IntervalMISRounds,
		"E11": exp.E11ChordalMIS, "E12": exp.E12ChordalMISRounds,
		"E13": exp.E13LowerBound, "E14": exp.E14Baselines,
		"E15": exp.E15LocalViewCoherence, "E16": exp.E16BeyondChordal,
		"E17": exp.E17MessageComplexity, "E18": exp.E18RoundTrace,
		"E19": exp.E19PeelTrace, "E20": exp.E20FaultMatrix,
		"E21": exp.E21RetransFlood,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
		"E20", "E21"}
	for _, id := range order {
		if !wanted[id] {
			continue
		}
		tbl, err := runs[id](quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(os.Stdout)
	}
	return nil
}
