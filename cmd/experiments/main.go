// Command experiments regenerates every experiment table from DESIGN.md's
// per-experiment index (E1–E15); EXPERIMENTS.md records a full run.
//
// Usage:
//
//	experiments [-quick] [-only E7,E13]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast run")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. E1,E7); empty = all")
	flag.Parse()

	if err := run(*quick, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(quick bool, only string) error {
	if only == "" {
		return exp.All(os.Stdout, quick)
	}
	wanted := make(map[string]bool)
	for _, id := range strings.Split(only, ",") {
		wanted[strings.TrimSpace(strings.ToUpper(id))] = true
	}
	runs := map[string]func(bool) (*exp.Table, error){
		"E1": exp.E1Fig12, "E2": exp.E2Fig34, "E3": exp.E3Fig56,
		"E4": exp.E4PruningLayers, "E5": exp.E5MVCApproximation,
		"E6": exp.E6MVCRounds, "E7": exp.E7ColIntGraph, "E8": exp.E8Recoloring,
		"E9": exp.E9IntervalMIS, "E10": exp.E10IntervalMISRounds,
		"E11": exp.E11ChordalMIS, "E12": exp.E12ChordalMISRounds,
		"E13": exp.E13LowerBound, "E14": exp.E14Baselines,
		"E15": exp.E15LocalViewCoherence, "E16": exp.E16BeyondChordal,
		"E17": exp.E17MessageComplexity,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}
	for _, id := range order {
		if !wanted[id] {
			continue
		}
		tbl, err := runs[id](quick)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(os.Stdout)
	}
	return nil
}
