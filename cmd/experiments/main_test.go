package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceAndProfileSmoke is the acceptance path of the observability
// PR: -trace plus -cpuprofile produce a non-empty JSONL trace and a
// non-empty profile.
func TestTraceAndProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace workload is slow")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run(true, "", trace, false, "", 7, cpu, mem, ""); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestOnlySelection(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	if err := run(true, "E18,E19", "", false, "", 7, "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsRequireTrace(t *testing.T) {
	if err := run(true, "", "", false, "drop=0.2", 7, "", "", ""); err == nil {
		t.Error("-faults without -trace accepted")
	}
}

func TestMetricsWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("trace workload is slow")
	}
	// -metrics alone runs the tracing workload with the in-memory
	// collector and the stderr tables; with -trace the v3 records are
	// persisted too.
	if err := run(true, "", "", true, "", 7, "", "", ""); err != nil {
		t.Fatalf("-metrics: %v", err)
	}
	trace := filepath.Join(t.TempDir(), "out.jsonl")
	if err := run(true, "", trace, true, "", 7, "", "", ""); err != nil {
		t.Fatalf("-metrics -trace: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"kind":"kernel"`, `"kind":"phase"`, `"kind":"mem"`} {
		if !strings.Contains(string(data), kind) {
			t.Errorf("metrics trace missing %s records", kind)
		}
	}
}
