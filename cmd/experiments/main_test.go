package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTraceAndProfileSmoke is the acceptance path of the observability
// PR: -trace plus -cpuprofile produce a non-empty JSONL trace and a
// non-empty profile.
func TestTraceAndProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace workload is slow")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run(true, "", trace, "", 7, cpu, mem, ""); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestOnlySelection(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	if err := run(true, "E18,E19", "", "", 7, "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsRequireTrace(t *testing.T) {
	if err := run(true, "", "", "drop=0.2", 7, "", "", ""); err == nil {
		t.Error("-faults without -trace accepted")
	}
}
