package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wire"
)

// TestMain makes the test binary a valid shard host: the partitioned
// tests spawn copies of it via wire.SelfSpawn, exactly as the installed
// binary re-executes itself under -partitions.
func TestMain(m *testing.M) {
	wire.MaybeShardHost()
	os.Exit(m.Run())
}

// TestTraceAndProfileSmoke is the acceptance path of the observability
// PR: -trace plus -cpuprofile produce a non-empty JSONL trace and a
// non-empty profile.
func TestTraceAndProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace workload is slow")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run(true, "", trace, false, 0, "", 7, cpu, mem, ""); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{trace, cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestOnlySelection(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	if err := run(true, "E18, E19", "", false, 0, "", 7, "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsRequireTrace(t *testing.T) {
	if err := run(true, "", "", false, 0, "drop=0.2", 7, "", "", ""); err == nil {
		t.Error("-faults without -trace accepted")
	}
}

func TestPartitionsRequireTrace(t *testing.T) {
	if err := run(true, "", "", false, 2, "", 7, "", "", ""); err == nil {
		t.Error("-partitions without -trace accepted")
	}
}

// TestPartitionedTraceWorkload runs the quick tracing workloads on 2
// shard-host child processes: the cluster re-sessions between the two
// graphs each workload visits, and the traces gain wire_in_b/wire_out_b
// round fields from the metered links.
func TestPartitionedTraceWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	trace := filepath.Join(t.TempDir(), "out.jsonl")
	if err := run(true, "", trace, false, 2, "", 7, "", "", ""); err != nil {
		t.Fatalf("-trace -partitions 2: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"wire_in_b"`) {
		t.Error("partitioned trace has no wire_in_b round fields")
	}
	faulted := filepath.Join(t.TempDir(), "faulted.jsonl")
	if err := run(true, "", faulted, false, 2, "drop=0.2,dup=0.2,delay=2", 7, "", "", ""); err != nil {
		t.Fatalf("-trace -faults -partitions 2: %v", err)
	}
}

func TestMetricsWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("trace workload is slow")
	}
	// -metrics alone runs the tracing workload with the in-memory
	// collector and the stderr tables; with -trace the v3 records are
	// persisted too.
	if err := run(true, "", "", true, 0, "", 7, "", "", ""); err != nil {
		t.Fatalf("-metrics: %v", err)
	}
	trace := filepath.Join(t.TempDir(), "out.jsonl")
	if err := run(true, "", trace, true, 0, "", 7, "", "", ""); err != nil {
		t.Fatalf("-metrics -trace: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"kind":"kernel"`, `"kind":"phase"`, `"kind":"mem"`} {
		if !strings.Contains(string(data), kind) {
			t.Errorf("metrics trace missing %s records", kind)
		}
	}
}
