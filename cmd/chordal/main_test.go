package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wire"
)

// TestMain makes the test binary a valid shard host: the partitioned
// tests spawn copies of it via wire.SelfSpawn, exactly as the installed
// binary re-executes itself under -partitions.
func TestMain(m *testing.M) {
	wire.MaybeShardHost()
	os.Exit(m.Run())
}

func TestRunAlgorithms(t *testing.T) {
	for _, alg := range []string{"color", "mis", "mis-interval", "exact-color",
		"exact-mis", "greedy", "luby", "forest", "check", "color-any", "stats"} {
		genKind := "random"
		if alg == "mis-interval" {
			genKind = "interval"
		}
		if err := run(alg, 0.5, "", "", genKind, 60, 4, 1, 0, "", false, "", 7, "", "", ""); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestRunDistributedAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed runs are slower")
	}
	if err := run("color-dist", 0.7, "", "", "random", 50, 4, 2, 0, "", false, "", 7, "", "", ""); err != nil {
		t.Errorf("color-dist: %v", err)
	}
	if err := run("mis-dist", 0.8, "", "", "random", 40, 4, 2, 0, "", false, "", 7, "", "", ""); err != nil {
		t.Errorf("mis-dist: %v", err)
	}
}

func TestRunTraceAndProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed runs are slower")
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run("color-dist", 0.7, "", "", "random", 50, 4, 2, 0, trace, false, "", 7, cpu, mem, ""); err != nil {
		t.Fatalf("traced color-dist: %v", err)
	}
	for _, p := range []string{trace, cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunMetrics(t *testing.T) {
	// -metrics without -trace: the collector stays in memory and only
	// the stderr tables appear; the runs must succeed for both the
	// centralized and distributed pipelines.
	if err := run("color", 0.5, "", "", "random", 60, 4, 1, 0, "", true, "", 7, "", "", ""); err != nil {
		t.Errorf("color -metrics: %v", err)
	}
	if err := run("mis", 0.5, "", "", "random", 60, 4, 1, 0, "", true, "", 7, "", "", ""); err != nil {
		t.Errorf("mis -metrics: %v", err)
	}
	if testing.Short() {
		return
	}
	// -metrics with -trace persists the v3 records for cmd/tracestat.
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run("color-dist", 0.7, "", "", "random", 50, 4, 2, 0, trace, true, "", 7, "", "", ""); err != nil {
		t.Fatalf("color-dist -metrics -trace: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"kind":"kernel"`, `"kind":"phase"`, `"kind":"mem"`} {
		if !strings.Contains(string(data), kind) {
			t.Errorf("metrics trace missing %s records", kind)
		}
	}
}

func TestRunGenerateAndLoad(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.json")
	if err := run("gen", 0.5, "", file, "random", 30, 4, 3, 0, "", false, "", 7, "", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatal(err)
	}
	if err := run("color", 0.5, file, "", "", 0, 0, 0, 0, "", false, "", 7, "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 0.5, "", "", "random", 10, 3, 1, 0, "", false, "", 7, "", "", ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("color", 0.5, "", "", "nope", 10, 3, 1, 0, "", false, "", 7, "", "", ""); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := run("color", 0.5, "/does/not/exist.json", "", "", 0, 0, 0, 0, "", false, "", 7, "", "", ""); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestRunAllGenerators(t *testing.T) {
	for _, kind := range []string{"random", "interval", "tree", "path", "ktree"} {
		if err := run("check", 0.5, "", "", kind, 40, 3, 4, 0, "", false, "", 7, "", "", ""); err != nil {
			t.Errorf("generator %s: %v", kind, err)
		}
	}
}

func TestRunRecognize(t *testing.T) {
	if err := run("recognize", 0.5, "", "", "interval", 40, 4, 2, 0, "", false, "", 7, "", "", ""); err != nil {
		t.Fatal(err)
	}
	// Non-interval input is rejected cleanly.
	if err := run("recognize", 0.5, "", "", "random", 60, 4, 3, 0, "", false, "", 7, "", "", ""); err == nil {
		t.Log("random chordal happened to be interval; acceptable")
	}
}

func TestRunPartitioned(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	// The full distributed pipelines on 2 shard-host child processes;
	// results are verified by the same reportColoring/reportMIS checks as
	// the LOCAL runs (and byte-identity is pinned by the cross-check
	// suites in internal/core and internal/wire).
	if err := run("color-dist", 0.7, "", "", "random", 50, 4, 2, 2, "", false, "", 7, "", "", ""); err != nil {
		t.Errorf("color-dist -partitions 2: %v", err)
	}
	if err := run("mis-dist", 0.8, "", "", "random", 40, 4, 2, 2, "", false, "", 7, "", "", ""); err != nil {
		t.Errorf("mis-dist -partitions 2: %v", err)
	}
	// Partitioned runs accept ParseFaults-built schedules too.
	if err := run("color-dist", 0.7, "", "", "random", 50, 4, 2, 2, "", false, "dup=0.2,delay=2", 7, "", "", ""); err != nil {
		t.Errorf("color-dist -partitions 2 under dup+delay: %v", err)
	}
	// -partitions on a non-distributed algorithm is a usage error.
	if err := run("color", 0.5, "", "", "random", 30, 4, 1, 2, "", false, "", 7, "", "", ""); err == nil {
		t.Error("-partitions accepted for a centralized algorithm")
	}
}

func TestRunFaultFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed runs are slower")
	}
	// Absorbable faults (duplication + delay) leave the distributed
	// coloring correct; the run must succeed.
	if err := run("color-dist", 0.7, "", "", "random", 50, 4, 2, 0, "", false, "dup=0.2, delay=2", 7, "", "", ""); err != nil {
		t.Errorf("color-dist under dup+delay: %v", err)
	}
	// -faults on a non-distributed algorithm is a usage error.
	if err := run("color", 0.5, "", "", "random", 30, 4, 1, 0, "", false, "dup=0.2", 7, "", "", ""); err == nil {
		t.Error("-faults accepted for a centralized algorithm")
	}
	// A malformed spec is rejected before any work happens.
	if err := run("color-dist", 0.7, "", "", "random", 30, 4, 1, 0, "", false, "dorp=0.2", 7, "", "", ""); err == nil {
		t.Error("malformed -faults spec accepted")
	}
}
