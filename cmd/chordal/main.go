// Command chordal runs the paper's algorithms on a chordal graph loaded
// from a JSON file ({"nodes": [...], "edges": [[u,v], ...]}) or generated
// on the fly, and prints the result plus quality statistics.
//
// Usage:
//
//	chordal -alg color     -eps 0.25 -in graph.json
//	chordal -alg color-dist -eps 0.5 -gen random -n 200 -seed 7
//	chordal -alg color-dist -eps 0.5 -gen random -n 200 -trace run.jsonl -cpuprofile cpu.pprof
//	chordal -alg mis        -eps 0.25 -gen interval -n 500
//	chordal -alg forest     -in graph.json
//	chordal -alg gen        -gen random -n 100 -out graph.json
//
// The distributed algorithms (color-dist, mis-dist) accept -trace to
// stream a JSONL round trace of every engine run, and -faults to attach
// a deterministic fault schedule (drop=P,dup=P,delay=D,crash=NODE@ROUND,
// seeded by -fault-seed) to those runs — duplication and delay are
// absorbed, drops and crashes surface as diagnosable errors;
// -cpuprofile, -memprofile, and -pprof profile any invocation.
//
// -metrics attaches the deep-metrics collector (obs schema v3) to the
// paper pipelines (color, color-dist, mis, mis-dist): per-kernel
// worker spans, phase timeline spans, and per-phase heap/GC snapshots,
// printed as aggregate tables on stderr after the run. Combine with
// -trace to persist the records for cmd/tracestat; metrics never change
// the computed result.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/peel"
	"repro/internal/verify"
	"repro/internal/wire"
)

func main() {
	// When re-executed as a shard host (-partitions spawns copies of this
	// binary), serve the shard and exit before touching flags.
	wire.MaybeShardHost()
	var (
		alg        = flag.String("alg", "color", "algorithm: color | color-dist | color-any | stats | recognize | mis | mis-dist | mis-interval | exact-color | exact-mis | greedy | luby | forest | check | gen")
		eps        = flag.Float64("eps", 0.25, "approximation parameter ε")
		in         = flag.String("in", "", "input graph JSON (omit to generate)")
		out        = flag.String("out", "", "output file for -alg gen (default stdout)")
		genKind    = flag.String("gen", "random", "generator when -in absent: random | interval | tree | path | ktree")
		n          = flag.Int("n", 200, "generated graph size")
		maxClique  = flag.Int("maxclique", 5, "generator clique-size parameter")
		seed       = flag.Int64("seed", 1, "generator seed")
		trace      = flag.String("trace", "", "write a JSONL round trace (color-dist and mis-dist only)")
		metrics    = flag.Bool("metrics", false, "collect deep kernel metrics (worker spans, phase timelines, heap snapshots) and print aggregate tables to stderr; works with color, color-dist, mis, mis-dist")
		partitions = flag.Int("partitions", 0, "run the message-passing phases on this many shard-host child processes (color-dist and mis-dist only; 0 = in-process LOCAL engine; results are byte-identical)")
		faults     = flag.String("faults", "", "fault spec drop=P,dup=P,delay=D,crash=NODE@ROUND (color-dist and mis-dist only)")
		faultSeed  = flag.Uint64("fault-seed", 7, "seed of the deterministic fault schedule used by -faults")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address for the duration of the run")
		decideWork = flag.Int("decide-workers", 0, "worker count of the pruning decide kernel (0 = GOMAXPROCS, 1 = sequential; outputs are bit-identical for every value)")
		workers    = flag.Int("workers", 0, "worker count of the pure-compute pipeline stages: peeling path measurement, per-path coloring, MIS components, correction setup (0 = GOMAXPROCS, 1 = sequential; outputs are bit-identical for every value)")
	)
	flag.Parse()
	core.DefaultDecideWorkers = *decideWork
	core.DefaultStageWorkers = *workers
	peel.DefaultWorkers = *workers

	if err := run(*alg, *eps, *in, *out, *genKind, *n, *maxClique, *seed, *partitions,
		*trace, *metrics, *faults, *faultSeed, *cpuprofile, *memprofile, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "chordal:", err)
		os.Exit(1)
	}
}

func run(alg string, eps float64, in, out, genKind string, n, maxClique int, seed int64, partitions int,
	trace string, metrics bool, faults string, faultSeed uint64, cpuprofile, memprofile, pprofAddr string) error {
	if cpuprofile != "" {
		stop, err := obs.StartCPUProfile(cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "chordal:", err)
			}
		}()
	}
	if memprofile != "" {
		defer func() {
			if err := obs.WriteHeapProfile(memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "chordal:", err)
			}
		}()
	}
	if pprofAddr != "" {
		shutdown, bound, err := obs.Serve(pprofAddr, nil)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", bound)
	}
	// The observer is nil unless -trace or -metrics is given, so plain
	// runs keep the engine's zero-cost fast path.
	var observer dist.RoundObserver
	var collector *obs.Collector
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		defer f.Close()
		collector = obs.NewCollector()
		collector.SetTrace(f)
	}
	if metrics {
		if collector == nil {
			collector = obs.NewCollector()
		}
		collector.SetMemStats(true)
	}
	if collector != nil {
		observer = collector
		defer func() {
			// Finish closes the last phase span (and flushes its opt-in
			// mem snapshot) before the trace file's deferred Close runs.
			if err := collector.Finish(); err != nil {
				fmt.Fprintln(os.Stderr, "chordal: trace:", err)
			}
			if metrics {
				if err := obs.WriteReport(os.Stderr, obs.Summarize(collector.Events())); err != nil {
					fmt.Fprintln(os.Stderr, "chordal: metrics:", err)
				}
			}
		}()
	}

	// The fault plan is nil unless -faults is given, so unfaulted runs
	// keep the engine's zero-cost delivery path.
	var faultPlan *dist.Faults
	if faults != "" {
		if alg != "color-dist" && alg != "mis-dist" {
			return fmt.Errorf("-faults applies to the distributed algorithms (color-dist, mis-dist)")
		}
		var err error
		if faultPlan, err = dist.ParseFaults(faults, faultSeed); err != nil {
			if dist.IsInactive(err) {
				return fmt.Errorf("-faults %q parses to a schedule that can never fire (all rates zero, no crashes); fix the spec or drop the flag for a fault-free run", faults)
			}
			return err
		}
	}

	g, err := loadOrGenerate(in, genKind, n, maxClique, seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d chordal=%v\n", g.NumNodes(), g.NumEdges(), chordal.IsChordal(g))

	// The partition is nil unless -partitions is given; the distributed
	// pipelines then host the graph on shard-host child processes (copies
	// of this binary, see MaybeShardHost) instead of the LOCAL engine.
	var part *dist.Partition
	if partitions > 0 {
		if alg != "color-dist" && alg != "mis-dist" {
			return fmt.Errorf("-partitions applies to the distributed algorithms (color-dist, mis-dist)")
		}
		cluster, err := wire.StartCluster(partitions, wire.SelfSpawn())
		if err != nil {
			return err
		}
		defer func() {
			if err := cluster.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "chordal:", err)
			}
		}()
		if part, err = cluster.Partition(graph.NewIndexed(g)); err != nil {
			return err
		}
	}

	switch alg {
	case "gen":
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return g.WriteJSON(w)

	case "check":
		if !chordal.IsChordal(g) {
			return fmt.Errorf("graph is not chordal")
		}
		omega, err := chordal.CliqueNumber(g)
		if err != nil {
			return err
		}
		alpha, err := chordal.IndependenceNumber(g)
		if err != nil {
			return err
		}
		fmt.Printf("χ = ω = %d, α = %d\n", omega, alpha)
		return nil

	case "stats":
		degeneracy, _ := g.Degeneracy()
		fmt.Printf("Δ = %d, degeneracy = %d, components = %d, diameter = %d\n",
			g.MaxDegree(), degeneracy, len(g.Components()), g.Diameter())
		if chordal.IsChordal(g) {
			omega, err := chordal.CliqueNumber(g)
			if err != nil {
				return err
			}
			alpha, err := chordal.IndependenceNumber(g)
			if err != nil {
				return err
			}
			fmt.Printf("chordal: χ = ω = %d (degeneracy+1 = %d), α = %d, interval = %v\n",
				omega, degeneracy+1, alpha, interval.IsInterval(g))
		}
		return nil

	case "recognize":
		path, model, err := interval.Recognize(g)
		if err != nil {
			return err
		}
		fmt.Printf("interval graph: %d maximal cliques in consecutive order\n", len(path))
		for _, iv := range model[:min(10, len(model))] {
			fmt.Printf("  node %d ↦ [%.0f, %.0f]\n", iv.Node, iv.Lo, iv.Hi)
		}
		if len(model) > 10 {
			fmt.Printf("  … %d more\n", len(model)-10)
		}
		return nil

	case "forest":
		f, err := cliquetree.New(g)
		if err != nil {
			return err
		}
		fmt.Printf("clique forest: %d maximal cliques, %d edges, %d components, linear=%v\n",
			f.NumVertices(), len(f.Edges()), len(f.Components()), f.IsLinear())
		for _, e := range f.Edges() {
			fmt.Printf("  %v -- %v\n", f.Clique(e[0]), f.Clique(e[1]))
		}
		return nil

	case "color":
		if collector != nil {
			collector.SetPhase("color")
		}
		res, err := core.ColorChordalObserved(g, eps, observer)
		if err != nil {
			return err
		}
		return reportColoring(g, res.Colors, res.Omega, res.Palette, 0)

	case "color-dist":
		var peelTrace func(peel.LayerEvent)
		if collector != nil {
			peelTrace = collector.PeelTrace()
		}
		var res *core.ChordalColoring
		if part != nil {
			res, err = core.ColorChordalDistributedFaultyPart(g, eps, observer, peelTrace, faultPlan, part)
		} else {
			res, err = core.ColorChordalDistributedFaulty(g, eps, observer, peelTrace, faultPlan)
		}
		if err != nil {
			return err
		}
		return reportColoring(g, res.Colors, res.Omega, res.Palette, res.Rounds)

	case "color-any":
		// Future-work pipeline (paper Section 9): triangulate, then color.
		tri, fill := chordal.FillIn(g)
		res, err := core.ColorChordal(tri, eps)
		if err != nil {
			return err
		}
		fmt.Printf("triangulation added %d fill edges\n", len(fill))
		return reportColoring(g, res.Colors, res.Omega, res.Palette, 0)

	case "mis-dist":
		var peelTrace func(peel.LayerEvent)
		if collector != nil {
			peelTrace = collector.PeelTrace()
		}
		var res *core.ChordalMISResult
		if part != nil {
			res, err = core.MISChordalDistributedFaultyPart(g, eps, observer, peelTrace, faultPlan, part)
		} else {
			res, err = core.MISChordalDistributedFaulty(g, eps, observer, peelTrace, faultPlan)
		}
		if err != nil {
			return err
		}
		return reportMIS(g, res.Set, res.Rounds)

	case "exact-color":
		colors, err := chordal.OptimalColoring(g)
		if err != nil {
			return err
		}
		used, err := verify.Coloring(g, colors)
		if err != nil {
			return err
		}
		fmt.Printf("optimal coloring: %d colors\n", used)
		return nil

	case "mis":
		if collector != nil {
			collector.SetPhase("mis")
		}
		res, err := core.MISChordalWithOptions(g, eps, core.ChordalMISOptions{Observer: observer})
		if err != nil {
			return err
		}
		return reportMIS(g, res.Set, res.Rounds)

	case "mis-interval":
		idBound := maxID(g) + 1
		res, err := core.MISInterval(g, eps, idBound)
		if err != nil {
			return err
		}
		return reportMIS(g, res.Set, res.Rounds)

	case "exact-mis":
		is, err := chordal.MaximumIndependentSet(g)
		if err != nil {
			return err
		}
		fmt.Printf("maximum independent set: %d nodes\n", len(is))
		return nil

	case "greedy":
		colors := baseline.GreedyColoring(g)
		used, err := verify.Coloring(g, colors)
		if err != nil {
			return err
		}
		fmt.Printf("greedy coloring: %d colors (Δ+1 = %d)\n", used, g.MaxDegree()+1)
		return nil

	case "luby":
		is, rounds, err := baseline.LubyMIS(g, seed)
		if err != nil {
			return err
		}
		return reportMIS(g, is, rounds)

	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
}

func loadOrGenerate(in, genKind string, n, maxClique int, seed int64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadJSON(f)
	}
	switch genKind {
	case "random":
		return gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: maxClique, AttachFull: 0.4}, seed), nil
	case "interval":
		return gen.RandomInterval(n, float64(n)/5, 3, seed), nil
	case "tree":
		return gen.Tree(n, seed), nil
	case "path":
		return gen.Path(n), nil
	case "ktree":
		return gen.KTree(n, maxClique, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", genKind)
	}
}

func reportColoring(g *graph.Graph, colors map[graph.ID]int, omega, palette, rounds int) error {
	used, err := verify.Coloring(g, colors)
	if err != nil {
		return fmt.Errorf("illegal coloring produced: %w", err)
	}
	fmt.Printf("coloring: %d colors, χ = %d, guarantee ≤ %d, ratio = %.4f\n",
		used, omega, palette, float64(used)/float64(omega))
	if rounds > 0 {
		fmt.Printf("LOCAL rounds: %d\n", rounds)
	}
	return nil
}

func reportMIS(g *graph.Graph, is graph.Set, rounds int) error {
	if err := verify.IndependentSet(g, is); err != nil {
		return fmt.Errorf("dependent set produced: %w", err)
	}
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		return err
	}
	fmt.Printf("independent set: %d nodes, α = %d, ratio = %.4f\n",
		len(is), alpha, float64(alpha)/float64(len(is)))
	if rounds > 0 {
		fmt.Printf("LOCAL rounds: %d\n", rounds)
	}
	return nil
}

func maxID(g *graph.Graph) int {
	max := 0
	for _, v := range g.Nodes() {
		if int(v) > max {
			max = int(v)
		}
	}
	return max
}
