package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// deterministicFields lists the fields of a round/layer record that are
// pure functions of (graph, protocol, seed, fault plan) — exactly the
// fields canonical mode keeps, plus run/round identity. Timings, shard
// schedules, t_ns, and the wire_in_b/wire_out_b transport counters of
// partitioned runs describe the hardware/deployment and are excluded,
// as are the v3 kernel/phase/mem measurement records entirely, so diff
// answers "did the computation diverge", never "did the machine (or
// process layout) differ" — a LOCAL trace and a partitioned trace of
// the same inputs diff clean.
var deterministicFields = []struct {
	name string
	get  func(ev obs.Event) any
}{
	{"kind", func(ev obs.Event) any { return ev.Kind }},
	{"phase", func(ev obs.Event) any { return ev.Phase }},
	{"run", func(ev obs.Event) any { return ev.Run }},
	{"round", func(ev obs.Event) any { return ev.Round }},
	{"nodes", func(ev obs.Event) any { return ev.Nodes }},
	{"messages", func(ev obs.Event) any { return ev.Messages }},
	{"volume", func(ev obs.Event) any { return ev.Volume }},
	{"done", func(ev obs.Event) any { return ev.Done }},
	{"max_inbox", func(ev obs.Event) any { return ev.MaxInbox }},
	{"dropped", func(ev obs.Event) any { return ev.Dropped }},
	{"duplicated", func(ev obs.Event) any { return ev.Duplicated }},
	{"dead_letters", func(ev obs.Event) any { return ev.DeadLetters }},
	{"stall", func(ev obs.Event) any { return ev.Stall }},
	{"crashed", func(ev obs.Event) any { return fmt.Sprint(ev.Crashed) }},
	{"pendant_paths", func(ev obs.Event) any { return ev.PendantPaths }},
	{"internal_paths", func(ev obs.Event) any { return ev.InternalPaths }},
	{"nodes_peeled", func(ev obs.Event) any { return ev.NodesPeeled }},
	{"forest_cliques", func(ev obs.Event) any { return ev.ForestCliques }},
	{"remaining", func(ev obs.Event) any { return ev.Remaining }},
}

// deterministicRecords filters a trace down to the records diff
// compares: round and layer events.
func deterministicRecords(events []obs.Event) []obs.Event {
	var out []obs.Event
	for _, ev := range events {
		if ev.Kind == obs.KindRound || ev.Kind == obs.KindLayer {
			out = append(out, ev)
		}
	}
	return out
}

// diffTraces locates the first diverging deterministic record of two
// traces. The returned description names the record's position, phase,
// run, round, and every differing field with both values; empty when
// the traces agree.
func diffTraces(a, b []obs.Event) (diverged bool, desc string) {
	da, db := deterministicRecords(a), deterministicRecords(b)
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		var diffs []string
		for _, f := range deterministicFields {
			va, vb := f.get(da[i]), f.get(db[i])
			if va != vb {
				diffs = append(diffs, fmt.Sprintf("%s: %v vs %v", f.name, va, vb))
			}
		}
		if len(diffs) > 0 {
			desc = fmt.Sprintf("record %d (kind %q, phase %q, run %d, round %d) diverges:",
				i, da[i].Kind, da[i].Phase, da[i].Run, da[i].Round)
			for _, d := range diffs {
				desc += "\n  " + d
			}
			return true, desc
		}
	}
	if len(da) != len(db) {
		longer, name := da, "A"
		if len(db) > len(da) {
			longer, name = db, "B"
		}
		ev := longer[n]
		return true, fmt.Sprintf(
			"record counts differ: %d vs %d deterministic records; first extra record in %s is %d (kind %q, phase %q, run %d, round %d)",
			len(da), len(db), name, n, ev.Kind, ev.Phase, ev.Run, ev.Round)
	}
	return false, ""
}

// runDiff loads both traces and prints either the first divergence
// (exit 1) or a match summary (exit 0).
func runDiff(pathA, pathB string, w io.Writer) (int, error) {
	load := func(path string) ([]obs.Event, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		events, err := readEvents(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return events, nil
	}
	a, err := load(pathA)
	if err != nil {
		return 2, err
	}
	b, err := load(pathB)
	if err != nil {
		return 2, err
	}
	diverged, desc := diffTraces(a, b)
	if diverged {
		fmt.Fprintf(w, "%s vs %s: %s\n", pathA, pathB, desc)
		return 1, nil
	}
	fmt.Fprintf(w, "%s vs %s: %d deterministic records, no divergence\n",
		pathA, pathB, len(deterministicRecords(a)))
	return 0, nil
}
