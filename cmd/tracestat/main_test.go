package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// fakeClock advances one microsecond per reading; atomic because shard
// hooks read the clock from worker goroutines.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	var ticks atomic.Int64
	return func() time.Time {
		return base.Add(time.Duration(ticks.Add(1)) * time.Microsecond)
	}
}

// pipelineTrace runs the observed coloring+MIS pipeline on one seed and
// returns the JSONL trace bytes.
func pipelineTrace(t *testing.T, seed int64, metrics bool) []byte {
	t.Helper()
	g := gen.RandomChordal(200, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
	var buf bytes.Buffer
	c := obs.NewCollector()
	c.SetClock(fakeClock())
	c.SetTrace(&buf)
	if metrics {
		c.SetMemStats(true)
	}
	c.SetPhase("color")
	if _, err := core.ColorChordalDistributedObserved(g, 0.5, c, c.PeelTrace()); err != nil {
		t.Fatalf("color: %v", err)
	}
	c.SetPhase("mis")
	if _, err := core.MISChordalWithOptions(g, 0.5, core.ChordalMISOptions{Observer: c}); err != nil {
		t.Fatalf("mis: %v", err)
	}
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	return buf.Bytes()
}

func TestCheckAcceptsPipelineTrace(t *testing.T) {
	trace := pipelineTrace(t, 1, true)
	if problems := checkTrace(bytes.NewReader(trace)); len(problems) != 0 {
		t.Fatalf("pipeline trace has problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckFlagsProblems(t *testing.T) {
	cases := []struct {
		name  string
		trace string
		want  string
	}{
		{"bad json", `{"v":3,"kind":"round"}` + "\n{not json}\n", "not valid JSON"},
		{"unknown kind", `{"v":3,"kind":"mystery","run":0,"round":0}` + "\n", `unknown kind "mystery"`},
		{"mixed schema", `{"v":3,"kind":"round","run":0,"round":0}` + "\n" +
			`{"v":2,"kind":"round","run":0,"round":1}` + "\n", "trace opened with v=3"},
		{"schema out of range", `{"v":99,"kind":"round","run":0,"round":0}` + "\n", "outside [1,"},
		{"non-monotone rounds", `{"v":3,"kind":"round","phase":"p","run":0,"round":1}` + "\n" +
			`{"v":3,"kind":"round","phase":"p","run":0,"round":1}` + "\n", "not monotone"},
		{"kernel shape", `{"v":3,"kind":"kernel","kernel":"decide","shards":2,"busy_ns":[1],"items":[1]}` + "\n", "busy/items have"},
		{"empty", "", "trace is empty"},
	}
	for _, tc := range cases {
		problems := checkTrace(strings.NewReader(tc.trace))
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v, want one containing %q", tc.name, problems, tc.want)
		}
	}
	// Distinct (phase, run) keys each get their own monotone sequence.
	ok := `{"v":3,"kind":"round","phase":"p","run":0,"round":0}
{"v":3,"kind":"round","phase":"p","run":0,"round":1}
{"v":3,"kind":"round","phase":"p","run":1,"round":0}
{"v":3,"kind":"round","phase":"q","run":0,"round":0}
`
	if problems := checkTrace(strings.NewReader(ok)); len(problems) != 0 {
		t.Errorf("per-run round restart misflagged: %v", problems)
	}
}

func TestDiffSameSeedClean(t *testing.T) {
	// Same seed, one run with metrics on: the measurement records differ
	// wildly but the deterministic records must not.
	a, err := readEvents(bytes.NewReader(pipelineTrace(t, 7, false)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := readEvents(bytes.NewReader(pipelineTrace(t, 7, true)))
	if err != nil {
		t.Fatal(err)
	}
	if diverged, desc := diffTraces(a, b); diverged {
		t.Fatalf("same-seed traces diverged:\n%s", desc)
	}
}

func TestDiffDifferentSeedsLocatesDivergence(t *testing.T) {
	a, err := readEvents(bytes.NewReader(pipelineTrace(t, 7, false)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := readEvents(bytes.NewReader(pipelineTrace(t, 8, false)))
	if err != nil {
		t.Fatal(err)
	}
	diverged, desc := diffTraces(a, b)
	if !diverged {
		t.Fatal("different seeds did not diverge")
	}
	// The description must carry the acceptance-criteria context:
	// which record, its phase/round identity, and the differing field.
	for _, want := range []string{"phase", "round", "vs"} {
		if !strings.Contains(desc, want) {
			t.Errorf("divergence description missing %q:\n%s", want, desc)
		}
	}
}

func TestDiffFieldAndLengthDivergence(t *testing.T) {
	base := []obs.Event{
		{V: 3, Kind: obs.KindRound, Phase: "p", Run: 0, Round: 0, Messages: 10},
		{V: 3, Kind: obs.KindRound, Phase: "p", Run: 0, Round: 1, Messages: 5},
	}
	mut := []obs.Event{
		{V: 3, Kind: obs.KindRound, Phase: "p", Run: 0, Round: 0, Messages: 10},
		{V: 3, Kind: obs.KindRound, Phase: "p", Run: 0, Round: 1, Messages: 6},
	}
	diverged, desc := diffTraces(base, mut)
	if !diverged || !strings.Contains(desc, "messages: 5 vs 6") {
		t.Errorf("field divergence: diverged=%v desc=%q", diverged, desc)
	}
	short := base[:1]
	diverged, desc = diffTraces(base, short)
	if !diverged || !strings.Contains(desc, "record counts differ") {
		t.Errorf("length divergence: diverged=%v desc=%q", diverged, desc)
	}
	// Timings and v3 measurement records never count as divergence.
	noisy := []obs.Event{
		{V: 3, Kind: obs.KindKernel, Phase: "p", Kernel: "decide", Shards: 1, BusyNS: []int64{9}, Items: []int64{4}},
		{V: 3, Kind: obs.KindRound, Phase: "p", Run: 0, Round: 0, Messages: 10, WallNS: 999, TNS: 5, Shards: 4, BusyNS: []int64{1, 2, 3, 4}},
		{V: 3, Kind: obs.KindRound, Phase: "p", Run: 0, Round: 1, Messages: 5, WallNS: 111},
		{V: 3, Kind: obs.KindPhase, Phase: "p", Runs: 1, Rounds: 2, WallNS: 1234},
	}
	if diverged, desc := diffTraces(base, noisy); diverged {
		t.Errorf("timing noise flagged as divergence:\n%s", desc)
	}
}

func TestReportOnPipelineTrace(t *testing.T) {
	events, err := readEvents(bytes.NewReader(pipelineTrace(t, 3, true)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteReport(&buf, obs.Summarize(events)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PHASES", "KERNELS", "MEM", "color", "mis", "peel-measure", "mis-components", "schema v3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestChromeExport(t *testing.T) {
	events, err := readEvents(bytes.NewReader(pipelineTrace(t, 3, true)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		cats[ev.Cat]++
		if ev.Ph == "X" && ev.Dur <= 0 {
			t.Errorf("complete event %q has dur=%v", ev.Name, ev.Dur)
		}
	}
	for _, cat := range []string{"phase", "round", "kernel", "shard", "mem"} {
		if cats[cat] == 0 {
			t.Errorf("no %q events in export (cats=%v)", cat, cats)
		}
	}
}

func TestReadEventsReportsLine(t *testing.T) {
	_, err := readEvents(strings.NewReader("{\"v\":3,\"kind\":\"round\"}\nnope\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err=%v, want a line-2 parse error", err)
	}
}
