// Command tracestat analyzes the JSONL traces the obs Collector writes
// (schema v1–v3): offline aggregate tables, trace validation for CI,
// structural diffing of two traces, and Chrome trace-event export.
//
// Usage:
//
//	tracestat report [trace.jsonl]   per-phase and per-kernel tables
//	tracestat check  [trace.jsonl…]  validate structure; exit 1 on problems
//	tracestat diff   A B             first diverging deterministic record
//	tracestat chrome [trace.jsonl]   chrome://tracing JSON to stdout
//
// report and chrome read stdin when no file is given. diff compares only
// the deterministic fields of round/layer records — timings, shard
// schedules, and the v3 kernel/phase/mem measurement records are
// ignored — so two same-seed runs diff clean regardless of machine,
// worker count, or whether -metrics was on.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	exit := 0
	switch cmd {
	case "report":
		err = withInput(args, func(r io.Reader, name string) error {
			events, rerr := readEvents(r)
			if rerr != nil {
				return fmt.Errorf("%s: %w", name, rerr)
			}
			return obs.WriteReport(os.Stdout, obs.Summarize(events))
		})
	case "check":
		exit, err = runCheck(args, os.Stdout)
	case "diff":
		if len(args) != 2 {
			err = fmt.Errorf("diff needs exactly two trace files")
			break
		}
		exit, err = runDiff(args[0], args[1], os.Stdout)
	case "chrome":
		err = withInput(args, func(r io.Reader, name string) error {
			events, rerr := readEvents(r)
			if rerr != nil {
				return fmt.Errorf("%s: %w", name, rerr)
			}
			return writeChrome(os.Stdout, events)
		})
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tracestat: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat %s: %v\n", cmd, err)
		os.Exit(2)
	}
	os.Exit(exit)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tracestat report [trace.jsonl]   per-phase and per-kernel tables
  tracestat check  [trace.jsonl...]  validate structure; exit 1 on problems
  tracestat diff   A B             first diverging deterministic record
  tracestat chrome [trace.jsonl]   chrome://tracing JSON to stdout
`)
}

// withInput runs fn on the named file, or stdin when args is empty.
func withInput(args []string, fn func(r io.Reader, name string) error) error {
	if len(args) == 0 {
		return fn(os.Stdin, "stdin")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f, args[0])
}

// readEvents decodes a JSONL trace. A parse failure reports its line.
func readEvents(r io.Reader) ([]obs.Event, error) {
	var events []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// runCheck validates each named trace (stdin when none), printing one
// line per problem. Exit status 1 when any trace has problems.
func runCheck(args []string, w io.Writer) (int, error) {
	if len(args) == 0 {
		args = []string{"-"}
	}
	exit := 0
	for _, name := range args {
		var r io.Reader = os.Stdin
		if name != "-" {
			f, err := os.Open(name)
			if err != nil {
				return 2, err
			}
			defer f.Close()
			r = f
		}
		problems := checkTrace(r)
		if len(problems) == 0 {
			fmt.Fprintf(w, "%s: ok\n", name)
			continue
		}
		exit = 1
		for _, p := range problems {
			fmt.Fprintf(w, "%s: %s\n", name, p)
		}
	}
	return exit, nil
}

// checkTrace runs the satellite's validation pass over one trace:
// every line parses, the schema version is consistent across records,
// kinds are known, and round numbers are strictly monotone within each
// (phase, run) for round records and each phase for layer records.
func checkTrace(r io.Reader) []string {
	var problems []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line, records := 0, 0
	schemaV := 0
	type key struct {
		kind  string
		phase string
		run   int
	}
	lastRound := make(map[key]int)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			problems = append(problems, fmt.Sprintf("line %d: empty line", line))
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			problems = append(problems, fmt.Sprintf("line %d: not valid JSON: %v", line, err))
			continue
		}
		records++
		if ev.V < 1 || ev.V > obs.SchemaVersion {
			problems = append(problems, fmt.Sprintf("line %d: schema v=%d outside [1,%d]", line, ev.V, obs.SchemaVersion))
		} else if schemaV == 0 {
			schemaV = ev.V
		} else if ev.V != schemaV {
			problems = append(problems, fmt.Sprintf("line %d: schema v=%d, but the trace opened with v=%d", line, ev.V, schemaV))
		}
		switch ev.Kind {
		case obs.KindRound, obs.KindLayer:
			k := key{ev.Kind, ev.Phase, ev.Run}
			if prev, ok := lastRound[k]; ok && ev.Round <= prev {
				problems = append(problems, fmt.Sprintf(
					"line %d: %s round %d not monotone (phase %q run %d, previous %d)",
					line, ev.Kind, ev.Round, ev.Phase, ev.Run, prev))
			}
			lastRound[k] = ev.Round
		case obs.KindKernel:
			if ev.Kernel == "" {
				problems = append(problems, fmt.Sprintf("line %d: kernel record without a kernel name", line))
			}
			if len(ev.BusyNS) != ev.Shards || len(ev.Items) != ev.Shards {
				problems = append(problems, fmt.Sprintf(
					"line %d: kernel %q shards=%d but busy/items have %d/%d entries",
					line, ev.Kernel, ev.Shards, len(ev.BusyNS), len(ev.Items)))
			}
		case obs.KindPhase, obs.KindMem:
			// No structural invariants beyond parsing.
		default:
			problems = append(problems, fmt.Sprintf("line %d: unknown kind %q", line, ev.Kind))
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	if records == 0 && len(problems) == 0 {
		problems = append(problems, "trace is empty")
	}
	return problems
}
