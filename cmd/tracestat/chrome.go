package main

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// chrome://tracing and Perfetto load). Timestamps and durations are in
// microseconds; "X" is a complete event, "C" a counter sample.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	tidPhases  = 0
	tidRounds  = 1
	tidKernels = 2
	// Per-worker shard lanes start here: tidShard0+s is worker s.
	tidShard0 = 10
)

func us(ns int64) float64 { return float64(ns) / 1e3 }

// writeChrome exports a trace as Chrome trace-event JSON. Phase spans,
// engine rounds, and kernel launches each get a lane, and every
// kernel's per-worker shard spans fan out onto per-worker lanes — the
// visual form of the imbalance tables. Records without timing offsets
// (v1/v2 or canonical traces) contribute nothing; mem snapshots become
// counter samples.
func writeChrome(w io.Writer, events []obs.Event) error {
	var out []chromeEvent
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindPhase:
			if ev.WallNS <= 0 {
				continue
			}
			out = append(out, chromeEvent{
				Name: ev.Phase, Cat: "phase", Ph: "X",
				TS: us(ev.TNS), Dur: us(ev.WallNS), PID: 1, TID: tidPhases,
				Args: map[string]any{
					"runs": ev.Runs, "rounds": ev.Rounds,
					"messages": ev.Messages, "volume": ev.Volume,
					"p50_ns": ev.P50NS, "p99_ns": ev.P99NS,
				},
			})
		case obs.KindRound:
			if ev.WallNS <= 0 {
				continue
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("%s r%d", ev.Phase, ev.Round), Cat: "round", Ph: "X",
				TS: us(ev.TNS), Dur: us(ev.WallNS), PID: 1, TID: tidRounds,
				Args: map[string]any{
					"run": ev.Run, "messages": ev.Messages,
					"volume": ev.Volume, "done": ev.Done,
				},
			})
		case obs.KindKernel:
			if ev.WallNS <= 0 {
				continue
			}
			out = append(out, chromeEvent{
				Name: ev.Kernel, Cat: "kernel", Ph: "X",
				TS: us(ev.TNS), Dur: us(ev.WallNS), PID: 1, TID: tidKernels,
				Args: map[string]any{"shards": ev.Shards, "items": ev.Nodes},
			})
			for s, busy := range ev.BusyNS {
				if busy <= 0 || s >= len(ev.ShardStartNS) || ev.ShardStartNS[s] <= 0 {
					continue
				}
				var items int64
				if s < len(ev.Items) {
					items = ev.Items[s]
				}
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("%s/s%d", ev.Kernel, s), Cat: "shard", Ph: "X",
					TS: us(ev.ShardStartNS[s]), Dur: us(busy), PID: 1, TID: tidShard0 + s,
					Args: map[string]any{"items": items},
				})
			}
		case obs.KindMem:
			out = append(out, chromeEvent{
				Name: "heap", Cat: "mem", Ph: "C",
				TS: us(ev.TNS), PID: 1, TID: tidPhases,
				Args: map[string]any{
					"heap_alloc_b": ev.HeapAllocB, "heap_objects": ev.HeapObjects,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     out,
	})
}
