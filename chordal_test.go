package chordal

import (
	"testing"
)

func TestPublicAPIColorAndMIS(t *testing.T) {
	g := RandomChordalGraph(300, 5, 1)
	if !IsChordal(g) {
		t.Fatal("generator produced non-chordal graph")
	}
	omega, err := ChromaticNumber(g)
	if err != nil {
		t.Fatal(err)
	}
	coloring, err := Color(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	used, err := VerifyColoring(g, coloring.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > coloring.Palette {
		t.Fatalf("used %d > palette %d (χ=%d)", used, coloring.Palette, omega)
	}

	alpha, err := IndependenceNumber(g)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := MaxIndependentSet(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIndependentSet(g, mis.Set); err != nil {
		t.Fatal(err)
	}
	if float64(alpha) > 1.4*float64(len(mis.Set))+1e-9 {
		t.Fatalf("|I| = %d, α = %d", len(mis.Set), alpha)
	}
}

func TestPublicAPIIntervalRoutines(t *testing.T) {
	g, ivs := RandomIntervalGraph(300, 80, 3, 2)
	ic, err := ColorInterval(ivs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyColoring(g, ic.Colors); err != nil {
		t.Fatal(err)
	}
	im, err := MaxIndependentSetInterval(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIndependentSet(g, im.Set); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExactBaselines(t *testing.T) {
	g := RandomChordalGraph(100, 4, 3)
	colors, err := OptimalColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	used, err := VerifyColoring(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	omega, err := ChromaticNumber(g)
	if err != nil {
		t.Fatal(err)
	}
	if used != omega {
		t.Fatalf("optimal coloring used %d colors, χ = %d", used, omega)
	}
	is, err := MaximumIndependentSetExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIndependentSet(g, is); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICliqueForest(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}, {1, 3}, {3, 4}})
	f, err := NewCliqueForest(g)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVertices() != 2 {
		t.Fatalf("expected 2 maximal cliques, got %d", f.NumVertices())
	}
	if _, err := NewCliqueForest(FromEdges(nil, [][2]ID{{1, 2}, {2, 3}, {3, 4}, {4, 1}})); err == nil {
		t.Fatal("C4 must be rejected")
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	g := RandomChordalGraph(60, 4, 4)
	cc, err := ColorDistributed(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Rounds <= 0 {
		t.Fatal("no round count")
	}
	if _, err := VerifyColoring(g, cc.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIIntervalRecognition(t *testing.T) {
	g, _ := RandomIntervalGraph(150, 40, 3, 5)
	if !IsIntervalGraph(g) {
		t.Fatal("random interval graph rejected")
	}
	model, err := RecognizeInterval(g)
	if err != nil {
		t.Fatal(err)
	}
	if !FromIntervals(model).Equal(g) {
		t.Fatal("recognized model does not realize the graph")
	}
	ic, err := ColorIntervalGraph(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	used, err := VerifyColoring(g, ic.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > ic.Palette {
		t.Fatalf("used %d > palette %d", used, ic.Palette)
	}
	// A chordal non-interval graph is rejected.
	claw := FromEdges(nil, [][2]ID{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}})
	if IsIntervalGraph(claw) {
		t.Fatal("subdivided claw accepted")
	}
}

func TestPublicAPIBeyondChordal(t *testing.T) {
	g := NewGraph()
	for _, e := range [][2]ID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} { // C4
		g.AddEdge(e[0], e[1])
	}
	if IsChordal(g) {
		t.Fatal("C4 reported chordal")
	}
	tri, fill := Chordalize(g)
	if !IsChordal(tri) || len(fill) != 1 {
		t.Fatalf("triangulating C4: chordal=%v fill=%d", IsChordal(tri), len(fill))
	}
	cc, err := ColorAny(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyColoring(g, cc.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMISDistributed(t *testing.T) {
	g := RandomChordalGraph(50, 4, 9)
	res, err := MaxIndependentSetDistributed(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIndependentSet(g, res.Set); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds reported")
	}
}
