// Package chordal is the public API of this reproduction of
// Konrad & Zamaraev, "Distributed Minimum Vertex Coloring and Maximum
// Independent Set in Chordal Graphs" (PODC 2018 / arXiv:1805.04544).
//
// It exposes deterministic (1+ε)-approximation algorithms for Minimum
// Vertex Coloring (Theorems 3–4) and Maximum Independent Set
// (Theorems 5–8) on chordal and interval graphs, in both centralized form
// and as simulated LOCAL-model distributed algorithms with round
// accounting, together with the supporting machinery: chordality
// recognition, clique forests (Section 3), exact baselines, and graph
// generators.
//
// Quickstart:
//
//	g := chordal.RandomChordalGraph(1000, 5, 42)
//	coloring, err := chordal.Color(g, 0.25)        // ≤ (1+ε)χ colors
//	mis, err := chordal.MaxIndependentSet(g, 0.25) // ≥ α/(1+ε) nodes
package chordal

import (
	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/interval"
)

// Graph is an undirected simple graph over integer node IDs.
type Graph = graph.Graph

// ID identifies a node.
type ID = graph.ID

// Set is a sorted set of node IDs.
type Set = graph.Set

// Interval is a closed interval on the line, used for interval-graph
// models.
type Interval = gen.Interval

// Coloring is the result of the approximate chordal coloring.
type Coloring = core.ChordalColoring

// IntervalColoring is the result of the approximate interval coloring.
type IntervalColoring = core.IntervalColoring

// MISResult is the result of the approximate chordal MIS.
type MISResult = core.ChordalMISResult

// IntervalMISResult is the result of the approximate interval MIS.
type IntervalMISResult = core.IntervalMISResult

// CliqueForest is the canonical clique forest of a chordal graph
// (Section 3 of the paper).
type CliqueForest = cliquetree.Forest

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// FromEdges builds a graph from explicit nodes and edges.
func FromEdges(nodes []ID, edges [][2]ID) *Graph { return graph.FromEdges(nodes, edges) }

// FromIntervals returns the intersection graph of the given intervals.
func FromIntervals(ivs []Interval) *Graph { return gen.FromIntervals(ivs) }

// RandomChordalGraph returns a connected random chordal graph on n nodes
// with clique number at most maxClique+1.
func RandomChordalGraph(n, maxClique int, seed int64) *Graph {
	return gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: maxClique, AttachFull: 0.4}, seed)
}

// RandomIntervalGraph returns a random interval graph together with its
// interval model.
func RandomIntervalGraph(n int, span, maxLen float64, seed int64) (*Graph, []Interval) {
	ivs := gen.RandomIntervals(n, span, maxLen, seed)
	return gen.FromIntervals(ivs), ivs
}

// IsChordal reports whether g is chordal.
func IsChordal(g *Graph) bool { return chordal.IsChordal(g) }

// ChromaticNumber returns χ(g) (= ω(g)) of a chordal graph.
func ChromaticNumber(g *Graph) (int, error) { return chordal.CliqueNumber(g) }

// IndependenceNumber returns α(g) of a chordal graph.
func IndependenceNumber(g *Graph) (int, error) { return chordal.IndependenceNumber(g) }

// OptimalColoring returns an exact minimum coloring of a chordal graph
// (the centralized baseline the approximation is measured against).
func OptimalColoring(g *Graph) (map[ID]int, error) { return chordal.OptimalColoring(g) }

// MaximumIndependentSetExact returns an exact maximum independent set of a
// chordal graph (Gavril's algorithm).
func MaximumIndependentSetExact(g *Graph) (Set, error) {
	return chordal.MaximumIndependentSet(g)
}

// MaximumWeightIndependentSet returns an exact maximum-weight independent
// set of a chordal graph with non-negative weights (Frank's two-pass
// algorithm over a perfect elimination ordering) and its total weight.
func MaximumWeightIndependentSet(g *Graph, weight map[ID]int) (Set, int, error) {
	return chordal.MaximumWeightIndependentSet(g, weight)
}

// NewCliqueForest computes the canonical clique forest of a chordal graph:
// the unique maximum-weight spanning forest of the weighted clique
// intersection graph under the paper's tie-breaking order.
func NewCliqueForest(g *Graph) (*CliqueForest, error) { return cliquetree.New(g) }

// Color computes a (1+ε)-approximate minimum vertex coloring of a chordal
// graph with the paper's centralized Algorithm 1. The guarantee
// ⌊(1+1/k)χ⌋+1 ≤ (1+ε)χ holds for ε ≥ 2/χ(g) (Theorem 3).
func Color(g *Graph, eps float64) (*Coloring, error) { return core.ColorChordal(g, eps) }

// ColorDistributed runs the distributed Algorithm 2 in a simulated LOCAL
// network: the pruning phase is executed with genuine message passing and
// per-node local views of the clique forest, and the result reports the
// LOCAL round count, which is O((1/ε)·log n) (Theorem 4).
func ColorDistributed(g *Graph, eps float64) (*Coloring, error) {
	return core.ColorChordalDistributed(g, eps)
}

// ColorInterval computes a (1+ε)-approximate coloring of an interval
// graph from its model, using the reimplementation of the
// Halldórsson–Konrad ColIntGraph routine the paper builds on.
func ColorInterval(ivs []Interval, eps float64) (*IntervalColoring, error) {
	g := gen.FromIntervals(ivs)
	path := interval.CliquePathFromModel(ivs)
	idBound := 1
	for _, v := range g.Nodes() {
		if int(v) >= idBound {
			idBound = int(v) + 1
		}
	}
	return core.ColIntGraph(g, path, core.EffectiveK(eps), idBound)
}

// RecognizeInterval tests whether g is an interval graph and returns an
// interval model realizing it (Gilmore–Hoffman: chordal + transitively
// orientable complement). The returned model can drive ColorInterval
// without geometric input.
func RecognizeInterval(g *Graph) ([]Interval, error) {
	_, model, err := interval.Recognize(g)
	return model, err
}

// IsIntervalGraph reports whether g is an interval graph.
func IsIntervalGraph(g *Graph) bool { return interval.IsInterval(g) }

// ColorIntervalGraph is the model-free variant of ColorInterval: it
// recognizes g as an interval graph (constructing a model) and colors it.
func ColorIntervalGraph(g *Graph, eps float64) (*IntervalColoring, error) {
	path, _, err := interval.Recognize(g)
	if err != nil {
		return nil, err
	}
	idBound := 1
	for _, v := range g.Nodes() {
		if int(v) >= idBound {
			idBound = int(v) + 1
		}
	}
	return core.ColIntGraph(g, path, core.EffectiveK(eps), idBound)
}

// MaxIndependentSet computes a (1+ε)-approximate maximum independent set
// of a chordal graph (Algorithm 6, Theorems 7–8), for ε ∈ (0, 1).
func MaxIndependentSet(g *Graph, eps float64) (*MISResult, error) {
	return core.MISChordal(g, eps)
}

// MaxIndependentSetDistributed runs Algorithm 6 with the pruning phase
// executed by genuine message passing in the simulated LOCAL network
// (Theorem 8); the result reports the LOCAL round count.
func MaxIndependentSetDistributed(g *Graph, eps float64) (*MISResult, error) {
	return core.MISChordalDistributed(g, eps)
}

// MaxIndependentSetInterval computes a (1+ε)-approximate maximum
// independent set of an interval graph (Algorithm 5, Theorems 5–6).
func MaxIndependentSetInterval(g *Graph, eps float64) (*IntervalMISResult, error) {
	idBound := 1
	for _, v := range g.Nodes() {
		if int(v) >= idBound {
			idBound = int(v) + 1
		}
	}
	return core.MISInterval(g, eps, idBound)
}

// Chordalize returns a chordal supergraph of g (a triangulation via
// minimum-degree fill-in) together with the added edges. Chordal inputs
// come back unchanged. This supports the paper's concluding question
// about graphs with longer induced cycles: the chordal machinery runs on
// the triangulation, and colorings of the triangulation are legal for g.
func Chordalize(g *Graph) (*Graph, [][2]ID) {
	return chordal.FillIn(g)
}

// ColorAny colors an arbitrary graph by triangulating it first and
// running the (1+ε)-approximate chordal coloring on the result. The
// output is a legal coloring of g using at most (1+ε)·χ(triangulation)
// colors; the gap between χ(g) and χ(triangulation) is the price of
// leaving the chordal world (experiment E16 measures it).
func ColorAny(g *Graph, eps float64) (*Coloring, error) {
	tri, _ := chordal.FillIn(g)
	res, err := core.ColorChordal(tri, eps)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyColoring checks legality and returns the number of colors used.
func VerifyColoring(g *Graph, colors map[ID]int) (int, error) {
	return verifyColoring(g, colors)
}

// VerifyIndependentSet checks that is is an independent set of g.
func VerifyIndependentSet(g *Graph, is Set) error {
	return verifyIndependentSet(g, is)
}
