GO ?= go

.PHONY: all build test vet race bench-smoke bench experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector gate for the concurrent simulation core.
race:
	$(GO) test -race ./internal/dist ./internal/core

# Quick-mode benchmark smoke: one iteration of the substrate and
# experiment benchmarks, with allocation reporting. Finishes in minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineRound|BenchmarkFloodRadius|BenchmarkFloodN100k|BenchmarkFloodBallCollection|BenchmarkDistributedPruneN256|BenchmarkE[0-9]+_' -benchtime 1x -benchmem .

# Full benchmark sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full experiment tables as recorded in EXPERIMENTS.md (slow).
experiments:
	$(GO) run ./cmd/experiments
