GO ?= go

.PHONY: all build test vet lint lint-budgets lint-bench lint-diff race fuzz-smoke ci bench-smoke bench bench-json bench-compare trace-smoke chaos-smoke tracestat-smoke partition-smoke experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# chordalvet: the repo's own determinism & concurrency linter
# (cmd/chordalvet, stdlib-only). Runs the full analyzer suite — including
# the interprocedural hotalloc budgets, sharedwrite, and goroleak — over
# every package in the module, writes the findings as a SARIF artifact
# for code-scanning UIs, and checks the machine-readable findings against
# the committed baseline. See DESIGN.md "Analysis substrate".
lint:
	mkdir -p lint-report
	$(GO) run ./cmd/chordalvet -sarif lint-report/chordalvet.sarif ./...
	scripts/lintdiff.sh

# Hot-path allocation budget usage table: one row per
# //chordalvet:hotpath root with budget, current sites, and the largest
# per-function contributors. Read this before raising a budget.
lint-budgets:
	$(GO) run ./cmd/chordalvet -budgets ./...

# Wall-clock gate for the analysis substrate itself: loading,
# type-checking, and analyzing the whole module must finish inside
# CHORDALVET_BENCH_BUDGET (default 45s) so `make lint` stays cheap
# enough to run on every push.
lint-bench:
	$(GO) test -run '^TestModuleAnalysisUnderBudget$$' -count=1 -v ./cmd/chordalvet

# Diff current findings against the committed lint-baseline.json without
# rerunning the rest of the lint target.
lint-diff:
	scripts/lintdiff.sh

# Race-detector gate for the concurrent simulation core and everything
# that drives it: the engine (dist), the algorithm core, peeling, the
# experiment harness, the public API, the graph substrate whose Indexed
# snapshots are shared across the worker pool, the CSR ball views the
# parallel decide kernel reads concurrently, and the clique-tree stage
# the pipeline shards.
race:
	$(GO) test -race ./internal/dist ./internal/core ./internal/peel ./internal/exp ./internal/graph ./internal/view ./internal/cliquetree ./internal/obs ./internal/wire ./cmd/tracestat .

# Short fuzz runs of every Fuzz* target (10s each) so the fuzzers
# execute somewhere instead of shipping as dormant seed-corpus tests.
# go test -fuzz accepts exactly one target per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadJSON$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzGraphOps$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzRecognize$$' -fuzztime 10s ./internal/interval
	$(GO) test -run '^$$' -fuzz '^FuzzChordalPipeline$$' -fuzztime 10s ./internal/interval

# The full CI gate: compile, vet, chordalvet (with SARIF artifact and
# baseline diff), the analysis wall-clock gate, race-detect the
# concurrent core, run the whole test suite, then the fault-injection
# and trace-analysis smokes. .github/workflows/ci.yml runs exactly this
# target.
ci: build vet lint lint-bench race test chaos-smoke tracestat-smoke partition-smoke bench-compare

# Quick-mode benchmark smoke: one iteration of the substrate and
# experiment benchmarks plus the 20k-node end-to-end pipeline, with
# allocation reporting. Finishes in minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineRound|BenchmarkFloodRadius|BenchmarkFloodN100k|BenchmarkFloodBallCollection|BenchmarkDistributedPruneN256|BenchmarkPipelineN20k|BenchmarkE[0-9]+_' -benchtime 1x -benchmem .

# Full benchmark sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Machine-readable benchmark record: the engine/flood/prune/peel
# benchmarks plus the 100k-node stage benchmarks and the end-to-end
# pipelines (20k smoke, 1M headline) through `go test -json`,
# post-processed by cmd/benchjson into the repo's perf-trajectory
# format. BENCH_7.json in the repo root is a recorded run of exactly
# this target (it adds the BenchmarkPipelineN20kMetrics A/B row — the
# 'BenchmarkPipelineN20k' pattern matches it by substring — so the
# nil-observer vs -metrics delta is recorded alongside the trend).
# The substrate and stage/pipeline sweeps run as two separate `go test`
# processes (benchjson accepts the concatenated streams): the 10^6-node
# pipeline leaves a multi-GB heap behind, and sharing a process would
# taint the substrate numbers recorded under BENCH_5's conditions.
BENCHJSON_OUT ?= BENCH_7.json
bench-json:
	( $(GO) test -run '^$$' -bench 'BenchmarkEngineRound|BenchmarkFloodRadius|BenchmarkFloodN100k|BenchmarkFloodBallCollection|BenchmarkDistributedPruneN256|BenchmarkPeelingN4096' \
		-benchmem -json . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkPeelingN100k|BenchmarkMISStageN100k|BenchmarkCorrectionPhaseN100k|BenchmarkPipelineN20k|BenchmarkPipelineN1M' \
		-benchmem -json -timeout 2h . ) | $(GO) run ./cmd/benchjson -out $(BENCHJSON_OUT)

# Per-benchmark ns/op, B/op, allocs/op deltas between the two most
# recent recorded runs. >10% regressions on any metric print a warning
# to stderr but never fail the target — this is a trend report, not a
# gate; missing record files skip the comparison cleanly.
BENCHJSON_BASE ?= BENCH_6.json
bench-compare:
	$(GO) run ./cmd/benchjson compare $(BENCHJSON_BASE) $(BENCHJSON_OUT)

# Observability smoke: run the tracing workload in quick mode with CPU
# and heap profiling, leaving the artifacts in ./trace-smoke/, then
# validate the trace with `tracestat check` (every line parses, schema
# version consistent, round numbers monotone per phase) and render the
# aggregate report. CI uploads this directory so every push records a
# round trace, profiles, and the per-phase/per-kernel tables.
trace-smoke:
	mkdir -p trace-smoke
	$(GO) run ./cmd/experiments -quick -trace trace-smoke/trace.jsonl \
		-cpuprofile trace-smoke/cpu.pprof -memprofile trace-smoke/mem.pprof
	@wc -l trace-smoke/trace.jsonl
	$(GO) run ./cmd/tracestat check trace-smoke/trace.jsonl
	$(GO) run ./cmd/tracestat report trace-smoke/trace.jsonl > trace-smoke/tracestat.txt
	@head -4 trace-smoke/tracestat.txt

# Fault-injection smoke: run the -faults trace workload in quick mode
# (fault-injected pruning on the Figure-1 graph plus a retransmitting
# flood under 20% message loss), leaving the schema-v2 trace in
# ./chaos-smoke/. The schedule is a pure function of the seed, so the
# trace is byte-reproducible; CI uploads the directory.
chaos-smoke:
	mkdir -p chaos-smoke
	$(GO) run ./cmd/experiments -quick -trace chaos-smoke/trace.jsonl \
		-faults drop=0.2,dup=0.2,delay=2 -fault-seed 7
	@wc -l chaos-smoke/trace.jsonl

# Trace-analysis smoke: the determinism gate behind `tracestat diff`.
# Two runs of the same-seed quick workload — one with -metrics, so the
# traces differ in every timing and in the v3 measurement records — must
# produce zero divergence in the deterministic round/layer records;
# both traces must pass `tracestat check`. The -metrics run's aggregate
# report lands in ./tracestat-smoke/report.txt, which CI uploads.
tracestat-smoke:
	mkdir -p tracestat-smoke
	$(GO) run ./cmd/experiments -quick -trace tracestat-smoke/a.jsonl
	$(GO) run ./cmd/experiments -quick -metrics -trace tracestat-smoke/b.jsonl \
		2> tracestat-smoke/report.txt
	$(GO) run ./cmd/tracestat check tracestat-smoke/a.jsonl tracestat-smoke/b.jsonl
	$(GO) run ./cmd/tracestat diff tracestat-smoke/a.jsonl tracestat-smoke/b.jsonl
	$(GO) run ./cmd/tracestat chrome tracestat-smoke/b.jsonl > tracestat-smoke/chrome.json

# Partitioned-runtime smoke: the byte-identity gate for out-of-process
# execution. The same-seed quick workload runs once on the in-process
# LOCAL engine and once on 2 shard-host child processes; `tracestat
# diff` must find zero divergence in the deterministic round/layer
# records (the partitioned trace legitimately differs in timings and
# wire_in_b/wire_out_b, which diff excludes). A second faulted pair
# pins the same identity under an active dup/delay/drop schedule.
partition-smoke:
	mkdir -p partition-smoke
	$(GO) run ./cmd/experiments -quick -trace partition-smoke/local.jsonl
	$(GO) run ./cmd/experiments -quick -trace partition-smoke/part2.jsonl -partitions 2
	$(GO) run ./cmd/tracestat check partition-smoke/local.jsonl partition-smoke/part2.jsonl
	$(GO) run ./cmd/tracestat diff partition-smoke/local.jsonl partition-smoke/part2.jsonl
	$(GO) run ./cmd/experiments -quick -trace partition-smoke/local-faulty.jsonl \
		-faults drop=0.2,dup=0.2,delay=2 -fault-seed 7
	$(GO) run ./cmd/experiments -quick -trace partition-smoke/part2-faulty.jsonl \
		-faults drop=0.2,dup=0.2,delay=2 -fault-seed 7 -partitions 2
	$(GO) run ./cmd/tracestat check partition-smoke/local-faulty.jsonl partition-smoke/part2-faulty.jsonl
	$(GO) run ./cmd/tracestat diff partition-smoke/local-faulty.jsonl partition-smoke/part2-faulty.jsonl

# Full experiment tables as recorded in EXPERIMENTS.md (slow).
experiments:
	$(GO) run ./cmd/experiments
