// Beyond chordal: the paper closes by asking how to handle graphs with
// longer induced cycles. This example takes a sensor network whose
// conflict graph is *almost* chordal (a chordal backbone plus a few
// cross-links that create long induced cycles), triangulates it with
// minimum-degree fill-in, and colors the triangulation with the paper's
// Algorithm 1 — a legal coloring of the original network whose cost is
// the fill's clique growth.
package main

import (
	"fmt"
	"log"

	chordal "repro"
)

func main() {
	// A chordal backbone...
	network := chordal.RandomChordalGraph(500, 5, 11)
	// ...plus cross-links that break chordality.
	nodes := network.Nodes()
	for i := 0; i < 12; i++ {
		u := nodes[(i*37)%len(nodes)]
		v := nodes[(i*151+40)%len(nodes)]
		if u != v {
			network.AddEdge(u, v)
		}
	}
	fmt.Printf("network: n=%d m=%d, chordal: %v\n",
		network.NumNodes(), network.NumEdges(), chordal.IsChordal(network))

	tri, fill := chordal.Chordalize(network)
	fmt.Printf("triangulation: %d fill edges added, chordal: %v\n",
		len(fill), chordal.IsChordal(tri))

	coloring, err := chordal.ColorAny(network, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	colors, err := chordal.VerifyColoring(network, coloring.Colors)
	if err != nil {
		log.Fatalf("coloring not legal for the original network: %v", err)
	}
	triChi, err := chordal.ChromaticNumber(tri)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colors used on the original network: %d\n", colors)
	fmt.Printf("χ(triangulation) = %d — the price of the cross-links\n", triChi)
	fmt.Printf("guarantee: colors ≤ ⌊(1+1/k)·χ(tri)⌋+1 = %d\n", coloring.Palette)
}
