// Scheduling: a shared resource (one conference room, one GPU, one
// runway) receives time-interval requests; the requests we can accept
// simultaneously form an independent set in the interval conflict graph.
// Accepting a *maximum* set of requests is exactly interval MIS.
//
// This example books requests with the paper's (1+ε)-approximate interval
// MIS (Algorithm 5) and compares the accepted count against the exact
// optimum and against maximal-IS baselines (Luby, greedy), which carry no
// quality guarantee.
package main

import (
	"fmt"
	"log"

	chordal "repro"
	"repro/internal/baseline"
)

func main() {
	const requests = 1000
	conflicts, model := chordal.RandomIntervalGraph(requests, 300, 4, 7)
	fmt.Printf("requests: %d, conflict pairs: %d\n", conflicts.NumNodes(), conflicts.NumEdges())
	_ = model

	booked, err := chordal.MaxIndependentSetInterval(conflicts, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	if err := chordal.VerifyIndependentSet(conflicts, booked.Set); err != nil {
		log.Fatalf("double booking: %v", err)
	}

	optimum, err := chordal.IndependenceNumber(conflicts)
	if err != nil {
		log.Fatal(err)
	}
	luby, _, err := baseline.LubyMIS(conflicts, 99)
	if err != nil {
		log.Fatal(err)
	}
	greedy := baseline.GreedyMIS(conflicts)

	fmt.Printf("accepted requests:\n")
	fmt.Printf("  exact optimum:        %4d\n", optimum)
	fmt.Printf("  paper Algorithm 5:    %4d  (guarantee ≥ optimum/(1+ε), ε=0.25; %d LOCAL rounds)\n",
		len(booked.Set), booked.Rounds)
	fmt.Printf("  Luby maximal IS:      %4d  (no guarantee)\n", len(luby))
	fmt.Printf("  greedy maximal IS:    %4d  (no guarantee)\n", len(greedy))

	// The same pipeline works when the conflict graph is chordal but not
	// interval — e.g. jobs conflicting through a shared hierarchy.
	hier := chordal.RandomChordalGraph(800, 4, 5)
	accepted, err := chordal.MaxIndependentSet(hier, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	hierOpt, err := chordal.IndependenceNumber(hier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chordal variant: accepted %d of optimum %d (Algorithm 6)\n",
		len(accepted.Set), hierOpt)

	// With per-request revenue, the exact weighted solver (Frank's
	// algorithm on the chordal conflict graph) maximizes earnings.
	revenue := make(map[chordal.ID]int, conflicts.NumNodes())
	for i, v := range conflicts.Nodes() {
		revenue[v] = 10 + (i*i)%90
	}
	paid, earned, err := chordal.MaximumWeightIndependentSet(conflicts, revenue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue-weighted booking: %d requests, %d revenue units (exact optimum)\n",
		len(paid), earned)
}
