// Quickstart: build a chordal graph, color it within (1+ε) of optimal,
// and extract a near-maximum independent set — the two headline results
// of the paper, through the public API.
package main

import (
	"fmt"
	"log"

	chordal "repro"
)

func main() {
	// A small chordal graph: two triangles sharing an edge plus a tail.
	g := chordal.FromEdges(nil, [][2]chordal.ID{
		{1, 2}, {2, 3}, {1, 3}, // triangle
		{2, 4}, {3, 4}, // second triangle on edge 2-3
		{4, 5}, {5, 6}, // tail
	})
	fmt.Println("chordal:", chordal.IsChordal(g))

	coloring, err := chordal.Color(g, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	used, err := chordal.VerifyColoring(g, coloring.Colors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colors used: %d (χ = %d, guarantee ≤ %d)\n", used, coloring.Omega, coloring.Palette)
	for _, v := range g.Nodes() {
		fmt.Printf("  node %d → color %d\n", v, coloring.Colors[v])
	}

	mis, err := chordal.MaxIndependentSet(g, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	if err := chordal.VerifyIndependentSet(g, mis.Set); err != nil {
		log.Fatal(err)
	}
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("independent set: %v (α = %d)\n", mis.Set, alpha)

	// The same algorithms scale to large random chordal graphs.
	big := chordal.RandomChordalGraph(2000, 6, 42)
	bigColoring, err := chordal.Color(big, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=2000 random chordal: %d colors vs χ = %d\n",
		bigColoring.ColorsUsed, bigColoring.Omega)
}
