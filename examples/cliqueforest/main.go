// Clique-forest tour: walks the paper's running example (Figures 1–6)
// through the Section 2–3 machinery — maximal cliques, the weighted
// clique intersection graph, the canonical clique forest, a node's local
// view, and one step of the peeling process.
package main

import (
	"fmt"
	"log"
	"sort"

	chordal "repro"
	"repro/internal/cliquetree"
	"repro/internal/figures"
	"repro/internal/peel"
)

func main() {
	g := figures.Fig1()
	fmt.Printf("Figure 1 graph: n=%d, m=%d, chordal=%v\n",
		g.NumNodes(), g.NumEdges(), chordal.IsChordal(g))

	forest, err := chordal.NewCliqueForest(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 2 — clique forest: %d maximal cliques, %d edges\n",
		forest.NumVertices(), len(forest.Edges()))
	names := labelCliques(forest)
	for _, e := range forest.Edges() {
		w := forest.Clique(e[0]).Intersect(forest.Clique(e[1]))
		fmt.Printf("  %-3s -- %-3s  (separator %v, weight %d)\n",
			names[e[0]], names[e[1]], w, len(w))
	}

	fmt.Printf("\nFigures 3–4 — local view of node %d from its distance-%d ball:\n",
		figures.Fig3Center, figures.Fig3Radius)
	ball := g.InducedSubgraph(g.Ball(figures.Fig3Center, figures.Fig3Radius))
	view, err := cliquetree.ComputeLocalView(ball, figures.Fig3Center, figures.Fig3Radius)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range view.Cliques {
		fmt.Printf("  sees clique %v\n", c)
	}
	fmt.Printf("  %d view edges — all part of the global forest: %v\n",
		len(view.Edges), view.ConsistentWith(forest) == nil)

	fmt.Printf("\nFigures 5–6 — first peeling iteration (threshold diam ≥ 4):\n")
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range peeled.Layers[0].Paths {
		fmt.Printf("  %s path of %d cliques, diameter %d → removes nodes %v\n",
			rec.Kind, len(rec.Cliques), rec.Diameter, rec.Nodes)
	}
	fmt.Printf("  total layers: %d (bound ⌈log n⌉)\n", len(peeled.Layers))
	for _, layer := range peeled.Layers {
		fmt.Printf("  layer %d: %v\n", layer.Index, layer.Nodes)
	}
}

// labelCliques maps forest vertex indices to the paper's C1..C15 names.
func labelCliques(f *chordal.CliqueForest) map[int]string {
	names := make(map[int]string, f.NumVertices())
	for i := 0; i < f.NumVertices(); i++ {
		names[i] = "?"
		for name, set := range figures.Fig1CliqueNames {
			if f.Clique(i).Equal(set) {
				names[i] = name
				break
			}
		}
	}
	// Stable output order handled by Edges(); nothing else needed.
	_ = sort.Strings
	return names
}
