// Frequency assignment: base stations whose interference graph is chordal
// (a common model for hierarchical cell deployments) need channels such
// that interfering stations never share one. Channels are licensed
// spectrum — every extra channel costs real money — so we want close to
// χ(G) channels, computed *by the stations themselves*.
//
// This example runs the paper's distributed (1+ε)-coloring (Algorithm 2)
// in a simulated LOCAL network, audits the assignment for conflicts, and
// compares the spectrum cost against the greedy heuristic and the optimum.
package main

import (
	"fmt"
	"log"

	chordal "repro"
	"repro/internal/baseline"
)

func main() {
	const stations = 400
	network := chordal.RandomChordalGraph(stations, 7, 2024)
	fmt.Printf("interference graph: %d stations, %d interference pairs\n",
		network.NumNodes(), network.NumEdges())

	// Distributed run: stations exchange messages for `Rounds` LOCAL
	// rounds and end up knowing their own channel.
	plan, err := chordal.ColorDistributed(network, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	channels, err := chordal.VerifyColoring(network, plan.Colors)
	if err != nil {
		log.Fatalf("conflict audit failed: %v", err)
	}
	fmt.Printf("distributed plan: %d channels, %d LOCAL rounds, guarantee ≤ %d\n",
		channels, plan.Rounds, plan.Palette)

	// Spectrum cost comparison.
	optimal, err := chordal.ChromaticNumber(network)
	if err != nil {
		log.Fatal(err)
	}
	greedy := baseline.GreedyColoring(network)
	greedyChannels, err := chordal.VerifyColoring(network, greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spectrum cost: optimal %d | paper %d | greedy %d (Δ+1 worst case %d)\n",
		optimal, channels, greedyChannels, network.MaxDegree()+1)

	// Per-channel load: how many stations share each channel.
	load := make(map[int]int)
	for _, v := range network.Nodes() {
		load[plan.Colors[v]]++
	}
	fmt.Println("channel load:")
	for c := 1; c <= channels; c++ {
		if load[c] > 0 {
			fmt.Printf("  channel %2d: %d stations\n", c, load[c])
		}
	}
}
