package chordal_test

import (
	"fmt"

	chordal "repro"
)

// The 7-node chordal graph used across the examples: two triangles
// sharing an edge, plus a pendant path.
func demoGraph() *chordal.Graph {
	return chordal.FromEdges(nil, [][2]chordal.ID{
		{1, 2}, {2, 3}, {1, 3},
		{2, 4}, {3, 4},
		{4, 5}, {5, 6},
	})
}

func ExampleColor() {
	g := demoGraph()
	coloring, err := chordal.Color(g, 0.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	used, _ := chordal.VerifyColoring(g, coloring.Colors)
	fmt.Printf("colors=%d chi=%d within-guarantee=%v\n",
		used, coloring.Omega, used <= coloring.Palette)
	// Output: colors=3 chi=3 within-guarantee=true
}

func ExampleMaxIndependentSet() {
	g := demoGraph()
	mis, err := chordal.MaxIndependentSet(g, 0.4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	alpha, _ := chordal.IndependenceNumber(g)
	fmt.Printf("size=%d alpha=%d\n", len(mis.Set), alpha)
	// Output: size=3 alpha=3
}

func ExampleNewCliqueForest() {
	g := demoGraph()
	forest, err := chordal.NewCliqueForest(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cliques=%d edges=%d\n", forest.NumVertices(), len(forest.Edges()))
	// Output: cliques=4 edges=3
}

func ExampleIsChordal() {
	fmt.Println(chordal.IsChordal(demoGraph()))
	square := chordal.FromEdges(nil, [][2]chordal.ID{{1, 2}, {2, 3}, {3, 4}, {4, 1}})
	fmt.Println(chordal.IsChordal(square))
	// Output:
	// true
	// false
}

func ExampleRecognizeInterval() {
	// A path is an interval graph; the recognizer reconstructs a model.
	g := chordal.FromEdges(nil, [][2]chordal.ID{{1, 2}, {2, 3}, {3, 4}})
	model, err := chordal.RecognizeInterval(g)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("intervals=%d realizes=%v\n", len(model), chordal.FromIntervals(model).Equal(g))
	// Output: intervals=4 realizes=true
}

func ExampleMaximumWeightIndependentSet() {
	g := demoGraph()
	weights := map[chordal.ID]int{1: 5, 2: 50, 3: 1, 4: 1, 5: 40, 6: 2}
	set, total, err := chordal.MaximumWeightIndependentSet(g, weights)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("set=%v weight=%d\n", set, total)
	// Output: set=[2 5] weight=90
}
