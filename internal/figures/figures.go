// Package figures encodes the paper's running example: the 23-node chordal
// graph of Figure 1, whose weighted clique intersection graph, clique
// forest, local views and peeling step are illustrated in Figures 2–6.
// The tests in this package and the E1–E3 benchmarks machine-check those
// figures against the library's output.
package figures

import "repro/internal/graph"

// Fig1CliqueNames maps the paper's clique labels C1..C15 to their vertex
// sets, exactly as printed in Figure 2.
var Fig1CliqueNames = map[string]graph.Set{
	"C1":  graph.NewSet(1, 2, 3),
	"C2":  graph.NewSet(2, 3, 4),
	"C3":  graph.NewSet(4, 5, 6),
	"C4":  graph.NewSet(5, 6, 7),
	"C5":  graph.NewSet(2, 4, 8),
	"C6":  graph.NewSet(8, 9, 10),
	"C7":  graph.NewSet(9, 10, 11),
	"C8":  graph.NewSet(11, 12, 13),
	"C9":  graph.NewSet(12, 13, 14),
	"C10": graph.NewSet(14, 15, 16),
	"C11": graph.NewSet(15, 16, 19),
	"C12": graph.NewSet(16, 17, 18),
	"C13": graph.NewSet(19, 20, 21),
	"C14": graph.NewSet(21, 22),
	"C15": graph.NewSet(21, 23),
}

// Fig1 returns the chordal graph of Figure 1: the union of the cliques of
// Figure 2 (each maximal clique contributes all its edges).
func Fig1() *graph.Graph {
	g := graph.New()
	for v := 1; v <= 23; v++ {
		g.AddNode(graph.ID(v))
	}
	for _, c := range Fig1CliqueNames {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				g.AddEdge(c[i], c[j])
			}
		}
	}
	return g
}

// Fig3Center is the node whose local view Figures 3 and 4 illustrate.
const Fig3Center graph.ID = 10

// Fig3Radius is the collection radius used in Figures 3 and 4.
const Fig3Radius = 3

// Fig4ViewCliques lists the clique labels that Figure 4 states appear in
// node 10's local view: "the maximal cliques of G that contain at least
// one node from Γ²[10]".
var Fig4ViewCliques = []string{"C1", "C2", "C3", "C5", "C6", "C7", "C8", "C9"}

// Fig5Path lists the clique labels of the internal path P = C6,...,C10
// peeled in Figures 5 and 6.
var Fig5Path = []string{"C6", "C7", "C8", "C9", "C10"}

// Fig5PeeledNodes is U, the set of nodes u whose subtrees T(u) are
// subpaths of P in Figure 5 (the non-black nodes).
var Fig5PeeledNodes = graph.NewSet(9, 10, 11, 12, 13, 14)
