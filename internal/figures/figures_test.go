package figures

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/graph"
)

func TestFig1Basics(t *testing.T) {
	g := Fig1()
	if g.NumNodes() != 23 {
		t.Fatalf("n = %d, want 23", g.NumNodes())
	}
	if !chordal.IsChordal(g) {
		t.Fatal("Figure 1 graph must be chordal")
	}
	if comps := g.Components(); len(comps) != 1 {
		t.Fatalf("Figure 1 graph must be connected, got %d components", len(comps))
	}
}

func TestFig1CliquesAreMaximal(t *testing.T) {
	g := Fig1()
	for name, c := range Fig1CliqueNames {
		if !g.IsClique(c) {
			t.Fatalf("%s = %v is not a clique", name, c)
		}
		for _, v := range g.Nodes() {
			if c.Contains(v) {
				continue
			}
			all := true
			for _, u := range c {
				if !g.HasEdge(v, u) {
					all = false
					break
				}
			}
			if all {
				t.Fatalf("%s = %v is not maximal (extendable by %d)", name, c, v)
			}
		}
	}
}

func TestFig1CliqueCountMatchesChordalToolkit(t *testing.T) {
	g := Fig1()
	cliques, err := chordal.MaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != len(Fig1CliqueNames) {
		t.Fatalf("toolkit finds %d cliques, figure lists %d", len(cliques), len(Fig1CliqueNames))
	}
	for _, c := range cliques {
		found := false
		for _, want := range Fig1CliqueNames {
			if c.Equal(want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("clique %v not in Figure 2's list", c)
		}
	}
}

func TestFig3BallContents(t *testing.T) {
	g := Fig1()
	// Figure 3: Γ²[10] = {2,4,8,9,10,11,12,13}.
	ball2 := graph.NewSet(g.Ball(Fig3Center, 2)...)
	want := graph.NewSet(2, 4, 8, 9, 10, 11, 12, 13)
	if !ball2.Equal(want) {
		t.Fatalf("Γ²[10] = %v, want %v", ball2, want)
	}
}

func TestFig5PeeledNodesSubtreesInPath(t *testing.T) {
	// Every node of Fig5PeeledNodes appears only in cliques of Fig5Path.
	inPath := make(map[string]bool)
	for _, name := range Fig5Path {
		inPath[name] = true
	}
	for _, v := range Fig5PeeledNodes {
		for name, c := range Fig1CliqueNames {
			if c.Contains(v) && !inPath[name] {
				t.Fatalf("node %d is in clique %s outside the Fig 5 path", v, name)
			}
		}
	}
}
