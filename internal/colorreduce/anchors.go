package colorreduce

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Chain is a disjoint union of paths with weighted edges, used as the
// virtual "leader chain" over clique-path leaders: chain nodes are network
// nodes, a chain edge means the endpoints are consecutive leaders, and the
// edge weight is their distance in the communication graph (so segment
// weights lower-bound block diameters).
type Chain struct {
	G      *graph.Graph
	Weight map[[2]graph.ID]int // key has smaller ID first
	// Dist, when set, overrides segment weights during contraction: the
	// weight between two anchors becomes Dist(u, v) instead of the sum of
	// edge weights between them. Used with communication-graph distances
	// so anchor gaps lower-bound the recoloring separation directly.
	Dist func(u, v graph.ID) int
}

// NewChain builds a chain from edges (u, v, weight).
func NewChain() *Chain {
	return &Chain{G: graph.New(), Weight: make(map[[2]graph.ID]int)}
}

// AddNode adds an isolated chain node.
func (c *Chain) AddNode(v graph.ID) { c.G.AddNode(v) }

// AddEdge links consecutive chain nodes with the given weight (>= 1).
func (c *Chain) AddEdge(u, v graph.ID, w int) {
	c.G.AddEdge(u, v)
	if u > v {
		u, v = v, u
	}
	if w < 1 {
		w = 1
	}
	c.Weight[[2]graph.ID{u, v}] = w
}

func (c *Chain) edgeWeight(u, v graph.ID) int {
	if u > v {
		u, v = v, u
	}
	return c.Weight[[2]graph.ID{u, v}]
}

// Validate checks the chain is a disjoint union of paths.
func (c *Chain) Validate() error {
	if c.G.MaxDegree() > 2 {
		return fmt.Errorf("chain has a node of degree > 2")
	}
	// No cycles: every component with e edges has e = n-1.
	for _, comp := range c.G.Components() {
		edges := 0
		for _, v := range comp {
			edges += c.G.Degree(v)
		}
		edges /= 2
		if edges != len(comp)-1 {
			return fmt.Errorf("chain component %v contains a cycle", comp)
		}
	}
	return nil
}

// AnchorResult reports the anchors chosen on a chain and the
// communication rounds charged.
type AnchorResult struct {
	Anchors graph.Set
	Rounds  int
	Phases  int
}

// SelectAnchors chooses a subset of chain nodes such that along every
// chain path, the weighted distance between consecutive anchors is at
// least minGap (segments facing a path end may be shorter — end blocks
// have only one recoloring zone). Anchors delimit the blocks of the
// interval coloring routine; minGap lower-bounds block diameters.
//
// Structure: a single Linial 3-coloring of the chain (the O(log* n)
// symmetry-breaking component) fixes per-node priorities (color, ID);
// then drop phases run until stable: an anchor with a too-small
// anchor-facing segment drops unless an adjacent droppable anchor has
// higher priority, so adjacent anchors never drop simultaneously and
// segments grow without cascading overshoot. Each phase costs a constant
// number of exchanges at the current contracted hop distance.
func SelectAnchors(ch *Chain, minGap, idBound int) (*AnchorResult, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	res := &AnchorResult{}
	// priority orders droppable anchors strictly per phase; the hash makes
	// adversarial ID layouts (e.g. monotone runs) behave like random ones
	// while staying fully deterministic.
	higher := func(a, b graph.ID, phase int) bool {
		ha, hb := phaseHash(a, phase), phaseHash(b, phase)
		if ha != hb {
			return ha > hb
		}
		return a > b
	}
	anchors := make(map[graph.ID]bool)
	for _, v := range ch.G.Nodes() {
		anchors[v] = true
	}
	for {
		contracted, hopCost := contractChain(ch, anchors)
		segs := segments(contracted, anchors)
		droppable := func(v graph.ID) bool {
			return anchors[v] && segs[v][0] < minGap
		}
		var drops []graph.ID
		for _, v := range contracted.G.Nodes() {
			if !droppable(v) {
				continue
			}
			wins := true
			for _, u := range contracted.G.Neighbors(v) {
				if droppable(u) && higher(u, v, res.Phases) {
					wins = false
					break
				}
			}
			if wins {
				drops = append(drops, v)
			}
		}
		res.Phases++
		res.Rounds += 3 * hopCost // segment measurement + priority exchange + decision
		if len(drops) == 0 {
			break
		}
		for _, v := range drops {
			anchors[v] = false
		}
		if res.Phases > ch.G.NumNodes()+2 {
			return nil, fmt.Errorf("anchor selection did not stabilize")
		}
	}
	var out graph.Set
	for v, on := range anchors {
		if on {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	res.Anchors = out
	return res, nil
}

// phaseHash is a deterministic splitmix-style mixer over (node, phase).
func phaseHash(v graph.ID, phase int) uint64 {
	x := uint64(v)*0x9E3779B97F4A7C15 + uint64(phase)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// contractChain builds the chain over current anchors: consecutive
// anchors along each path become adjacent, weighted by the summed
// original weights between them. hopCost is the maximum such weight
// (communication cost of one contracted hop).
func contractChain(ch *Chain, anchors map[graph.ID]bool) (*Chain, int) {
	out := NewChain()
	hopCost := 1
	visitedEdge := make(map[[2]graph.ID]bool)
	for _, v := range ch.G.Nodes() {
		if !anchors[v] {
			continue
		}
		out.AddNode(v)
		// Walk in each chain direction until the next anchor.
		for _, first := range ch.G.Neighbors(v) {
			w := ch.edgeWeight(v, first)
			prev, cur := v, first
			for !anchors[cur] {
				next := graph.ID(-1)
				for _, nb := range ch.G.Neighbors(cur) {
					if nb != prev {
						next = nb
						break
					}
				}
				if next == -1 {
					cur = -1 // dangling end, no anchor this way
					break
				}
				w += ch.edgeWeight(cur, next)
				prev, cur = cur, next
			}
			if cur == -1 || cur == v {
				continue
			}
			a, b := v, cur
			if a > b {
				a, b = b, a
			}
			if visitedEdge[[2]graph.ID{a, b}] {
				continue
			}
			visitedEdge[[2]graph.ID{a, b}] = true
			if ch.Dist != nil {
				w = ch.Dist(a, b)
			}
			out.AddEdge(a, b, w)
			if w > hopCost {
				hopCost = w
			}
		}
	}
	return out, hopCost
}

// segments returns, for every current anchor, its weighted distances
// (smaller, larger) to the adjacent anchors. A side facing a path end
// counts as unbounded: end blocks are delimited by the physical path end,
// have only one recoloring zone, and so may be arbitrarily short — only
// anchor-to-anchor gaps must respect minGap.
func segments(contracted *Chain, anchors map[graph.ID]bool) map[graph.ID][2]int {
	const unbounded = 1 << 30
	out := make(map[graph.ID][2]int)
	for _, v := range contracted.G.Nodes() {
		if !anchors[v] {
			continue
		}
		dists := []int{}
		for _, nb := range contracted.G.Neighbors(v) {
			if anchors[nb] {
				dists = append(dists, contracted.edgeWeight(v, nb))
			}
		}
		for len(dists) < 2 {
			dists = append(dists, unbounded)
		}
		sort.Ints(dists)
		out[v] = [2]int{dists[0], dists[1]}
	}
	return out
}
