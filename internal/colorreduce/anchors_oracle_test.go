package colorreduce

import (
	"testing"

	"repro/internal/graph"
)

// oracleChain builds a unit chain of n nodes whose Dist oracle returns
// position distance (so contracted gaps are exact).
func oracleChain(n int) *Chain {
	ch := NewChain()
	ch.AddNode(0)
	for i := 0; i+1 < n; i++ {
		ch.AddEdge(graph.ID(i), graph.ID(i+1), 1)
	}
	ch.Dist = func(u, v graph.ID) int {
		d := int(v) - int(u)
		if d < 0 {
			return -d
		}
		return d
	}
	return ch
}

func TestSelectAnchorsOracleGaps(t *testing.T) {
	for _, n := range []int{100, 500, 2000} {
		ch := oracleChain(n)
		res, err := SelectAnchors(ch, 16, n)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		maxGap := 0
		for _, a := range res.Anchors {
			if prev >= 0 {
				gap := int(a) - prev
				if gap < 16 {
					t.Fatalf("n=%d: anchors %d,%d at gap %d < 16", n, prev, a, gap)
				}
				if gap > maxGap {
					maxGap = gap
				}
			}
			prev = int(a)
		}
		// Overshoot stays bounded: anchors never merge two already-valid
		// segments, so gaps stay below ~4× the threshold in practice.
		if maxGap > 16*6 {
			t.Fatalf("n=%d: max gap %d suspiciously large", n, maxGap)
		}
		if n >= 500 && len(res.Anchors) < n/(16*6) {
			t.Fatalf("n=%d: only %d anchors", n, len(res.Anchors))
		}
	}
}

func TestSelectAnchorsPhaseCountStable(t *testing.T) {
	// Phase count should not grow linearly with n (it is ~log in the
	// anchor count with the hashed priorities).
	small, err := SelectAnchors(oracleChain(200), 12, 200)
	if err != nil {
		t.Fatal(err)
	}
	large, err := SelectAnchors(oracleChain(4000), 12, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if large.Phases > 4*small.Phases+10 {
		t.Fatalf("phases grew from %d (n=200) to %d (n=4000)", small.Phases, large.Phases)
	}
}

func TestSelectAnchorsDeterministic(t *testing.T) {
	a, err := SelectAnchors(oracleChain(300), 10, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectAnchors(oracleChain(300), 10, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Anchors.Equal(b.Anchors) {
		t.Fatal("anchor selection not deterministic")
	}
}
