package colorreduce

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestLinialParams(t *testing.T) {
	for _, m := range []int{4, 10, 100, 10000, 1 << 20} {
		q, d := linialParams(m, 2)
		if !isPrime(q) {
			t.Fatalf("m=%d: q=%d not prime", m, q)
		}
		if q <= (d+1)*2 {
			t.Fatalf("m=%d: q=%d too small for d=%d", m, q, d)
		}
		pow := 1
		for i := 0; i <= d; i++ {
			pow *= q
		}
		if pow < m {
			t.Fatalf("m=%d: q^(d+1)=%d < m", m, pow)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true}
	for n := -2; n <= 14; n++ {
		if isPrime(n) != primes[n] {
			t.Fatalf("isPrime(%d) = %v", n, isPrime(n))
		}
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	for c := 0; c < 500; c++ {
		digits := digitsBaseQ(c, 7, 3)
		back := 0
		for i := len(digits) - 1; i >= 0; i-- {
			back = back*7 + digits[i]
		}
		if back != c {
			t.Fatalf("digits round trip failed for %d", c)
		}
	}
}

func TestReduceToDeltaPlusOnePath(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		g := gen.Path(n)
		colors, rounds, err := ReduceToDeltaPlusOne(g, 2, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkColoring(t, g, colors, 3)
		if n >= 100 && rounds > 80 {
			t.Fatalf("n=%d: used %d rounds, expected O(log* n) + constant", n, rounds)
		}
	}
}

func TestReduceRoundsGrowSlowly(t *testing.T) {
	// O(log* n): blowing the ID space up from 2·10³ to 10⁹ may add only a
	// few Linial iterations on top of the constant elimination tail.
	g := gen.Path(500)
	_, r1, err := ReduceToDeltaPlusOne(g, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := ReduceToDeltaPlusOne(g, 2, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r2 > r1+6 {
		t.Fatalf("rounds grew from %d to %d; expected log* growth", r1, r2)
	}
}

func TestReduceOnCycle(t *testing.T) {
	// Cycles have max degree 2 as well; Linial reduction handles them.
	g := gen.Cycle(101)
	colors, _, err := ReduceToDeltaPlusOne(g, 2, 101)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, g, colors, 3)
}

func TestReduceScatteredIDs(t *testing.T) {
	// Path with random large IDs.
	rng := rand.New(rand.NewSource(5))
	ids := rng.Perm(100000)[:200]
	g := graph.New()
	for i := 0; i+1 < len(ids); i++ {
		g.AddEdge(graph.ID(ids[i]), graph.ID(ids[i+1]))
	}
	colors, _, err := ReduceToDeltaPlusOne(g, 2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, g, colors, 3)
}

func TestReduceHigherDegree(t *testing.T) {
	g := gen.Tree(80, 3)
	delta := g.MaxDegree()
	colors, _, err := ReduceToDeltaPlusOne(g, delta, 80)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, g, colors, delta+1)
}

func TestReduceRejectsWrongDelta(t *testing.T) {
	if _, _, err := ReduceToDeltaPlusOne(gen.Star(5), 2, 10); err == nil {
		t.Fatal("expected error for degree > delta")
	}
}

func checkColoring(t *testing.T, g *graph.Graph, colors map[graph.ID]int, palette int) {
	t.Helper()
	shifted := make(map[graph.ID]int, len(colors))
	for v, c := range colors {
		if c < 0 || c >= palette {
			t.Fatalf("node %d has color %d outside [0,%d)", v, c, palette)
		}
		shifted[v] = c + 1
	}
	if _, err := verify.Coloring(g, shifted); err != nil {
		t.Fatal(err)
	}
}

func TestMISChainMaximal(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 300} {
		g := gen.Path(n)
		is, _, err := MISChain(g, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := verify.MaximalIndependentSet(g, is); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestMISFromColoringBadInput(t *testing.T) {
	g := gen.Path(3)
	if _, _, err := MISFromColoring(g, map[graph.ID]int{0: 0, 1: 1}, 3); err == nil {
		t.Fatal("expected error for missing color")
	}
}

func buildChain(weights []int) *Chain {
	ch := NewChain()
	ch.AddNode(0)
	for i, w := range weights {
		ch.AddEdge(graph.ID(i), graph.ID(i+1), w)
	}
	return ch
}

func TestSelectAnchorsGaps(t *testing.T) {
	// A 60-node chain with unit weights and minGap 7: consecutive anchors
	// must be at least 7 apart.
	weights := make([]int, 59)
	for i := range weights {
		weights[i] = 1
	}
	ch := buildChain(weights)
	res, err := SelectAnchors(ch, 7, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anchors) == 0 {
		t.Fatal("no anchors selected on a long chain")
	}
	checkAnchorGaps(t, ch, res.Anchors, 7)
}

func TestSelectAnchorsShortChain(t *testing.T) {
	// Chains shorter than minGap keep at most one anchor.
	ch := buildChain([]int{1, 1, 1})
	res, err := SelectAnchors(ch, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anchors) > 1 {
		t.Fatalf("short chain kept %d anchors: %v", len(res.Anchors), res.Anchors)
	}
}

func TestSelectAnchorsWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weights := make([]int, 80)
	for i := range weights {
		weights[i] = 1 + rng.Intn(3)
	}
	ch := buildChain(weights)
	res, err := SelectAnchors(ch, 9, 100)
	if err != nil {
		t.Fatal(err)
	}
	checkAnchorGaps(t, ch, res.Anchors, 9)
}

func TestSelectAnchorsRejectsCycle(t *testing.T) {
	ch := NewChain()
	ch.AddEdge(0, 1, 1)
	ch.AddEdge(1, 2, 1)
	ch.AddEdge(2, 0, 1)
	if _, err := SelectAnchors(ch, 2, 3); err == nil {
		t.Fatal("expected error for cyclic chain")
	}
}

// checkAnchorGaps verifies consecutive anchors along the chain are at
// weighted distance >= minGap.
func checkAnchorGaps(t *testing.T, ch *Chain, anchors graph.Set, minGap int) {
	t.Helper()
	inAnchors := make(map[graph.ID]bool)
	for _, a := range anchors {
		inAnchors[a] = true
	}
	// Walk each path from an endpoint.
	for _, comp := range ch.G.Components() {
		var start graph.ID = -1
		for _, v := range comp {
			if ch.G.Degree(v) <= 1 {
				start = v
				break
			}
		}
		if start == -1 {
			t.Fatal("chain component has no endpoint")
		}
		prev := graph.ID(-1)
		cur := start
		lastAnchorDist := -1
		dist := 0
		for {
			if inAnchors[cur] {
				if lastAnchorDist >= 0 && dist-lastAnchorDist < minGap {
					t.Fatalf("anchors at weighted distance %d < %d", dist-lastAnchorDist, minGap)
				}
				lastAnchorDist = dist
			}
			next := graph.ID(-1)
			for _, nb := range ch.G.Neighbors(cur) {
				if nb != prev {
					next = nb
					break
				}
			}
			if next == -1 {
				break
			}
			dist += ch.edgeWeight(cur, next)
			prev, cur = cur, next
		}
	}
}
