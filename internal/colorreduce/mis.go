package colorreduce

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// misProtocol computes a maximal independent set from a proper coloring in
// one round per color class: in round t, undecided nodes of color t join
// unless a neighbor already joined.
type misProtocol struct {
	color   int
	palette int
	round   int
	inIS    bool
	blocked bool
	done    bool
}

func (p *misProtocol) Init(ctx *dist.Context) {}

func (p *misProtocol) Round(ctx *dist.Context, inbox []dist.Message) {
	if p.done {
		return
	}
	for _, m := range inbox {
		if m.Payload.(bool) {
			p.blocked = true
		}
	}
	if !p.blocked && !p.inIS && p.color == p.round {
		p.inIS = true
		ctx.Broadcast(true)
	}
	p.round++
	if p.round >= p.palette {
		p.done = true
	}
}

func (p *misProtocol) Done() bool  { return p.done }
func (p *misProtocol) Output() any { return p.inIS }

// MISFromColoring computes a maximal independent set of g given a proper
// coloring with colors in [0, palette), in palette communication rounds.
func MISFromColoring(g *graph.Graph, colors map[graph.ID]int, palette int) (graph.Set, int, error) {
	for _, v := range g.Nodes() {
		c, ok := colors[v]
		if !ok || c < 0 || c >= palette {
			return nil, 0, fmt.Errorf("node %d has invalid color", v)
		}
	}
	eng := dist.NewEngine(g, func(v graph.ID) dist.Protocol {
		return &misProtocol{color: colors[v], palette: palette}
	})
	res, err := eng.Run(palette + 1)
	if err != nil {
		return nil, 0, fmt.Errorf("mis from coloring: %w", err)
	}
	var is graph.Set
	for v, out := range res.Outputs {
		if out.(bool) {
			is = append(is, v)
		}
	}
	return graph.NewSet(is...), res.Rounds, nil
}

// MISChain computes a maximal independent set of a disjoint union of
// paths in O(log* idBound) rounds: Linial reduction to 3 colors, then
// 3 rounds of class-greedy selection.
func MISChain(chain *graph.Graph, idBound int) (graph.Set, int, error) {
	colors, r1, err := ThreeColorChain(chain, idBound)
	if err != nil {
		return nil, 0, err
	}
	is, r2, err := MISFromColoring(chain, colors, 3)
	if err != nil {
		return nil, 0, err
	}
	return is, r1 + r2, nil
}
