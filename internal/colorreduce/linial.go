// Package colorreduce implements the deterministic symmetry-breaking
// substrate the paper's interval routines rely on: Linial's color
// reduction [25] (O(log* n) rounds to O(Δ² log Δ) colors on graphs of
// maximum degree Δ, here used on paths and chain structures), greedy
// color-class reduction to Δ+1 colors, maximal independent sets from
// colorings, and weighted block-anchor selection on chains — our stand-in
// for the Schneider–Wattenhofer MISUnitInterval routine with the same
// O(k + log* n)-flavoured round behaviour.
//
// All algorithms are genuine message-passing protocols executed on the
// dist engine; round counts come from the engine.
package colorreduce

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// linialParams returns (q, d) for one Linial reduction step: the current
// palette [m] is identified with polynomials of degree ≤ d over F_q
// (coefficient vectors, base-q digits of the color), with q the smallest
// prime such that q^(d+1) >= m and q > (d+1)*delta. A node picks an
// evaluation point x where its polynomial differs from all neighbors'
// polynomials — possible since two distinct degree-≤d polynomials agree on
// at most d points, so delta neighbors rule out ≤ delta*d < q points.
// The new color (x, p(x)) lives in a palette of size q².
func linialParams(m, delta int) (q, d int) {
	for q = 2; ; q++ {
		if !isPrime(q) {
			continue
		}
		// Smallest d with q^(d+1) >= m.
		d = 0
		pow := q
		for pow < m {
			pow *= q
			d++
		}
		if q > (d+1)*delta {
			return q, d
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return false
		}
	}
	return true
}

// digitsBaseQ writes c as d+1 base-q digits (the polynomial coefficients).
func digitsBaseQ(c, q, d int) []int {
	out := make([]int, d+1)
	for i := 0; i <= d; i++ {
		out[i] = c % q
		c /= q
	}
	return out
}

// evalPoly evaluates the coefficient vector at x over F_q.
func evalPoly(coeffs []int, x, q int) int {
	val := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		val = (val*x + coeffs[i]) % q
	}
	return val
}

// linialStep maps a proper m-coloring to a proper q²-coloring given each
// node's color and its neighbors' colors.
func linialStep(own int, neighbors []int, m, delta int) int {
	q, d := linialParams(m, delta)
	p := digitsBaseQ(own, q, d)
	var others [][]int
	for _, c := range neighbors {
		if c != own {
			others = append(others, digitsBaseQ(c, q, d))
		}
	}
	for x := 0; x < q; x++ {
		ok := true
		for _, o := range others {
			if evalPoly(o, x, q) == evalPoly(p, x, q) {
				ok = false
				break
			}
		}
		if ok {
			return x*q + evalPoly(p, x, q)
		}
	}
	// Unreachable for a proper input coloring by the counting argument.
	panic("colorreduce: no evaluation point found; input coloring improper")
}

// reduceProtocol runs Linial steps until the palette stabilizes, then
// eliminates color classes greedily down to delta+1 colors.
type reduceProtocol struct {
	delta   int
	palette int // current palette size m (same at every node)
	color   int
	phase   int // 0 = Linial, 1 = class elimination, 2 = done
	elimCur int // color class currently being eliminated
	done    bool
}

func newReduceProtocol(id graph.ID, idBound, delta int) *reduceProtocol {
	return &reduceProtocol{delta: delta, palette: idBound, color: int(id)}
}

func (p *reduceProtocol) Init(ctx *dist.Context) {
	ctx.Broadcast(p.color)
}

func (p *reduceProtocol) Round(ctx *dist.Context, inbox []dist.Message) {
	if p.done {
		ctx.Broadcast(p.color)
		return
	}
	var nbColors []int
	for _, m := range inbox {
		nbColors = append(nbColors, m.Payload.(int))
	}
	switch p.phase {
	case 0:
		q, _ := linialParams(p.palette, p.delta)
		next := q * q
		if next >= p.palette {
			// Palette stopped shrinking: switch to class elimination.
			p.phase = 1
			p.elimCur = p.palette - 1
			p.eliminate(nbColors)
		} else {
			p.color = linialStep(p.color, nbColors, p.palette, p.delta)
			p.palette = next
		}
	case 1:
		p.eliminate(nbColors)
	}
	ctx.Broadcast(p.color)
}

// eliminate performs one class-elimination round: every node of the
// highest remaining color picks the smallest color in [0, delta] unused by
// its neighbors. Nodes of one class are pairwise non-adjacent, so
// simultaneous recoloring is safe.
func (p *reduceProtocol) eliminate(nbColors []int) {
	if p.color == p.elimCur && p.color > p.delta {
		used := make(map[int]bool, len(nbColors))
		for _, c := range nbColors {
			used[c] = true
		}
		for c := 0; ; c++ {
			if !used[c] {
				p.color = c
				break
			}
		}
	}
	p.elimCur--
	if p.elimCur <= p.delta {
		p.done = true
	}
}

func (p *reduceProtocol) Done() bool  { return p.done }
func (p *reduceProtocol) Output() any { return p.color }

// ReduceToDeltaPlusOne runs the full reduction on g (maximum degree delta,
// IDs in [0, idBound)) and returns a proper coloring with colors in
// [0, delta] plus the number of communication rounds used.
func ReduceToDeltaPlusOne(g *graph.Graph, delta, idBound int) (map[graph.ID]int, int, error) {
	if g.NumNodes() == 0 {
		return map[graph.ID]int{}, 0, nil
	}
	if d := g.MaxDegree(); d > delta {
		return nil, 0, fmt.Errorf("graph has degree %d > declared delta %d", d, delta)
	}
	for _, v := range g.Nodes() {
		if int(v) < 0 || int(v) >= idBound {
			return nil, 0, fmt.Errorf("node ID %d outside [0, %d)", v, idBound)
		}
	}
	eng := dist.NewEngine(g, func(v graph.ID) dist.Protocol {
		return newReduceProtocol(v, idBound, delta)
	})
	res, err := eng.Run(10000 + idBound)
	if err != nil {
		return nil, 0, fmt.Errorf("color reduction: %w", err)
	}
	colors := make(map[graph.ID]int, len(res.Outputs))
	for v, out := range res.Outputs {
		colors[v] = out.(int)
	}
	return colors, res.Rounds, nil
}

// ThreeColorChain 3-colors a disjoint union of paths (max degree 2) with
// colors {0,1,2} in O(log* idBound) + O(1) rounds.
func ThreeColorChain(chain *graph.Graph, idBound int) (map[graph.ID]int, int, error) {
	return ReduceToDeltaPlusOne(chain, 2, idBound)
}
