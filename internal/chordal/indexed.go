package chordal

import (
	"fmt"

	"repro/internal/graph"
)

// CliqueNumberIndexed is CliqueNumber on a CSR snapshot: one packed-heap
// MCS pass, a Tarjan–Yannakakis chordality check, and ω as the largest
// 1 + |Γ_later(v)| over the elimination order. The MCS tie-break need
// not match CliqueNumber's (ω is an invariant of the graph, and the
// verification accepts exactly the chordal graphs either way), so the
// returned value and the error text are identical to CliqueNumber(g) on
// the snapshot's source graph.
func CliqueNumberIndexed(ix *graph.Indexed) (int, error) {
	n := ix.NumNodes()
	if n == 0 {
		return 0, nil
	}
	weight := make([]int32, n)
	pos := make([]int32, n)
	order := make([]int32, n)
	visited := make([]bool, n)
	// Max-heap on (weight<<32 | n-1-idx): pop yields max weight, min
	// index. Seeding in ascending index order appends descending keys,
	// so each initial push sifts in O(1).
	heap := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		heap = alphaHeapPushChordal(heap, uint64(n-1-i))
	}
	for i := n - 1; i >= 0; i-- {
		var v int32
		for {
			top := heap[0]
			heap = alphaHeapPopChordal(heap)
			w := int32(top >> 32)
			idx := int32(n-1) - int32(top&0xffffffff)
			if visited[idx] || weight[idx] != w {
				continue
			}
			v = idx
			break
		}
		order[i] = v
		pos[v] = int32(i)
		visited[v] = true
		for _, u := range ix.NeighborIndices(int(v)) {
			if visited[u] {
				continue
			}
			weight[u]++
			heap = alphaHeapPushChordal(heap, uint64(weight[u])<<32|uint64(int32(n-1)-u))
		}
	}
	// Tarjan–Yannakakis: for each v in order, the later neighbors minus
	// the min-position one must all neighbor that one.
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		v := order[i]
		var u int32 = -1
		uPos := int32(n)
		for _, w := range ix.NeighborIndices(int(v)) {
			if pos[w] > int32(i) && pos[w] < uPos {
				uPos = pos[w]
				u = w
			}
		}
		if u < 0 {
			continue
		}
		for _, w := range ix.NeighborIndices(int(u)) {
			mark[w] = int32(i)
		}
		for _, w := range ix.NeighborIndices(int(v)) {
			if pos[w] > int32(i) && w != u && mark[w] != int32(i) {
				return 0, fmt.Errorf("graph is not chordal (n=%d, m=%d)", n, ix.NumEdges())
			}
		}
	}
	best := 1
	for i := 0; i < n; i++ {
		v := order[i]
		size := 1
		for _, u := range ix.NeighborIndices(int(v)) {
			if pos[u] > int32(i) {
				size++
			}
		}
		if size > best {
			best = size
		}
	}
	return best, nil
}

func alphaHeapPushChordal(h []uint64, key uint64) []uint64 {
	h = append(h, key)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func alphaHeapPopChordal(h []uint64) []uint64 {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h[l] > h[big] {
			big = l
		}
		if r < last && h[r] > h[big] {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return h
}
