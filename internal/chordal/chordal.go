// Package chordal implements the classical chordal-graph toolkit the paper
// builds on: maximum cardinality search, perfect elimination orderings,
// chordality recognition, maximal-clique enumeration (an n-node chordal
// graph has at most n maximal cliques), and the exact centralized baselines
// used to measure approximation factors — optimal coloring (χ = ω for
// chordal graphs) and maximum independent set (Gavril's algorithm).
package chordal

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
)

// MCS runs Maximum Cardinality Search and returns a vertex ordering
// v_1, ..., v_n (as a slice indexed from 0). If the graph is chordal, the
// returned ordering is a perfect elimination ordering. Ties are broken by
// smallest node ID, so the result is deterministic.
func MCS(g *graph.Graph) []graph.ID {
	n := g.NumNodes()
	order := make([]graph.ID, n) // filled from the back: selection order is v_n..v_1
	visited := make(map[graph.ID]bool, n)
	weight := make(map[graph.ID]int, n)

	pq := &mcsHeap{}
	heap.Init(pq)
	entries := make(map[graph.ID]*mcsEntry, n)
	for _, v := range g.Nodes() {
		e := &mcsEntry{node: v}
		entries[v] = e
		heap.Push(pq, e)
	}
	for i := n - 1; i >= 0; i-- {
		var v graph.ID
		for {
			e := heap.Pop(pq).(*mcsEntry)
			if e.stale {
				continue
			}
			v = e.node
			break
		}
		order[i] = v
		visited[v] = true
		for _, u := range g.Neighbors(v) {
			if visited[u] {
				continue
			}
			weight[u]++
			entries[u].stale = true
			e := &mcsEntry{node: u, weight: weight[u]}
			entries[u] = e
			heap.Push(pq, e)
		}
	}
	return order
}

type mcsEntry struct {
	node   graph.ID
	weight int
	stale  bool
}

// mcsHeap is a max-heap on (weight, then smaller ID preferred).
type mcsHeap []*mcsEntry

func (h mcsHeap) Len() int { return len(h) }
func (h mcsHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight > h[j].weight
	}
	return h[i].node < h[j].node
}
func (h mcsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mcsHeap) Push(x interface{}) { *h = append(*h, x.(*mcsEntry)) }
func (h *mcsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// IsPEO reports whether order is a perfect elimination ordering of g: for
// every vertex, its neighbors appearing later in the order form a clique.
func IsPEO(g *graph.Graph, order []graph.ID) bool {
	if len(order) != g.NumNodes() {
		return false
	}
	pos := make(map[graph.ID]int, len(order))
	for i, v := range order {
		if _, dup := pos[v]; dup || !g.HasNode(v) {
			return false
		}
		pos[v] = i
	}
	for i, v := range order {
		var later []graph.ID
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				later = append(later, u)
			}
		}
		if !g.IsClique(later) {
			return false
		}
	}
	return true
}

// IsChordal reports whether g is chordal (every cycle of length >= 4 has a
// chord), using the MCS characterization.
func IsChordal(g *graph.Graph) bool {
	return IsPEO(g, MCS(g))
}

// PEO returns a perfect elimination ordering of g, or an error if g is not
// chordal.
func PEO(g *graph.Graph) ([]graph.ID, error) {
	order := MCS(g)
	if !IsPEO(g, order) {
		return nil, fmt.Errorf("graph is not chordal (n=%d, m=%d)", g.NumNodes(), g.NumEdges())
	}
	return order, nil
}

// MaximalCliques enumerates the maximal cliques of a chordal graph using a
// perfect elimination ordering: the candidate cliques are
// C_i = {v_i} ∪ Γ_later(v_i), and C_i is maximal iff no vertex earlier in
// the order is adjacent to all of C_i. Cliques are returned as sorted sets,
// ordered by their position in the PEO. Returns an error if g is not
// chordal.
func MaximalCliques(g *graph.Graph) ([]graph.Set, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	pos := make(map[graph.ID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	var cliques []graph.Set
	for i, v := range order {
		cand := graph.Set{v}
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				cand = append(cand, u)
			}
		}
		cand = graph.NewSet(cand...)
		if isMaximalClique(g, cand, pos, i) {
			cliques = append(cliques, cand)
		}
	}
	return cliques, nil
}

// isMaximalClique reports whether no vertex earlier than position i is
// adjacent to every member of cand. (A common neighbor later than i would
// itself be in cand, so only earlier vertices can witness non-maximality.)
func isMaximalClique(g *graph.Graph, cand graph.Set, pos map[graph.ID]int, i int) bool {
	// Candidates are the earlier neighbors of cand's PEO-first vertex
	// (which is at position i); intersect with adjacency of the rest.
	v := cand[0]
	for _, u := range cand {
		if pos[u] == i {
			v = u
			break
		}
	}
	for _, u := range g.Neighbors(v) {
		if pos[u] >= i {
			continue
		}
		adjacentToAll := true
		for _, w := range cand {
			if w != v && !g.HasEdge(u, w) {
				adjacentToAll = false
				break
			}
		}
		if adjacentToAll {
			return false
		}
	}
	return true
}

// CliqueNumber returns ω(g) for a chordal graph g, which equals its
// chromatic number χ(g) (chordal graphs are perfect).
func CliqueNumber(g *graph.Graph) (int, error) {
	if g.NumNodes() == 0 {
		return 0, nil
	}
	order, err := PEO(g)
	if err != nil {
		return 0, err
	}
	pos := make(map[graph.ID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	best := 1
	for i, v := range order {
		size := 1
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				size++
			}
		}
		if size > best {
			best = size
		}
	}
	return best, nil
}

// OptimalColoring returns a minimum proper coloring of a chordal graph:
// vertices are colored in reverse perfect elimination order with the
// smallest available color, which uses exactly ω(g) = χ(g) colors.
// Colors are 1-based.
func OptimalColoring(g *graph.Graph) (map[graph.ID]int, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	colors := make(map[graph.ID]int, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		colors[v] = smallestFreeColor(g, v, colors)
	}
	return colors, nil
}

// smallestFreeColor returns the least positive color unused among v's
// already-colored neighbors.
func smallestFreeColor(g *graph.Graph, v graph.ID, colors map[graph.ID]int) int {
	used := make(map[int]bool)
	for _, u := range g.Neighbors(v) {
		if c, ok := colors[u]; ok {
			used[c] = true
		}
	}
	for c := 1; ; c++ {
		if !used[c] {
			return c
		}
	}
}

// MaximumIndependentSet returns a maximum independent set of a chordal
// graph via Gavril's algorithm: scan a perfect elimination ordering and
// take every vertex none of whose neighbors has been taken.
func MaximumIndependentSet(g *graph.Graph) (graph.Set, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	blocked := make(map[graph.ID]bool, len(order))
	var is graph.Set
	for _, v := range order {
		if blocked[v] {
			continue
		}
		is = append(is, v)
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return graph.NewSet(is...), nil
}

// IndependenceNumber returns α(g) for chordal g.
//
//chordalvet:coldpath α-rule helper, reference MIS over a materialized graph
func IndependenceNumber(g *graph.Graph) (int, error) {
	is, err := MaximumIndependentSet(g)
	if err != nil {
		return 0, err
	}
	return len(is), nil
}

// IsSimplicial reports whether v's neighborhood is a clique.
func IsSimplicial(g *graph.Graph, v graph.ID) bool {
	return g.IsClique(g.Neighbors(v))
}

// SimplicialVertices returns all simplicial vertices of g, sorted by ID.
func SimplicialVertices(g *graph.Graph) []graph.ID {
	var out []graph.ID
	for _, v := range g.Nodes() {
		if IsSimplicial(g, v) {
			out = append(out, v)
		}
	}
	return out
}
