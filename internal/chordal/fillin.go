package chordal

import (
	"sort"

	"repro/internal/graph"
)

// FillIn computes a chordal supergraph of g (a triangulation) with the
// classical minimum-degree elimination heuristic: repeatedly pick a
// minimum-degree vertex, turn its neighborhood into a clique (the added
// edges are the fill-in), and eliminate it. The reverse elimination order
// is a perfect elimination ordering of the result, so the output is
// chordal by construction.
//
// This supports the paper's concluding question — handling graphs with
// longer induced cycles: any coloring of the triangulation is a legal
// coloring of g, at the price of χ(triangulation) ≥ χ(g).
func FillIn(g *graph.Graph) (*graph.Graph, [][2]graph.ID) {
	if IsChordal(g) {
		// Min-degree elimination can add unnecessary fill even on chordal
		// inputs (a minimum-degree vertex need not be simplicial); chordal
		// graphs need no fill at all.
		return g.Clone(), nil
	}
	work := g.Clone()
	result := g.Clone()
	var fill [][2]graph.ID
	for work.NumNodes() > 0 {
		v := minDegreeVertex(work)
		nbrs := work.Neighbors(v)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if !result.HasEdge(nbrs[i], nbrs[j]) {
					result.AddEdge(nbrs[i], nbrs[j])
					work.AddEdge(nbrs[i], nbrs[j])
					fill = append(fill, [2]graph.ID{nbrs[i], nbrs[j]})
				}
			}
		}
		work.RemoveNode(v)
	}
	sort.Slice(fill, func(i, j int) bool {
		if fill[i][0] != fill[j][0] {
			return fill[i][0] < fill[j][0]
		}
		return fill[i][1] < fill[j][1]
	})
	return result, fill
}

func minDegreeVertex(g *graph.Graph) graph.ID {
	best := graph.ID(-1)
	bestDeg := 1 << 30
	for _, v := range g.Nodes() {
		if d := g.Degree(v); d < bestDeg || (d == bestDeg && v < best) {
			best = v
			bestDeg = d
		}
	}
	return best
}
