package chordal

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestIsChordalPositive(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New()},
		{"single", gen.Path(1)},
		{"path", gen.Path(10)},
		{"tree", gen.Tree(30, 1)},
		{"complete", gen.Complete(6)},
		{"triangle", gen.Cycle(3)},
		{"star", gen.Star(8)},
		{"interval", gen.RandomInterval(40, 10, 3, 2)},
		{"ktree", gen.KTree(25, 3, 3)},
	}
	for _, c := range cases {
		if !IsChordal(c.g) {
			t.Errorf("%s should be chordal", c.name)
		}
	}
}

func TestIsChordalNegative(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"C4", gen.Cycle(4)},
		{"C5", gen.Cycle(5)},
		{"C8", gen.Cycle(8)},
	}
	// 3x3 grid contains C4.
	grid := graph.New()
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			v := graph.ID(r*3 + c)
			if c+1 < 3 {
				grid.AddEdge(v, v+1)
			}
			if r+1 < 3 {
				grid.AddEdge(v, v+3)
			}
		}
	}
	cases = append(cases, struct {
		name string
		g    *graph.Graph
	}{"grid3x3", grid})
	for _, c := range cases {
		if IsChordal(c.g) {
			t.Errorf("%s should not be chordal", c.name)
		}
	}
}

func TestRandomChordalIsChordal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, seed)
		if !IsChordal(g) {
			t.Fatalf("seed %d: RandomChordal output is not chordal", seed)
		}
	}
}

func TestPEOErrorsOnNonChordal(t *testing.T) {
	if _, err := PEO(gen.Cycle(5)); err == nil {
		t.Fatal("PEO on C5 should fail")
	}
	if _, err := MaximalCliques(gen.Cycle(4)); err == nil {
		t.Fatal("MaximalCliques on C4 should fail")
	}
	if _, err := CliqueNumber(gen.Cycle(4)); err == nil {
		t.Fatal("CliqueNumber on C4 should fail")
	}
	if _, err := OptimalColoring(gen.Cycle(4)); err == nil {
		t.Fatal("OptimalColoring on C4 should fail")
	}
	if _, err := MaximumIndependentSet(gen.Cycle(4)); err == nil {
		t.Fatal("MaximumIndependentSet on C4 should fail")
	}
}

func TestMCSIsPEOOnChordal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(50, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		order := MCS(g)
		if len(order) != g.NumNodes() {
			t.Fatalf("MCS returned %d nodes, want %d", len(order), g.NumNodes())
		}
		if !IsPEO(g, order) {
			t.Fatalf("seed %d: MCS order is not a PEO", seed)
		}
	}
}

func TestIsPEORejectsBadOrders(t *testing.T) {
	// On P3 = a-b-c, order (b, a, c) is not a PEO: b's later neighbors
	// {a, c} are not adjacent.
	g := gen.Path(3)
	if IsPEO(g, []graph.ID{1, 0, 2}) {
		t.Fatal("middle-first path order accepted as PEO")
	}
	if IsPEO(g, []graph.ID{0, 1}) {
		t.Fatal("wrong-length order accepted")
	}
	if IsPEO(g, []graph.ID{0, 1, 1}) {
		t.Fatal("order with duplicates accepted")
	}
}

func TestMaximalCliquesSmall(t *testing.T) {
	g := graph.FromEdges(nil, [][2]graph.ID{{1, 2}, {2, 3}, {1, 3}, {3, 4}})
	cliques, err := MaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques: %v", len(cliques), cliques)
	}
	found := map[string]bool{}
	for _, c := range cliques {
		switch {
		case c.Equal(graph.NewSet(1, 2, 3)):
			found["tri"] = true
		case c.Equal(graph.NewSet(3, 4)):
			found["edge"] = true
		default:
			t.Fatalf("unexpected clique %v", c)
		}
	}
	if !found["tri"] || !found["edge"] {
		t.Fatalf("cliques = %v", cliques)
	}
}

func TestMaximalCliquesProperties(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		cliques, err := MaximalCliques(g)
		if err != nil {
			t.Fatal(err)
		}
		// At most n maximal cliques in a chordal graph.
		if len(cliques) > g.NumNodes() {
			t.Fatalf("seed %d: %d cliques > n=%d", seed, len(cliques), g.NumNodes())
		}
		covered := make(map[[2]graph.ID]bool)
		for _, c := range cliques {
			if !g.IsClique(c) {
				t.Fatalf("seed %d: %v is not a clique", seed, c)
			}
			// Maximality: no outside vertex adjacent to all members.
			for _, v := range g.Nodes() {
				if c.Contains(v) {
					continue
				}
				all := true
				for _, u := range c {
					if !g.HasEdge(v, u) {
						all = false
						break
					}
				}
				if all {
					t.Fatalf("seed %d: clique %v not maximal (extendable by %d)", seed, c, v)
				}
			}
			for i := 0; i < len(c); i++ {
				for j := i + 1; j < len(c); j++ {
					covered[[2]graph.ID{c[i], c[j]}] = true
				}
			}
		}
		// Every edge lies in some maximal clique.
		for _, e := range g.Edges() {
			if !covered[[2]graph.ID{e[0], e[1]}] {
				t.Fatalf("seed %d: edge %v not covered by any clique", seed, e)
			}
		}
		// No clique contains another.
		for i := range cliques {
			for j := range cliques {
				if i != j && cliques[i].SubsetOf(cliques[j]) {
					t.Fatalf("seed %d: clique %v ⊆ %v", seed, cliques[i], cliques[j])
				}
			}
		}
	}
}

func TestCliqueNumberKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.New(), 0},
		{"single", gen.Path(1), 1},
		{"path", gen.Path(10), 2},
		{"K6", gen.Complete(6), 6},
		{"star", gen.Star(9), 2},
		{"ktree3", gen.KTree(20, 3, 5), 4},
	}
	for _, c := range cases {
		got, err := CliqueNumber(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: ω = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestOptimalColoringUsesOmegaColors(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.RandomChordal(50, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.5}, seed)
		colors, err := OptimalColoring(g)
		if err != nil {
			t.Fatal(err)
		}
		used, err := verify.Coloring(g, colors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		omega, _ := CliqueNumber(g)
		if used != omega {
			t.Fatalf("seed %d: used %d colors, χ = ω = %d", seed, used, omega)
		}
	}
}

func TestOptimalColoringMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(12, gen.ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.5}, seed)
		colors, err := OptimalColoring(g)
		if err != nil {
			t.Fatal(err)
		}
		used, err := verify.Coloring(g, colors)
		if err != nil {
			t.Fatal(err)
		}
		want, err := verify.BruteForceChromatic(g)
		if err != nil {
			t.Fatal(err)
		}
		if used != want {
			t.Fatalf("seed %d: coloring uses %d, brute force χ = %d", seed, used, want)
		}
	}
}

func TestGavrilMISMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.RandomChordal(18, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		is, err := MaximumIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.IndependentSet(g, is); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := verify.BruteForceAlpha(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(is) != want {
			t.Fatalf("seed %d: |IS| = %d, α = %d", seed, len(is), want)
		}
	}
}

func TestGavrilMISOnPath(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 10, 11} {
		g := gen.Path(n)
		is, err := MaximumIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		want := (n + 1) / 2
		if len(is) != want {
			t.Fatalf("path(%d): |IS| = %d, want %d", n, len(is), want)
		}
	}
}

func TestSimplicial(t *testing.T) {
	// Triangle with a pendant: 4 is simplicial (deg 1), 1 and 2 are
	// simplicial (their neighborhoods are edges), 3 is not.
	g := graph.FromEdges(nil, [][2]graph.ID{{1, 2}, {2, 3}, {1, 3}, {3, 4}})
	if !IsSimplicial(g, 4) || !IsSimplicial(g, 1) || !IsSimplicial(g, 2) {
		t.Fatal("expected simplicial vertices missing")
	}
	if IsSimplicial(g, 3) {
		t.Fatal("3 should not be simplicial")
	}
	sv := SimplicialVertices(g)
	if len(sv) != 3 {
		t.Fatalf("SimplicialVertices = %v", sv)
	}
}

func TestIndependenceNumber(t *testing.T) {
	got, err := IndependenceNumber(gen.Star(10))
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("α(star10) = %d, want 9", got)
	}
}
