package chordal

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// bruteForceWeightedAlpha computes the exact maximum weight of an
// independent set by exhaustive search (n ≤ 25).
func bruteForceWeightedAlpha(g *graph.Graph, weight map[graph.ID]int) int {
	nodes := g.Nodes()
	best := 0
	var rec func(i, sum int, chosen []graph.ID)
	rec = func(i, sum int, chosen []graph.ID) {
		if sum > best {
			best = sum
		}
		for j := i; j < len(nodes); j++ {
			v := nodes[j]
			ok := true
			for _, u := range chosen {
				if g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				rec(j+1, sum+weight[v], append(chosen, v))
			}
		}
	}
	rec(0, 0, nil)
	return best
}

func TestWeightedMISMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := gen.RandomChordal(16, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		rng := rand.New(rand.NewSource(seed * 7))
		weight := make(map[graph.ID]int)
		for _, v := range g.Nodes() {
			weight[v] = rng.Intn(10)
		}
		is, total, err := MaximumWeightIndependentSet(g, weight)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.IndependentSet(g, is); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sum := 0
		for _, v := range is {
			sum += weight[v]
		}
		if sum != total {
			t.Fatalf("seed %d: reported total %d, actual %d", seed, total, sum)
		}
		want := bruteForceWeightedAlpha(g, weight)
		if total != want {
			t.Fatalf("seed %d: weight %d, optimum %d", seed, total, want)
		}
	}
}

func TestWeightedMISUnitWeightsEqualsAlpha(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		weight := make(map[graph.ID]int)
		for _, v := range g.Nodes() {
			weight[v] = 1
		}
		_, total, err := MaximumWeightIndependentSet(g, weight)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := IndependenceNumber(g)
		if err != nil {
			t.Fatal(err)
		}
		if total != alpha {
			t.Fatalf("seed %d: unit-weight MIS %d != α %d", seed, total, alpha)
		}
	}
}

func TestWeightedMISEdgeCases(t *testing.T) {
	// Negative weights rejected.
	g := gen.Path(3)
	if _, _, err := MaximumWeightIndependentSet(g, map[graph.ID]int{0: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Zero weights: the empty set is optimal and any output with weight 0
	// is fine.
	is, total, err := MaximumWeightIndependentSet(g, map[graph.ID]int{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("zero-weight total = %d", total)
	}
	if err := verify.IndependentSet(g, is); err != nil {
		t.Fatal(err)
	}
	// Non-chordal rejected.
	if _, _, err := MaximumWeightIndependentSet(gen.Cycle(4), map[graph.ID]int{0: 1}); err == nil {
		t.Fatal("non-chordal accepted")
	}
	// Weighted star: heavy center beats many light leaves.
	star := gen.Star(6)
	w := map[graph.ID]int{0: 100}
	for i := 1; i < 6; i++ {
		w[graph.ID(i)] = 1
	}
	_, total, err = MaximumWeightIndependentSet(star, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("star total = %d, want 100 (the heavy center)", total)
	}
}
