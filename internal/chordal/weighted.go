package chordal

import (
	"fmt"

	"repro/internal/graph"
)

// MaximumWeightIndependentSet computes an exact maximum-weight independent
// set of a chordal graph with non-negative node weights, using Frank's
// two-pass algorithm (1976) over a perfect elimination ordering:
//
// Forward pass: scanning the PEO, a node with residual weight > 0 becomes
// a candidate and charges its residual to all later neighbors (their
// residuals drop, floored at 0). Backward pass: candidates are taken
// greedily from the back whenever no already-taken neighbor blocks them.
//
// Missing weights count as 0 (such nodes never enter the set unless
// isolated ties require... they simply never become candidates).
func MaximumWeightIndependentSet(g *graph.Graph, weight map[graph.ID]int) (graph.Set, int, error) {
	for v, w := range weight {
		if w < 0 {
			return nil, 0, fmt.Errorf("negative weight %d on node %d", w, v)
		}
	}
	order, err := PEO(g)
	if err != nil {
		return nil, 0, err
	}
	pos := make(map[graph.ID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	residual := make(map[graph.ID]int, len(order))
	for _, v := range order {
		residual[v] = weight[v]
	}
	candidate := make([]bool, len(order))
	for i, v := range order {
		if residual[v] <= 0 {
			continue
		}
		candidate[i] = true
		charge := residual[v]
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				residual[u] -= charge
				if residual[u] < 0 {
					residual[u] = 0
				}
			}
		}
	}
	taken := make(map[graph.ID]bool, len(order))
	var out graph.Set
	total := 0
	for i := len(order) - 1; i >= 0; i-- {
		if !candidate[i] {
			continue
		}
		v := order[i]
		blocked := false
		for _, u := range g.Neighbors(v) {
			if taken[u] {
				blocked = true
				break
			}
		}
		if !blocked {
			taken[v] = true
			out = append(out, v)
			total += weight[v]
		}
	}
	return graph.NewSet(out...), total, nil
}
