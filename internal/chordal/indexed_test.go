package chordal

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestCliqueNumberIndexedMatches(t *testing.T) {
	cases := []*graph.Graph{
		graph.New(),
		gen.Path(1),
		gen.Path(25),
		gen.Star(9),
		gen.Complete(7),
		gen.Caterpillar(8, 3),
	}
	for seed := int64(0); seed < 8; seed++ {
		cases = append(cases,
			gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, seed),
			gen.KTree(50, 3, seed),
			gen.Tree(60, seed),
			gen.RandomChordalSubtree(120, 3, 5, seed),
		)
	}
	for i, g := range cases {
		want, err := CliqueNumber(g)
		if err != nil {
			t.Fatalf("case %d: reference: %v", i, err)
		}
		got, err := CliqueNumberIndexed(graph.NewIndexed(g))
		if err != nil {
			t.Fatalf("case %d: indexed: %v", i, err)
		}
		if got != want {
			t.Fatalf("case %d: ω = %d, want %d", i, got, want)
		}
	}
}

func TestCliqueNumberIndexedNonChordal(t *testing.T) {
	g := gen.Cycle(6)
	_, wantErr := CliqueNumber(g)
	if wantErr == nil {
		t.Fatal("reference accepted C6")
	}
	_, err := CliqueNumberIndexed(graph.NewIndexed(g))
	if err == nil {
		t.Fatal("indexed accepted C6")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("error text %q vs %q", err, wantErr)
	}
}
