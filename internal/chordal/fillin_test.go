package chordal

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestFillInProducesChordalSupergraph(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"C4", gen.Cycle(4)},
		{"C7", gen.Cycle(7)},
		{"gnp", gen.GNP(30, 0.15, 3)},
		{"gnp dense", gen.GNP(25, 0.4, 4)},
		{"already chordal", gen.RandomChordal(40, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 5)},
	}
	for _, c := range cases {
		tri, fill := FillIn(c.g)
		if !IsChordal(tri) {
			t.Errorf("%s: triangulation not chordal", c.name)
		}
		// Supergraph: all original edges present, all fill edges new.
		for _, e := range c.g.Edges() {
			if !tri.HasEdge(e[0], e[1]) {
				t.Errorf("%s: lost edge %v", c.name, e)
			}
		}
		if tri.NumEdges() != c.g.NumEdges()+len(fill) {
			t.Errorf("%s: edge accounting off: %d != %d + %d",
				c.name, tri.NumEdges(), c.g.NumEdges(), len(fill))
		}
		for _, e := range fill {
			if c.g.HasEdge(e[0], e[1]) {
				t.Errorf("%s: fill edge %v already existed", c.name, e)
			}
		}
	}
}

func TestFillInNoopOnChordal(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 8)
	_, fill := FillIn(g)
	if len(fill) != 0 {
		t.Fatalf("min-degree fill-in added %d edges to a chordal graph", len(fill))
	}
}

func TestFillInCycleMinimal(t *testing.T) {
	// Triangulating C_n needs exactly n-3 fill edges; the min-degree
	// heuristic achieves it on cycles.
	for _, n := range []int{4, 5, 8, 12} {
		_, fill := FillIn(gen.Cycle(n))
		if len(fill) != n-3 {
			t.Fatalf("C%d: %d fill edges, want %d", n, len(fill), n-3)
		}
	}
}

func TestFillInColoringIsLegalForOriginal(t *testing.T) {
	g := gen.GNP(40, 0.2, 9)
	tri, _ := FillIn(g)
	colors, err := OptimalColoring(tri)
	if err != nil {
		t.Fatal(err)
	}
	// A proper coloring of the supergraph is proper for g.
	if _, err := verify.Coloring(g, colors); err != nil {
		t.Fatal(err)
	}
}
