package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Link is the coordinator's handle on one shard-host process. It
// implements dist.ShardLink over the framed protocol and dist.WireMeter
// by counting every frame byte in both directions. All methods are
// called from the single goroutine driving the coordinator, matching
// the ShardLink contract, so no locking is needed.
type Link struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	in, out int64
	shard   int
	closed  bool
}

func newLink(conn net.Conn) *Link {
	return &Link{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
}

// Shard returns the shard index the peer announced in its hello.
func (l *Link) Shard() int { return l.shard }

func (l *Link) send(kind byte, body any) error {
	n, err := writeFrame(l.bw, kind, body)
	l.out += int64(n)
	if err != nil {
		return fmt.Errorf("wire: shard %d: %w", l.shard, err)
	}
	return nil
}

func (l *Link) recv(want byte, msg any) error {
	kind, body, n, err := readFrame(l.br)
	l.in += int64(n)
	if err != nil {
		return fmt.Errorf("wire: shard %d: %w", l.shard, err)
	}
	if kind != want {
		return fmt.Errorf("wire: shard %d sent frame kind %d, want %d", l.shard, kind, want)
	}
	if msg == nil {
		return nil
	}
	if err := decodeBody(body, msg); err != nil {
		return fmt.Errorf("wire: shard %d: %w", l.shard, err)
	}
	return nil
}

// readHello awaits the child's hello frame.
func (l *Link) readHello() (int, error) {
	var h helloMsg
	if err := l.recv(kindHello, &h); err != nil {
		return 0, err
	}
	return h.Shard, nil
}

// beginSession ships a snapshot's CSR to the shard; awaitSession awaits
// the rebuild ack. Split so Cluster.Partition pipelines over shards.
func (l *Link) beginSession(ids []graph.ID, rowPtr, colIdx []int32) error {
	return l.send(kindSession, sessionMsg{IDs: ids, RowPtr: rowPtr, ColIdx: colIdx})
}

func (l *Link) awaitSession() error {
	var ok okMsg
	if err := l.recv(kindSessionOK, &ok); err != nil {
		return err
	}
	if ok.Err != "" {
		return errors.New(ok.Err)
	}
	return nil
}

// Start implements dist.ShardLink.
func (l *Link) Start(cfg dist.ShardConfig) error {
	if err := l.send(kindStart, startMsg{Cfg: cfg}); err != nil {
		return err
	}
	var ok okMsg
	if err := l.recv(kindStartOK, &ok); err != nil {
		return err
	}
	if ok.Err != "" {
		return errors.New(ok.Err)
	}
	return nil
}

// Step implements dist.ShardLink.
func (l *Link) Step(round int) error {
	return l.send(kindStep, stepMsg{Round: round})
}

// StepResult implements dist.ShardLink.
func (l *Link) StepResult() (*dist.ShardStepResult, error) {
	var msg stepResultMsg
	if err := l.recv(kindStepResult, &msg); err != nil {
		return nil, err
	}
	return &msg.Res, nil
}

// Deliver implements dist.ShardLink.
func (l *Link) Deliver(round int, msgs []dist.PartMsg) error {
	return l.send(kindDeliver, deliverMsg{Round: round, Msgs: msgs})
}

// DeliverResult implements dist.ShardLink.
func (l *Link) DeliverResult() (int, error) {
	var msg deliverOKMsg
	if err := l.recv(kindDeliverOK, &msg); err != nil {
		return 0, err
	}
	if msg.Err != "" {
		return 0, errors.New(msg.Err)
	}
	return msg.MaxInbox, nil
}

// Outputs implements dist.ShardLink.
func (l *Link) Outputs() ([][]byte, error) {
	if err := l.send(kindOutputs, nil); err != nil {
		return nil, err
	}
	var msg outputsDataMsg
	if err := l.recv(kindOutputsData, &msg); err != nil {
		return nil, err
	}
	if msg.Err != "" {
		return nil, errors.New(msg.Err)
	}
	return msg.Data, nil
}

// Close implements dist.ShardLink: a best-effort shutdown frame, then
// the connection drops. Idempotent.
func (l *Link) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	_ = l.send(kindShutdown, nil)
	return l.conn.Close()
}

// WireBytes implements dist.WireMeter.
func (l *Link) WireBytes() (in, out int64) { return l.in, l.out }

// Dial/accept tuning. The schedule is fixed (no clock reads): attempt i
// sleeps i·dialBackoffStep before retrying, ~32s total across
// dialAttempts tries.
const (
	dialTimeout     = 2 * time.Second
	dialBackoffStep = 10 * time.Millisecond
	dialAttempts    = 80
	acceptTimeout   = 60 * time.Second
)

// DialRetry dials the coordinator with linear backoff, retrying
// transient failures: a shard host typically races the coordinator's
// listener coming up, and localhost dials also fail transiently under
// fork storms.
func DialRetry(addr string) (net.Conn, error) {
	var lastErr error
	for attempt := 1; attempt <= dialAttempts; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(time.Duration(attempt) * dialBackoffStep)
	}
	return nil, fmt.Errorf("wire: dialing coordinator %s: %w", addr, lastErr)
}

// SpawnFunc launches the shard-host child process for one shard. It
// must Start the process and return its handle; the cluster owns
// waiting and killing. addr is the coordinator's listen address the
// child must dial.
type SpawnFunc func(shard int, addr string) (*exec.Cmd, error)

// Cluster is a set of connected shard-host processes. Build one with
// StartCluster, then derive a dist.Partition per graph with Partition
// (re-sendable — multi-graph workloads push a fresh session each time),
// and Close when done.
type Cluster struct {
	ln    net.Listener
	links []*Link
	procs []*exec.Cmd
	parts int
}

// StartCluster listens on an ephemeral localhost port, spawns parts
// shard hosts, and accepts their hellos. The accept loop runs on the
// calling goroutine; a one-shot timer closes the listener if the fleet
// does not connect within acceptTimeout, surfacing as an accept error
// rather than a hang.
func StartCluster(parts int, spawn SpawnFunc) (*Cluster, error) {
	if parts < 1 {
		return nil, fmt.Errorf("wire: cluster needs at least 1 shard, got %d", parts)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wire: listening for shard hosts: %w", err)
	}
	c := &Cluster{ln: ln, parts: parts, links: make([]*Link, parts)}
	addr := ln.Addr().String()
	for s := 0; s < parts; s++ {
		cmd, err := spawn(s, addr)
		if err != nil {
			c.abort()
			return nil, fmt.Errorf("wire: spawning shard %d: %w", s, err)
		}
		if cmd != nil {
			c.procs = append(c.procs, cmd)
		}
	}
	timer := time.AfterFunc(acceptTimeout, func() { ln.Close() })
	defer timer.Stop()
	for i := 0; i < parts; i++ {
		conn, err := ln.Accept()
		if err != nil {
			c.abort()
			return nil, fmt.Errorf("wire: accepting shard hosts (%d of %d connected): %w", i, parts, err)
		}
		l := newLink(conn)
		shard, err := l.readHello()
		if err != nil {
			l.Close()
			c.abort()
			return nil, err
		}
		if shard < 0 || shard >= parts || c.links[shard] != nil {
			l.Close()
			c.abort()
			return nil, fmt.Errorf("wire: unexpected hello for shard %d (%d shards, duplicate=%v)",
				shard, parts, shard >= 0 && shard < parts && c.links[shard] != nil)
		}
		l.shard = shard
		c.links[shard] = l
	}
	ln.Close()
	c.ln = nil
	return c, nil
}

// Partition ships ix to every shard host and returns the partition for
// it. When ix has fewer nodes than the cluster has shards, only the
// first NumNodes links participate (the rest stay idle for this graph).
func (c *Cluster) Partition(ix *graph.Indexed) (*dist.Partition, error) {
	ids, rowPtr, colIdx := ix.CSR()
	ranges := dist.SplitRange(ix.NumNodes(), c.parts)
	for _, l := range c.links[:len(ranges)] {
		if err := l.beginSession(ids, rowPtr, colIdx); err != nil {
			return nil, err
		}
	}
	p := &dist.Partition{Ranges: ranges}
	for _, l := range c.links[:len(ranges)] {
		if err := l.awaitSession(); err != nil {
			return nil, err
		}
		p.Links = append(p.Links, l)
	}
	return p, nil
}

// Close shuts the fleet down gracefully: shutdown frames, connection
// teardown, then reaping every child. Children exit as soon as their
// connection drops, so the waits complete promptly.
func (c *Cluster) Close() error {
	var first error
	for _, l := range c.links {
		if l != nil {
			if err := l.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if c.ln != nil {
		c.ln.Close()
		c.ln = nil
	}
	for _, cmd := range c.procs {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("wire: shard host exited: %w", err)
		}
	}
	c.procs = nil
	return first
}

// abort tears the fleet down on a startup failure: children may still
// be dialing (never connected), so they are killed rather than waited
// into their backoff schedule.
func (c *Cluster) abort() {
	for _, l := range c.links {
		if l != nil {
			l.Close()
		}
	}
	if c.ln != nil {
		c.ln.Close()
		c.ln = nil
	}
	for _, cmd := range c.procs {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}
	c.procs = nil
}

// Shard-host environment: when these are set, the process is a shard
// host child and must call MaybeShardHost before doing anything else.
const (
	envAddr  = "CHORDALD_SHARD_ADDR"
	envShard = "CHORDALD_SHARD_INDEX"
)

// SelfSpawn returns a SpawnFunc that re-executes the current binary as
// a shard host via environment variables. The binary must call
// MaybeShardHost at the top of main (before flag parsing), which
// hijacks the process when the variables are set.
func SelfSpawn() SpawnFunc {
	return func(shard int, addr string) (*exec.Cmd, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envAddr+"="+addr,
			envShard+"="+strconv.Itoa(shard),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmd, nil
	}
}

// MaybeShardHost turns the process into a shard host when the spawn
// environment is set, serving until shutdown and exiting; it returns
// immediately (doing nothing) otherwise. Call it first thing in main.
func MaybeShardHost() {
	addr := os.Getenv(envAddr)
	if addr == "" {
		return
	}
	shard, err := strconv.Atoi(os.Getenv(envShard))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wire: bad %s: %v\n", envShard, err)
		os.Exit(1)
	}
	if err := RunShard(addr, shard); err != nil {
		fmt.Fprintf(os.Stderr, "wire: shard %d: %v\n", shard, err)
		os.Exit(1)
	}
	os.Exit(0)
}
