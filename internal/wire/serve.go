package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/internal/dist"
	"repro/internal/graph"
)

// RunShard dials the coordinator at addr (with retry — the listener may
// not be up yet), announces the shard index, and serves the shard
// protocol until shutdown or disconnect. This is the entire life of a
// shard-host process; cmd/chordald-shard and MaybeShardHost are thin
// wrappers around it.
func RunShard(addr string, shard int) error {
	conn, err := DialRetry(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	if _, err := writeFrame(bw, kindHello, helloMsg{Shard: shard}); err != nil {
		return err
	}
	return ServeConn(conn, bw)
}

// ServeConn runs the shard side of the protocol on an established
// connection: sessions swap in graph snapshots, starts build a
// dist.ShardRunner for the configured range, and step/deliver/outputs
// requests drive it. Everything runs on the calling goroutine — a shard
// host is single-threaded by design, the coordinator is its scheduler.
// A clean disconnect (EOF) is a normal shutdown.
func ServeConn(conn net.Conn, bw *bufio.Writer) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	var ix *graph.Indexed
	var runner *dist.ShardRunner
	reply := func(kind byte, msg any) error {
		_, err := writeFrame(bw, kind, msg)
		return err
	}
	errStr := func(err error) string {
		if err == nil {
			return ""
		}
		return err.Error()
	}
	for {
		kind, body, _, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch kind {
		case kindSession:
			var msg sessionMsg
			if err := decodeBody(body, &msg); err != nil {
				return err
			}
			six, serr := graph.NewIndexedFromCSR(msg.IDs, msg.RowPtr, msg.ColIdx)
			if serr == nil {
				ix = six
				runner = nil
			}
			if err := reply(kindSessionOK, okMsg{Err: errStr(serr)}); err != nil {
				return err
			}
		case kindStart:
			var msg startMsg
			if err := decodeBody(body, &msg); err != nil {
				return err
			}
			var serr error
			if ix == nil {
				serr = fmt.Errorf("wire: start before a session")
			} else {
				runner, serr = dist.NewShardRunner(ix, msg.Cfg)
			}
			if err := reply(kindStartOK, okMsg{Err: errStr(serr)}); err != nil {
				return err
			}
		case kindStep:
			var msg stepMsg
			if err := decodeBody(body, &msg); err != nil {
				return err
			}
			if runner == nil {
				return fmt.Errorf("wire: step before a start")
			}
			res := runner.Step(msg.Round)
			if err := reply(kindStepResult, stepResultMsg{Res: *res}); err != nil {
				return err
			}
		case kindDeliver:
			var msg deliverMsg
			if err := decodeBody(body, &msg); err != nil {
				return err
			}
			if runner == nil {
				return fmt.Errorf("wire: deliver before a start")
			}
			maxInbox, derr := runner.Deliver(msg.Msgs)
			if err := reply(kindDeliverOK, deliverOKMsg{MaxInbox: maxInbox, Err: errStr(derr)}); err != nil {
				return err
			}
		case kindOutputs:
			if runner == nil {
				return fmt.Errorf("wire: outputs before a start")
			}
			data, oerr := runner.Outputs()
			if err := reply(kindOutputsData, outputsDataMsg{Data: data, Err: errStr(oerr)}); err != nil {
				return err
			}
		case kindShutdown:
			return nil
		default:
			return fmt.Errorf("wire: unexpected frame kind %d", kind)
		}
	}
}
