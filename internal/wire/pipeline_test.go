package wire

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestClusterColoringMatchesLocal is the end-to-end cross-check over
// real OS processes: the full distributed coloring pipeline — pruning
// floods, Lemma-12 cross-check, coloring, correction choreography — on
// a 2-process cluster must be byte-identical to the LOCAL run, fault
// free and under an absorbed dup/delay schedule. The shard hosts run
// the "correction" program registered by internal/core's init (this
// test binary re-executes itself, see TestMain), proving the program
// registry works across the process boundary.
func TestClusterColoringMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	cl, err := StartCluster(2, SelfSpawn())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}()
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 13)
	ix := graph.NewIndexed(g)
	for _, spec := range []string{"", "dup=0.25,delay=2"} {
		at := fmt.Sprintf("%q", spec)
		var lf, pf *dist.Faults
		if spec != "" {
			if lf, err = dist.ParseFaults(spec, 29); err != nil {
				t.Fatal(err)
			}
			if pf, err = dist.ParseFaults(spec, 29); err != nil {
				t.Fatal(err)
			}
		}
		want, err := core.ColorChordalDistributedFaulty(g, 0.5, nil, nil, lf)
		if err != nil {
			t.Fatalf("%s: local: %v", at, err)
		}
		part, err := cl.Partition(ix)
		if err != nil {
			t.Fatalf("%s: partition: %v", at, err)
		}
		got, err := core.ColorChordalDistributedFaultyPart(g, 0.5, nil, nil, pf, part)
		if err != nil {
			t.Fatalf("%s: cluster: %v", at, err)
		}
		if got.ColorsUsed != want.ColorsUsed || got.Rounds != want.Rounds {
			t.Fatalf("%s: (colors %d, rounds %d), want (%d, %d)",
				at, got.ColorsUsed, got.Rounds, want.ColorsUsed, want.Rounds)
		}
		for v, c := range want.Colors {
			if got.Colors[v] != c {
				t.Fatalf("%s: node %d colored %d, want %d", at, v, got.Colors[v], c)
			}
		}
	}
}

// TestClusterMISMatchesLocal: same end-to-end process cross-check for
// the MIS pipeline.
func TestClusterMISMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	cl, err := StartCluster(2, SelfSpawn())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}()
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 47)
	want, err := core.MISChordalDistributedFaulty(g, 0.5, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := cl.Partition(graph.NewIndexed(g))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.MISChordalDistributedFaultyPart(g, 0.5, nil, nil, nil, part)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Set.Equal(want.Set) {
		t.Fatalf("MIS diverges: %v vs %v", got.Set, want.Set)
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("%d rounds, want %d", got.Rounds, want.Rounds)
	}
}
