// Package wire is the out-of-process transport of the partitioned
// runtime: it hosts dist.ShardRunner ranges in child OS processes and
// exposes them to the coordinator as dist.ShardLinks over localhost
// TCP.
//
// The protocol is strictly request/response per link with a
// begin/await split (Step and Deliver broadcast to every shard before
// any result is awaited), so one batched frame crosses the wire per
// round per peer in each direction. Frames are length-prefixed: a
// 4-byte big-endian length covering a kind byte plus a gob-encoded
// body. Children dial the coordinator (with retry/backoff — the
// listener may come up after the child), announce their shard index,
// and serve until shutdown or disconnect.
//
// Determinism is inherited, not re-established: the shard protocol
// transports dist's already-deterministic step/deliver sequence, so a
// partitioned run over this package is byte-identical to a LOCAL
// engine run (internal/dist's partition tests pin that property on the
// in-process transport; internal/core's cross-check suite pins it on
// this one).
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dist"
	"repro/internal/graph"
)

// Frame kinds. Requests flow coordinator→shard, results shard→
// coordinator; hello is the one child-initiated frame.
const (
	kindHello byte = iota + 1
	kindSession
	kindSessionOK
	kindStart
	kindStartOK
	kindStep
	kindStepResult
	kindDeliver
	kindDeliverOK
	kindOutputs
	kindOutputsData
	kindShutdown
)

// maxFrame bounds a frame's length field: a malformed or corrupted
// header must fail loudly, not allocate gigabytes.
const maxFrame = 1 << 30

type helloMsg struct {
	Shard int
}

// sessionMsg ships a graph snapshot in CSR form; the shard rebuilds an
// identical graph.Indexed via graph.NewIndexedFromCSR (which validates
// the transfer). Re-sendable: multi-graph workloads push a new session
// before each graph's runs.
type sessionMsg struct {
	IDs    []graph.ID
	RowPtr []int32
	ColIdx []int32
}

// okMsg acknowledges session and start requests; a non-empty Err is the
// shard-side error verbatim.
type okMsg struct {
	Err string
}

type startMsg struct {
	Cfg dist.ShardConfig
}

type stepMsg struct {
	Round int
}

type stepResultMsg struct {
	Res dist.ShardStepResult
}

type deliverMsg struct {
	Round int
	Msgs  []dist.PartMsg
}

type deliverOKMsg struct {
	MaxInbox int
	Err      string
}

type outputsDataMsg struct {
	Data [][]byte
	Err  string
}

// writeFrame encodes body (nil for bodyless kinds), writes one framed
// message, flushes, and returns the bytes put on the wire.
func writeFrame(w *bufio.Writer, kind byte, body any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := gob.NewEncoder(&buf).Encode(body); err != nil {
			return 0, fmt.Errorf("wire: encoding frame kind %d: %w", kind, err)
		}
	}
	if buf.Len()+1 > maxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds the %d limit", buf.Len()+1, maxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(buf.Len()+1))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return 5 + buf.Len(), w.Flush()
}

// readFrame reads one framed message and returns its kind, body, and
// on-wire size.
func readFrame(r *bufio.Reader) (kind byte, body []byte, size int, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, 0, fmt.Errorf("wire: frame length %d out of range [1, %d]", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return payload[0], payload[1:], int(4 + n), nil
}

// decodeBody gob-decodes a frame body into msg.
func decodeBody(body []byte, msg any) error {
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(msg); err != nil {
		return fmt.Errorf("wire: decoding frame body: %w", err)
	}
	return nil
}
