package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestMain makes the test binary a valid shard host: when re-executed
// with the spawn environment set (the cluster tests use SelfSpawn), the
// process serves its shard and exits before any test runs.
func TestMain(m *testing.M) {
	MaybeShardHost()
	os.Exit(m.Run())
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	n, err := writeFrame(bw, kindStep, stepMsg{Round: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("writeFrame reported %d bytes, wrote %d", n, buf.Len())
	}
	n2, err := writeFrame(bw, kindShutdown, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 5 {
		t.Fatalf("bodyless frame is %d bytes, want 5", n2)
	}
	br := bufio.NewReader(&buf)
	kind, body, size, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if kind != kindStep || size != n {
		t.Fatalf("read (kind %d, %d bytes), want (kind %d, %d bytes)", kind, size, kindStep, n)
	}
	var msg stepMsg
	if err := decodeBody(body, &msg); err != nil {
		t.Fatal(err)
	}
	if msg.Round != 7 {
		t.Fatalf("round %d, want 7", msg.Round)
	}
	kind, body, _, err = readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if kind != kindShutdown || len(body) != 0 {
		t.Fatalf("read (kind %d, %d body bytes), want bodyless shutdown", kind, len(body))
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, kindStep}
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// servedPartition hosts parts shard ranges on goroutines behind real
// TCP connections: the full wire protocol without child processes, so
// failures are debuggable in one process. The cleanup joins every
// serve goroutine.
func servedPartition(t *testing.T, ix *graph.Indexed, parts int) (*dist.Partition, []*Link, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, parts)
	for s := 0; s < parts; s++ {
		go func(shard int) {
			conn, err := DialRetry(ln.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			bw := bufio.NewWriterSize(conn, 1<<16)
			if _, err := writeFrame(bw, kindHello, helloMsg{Shard: shard}); err != nil {
				done <- err
				return
			}
			done <- ServeConn(conn, bw)
		}(s)
	}
	links := make([]*Link, parts)
	for i := 0; i < parts; i++ {
		conn, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		l := newLink(conn)
		shard, err := l.readHello()
		if err != nil {
			t.Fatal(err)
		}
		l.shard = shard
		links[shard] = l
	}
	ln.Close()
	ids, rowPtr, colIdx := ix.CSR()
	for _, l := range links {
		if err := l.beginSession(ids, rowPtr, colIdx); err != nil {
			t.Fatal(err)
		}
	}
	p := &dist.Partition{Ranges: dist.SplitRange(ix.NumNodes(), parts)}
	for _, l := range links {
		if err := l.awaitSession(); err != nil {
			t.Fatal(err)
		}
		p.Links = append(p.Links, l)
	}
	cleanup := func() {
		for _, l := range links {
			l.Close()
		}
		for i := 0; i < parts; i++ {
			if err := <-done; err != nil {
				t.Errorf("serve goroutine: %v", err)
			}
		}
	}
	return p, links, cleanup
}

// checkSameKnowledge compares two balls through the exported Knowledge
// API (the dist package's own partition tests pin field-level
// equality; here the wire transport must preserve it).
func checkSameKnowledge(t *testing.T, at string, n int, a, b *dist.Knowledge) {
	t.Helper()
	if a.Center != b.Center || a.Radius != b.Radius || a.RecordCount() != b.RecordCount() {
		t.Fatalf("%s: knowledge header (%d, %d, %d) != (%d, %d, %d)", at,
			a.Center, a.Radius, a.RecordCount(), b.Center, b.Radius, b.RecordCount())
	}
	for i := 0; i < a.RecordCount(); i++ {
		ai, ad, _ := a.RecordAt(i)
		bi, bd, _ := b.RecordAt(i)
		if ai != bi || ad != bd {
			t.Fatalf("%s: record %d (idx %d dist %d) != (idx %d dist %d)", at, i, ai, ad, bi, bd)
		}
	}
	for i := int32(0); int(i) < n; i++ {
		if a.KnownIdx(i) != b.KnownIdx(i) {
			t.Fatalf("%s: KnownIdx(%d) diverges", at, i)
		}
	}
	if a.CoversComponent() != b.CoversComponent() {
		t.Fatalf("%s: CoversComponent diverges", at)
	}
}

// wireRecorder captures round stats plus the WireRound extension.
type wireRecorder struct {
	rounds []dist.RoundStats
	wire   [][3]int64
}

func (o *wireRecorder) RunStart(nodes, edges int)    {}
func (o *wireRecorder) RoundStart(round, shards int) {}
func (o *wireRecorder) ShardStart(shard int)         {}
func (o *wireRecorder) ShardEnd(shard int)           {}
func (o *wireRecorder) RoundEnd(s dist.RoundStats)   { o.rounds = append(o.rounds, s) }
func (o *wireRecorder) RunEnd(rounds int)            {}
func (o *wireRecorder) WireRound(round int, in, out int64) {
	o.wire = append(o.wire, [3]int64{int64(round), in, out})
}

func TestServedLinksMatchLocal(t *testing.T) {
	g := gen.RandomChordal(90, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 7)
	ix := graph.NewIndexed(g)
	n := ix.NumNodes()
	notes := make([]any, n)
	for i := range notes {
		if i%2 == 0 {
			notes[i] = i
		}
	}
	for _, spec := range []string{"", "drop=0.1,dup=0.2,delay=1"} {
		var lf, pf *dist.Faults
		var err error
		if spec != "" {
			if lf, err = dist.ParseFaults(spec, 5); err != nil {
				t.Fatal(err)
			}
			if pf, err = dist.ParseFaults(spec, 5); err != nil {
				t.Fatal(err)
			}
		}
		lKs, lRes, err := dist.CollectBallsByIndex(ix, 3, notes, nil, lf)
		if err != nil {
			t.Fatalf("%q: local: %v", spec, err)
		}
		part, links, cleanup := servedPartition(t, ix, 3)
		obs := &wireRecorder{}
		pKs, pRes, err := dist.CollectBallsByIndexPart(part, ix, 3, notes, obs, pf)
		if err != nil {
			t.Fatalf("%q: wire: %v", spec, err)
		}
		if lRes.Rounds != pRes.Rounds || lRes.Messages != pRes.Messages || lRes.Volume != pRes.Volume ||
			lRes.Dropped != pRes.Dropped || lRes.Duplicated != pRes.Duplicated || lRes.Stall != pRes.Stall {
			t.Fatalf("%q: results diverge: local %+v wire %+v", spec, lRes, pRes)
		}
		for i := range lKs {
			checkSameKnowledge(t, fmt.Sprintf("%q idx %d", spec, i), n, lKs[i], pKs[i])
		}
		if len(obs.wire) != len(obs.rounds) {
			t.Fatalf("%q: %d WireRound calls for %d rounds", spec, len(obs.wire), len(obs.rounds))
		}
		for _, w := range obs.wire {
			if w[1] <= 0 || w[2] <= 0 {
				t.Fatalf("%q: round %d moved (%d in, %d out) bytes on the wire", spec, w[0], w[1], w[2])
			}
		}
		for _, l := range links {
			in, out := l.WireBytes()
			if in <= 0 || out <= 0 {
				t.Fatalf("%q: shard %d meter (%d, %d)", spec, l.Shard(), in, out)
			}
		}
		cleanup()
	}
}

func TestClusterProcessesMatchLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	cl, err := StartCluster(2, SelfSpawn())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}()
	// Two graphs through the same cluster: sessions are re-sendable.
	graphs := []*graph.Graph{
		gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 3),
		gen.Path(25),
	}
	for gi, g := range graphs {
		ix := graph.NewIndexed(g)
		n := ix.NumNodes()
		for _, spec := range []string{"", "drop=0.15,dup=0.1"} {
			var lf, pf *dist.Faults
			if spec != "" {
				if lf, err = dist.ParseFaults(spec, 11); err != nil {
					t.Fatal(err)
				}
				if pf, err = dist.ParseFaults(spec, 11); err != nil {
					t.Fatal(err)
				}
			}
			lKs, lRes, err := dist.CollectBallsByIndex(ix, 2, nil, nil, lf)
			if err != nil {
				t.Fatalf("graph %d %q: local: %v", gi, spec, err)
			}
			part, err := cl.Partition(ix)
			if err != nil {
				t.Fatalf("graph %d %q: partition: %v", gi, spec, err)
			}
			pKs, pRes, err := dist.CollectBallsByIndexPart(part, ix, 2, nil, nil, pf)
			if err != nil {
				t.Fatalf("graph %d %q: cluster: %v", gi, spec, err)
			}
			if lRes.Rounds != pRes.Rounds || lRes.Messages != pRes.Messages || lRes.Volume != pRes.Volume ||
				lRes.Dropped != pRes.Dropped || lRes.Duplicated != pRes.Duplicated {
				t.Fatalf("graph %d %q: results diverge: local %+v cluster %+v", gi, spec, lRes, pRes)
			}
			for i := range lKs {
				checkSameKnowledge(t, fmt.Sprintf("graph %d %q idx %d", gi, spec, i), n, lKs[i], pKs[i])
			}
		}
	}
}

func TestDialRetryWaitsForListener(t *testing.T) {
	// Reserve an address, close it, and bring the listener up only
	// after a delay: DialRetry must ride its backoff schedule through
	// the gap.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	accepted := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			accepted <- err
			return
		}
		defer ln2.Close()
		conn, err := ln2.Accept()
		if err == nil {
			conn.Close()
		}
		accepted <- err
	}()
	conn, err := DialRetry(addr)
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	conn.Close()
	if err := <-accepted; err != nil {
		t.Fatalf("delayed listener: %v", err)
	}
}
