// Package baseline implements the comparator algorithms the paper's
// introduction cites: sequential greedy (Δ+1) coloring, a distributed
// (Δ+1) coloring via Linial reduction, Luby's randomized maximal
// independent set, and the sequential greedy maximal independent set.
// None of these carry approximation guarantees for MVC/MIS — they are the
// yardsticks our (1+ε) algorithms are measured against (experiment E14).
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/colorreduce"
	"repro/internal/dist"
	"repro/internal/graph"
)

// GreedyColoring colors nodes in increasing ID order with the smallest
// free color, the classical sequential (Δ+1) heuristic. Colors are
// 1-based.
func GreedyColoring(g *graph.Graph) map[graph.ID]int {
	colors := make(map[graph.ID]int, g.NumNodes())
	for _, v := range g.Nodes() {
		used := make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			if c, ok := colors[u]; ok {
				used[c] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// DistributedDeltaPlusOne colors g with Δ+1 colors via Linial color
// reduction (O(log* n + Δ²)-flavoured rounds). Colors are 1-based.
func DistributedDeltaPlusOne(g *graph.Graph, idBound int) (map[graph.ID]int, int, error) {
	delta := g.MaxDegree()
	colors, rounds, err := colorreduce.ReduceToDeltaPlusOne(g, delta, idBound)
	if err != nil {
		return nil, 0, fmt.Errorf("distributed (Δ+1)-coloring: %w", err)
	}
	shifted := make(map[graph.ID]int, len(colors))
	for v, c := range colors {
		shifted[v] = c + 1
	}
	return shifted, rounds, nil
}

// GreedyMIS returns the maximal independent set obtained by scanning
// nodes in increasing ID order.
func GreedyMIS(g *graph.Graph) graph.Set {
	blocked := make(map[graph.ID]bool)
	var out graph.Set
	for _, v := range g.Nodes() {
		if blocked[v] {
			continue
		}
		out = append(out, v)
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return graph.NewSet(out...)
}

// lubyState is the per-node protocol of Luby's randomized MIS: in each
// phase every live node draws a random value, joins if it beats all live
// neighbors, and neighbors of joiners drop out. Expected O(log n) phases,
// two rounds per phase.
type lubyState struct {
	rng     *rand.Rand
	value   int64
	inIS    bool
	dead    bool
	phase   int // 0: exchange values, 1: announce joins
	nbAlive map[graph.ID]bool
	nbVals  map[graph.ID]int64
}

type lubyMsg struct {
	Kind  int // 0 value, 1 joined, 2 dropped
	Value int64
}

func (s *lubyState) Init(ctx *dist.Context) {
	s.nbAlive = make(map[graph.ID]bool, ctx.Degree())
	for _, u := range ctx.Neighbors() {
		s.nbAlive[u] = true
	}
	s.value = s.rng.Int63()
	ctx.Broadcast(lubyMsg{Kind: 0, Value: s.value})
}

func (s *lubyState) Round(ctx *dist.Context, inbox []dist.Message) {
	if s.dead || s.inIS {
		// Still relay nothing; stay silent.
		return
	}
	switch s.phase {
	case 0:
		s.nbVals = make(map[graph.ID]int64)
		for _, m := range inbox {
			msg := m.Payload.(lubyMsg)
			switch msg.Kind {
			case 0:
				s.nbVals[m.From] = msg.Value
			case 1:
				s.dead = true
			case 2:
				delete(s.nbAlive, m.From)
			}
		}
		if s.dead {
			ctx.Broadcast(lubyMsg{Kind: 2})
			return
		}
		win := true
		for u, alive := range s.nbAlive {
			if !alive {
				continue
			}
			val, ok := s.nbVals[u]
			if !ok {
				continue
			}
			if val > s.value || (val == s.value && u > ctx.ID()) {
				win = false
				break
			}
		}
		if win {
			s.inIS = true
			ctx.Broadcast(lubyMsg{Kind: 1})
			return
		}
		s.phase = 1
	case 1:
		for _, m := range inbox {
			msg := m.Payload.(lubyMsg)
			switch msg.Kind {
			case 1:
				s.dead = true
			case 2:
				delete(s.nbAlive, m.From)
			}
		}
		if s.dead {
			ctx.Broadcast(lubyMsg{Kind: 2})
			return
		}
		s.value = s.rng.Int63()
		ctx.Broadcast(lubyMsg{Kind: 0, Value: s.value})
		s.phase = 0
	}
}

func (s *lubyState) Done() bool  { return s.dead || s.inIS }
func (s *lubyState) Output() any { return s.inIS }

// LubyMIS runs Luby's randomized maximal independent set algorithm on the
// LOCAL engine and returns the set and the rounds used.
func LubyMIS(g *graph.Graph, seed int64) (graph.Set, int, error) {
	eng := dist.NewEngine(g, func(v graph.ID) dist.Protocol {
		return &lubyState{rng: rand.New(rand.NewSource(seed ^ int64(v)*0x5851f42d4c957f2d))}
	})
	res, err := eng.Run(200 + 20*g.NumNodes())
	if err != nil {
		return nil, 0, fmt.Errorf("luby: %w", err)
	}
	var out graph.Set
	for v, o := range res.Outputs {
		if o.(bool) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, res.Rounds, nil
}
