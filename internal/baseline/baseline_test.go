package baseline

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/verify"
)

func TestGreedyColoringLegal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.5}, seed)
		colors := GreedyColoring(g)
		used, err := verify.Coloring(g, colors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if used > g.MaxDegree()+1 {
			t.Fatalf("seed %d: greedy used %d > Δ+1 = %d", seed, used, g.MaxDegree()+1)
		}
	}
}

func TestDistributedDeltaPlusOne(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 2)
	colors, rounds, err := DistributedDeltaPlusOne(g, 60)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > g.MaxDegree()+1 {
		t.Fatalf("used %d > Δ+1", used)
	}
	if rounds <= 0 {
		t.Fatal("no rounds reported")
	}
}

func TestGreedyMISMaximal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		is := GreedyMIS(g)
		if err := verify.MaximalIndependentSet(g, is); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLubyMISMaximal(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		is, rounds, err := LubyMIS(g, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.MaximalIndependentSet(g, is); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rounds <= 0 {
			t.Fatal("no rounds reported")
		}
	}
}

func TestLubyMISOnCliqueAndEmpty(t *testing.T) {
	g := gen.Complete(8)
	is, _, err := LubyMIS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(is) != 1 {
		t.Fatalf("MIS of a clique has size %d, want 1", len(is))
	}
	// Edgeless graph: everyone joins immediately.
	e := gen.Path(1)
	e.AddNode(5)
	is2, _, err := LubyMIS(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(is2) != 2 {
		t.Fatalf("MIS of edgeless graph = %d, want 2", len(is2))
	}
}

func TestGreedyMISNotOptimalOnStars(t *testing.T) {
	// With center ID 0 the greedy takes the center and misses all leaves;
	// Gavril's exact algorithm finds the leaves. This is the gap E14
	// quantifies.
	g := gen.Star(10)
	greedy := GreedyMIS(g)
	exact, err := chordal.MaximumIndependentSet(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy) >= len(exact) {
		t.Fatalf("expected greedy (%d) < exact (%d) on the star", len(greedy), len(exact))
	}
}

func TestJohanssonColoringLegal(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, seed)
		colors, rounds, err := JohanssonColoring(g, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		used, err := verify.Coloring(g, colors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if used > g.MaxDegree()+1 {
			t.Fatalf("seed %d: used %d > Δ+1", seed, used)
		}
		if rounds <= 0 {
			t.Fatal("no rounds")
		}
	}
}

func TestJohanssonOnClique(t *testing.T) {
	g := gen.Complete(10)
	colors, _, err := JohanssonColoring(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	if used != 10 {
		t.Fatalf("K10 colored with %d colors", used)
	}
}
