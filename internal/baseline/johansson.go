package baseline

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
	"repro/internal/graph"
)

// johanssonState runs the classical randomized (Δ+1) trial coloring
// (Johansson-style): each phase, every uncolored node proposes a uniform
// color from its remaining palette; proposals that collide with a
// neighbor's proposal or a neighbor's final color are retried. Each node
// finishes in O(log n) phases with high probability.
type johanssonState struct {
	rng      *rand.Rand
	palette  int
	color    int // 0 = undecided
	proposal int
	banned   map[int]bool
	phase    int // 0: propose, 1: resolve
}

type johanssonMsg struct {
	Kind  int // 0 proposal, 1 final
	Color int
}

func (s *johanssonState) pick() int {
	for {
		c := 1 + s.rng.Intn(s.palette)
		if !s.banned[c] {
			return c
		}
	}
}

func (s *johanssonState) Init(ctx *dist.Context) {
	s.banned = make(map[int]bool)
	s.proposal = s.pick()
	ctx.Broadcast(johanssonMsg{Kind: 0, Color: s.proposal})
}

func (s *johanssonState) Round(ctx *dist.Context, inbox []dist.Message) {
	if s.color != 0 {
		return
	}
	switch s.phase {
	case 0:
		// Resolve: keep the proposal iff no neighbor proposed or owns it
		// (ties broken by ID: the higher ID keeps a contested proposal).
		keep := true
		for _, m := range inbox {
			msg := m.Payload.(johanssonMsg)
			switch msg.Kind {
			case 0:
				if msg.Color == s.proposal && m.From > ctx.ID() {
					keep = false
				}
			case 1:
				s.banned[msg.Color] = true
				if msg.Color == s.proposal {
					keep = false
				}
			}
		}
		if keep {
			s.color = s.proposal
			ctx.Broadcast(johanssonMsg{Kind: 1, Color: s.color})
			return
		}
		s.phase = 1
		s.Round(ctx, nil) // immediately re-propose this round
	case 1:
		for _, m := range inbox {
			msg := m.Payload.(johanssonMsg)
			if msg.Kind == 1 {
				s.banned[msg.Color] = true
			}
		}
		s.proposal = s.pick()
		ctx.Broadcast(johanssonMsg{Kind: 0, Color: s.proposal})
		s.phase = 0
	}
}

func (s *johanssonState) Done() bool  { return s.color != 0 }
func (s *johanssonState) Output() any { return s.color }

// JohanssonColoring runs the randomized distributed (Δ+1) trial coloring
// on the LOCAL engine; returns the coloring (1-based) and rounds used.
func JohanssonColoring(g *graph.Graph, seed int64) (map[graph.ID]int, int, error) {
	palette := g.MaxDegree() + 1
	eng := dist.NewEngine(g, func(v graph.ID) dist.Protocol {
		return &johanssonState{
			rng:     rand.New(rand.NewSource(seed ^ int64(v)*0x5851f42d4c957f2d)),
			palette: palette,
		}
	})
	res, err := eng.Run(500 + 40*g.NumNodes())
	if err != nil {
		return nil, 0, fmt.Errorf("johansson coloring: %w", err)
	}
	colors := make(map[graph.ID]int, len(res.Outputs))
	for v, o := range res.Outputs {
		colors[v] = o.(int)
	}
	return colors, res.Rounds, nil
}
