// Package view provides reusable CSR views of ball graphs in
// snapshot-index space for the pruning phase's decide kernel.
//
// The decide stage of the distributed pruning phase (Algorithm 2/6)
// historically materialized each center's ball as a fresh map-backed
// graph.Graph (Knowledge.FilteredBallGraph) before deciding. A Ball is
// the allocation-lean replacement: a compact CSR over dense rows,
// rebuilt in place from either a Knowledge record stream (Source) or a
// filtered graph.Indexed snapshot, with O(1) amortized reset via
// epoch-stamped membership marks. All per-ball state lives in the Ball
// and its companion Scratch, so one pair per worker serves every center
// that worker decides, across all iterations, without further
// allocation once warm.
//
// Rows preserve the builder's deterministic order (record discovery
// order for Source builds, snapshot-index order for Indexed builds) and
// each row's columns preserve the source adjacency order (ascending
// snapshot index), so every consumer sees the same view on every run.
package view

import (
	"repro/internal/graph"
)

// Source is a stream of ball records in nondecreasing-distance
// discovery order, each carrying a node's dense snapshot index and its
// adjacency row in snapshot-index space. dist.Knowledge implements it.
type Source interface {
	RecordCount() int
	RecordAt(i int) (idx int32, dist int32, adj []int32)
}

// Ball is a reusable CSR view of one ball graph. Rows are dense local
// indices; Nodes maps each row back to its snapshot index, and each
// row's columns are the ROWS of its neighbors inside the ball, so BFS
// and induced-subgraph extraction run on plain arrays with no lookups.
//
// The zero value is ready to use; Build* methods reset and refill it.
// A built Ball is read-only until the next Build*: Nodes and Row return
// shared views into its storage.
type Ball struct {
	nodes  []int32 // row -> snapshot index
	rowPtr []int32 // len(nodes)+1 offsets into cols
	cols   []int32 // neighbor rows, concatenated per row

	// rowOf inverts nodes (snapshot index -> row); an entry is valid
	// only when mark holds the current epoch, so reset is O(1) instead
	// of O(n). The epoch is int64: it only ever increments, and at a
	// billion rebuilds per second it would take centuries to wrap, so
	// no wrap guard (and no periodic O(n) mark sweep) is needed.
	rowOf []int32
	mark  []int64
	epoch int64
}

// reset prepares the ball for a rebuild over a snapshot of n nodes.
func (b *Ball) reset(n int) {
	if len(b.rowOf) < n {
		b.rowOf = make([]int32, n)
		b.mark = make([]int64, n)
	}
	b.epoch++
	b.nodes = b.nodes[:0]
	b.cols = b.cols[:0]
	if b.rowPtr == nil {
		b.rowPtr = make([]int32, 1, 64)
	}
	b.rowPtr = b.rowPtr[:1]
	b.rowPtr[0] = 0
}

// NumRows returns the number of nodes in the ball.
func (b *Ball) NumRows() int { return len(b.nodes) }

// Nodes returns the row -> snapshot-index table. The result is a shared
// view into the ball's storage: treat it as read-only.
func (b *Ball) Nodes() []int32 { return b.nodes }

// NodeAt returns the snapshot index of row r.
func (b *Ball) NodeAt(r int32) int32 { return b.nodes[r] }

// Row returns row r's neighbor rows. The result is a shared view into
// the ball's storage: treat it as read-only.
func (b *Ball) Row(r int32) []int32 { return b.cols[b.rowPtr[r]:b.rowPtr[r+1]] }

// RowOf returns the row of the node at snapshot index idx, or -1 when
// the node is not in the ball.
func (b *Ball) RowOf(idx int32) int32 {
	if b.mark[idx] != b.epoch {
		return -1
	}
	return b.rowOf[idx]
}

// BuildFromSource rebuilds the ball from a record stream: the nodes at
// record distance at most radius that pass keep (nil keeps all; keep is
// indexed by snapshot index), with the adjacency restricted to that
// member set — the index-space equivalent of
// Knowledge.FilteredBallGraph. n is the snapshot's node count. Rows are
// in record order; records beyond the first one past radius are
// ignored, and duplicate records keep their first occurrence.
//
//chordalvet:hotpath budget=6 view rebuild: epoch reset keeps rebuilds allocation-free steady-state
func (b *Ball) BuildFromSource(src Source, n, radius int, keep []bool) {
	b.reset(n)
	m := src.RecordCount()
	cut := m
	for i := 0; i < m; i++ {
		idx, d, _ := src.RecordAt(i)
		if int(d) > radius {
			cut = i
			break
		}
		if keep != nil && !keep[idx] {
			continue
		}
		if b.mark[idx] == b.epoch {
			continue
		}
		b.mark[idx] = b.epoch
		b.rowOf[idx] = int32(len(b.nodes))
		b.nodes = append(b.nodes, idx)
	}
	r := int32(0)
	for i := 0; i < cut; i++ {
		idx, _, adj := src.RecordAt(i)
		if (keep != nil && !keep[idx]) || b.rowOf[idx] != r {
			continue
		}
		for _, u := range adj {
			if b.mark[u] == b.epoch {
				b.cols = append(b.cols, b.rowOf[u])
			}
		}
		b.rowPtr = append(b.rowPtr, int32(len(b.cols)))
		r++
	}
}

// BuildFromIndexed rebuilds the ball as the subgraph of a snapshot
// induced by the kept indices (nil keeps all). Rows are in snapshot
// order, so row order coincides with ascending node ID.
//
//chordalvet:hotpath budget=6 view rebuild: epoch reset keeps rebuilds allocation-free steady-state
func (b *Ball) BuildFromIndexed(ix *graph.Indexed, keep []bool) {
	n := ix.NumNodes()
	b.reset(n)
	for i := 0; i < n; i++ {
		if keep != nil && !keep[i] {
			continue
		}
		b.mark[i] = b.epoch
		b.rowOf[i] = int32(len(b.nodes))
		b.nodes = append(b.nodes, int32(i))
	}
	for _, idx := range b.nodes {
		for _, u := range ix.NeighborIndices(int(idx)) {
			if b.mark[u] == b.epoch {
				b.cols = append(b.cols, b.rowOf[u])
			}
		}
		b.rowPtr = append(b.rowPtr, int32(len(b.cols)))
	}
}

// InducedGraph materializes the subgraph of the ball induced by the
// given member rows as a *graph.Graph over original node IDs (ids is
// the snapshot's index -> ID table). The decide kernel uses it only on
// the rare α-rule path, where the independence-number routine needs a
// real graph; everything hot stays inside the CSR.
//
//chordalvet:coldpath α-rule materialization only, amortized over few paths per run
func (b *Ball) InducedGraph(ids []graph.ID, rows []int32) *graph.Graph {
	g := graph.New()
	in := make([]bool, b.NumRows())
	for _, r := range rows {
		in[r] = true
		g.AddNode(ids[b.nodes[r]])
	}
	for _, r := range rows {
		u := ids[b.nodes[r]]
		for _, nb := range b.Row(r) {
			if nb > r && in[nb] {
				g.AddEdge(u, ids[b.nodes[nb]])
			}
		}
	}
	return g
}

// Scratch bundles a worker-private Ball with the BFS working storage
// the decide kernel needs alongside it: one scratch per worker, reused
// across centers. The BFS methods take the ball explicitly because a
// worker alternates between its private ball and an iteration-shared
// read-only one.
type Scratch struct {
	Priv  Ball    // worker-private ball, rebuilt per center as needed
	DistC []int32 // center BFS distances by row; -1 = unreachable
	DistA []int32 // anchor BFS distances by row; -1 = unreachable
	queue []int32
}

// CenterBFS fills DistC with BFS distances from the given row over b.
func (s *Scratch) CenterBFS(b *Ball, row int32) {
	s.DistC = ballBFS(b, row, s.DistC, &s.queue)
}

// AnchorBFS fills DistA with BFS distances from the given row over b.
func (s *Scratch) AnchorBFS(b *Ball, row int32) {
	s.DistA = ballBFS(b, row, s.DistA, &s.queue)
}

// ballBFS is a plain-array BFS over the ball CSR. Neighbor order only
// affects queue order within a level, never the distances.
func ballBFS(b *Ball, src int32, dist []int32, queue *[]int32) []int32 {
	nr := b.NumRows()
	if cap(dist) < nr {
		dist = make([]int32, nr)
	} else {
		dist = dist[:nr]
	}
	for i := range dist {
		dist[i] = -1
	}
	q := (*queue)[:0]
	dist[src] = 0
	q = append(q, src)
	for h := 0; h < len(q); h++ {
		v := q[h]
		d := dist[v] + 1
		for _, u := range b.Row(v) {
			if dist[u] < 0 {
				dist[u] = d
				q = append(q, u)
			}
		}
	}
	*queue = q
	return dist
}
