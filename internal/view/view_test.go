package view_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/view"
)

// ballEdges extracts a Ball's edge set as ID pairs (a < b) for
// comparison against a *graph.Graph.
func ballEdges(b *view.Ball, ids []graph.ID) map[[2]graph.ID]bool {
	out := make(map[[2]graph.ID]bool)
	for r := int32(0); r < int32(b.NumRows()); r++ {
		u := ids[b.NodeAt(r)]
		for _, nb := range b.Row(r) {
			v := ids[b.NodeAt(nb)]
			if u < v {
				out[[2]graph.ID{u, v}] = true
			}
		}
	}
	return out
}

func sameGraph(t *testing.T, b *view.Ball, ids []graph.ID, want *graph.Graph) {
	t.Helper()
	if b.NumRows() != want.NumNodes() {
		t.Fatalf("ball has %d rows, want %d nodes", b.NumRows(), want.NumNodes())
	}
	for r := int32(0); r < int32(b.NumRows()); r++ {
		if !want.HasNode(ids[b.NodeAt(r)]) {
			t.Fatalf("ball row %d holds %d, not a member", r, ids[b.NodeAt(r)])
		}
	}
	edges := ballEdges(b, ids)
	if len(edges) != want.NumEdges() {
		t.Fatalf("ball has %d edges, want %d", len(edges), want.NumEdges())
	}
	for _, e := range want.Edges() {
		if !edges[e] {
			t.Fatalf("ball is missing edge %v", e)
		}
	}
}

// TestBuildFromIndexedMatchesInducedSubgraph checks that an Indexed
// build with a keep filter reproduces the induced subgraph exactly, and
// that rows come out in snapshot (ascending-ID) order.
func TestBuildFromIndexedMatchesInducedSubgraph(t *testing.T) {
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 3)
	ix := graph.NewIndexed(g)
	keep := make([]bool, ix.NumNodes())
	var kept []graph.ID
	for i, v := range ix.IDs() {
		if v%3 != 0 {
			keep[i] = true
			kept = append(kept, v)
		}
	}
	var b view.Ball
	b.BuildFromIndexed(ix, keep)
	sameGraph(t, &b, ix.IDs(), g.InducedSubgraph(kept))
	nodes := b.Nodes()
	for r := 1; r < len(nodes); r++ {
		if nodes[r-1] >= nodes[r] {
			t.Fatalf("rows not in snapshot order at %d: %d >= %d", r, nodes[r-1], nodes[r])
		}
	}
	for r := int32(0); r < int32(b.NumRows()); r++ {
		if b.RowOf(b.NodeAt(r)) != r {
			t.Fatalf("RowOf(NodeAt(%d)) = %d", r, b.RowOf(b.NodeAt(r)))
		}
	}
	for i := range keep {
		if !keep[i] && b.RowOf(int32(i)) != -1 {
			t.Fatalf("dropped index %d still resolves to row %d", i, b.RowOf(int32(i)))
		}
	}
}

// TestBuildFromSourceMatchesFilteredBallGraph checks the Source build
// against the reference map implementation, Knowledge.FilteredBallGraph,
// for every center of a flooded graph — including centers whose balls
// the radius clips.
func TestBuildFromSourceMatchesFilteredBallGraph(t *testing.T) {
	g := gen.RandomChordal(90, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 7)
	ix := graph.NewIndexed(g)
	radius := 3 // small enough that many balls are clipped
	know, _, err := dist.CollectBallsIndexed(ix, radius, nil)
	if err != nil {
		t.Fatal(err)
	}
	keepID := func(v graph.ID) bool { return v%5 != 1 }
	keep := make([]bool, ix.NumNodes())
	for i, v := range ix.IDs() {
		keep[i] = keepID(v)
	}
	var b view.Ball // one ball reused across all centers, as in the kernel
	for _, v := range ix.IDs() {
		k := know[v]
		if !k.IndexReady() {
			t.Fatalf("knowledge of %d is not index-ready", v)
		}
		b.BuildFromSource(k, ix.NumNodes(), radius, keep)
		sameGraph(t, &b, ix.IDs(), k.FilteredBallGraph(radius, keepID))
	}
}

// TestScratchBFSMatchesGraphBFS checks the CSR BFS against
// graph.BFSDistances, including unreachable rows staying -1.
func TestScratchBFSMatchesGraphBFS(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 13)
	// Add a disconnected component so unreachability is exercised.
	g.AddEdge(1000, 1001)
	ix := graph.NewIndexed(g)
	var sc view.Scratch
	sc.Priv.BuildFromIndexed(ix, nil)
	ids := ix.IDs()
	for _, src := range []graph.ID{ids[0], 1000} {
		si, _ := ix.IndexOf(src)
		sc.CenterBFS(&sc.Priv, sc.Priv.RowOf(int32(si)))
		want := g.BFSDistances(src)
		for r := int32(0); r < int32(sc.Priv.NumRows()); r++ {
			v := ids[sc.Priv.NodeAt(r)]
			d, ok := want[v]
			switch {
			case ok && int(sc.DistC[r]) != d:
				t.Fatalf("src %d: dist[%d] = %d, want %d", src, v, sc.DistC[r], d)
			case !ok && sc.DistC[r] != -1:
				t.Fatalf("src %d: unreachable %d has dist %d", src, v, sc.DistC[r])
			}
		}
	}
}

// TestInducedGraphMatchesInducedSubgraph checks the α-rule path's
// materialization against graph.InducedSubgraph.
func TestInducedGraphMatchesInducedSubgraph(t *testing.T) {
	g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 19)
	ix := graph.NewIndexed(g)
	var b view.Ball
	b.BuildFromIndexed(ix, nil)
	var rows []int32
	var members []graph.ID
	for r := int32(0); r < int32(b.NumRows()); r += 2 {
		rows = append(rows, r)
		members = append(members, ix.IDs()[b.NodeAt(r)])
	}
	got := b.InducedGraph(ix.IDs(), rows)
	want := g.InducedSubgraph(members)
	if !got.Equal(want) {
		t.Fatalf("InducedGraph mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestBallReuseAcrossBuilds checks that the epoch-stamped reset keeps
// rebuilds independent: membership from a previous build must not leak.
func TestBallReuseAcrossBuilds(t *testing.T) {
	g1 := gen.Path(20)
	g2 := gen.Tree(35, 3)
	ix1, ix2 := graph.NewIndexed(g1), graph.NewIndexed(g2)
	var b view.Ball
	for round := 0; round < 3; round++ {
		b.BuildFromIndexed(ix1, nil)
		sameGraph(t, &b, ix1.IDs(), g1)
		b.BuildFromIndexed(ix2, nil)
		sameGraph(t, &b, ix2.IDs(), g2)
		// Filtered rebuild over the same snapshot: dropped nodes must
		// not resolve even though the previous epoch had them.
		keep := make([]bool, ix2.NumNodes())
		for i := range keep {
			keep[i] = i%2 == 0
		}
		b.BuildFromIndexed(ix2, keep)
		for i := range keep {
			if !keep[i] && b.RowOf(int32(i)) != -1 {
				t.Fatalf("round %d: dropped index %d leaked from previous epoch", round, i)
			}
		}
	}
}
