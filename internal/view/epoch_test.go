package view

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestEpochCrossesInt32Boundary forces a Ball's epoch to the old int32
// ceiling and rebuilds across it. With the int64 epoch the counter must
// keep climbing monotonically past math.MaxInt32 — the previous int32
// epoch could not represent these values and had to fall back to an
// O(n) mark sweep at the boundary. Membership queries must stay exact
// on both sides of the crossing: a node kept in the build before the
// boundary but excluded after it must read as absent, which is exactly
// what breaks if stale marks survive the crossing.
func TestEpochCrossesInt32Boundary(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 1)
	ix := graph.NewIndexed(g)
	n := ix.NumNodes()

	var b Ball
	b.BuildFromIndexed(ix, nil) // warm storage at epoch 1
	b.epoch = math.MaxInt32 - 1

	keepEven := make([]bool, n)
	keepOdd := make([]bool, n)
	for i := 0; i < n; i++ {
		keepEven[i] = i%2 == 0
		keepOdd[i] = i%2 == 1
	}

	keeps := []struct {
		name string
		keep []bool
	}{
		{"even@MaxInt32", keepEven},   // epoch becomes MaxInt32
		{"odd@MaxInt32+1", keepOdd},   // first epoch beyond int32
		{"even@MaxInt32+2", keepEven}, // and one more for good measure
	}
	for step, tc := range keeps {
		b.BuildFromIndexed(ix, tc.keep)
		wantEpoch := int64(math.MaxInt32) + int64(step)
		if b.epoch != wantEpoch {
			t.Fatalf("%s: epoch = %d, want %d (monotonic int64, no wrap)",
				tc.name, b.epoch, wantEpoch)
		}
		for i := 0; i < n; i++ {
			row := b.RowOf(int32(i))
			if tc.keep[i] {
				if row < 0 || b.NodeAt(row) != int32(i) {
					t.Fatalf("%s: kept index %d: RowOf = %d", tc.name, i, row)
				}
			} else if row != -1 {
				t.Fatalf("%s: excluded index %d still resolves to row %d (stale mark from epoch %d)",
					tc.name, i, row, b.epoch-1)
			}
		}
	}
	if b.epoch <= math.MaxInt32 {
		t.Fatalf("epoch %d never exceeded math.MaxInt32", b.epoch)
	}
}

// TestEpochBoundaryFromSource is the same crossing exercised through
// the record-stream builder, which shares the epoch machinery but
// orders rows by discovery instead of snapshot index.
func TestEpochBoundaryFromSource(t *testing.T) {
	g := gen.KTree(50, 3, 5)
	ix := graph.NewIndexed(g)
	n := ix.NumNodes()
	src := snapshotSource{ix: ix}

	var b Ball
	b.BuildFromSource(src, n, n, nil)
	b.epoch = math.MaxInt32
	keep := make([]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = i%3 != 0
	}
	b.BuildFromSource(src, n, n, keep)
	if b.epoch != int64(math.MaxInt32)+1 {
		t.Fatalf("epoch = %d, want MaxInt32+1", b.epoch)
	}
	for i := 0; i < n; i++ {
		row := b.RowOf(int32(i))
		if keep[i] && (row < 0 || b.NodeAt(row) != int32(i)) {
			t.Fatalf("kept index %d: RowOf = %d", i, row)
		}
		if !keep[i] && row != -1 {
			t.Fatalf("excluded index %d resolves to row %d past the boundary", i, row)
		}
	}
}

// snapshotSource adapts an Indexed snapshot into a Source whose records
// are all at distance 0 in snapshot order — enough to drive the
// Source-path epoch machinery without a flood run.
type snapshotSource struct{ ix *graph.Indexed }

func (s snapshotSource) RecordCount() int { return s.ix.NumNodes() }

func (s snapshotSource) RecordAt(i int) (int32, int32, []int32) {
	return int32(i), 0, s.ix.NeighborIndices(i)
}
