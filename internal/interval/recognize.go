package interval

import (
	"fmt"
	"sort"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Recognize tests whether g is an interval graph and, if so, constructs a
// consecutive arrangement of its maximal cliques (a clique path) and an
// interval model realizing g.
//
// Method (Gilmore–Hoffman): g is interval iff it is chordal and its
// complement has a transitive orientation (an interval order). We check
// chordality, transitively orient the complement by Golumbic-style
// forcing, order the maximal cliques (the maximal antichains of the
// order) by the orientation, and certify the result with
// ValidCliquePath — so any internal misstep surfaces as a clean
// "not an interval graph" error rather than a wrong model.
//
// The complement is materialized as bitsets, so this is intended for
// graphs up to a few thousand nodes.
func Recognize(g *graph.Graph) ([]graph.Set, []gen.Interval, error) {
	if g.NumNodes() == 0 {
		return nil, nil, nil
	}
	cliques, err := chordal.MaximalCliques(g)
	if err != nil {
		return nil, nil, fmt.Errorf("interval recognition: %w", err)
	}
	nodes := g.Nodes()
	idx := make(map[graph.ID]int, len(nodes))
	for i, v := range nodes {
		idx[v] = i
	}
	comp := newBitGraph(len(nodes))
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				comp.addEdge(i, j)
			}
		}
	}
	orient, err := transitiveOrient(comp)
	if err != nil {
		return nil, nil, fmt.Errorf("interval recognition: %w", err)
	}
	path, err := orderCliques(g, cliques, orient, idx)
	if err != nil {
		return nil, nil, fmt.Errorf("interval recognition: %w", err)
	}
	// Certificate: the arrangement must be a valid consecutive
	// arrangement of g's maximal cliques.
	if err := ValidCliquePath(g, path); err != nil {
		return nil, nil, fmt.Errorf("not an interval graph: %w", err)
	}
	model := ModelFromCliquePath(path)
	return path, model, nil
}

// IsInterval reports whether g is an interval graph.
func IsInterval(g *graph.Graph) bool {
	_, _, err := Recognize(g)
	return err == nil
}

// bitGraph is a dense undirected graph over indices [0, n) stored as
// bitset rows.
type bitGraph struct {
	n    int
	rows [][]uint64
}

func newBitGraph(n int) *bitGraph {
	words := (n + 63) / 64
	rows := make([][]uint64, n)
	backing := make([]uint64, n*words)
	for i := range rows {
		rows[i] = backing[i*words : (i+1)*words]
	}
	return &bitGraph{n: n, rows: rows}
}

func (b *bitGraph) addEdge(i, j int) {
	b.rows[i][j/64] |= 1 << uint(j%64)
	b.rows[j][i/64] |= 1 << uint(i%64)
}

func (b *bitGraph) has(i, j int) bool {
	return b.rows[i][j/64]&(1<<uint(j%64)) != 0
}

// forEachNeighbor iterates the set bits of row i.
func (b *bitGraph) forEachNeighbor(i int, fn func(j int)) {
	for w, word := range b.rows[i] {
		for word != 0 {
			bit := word & (-word)
			j := w*64 + trailingZeros(bit)
			fn(j)
			word ^= bit
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// transitiveOrient computes a transitive orientation of the (undirected)
// graph by implication-class forcing: orienting a→b forces a→c whenever
// ac is an edge but bc is not, and forces c→b whenever cb is an edge but
// ca is not. If forcing ever demands both directions of an edge, the
// graph is not a comparability graph. The result maps ordered index
// pairs: orient[i*n+j] = +1 when i→j.
//
// As in Golumbic's algorithm, a graph that survives forcing without
// contradiction may still fail transitivity; callers certify the final
// product (here via ValidCliquePath) instead of an O(n³) check.
func transitiveOrient(b *bitGraph) ([]int8, error) {
	n := b.n
	orient := make([]int8, n*n)
	set := func(i, j int) error {
		switch orient[i*n+j] {
		case 1:
			return nil
		case -1:
			return fmt.Errorf("complement is not a comparability graph")
		}
		orient[i*n+j] = 1
		orient[j*n+i] = -1
		return nil
	}
	var queue [][2]int
	push := func(i, j int) error {
		if orient[i*n+j] == 1 {
			return nil
		}
		if err := set(i, j); err != nil {
			return err
		}
		queue = append(queue, [2]int{i, j})
		return nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !b.has(i, j) || orient[i*n+j] != 0 {
				continue
			}
			// Seed a new implication class.
			if err := push(i, j); err != nil {
				return nil, err
			}
			for len(queue) > 0 {
				e := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				a, c := e[0], e[1]
				var ferr error
				// a→c forces a→x for edges ax with cx missing,
				// and x→c for edges xc with xa missing.
				b.forEachNeighbor(a, func(x int) {
					if ferr != nil || x == c {
						return
					}
					if !b.has(c, x) {
						ferr = push(a, x)
					}
				})
				if ferr != nil {
					return nil, ferr
				}
				b.forEachNeighbor(c, func(x int) {
					if ferr != nil || x == a {
						return
					}
					if !b.has(a, x) {
						ferr = push(x, c)
					}
				})
				if ferr != nil {
					return nil, ferr
				}
			}
		}
	}
	return orient, nil
}

// orderCliques sorts the maximal cliques by the interval order the
// orientation induces: clique A precedes B when some a ∈ A\B, b ∈ B\A has
// a→b in the oriented complement (a's interval lies entirely left of
// b's). For interval graphs this comparison is consistent across all
// witness pairs; the final certificate catches any inconsistency.
func orderCliques(g *graph.Graph, cliques []graph.Set, orient []int8, idx map[graph.ID]int) ([]graph.Set, error) {
	n := len(idx)
	precedes := func(a, b graph.Set) int {
		diffA := a.Minus(b)
		diffB := b.Minus(a)
		for _, u := range diffA {
			for _, v := range diffB {
				if g.HasEdge(u, v) {
					continue
				}
				switch orient[idx[u]*n+idx[v]] {
				case 1:
					return -1
				case -1:
					return 1
				}
			}
		}
		return 0
	}
	path := make([]graph.Set, len(cliques))
	copy(path, cliques)
	sort.SliceStable(path, func(i, j int) bool {
		return precedes(path[i], path[j]) < 0
	})
	// sort.SliceStable only guarantees a total order if precedes is
	// consistent; for interval graphs it is, and ValidCliquePath is the
	// final arbiter. Insertion-sort style repair for the common case of
	// incomparable ties being placed between their neighbors:
	for swept := true; swept; {
		swept = false
		for i := 0; i+1 < len(path); i++ {
			if precedes(path[i+1], path[i]) < 0 {
				path[i], path[i+1] = path[i+1], path[i]
				swept = true
			}
		}
	}
	return path, nil
}
