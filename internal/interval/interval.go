// Package interval implements the interval-graph substrate the paper's
// layers reduce to: interval models, clique paths (consecutive
// arrangements of maximal cliques), LexBFS and the 3-sweep umbrella
// ordering for proper interval graphs, exact maximum independent sets and
// optimal colorings, and the dominated-vertex reduction from Algorithm 5.
package interval

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// CliquePathFromModel computes the maximal cliques of the interval graph
// defined by the model, in left-to-right order (a consecutive
// arrangement): sweeping the line, a maximal clique forms just before each
// point where some interval ends while another is still open.
func CliquePathFromModel(ivs []gen.Interval) []graph.Set {
	if len(ivs) == 0 {
		return nil
	}
	type event struct {
		pos   float64
		start bool
		node  graph.ID
	}
	events := make([]event, 0, 2*len(ivs))
	for _, iv := range ivs {
		events = append(events, event{iv.Lo, true, iv.Node}, event{iv.Hi, false, iv.Node})
	}
	sort.Slice(events, func(i, j int) bool {
		switch {
		case events[i].pos < events[j].pos:
			return true
		case events[j].pos < events[i].pos:
			return false
		}
		// Closed intervals: starts before ends at the same point, so
		// touching intervals count as intersecting.
		if events[i].start != events[j].start {
			return events[i].start
		}
		return events[i].node < events[j].node
	})
	active := make(map[graph.ID]bool)
	var cliques []graph.Set
	sinceLastStart := false // an interval opened since the last emitted clique
	for _, ev := range events {
		if ev.start {
			active[ev.node] = true
			sinceLastStart = true
			continue
		}
		if sinceLastStart {
			// The active set just before this end event is a maximal clique.
			members := make([]graph.ID, 0, len(active))
			for v := range active {
				members = append(members, v)
			}
			cliques = append(cliques, graph.NewSet(members...))
			sinceLastStart = false
		}
		delete(active, ev.node)
	}
	return cliques
}

// ModelFromCliquePath converts a consecutive arrangement of maximal
// cliques into an interval model over clique indices: node v becomes the
// interval [first, last] of positions of cliques containing v. If the
// arrangement has the consecutive property, the resulting model represents
// exactly the original graph.
func ModelFromCliquePath(path []graph.Set) []gen.Interval {
	first := make(map[graph.ID]int)
	last := make(map[graph.ID]int)
	for i, c := range path {
		for _, v := range c {
			if _, ok := first[v]; !ok {
				first[v] = i
			}
			last[v] = i
		}
	}
	nodes := make([]graph.ID, 0, len(first))
	for v := range first {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	out := make([]gen.Interval, len(nodes))
	for i, v := range nodes {
		out[i] = gen.Interval{Node: v, Lo: float64(first[v]), Hi: float64(last[v])}
	}
	return out
}

// ValidCliquePath checks that path is a consecutive arrangement of the
// maximal cliques of g: every clique is a maximal clique of g, every node
// of g occurs in a consecutive run of cliques, and the union of clique
// edges is exactly E(g).
func ValidCliquePath(g *graph.Graph, path []graph.Set) error {
	first := make(map[graph.ID]int)
	last := make(map[graph.ID]int)
	count := make(map[graph.ID]int)
	for i, c := range path {
		if !g.IsClique(c) {
			return fmt.Errorf("path member %v is not a clique", c)
		}
		for _, v := range c {
			if _, ok := first[v]; !ok {
				first[v] = i
			}
			last[v] = i
			count[v]++
		}
	}
	for _, v := range g.Nodes() {
		if _, ok := first[v]; !ok {
			return fmt.Errorf("node %d missing from clique path", v)
		}
		if count[v] != last[v]-first[v]+1 {
			return fmt.Errorf("node %d's cliques are not consecutive", v)
		}
	}
	for _, e := range g.Edges() {
		covered := false
		for _, c := range path {
			if c.Contains(e[0]) && c.Contains(e[1]) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("edge %v not covered by the clique path", e)
		}
	}
	// Each clique maximal: no outside vertex adjacent to all members.
	for _, c := range path {
		for _, v := range g.Nodes() {
			if c.Contains(v) {
				continue
			}
			all := true
			for _, u := range c {
				if !g.HasEdge(v, u) {
					all = false
					break
				}
			}
			if all {
				return fmt.Errorf("clique %v is not maximal (extendable by %d)", c, v)
			}
		}
	}
	return nil
}

// RestrictCliquePath restricts a consecutive arrangement to a node
// subset: each clique is intersected with keep, empty restrictions are
// dropped, and restrictions subsumed by a neighbor are removed (iterated
// to a fixpoint). The result is a consecutive arrangement of the maximal
// cliques of the induced subgraph.
func RestrictCliquePath(path []graph.Set, keep func(graph.ID) bool) []graph.Set {
	var out []graph.Set
	for _, c := range path {
		var d graph.Set
		for _, v := range c {
			if keep(v) {
				d = append(d, v)
			}
		}
		if len(d) > 0 {
			out = append(out, d)
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(out); i++ {
			switch {
			case out[i].SubsetOf(out[i+1]):
				out = append(out[:i], out[i+1:]...)
				changed = true
			case out[i+1].SubsetOf(out[i]):
				out = append(out[:i+1], out[i+2:]...)
				changed = true
			}
			if changed {
				break
			}
		}
	}
	return out
}

// ExactMIS computes a maximum independent set of the interval graph given
// by its model, using the classical greedy-by-right-endpoint sweep.
func ExactMIS(ivs []gen.Interval) graph.Set {
	sorted := make([]gen.Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		switch {
		case sorted[i].Hi < sorted[j].Hi:
			return true
		case sorted[j].Hi < sorted[i].Hi:
			return false
		}
		return sorted[i].Node < sorted[j].Node
	})
	var out graph.Set
	lastEnd := 0.0
	haveLast := false
	for _, iv := range sorted {
		if !haveLast || iv.Lo > lastEnd {
			out = append(out, iv.Node)
			lastEnd = iv.Hi
			haveLast = true
		}
	}
	return graph.NewSet(out...)
}

// ExactColoring computes an optimal coloring of the interval graph given
// by its model: greedy by left endpoint uses exactly ω colors. Colors are
// 1-based.
func ExactColoring(ivs []gen.Interval) map[graph.ID]int {
	sorted := make([]gen.Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		switch {
		case sorted[i].Lo < sorted[j].Lo:
			return true
		case sorted[j].Lo < sorted[i].Lo:
			return false
		}
		return sorted[i].Node < sorted[j].Node
	})
	colors := make(map[graph.ID]int, len(sorted))
	type active struct {
		hi    float64
		color int
	}
	var live []active
	for _, iv := range sorted {
		// Drop intervals that ended before this one starts.
		kept := live[:0]
		used := make(map[int]bool)
		for _, a := range live {
			if a.hi >= iv.Lo {
				kept = append(kept, a)
				used[a.color] = true
			}
		}
		live = kept
		c := 1
		for used[c] {
			c++
		}
		colors[iv.Node] = c
		live = append(live, active{hi: iv.Hi, color: c})
	}
	return colors
}

// Dominated returns the nodes v of g for which some node u has
// Γ[v] ⊋ Γ[u] — the nodes Algorithm 5 discards. Removing them leaves a
// proper interval graph whose independence number equals α(g).
func Dominated(g *graph.Graph) graph.Set {
	nodes := g.Nodes()
	closed := make(map[graph.ID]graph.Set, len(nodes))
	for _, v := range nodes {
		closed[v] = graph.NewSet(g.ClosedNeighbors(v)...)
	}
	var out graph.Set
	for _, v := range nodes {
		// Any strictly dominating witness u must be a neighbor of v (or v
		// itself, impossible): Γ[u] ⊆ Γ[v] and u ∈ Γ[u] imply u ∈ Γ[v].
		for _, u := range g.ClosedNeighbors(v) {
			if u != v && closed[u].ProperSubsetOf(closed[v]) {
				out = append(out, v)
				break
			}
		}
	}
	return graph.NewSet(out...)
}

// RemoveDominated returns g with all dominated nodes removed (a proper
// interval graph when g is interval).
func RemoveDominated(g *graph.Graph) *graph.Graph {
	out := g.Clone()
	out.RemoveNodes(Dominated(g))
	return out
}

// IsProperInterval reports whether the umbrella ordering construction
// succeeds on g, i.e. g is a proper (= unit) interval graph.
func IsProperInterval(g *graph.Graph) bool {
	_, err := UmbrellaOrder(g)
	return err == nil
}
