package interval

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRecognizeRandomIntervalGraphs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.RandomInterval(60, 18, 3, seed)
		path, model, err := Recognize(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ValidCliquePath(g, path); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The reconstructed model realizes exactly g.
		if !gen.FromIntervals(model).Equal(g) {
			t.Fatalf("seed %d: model does not realize the graph", seed)
		}
	}
}

func TestRecognizeBasicFamilies(t *testing.T) {
	for _, c := range []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", gen.Path(15), true},
		{"star", gen.Star(8), true},
		{"complete", gen.Complete(7), true},
		{"caterpillar", gen.Caterpillar(6, 2), true},
		{"single", gen.Path(1), true},
		{"C4", gen.Cycle(4), false},
		{"C6", gen.Cycle(6), false},
	} {
		if got := IsInterval(c.g); got != c.want {
			t.Errorf("%s: IsInterval = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRecognizeRejectsSubdividedClaw(t *testing.T) {
	// The subdivided claw is chordal (a tree) but not interval.
	g := graph.New()
	for _, e := range [][2]graph.ID{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}} {
		g.AddEdge(e[0], e[1])
	}
	if IsInterval(g) {
		t.Fatal("subdivided claw accepted as interval")
	}
}

func TestRecognizeEdgeless(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.AddNode(graph.ID(i))
	}
	path, model, err := Recognize(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 || len(model) != 5 {
		t.Fatalf("edgeless: %d cliques, %d intervals", len(path), len(model))
	}
}

func TestRecognizeUnitIntervals(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.FromIntervals(gen.UnitIntervals(40, 20, seed))
		if !IsInterval(g) {
			t.Fatalf("seed %d: unit interval graph rejected", seed)
		}
	}
}

func TestRecognizeMatchesModelFreePipeline(t *testing.T) {
	// Recognized model feeds the coloring pipeline end to end.
	g := gen.RandomInterval(50, 14, 3, 3)
	_, model, err := Recognize(g)
	if err != nil {
		t.Fatal(err)
	}
	path := CliquePathFromModel(model)
	if err := ValidCliquePath(g, path); err != nil {
		t.Fatal(err)
	}
}

func TestRecognizeHubTreesNotInterval(t *testing.T) {
	// Hub trees have degree-3 clique-forest vertices: chordal, not
	// interval.
	g := gen.HubTree(2, 6)
	if IsInterval(g) {
		t.Fatal("hub tree accepted as interval")
	}
}
