package interval

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// LexBFS returns a lexicographic breadth-first search ordering of the
// connected component of start. Ties are broken by preferring the vertex
// appearing latest in tieBreak (the LBFS↑ rule); with a nil tieBreak the
// smallest ID wins.
func LexBFS(g *graph.Graph, start graph.ID, tieBreak []graph.ID) []graph.ID {
	pref := make(map[graph.ID]int)
	for i, v := range tieBreak {
		pref[v] = i
	}
	type entry struct {
		label []int // positions of visited neighbors, descending
	}
	labels := make(map[graph.ID]*entry)
	comp := g.Ball(start, g.NumNodes()) // nodes of start's component
	for _, v := range comp {
		labels[v] = &entry{}
	}
	var order []graph.ID
	visited := make(map[graph.ID]bool, len(comp))
	for len(order) < len(comp) {
		// Pick the unvisited vertex with the lexicographically largest
		// label; break ties by tieBreak preference, then smaller ID.
		var best graph.ID
		haveBest := false
		for _, v := range comp {
			if visited[v] {
				continue
			}
			if !haveBest || lexGreater(labels[v].label, labels[best].label) ||
				(labelsEqual(labels[v].label, labels[best].label) && preferred(v, best, pref)) {
				best = v
				haveBest = true
			}
		}
		if start != best && len(order) == 0 {
			// First pick must be start: force it.
			best = start
		}
		visited[best] = true
		pos := len(order)
		order = append(order, best)
		for _, u := range g.Neighbors(best) {
			if e, ok := labels[u]; ok && !visited[u] {
				e.label = append(e.label, -pos) // store -pos so ascending sort keeps descending positions first
			}
		}
	}
	return order
}

func lexGreater(a, b []int) bool {
	// Labels store -position appended in increasing visit order, which is
	// already descending lexicographic significance: earlier visits have
	// smaller -pos... positions ascend, so -pos descends; lexicographic
	// comparison on the stored sequence with larger meaning earlier
	// neighbor. A label is greater if at the first difference its entry
	// is greater (i.e. the neighbor was visited earlier).
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return len(a) > len(b)
}

func labelsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func preferred(v, best graph.ID, pref map[graph.ID]int) bool {
	pv, okv := pref[v]
	pb, okb := pref[best]
	switch {
	case okv && okb:
		return pv > pb // later in previous sweep wins
	case okv != okb:
		return okv
	default:
		return v < best
	}
}

// UmbrellaOrder computes a straight enumeration (umbrella ordering) of a
// proper interval graph using Corneil's 3-sweep LexBFS, processing each
// connected component separately, and verifies the result. An ordering
// v_1..v_n is an umbrella ordering iff every closed neighborhood is a
// consecutive run, which holds for some ordering iff g is a proper
// interval graph; a verification failure therefore reports that g is not
// proper interval.
func UmbrellaOrder(g *graph.Graph) ([]graph.ID, error) {
	var out []graph.ID
	seen := make(map[graph.ID]bool, g.NumNodes())
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		sweep1 := LexBFS(g, start, nil)
		sweep2 := LexBFS(g, sweep1[len(sweep1)-1], sweep1)
		sweep3 := LexBFS(g, sweep2[len(sweep2)-1], sweep2)
		if err := checkUmbrella(g, sweep3); err != nil {
			return nil, fmt.Errorf("not a proper interval graph: %w", err)
		}
		for _, v := range sweep3 {
			seen[v] = true
		}
		out = append(out, sweep3...)
	}
	return out, nil
}

func checkUmbrella(g *graph.Graph, order []graph.ID) error {
	pos := make(map[graph.ID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		lo, hi := i, i
		for _, u := range g.Neighbors(v) {
			p, ok := pos[u]
			if !ok {
				continue // different component
			}
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		for p := lo; p <= hi; p++ {
			if p != i && !g.HasEdge(v, order[p]) {
				return fmt.Errorf("N[%d] is not consecutive: misses %d", v, order[p])
			}
		}
	}
	return nil
}

// PositionsOf returns the index of every node in order.
func PositionsOf(order []graph.ID) map[graph.ID]int {
	pos := make(map[graph.ID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	return pos
}

// SortByPosition sorts ids in place by their umbrella position.
func SortByPosition(ids []graph.ID, pos map[graph.ID]int) {
	sort.Slice(ids, func(i, j int) bool { return pos[ids[i]] < pos[ids[j]] })
}
