package interval

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestCliquePathFromModelSimple(t *testing.T) {
	// Three intervals: a-b overlap, b-c overlap, a-c don't.
	ivs := []gen.Interval{
		{Node: 1, Lo: 0, Hi: 2},
		{Node: 2, Lo: 1, Hi: 4},
		{Node: 3, Lo: 3, Hi: 5},
	}
	path := CliquePathFromModel(ivs)
	if len(path) != 2 {
		t.Fatalf("got %d cliques: %v", len(path), path)
	}
	if !path[0].Equal(graph.NewSet(1, 2)) || !path[1].Equal(graph.NewSet(2, 3)) {
		t.Fatalf("clique path = %v", path)
	}
}

func TestCliquePathFromModelValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ivs := gen.RandomIntervals(40, 12, 3, seed)
		g := gen.FromIntervals(ivs)
		path := CliquePathFromModel(ivs)
		if err := ValidCliquePath(g, path); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCliquePathMatchesChordalCliques(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ivs := gen.RandomIntervals(30, 10, 2.5, seed)
		g := gen.FromIntervals(ivs)
		path := CliquePathFromModel(ivs)
		cliques, err := chordal.MaximalCliques(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != len(cliques) {
			t.Fatalf("seed %d: path has %d cliques, chordal finds %d", seed, len(path), len(cliques))
		}
	}
}

func TestModelFromCliquePathRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ivs := gen.RandomIntervals(35, 10, 2.5, seed)
		g := gen.FromIntervals(ivs)
		path := CliquePathFromModel(ivs)
		back := ModelFromCliquePath(path)
		g2 := gen.FromIntervals(back)
		if !g.Equal(g2) {
			t.Fatalf("seed %d: model→path→model changed the graph", seed)
		}
	}
}

func TestExactMISMatchesGavril(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ivs := gen.RandomIntervals(50, 15, 3, seed)
		g := gen.FromIntervals(ivs)
		is := ExactMIS(ivs)
		if err := verify.IndependentSet(g, is); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		alpha, err := chordal.IndependenceNumber(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(is) != alpha {
			t.Fatalf("seed %d: |IS| = %d, α = %d", seed, len(is), alpha)
		}
	}
}

func TestExactColoringOptimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ivs := gen.RandomIntervals(50, 12, 3, seed)
		g := gen.FromIntervals(ivs)
		colors := ExactColoring(ivs)
		used, err := verify.Coloring(g, colors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		omega, err := chordal.CliqueNumber(g)
		if err != nil {
			t.Fatal(err)
		}
		if used != omega {
			t.Fatalf("seed %d: used %d colors, χ = %d", seed, used, omega)
		}
	}
}

func TestDominatedRemovalKeepsAlpha(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.RandomInterval(40, 10, 3, seed)
		reduced := RemoveDominated(g)
		a1, err := chordal.IndependenceNumber(g)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := chordal.IndependenceNumber(reduced)
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Fatalf("seed %d: α changed from %d to %d after reduction", seed, a1, a2)
		}
	}
}

func TestDominatedOnStar(t *testing.T) {
	// In a star the center's closed neighborhood strictly contains each
	// leaf's, so only the center is dominated.
	g := gen.Star(6)
	dom := Dominated(g)
	if !dom.Equal(graph.NewSet(0)) {
		t.Fatalf("Dominated(star) = %v, want {0}", dom)
	}
}

func TestRemoveDominatedYieldsProperInterval(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.RandomInterval(45, 12, 3, seed)
		reduced := RemoveDominated(g)
		if !IsProperInterval(reduced) {
			t.Fatalf("seed %d: reduction did not yield a proper interval graph", seed)
		}
	}
}

func TestUmbrellaOrderOnUnitIntervals(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.FromIntervals(gen.UnitIntervals(40, 20, seed))
		order, err := UmbrellaOrder(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(order) != g.NumNodes() {
			t.Fatalf("seed %d: order has %d nodes, want %d", seed, len(order), g.NumNodes())
		}
		seen := make(map[graph.ID]bool)
		for _, v := range order {
			if seen[v] {
				t.Fatalf("seed %d: duplicate %d in order", seed, v)
			}
			seen[v] = true
		}
	}
}

func TestUmbrellaOrderRejectsNonProper(t *testing.T) {
	// The claw K_{1,3} is interval but not proper interval.
	claw := gen.Star(4)
	if _, err := UmbrellaOrder(claw); err == nil {
		t.Fatal("UmbrellaOrder accepted the claw")
	}
	if IsProperInterval(claw) {
		t.Fatal("claw reported as proper interval")
	}
}

func TestUmbrellaOrderOnPath(t *testing.T) {
	g := gen.Path(10)
	order, err := UmbrellaOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	// A path's umbrella order must be one of the two traversals.
	if order[0] != 0 && order[0] != 9 {
		t.Fatalf("umbrella order starts at %d", order[0])
	}
	for i := 0; i+1 < len(order); i++ {
		if !g.HasEdge(order[i], order[i+1]) {
			t.Fatalf("order %v is not a path traversal", order)
		}
	}
}

func TestLexBFSVisitsComponent(t *testing.T) {
	g := gen.Path(6)
	g.AddEdge(100, 101)
	order := LexBFS(g, 0, nil)
	if len(order) != 6 {
		t.Fatalf("LexBFS visited %d nodes, want 6", len(order))
	}
	if order[0] != 0 {
		t.Fatalf("LexBFS must start at the start vertex, got %d", order[0])
	}
}
