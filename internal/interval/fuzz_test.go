package interval

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// FuzzRecognize builds a graph from fuzzed edge bytes; whenever Recognize
// accepts it, the returned model must realize exactly that graph, and
// whenever it rejects a graph built from an interval model, that is a bug.
func FuzzRecognize(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3})
	f.Add([]byte{0, 1, 1, 2, 2, 0, 3, 0})
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0}) // C4
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 60 {
			data = data[:60]
		}
		g := graph.New()
		for i := 0; i+1 < len(data); i += 2 {
			g.AddEdge(graph.ID(data[i]%24), graph.ID(data[i+1]%24))
		}
		if g.NumNodes() == 0 {
			return
		}
		path, model, err := Recognize(g)
		if err != nil {
			return
		}
		if !gen.FromIntervals(model).Equal(g) {
			t.Fatalf("accepted model does not realize graph %v", g)
		}
		if err := ValidCliquePath(g, path); err != nil {
			t.Fatalf("accepted path invalid: %v", err)
		}
	})
}

// FuzzChordalPipeline checks the chordal toolkit on fuzzed graphs: it
// never panics, and when it accepts a graph, its exact outputs verify.
func FuzzChordalPipeline(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 2})
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 50 {
			data = data[:50]
		}
		g := graph.New()
		for i := 0; i+1 < len(data); i += 2 {
			g.AddEdge(graph.ID(data[i]%20), graph.ID(data[i+1]%20))
		}
		if !chordal.IsChordal(g) {
			return
		}
		colors, err := chordal.OptimalColoring(g)
		if err != nil {
			t.Fatalf("coloring chordal graph: %v", err)
		}
		if _, err := verify.Coloring(g, colors); err != nil {
			t.Fatal(err)
		}
		is, err := chordal.MaximumIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.IndependentSet(g, is); err != nil {
			t.Fatal(err)
		}
	})
}
