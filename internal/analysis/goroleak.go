package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every goroutine spawned in module code to carry
// visible join evidence. The engine's round barrier is the determinism
// linchpin: a worker that outlives its round can write into buffers the
// next round has already repartitioned, and a leaked server goroutine
// keeps the process alive past Engine.Run. Accepted evidence, checked
// per go statement:
//
//   - WaitGroup join: the spawned body calls Done on some object and the
//     enclosing function calls Wait on the same object;
//   - channel join: the spawned body sends on or closes a channel the
//     enclosing function receives from (<-ch or range ch);
//   - ownership transfer: the Done/send target is not declared inside
//     the enclosing function (a parameter, receiver field, or captured
//     outer state) — the join is the owner's responsibility and is
//     checked at the owner's own spawn sites.
//
// A goroutine with no signal at all (the fire-and-forget `go func() {
// _ = srv.Serve(ln) }()` shape) is reported; intentional daemons take a
// chordalvet:ignore directive with a written justification.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "goroutines spawned without WaitGroup/channel join evidence in the enclosing function",
	RunModule: runGoroLeak,
}

// joinSignal is one join handle observed in a spawned body: an object
// the goroutine calls Done on, or a channel it sends on / closes.
type joinSignal struct {
	obj  types.Object
	kind string // "WaitGroup.Done", "channel send", "close"
}

func runGoroLeak(mp *ModulePass) {
	for _, n := range mp.Facts.Graph.Order {
		node := n
		inspectOwn(node.Body, func(nd ast.Node) {
			g, ok := nd.(*ast.GoStmt)
			if !ok {
				return
			}
			if why, ok := goStmtJoinless(mp.Facts, node, g); !ok {
				mp.Reportf(g.Pos(), "goroutine has no join evidence (%s); add a WaitGroup Done/Wait pair or a channel handoff, or justify the daemon with a chordalvet:ignore directive", why)
			}
		})
	}
}

// goStmtJoinless checks one go statement for join evidence. It returns
// ok=true when the goroutine is provably joined (or joining is the
// owner's responsibility), otherwise a short reason.
func goStmtJoinless(facts *Facts, encl *FuncNode, g *ast.GoStmt) (string, bool) {
	info := encl.Pkg.Info
	signals := spawnSignals(facts, encl, g)
	if len(signals) == 0 {
		return "the spawned body neither calls Done nor sends on a channel", false
	}
	waited, received := enclosingJoins(info, encl)
	for _, sig := range signals {
		if sig.obj == nil {
			continue
		}
		switch sig.kind {
		case "WaitGroup.Done":
			if waited[sig.obj] {
				return "", true
			}
		default: // channel send / close
			if received[sig.obj] {
				return "", true
			}
		}
		// Ownership transfer: the handle is not declared inside this
		// function, so the declaring scope joins it.
		if !declaredWithin(sig.obj, encl) {
			return "", true
		}
	}
	return "the spawned body signals " + signals[0].kind + " but the enclosing function never waits on that handle", false
}

// spawnSignals collects the join handles a spawned call may touch. For
// a literal, its full body is scanned (including nested literals — a
// deferred Done counts wherever it sits). For a direct `go f(args)`,
// WaitGroup- or channel-typed arguments count as handles, and an
// in-module callee's body is scanned with its parameters mapped back to
// the caller's argument objects.
func spawnSignals(facts *Facts, encl *FuncNode, g *ast.GoStmt) []joinSignal {
	info := encl.Pkg.Info
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return bodySignals(info, lit.Body, nil)
	}
	var out []joinSignal
	// Handle-typed arguments (and method receiver) of a direct spawn.
	for _, arg := range callArgExprs(encl.Pkg, g.Call) {
		if arg == nil {
			continue
		}
		obj := rootIdentObj(info, arg)
		if obj == nil {
			continue
		}
		if kind := handleKind(info.TypeOf(arg)); kind != "" {
			out = append(out, joinSignal{obj: obj, kind: kind})
		}
	}
	if len(out) > 0 {
		return out
	}
	// In-module callee: scan its body, mapping its own handles back to
	// the caller's arguments where possible; handles it owns internally
	// are its own problem and make the spawn joined from here.
	if callee, _ := facts.calleeSummary(encl.Pkg, g.Call); callee != nil {
		remap := make(map[types.Object]types.Object)
		args := callArgExprs(encl.Pkg, g.Call)
		for pos, p := range callee.ParamObjs() {
			if p == nil || pos >= len(args) || args[pos] == nil {
				continue
			}
			if obj := rootIdentObj(info, args[pos]); obj != nil {
				remap[p] = obj
			}
		}
		return bodySignals(callee.Pkg.Info, callee.Body, remap)
	}
	return nil
}

// handleKind classifies a type as a join handle.
func handleKind(t types.Type) string {
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return "channel send"
	}
	u := t
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem()
	}
	if named, ok := u.(*types.Named); ok {
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
			return "WaitGroup.Done"
		}
	}
	return ""
}

// bodySignals scans a spawned body for Done calls, channel sends, and
// closes. remap translates the scanned body's objects (callee params)
// back to the caller's objects; nil entries pass through unchanged.
func bodySignals(info *types.Info, body *ast.BlockStmt, remap map[types.Object]types.Object) []joinSignal {
	translate := func(obj types.Object) types.Object {
		if remap != nil {
			if o, ok := remap[obj]; ok {
				return o
			}
		}
		return obj
	}
	var out []joinSignal
	ast.Inspect(body, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.SendStmt:
			if obj := rootIdentObj(info, v.Chan); obj != nil {
				out = append(out, joinSignal{obj: translate(obj), kind: "channel send"})
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if obj := rootIdentObj(info, sel.X); obj != nil {
					out = append(out, joinSignal{obj: translate(obj), kind: "WaitGroup.Done"})
				}
			}
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "close" && len(v.Args) == 1 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					if obj := rootIdentObj(info, v.Args[0]); obj != nil {
						out = append(out, joinSignal{obj: translate(obj), kind: "close"})
					}
				}
			}
		}
		return true
	})
	return out
}

// enclosingJoins collects the objects the enclosing function waits on:
// Wait receivers and channels it receives from (unary <-ch or range).
// The whole lexical body is scanned — a Wait inside a deferred literal
// still joins.
func enclosingJoins(info *types.Info, encl *FuncNode) (waited, received map[types.Object]bool) {
	waited = make(map[types.Object]bool)
	received = make(map[types.Object]bool)
	ast.Inspect(encl.Body, func(nd ast.Node) bool {
		switch v := nd.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if obj := rootIdentObj(info, sel.X); obj != nil {
					waited[obj] = true
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				if obj := rootIdentObj(info, v.X); obj != nil {
					received[obj] = true
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if obj := rootIdentObj(info, v.X); obj != nil {
						received[obj] = true
					}
				}
			}
		}
		return true
	})
	return waited, received
}

// declaredWithin reports whether obj is declared inside the function's
// own body. Parameters deliberately count as outside: a WaitGroup or
// channel received as a parameter (or read off a receiver field) is the
// caller's handle, and the join obligation lives at the owner's scope.
func declaredWithin(obj types.Object, n *FuncNode) bool {
	return obj.Pos() >= n.Body.Pos() && obj.Pos() < n.Body.End()
}
