package analysis

import (
	"go/ast"
	"go/types"
)

// forEachFunc invokes fn for every function or method body in the pass,
// including function literals. Literals nested inside a body are also
// visited on their own, so analyses that scan "the enclosing function"
// see each body exactly once as the root.
func forEachFunc(pass *Pass, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					fn(v, v.Body)
				}
			case *ast.FuncLit:
				fn(nil, v.Body)
			}
			return true
		})
	}
}

// calleeFunc resolves a call expression to the function or method object
// it invokes, or nil for indirect calls and builtins.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.ObjectOf(id).(*types.Func)
	return fn
}

// isPkgCall reports whether call invokes a package-level function of the
// package with the given import path whose name is in names. An empty
// names list matches any function of the package.
func isPkgCall(pass *Pass, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}

// recvTypeName returns the package name and named-type name of a method
// call's receiver ("graph", "Indexed"), or empty strings for non-methods.
// Matching on names rather than full import paths lets the analyzers work
// identically on the real repo and on the self-contained stub packages in
// testdata fixtures.
func recvTypeName(pass *Pass, call *ast.CallExpr) (pkgName, typeName, method string) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", "", ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil {
		pkgName = obj.Pkg().Name()
	}
	return pkgName, obj.Name(), fn.Name()
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// identObj resolves an expression to the object of the identifier it
// denotes, unwrapping parentheses; nil for anything but a plain
// identifier.
func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.ObjectOf(id)
}

// isInPlaceSort reports whether call is a standard-library call that
// reorders its first argument in place (sort.Slice, slices.Sort, ...).
func isInPlaceSort(pass *Pass, call *ast.CallExpr) bool {
	return isPkgCall(pass, call, "sort",
		"Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s") ||
		isPkgCall(pass, call, "slices",
			"Sort", "SortFunc", "SortStableFunc", "Reverse")
}

// isAppendCall reports whether call is the append builtin.
func isAppendCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// pathHasSegments reports whether the import path contains the given
// consecutive slash-separated segments ("internal/dist" matches
// "repro/internal/dist" but not "repro/internal/distillery").
func pathHasSegments(path, segments string) bool {
	want := splitSlash(segments)
	have := splitSlash(path)
	for i := 0; i+len(want) <= len(have); i++ {
		match := true
		for j, s := range want {
			if have[i+j] != s {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func splitSlash(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '/' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
