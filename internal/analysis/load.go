package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Only non-test files are loaded: the determinism invariants
// chordalvet guards concern production simulation code, and tests are
// free to use wall clocks and ad-hoc randomness.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at dir (the directory containing go.mod). Intra-module
// imports resolve against the freshly checked packages; all other imports
// (the standard library) resolve through go/importer's source importer,
// so the loader needs no compiled export data and no external tooling.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkgs, err := parseModule(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		checked:  make(map[string]*types.Package, len(pkgs)),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		pkg.Info = info
		imp.checked[pkg.Path] = tpkg
	}
	return order, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("chordalvet needs a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// parseModule walks the module tree and parses every non-test package.
// testdata, vendor, hidden directories, and nested modules are skipped,
// matching the go tool's notion of "packages in this module".
func parseModule(fset *token.FileSet, root, modPath string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		pkg, err := parseDir(fset, root, modPath, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	return pkgs, err
}

// parseDir parses the non-test Go files of one directory, returning nil
// if the directory holds no buildable Go files.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files}, nil
}

// topoSort orders packages so every intra-module import is checked before
// its importer. Import cycles are a hard error, as in the go tool.
func topoSort(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case visiting:
			return fmt.Errorf("import cycle through %s", p.Path)
		case done:
			return nil
		}
		state[p.Path] = visiting
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if dep, ok := byPath[path]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p.Path] = done
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the freshly checked
// packages and everything else (the standard library) from source.
type moduleImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return m.fallback.Import(path)
}
