package analysis

import "testing"

func summaryByName(t *testing.T, facts *Facts, name string) *Summary {
	t.Helper()
	return facts.SummaryOf(nodeByName(t, facts.Graph, name))
}

func TestSummaryMutatesParam(t *testing.T) {
	facts := loadFacts(t, "callgraph")

	if s := summaryByName(t, facts, "mutateElem"); !s.MutatesParam[0] {
		t.Errorf("mutateElem: element write not summarized as parameter mutation")
	}
	if s := summaryByName(t, facts, "forwardMutate"); !s.MutatesParam[0] {
		t.Errorf("forwardMutate: mutation fact did not propagate through the call")
	}
	if s := summaryByName(t, facts, "rebindOnly"); s.MutatesParam[0] {
		t.Errorf("rebindOnly: plain rebinding is not caller-visible, must not be a mutation")
	}
	if s := summaryByName(t, facts, "mutateAlias"); !s.MutatesParam[0] {
		t.Errorf("mutateAlias: write through a re-slice alias not summarized")
	}
}

func TestSummaryRunsParamInGoroutine(t *testing.T) {
	facts := loadFacts(t, "callgraph")

	if s := summaryByName(t, facts, "runCallback"); !s.RunsParamInGoroutine[0] {
		t.Errorf("runCallback: callback invoked in spawned literal not summarized")
	}
	if s := summaryByName(t, facts, "forwardCallback"); !s.RunsParamInGoroutine[0] {
		t.Errorf("forwardCallback: runs-in-goroutine fact did not propagate through forwarding")
	}
	if s := summaryByName(t, facts, "runCallback"); !s.SpawnsGoroutine {
		t.Errorf("runCallback: go statement not summarized")
	}
}

func TestSummaryAllocKinds(t *testing.T) {
	facts := loadFacts(t, "callgraph")

	kinds := make(map[string]int)
	for _, a := range summaryByName(t, facts, "allocKinds").Allocs {
		kinds[a.Kind]++
	}
	for _, want := range []string{"make(map)", "make(slice)", "new", "&composite", "slice literal", "append", "closure"} {
		if kinds[want] == 0 {
			t.Errorf("allocKinds: missing %q site; got %v", want, kinds)
		}
	}
	// The &composite must not double-count its inner literal.
	if kinds["&composite"] != 1 {
		t.Errorf("allocKinds: &composite counted %d times, want 1", kinds["&composite"])
	}

	for _, a := range summaryByName(t, facts, "preallocAppend").Allocs {
		if a.Kind == "append" {
			t.Errorf("preallocAppend: append with prealloc evidence counted as a site")
		}
	}
}

func TestSummaryReturnsView(t *testing.T) {
	facts := loadFacts(t, "snapshotmut")

	s := summaryByName(t, facts, "viewRows")
	if !s.ReturnsView || s.ViewSource != "graph.Indexed.IDs" {
		t.Errorf("viewRows: ReturnsView=%v ViewSource=%q, want true/graph.Indexed.IDs", s.ReturnsView, s.ViewSource)
	}
	if s := summaryByName(t, facts, "readLen"); s.ReturnsView {
		t.Errorf("readLen: summarized as returning a view")
	}
}

func TestHotPathReportsDeterministic(t *testing.T) {
	facts := loadFacts(t, "hotalloc")

	a := HotPathReports(facts)
	b := HotPathReports(facts)
	if len(a) == 0 {
		t.Fatal("hotalloc fixture produced no hot-path reports")
	}
	for i := range a {
		if a[i].Root.Node != b[i].Root.Node || a[i].Sites != b[i].Sites || a[i].Breakdown() != b[i].Breakdown() {
			t.Errorf("report %d differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
	// Roots arrive in position order.
	for i := 1; i < len(a); i++ {
		pa, pb := facts.Graph.Fset.Position(a[i-1].Root.Pos), facts.Graph.Fset.Position(a[i].Root.Pos)
		if pa.Filename == pb.Filename && pa.Offset > pb.Offset {
			t.Errorf("hot roots out of position order: %s then %s", pa, pb)
		}
	}
}
