package analysis

import (
	"go/ast"
	"go/types"
)

// InboxEscape flags Protocol.Round implementations that retain the
// per-round inbox slice past the callback. dist.Engine double-buffers
// inboxes: the slice passed to Round is truncated and refilled with next
// round's messages as soon as the round barrier passes, so a handler
// that stores the slice (or a re-slice of it) in its state observes
// messages from a *future* round — a time-travel bug that only
// manifests under particular schedules. Storing individual Message
// values (which are copied) or appending the messages into an owned
// slice is fine; retaining the backing array is not.
var InboxEscape = &Analyzer{
	Name: "inboxescape",
	Doc:  "Round handlers retaining the engine-owned per-round inbox slice",
	Run:  runInboxEscape,
}

func runInboxEscape(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Round" || fd.Body == nil {
				continue
			}
			inbox := roundInboxParam(pass, fd)
			if inbox == nil {
				continue
			}
			checkInboxEscapes(pass, fd.Body, inbox)
		}
	}
}

// roundInboxParam returns the object of Round's trailing []Message
// parameter, or nil if the method does not look like a Protocol.Round.
func roundInboxParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) != 1 || last.Names[0].Name == "_" {
		return nil
	}
	obj := pass.Info.ObjectOf(last.Names[0])
	if obj == nil {
		return nil
	}
	slice, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	named, ok := slice.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Message" {
		return nil
	}
	return obj
}

func checkInboxEscapes(pass *Pass, body *ast.BlockStmt, inbox types.Object) {
	tainted := map[types.Object]bool{inbox: true}
	// isInboxSlice: the inbox itself or a re-slice of it (shares the
	// engine-owned backing array). Indexing produces a Message copy and
	// is safe, so IndexExpr is deliberately not matched.
	var isInboxSlice func(e ast.Expr) bool
	isInboxSlice = func(e ast.Expr) bool {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(v)
			return obj != nil && tainted[obj]
		case *ast.SliceExpr:
			return isInboxSlice(v.X)
		}
		return false
	}
	// Propagate through local aliases to a fixpoint first.
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				if !isInboxSlice(as.Rhs[i]) {
					continue
				}
				if obj := identObj(pass, as.Lhs[i]); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i := range v.Lhs {
				if !isInboxSlice(v.Rhs[i]) {
					continue
				}
				switch lhs := ast.Unparen(v.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					pass.Reportf(v.Pos(), "stores the per-round inbox slice in %s; the engine reuses its backing array after the round — copy the messages with append instead", exprString(lhs))
				case *ast.IndexExpr:
					pass.Reportf(v.Pos(), "stores the per-round inbox slice into a container; the engine reuses its backing array after the round — copy the messages with append instead")
				case *ast.Ident:
					if obj := pass.Info.ObjectOf(lhs); obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(v.Pos(), "stores the per-round inbox slice in package variable %s; the engine reuses its backing array after the round — copy the messages instead", lhs.Name)
					}
				}
			}
		case *ast.GoStmt:
			referencesInbox := false
			ast.Inspect(v.Call, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil && tainted[obj] {
						referencesInbox = true
						return false
					}
				}
				return !referencesInbox
			})
			if referencesInbox {
				pass.Reportf(v.Pos(), "passes the per-round inbox slice to a goroutine that may outlive the round; the engine reuses its backing array — copy the messages first")
			}
		}
		return true
	})
}

// exprString renders a selector chain like "p.saved" for diagnostics.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	default:
		return "?"
	}
}
