package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes per-function dataflow summaries over the call
// graph: the facts the interprocedural analyzers consume. Each summary
// is local evidence (one walk of the function's own body) plus a
// module-wide fixpoint that propagates the transitive facts — a
// function that hands its parameter to a mutating callee mutates that
// parameter, a runner that invokes its callback inside a spawned worker
// runs that callback on a goroutine, a wrapper returning a shared-view
// accessor result returns a shared view.

// AllocSite is one statically counted heap-allocation site.
type AllocSite struct {
	Pos  token.Pos
	Kind string // "make(map)", "make(slice)", "make(chan)", "new", "&composite", "map literal", "slice literal", "closure", "append", "iface-box"
}

// Summary is one function's dataflow facts.
type Summary struct {
	// Allocs lists the allocation sites in the function's own body
	// (nested literals report their own).
	Allocs []AllocSite
	// MutatesParam reports, receiver-first (see FuncNode.ParamObjs),
	// whether calling the function may mutate state reachable from
	// that parameter: element writes, field writes through pointers,
	// in-place sorts, appends, copies, deletes, or passing it onward
	// to a mutating callee.
	MutatesParam []bool
	// SpawnsGoroutine reports a go statement in the function's own body.
	SpawnsGoroutine bool
	// RunsParamInGoroutine reports, receiver-first, whether the
	// parameter is invoked on a goroutine this function (or a callee it
	// forwards the parameter to) spawns. This is how sharedwrite finds
	// worker bodies handed to runners like runShards.
	RunsParamInGoroutine []bool
	// ReturnsView reports that the function returns a shared snapshot
	// view (a shared-view accessor result or a re-slice of one),
	// making its own call sites taint sources for snapshotmut.
	ReturnsView bool
	// ViewSource names the originating accessor when ReturnsView.
	ViewSource string
	// Captured lists the free variables of a function literal (objects
	// declared outside the literal), in first-use order. Empty for
	// declared functions.
	Captured []types.Object
}

// Facts bundles the module-wide interprocedural state handed to every
// pass: the call graph, the per-function summaries, and the hotpath /
// coldpath directive tables.
type Facts struct {
	Graph     *CallGraph
	summaries map[*FuncNode]*Summary
	hotRoots  []*HotRoot
	coldpath  map[*FuncNode]bool
}

// SummaryOf returns fn's summary (never nil for graph nodes).
func (f *Facts) SummaryOf(n *FuncNode) *Summary {
	if s := f.summaries[n]; s != nil {
		return s
	}
	return &Summary{}
}

// HotRoots returns the module's hotpath-annotated roots in position order.
func (f *Facts) HotRoots() []*HotRoot { return f.hotRoots }

// IsColdPath reports whether n carries a coldpath directive.
func (f *Facts) IsColdPath(n *FuncNode) bool { return f.coldpath[n] }

// HotRoot is one //chordalvet:hotpath-annotated function.
type HotRoot struct {
	Node   *FuncNode
	Budget int
	// Pos is the directive's position (diagnostics anchor here).
	Pos token.Pos
}

// BuildFacts computes the full interprocedural state for a module.
func BuildFacts(pkgs []*Package) *Facts {
	cg := BuildCallGraph(pkgs)
	f := &Facts{
		Graph:     cg,
		summaries: make(map[*FuncNode]*Summary, len(cg.Order)),
		coldpath:  make(map[*FuncNode]bool),
	}
	for _, n := range cg.Order {
		f.summaries[n] = localSummary(n)
	}
	f.fixpoint()
	f.collectDirectives()
	return f
}

// paramIndexOf maps parameter objects to their receiver-first index.
func paramIndexOf(n *FuncNode) map[types.Object]int {
	idx := make(map[types.Object]int)
	for i, obj := range n.ParamObjs() {
		if obj != nil {
			idx[obj] = i
		}
	}
	return idx
}

// rootIdentObj returns the base identifier object of an lvalue-ish
// chain (p, p.f, p[i], p[1:], *p, combinations), or nil.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// localSummary computes the non-transitive facts of one function body.
func localSummary(n *FuncNode) *Summary {
	s := &Summary{}
	info := n.Pkg.Info
	params := n.ParamObjs()
	s.MutatesParam = make([]bool, len(params))
	s.RunsParamInGoroutine = make([]bool, len(params))
	pidx := paramIndexOf(n)

	derived := collectParamDerived(n, pidx)
	// Composite literals already counted at their & operator must not
	// count again when visited as children.
	addrLits := make(map[*ast.CompositeLit]bool)
	markWrite := func(e ast.Expr) {
		for _, i := range writeTargets(info, derived, e) {
			s.MutatesParam[i] = true
		}
	}
	markAliasMutation := func(e ast.Expr) {
		// A mutating builtin/callee consuming an aliasing expression
		// (ident, selector, index, re-slice chain) mutates the params
		// its root derives from.
		if obj := rootIdentObj(info, e); obj != nil {
			for _, i := range derived[obj] {
				s.MutatesParam[i] = true
			}
		}
	}

	inspectOwn(n.Body, func(nd ast.Node) {
		switch v := nd.(type) {
		case *ast.GoStmt:
			s.SpawnsGoroutine = true
			markRunsInGoroutine(info, s, pidx, v)
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(v.X)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					s.Allocs = append(s.Allocs, AllocSite{Pos: v.Pos(), Kind: "&composite"})
					addrLits[lit] = true
				}
			}
		case *ast.CompositeLit:
			if addrLits[v] {
				return
			}
			if kind := compositeAllocKind(info, v); kind != "" {
				s.Allocs = append(s.Allocs, AllocSite{Pos: v.Pos(), Kind: kind})
			}
		case *ast.FuncLit:
			s.Allocs = appendClosureSite(info, s.Allocs, v)
		case *ast.CallExpr:
			summarizeCall(n, s, derived, markAliasMutation, v)
		}
	})
	if n.Lit != nil {
		s.Captured = capturedObjects(info, n.Lit)
	}
	s.ReturnsView, s.ViewSource = returnsViewLocal(n)
	return s
}

// markRunsInGoroutine records params invoked directly by a go statement
// (`go body(...)`) or called inside a spawned literal's body.
func markRunsInGoroutine(info *types.Info, s *Summary, pidx map[types.Object]int, g *ast.GoStmt) {
	markCallee := func(call *ast.CallExpr) {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if i, ok := pidx[info.ObjectOf(id)]; ok {
				s.RunsParamInGoroutine[i] = true
			}
		}
	}
	markCallee(g.Call)
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(nd ast.Node) bool {
			if call, ok := nd.(*ast.CallExpr); ok {
				markCallee(call)
			}
			return true
		})
	}
}

// collectParamDerived computes, to a local fixpoint, which parameters
// each local variable may alias: locals assigned from expressions whose
// root identifier is a parameter (or an already-derived local) inherit
// those parameter indices.
func collectParamDerived(n *FuncNode, pidx map[types.Object]int) map[types.Object][]int {
	info := n.Pkg.Info
	derived := make(map[types.Object][]int, len(pidx))
	for obj, i := range pidx {
		derived[obj] = append(derived[obj], i)
	}
	for {
		changed := false
		inspectOwn(n.Body, func(nd ast.Node) {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i := range as.Lhs {
				lhsObj := identObjInfo(info, as.Lhs[i])
				if lhsObj == nil {
					continue
				}
				root := rootIdentObj(info, as.Rhs[i])
				if root == nil || root == lhsObj {
					continue
				}
				for _, pi := range derived[root] {
					if !containsInt(derived[lhsObj], pi) {
						derived[lhsObj] = append(derived[lhsObj], pi)
						changed = true
					}
				}
			}
		})
		if !changed {
			return derived
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// identObjInfo is identObj without a Pass.
func identObjInfo(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// writeTargets returns the parameter indices a write to lhs mutates in
// a caller-visible way. Rebinding a plain identifier is invisible;
// element writes and pointer-field writes reach shared storage.
func writeTargets(info *types.Info, derived map[types.Object][]int, lhs ast.Expr) []int {
	rootDerived := func(e ast.Expr) []int {
		if obj := rootIdentObj(info, e); obj != nil {
			return derived[obj]
		}
		return nil
	}
	switch v := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return rootDerived(v.X)
	case *ast.StarExpr:
		return rootDerived(v.X)
	case *ast.SelectorExpr:
		// p.f = x is caller-visible only through a pointer; a value
		// receiver's field write stays in the local copy. Deeper chains
		// (p.f.g) recurse until a pointer or indexing step decides.
		if t := info.TypeOf(v.X); t != nil {
			if _, ok := t.Underlying().(*types.Pointer); ok {
				return rootDerived(v.X)
			}
		}
		return writeTargets(info, derived, v.X)
	}
	return nil
}

// summarizeCall records allocation sites and alias mutations evidenced
// by one call expression.
func summarizeCall(n *FuncNode, s *Summary, derived map[types.Object][]int, markAlias func(ast.Expr), call *ast.CallExpr) {
	info := n.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				s.Allocs = append(s.Allocs, AllocSite{Pos: call.Pos(), Kind: makeKind(info, call)})
			case "new":
				s.Allocs = append(s.Allocs, AllocSite{Pos: call.Pos(), Kind: "new"})
			case "append":
				if len(call.Args) > 0 {
					markAlias(call.Args[0])
				}
				s.Allocs = appendGrowSite(n, s.Allocs, call)
			case "copy", "clear", "delete":
				if len(call.Args) > 0 {
					markAlias(call.Args[0])
				}
			}
			return
		}
	}
	if isInPlaceSortInfo(info, call) && len(call.Args) > 0 {
		markAlias(call.Args[0])
	}
	s.Allocs = appendBoxSites(info, s.Allocs, call)
}

func makeKind(info *types.Info, call *ast.CallExpr) string {
	if t := info.TypeOf(call); t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			return "make(map)"
		case *types.Chan:
			return "make(chan)"
		}
	}
	return "make(slice)"
}

// compositeAllocKind classifies a composite literal as an allocation
// site: map and slice literals allocate; struct values do not (their
// address-taken form is counted at the & operator).
func compositeAllocKind(info *types.Info, lit *ast.CompositeLit) string {
	t := info.TypeOf(lit)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map literal"
	case *types.Slice:
		return "slice literal"
	}
	return ""
}

// appendClosureSite counts a function literal that captures variables:
// the closure context is heap-allocated at the literal expression.
func appendClosureSite(info *types.Info, allocs []AllocSite, lit *ast.FuncLit) []AllocSite {
	if len(capturedObjects(info, lit)) > 0 {
		allocs = append(allocs, AllocSite{Pos: lit.Pos(), Kind: "closure"})
	}
	return allocs
}

// capturedObjects returns the variables a literal references but does
// not declare: locals and parameters of enclosing functions (package-
// level state needs no closure context and is excluded).
func capturedObjects(info *types.Info, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// preallocKey identifies an append destination for prealloc-evidence
// matching: a base object plus a selector-field chain rendered as text.
type preallocKey struct {
	obj   types.Object
	chain string
}

func preallocKeyOf(info *types.Info, e ast.Expr) (preallocKey, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(v); obj != nil {
			return preallocKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		base, ok := preallocKeyOf(info, v.X)
		if !ok {
			return preallocKey{}, false
		}
		if base.chain != "" {
			base.chain += "."
		}
		base.chain += v.Sel.Name
		return base, true
	}
	return preallocKey{}, false
}

// appendGrowSite counts an append call as an allocation site unless its
// destination shows prealloc evidence in the same body: a reslice
// assignment (`dst = dst[:0]`) or a make with explicit capacity — the
// repo's scratch-reuse idioms, which amortize to zero allocation.
func appendGrowSite(n *FuncNode, allocs []AllocSite, call *ast.CallExpr) []AllocSite {
	info := n.Pkg.Info
	if len(call.Args) == 0 {
		return allocs
	}
	key, ok := preallocKeyOf(info, call.Args[0])
	if ok && hasPreallocEvidence(n, key) {
		return allocs
	}
	return append(allocs, AllocSite{Pos: call.Pos(), Kind: "append"})
}

// hasPreallocEvidence scans the body for a reslice or capacity-make
// assigned to key.
func hasPreallocEvidence(n *FuncNode, key preallocKey) bool {
	info := n.Pkg.Info
	found := false
	inspectOwn(n.Body, func(nd ast.Node) {
		if found {
			return
		}
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			lk, ok := preallocKeyOf(info, as.Lhs[i])
			if !ok || lk != key {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr:
				rk, ok := preallocKeyOf(info, rhs.X)
				if ok && rk == key {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" {
					if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(rhs.Args) == 3 {
						found = true
					}
				}
			}
		}
	})
	return found
}

// appendBoxSites counts interface-boxing allocations at a call: concrete
// non-pointer-shaped arguments passed to interface-typed parameters
// (including variadic ...any) escape to the heap when boxed.
func appendBoxSites(info *types.Info, allocs []AllocSite, call *ast.CallExpr) []AllocSite {
	fn := callTargetFuncInfo(info, call)
	if fn == nil {
		return allocs
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return allocs
	}
	params := sig.Params()
	if params.Len() == 0 {
		return allocs
	}
	for i, arg := range call.Args {
		j := i
		if sig.Variadic() && j >= params.Len()-1 {
			j = params.Len() - 1
		}
		if j >= params.Len() {
			break
		}
		pt := params.At(j).Type()
		if sig.Variadic() && j == params.Len()-1 {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if boxes(info, arg, pt) {
			allocs = append(allocs, AllocSite{Pos: arg.Pos(), Kind: "iface-box"})
		}
	}
	return allocs
}

// boxes reports whether passing arg to a parameter of type pt converts
// a heap-boxing concrete value into an interface.
func boxes(info *types.Info, arg ast.Expr, pt types.Type) bool {
	if _, ok := pt.Underlying().(*types.Interface); !ok {
		return false
	}
	at := info.TypeOf(arg)
	if at == nil {
		return false
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped or already an interface: no box
	}
	return true
}

// callTargetFuncInfo is callTargetFunc with an explicit *types.Info.
func callTargetFuncInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isInPlaceSortInfo is isInPlaceSort without a Pass.
func isInPlaceSortInfo(info *types.Info, call *ast.CallExpr) bool {
	fn := callTargetFuncInfo(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "Reverse":
			return true
		}
	}
	return false
}

// returnsViewLocal reports whether the function directly returns a
// shared-view accessor result (or a re-slice of one, possibly through a
// local). Transitive wrappers are resolved in the fixpoint.
func returnsViewLocal(n *FuncNode) (bool, string) {
	info := n.Pkg.Info
	// Local taint: variables assigned accessor results.
	tainted := make(map[types.Object]string)
	var viewExpr func(e ast.Expr) (string, bool)
	viewExpr = func(e ast.Expr) (string, bool) {
		switch v := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if src, ok := sharedAccessorCall(info, v); ok {
				return src, true
			}
		case *ast.Ident:
			if src, ok := tainted[info.ObjectOf(v)]; ok {
				return src, true
			}
		case *ast.SliceExpr:
			return viewExpr(v.X)
		}
		return "", false
	}
	for {
		changed := false
		inspectOwn(n.Body, func(nd ast.Node) {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i := range as.Lhs {
				src, isView := viewExpr(as.Rhs[i])
				if !isView {
					continue
				}
				if obj := identObjInfo(info, as.Lhs[i]); obj != nil {
					if _, seen := tainted[obj]; !seen {
						tainted[obj] = src
						changed = true
					}
				}
			}
		})
		if !changed {
			break
		}
	}
	found, source := false, ""
	inspectOwn(n.Body, func(nd ast.Node) {
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for _, res := range ret.Results {
			if src, ok := viewExpr(res); ok {
				found, source = true, src
				return
			}
		}
	})
	return found, source
}

// sharedAccessorCall reports whether call is a shared-view accessor
// (see sharedViewAccessors in snapshotmut.go) and names it.
func sharedAccessorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := callTargetFuncInfo(info, call)
	if fn == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	pkgName := ""
	if named.Obj().Pkg() != nil {
		pkgName = named.Obj().Pkg().Name()
	}
	key := [3]string{pkgName, named.Obj().Name(), fn.Name()}
	if sharedViewAccessors[key] {
		return pkgName + "." + named.Obj().Name() + "." + fn.Name(), true
	}
	return "", false
}

// fixpoint propagates the transitive summary facts until stable:
// MutatesParam through call arguments and receivers,
// RunsParamInGoroutine through forwarded callbacks, and ReturnsView
// through wrappers.
func (f *Facts) fixpoint() {
	for {
		changed := false
		for _, n := range f.Graph.Order {
			if f.propagateNode(n) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// calleeSummary resolves a call to its in-module callee node and
// summary; nil for external, dynamic, and unresolved calls.
func (f *Facts) calleeSummary(pkg *Package, call *ast.CallExpr) (*FuncNode, *Summary) {
	fn := callTargetFunc(pkg, call)
	if fn == nil || isInterfaceMethod(fn) {
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			node := f.Graph.Lits[lit]
			return node, f.summaries[node]
		}
		return nil, nil
	}
	node := f.Graph.Funcs[fn]
	if node == nil {
		return nil, nil
	}
	return node, f.summaries[node]
}

// callArgExprs returns the receiver-first argument expressions of a
// call aligned with the callee's receiver-first parameter indices: for
// method calls, index 0 is the receiver expression. Variadic tails all
// map to the last parameter index via argParamIndex.
func callArgExprs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	fn := callTargetFunc(pkg, call)
	var out []ast.Expr
	if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil) // method expression/value: no receiver expr
		}
	}
	out = append(out, call.Args...)
	return out
}

// argParamIndex maps a receiver-first argument position to the callee's
// receiver-first parameter index, folding variadic tails.
func argParamIndex(callee *FuncNode, argPos int) int {
	nparams := len(callee.ParamObjs())
	if nparams == 0 {
		return -1
	}
	if argPos >= nparams {
		return nparams - 1 // variadic tail
	}
	return argPos
}

// propagateNode recomputes n's transitive facts from its callees;
// reports whether anything changed.
func (f *Facts) propagateNode(n *FuncNode) bool {
	s := f.summaries[n]
	info := n.Pkg.Info
	pidx := paramIndexOf(n)
	derived := collectParamDerived(n, pidx)
	changed := false

	inspectOwn(n.Body, func(nd ast.Node) {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			if g, ok := nd.(*ast.GoStmt); ok {
				call = g.Call
			} else {
				return
			}
		}
		callee, cs := f.calleeSummary(n.Pkg, call)
		if cs == nil {
			return
		}
		args := callArgExprs(n.Pkg, call)
		for pos, arg := range args {
			if arg == nil {
				continue
			}
			j := argParamIndex(callee, pos)
			if j < 0 {
				continue
			}
			if cs.MutatesParam[j] {
				if obj := rootIdentObj(info, arg); obj != nil {
					for _, pi := range derived[obj] {
						if !s.MutatesParam[pi] {
							s.MutatesParam[pi] = true
							changed = true
						}
					}
				}
			}
			if cs.RunsParamInGoroutine[j] {
				if obj := identObjInfo(info, arg); obj != nil {
					if pi, ok := pidx[obj]; ok && !s.RunsParamInGoroutine[pi] {
						s.RunsParamInGoroutine[pi] = true
						changed = true
					}
				}
			}
		}
	})

	// ReturnsView through wrappers: return g(...) where g returns a view.
	if !s.ReturnsView {
		inspectOwn(n.Body, func(nd ast.Node) {
			ret, ok := nd.(*ast.ReturnStmt)
			if !ok || s.ReturnsView {
				return
			}
			for _, res := range ret.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				if _, cs := f.calleeSummary(n.Pkg, call); cs != nil && cs.ReturnsView {
					s.ReturnsView = true
					s.ViewSource = cs.ViewSource
					changed = true
					return
				}
			}
		})
	}
	return changed
}

// collectDirectives parses //chordalvet:hotpath and //chordalvet:coldpath
// directives from function doc comments and the line directly above the
// declaration.
func (f *Facts) collectDirectives() {
	for _, n := range f.Graph.Order {
		if n.Decl == nil {
			continue
		}
		for _, c := range funcDirectiveComments(n) {
			if rest, ok := directiveText(c, "chordalvet:hotpath"); ok {
				budget, ok := parseBudget(rest)
				if ok {
					f.hotRoots = append(f.hotRoots, &HotRoot{Node: n, Budget: budget, Pos: c.Pos()})
				} else {
					// A malformed hotpath directive still registers the
					// root with budget -1; hotalloc reports it.
					f.hotRoots = append(f.hotRoots, &HotRoot{Node: n, Budget: -1, Pos: c.Pos()})
				}
			}
			if _, ok := directiveText(c, "chordalvet:coldpath"); ok {
				f.coldpath[n] = true
			}
		}
	}
	sortHotRoots(f.Graph.Fset, f.hotRoots)
}

// funcDirectiveComments returns the comments attached to a declaration:
// its doc group, which Go associates with the comment block directly
// above the func keyword.
func funcDirectiveComments(n *FuncNode) []*ast.Comment {
	if n.Decl == nil || n.Decl.Doc == nil {
		return nil
	}
	return n.Decl.Doc.List
}

// directiveText matches a comment against a directive prefix and
// returns the remainder.
func directiveText(c *ast.Comment, prefix string) (string, bool) {
	text := c.Text
	if len(text) >= 2 && text[:2] == "//" {
		text = text[2:]
	}
	for len(text) > 0 && (text[0] == ' ' || text[0] == '\t') {
		text = text[1:]
	}
	if len(text) < len(prefix) || text[:len(prefix)] != prefix {
		return "", false
	}
	return text[len(prefix):], true
}

// parseBudget extracts N from " budget=N ..." directive text.
func parseBudget(rest string) (int, bool) {
	fields := splitFields(rest)
	for _, fd := range fields {
		if len(fd) > 7 && fd[:7] == "budget=" {
			n := 0
			for _, ch := range fd[7:] {
				if ch < '0' || ch > '9' {
					return 0, false
				}
				n = n*10 + int(ch-'0')
			}
			return n, true
		}
	}
	return 0, false
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' || s[i] == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

func sortHotRoots(fset *token.FileSet, roots []*HotRoot) {
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0; j-- {
			a, b := fset.Position(roots[j-1].Pos), fset.Position(roots[j].Pos)
			if a.Filename < b.Filename || (a.Filename == b.Filename && a.Offset <= b.Offset) {
				break
			}
			roots[j-1], roots[j] = roots[j], roots[j-1]
		}
	}
}
