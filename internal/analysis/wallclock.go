package analysis

import (
	"go/ast"
)

// WallClock flags wall-clock reads inside the deterministic simulation
// core. In the LOCAL model the only notion of time is the round counter:
// the engine's schedules (pooled, per-node, sequential) are promised to
// be observationally identical, and any time.Now/time.Since in protocol
// or peeling code would let wall-clock jitter steer control flow and
// break that promise. Benchmarks live in _test.go files, which the
// loader does not feed to analyzers, so timing instrumentation remains
// free to exist where it belongs.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/time.Since in the deterministic simulation core (dist, core, peel)",
	Run:  runWallClock,
}

// wallClockGuardedPaths are the package path segments whose code must be
// wall-clock free.
var wallClockGuardedPaths = []string{
	"internal/dist",
	"internal/core",
	"internal/peel",
}

func runWallClock(pass *Pass) {
	guarded := false
	for _, seg := range wallClockGuardedPaths {
		if pathHasSegments(pass.PkgPath, seg) {
			guarded = true
			break
		}
	}
	if !guarded {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass, call, "time", "Now", "Since", "Until") {
				fn := calleeFunc(pass, call)
				pass.Reportf(call.Pos(), "calls time.%s in %s; the simulation core is deterministic and measures time in rounds — keep wall-clock instrumentation in benchmarks", fn.Name(), pass.PkgPath)
			}
			return true
		})
	}
}
