package analysis

import (
	"go/ast"
)

// WallClock flags wall-clock reads inside the deterministic simulation
// core. In the LOCAL model the only notion of time is the round counter:
// the engine's schedules (pooled, per-node, sequential) are promised to
// be observationally identical, and any time.Now/time.Since in protocol
// or peeling code would let wall-clock jitter steer control flow and
// break that promise. The guard covers the whole internal/ tree with one
// sanctioned exception: internal/obs, the observability layer, exists
// precisely to stamp engine callbacks with wall times so that no other
// package ever needs the clock. Benchmarks live in _test.go files, which
// the loader does not feed to analyzers, so timing instrumentation
// remains free to exist where it belongs.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/time.Since under internal/ outside internal/obs, the one sanctioned clock user",
	Run:  runWallClock,
}

// wallClockExemptPaths are the package path segments excused from the
// internal/-wide wall-clock ban. Only the observability layer qualifies:
// it is the single place where rounds meet wall time, and it feeds
// timings to traces, never back into algorithm control flow.
var wallClockExemptPaths = []string{
	"internal/obs",
}

func runWallClock(pass *Pass) {
	if !pathHasSegments(pass.PkgPath, "internal") {
		return
	}
	for _, seg := range wallClockExemptPaths {
		if pathHasSegments(pass.PkgPath, seg) {
			return
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pass, call, "time", "Now", "Since", "Until") {
				fn := calleeFunc(pass, call)
				pass.Reportf(call.Pos(), "calls time.%s in %s; the simulation core is deterministic and measures time in rounds — route wall-clock instrumentation through internal/obs", fn.Name(), pass.PkgPath)
			}
			return true
		})
	}
}
