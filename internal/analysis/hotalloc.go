package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// HotAlloc enforces per-root allocation budgets on the repo's hot
// paths. A function annotated
//
//	//chordalvet:hotpath budget=N <justification>
//
// is a root; the hot region is every function reachable from it over
// static, function-value, and goroutine-spawn edges (interface dispatch
// is excluded — dynamic callees get their own roots), pruned at
// functions annotated //chordalvet:coldpath <justification>. The
// analyzer counts the region's statically visible allocation sites —
// make, new, &composite, map/slice literals, appends without prealloc
// evidence, capturing closures, interface boxing — and fails when the
// count exceeds the committed budget. The budgets in this repo are set
// to the exact shipped-tree counts, so introducing a single new
// allocation site inside the decide kernel, the peel workers, the
// engine round loop, or the view rebuild fails `make lint` before it
// ever shows up as a B/op regression in BENCH_N.json.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "allocation sites reachable from //chordalvet:hotpath roots exceed the committed budget",
	RunModule: runHotAlloc,
}

func runHotAlloc(mp *ModulePass) {
	for _, report := range HotPathReports(mp.Facts) {
		root := report.Root
		if root.Budget < 0 {
			mp.Reportf(root.Pos, "malformed hotpath directive on %s: want //chordalvet:hotpath budget=N", root.Node.Name())
			continue
		}
		if report.Sites <= root.Budget {
			continue
		}
		mp.Reportf(root.Pos, "hot path %s has %d reachable allocation sites, over its budget of %d — per function: %s (raise the budget only with a benchmark justification; prefer scratch reuse or prealloc)",
			root.Node.Name(), report.Sites, root.Budget, report.Breakdown())
	}
}

// HotPathReport is one root's budget accounting, exported so
// cmd/chordalvet -budgets can print the usage table.
type HotPathReport struct {
	Root  *HotRoot
	Sites int
	// PerFunc lists the region functions that contribute sites, sorted
	// by descending count then name.
	PerFunc []FuncSites
	// Region is the region size in functions (after coldpath pruning).
	Region int
}

// FuncSites is one function's share of a hot region's allocation sites.
type FuncSites struct {
	Name  string
	Sites int
	Kinds string // comma-separated kind=count pairs, sorted by kind
}

// Breakdown renders the per-function site counts for diagnostics,
// capped at the eight largest contributors.
func (r *HotPathReport) Breakdown() string {
	var parts []string
	for i, fs := range r.PerFunc {
		if i == 8 {
			parts = append(parts, "…")
			break
		}
		parts = append(parts, fmt.Sprintf("%s=%d", fs.Name, fs.Sites))
	}
	if len(parts) == 0 {
		return "(no sites)"
	}
	return strings.Join(parts, ", ")
}

// HotPathReports computes the budget accounting for every hotpath root
// in the module, in root position order.
func HotPathReports(facts *Facts) []*HotPathReport {
	var out []*HotPathReport
	for _, root := range facts.HotRoots() {
		region := facts.Graph.Reachable(root.Node, HotEdges, facts.IsColdPath)
		sortNodesByPos(facts.Graph.Fset, region)
		report := &HotPathReport{Root: root, Region: len(region)}
		for _, n := range region {
			s := facts.SummaryOf(n)
			if len(s.Allocs) == 0 {
				continue
			}
			report.Sites += len(s.Allocs)
			kinds := make(map[string]int)
			for _, a := range s.Allocs {
				kinds[a.Kind]++
			}
			kindNames := make([]string, 0, len(kinds))
			for k := range kinds {
				kindNames = append(kindNames, k)
			}
			sort.Strings(kindNames)
			var kp []string
			for _, k := range kindNames {
				kp = append(kp, fmt.Sprintf("%s=%d", k, kinds[k]))
			}
			report.PerFunc = append(report.PerFunc, FuncSites{
				Name:  n.Name(),
				Sites: len(s.Allocs),
				Kinds: strings.Join(kp, ","),
			})
		}
		sort.SliceStable(report.PerFunc, func(i, j int) bool {
			a, b := report.PerFunc[i], report.PerFunc[j]
			if a.Sites != b.Sites {
				return a.Sites > b.Sites
			}
			return a.Name < b.Name
		})
		out = append(out, report)
	}
	return out
}
