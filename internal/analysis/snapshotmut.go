package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotMut flags in-place mutation of the shared slices handed out by
// the graph substrate's snapshot accessors. graph.Indexed is an immutable
// CSR snapshot shared by every worker in the pooled round engine, and
// graph.Graph.Neighbors returns a cached slice shared between callers;
// writing into either corrupts other readers (a data race under the
// pool) and silently desynchronizes the three execution schedules that
// the determinism cross-checks promise are bit-identical.
//
// Since the substrate rework the check is interprocedural, in both
// directions through the call graph:
//
//   - sources: a call to any module function whose summary says it
//     returns a shared view (a wrapper around an accessor, resolved
//     transitively) taints its result exactly like a direct accessor
//     call;
//   - sinks: passing a tainted view to a module function whose summary
//     says it mutates that parameter (element writes, in-place sorts,
//     appends, deletes — anywhere down its own call chain) is reported
//     at the call site, including method receivers.
//
// The intra-function checks (direct writes, sorts, appends, copies)
// remain as the base case.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc:  "in-place mutation of shared graph snapshot slices (Indexed views, cached Neighbors)",
	Run:  runSnapshotMut,
}

// sharedViewAccessors lists the methods whose results are shared
// read-only views, keyed by package name, type name, and method.
// Matching on names keeps the analyzer applicable to the testdata stubs.
var sharedViewAccessors = map[[3]string]bool{
	{"graph", "Graph", "Neighbors"}:         true,
	{"graph", "Indexed", "IDs"}:             true,
	{"graph", "Indexed", "NeighborIDs"}:     true,
	{"graph", "Indexed", "NeighborIndices"}: true,
	{"dist", "Context", "Neighbors"}:        true,
	// The decide kernel's CSR ball views: an iteration-shared Ball is
	// read concurrently by every decide worker, and even a
	// worker-private Ball hands out aliases into storage the next
	// rebuild reuses.
	{"view", "Ball", "Nodes"}: true,
	{"view", "Ball", "Row"}:   true,
}

func runSnapshotMut(pass *Pass) {
	forEachFunc(pass, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		tainted := collectViewTaints(pass, body)
		viewExpr := func(e ast.Expr) (string, bool) {
			return taintedViewExpr(pass, tainted, e)
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if src, ok := viewExpr(ix.X); ok {
							pass.Reportf(v.Pos(), "writes into the shared snapshot view from %s; these slices are read-only — copy before modifying", src)
						}
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := ast.Unparen(v.X).(*ast.IndexExpr); ok {
					if src, ok := viewExpr(ix.X); ok {
						pass.Reportf(v.Pos(), "writes into the shared snapshot view from %s; these slices are read-only — copy before modifying", src)
					}
				}
			case *ast.CallExpr:
				reportMutatingCallee(pass, viewExpr, v)
				if len(v.Args) == 0 {
					return true
				}
				if isInPlaceSort(pass, v) {
					if src, ok := viewExpr(v.Args[0]); ok {
						pass.Reportf(v.Pos(), "sorts the shared snapshot view from %s in place; these slices are read-only — copy before sorting", src)
					}
				}
				if isAppendCall(pass, v) {
					if src, ok := viewExpr(v.Args[0]); ok {
						pass.Reportf(v.Pos(), "appends onto the shared snapshot view from %s; spare capacity would be written in place — build a fresh slice instead", src)
					}
				}
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "copy" {
					if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
						if src, ok := viewExpr(v.Args[0]); ok {
							pass.Reportf(v.Pos(), "copies into the shared snapshot view from %s; these slices are read-only — allocate a destination instead", src)
						}
					}
				}
			}
			return true
		})
	})
}

// reportMutatingCallee is the interprocedural sink check: a tainted view
// handed (as argument or receiver) to a module function whose summary
// mutates that parameter.
func reportMutatingCallee(pass *Pass, viewExpr func(ast.Expr) (string, bool), call *ast.CallExpr) {
	if pass.Facts == nil || pass.Package == nil {
		return
	}
	callee, cs := pass.Facts.calleeSummary(pass.Package, call)
	if cs == nil {
		return
	}
	for pos, arg := range callArgExprs(pass.Package, call) {
		if arg == nil {
			continue
		}
		j := argParamIndex(callee, pos)
		if j < 0 || j >= len(cs.MutatesParam) || !cs.MutatesParam[j] {
			continue
		}
		if src, ok := viewExpr(arg); ok {
			pass.Reportf(call.Pos(), "passes the shared snapshot view from %s to %s, which mutates that parameter; copy before the call", src, callee.Name())
		}
	}
}

// collectViewTaints returns the local variables bound (possibly through
// re-slicing or further assignment) to a shared-view accessor result,
// mapped to a description of the originating accessor.
func collectViewTaints(pass *Pass, body *ast.BlockStmt) map[types.Object]string {
	tainted := make(map[types.Object]string)
	// Iterate to a fixpoint so chains like a := view(); b := a[1:] are
	// caught regardless of nesting.
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				src, isView := taintedViewExpr(pass, tainted, as.Rhs[i])
				if !isView {
					continue
				}
				obj := identObj(pass, as.Lhs[i])
				if obj == nil {
					continue
				}
				if _, seen := tainted[obj]; !seen {
					tainted[obj] = src
					changed = true
				}
			}
			return true
		})
		if !changed {
			return tainted
		}
	}
}

// taintedViewExpr reports whether e denotes a shared view: a direct
// accessor call, a call to a module function summarized as returning a
// view, a tainted variable, or a re-slice of any of those. The string
// names the originating accessor for diagnostics.
func taintedViewExpr(pass *Pass, tainted map[types.Object]string, e ast.Expr) (string, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		pkgName, typeName, method := recvTypeName(pass, v)
		if sharedViewAccessors[[3]string{pkgName, typeName, method}] {
			return pkgName + "." + typeName + "." + method, true
		}
		if pass.Facts != nil && pass.Package != nil {
			if _, cs := pass.Facts.calleeSummary(pass.Package, v); cs != nil && cs.ReturnsView {
				return cs.ViewSource, true
			}
		}
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(v); obj != nil {
			if src, ok := tainted[obj]; ok {
				return src, true
			}
		}
	case *ast.SliceExpr:
		return taintedViewExpr(pass, tainted, v.X)
	}
	return "", false
}
