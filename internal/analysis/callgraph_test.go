package analysis

import (
	"path/filepath"
	"testing"
)

// loadFacts builds the interprocedural facts over a fixture module.
func loadFacts(t *testing.T, fixture string) *Facts {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", fixture)
	}
	return BuildFacts(pkgs)
}

// nodeByName finds a declared function node by its display name.
func nodeByName(t *testing.T, cg *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range cg.Order {
		if n.Decl != nil && n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s in call graph", name)
	return nil
}

func edgeNames(nodes []*FuncNode) map[string]bool {
	out := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		out[n.Name()] = true
	}
	return out
}

func TestCallGraphStaticAndDynamic(t *testing.T) {
	facts := loadFacts(t, "callgraph")
	cg := facts.Graph

	// Interface dispatch resolves to every in-module implementation.
	dispatch := nodeByName(t, cg, "Dispatch")
	dyn := edgeNames(dispatch.Dynamic)
	if !dyn["Doubler.Apply"] || !dyn["Negator.Apply"] {
		t.Errorf("Dispatch dynamic targets = %v, want Doubler.Apply and Negator.Apply", dyn)
	}
	if len(dispatch.Static) != 0 {
		t.Errorf("Dispatch static targets = %v, want none", edgeNames(dispatch.Static))
	}

	// HotEdges excludes dynamic dispatch.
	for _, e := range HotEdges(dispatch) {
		t.Errorf("HotEdges(Dispatch) includes %s; interface dispatch must be excluded", e.Name())
	}
}

func TestCallGraphFunctionValues(t *testing.T) {
	facts := loadFacts(t, "callgraph")
	cg := facts.Graph

	// The field call resolves to everything that flowed into the field:
	// leaf via the keyed literal in Wire, and the literal stored in
	// WireAssign.
	callField := nodeByName(t, cg, "Runner.CallField")
	static := edgeNames(callField.Static)
	if !static["leaf"] {
		t.Errorf("Runner.CallField static targets = %v, want leaf (keyed literal flow)", static)
	}
	litSeen := false
	for _, n := range callField.Static {
		if n.Lit != nil {
			litSeen = true
		}
	}
	if !litSeen {
		t.Errorf("Runner.CallField static targets = %v, want the WireAssign literal too", static)
	}

	// The callback parameter call resolves to both values passed at
	// UseApply's call sites: the method value and the named function.
	applyTwice := nodeByName(t, cg, "ApplyTwice")
	static = edgeNames(applyTwice.Static)
	if !static["Doubler.Apply"] || !static["leaf"] {
		t.Errorf("ApplyTwice static targets = %v, want Doubler.Apply and leaf", static)
	}
}

func TestCallGraphSpawnEdges(t *testing.T) {
	facts := loadFacts(t, "callgraph")
	cg := facts.Graph

	spawn := nodeByName(t, cg, "Spawn")
	if len(spawn.Spawned) != 1 || spawn.Spawned[0].Lit == nil {
		t.Fatalf("Spawn spawned targets = %v, want exactly the worker literal", edgeNames(spawn.Spawned))
	}
	// The spawned literal statically calls leaf, so leaf is reachable
	// from Spawn over hot edges.
	reach := edgeNames(cg.Reachable(spawn, HotEdges, nil))
	if !reach["leaf"] {
		t.Errorf("Reachable(Spawn, HotEdges) = %v, want to include leaf through the spawned literal", reach)
	}
}

func TestReachableSkipsColdNodes(t *testing.T) {
	facts := loadFacts(t, "callgraph")
	cg := facts.Graph

	spawn := nodeByName(t, cg, "Spawn")
	skipLits := func(n *FuncNode) bool { return n.Lit != nil }
	reach := edgeNames(cg.Reachable(spawn, HotEdges, skipLits))
	if reach["leaf"] {
		t.Errorf("Reachable with literal pruning still includes leaf: %v", reach)
	}
}
