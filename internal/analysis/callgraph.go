package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural half of chordalvet: a module-wide
// call graph built from the same go/types information the per-file
// analyzers already use. The determinism and allocation invariants the
// repo guards stopped being per-function properties when PRs 5–6 moved
// the decide, peel, flood-assembly, correction, and MIS stages onto
// sharded CSR kernels — a snapshot mutation or a fresh map allocation
// three calls below a worker loop erodes exactly the same guarantees as
// one written inline. The graph resolves three kinds of call:
//
//   - static calls: plain function and concrete-method calls, resolved
//     through types.Info to their *types.Func;
//   - dynamic calls: interface-method calls, resolved through method
//     sets to every in-module named type implementing the interface
//     (class-hierarchy style, an over-approximation);
//   - function values: flow-insensitive tracking of function literals
//     and named functions through assignments, composite-literal
//     fields, and call arguments into the variables, fields, and
//     parameters they are stored in; a call through such an object
//     resolves to everything recorded as flowing into it.
//
// Known soundness gaps (documented in DESIGN.md): function values
// returned from functions, stored in slices/maps/channels, or passed
// through untracked interfaces are not followed, and reflection is
// invisible. The gaps are deliberate — every hot path in this repo
// wires its workers through direct assignments and call arguments,
// which the flow tracking covers exactly.

// FuncNode is one function in the module call graph: a declared
// function or method, or a function literal.
type FuncNode struct {
	// Obj is the declared function's object; nil for literals.
	Obj *types.Func
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Pkg is the package the function's body lives in.
	Pkg *Package
	// Body is the function body (never nil for graph nodes).
	Body *ast.BlockStmt

	// Static holds resolved static-call, function-value-call, and
	// deferred-call targets in first-occurrence order.
	Static []*FuncNode
	// Dynamic holds interface-dispatch candidate targets.
	Dynamic []*FuncNode
	// Spawned holds targets launched with a go statement in this body.
	Spawned []*FuncNode

	summary *Summary
}

// Name returns a stable human-readable name: the package-qualified
// function or method name, or file:line for a literal.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		recv := n.Obj.Type().(*types.Signature).Recv()
		if recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + n.Obj.Name()
			}
		}
		return n.Obj.Name()
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return fmt.Sprintf("func@%s:%d", shortFile(pos.Filename), pos.Line)
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// ParamObjs returns the node's parameter objects in receiver-first
// order: for methods, index 0 is the receiver and declared parameters
// follow; unnamed parameters contribute nil entries so indices stay
// aligned with the signature.
func (n *FuncNode) ParamObjs() []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				out = append(out, n.Pkg.Info.ObjectOf(name))
			}
		}
	}
	if n.Decl != nil {
		collect(n.Decl.Recv)
		collect(n.Decl.Type.Params)
	} else {
		collect(n.Lit.Type.Params)
	}
	return out
}

// CallGraph is the module-wide call graph plus the function-value flow
// table it was built from.
type CallGraph struct {
	Fset *token.FileSet
	// Funcs indexes declared functions and methods.
	Funcs map[*types.Func]*FuncNode
	// Lits indexes function literals.
	Lits map[*ast.FuncLit]*FuncNode
	// Order lists every node in deterministic (position) order.
	Order []*FuncNode
	// flows records which function nodes flow into each variable,
	// field, or parameter object.
	flows map[types.Object][]*FuncNode
}

// NodeOf returns the graph node of a declared function, or nil when the
// function has no body in the module (external, interface method).
func (cg *CallGraph) NodeOf(fn *types.Func) *FuncNode { return cg.Funcs[fn] }

// LitNode returns the graph node of a function literal.
func (cg *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return cg.Lits[lit] }

// FlowsInto returns every function node recorded as flowing into obj (a
// variable, struct field, or parameter), in first-occurrence order.
func (cg *CallGraph) FlowsInto(obj types.Object) []*FuncNode { return cg.flows[obj] }

// BuildCallGraph constructs the module call graph over the loaded
// packages. The packages must share one *token.FileSet (LoadModule
// guarantees this).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		Funcs: make(map[*types.Func]*FuncNode),
		Lits:  make(map[*ast.FuncLit]*FuncNode),
		flows: make(map[types.Object][]*FuncNode),
	}
	if len(pkgs) > 0 {
		cg.Fset = pkgs[0].Fset
	}
	// Phase 1: one node per function body, in file order (deterministic:
	// LoadModule visits packages in topological order over sorted paths
	// and files in directory order).
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Body == nil {
						return true
					}
					fn, _ := pkg.Info.ObjectOf(v.Name).(*types.Func)
					if fn == nil {
						return true
					}
					node := &FuncNode{Obj: fn, Decl: v, Pkg: pkg, Body: v.Body}
					cg.Funcs[fn] = node
					cg.Order = append(cg.Order, node)
				case *ast.FuncLit:
					node := &FuncNode{Lit: v, Pkg: pkg, Body: v.Body}
					cg.Lits[v] = node
					cg.Order = append(cg.Order, node)
				}
				return true
			})
		}
	}
	// Phase 2: function-value flows into objects.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			cg.collectFlows(pkg, file)
		}
	}
	// Phase 3: edges.
	interfaceImpls := collectInterfaceImpls(pkgs, cg)
	for _, node := range cg.Order {
		cg.buildEdges(node, interfaceImpls)
	}
	return cg
}

// funcValueNodes resolves an expression used as a value to the function
// nodes it may denote: a function literal, a named function or method
// (including method values), or nothing for non-function expressions.
func (cg *CallGraph) funcValueNodes(pkg *Package, e ast.Expr) []*FuncNode {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := cg.Lits[v]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.ObjectOf(v).(*types.Func); ok {
			if n := cg.Funcs[fn]; n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.ObjectOf(v.Sel).(*types.Func); ok {
			if n := cg.Funcs[fn]; n != nil {
				return []*FuncNode{n}
			}
		}
	}
	return nil
}

// recordFlow appends nodes to obj's flow set, deduplicating.
func (cg *CallGraph) recordFlow(obj types.Object, nodes []*FuncNode) {
	if obj == nil || len(nodes) == 0 {
		return
	}
	have := cg.flows[obj]
	for _, n := range nodes {
		dup := false
		for _, h := range have {
			if h == n {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, n)
		}
	}
	cg.flows[obj] = have
}

// collectFlows scans one file for function values stored into objects:
// assignments, var specs, keyed and positional struct literals, and
// call arguments binding to in-module parameter objects.
func (cg *CallGraph) collectFlows(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i := range v.Lhs {
				nodes := cg.funcValueNodes(pkg, v.Rhs[i])
				if len(nodes) == 0 {
					continue
				}
				switch lhs := ast.Unparen(v.Lhs[i]).(type) {
				case *ast.Ident:
					cg.recordFlow(pkg.Info.ObjectOf(lhs), nodes)
				case *ast.SelectorExpr:
					cg.recordFlow(pkg.Info.ObjectOf(lhs.Sel), nodes)
				}
			}
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if i < len(v.Values) {
					cg.recordFlow(pkg.Info.ObjectOf(name), cg.funcValueNodes(pkg, v.Values[i]))
				}
			}
		case *ast.CompositeLit:
			cg.collectLitFlows(pkg, v)
		case *ast.CallExpr:
			cg.collectArgFlows(pkg, v)
		}
		return true
	})
}

// collectLitFlows binds function values in struct composite literals to
// their field objects, for both keyed and positional forms.
func (cg *CallGraph) collectLitFlows(pkg *Package, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				cg.recordFlow(pkg.Info.ObjectOf(key), cg.funcValueNodes(pkg, kv.Value))
			}
			continue
		}
		if i < st.NumFields() {
			cg.recordFlow(st.Field(i), cg.funcValueNodes(pkg, el))
		}
	}
}

// collectArgFlows binds function-valued call arguments to the callee's
// parameter objects when the callee is an in-module declared function
// (signature parameter objects are the declared *types.Var objects, so
// they key the same flow table as local assignments).
func (cg *CallGraph) collectArgFlows(pkg *Package, call *ast.CallExpr) {
	fn := callTargetFunc(pkg, call)
	if fn == nil || cg.Funcs[fn] == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i, arg := range call.Args {
		nodes := cg.funcValueNodes(pkg, arg)
		if len(nodes) == 0 {
			continue
		}
		j := i
		if sig.Variadic() && j >= params.Len()-1 {
			j = params.Len() - 1
		}
		if j < params.Len() {
			cg.recordFlow(params.At(j), nodes)
		}
	}
}

// callTargetFunc resolves a call expression to its static *types.Func
// callee: a plain function, a concrete method, or an interface method
// (the caller distinguishes via the receiver type). Indirect calls and
// builtins return nil.
func callTargetFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.ObjectOf(id).(*types.Func)
	return fn
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

// implKey identifies one interface method for dispatch resolution.
type implKey struct {
	iface *types.Interface
	name  string
}

// collectInterfaceImpls maps every interface method appearing as a call
// target to the in-module concrete methods that may satisfy it. Named
// types are gathered in deterministic order (packages are already
// ordered; scope names are sorted).
func collectInterfaceImpls(pkgs []*Package, cg *CallGraph) map[implKey][]*FuncNode {
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted by go/types
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if n, ok := tn.Type().(*types.Named); ok && !types.IsInterface(n) {
					named = append(named, n)
				}
			}
		}
	}
	impls := make(map[implKey][]*FuncNode)
	resolve := func(iface *types.Interface, name string) []*FuncNode {
		key := implKey{iface, name}
		if cached, ok := impls[key]; ok {
			return cached
		}
		var out []*FuncNode
		for _, n := range named {
			ptr := types.NewPointer(n)
			if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, n.Obj().Pkg(), name)
			if m, ok := obj.(*types.Func); ok {
				if node := cg.Funcs[m]; node != nil {
					out = append(out, node)
				}
			}
		}
		impls[key] = out
		return out
	}
	// Pre-resolve every interface-method call site so buildEdges only
	// does map lookups.
	for _, node := range cg.Order {
		pkg := node.Pkg
		inspectOwn(node.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := callTargetFunc(pkg, call)
			if fn == nil || !isInterfaceMethod(fn) {
				return
			}
			if iface, ok := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface); ok {
				resolve(iface, fn.Name())
			}
		})
	}
	return impls
}

// inspectOwn walks a function body without descending into nested
// function literals: a literal's statements belong to the literal's own
// graph node. The literal expression itself is still visited.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// buildEdges resolves every call in node's own body.
func (cg *CallGraph) buildEdges(node *FuncNode, impls map[implKey][]*FuncNode) {
	addUnique := func(dst *[]*FuncNode, targets ...*FuncNode) {
		for _, t := range targets {
			if t == nil {
				continue
			}
			dup := false
			for _, h := range *dst {
				if h == t {
					dup = true
					break
				}
			}
			if !dup {
				*dst = append(*dst, t)
			}
		}
	}
	resolveCall := func(call *ast.CallExpr, static, dynamic *[]*FuncNode) {
		fun := ast.Unparen(call.Fun)
		if lit, ok := fun.(*ast.FuncLit); ok {
			addUnique(static, cg.Lits[lit])
			return
		}
		fn := callTargetFunc(node.Pkg, call)
		if fn != nil {
			if isInterfaceMethod(fn) {
				if iface, ok := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface); ok {
					addUnique(dynamic, impls[implKey{iface, fn.Name()}]...)
				}
				return
			}
			addUnique(static, cg.Funcs[fn])
			return
		}
		// Indirect call: a variable, field, or parameter holding a
		// function value. Resolve through the flow table.
		var obj types.Object
		switch v := fun.(type) {
		case *ast.Ident:
			obj = node.Pkg.Info.ObjectOf(v)
		case *ast.SelectorExpr:
			obj = node.Pkg.Info.ObjectOf(v.Sel)
		}
		if obj != nil {
			addUnique(static, cg.flows[obj]...)
		}
	}
	inspectOwn(node.Body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.GoStmt:
			resolveCall(v.Call, &node.Spawned, &node.Spawned)
		case *ast.CallExpr:
			resolveCall(v, &node.Static, &node.Dynamic)
		}
	})
}

// Reachable returns the set of nodes reachable from root over the given
// edge selector, including root itself. skip prunes traversal: a node
// for which skip returns true is neither visited nor expanded.
func (cg *CallGraph) Reachable(root *FuncNode, edges func(*FuncNode) []*FuncNode, skip func(*FuncNode) bool) []*FuncNode {
	if root == nil || (skip != nil && skip(root)) {
		return nil
	}
	seen := map[*FuncNode]bool{root: true}
	out := []*FuncNode{root}
	for i := 0; i < len(out); i++ {
		for _, t := range edges(out[i]) {
			if seen[t] || (skip != nil && skip(t)) {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// HotEdges is the edge selector the hotalloc analyzer traverses: static
// calls, function-value calls, and spawned goroutines. Interface
// dispatch is deliberately excluded — dynamic callees are budgeted at
// their own roots (see DESIGN.md "Analysis substrate").
func HotEdges(n *FuncNode) []*FuncNode {
	if len(n.Spawned) == 0 {
		return n.Static
	}
	out := make([]*FuncNode, 0, len(n.Static)+len(n.Spawned))
	out = append(out, n.Static...)
	out = append(out, n.Spawned...)
	return out
}

// shortFile trims a path to its last two segments for display.
func shortFile(path string) string {
	segs := splitSlash(path)
	if len(segs) <= 2 {
		return path
	}
	return segs[len(segs)-2] + "/" + segs[len(segs)-1]
}

// sortNodesByPos orders nodes deterministically by source position.
func sortNodesByPos(fset *token.FileSet, nodes []*FuncNode) {
	sort.Slice(nodes, func(i, j int) bool {
		a, b := fset.Position(nodes[i].Pos()), fset.Position(nodes[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
}
