// Package analysis is chordalvet's engine: a from-scratch, stdlib-only
// static-analysis driver (go/parser + go/types, no external modules) plus
// the repo-specific analyzers that guard the determinism and concurrency
// invariants the paper's reproduction depends on. Konrad–Zamaraev's
// algorithms are deterministic LOCAL protocols whose analysis leans on
// canonical tie-breaking everywhere (σ-word orders on cliques, peeling
// order, message delivery order); a single unsorted map iteration feeding
// an output table, an unseeded random source, or a wall-clock read in the
// simulation core silently breaks bit-identical reproducibility. The
// analyzers encode those invariants so they are enforced at build time
// rather than discovered in a flaky cross-check benchmark.
//
// Diagnostics can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//chordalvet:ignore maporder frontier order does not affect the result
//
// The first fields that match analyzer names select which analyzers are
// silenced; the rest of the line is a free-form justification. A directive
// naming no analyzer silences all of them (use sparingly).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// chordalvet:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects a single package and reports diagnostics via the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path within the module.
	PkgPath string
	Info    *types.Info
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full chordalvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		SnapshotMut,
		NoGlobalRand,
		WallClock,
		FloatCmp,
		InboxEscape,
	}
}

// Run executes the given analyzers over the loaded packages, applies
// chordalvet:ignore directives, and returns the surviving diagnostics
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	diags = filterIgnored(pkgs, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is one parsed chordalvet:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // empty means "all analyzers"
}

const directivePrefix = "chordalvet:ignore"

// filterIgnored drops diagnostics covered by an ignore directive on the
// same line or the line directly above.
func filterIgnored(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	type key struct {
		file string
		line int
	}
	directives := make(map[key]ignoreDirective)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, directivePrefix)
					d := ignoreDirective{analyzers: make(map[string]bool)}
					for _, field := range strings.Fields(rest) {
						if known[field] {
							d.analyzers[field] = true
						} else {
							break // remaining fields are the justification
						}
					}
					pos := pkg.Fset.Position(c.Pos())
					d.file, d.line = pos.Filename, pos.Line
					directives[key{d.file, d.line}] = d
				}
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	out := diags[:0]
	for _, diag := range diags {
		suppressed := false
		for _, line := range []int{diag.Pos.Line, diag.Pos.Line - 1} {
			if d, ok := directives[key{diag.Pos.Filename, line}]; ok {
				if len(d.analyzers) == 0 || d.analyzers[diag.Analyzer] {
					suppressed = true
					break
				}
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}
