// Package analysis is chordalvet's engine: a from-scratch, stdlib-only
// static-analysis driver (go/parser + go/types, no external modules) plus
// the repo-specific analyzers that guard the determinism and concurrency
// invariants the paper's reproduction depends on. Konrad–Zamaraev's
// algorithms are deterministic LOCAL protocols whose analysis leans on
// canonical tie-breaking everywhere (σ-word orders on cliques, peeling
// order, message delivery order); a single unsorted map iteration feeding
// an output table, an unseeded random source, or a wall-clock read in the
// simulation core silently breaks bit-identical reproducibility. The
// analyzers encode those invariants so they are enforced at build time
// rather than discovered in a flaky cross-check benchmark.
//
// Diagnostics can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//chordalvet:ignore maporder frontier order does not affect the result
//
// The first fields that match analyzer names select which analyzers are
// silenced; the rest of the line is a free-form justification. A directive
// naming no analyzer silences all of them (use sparingly).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Per-package analyzers set Run and are
// invoked once per loaded package; module analyzers set RunModule and
// are invoked once over the whole module with the interprocedural facts
// (call graph + summaries). An analyzer sets exactly one of the two.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and in
	// chordalvet:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects a single package and reports diagnostics via the pass.
	Run func(*Pass)
	// RunModule inspects the whole module at once.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path within the module.
	PkgPath string
	// Package is the loaded package wrapper, for resolving callees
	// against the module-wide Facts.
	Package *Package
	Info    *types.Info
	// Facts is the module-wide interprocedural state (shared by every
	// pass of one Run).
	Facts *Facts
	diags *[]Diagnostic
}

// ModulePass carries one module analyzer's view of the whole module.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Facts    *Facts
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full chordalvet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		SnapshotMut,
		NoGlobalRand,
		WallClock,
		FloatCmp,
		InboxEscape,
		HotAlloc,
		SharedWrite,
		GoroLeak,
	}
}

// Run executes the given analyzers over the loaded packages, applies
// chordalvet:ignore directives, and returns the surviving diagnostics
// sorted by position. The interprocedural facts (call graph, summaries,
// hotpath directives) are built once and shared by every pass.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	if len(pkgs) == 0 {
		return nil
	}
	var diags []Diagnostic
	facts := BuildFacts(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Package:  pkg,
				Info:     pkg.Info,
				Facts:    facts,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     facts.Graph.Fset,
			Pkgs:     pkgs,
			Facts:    facts,
			diags:    &diags,
		}
		a.RunModule(mp)
	}
	diags = filterIgnored(pkgs, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is one parsed chordalvet:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // empty means "all analyzers"
}

const directivePrefix = "chordalvet:ignore"

// filterIgnored drops diagnostics covered by an ignore directive on the
// same line or the line directly above.
func filterIgnored(pkgs []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	type key struct {
		file string
		line int
	}
	directives := make(map[key]ignoreDirective)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, directivePrefix)
					d := ignoreDirective{analyzers: make(map[string]bool)}
					for _, field := range strings.Fields(rest) {
						if known[field] {
							d.analyzers[field] = true
						} else {
							break // remaining fields are the justification
						}
					}
					pos := pkg.Fset.Position(c.Pos())
					d.file, d.line = pos.Filename, pos.Line
					directives[key{d.file, d.line}] = d
				}
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	out := diags[:0]
	for _, diag := range diags {
		suppressed := false
		for _, line := range []int{diag.Pos.Line, diag.Pos.Line - 1} {
			if d, ok := directives[key{diag.Pos.Filename, line}]; ok {
				if len(d.analyzers) == 0 || d.analyzers[diag.Analyzer] {
					suppressed = true
					break
				}
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}
