package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags iteration over a Go map that accumulates into a slice,
// writes output, or sends messages, with no intervening sort. Go
// randomizes map iteration order on purpose, so any of these leaks
// scheduler entropy straight into results the paper requires to be
// canonical: clique-forest edge lists, peeling layers, experiment tables.
// Appending to a slice is tolerated when the same slice is sorted later
// in the function (the repo's standard collect-then-sort idiom); emitting
// output or messages from inside the loop can never be repaired after
// the fact and is always flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding slices, output, or messages without a canonicalizing sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	forEachFunc(pass, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		sorts := collectSortEvents(pass, body)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // visited separately by forEachFunc
			}
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			checkMapRangeBody(pass, rs, sorts)
			return true
		})
	})
}

// sortEvent is one in-place sort observed in a function body, keyed by
// the sorted variable (or receiver/field pair) and its position.
type sortEvent struct {
	key sortKey
	pos token.Pos
}

// sortKey identifies a sortable target: a plain variable, or a field
// selected from a variable ("t.Rows").
type sortKey struct {
	obj   types.Object
	field string
}

func sortTargetKey(pass *Pass, e ast.Expr) (sortKey, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.ObjectOf(v); obj != nil {
			return sortKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		if base := identObj(pass, v.X); base != nil {
			return sortKey{obj: base, field: v.Sel.Name}, true
		}
	}
	return sortKey{}, false
}

// collectSortEvents gathers every canonicalizing use in the body: an
// in-place sort of a slice, or the slice being fed to graph.NewSet,
// which sorts and deduplicates its arguments (the repo's standard way of
// canonicalizing a set accumulated in arbitrary order).
func collectSortEvents(pass *Pass, body *ast.BlockStmt) []sortEvent {
	var events []sortEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isInPlaceSort(pass, call) && !isNewSetCall(pass, call) {
			return true
		}
		if key, ok := sortTargetKey(pass, call.Args[0]); ok {
			events = append(events, sortEvent{key: key, pos: call.Pos()})
		}
		return true
	})
	return events
}

// isNewSetCall reports whether call builds a canonical sorted set via
// the graph package's NewSet constructor.
func isNewSetCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == "NewSet" &&
		fn.Pkg() != nil && fn.Pkg().Name() == "graph" &&
		fn.Type().(*types.Signature).Recv() == nil
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody walks one map-range body looking for order-sensitive
// effects. Nested map ranges are skipped here: they are analyzed as
// roots of their own walk, so each violation reports once.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorts []sortEvent) {
	sortedLater := func(key sortKey) bool {
		for _, ev := range sorts {
			if ev.key == key && ev.pos >= rs.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if isMapRange(pass, v) {
				return false
			}
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, rs, v, sortedLater)
		case *ast.CallExpr:
			if isPkgCall(pass, v, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln") {
				pass.Reportf(v.Pos(), "writes output inside a range over a map; iteration order is randomized — iterate a sorted key slice instead")
				return true
			}
			pkgName, typeName, method := recvTypeName(pass, v)
			switch method {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				pass.Reportf(v.Pos(), "writes to %s.%s inside a range over a map; iteration order is randomized — iterate a sorted key slice instead", pkgName, typeName)
			case "Send", "Broadcast":
				if typeName == "Context" {
					pass.Reportf(v.Pos(), "sends protocol messages inside a range over a map; the LOCAL engine's canonical delivery order cannot repair a nondeterministic send set — iterate sorted IDs instead")
				}
			}
		}
		return true
	})
}

// checkMapRangeAppend flags `x = append(x, ...)` inside a map range when
// x outlives the loop and is never sorted afterwards.
func checkMapRangeAppend(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, sortedLater func(sortKey) bool) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isAppendCall(pass, call) || len(call.Args) == 0 || i >= len(as.Lhs) {
			continue
		}
		dstKey, ok := sortTargetKey(pass, as.Lhs[i])
		if !ok {
			continue // append into a map element or similar: commutative
		}
		srcKey, ok := sortTargetKey(pass, call.Args[0])
		if !ok || srcKey != dstKey {
			continue // not a self-append accumulator
		}
		// Accumulators declared inside the loop body restart every
		// iteration and carry no cross-iteration order.
		if dstKey.field == "" && dstKey.obj.Pos() >= rs.Body.Pos() && dstKey.obj.Pos() < rs.Body.End() {
			continue
		}
		if sortedLater(dstKey) {
			continue
		}
		name := dstKey.obj.Name()
		if dstKey.field != "" {
			name += "." + dstKey.field
		}
		pass.Reportf(as.Pos(), "appends to %s while ranging over a map and never sorts it; iteration order is randomized — sort %s afterwards or iterate a sorted key slice", name, name)
	}
}
