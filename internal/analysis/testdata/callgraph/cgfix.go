// Package cgfix exercises the call-graph builder: static calls, method
// values, interface dispatch, and function-valued struct fields.
package cgfix

type Rule interface {
	Apply(x int) int
}

type Doubler struct{}

func (Doubler) Apply(x int) int { return x * 2 }

type Negator struct{ bias int }

func (n *Negator) Apply(x int) int { return -x + n.bias }

// Dispatch calls through the interface: both implementations are
// dynamic candidates.
func Dispatch(r Rule, x int) int {
	return r.Apply(x)
}

func leaf(x int) int { return x + 1 }

// Runner stores a function value in a struct field.
type Runner struct {
	fn func(int) int
}

// CallField invokes the function-valued field: resolves to whatever
// flowed into it.
func (r *Runner) CallField(x int) int {
	return r.fn(x)
}

// Wire stores leaf into the field via a keyed composite literal.
func Wire() *Runner {
	return &Runner{fn: leaf}
}

// WireAssign stores a literal into the field via assignment.
func WireAssign(r *Runner) {
	r.fn = func(x int) int { return x - 1 }
}

// ApplyTwice binds the callback parameter and calls it.
func ApplyTwice(f func(int) int, x int) int {
	return f(f(x))
}

// UseApply passes a method value and a named function as callbacks.
func UseApply(x int) int {
	d := Doubler{}
	a := ApplyTwice(d.Apply, x)
	b := ApplyTwice(leaf, x)
	return a + b
}

// Spawn launches a worker literal.
func Spawn(done chan struct{}) {
	go func() {
		leaf(1)
		close(done)
	}()
	<-done
}

// The functions below exercise the per-function summaries.

// mutateElem writes through its parameter: caller-visible.
func mutateElem(s []int) { s[0] = 1 }

// forwardMutate hands its parameter to a mutator: the mutation fact
// propagates through the call.
func forwardMutate(s []int) { mutateElem(s) }

// rebindOnly rebinds its local copy of the parameter: invisible to the
// caller.
func rebindOnly(s []int) { s = nil; _ = s }

// mutateAlias mutates through a local alias of the parameter.
func mutateAlias(s []int) {
	t := s[1:]
	t[0] = 2
}

// runCallback invokes its callback on a goroutine it spawns.
func runCallback(f func()) {
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	<-done
}

// forwardCallback forwards its callback to the runner: the
// runs-in-goroutine fact propagates.
func forwardCallback(f func()) { runCallback(f) }

// allocKinds holds one allocation site of each classified kind.
func allocKinds(n int) int {
	m := make(map[int]int)
	s := make([]int, n)
	p := new(int)
	c := &Negator{bias: 1}
	lit := []int{1, 2}
	var grown []int
	grown = append(grown, lit...)
	fn := func() int { return *p + c.bias }
	return len(m) + len(s) + fn() + len(grown)
}

// preallocAppend reuses a capacity-made buffer: the appends carry
// prealloc evidence and are not allocation sites.
func preallocAppend(n int) []int {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}
