// Package hotfix seeds hot paths with committed allocation budgets:
// roots within budget stay silent, over-budget regions and malformed
// directives are reported, and coldpath annotations prune fallbacks.
package hotfix

import "sync"

// okRoot stays within budget: the 3-arg make is the region's only
// counted site — the appends into it carry prealloc evidence.
//
//chordalvet:hotpath budget=1 scratch-reuse kernel stand-in
func okRoot(n int) []int {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

//chordalvet:hotpath budget=1 over budget through a static callee // want `hot path overRoot has 3 reachable allocation sites, over its budget of 1`
func overRoot(n int) map[int][]int {
	m := make(map[int][]int)
	fill(m, n)
	return m
}

// fill contributes two sites to every hot region that reaches it: the
// slice literal and the growing append.
func fill(m map[int][]int, n int) {
	seed := []int{1, 2, 3}
	var out []int
	out = append(out, seed...)
	m[n] = out
}

// prunedRoot calls an annotated cold fallback; its allocation sites do
// not count against the budget.
//
//chordalvet:hotpath budget=1 cold helper pruned from the region
func prunedRoot(n int) []int {
	buf := make([]int, 0, n)
	return coldBuild(buf)
}

// coldBuild is the materializing fallback: allowed to allocate.
//
//chordalvet:coldpath rare fallback materialization, amortized away
func coldBuild(buf []int) []int {
	extra := map[int]int{0: 1}
	for k := range extra {
		buf = append(buf, k)
	}
	return buf
}

// spawnRoot reaches the worker literal over the goroutine edge: the
// capturing closure is one site, the worker's make is the second.
//
//chordalvet:hotpath budget=0 spawn edge traversal // want `hot path spawnRoot has 2 reachable allocation sites, over its budget of 0`
func spawnRoot(res []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res[0] = len(make([]byte, 8))
	}()
	wg.Wait()
}

//chordalvet:hotpath budget=lots not a number // want `malformed hotpath directive on badRoot: want //chordalvet:hotpath budget=N`
func badRoot() {}
