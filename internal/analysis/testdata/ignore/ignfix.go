// Package ignfix exercises the chordalvet:ignore directive: directives
// on the preceding line, on the same line, with and without analyzer
// names, and with the wrong analyzer named (which must not suppress).
package ignfix

import "math/rand"

func lineAbove() int {
	//chordalvet:ignore noglobalrand fixture accepts irreproducibility here
	return rand.Int()
}

func sameLine() int {
	return rand.Int() //chordalvet:ignore noglobalrand same-line directive
}

func bareDirectiveSilencesAll() int {
	//chordalvet:ignore this free-form justification names no analyzer
	return rand.Int()
}

func wrongAnalyzerNamed() int {
	//chordalvet:ignore wallclock the wrong analyzer is named, so this still fires
	return rand.Int() // want `calls math/rand.Int on the shared global source`
}
