// Package dist mirrors the engine types a Protocol implementation sees:
// the inbox is a []Message whose backing array the engine reuses.
package dist

type ID int

type Message struct {
	From    ID
	Payload any
}

type Context struct{}
