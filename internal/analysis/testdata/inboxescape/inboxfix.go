// Package inboxfix seeds Round handlers that retain the engine-owned
// inbox slice, next to handlers that copy correctly.
package inboxfix

import "inboxfix/dist"

type keeper struct {
	saved []dist.Message
}

func (k *keeper) Round(ctx *dist.Context, inbox []dist.Message) {
	k.saved = inbox // want `stores the per-round inbox slice in k.saved`
}

// non-Round methods are outside the engine contract and not flagged.
func (k *keeper) handle(msgs []dist.Message) {
	k.saved = msgs
}

type slicer struct {
	tail []dist.Message
}

func (s *slicer) Round(ctx *dist.Context, inbox []dist.Message) {
	if len(inbox) > 1 {
		s.tail = inbox[1:] // want `stores the per-round inbox slice in s.tail`
	}
}

type aliaser struct {
	kept []dist.Message
}

func (a *aliaser) Round(ctx *dist.Context, inbox []dist.Message) {
	tmp := inbox
	a.kept = tmp // want `stores the per-round inbox slice in a.kept`
}

type mapStore struct {
	byRound map[int][]dist.Message
	round   int
}

func (m *mapStore) Round(ctx *dist.Context, inbox []dist.Message) {
	m.byRound[m.round] = inbox // want `stores the per-round inbox slice into a container`
	m.round++
}

type leaker struct{}

func (l *leaker) Round(ctx *dist.Context, inbox []dist.Message) {
	go func(msgs []dist.Message) { _ = msgs }(inbox) // want `passes the per-round inbox slice to a goroutine`
}

func (l *leaker) Done() bool  { return true }
func (l *leaker) Output() any { return nil }

// copier shows the blessed patterns: Message values are copies, and
// append copies the records into an owned backing array.
type copier struct {
	saved    []dist.Message
	lastFrom dist.ID
}

func (c *copier) Round(ctx *dist.Context, inbox []dist.Message) {
	c.saved = append(c.saved[:0], inbox...)
	for _, m := range inbox {
		c.lastFrom = m.From
	}
	if len(inbox) > 0 {
		last := inbox[len(inbox)-1]
		_ = last
	}
}
