module inboxfix

go 1.22
