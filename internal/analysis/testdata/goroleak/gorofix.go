// Package gorofix seeds spawned goroutines with and without join
// evidence: WaitGroup pairs, channel handoffs, ownership transfer
// through parameters, and the fire-and-forget shapes goroleak flags.
package gorofix

import "sync"

func work() {}

// goodWaitGroup is the engine-shard shape: Add, spawn with deferred
// Done, Wait in the same function.
func goodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// goodChannel hands the result back over a channel the spawner
// receives from.
func goodChannel() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// goodClose signals completion by closing a channel the spawner drains.
func goodClose() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// goodRange streams results; the spawner's range drains until close.
func goodRange(n int) int {
	ch := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// goodParamHandle receives the WaitGroup from its caller: the join is
// the owner's obligation, not this function's.
func goodParamHandle(wg *sync.WaitGroup, out []int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		out[0] = 1
	}()
}

// goodDirectSpawn passes the channel to the spawned function; the
// spawner drains it.
func drain(ch chan int) {
	ch <- 1
}

func goodDirectSpawn() int {
	ch := make(chan int)
	go drain(ch)
	return <-ch
}

// badFireAndForget has no join signal at all.
func badFireAndForget() {
	go func() { // want `goroutine has no join evidence \(the spawned body neither calls Done nor sends on a channel\)`
		work()
	}()
}

// badDoneWithoutWait signals Done on a locally declared WaitGroup that
// nobody waits on.
func badDoneWithoutWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine has no join evidence \(the spawned body signals WaitGroup.Done but the enclosing function never waits on that handle\)`
		defer wg.Done()
		work()
	}()
}

// badSendWithoutReceive sends on a local channel the spawner never
// reads.
func badSendWithoutReceive() chan int {
	ch := make(chan int, 1)
	go func() { // want `goroutine has no join evidence \(the spawned body signals channel send but the enclosing function never waits on that handle\)`
		ch <- 1
	}()
	return ch
}

// badDirectSpawn launches a module function with no handle arguments.
func badDirectSpawn() {
	go work() // want `goroutine has no join evidence \(the spawned body neither calls Done nor sends on a channel\)`
}

// okIgnoredDaemon is the justified-daemon shape.
func okIgnoredDaemon() {
	//chordalvet:ignore goroleak intentional daemon for the fixture
	go func() {
		for {
			work()
		}
	}()
}
