// Package dist mirrors the engine Context whose Neighbors view is
// shared with the graph snapshot.
package dist

import "snapfix/graph"

type Context struct {
	nbrIDs []graph.ID
}

func (c *Context) Neighbors() []graph.ID { return c.nbrIDs }
