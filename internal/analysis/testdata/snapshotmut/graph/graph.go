// Package graph mirrors the shapes of the repo's graph substrate that
// snapshotmut reasons about: accessors returning shared read-only views.
package graph

type ID int

type Graph struct {
	adj map[ID][]ID
}

// Neighbors returns a cached slice shared between callers.
func (g *Graph) Neighbors(v ID) []ID { return g.adj[v] }

type Indexed struct {
	ids    []ID
	colIdx []int32
	colID  []ID
}

func (ix *Indexed) IDs() []ID                     { return ix.ids }
func (ix *Indexed) NeighborIDs(i int) []ID        { return ix.colID }
func (ix *Indexed) NeighborIndices(i int) []int32 { return ix.colIdx }
