// Package view mirrors the decide kernel's CSR ball views
// (internal/view): Nodes and Row return shared views into the ball's
// storage that snapshotmut must keep read-only.
package view

type Ball struct {
	nodes  []int32
	rowPtr []int32
	cols   []int32
}

// Nodes returns the row -> snapshot-index table as a shared view.
func (b *Ball) Nodes() []int32 { return b.nodes }

// Row returns row r's neighbor rows as a shared view.
func (b *Ball) Row(r int32) []int32 { return b.cols[b.rowPtr[r]:b.rowPtr[r+1]] }
