// Package mut is a cross-package mutator: the interprocedural sink
// check must see through the package boundary.
package mut

import "snapfix/graph"

// Zero clears the first element in place.
func Zero(s []graph.ID) {
	if len(s) > 0 {
		s[0] = 0
	}
}
