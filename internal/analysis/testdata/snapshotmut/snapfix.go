// Package snapfix seeds deliberate mutations of shared snapshot views
// next to the blessed copy-first idioms.
package snapfix

import (
	"slices"
	"sort"

	"snapfix/dist"
	"snapfix/graph"
	"snapfix/view"
)

func sortsView(g *graph.Graph, v graph.ID) {
	nb := g.Neighbors(v)
	slices.Sort(nb) // want `sorts the shared snapshot view from graph.Graph.Neighbors`
}

func sortsViewDirect(ix *graph.Indexed) {
	sort.Slice(ix.IDs(), func(i, j int) bool { return false }) // want `sorts the shared snapshot view from graph.Indexed.IDs`
}

func writesView(ix *graph.Indexed) {
	ids := ix.IDs()
	ids[0] = 7 // want `writes into the shared snapshot view from graph.Indexed.IDs`
}

func writesThroughAlias(ix *graph.Indexed, i int) {
	row := ix.NeighborIDs(i)
	tail := row[1:]
	tail[0] = 3 // want `writes into the shared snapshot view from graph.Indexed.NeighborIDs`
}

func incrementsView(ix *graph.Indexed, i int) {
	ix.NeighborIndices(i)[0]++ // want `writes into the shared snapshot view from graph.Indexed.NeighborIndices`
}

func appendsView(ctx *dist.Context) []graph.ID {
	return append(ctx.Neighbors(), 99) // want `appends onto the shared snapshot view from dist.Context.Neighbors`
}

func copiesIntoView(ix *graph.Indexed, src []graph.ID) {
	copy(ix.IDs(), src) // want `copies into the shared snapshot view from graph.Indexed.IDs`
}

// copyThenSort is the blessed idiom: clone the view, mutate the clone.
func copyThenSort(g *graph.Graph, v graph.ID) []graph.ID {
	cp := append([]graph.ID(nil), g.Neighbors(v)...)
	slices.Sort(cp)
	return cp
}

func copyIntoOwned(ctx *dist.Context) []graph.ID {
	nb := ctx.Neighbors()
	out := make([]graph.ID, len(nb))
	copy(out, nb)
	return out
}

// reading the view is always fine.
func sumView(ix *graph.Indexed, i int) graph.ID {
	var total graph.ID
	for _, u := range ix.NeighborIDs(i) {
		total += u
	}
	return total
}

// The decide kernel's CSR ball views are shared exactly like the graph
// snapshot accessors: the iteration-wide ball is read by every worker.

func writesBallNodes(b *view.Ball) {
	b.Nodes()[0] = 3 // want `writes into the shared snapshot view from view.Ball.Nodes`
}

func sortsBallRow(b *view.Ball, r int32) {
	row := b.Row(r)
	slices.Sort(row) // want `sorts the shared snapshot view from view.Ball.Row`
}

func appendsBallRowAlias(b *view.Ball, r int32) []int32 {
	row := b.Row(r)
	return append(row, 9) // want `appends onto the shared snapshot view from view.Ball.Row`
}

// copyBallRow is the blessed idiom: clone the row before mutating.
func copyBallRow(b *view.Ball, r int32) []int32 {
	cp := append([]int32(nil), b.Row(r)...)
	slices.Sort(cp)
	return cp
}

// walking a row read-only is always fine.
func sumBallRow(b *view.Ball, r int32) int32 {
	var total int32
	for _, nb := range b.Row(r) {
		total += nb
	}
	return total
}
