// Package snapfix seeds deliberate mutations of shared snapshot views
// next to the blessed copy-first idioms.
package snapfix

import (
	"slices"
	"sort"

	"snapfix/dist"
	"snapfix/graph"
	"snapfix/mut"
	"snapfix/view"
)

func sortsView(g *graph.Graph, v graph.ID) {
	nb := g.Neighbors(v)
	slices.Sort(nb) // want `sorts the shared snapshot view from graph.Graph.Neighbors`
}

func sortsViewDirect(ix *graph.Indexed) {
	sort.Slice(ix.IDs(), func(i, j int) bool { return false }) // want `sorts the shared snapshot view from graph.Indexed.IDs`
}

func writesView(ix *graph.Indexed) {
	ids := ix.IDs()
	ids[0] = 7 // want `writes into the shared snapshot view from graph.Indexed.IDs`
}

func writesThroughAlias(ix *graph.Indexed, i int) {
	row := ix.NeighborIDs(i)
	tail := row[1:]
	tail[0] = 3 // want `writes into the shared snapshot view from graph.Indexed.NeighborIDs`
}

func incrementsView(ix *graph.Indexed, i int) {
	ix.NeighborIndices(i)[0]++ // want `writes into the shared snapshot view from graph.Indexed.NeighborIndices`
}

func appendsView(ctx *dist.Context) []graph.ID {
	return append(ctx.Neighbors(), 99) // want `appends onto the shared snapshot view from dist.Context.Neighbors`
}

func copiesIntoView(ix *graph.Indexed, src []graph.ID) {
	copy(ix.IDs(), src) // want `copies into the shared snapshot view from graph.Indexed.IDs`
}

// copyThenSort is the blessed idiom: clone the view, mutate the clone.
func copyThenSort(g *graph.Graph, v graph.ID) []graph.ID {
	cp := append([]graph.ID(nil), g.Neighbors(v)...)
	slices.Sort(cp)
	return cp
}

func copyIntoOwned(ctx *dist.Context) []graph.ID {
	nb := ctx.Neighbors()
	out := make([]graph.ID, len(nb))
	copy(out, nb)
	return out
}

// reading the view is always fine.
func sumView(ix *graph.Indexed, i int) graph.ID {
	var total graph.ID
	for _, u := range ix.NeighborIDs(i) {
		total += u
	}
	return total
}

// The decide kernel's CSR ball views are shared exactly like the graph
// snapshot accessors: the iteration-wide ball is read by every worker.

func writesBallNodes(b *view.Ball) {
	b.Nodes()[0] = 3 // want `writes into the shared snapshot view from view.Ball.Nodes`
}

func sortsBallRow(b *view.Ball, r int32) {
	row := b.Row(r)
	slices.Sort(row) // want `sorts the shared snapshot view from view.Ball.Row`
}

func appendsBallRowAlias(b *view.Ball, r int32) []int32 {
	row := b.Row(r)
	return append(row, 9) // want `appends onto the shared snapshot view from view.Ball.Row`
}

// copyBallRow is the blessed idiom: clone the row before mutating.
func copyBallRow(b *view.Ball, r int32) []int32 {
	cp := append([]int32(nil), b.Row(r)...)
	slices.Sort(cp)
	return cp
}

// walking a row read-only is always fine.
func sumBallRow(b *view.Ball, r int32) int32 {
	var total int32
	for _, nb := range b.Row(r) {
		total += nb
	}
	return total
}

// The interprocedural cases: taint flows through wrapper returns
// (sources) and into mutating callees (sinks), including across
// package boundaries.

// viewRows is a wrapper around an accessor; its results are shared
// views exactly like direct accessor calls.
func viewRows(ix *graph.Indexed) []graph.ID { return ix.IDs() }

func writesThroughWrapper(ix *graph.Indexed) {
	ids := viewRows(ix)
	ids[0] = 1 // want `writes into the shared snapshot view from graph.Indexed.IDs`
}

// zeroFirst mutates its parameter in place, so handing it a view is a
// mutation of the view.
func zeroFirst(s []graph.ID) {
	if len(s) > 0 {
		s[0] = 0
	}
}

func passesViewToMutator(ix *graph.Indexed) {
	zeroFirst(ix.IDs()) // want `passes the shared snapshot view from graph.Indexed.IDs to zeroFirst, which mutates that parameter`
}

func passesViewCrossPackage(ix *graph.Indexed) {
	mut.Zero(ix.IDs()) // want `passes the shared snapshot view from graph.Indexed.IDs to Zero, which mutates that parameter`
}

func passesAliasToMutator(ix *graph.Indexed) {
	ids := viewRows(ix)
	tail := ids[1:]
	mut.Zero(tail) // want `passes the shared snapshot view from graph.Indexed.IDs to Zero, which mutates that parameter`
}

// Mutating an owned copy through the same helpers is the blessed idiom.
func mutatesOwnedCopy(ix *graph.Indexed) {
	cp := append([]graph.ID(nil), ix.IDs()...)
	zeroFirst(cp)
	mut.Zero(cp)
}

// readLen only reads its parameter; passing a view through is fine.
func readLen(s []graph.ID) int { return len(s) }

func passesViewToReader(ix *graph.Indexed) int {
	return readLen(ix.IDs())
}
