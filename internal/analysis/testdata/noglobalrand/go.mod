module randfix

go 1.22
