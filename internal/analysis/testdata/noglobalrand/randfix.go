// Package randfix seeds global-source and wall-clock-seeded randomness
// violations next to the repo's blessed explicit-seed idiom.
package randfix

import (
	"math/rand"
	"time"
)

func globalIntn(n int) int {
	return rand.Intn(n) // want `calls math/rand.Intn on the shared global source`
}

func globalInt63() int64 {
	return rand.Int63() // want `calls math/rand.Int63 on the shared global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `calls math/rand.Shuffle on the shared global source`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeds math/rand.NewSource from the wall clock`
}

// seeded is the blessed idiom: an explicit seed threaded by the caller.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derivedSeed(seed int64, v int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(v)*0x5851f42d4c957f2d))
}

// methods on an owned *rand.Rand never touch the global source.
func drawFrom(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}
