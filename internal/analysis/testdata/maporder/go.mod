module mapfix

go 1.22
