// Package mapfix seeds deliberate maporder violations plus the repo's
// blessed collect-then-sort idioms, which must stay quiet.
package mapfix

import (
	"fmt"
	"sort"
	"strings"

	"mapfix/graph"
)

func appendNoSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `appends to keys while ranging over a map`
	}
	return keys
}

func appendThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func newSetCanonicalizes(m map[graph.ID]bool) graph.Set {
	var out graph.Set
	for k := range m {
		out = append(out, k)
	}
	return graph.NewSet(out...)
}

func printsInside(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want `writes output inside a range over a map`
	}
}

func builderWrite(m map[int]string, b *strings.Builder) {
	for _, v := range m {
		b.WriteString(v) // want `writes to strings.Builder inside a range over a map`
	}
}

type table struct {
	rows []string
}

func fieldAppend(t *table, m map[string]int) {
	for k := range m {
		t.rows = append(t.rows, k) // want `appends to t.rows while ranging over a map`
	}
}

func fieldAppendThenSort(t *table, m map[string]int) {
	for k := range m {
		t.rows = append(t.rows, k)
	}
	sort.Strings(t.rows)
}

// perIteration accumulates into a slice that restarts every iteration;
// no cross-iteration order can leak.
func perIteration(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		total += len(local)
	}
	return total
}

// commutative map writes are fine.
func histogram(m map[string]int) map[int]int {
	out := make(map[int]int)
	for _, v := range m {
		out[v]++
	}
	return out
}

// slice ranges are never flagged.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// The decide kernel's merge shape: per-center decisions keyed by node.
// Draining the decision map straight into the peel order leaks map
// iteration entropy into the layer assignment; the blessed merge
// collects then sorts (the kernel itself iterates a pre-sorted center
// slice, which is the same idiom one step earlier).

func decidedMergeNoSort(decided map[graph.ID]int) []graph.ID {
	var peeled []graph.ID
	for v, layer := range decided {
		if layer > 0 {
			peeled = append(peeled, v) // want `appends to peeled while ranging over a map`
		}
	}
	return peeled
}

func decidedMergeSorted(decided map[graph.ID]int) []graph.ID {
	var peeled []graph.ID
	for v, layer := range decided {
		if layer > 0 {
			peeled = append(peeled, v)
		}
	}
	sort.Slice(peeled, func(i, j int) bool { return peeled[i] < peeled[j] })
	return peeled
}
