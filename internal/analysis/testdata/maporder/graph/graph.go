// Package graph is a miniature stand-in for the repo's graph package,
// just large enough for the maporder fixtures: NewSet is recognized as a
// canonicalizing constructor.
package graph

import "sort"

type ID int

type Set []ID

// NewSet sorts and deduplicates, canonicalizing accumulation order.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
