package mapfix

import "sort"

// Context mirrors the shape of dist.Context so the message-emission arm
// of maporder can be exercised without importing the real engine.
type Context struct{}

func (c *Context) Send(to int, payload any) {}
func (c *Context) Broadcast(payload any)    {}

func sendInside(c *Context, m map[int]bool) {
	for k := range m {
		c.Send(k, "ping") // want `sends protocol messages inside a range over a map`
	}
}

func broadcastInside(c *Context, m map[int]bool) {
	for range m {
		c.Broadcast("ping") // want `sends protocol messages inside a range over a map`
	}
}

// sendFromSortedKeys is the blessed pattern: collect, sort, then send
// while ranging over the sorted slice.
func sendFromSortedKeys(c *Context, m map[int]bool) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		c.Send(k, "ping")
	}
}
