// Package tools is outside the guarded simulation core: wall-clock
// reads here are legitimate (progress reporting, experiment timing).
package tools

import "time"

func Now() time.Time { return time.Now() }
