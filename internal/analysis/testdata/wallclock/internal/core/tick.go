// Package core stands in for the guarded algorithm-core package.
package core

import "time"

var epoch = time.Now() // want `calls time.Now in wallfix/internal/core`
