// Package dist stands in for the guarded simulation engine package.
package dist

import "time"

func stamp() time.Time {
	return time.Now() // want `calls time.Now in wallfix/internal/dist`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `calls time.Since in wallfix/internal/dist`
}

// durations as data are fine; only clock reads are flagged.
func timeout() time.Duration {
	return 5 * time.Second
}
