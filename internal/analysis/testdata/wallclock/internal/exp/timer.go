// Package exp stands in for a package newly covered by the widened
// guard: the ban is internal/-wide, not just dist/core/peel, so an
// experiment harness reading the clock directly is flagged — timings
// must route through the observability layer instead.
package exp

import "time"

func measure(f func()) time.Duration {
	start := time.Now() // want `calls time.Now in wallfix/internal/exp`
	f()
	return time.Since(start) // want `calls time.Since in wallfix/internal/exp`
}
