// Package obs stands in for the observability layer, the one sanctioned
// clock user under internal/: it stamps engine callbacks with wall times
// so no other package needs the clock. Nothing here is flagged.
package obs

import "time"

type collector struct {
	now func() time.Time
}

func newCollector() *collector {
	return &collector{now: time.Now}
}

func (c *collector) stamp(t0 time.Time) time.Duration {
	return time.Since(t0)
}
