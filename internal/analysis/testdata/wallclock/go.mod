module wallfix

go 1.22
