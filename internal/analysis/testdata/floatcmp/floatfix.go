// Package floatfix seeds exact float comparisons next to the blessed
// tolerance-based and integer-based forms.
package floatfix

func ratioEqual(a, b float64) bool {
	return a == b // want `compares floats with ==`
}

func ratioNotEqual(a, b float32) bool {
	return a != b // want `compares floats with !=`
}

func untypedConst(x float64) bool {
	return x == 1.0 // want `compares floats with ==`
}

func mixedExpr(colors, omega int) bool {
	return float64(colors)/float64(omega) == 1.125 // want `compares floats with ==`
}

// integer comparisons are exact and fine.
func intsAreFine(a, b int) bool {
	return a == b
}

// ordered float comparisons are deterministic on stored values.
func orderingIsFine(a, b float64) bool {
	return a < b
}

// the blessed form: explicit tolerance.
func withinTolerance(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// or compare the integer numerators directly.
func exactOnIntegers(colors, omega, num, den int) bool {
	return colors*den == num*omega
}
