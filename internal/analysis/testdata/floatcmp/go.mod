module floatfix

go 1.22
