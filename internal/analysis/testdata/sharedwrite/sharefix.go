// Package sharefix seeds worker goroutines that write captured state:
// the per-shard discipline (write only slots indexed by your own
// parameters) next to the racy shapes sharedwrite must flag.
package sharefix

import "sync"

type result struct{ v int }

// runShards is the runner idiom: the body callback runs on spawned
// workers, which sharedwrite discovers through the call graph.
func runShards(n, workers int, body func(shard, lo, hi int)) {
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			body(shard, lo, hi)
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
}

// goodStage is the blessed shape: every write lands in a slot indexed
// by a value derived from the worker's own range parameters.
func goodStage(results []result) {
	runShards(len(results), 4, func(shard, lo, hi int) {
		for pos := lo; pos < hi; pos++ {
			results[pos] = result{v: pos}
		}
	})
}

// badStage writes through an index captured from the enclosing scope:
// every worker hits the same slot.
func badStage(errs []error) {
	first := 0
	runShards(len(errs), 4, func(shard, lo, hi int) {
		errs[first] = nil // want `worker goroutine writes the captured slice at a non-partitioned index errs`
	})
}

// goodDirect spawns directly with a partitioned range.
func goodDirect(out []int, workers int) {
	var wg sync.WaitGroup
	chunk := (len(out) + workers - 1) / workers
	for lo := 0; lo < len(out); lo += chunk {
		hi := lo + chunk
		if hi > len(out) {
			hi = len(out)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = i
			}
		}(lo, hi)
	}
	wg.Wait()
}

// badFixedSlot writes slot zero from every worker.
func badFixedSlot(out []int) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[0] = w // want `worker goroutine writes the captured slice at a non-partitioned index out`
		}(w)
	}
	wg.Wait()
}

// badMapWrite writes a captured map: maps have no per-slot discipline.
func badMapWrite(counts map[string]int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(i int) {
		defer wg.Done()
		counts["x"] = i // want `worker goroutine writes the captured map counts`
	}(1)
	wg.Wait()
}

// badMapDelete deletes from a captured map.
func badMapDelete(counts map[string]int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		delete(counts, "x") // want `worker goroutine calls delete on the captured container counts`
	}()
	wg.Wait()
}

// badRebind increments a captured accumulator: a lost-update race.
func badRebind(n int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		total++ // want `worker goroutine rebinds the captured variable total`
	}()
	wg.Wait()
	return total + n
}

// goodLocalDerived indexes through a local computed from the worker's
// parameters: still partitioned.
func goodLocalDerived(out []int, workers int) {
	runShards(len(out), workers, func(shard, lo, hi int) {
		base := lo
		for i := 0; i < hi-lo; i++ {
			out[base+i] = i
		}
	})
}

// unspawnedLiteral never runs on a goroutine: no discipline applies.
func unspawnedLiteral(out []int) {
	write := func() { out[0] = 1 }
	write()
}
