package analysis

import (
	"go/ast"
	"go/types"
)

// SharedWrite guards the per-shard write discipline of the parallel
// kernels: a function literal that executes on a spawned goroutine may
// write into a captured slice only through an index that is provably
// worker-partitioned (derived from the literal's own parameters — the
// shard number or the [lo, hi) range handed to the worker), and may
// never write captured maps or rebind captured variables at all. This
// is the static counterpart of the determinism worker-sweep suites:
// those catch a cross-shard write only when the schedule happens to
// interleave it; this flags the write shape itself.
//
// A literal "executes on a goroutine" when it is spawned directly
// (`go func(...){...}(...)`) or passed as an argument to a function
// whose summary says it runs that parameter on a goroutine it spawns —
// the runShards/runStageRanges runner idiom, resolved through the call
// graph's RunsParamInGoroutine fixpoint.
var SharedWrite = &Analyzer{
	Name:      "sharedwrite",
	Doc:       "worker-goroutine writes to captured slices/maps that are not provably index-partitioned",
	RunModule: runSharedWrite,
}

func runSharedWrite(mp *ModulePass) {
	facts := mp.Facts
	workers := collectWorkerLits(facts)
	for _, n := range facts.Graph.Order {
		if n.Lit == nil || !workers[n] {
			continue
		}
		checkWorkerLit(mp, n)
	}
}

// collectWorkerLits returns the literal nodes that may execute on a
// spawned goroutine: direct go-statement spawns plus literals passed to
// parameters with RunsParamInGoroutine.
func collectWorkerLits(facts *Facts) map[*FuncNode]bool {
	workers := make(map[*FuncNode]bool)
	for _, n := range facts.Graph.Order {
		for _, sp := range n.Spawned {
			if sp.Lit != nil {
				workers[sp] = true
			}
		}
		// Literal arguments bound to goroutine-running parameters.
		inspectOwn(n.Body, func(nd ast.Node) {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return
			}
			callee, _ := facts.calleeSummary(n.Pkg, call)
			if callee == nil {
				return
			}
			cs := facts.SummaryOf(callee)
			args := callArgExprs(n.Pkg, call)
			for pos, arg := range args {
				if arg == nil {
					continue
				}
				j := argParamIndex(callee, pos)
				if j < 0 || !cs.RunsParamInGoroutine[j] {
					continue
				}
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					if ln := facts.Graph.LitNode(lit); ln != nil {
						workers[ln] = true
					}
				}
			}
		})
	}
	return workers
}

// checkWorkerLit inspects one worker literal's own body for unsafe
// writes to captured state.
func checkWorkerLit(mp *ModulePass, n *FuncNode) {
	info := n.Pkg.Info
	captured := make(map[types.Object]bool)
	for _, obj := range mp.Facts.SummaryOf(n).Captured {
		captured[obj] = true
	}
	if len(captured) == 0 {
		return
	}
	// Worker-local objects: the literal's parameters plus locals derived
	// from them (loop variables over [lo, hi), shard-indexed reads).
	local := workerLocalObjects(n)

	partitioned := func(index ast.Expr) bool {
		ok := false
		ast.Inspect(index, func(nd ast.Node) bool {
			if id, isIdent := nd.(*ast.Ident); isIdent {
				if obj := info.ObjectOf(id); obj != nil && local[obj] {
					ok = true
					return false
				}
			}
			return true
		})
		return ok
	}

	report := func(pos ast.Node, base ast.Expr, what string) {
		name := "captured state"
		if obj := rootIdentObj(info, base); obj != nil {
			name = obj.Name()
		}
		mp.Reportf(pos.Pos(), "worker goroutine %s %s; workers may only write per-shard slots indexed by their own parameters — pass a shard/range argument or use per-worker scratch", what, name)
	}

	checkWrite := func(stmt ast.Node, lhs ast.Expr) {
		switch v := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(v); obj != nil && captured[obj] {
				report(stmt, v, "rebinds the captured variable")
			}
		case *ast.IndexExpr:
			root := rootIdentObj(info, v.X)
			if root == nil || !captured[root] {
				return
			}
			if t := info.TypeOf(v.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(stmt, v.X, "writes the captured map")
					return
				}
			}
			if !partitioned(v.Index) {
				report(stmt, v.X, "writes the captured slice at a non-partitioned index")
			}
		}
	}

	inspectOwn(n.Body, func(nd ast.Node) {
		switch v := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				checkWrite(v, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(v, v.X)
		case *ast.CallExpr:
			// delete(m, k) and clear(x) on captured containers.
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && len(v.Args) > 0 {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "clear") {
					if obj := rootIdentObj(info, v.Args[0]); obj != nil && captured[obj] {
						report(v, v.Args[0], "calls "+id.Name+" on the captured container")
					}
				}
			}
		}
	})
}

// workerLocalObjects returns the literal's parameters and the locals
// transitively initialized from them.
func workerLocalObjects(n *FuncNode) map[types.Object]bool {
	info := n.Pkg.Info
	local := make(map[types.Object]bool)
	for _, obj := range n.ParamObjs() {
		if obj != nil {
			local[obj] = true
		}
	}
	for {
		changed := false
		inspectOwn(n.Body, func(nd ast.Node) {
			as, ok := nd.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i := range as.Lhs {
				lhsObj := identObjInfo(info, as.Lhs[i])
				if lhsObj == nil || local[lhsObj] {
					continue
				}
				// RHS mentions a worker-local object anywhere.
				dep := false
				ast.Inspect(as.Rhs[i], func(e ast.Node) bool {
					if id, isIdent := e.(*ast.Ident); isIdent {
						if obj := info.ObjectOf(id); obj != nil && local[obj] {
							dep = true
							return false
						}
					}
					return true
				})
				if dep {
					local[lhsObj] = true
					changed = true
				}
			}
		})
		if !changed {
			return local
		}
	}
}
