package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags == and != between floating-point values. The repo's
// approximation-ratio checks (colors/ω, |MIS|/α, the (1+ε) (7/8)-bounds
// of Theorems 2 and 4) are computed as float64 quotients; exact equality
// on those is sensitive to evaluation order and optimization level, so a
// refactor that is semantically neutral can flip a fidelity table from
// "ok" to "MISMATCH". Comparisons must be phrased with an explicit
// tolerance or performed on the integer numerators/denominators.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "exact ==/!= comparison of floating-point values in ratio code",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.Info.TypeOf(be.X), pass.Info.TypeOf(be.Y)
			if tx == nil || ty == nil {
				return true
			}
			if isFloat(tx) || isFloat(ty) {
				pass.Reportf(be.Pos(), "compares floats with %s; exact float equality is evaluation-order sensitive — use an explicit tolerance or compare integer numerators", be.Op)
			}
			return true
		})
	}
}
