package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation pattern from a `// want `+"`re`"+` comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one // want comment: a regexp the diagnostic message at
// that file:line must match.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadExpectations scans every .go file under dir for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			m := wantRe.FindStringSubmatch(scanner.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want pattern: %w", path, line, err)
			}
			abs, err := filepath.Abs(path)
			if err != nil {
				return err
			}
			wants = append(wants, &expectation{file: abs, line: line, pattern: re})
		}
		return scanner.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture loads testdata/<fixture> as its own module, runs the given
// analyzers through the full driver (including ignore filtering), and
// checks the diagnostics against the fixture's want comments: every
// diagnostic must be expected, and every expectation must fire.
func runFixture(t *testing.T, analyzers []*Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", fixture)
	}
	wants := loadExpectations(t, dir)
	diags := Run(pkgs, analyzers)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if !w.pattern.MatchString(d.Message) {
				t.Errorf("%s: diagnostic %q does not match want pattern %q", d.Pos, d.Message, w.pattern)
			}
			w.matched = true
			found = true
			break
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// TestAnalyzers proves each analyzer flags its seeded violations and
// stays quiet on the blessed idioms sitting next to them.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		analyzer *Analyzer
		fixture  string
	}{
		{MapOrder, "maporder"},
		{SnapshotMut, "snapshotmut"},
		{NoGlobalRand, "noglobalrand"},
		{WallClock, "wallclock"},
		{FloatCmp, "floatcmp"},
		{InboxEscape, "inboxescape"},
		{HotAlloc, "hotalloc"},
		{SharedWrite, "sharedwrite"},
		{GoroLeak, "goroleak"},
	}
	names := make(map[string]bool)
	for _, tc := range tests {
		names[tc.fixture] = true
		tc := tc
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			t.Parallel()
			runFixture(t, []*Analyzer{tc.analyzer}, tc.fixture)
		})
	}
	// Every analyzer in the suite must have a fixture above.
	for _, a := range All() {
		if !names[a.Name] {
			t.Errorf("analyzer %s has no fixture in TestAnalyzers", a.Name)
		}
	}
}

// TestIgnoreDirective runs the full suite over the ignore fixture:
// directives above the line, on the line, and bare suppress; a directive
// naming the wrong analyzer does not.
func TestIgnoreDirective(t *testing.T) {
	runFixture(t, All(), "ignore")
}

func TestPathHasSegments(t *testing.T) {
	cases := []struct {
		path, segs string
		want       bool
	}{
		{"repro/internal/dist", "internal/dist", true},
		{"wallfix/internal/dist", "internal/dist", true},
		{"repro/internal/distillery", "internal/dist", false},
		{"repro/internal/core", "internal/core", true},
		{"internal/core", "internal/core", true},
		{"repro/core", "internal/core", false},
		{"repro", "internal/dist", false},
	}
	for _, c := range cases {
		if got := pathHasSegments(c.path, c.segs); got != c.want {
			t.Errorf("pathHasSegments(%q, %q) = %v, want %v", c.path, c.segs, got, c.want)
		}
	}
}

// TestAnalyzerMetadata keeps the suite's names unique and documented:
// ignore directives address analyzers by name.
func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %s must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
}
