package analysis

import (
	"go/ast"
)

// NoGlobalRand flags use of math/rand's process-global source and of
// wall-clock-seeded sources in non-test code. Every randomized component
// in the repo (graph generators, Luby/Johansson baselines, the beyond-
// chordal experiment) threads an explicit int64 seed so that EXPERIMENTS.md
// tables and the determinism cross-checks reproduce bit-identically; a
// single rand.Intn on the shared source, or a source seeded from
// time.Now, would make results depend on process history and launch time.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "math/rand global-source calls or wall-clock-seeded sources in simulation code",
	Run:  runNoGlobalRand,
}

// randConstructors are the math/rand functions that build explicitly
// seeded values rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// randSourceConstructors is the subset that consumes the seed itself;
// only these are checked for wall-clock seeding, so that
// rand.New(rand.NewSource(time.Now().UnixNano())) reports once, at the
// source.
var randSourceConstructors = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNoGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if isPkgCall(pass, call, path) && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "calls %s.%s on the shared global source; thread an explicit seed through rand.New(rand.NewSource(seed)) so runs reproduce", path, fn.Name())
				return true
			}
			if randSourceConstructors[fn.Name()] && callContainsWallClock(pass, call) {
				pass.Reportf(call.Pos(), "seeds %s.%s from the wall clock; use a fixed or caller-provided seed so runs reproduce", path, fn.Name())
			}
			return true
		})
	}
}

// callContainsWallClock reports whether any argument subtree of call
// reads the wall clock (time.Now and friends).
func callContainsWallClock(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if ok && isPkgCall(pass, inner, "time", "Now") {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}
