// Package lowerbound reproduces the shape of Theorem 9: every
// (1+ε)-approximate MIS algorithm on labelled paths needs Ω(1/ε) rounds.
// It implements a concrete LOCAL algorithm — anchors at pairwise distance
// ≥ r split the path into segments, each filled with an exact alternating
// independent set — whose measured approximation ratio is 1 + Θ(1/r),
// matching the theorem's 1 + Ω(1/r) bound from above. Plotting achievable
// ratio against the round budget reproduces the rounds ≈ Θ(1/ε)
// trade-off.
package lowerbound

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/colorreduce"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// Result is one run of the anchor algorithm.
type Result struct {
	Set    graph.Set
	Rounds int
	// Anchors counts the sacrificed separator nodes — the source of the
	// Θ(1/r) loss.
	Anchors int
}

// AnchorMIS runs the r-parameterized LOCAL MIS algorithm on the path P_n
// with node labels drawn uniformly at random (Theorem 9's input model):
// a set of anchor nodes with pairwise distance at least r is selected by
// the deterministic chain-anchor routine; anchors stay out of the
// independent set, and every segment between consecutive anchors
// contributes an exact alternating independent set, losing at most one
// node per anchor.
func AnchorMIS(n, r int, seed int64) (*Result, error) {
	if n <= 0 || r < 2 {
		return nil, fmt.Errorf("need n > 0, r >= 2 (got n=%d r=%d)", n, r)
	}
	rng := rand.New(rand.NewSource(seed))
	label := rng.Perm(n) // label[pos] = node ID at position pos

	g := graph.New()
	g.AddNode(graph.ID(label[0]))
	ch := colorreduce.NewChain()
	ch.AddNode(graph.ID(label[0]))
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.ID(label[i]), graph.ID(label[i+1]))
		ch.AddEdge(graph.ID(label[i]), graph.ID(label[i+1]), 1)
	}
	posOf := make(map[graph.ID]int, n)
	for p, id := range label {
		posOf[graph.ID(id)] = p
	}
	ch.Dist = func(u, v graph.ID) int {
		d := posOf[u] - posOf[v]
		if d < 0 {
			return -d
		}
		return d
	}
	anchorRes, err := colorreduce.SelectAnchors(ch, r, n)
	if err != nil {
		return nil, err
	}
	positions := make([]int, 0, len(anchorRes.Anchors))
	for _, a := range anchorRes.Anchors {
		positions = append(positions, posOf[a])
	}
	sort.Ints(positions)

	isAnchor := make([]bool, n)
	for _, p := range positions {
		isAnchor[p] = true
	}
	var out graph.Set
	// Alternate-fill each maximal anchor-free run of positions.
	for p := 0; p < n; {
		if isAnchor[p] {
			p++
			continue
		}
		start := p
		for p < n && !isAnchor[p] {
			p++
		}
		for q := start; q < p; q += 2 {
			out = append(out, graph.ID(label[q]))
		}
	}
	out = graph.NewSet(out...)
	if err := verify.IndependentSet(g, out); err != nil {
		return nil, fmt.Errorf("anchor algorithm produced a dependent set: %w", err)
	}
	_ = gen.Path // keep gen linked for tests building paths
	return &Result{Set: out, Rounds: anchorRes.Rounds + 2, Anchors: len(positions)}, nil
}

// MeasuredRatio runs AnchorMIS over trials seeds and returns the average
// approximation ratio ⌈n/2⌉/|I| and the average measured rounds.
func MeasuredRatio(n, r, trials int, seed int64) (ratio, rounds float64, err error) {
	opt := float64((n + 1) / 2)
	sumRatio, sumRounds := 0.0, 0.0
	for t := 0; t < trials; t++ {
		res, err := AnchorMIS(n, r, seed+int64(t))
		if err != nil {
			return 0, 0, err
		}
		if len(res.Set) == 0 {
			return 0, 0, fmt.Errorf("empty independent set")
		}
		sumRatio += opt / float64(len(res.Set))
		sumRounds += float64(res.Rounds)
	}
	return sumRatio / float64(trials), sumRounds / float64(trials), nil
}

// TheoremBound returns Theorem 9's lower bound on the approximation
// factor of any r-round algorithm: from the proof,
// ⌈n/2⌉ ≤ (1+ε)·n·(1/2 − 1/(8r+12) + O(1/n)), hence as n → ∞,
// 1+ε ≥ 1/(1 − 2/(8r+12)).
func TheoremBound(r int) float64 {
	return 1 / (1 - 2/float64(8*r+12))
}
