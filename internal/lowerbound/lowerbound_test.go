package lowerbound

import (
	"testing"
)

func TestAnchorMISIndependentAndNonEmpty(t *testing.T) {
	for _, r := range []int{2, 4, 8} {
		for seed := int64(0); seed < 5; seed++ {
			res, err := AnchorMIS(300, r, seed)
			if err != nil {
				t.Fatalf("r=%d seed=%d: %v", r, seed, err)
			}
			if len(res.Set) == 0 {
				t.Fatalf("r=%d seed=%d: empty set", r, seed)
			}
			if res.Rounds <= 0 {
				t.Fatalf("r=%d seed=%d: no rounds reported", r, seed)
			}
		}
	}
}

func TestAnchorMISRatioImprovesWithR(t *testing.T) {
	r2, _, err := MeasuredRatio(3000, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	r32, _, err := MeasuredRatio(3000, 32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r32 >= r2 {
		t.Fatalf("ratio did not improve: r=2 → %v, r=32 → %v", r2, r32)
	}
	if r32 > 1.1 {
		t.Fatalf("r=32 ratio %v too far from 1", r32)
	}
}

func TestMeasuredRatioAboveTheoremBound(t *testing.T) {
	// Theorem 9: no r-round algorithm beats 1/(1 − 2/(8r+12)); our
	// concrete algorithm at matching round budgets must respect it.
	for _, r := range []int{2, 4, 8} {
		measured, rounds, err := MeasuredRatio(4000, r, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		if bound := TheoremBound(int(rounds)); measured < bound-0.01 {
			t.Fatalf("r=%d: measured ratio %v below the bound %v at its round budget", r, measured, bound)
		}
	}
}

func TestRatioScalesLikeOneOverR(t *testing.T) {
	// ε(r) = ratio−1 should shrink roughly linearly in 1/r: ε(4)/ε(16)
	// should be in the ballpark of 4.
	e4, _, err := MeasuredRatio(6000, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	e16, _, err := MeasuredRatio(6000, 16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	factor := (e4 - 1) / (e16 - 1)
	if factor < 2 || factor > 9 {
		t.Fatalf("ε(4)/ε(16) = %v, expected ≈ 4 (Θ(1/r) scaling)", factor)
	}
}

func TestTheoremBoundShape(t *testing.T) {
	prev := TheoremBound(1)
	for _, r := range []int{2, 4, 8, 16, 64} {
		b := TheoremBound(r)
		if b >= prev {
			t.Fatalf("bound not decreasing at r=%d", r)
		}
		prev = b
	}
	if prev < 1 || prev > 1.01 {
		t.Fatalf("bound at r=64 should be just above 1, got %v", prev)
	}
}

func TestAnchorMISErrors(t *testing.T) {
	if _, err := AnchorMIS(0, 2, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := AnchorMIS(10, 1, 1); err == nil {
		t.Fatal("expected error for r<2")
	}
}
