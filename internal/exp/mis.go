package exp

import (
	"fmt"
	"strconv"

	"repro/internal/baseline"
	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lowerbound"
	"repro/internal/verify"
)

// E9IntervalMIS measures Theorem 5: interval MIS quality vs ε.
func E9IntervalMIS(quick bool) (*Table, error) {
	n := 2000
	if quick {
		n = 500
	}
	t := &Table{
		ID:      "E9",
		Title:   "Theorem 5: interval MIS approximation vs ε",
		Columns: []string{"eps", "k", "α", "|I|", "ratio", "1+eps"},
	}
	ivs := gen.RandomIntervals(n, float64(n)/2, 2.5, 9)
	g := gen.FromIntervals(ivs)
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		return nil, err
	}
	for _, eps := range []float64{1, 0.5, 0.25, 0.125} {
		res, err := core.MISInterval(g, eps, n)
		if err != nil {
			return nil, err
		}
		if err := verify.IndependentSet(g, res.Set); err != nil {
			return nil, err
		}
		t.AddRow(eps, res.K, alpha, len(res.Set), float64(alpha)/float64(len(res.Set)), 1+eps)
	}
	return t, nil
}

// E10IntervalMISRounds measures Theorem 6: interval MIS rounds vs n
// (near-flat growth, the log* component).
func E10IntervalMISRounds(quick bool) (*Table, error) {
	sizes := []int{512, 2048, 8192}
	if quick {
		sizes = []int{512, 2048}
	}
	const eps = 0.5
	t := &Table{
		ID:      "E10",
		Title:   "Theorem 6: interval MIS rounds vs n (ε=0.5)",
		Columns: []string{"n", "α", "|I|", "ratio", "rounds"},
		Notes:   []string{"Theory: O((1/ε)·log* n); rounds should be almost flat in n."},
	}
	for _, n := range sizes {
		ivs := gen.UnitIntervals(n, float64(n)/6, int64(n))
		g := gen.FromIntervals(ivs)
		alpha, err := chordal.IndependenceNumber(g)
		if err != nil {
			return nil, err
		}
		res, err := core.MISInterval(g, eps, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, alpha, len(res.Set), float64(alpha)/float64(len(res.Set)), res.Rounds)
	}
	return t, nil
}

// E11ChordalMIS measures Theorem 7: chordal MIS quality vs ε.
func E11ChordalMIS(quick bool) (*Table, error) {
	n := 1500
	if quick {
		n = 400
	}
	t := &Table{
		ID:      "E11",
		Title:   "Theorem 7: chordal MIS approximation vs ε",
		Columns: []string{"eps", "d", "iterations", "α", "|I|", "ratio", "1+eps"},
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 13)
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		return nil, err
	}
	for _, eps := range []float64{0.5, 0.25, 0.125} {
		res, err := core.MISChordal(g, eps)
		if err != nil {
			return nil, err
		}
		if err := verify.IndependentSet(g, res.Set); err != nil {
			return nil, err
		}
		t.AddRow(eps, res.D, res.Iterations, alpha, len(res.Set),
			float64(alpha)/float64(len(res.Set)), 1+eps)
	}
	return t, nil
}

// E12ChordalMISRounds measures Theorem 8: chordal MIS round accounting
// vs n.
func E12ChordalMISRounds(quick bool) (*Table, error) {
	sizes := []int{500, 2000, 8000}
	if quick {
		sizes = []int{500, 2000}
	}
	const eps = 0.45
	t := &Table{
		ID:      "E12",
		Title:   "Theorem 8: chordal MIS rounds vs n (ε=0.45)",
		Columns: []string{"n", "α", "|I|", "ratio", "rounds"},
		Notes:   []string{"Theory: O((1/ε)·log(1/ε)·log* n); rounds depend on ε, not n."},
	}
	for _, n := range sizes {
		g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, int64(n))
		alpha, err := chordal.IndependenceNumber(g)
		if err != nil {
			return nil, err
		}
		res, err := core.MISChordal(g, eps)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, alpha, len(res.Set), float64(alpha)/float64(len(res.Set)), res.Rounds)
	}
	// One fully message-passed run (distributed pruning phase) at the
	// smallest size, for comparison with the accounting rows above.
	gd := gen.RandomChordal(sizes[0], gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, int64(sizes[0]))
	alphaD, err := chordal.IndependenceNumber(gd)
	if err != nil {
		return nil, err
	}
	resD, err := core.MISChordalDistributed(gd, eps)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("%d (message-passed prune)", sizes[0]), alphaD, len(resD.Set),
		float64(alphaD)/float64(len(resD.Set)), resD.Rounds)
	return t, nil
}

// E13LowerBound reproduces Theorem 9's shape: achievable approximation of
// r-round path MIS vs the theorem's 1 + Ω(1/r) bound.
func E13LowerBound(quick bool) (*Table, error) {
	n, trials := 4000, 20
	if quick {
		n, trials = 1000, 5
	}
	t := &Table{
		ID:      "E13",
		Title:   "Theorem 9: r-round MIS on paths — measured ratio vs bound",
		Columns: []string{"r", "measured rounds", "theorem bound 1/(1−2/(8r+12))", "measured ratio (anchor alg)", "implied eps", "r·eps"},
		Notes:   []string{"Measured ratio sits above the bound and decays as Θ(1/r): achieving 1+ε needs r ≈ Θ(1/ε) rounds."},
	}
	for _, r := range []int{2, 4, 8, 16, 32, 64} {
		measured, rounds, err := lowerbound.MeasuredRatio(n, r, trials, 5)
		if err != nil {
			return nil, err
		}
		eps := measured - 1
		t.AddRow(r, rounds, lowerbound.TheoremBound(r), measured, eps, float64(r)*eps)
	}
	return t, nil
}

// E14Baselines compares the paper's algorithms against the classical
// baselines the introduction cites, plus the absorbing-MIS ablation.
func E14Baselines(quick bool) (*Table, error) {
	n := 1200
	if quick {
		n = 300
	}
	t := &Table{
		ID:      "E14",
		Title:   "Baselines: (Δ+1)/greedy vs (1+ε) algorithms (random chordal, ε=0.25)",
		Columns: []string{"algorithm", "objective", "value", "optimum", "ratio"},
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 6, AttachFull: 0.5}, 21)
	omega, err := chordal.CliqueNumber(g)
	if err != nil {
		return nil, err
	}
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		return nil, err
	}

	greedyColors := baseline.GreedyColoring(g)
	gUsed, err := verify.Coloring(g, greedyColors)
	if err != nil {
		return nil, err
	}
	t.AddRow("greedy coloring (Δ+1 heuristic)", "colors", gUsed, omega, float64(gUsed)/float64(omega))

	cc, err := core.ColorChordal(g, 0.25)
	if err != nil {
		return nil, err
	}
	used, err := verify.Coloring(g, cc.Colors)
	if err != nil {
		return nil, err
	}
	t.AddRow("paper Algorithm 1 (ε=0.25)", "colors", used, omega, float64(used)/float64(omega))

	randomized, _, err := baseline.JohanssonColoring(g, 5)
	if err != nil {
		return nil, err
	}
	rUsed, err := verify.Coloring(g, randomized)
	if err != nil {
		return nil, err
	}
	t.AddRow("randomized (Δ+1) trial coloring", "colors", rUsed, omega, float64(rUsed)/float64(omega))

	luby, _, err := baseline.LubyMIS(g, 3)
	if err != nil {
		return nil, err
	}
	t.AddRow("Luby maximal IS", "|I|", len(luby), alpha, float64(alpha)/float64(len(luby)))

	greedyIS := baseline.GreedyMIS(g)
	t.AddRow("greedy maximal IS", "|I|", len(greedyIS), alpha, float64(alpha)/float64(len(greedyIS)))

	mis, err := core.MISChordal(g, 0.25)
	if err != nil {
		return nil, err
	}
	t.AddRow("paper Algorithm 6 (ε=0.25)", "|I|", len(mis.Set), alpha, float64(alpha)/float64(len(mis.Set)))

	ablated, err := core.MISChordalWithOptions(g, 0.25, core.ChordalMISOptions{DisableAbsorbing: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("Algorithm 6, absorbing disabled (ablation)", "|I|", len(ablated.Set), alpha,
		float64(alpha)/float64(len(ablated.Set)))

	// Adversarial absorption workload: a forest of K4-hub spiders whose
	// arm heads have minimal IDs, so non-absorbing choices block the hubs.
	spiders := spiderForest(40)
	sAlpha, err := chordal.IndependenceNumber(spiders)
	if err != nil {
		return nil, err
	}
	sAbsorb, err := core.MISChordal(spiders, 0.45)
	if err != nil {
		return nil, err
	}
	sAblate, err := core.MISChordalWithOptions(spiders, 0.45, core.ChordalMISOptions{DisableAbsorbing: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("Algorithm 6 on spider forest", "|I|", len(sAbsorb.Set), sAlpha,
		float64(sAlpha)/float64(len(sAbsorb.Set)))
	t.AddRow("… absorbing disabled (ablation)", "|I|", len(sAblate.Set), sAlpha,
		float64(sAlpha)/float64(len(sAblate.Set)))
	return t, nil
}

// spiderForest builds `count` disjoint K4-hub spiders with three even
// arms each, the workload on which the absorbing design choice matters.
func spiderForest(count int) *graph.Graph {
	g := graph.New()
	next := graph.ID(0)
	hubBase := graph.ID(1 << 20)
	for s := 0; s < count; s++ {
		hub := []graph.ID{hubBase, hubBase + 1, hubBase + 2, hubBase + 3}
		hubBase += 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(hub[i], hub[j])
			}
		}
		sockets := [][3]graph.ID{
			{hub[0], hub[1], hub[2]}, {hub[0], hub[1], hub[3]}, {hub[0], hub[2], hub[3]},
		}
		for arm := 0; arm < 3; arm++ {
			head := next
			next++
			for _, u := range sockets[arm] {
				g.AddEdge(head, u)
			}
			prev := head
			for i := 1; i < 6; i++ {
				g.AddEdge(prev, next)
				prev = next
				next++
			}
		}
	}
	return g
}

// E15LocalViewCoherence verifies Lemma 2 at scale and runs the
// canonical-order ablation: with weight-only Kruskal, different nodes may
// assemble incompatible forests.
func E15LocalViewCoherence(quick bool) (*Table, error) {
	graphs := 20
	if quick {
		graphs = 5
	}
	t := &Table{
		ID:      "E15",
		Title:   "Lemma 2 at scale: local views vs global clique forest",
		Columns: []string{"graphs", "views checked", "consistent", "canonical-order ablation: forests unique"},
		Notes: []string{
			"Ablation: resolving weight ties arbitrarily (weight-only Kruskal) yields multiple valid forests, so nodes could not agree; the canonical order makes the forest unique.",
		},
	}
	views, consistent := 0, 0
	ambiguous := 0
	for s := 0; s < graphs; s++ {
		g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, int64(s))
		f, err := cliquetree.New(g)
		if err != nil {
			return nil, err
		}
		for _, v := range g.Nodes() {
			if int(v)%7 != 0 {
				continue
			}
			for _, d := range []int{3, 5} {
				ball := g.InducedSubgraph(g.Ball(v, d))
				lv, err := cliquetree.ComputeLocalView(ball, v, d)
				if err != nil {
					return nil, err
				}
				views++
				if lv.ConsistentWith(f) == nil {
					consistent++
				}
			}
		}
		// Ablation: does the WCIG have weight ties that make the
		// weight-only forest non-unique? Count graphs where a second
		// maximum-weight forest exists (detected via tie edges across a
		// cut chosen by Kruskal).
		cliques, err := chordal.MaximalCliques(g)
		if err != nil {
			return nil, err
		}
		if hasAlternativeForest(cliques) {
			ambiguous++
		}
	}
	t.AddRow(graphs, views, consistent, graphs-ambiguous)
	t.Notes = append(t.Notes,
		"Graphs where weight-only Kruskal is ambiguous: "+strconv.Itoa(ambiguous)+" of "+strconv.Itoa(graphs)+".")
	if consistent != views {
		t.Notes = append(t.Notes, "WARNING: inconsistent views found!")
	}
	return t, nil
}

// hasAlternativeForest reports whether the weight-only maximum spanning
// forest of W_G is non-unique: by the exchange property this happens iff
// some non-forest edge's weight equals the minimum weight on the forest
// path between its endpoints.
func hasAlternativeForest(cliques []graph.Set) bool {
	edges := cliquetree.WCIG(cliques)
	forest := cliquetree.MaxWeightSpanningForest(cliques, edges)
	inForest := make(map[[2]int]bool, len(forest))
	adj := make(map[int][][2]int) // vertex -> (neighbor, weight)
	weightOf := make(map[[2]int]int, len(edges))
	for _, e := range edges {
		weightOf[[2]int{e.A, e.B}] = e.Weight
	}
	for _, fe := range forest {
		inForest[fe] = true
		w := weightOf[fe]
		adj[fe[0]] = append(adj[fe[0]], [2]int{fe[1], w})
		adj[fe[1]] = append(adj[fe[1]], [2]int{fe[0], w})
	}
	// For each non-forest edge, find the min edge weight on the forest
	// path between its endpoints (DFS; forests are small here).
	minOnPath := func(a, b int) (int, bool) {
		type frame struct{ v, minW int }
		visited := map[int]bool{a: true}
		stack := []frame{{a, 1 << 30}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.v == b {
				return f.minW, true
			}
			for _, nb := range adj[f.v] {
				if !visited[nb[0]] {
					visited[nb[0]] = true
					m := f.minW
					if nb[1] < m {
						m = nb[1]
					}
					stack = append(stack, frame{nb[0], m})
				}
			}
		}
		return 0, false
	}
	for _, e := range edges {
		if inForest[[2]int{e.A, e.B}] {
			continue
		}
		if m, ok := minOnPath(e.A, e.B); ok && e.Weight >= m {
			return true
		}
	}
	return false
}
