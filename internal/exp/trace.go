package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/peel"
)

// E18RoundTrace runs the full distributed coloring pipeline on the
// paper's Figure-1 graph under an obs.Collector and tables the per-phase
// round structure: every pruning iteration's flood and the correction
// choreography, with rounds, traffic, and the inbox high-water mark.
// Only schedule-independent columns appear (wall timings go to the JSONL
// trace via `cmd/experiments -trace`), so the table is byte-reproducible.
func E18RoundTrace(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "round-resolved phase trace of distributed MVC (Figure-1 graph, ε=0.5)",
		Columns: []string{"phase", "engine runs", "rounds", "messages", "volume", "max inbox"},
	}
	c := obs.NewCollector()
	if _, err := core.ColorChordalDistributedObserved(figures.Fig1(), 0.5, c, nil); err != nil {
		return nil, fmt.Errorf("E18: %w", err)
	}
	for _, ph := range c.Phases() {
		t.AddRow(ph.Phase, ph.Runs, ph.Rounds, ph.Messages, ph.Volume, ph.MaxInbox)
	}
	t.Notes = append(t.Notes,
		"Rounds count engine steps (the Init step included); messages/volume are per-phase totals.",
		"Wall and per-shard busy times are deliberately absent: they live in the JSONL trace (`-trace`), keeping this table deterministic.")
	return t, nil
}

// E19PeelTrace tables the peeling process layer by layer on a random
// chordal graph: how many pendant vs internal paths each iteration
// peels, how many nodes leave, and how fast the clique forest shrinks
// (the Lemma 6 geometric decay made visible).
func E19PeelTrace(quick bool) (*Table, error) {
	n := 2000
	if quick {
		n = 400
	}
	t := &Table{
		ID:      "E19",
		Title:   fmt.Sprintf("per-layer peel trace (random chordal, n=%d, threshold 9)", n),
		Columns: []string{"layer", "pendant paths", "internal paths", "nodes peeled", "forest cliques", "remaining"},
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 11)
	c := obs.NewCollector()
	if _, err := peel.Run(g, peel.Options{InternalDiameter: 9, Trace: c.PeelTrace()}); err != nil {
		return nil, fmt.Errorf("E19: %w", err)
	}
	for _, ev := range c.Events() {
		t.AddRow(ev.Round, ev.PendantPaths, ev.InternalPaths, ev.NodesPeeled, ev.ForestCliques, ev.Remaining)
	}
	t.Notes = append(t.Notes,
		"Every column is a pure function of (graph, threshold): the peel is deterministic, so this table never drifts.")
	return t, nil
}

// TraceRun is the workload behind `cmd/experiments -trace`: it streams a
// JSONL trace (one event per engine round, plus one per peel layer) for
// (1) the full distributed coloring of the paper's Figure-1 graph and
// (2) flooding plus peeling on a 10^4-node random chordal graph (10^3
// under -quick). The same run is what the profiling flags are expected
// to wrap, so traces and profiles describe one workload.
func TraceRun(w io.Writer, quick bool) error {
	c := obs.NewCollector()
	c.SetTrace(w)
	return TraceRunCollector(c, quick)
}

// TraceRunCollector runs the trace workload under a caller-configured
// Collector — `cmd/experiments -metrics` passes one with mem snapshots
// enabled and renders the aggregate report afterwards. It finishes the
// collector (closing the last phase span), so the caller must not reuse
// it for further runs.
func TraceRunCollector(c *obs.Collector, quick bool) error {
	return TraceRunCollectorPart(c, quick, nil)
}

// Partitioner supplies a fresh dist.Partition for a graph snapshot —
// typically (*wire.Cluster).Partition, which re-sessions the shard-host
// fleet for each graph a workload visits. It lives here as a plain
// callback so this package never imports the transport.
type Partitioner func(ix *graph.Indexed) (*dist.Partition, error)

// TraceRunCollectorPart is TraceRunCollector with the message-passing
// stages optionally executed on partitions supplied by partFor (nil =
// the in-process engine). The workload visits two graphs, so a
// cluster-backed partitioner re-sessions its fleet between them; the
// peel stage is centralized either way.
func TraceRunCollectorPart(c *obs.Collector, quick bool, partFor Partitioner) error {
	// Figure-1 graph: the pruning floods label themselves prune-iNN and
	// the correction choreography labels itself "correction".
	c.SetPhase("fig1")
	fig := figures.Fig1()
	if partFor == nil {
		if _, err := core.ColorChordalDistributedObserved(fig, 0.5, c, c.PeelTrace()); err != nil {
			return fmt.Errorf("trace fig1: %w", err)
		}
	} else {
		part, err := partFor(graph.NewIndexed(fig))
		if err != nil {
			return fmt.Errorf("trace fig1: %w", err)
		}
		if _, err := core.ColorChordalDistributedFaultyPart(fig, 0.5, c, c.PeelTrace(), nil, part); err != nil {
			return fmt.Errorf("trace fig1: %w", err)
		}
	}

	n := 10000
	if quick {
		n = 1000
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 11)
	ix := graph.NewIndexed(g)
	c.SetPhase(fmt.Sprintf("flood-n%d", n))
	if partFor == nil {
		if _, _, err := dist.CollectBallsIndexedObserved(ix, 4, nil, c); err != nil {
			return fmt.Errorf("trace flood: %w", err)
		}
	} else {
		part, err := partFor(ix)
		if err != nil {
			return fmt.Errorf("trace flood: %w", err)
		}
		if _, _, err := dist.CollectBallsByIndexPart(part, ix, 4, nil, c, nil); err != nil {
			return fmt.Errorf("trace flood: %w", err)
		}
	}
	c.SetPhase(fmt.Sprintf("peel-n%d", n))
	if _, err := peel.Run(g, peel.Options{InternalDiameter: 9, Trace: c.PeelTrace(), Observer: c}); err != nil {
		return fmt.Errorf("trace peel: %w", err)
	}
	return c.Finish()
}
