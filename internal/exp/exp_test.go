package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllQuick runs every experiment in quick mode end-to-end: the
// harness is itself part of the deliverable, so it must stay runnable.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	var buf bytes.Buffer
	if err := All(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
		"E18", "E19"} {
		if !strings.Contains(out, "### "+id+" ") {
			t.Errorf("output missing experiment %s", id)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("a figure-fidelity check failed:\n%s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("a coherence check failed:\n%s", out)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", true)
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "### X — demo") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, "2.5000") {
		t.Fatalf("float formatting missing: %s", out)
	}
}
