// Package exp is the experiment harness: one function per experiment in
// DESIGN.md's per-experiment index (E1–E21). Each returns a printable
// table; cmd/experiments runs them all and regenerates the data recorded
// in EXPERIMENTS.md, and bench_test.go exposes one benchmark per table.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table in a GitHub-markdown-compatible layout.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n### %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n%s\n", n)
	}
}

// All runs every experiment in order. Expensive experiments honour the
// quick flag by shrinking their sweeps.
func All(w io.Writer, quick bool) error {
	runs := []func(bool) (*Table, error){
		E1Fig12, E2Fig34, E3Fig56,
		E4PruningLayers, E5MVCApproximation, E6MVCRounds,
		E7ColIntGraph, E8Recoloring,
		E9IntervalMIS, E10IntervalMISRounds,
		E11ChordalMIS, E12ChordalMISRounds,
		E13LowerBound, E14Baselines, E15LocalViewCoherence,
		E16BeyondChordal, E17MessageComplexity,
		E18RoundTrace, E19PeelTrace,
		E20FaultMatrix, E21RetransFlood,
	}
	for _, run := range runs {
		tbl, err := run(quick)
		if err != nil {
			return err
		}
		tbl.Fprint(w)
	}
	return nil
}
