package exp

import (
	"fmt"
	"sort"

	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/figures"
	"repro/internal/graph"
	"repro/internal/peel"
)

// E1Fig12 reproduces Figures 1–2: the 23-node example graph, its weighted
// clique intersection graph, and its canonical clique forest.
func E1Fig12(bool) (*Table, error) {
	g := figures.Fig1()
	cliques, err := chordal.MaximalCliques(g)
	if err != nil {
		return nil, err
	}
	f, err := cliquetree.New(g)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Figures 1–2: example graph, W_G, clique forest",
		Columns: []string{"quantity", "paper", "measured", "match"},
	}
	match := func(name string, paper, measured any) {
		t.AddRow(name, paper, measured, matchWord(fmt.Sprint(paper) == fmt.Sprint(measured)))
	}
	match("nodes", 23, g.NumNodes())
	match("maximal cliques", 15, len(cliques))
	match("forest edges", 14, len(f.Edges()))
	// Every clique matches a paper label.
	labelled := 0
	for i := 0; i < f.NumVertices(); i++ {
		for _, want := range figures.Fig1CliqueNames {
			if f.Clique(i).Equal(want) {
				labelled++
				break
			}
		}
	}
	match("cliques matching Fig 2 labels", 15, labelled)
	// The six weight-2 W_G edges of Fig 2 are forest edges.
	weight2 := [][2]string{{"C1", "C2"}, {"C2", "C5"}, {"C3", "C4"}, {"C6", "C7"}, {"C8", "C9"}, {"C10", "C11"}}
	have := 0
	idx := func(name string) int {
		for i := 0; i < f.NumVertices(); i++ {
			if f.Clique(i).Equal(figures.Fig1CliqueNames[name]) {
				return i
			}
		}
		return -1
	}
	for _, e := range weight2 {
		if f.HasEdge(idx(e[0]), idx(e[1])) {
			have++
		}
	}
	match("weight-2 forest edges", 6, have)
	subtreesOK := 0
	for _, v := range g.Nodes() {
		if f.SubtreeConnected(v) {
			subtreesOK++
		}
	}
	match("connected subtrees T(v)", 23, subtreesOK)
	return t, nil
}

// E2Fig34 reproduces Figures 3–4: node 10's local view of the clique
// forest from its distance-3 neighborhood.
func E2Fig34(bool) (*Table, error) {
	g := figures.Fig1()
	ball := g.InducedSubgraph(g.Ball(figures.Fig3Center, figures.Fig3Radius))
	lv, err := cliquetree.ComputeLocalView(ball, figures.Fig3Center, figures.Fig3Radius)
	if err != nil {
		return nil, err
	}
	f, err := cliquetree.New(g)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "Figures 3–4: local view of node 10 (d = 3)",
		Columns: []string{"quantity", "paper", "measured", "match"},
	}
	t.AddRow("view cliques", len(figures.Fig4ViewCliques), len(lv.Cliques),
		matchWord(len(lv.Cliques) == len(figures.Fig4ViewCliques)))
	found := 0
	for _, name := range figures.Fig4ViewCliques {
		if lv.FindClique(figures.Fig1CliqueNames[name]) != -1 {
			found++
		}
	}
	t.AddRow("named cliques present (C1,C2,C3,C5..C9)", len(figures.Fig4ViewCliques), found,
		matchWord(found == len(figures.Fig4ViewCliques)))
	consistent := lv.ConsistentWith(f) == nil
	t.AddRow("view ⊆ global forest (Lemma 2)", "yes", matchWord(consistent), matchWord(consistent))
	t.AddRow("view edges (Fig 4 bold subtree)", 7, len(lv.Edges), matchWord(len(lv.Edges) == 7))
	return t, nil
}

// E3Fig56 reproduces Figures 5–6: peeling the internal path C6..C10
// removes exactly the nodes {9..14}, and the remaining forest is the
// clique forest of the remaining graph (Lemma 3).
func E3Fig56(bool) (*Table, error) {
	g := figures.Fig1()
	res, err := peel.Run(g, peel.Options{InternalDiameter: 4})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   "Figures 5–6: peeling the internal path C6..C10",
		Columns: []string{"quantity", "paper", "measured", "match"},
	}
	var internalNodes graph.Set
	internalCliques := 0
	for _, rec := range res.Layers[0].Paths {
		if rec.Kind == cliquetree.Internal {
			internalNodes = rec.Nodes
			internalCliques = len(rec.Cliques)
		}
	}
	t.AddRow("peeled internal-path nodes", fmt.Sprint(figures.Fig5PeeledNodes), fmt.Sprint(internalNodes),
		matchWord(internalNodes.Equal(figures.Fig5PeeledNodes)))
	t.AddRow("internal path length (cliques)", len(figures.Fig5Path), internalCliques,
		matchWord(internalCliques == len(figures.Fig5Path)))
	// Lemma 3: the forest after removal is the clique forest of G − U:
	// recompute from scratch and compare clique sets.
	remaining := g.Clone()
	remaining.RemoveNodes(res.Layers[0].Nodes)
	fresh, err := cliquetree.New(remaining)
	if err != nil {
		return nil, err
	}
	same := len(res.Forests) > 1 && sameCliqueSets(res.Forests[1], fresh)
	t.AddRow("T − P = clique forest of G−U (Lemma 3)", "yes", matchWord(same), matchWord(same))
	return t, nil
}

// matchWord renders a fidelity check so that failures stand out in the
// tables and in TestAllQuick.
func matchWord(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

func sameCliqueSets(a, b *cliquetree.Forest) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	key := func(f *cliquetree.Forest) []string {
		out := make([]string, f.NumVertices())
		for i := 0; i < f.NumVertices(); i++ {
			out[i] = fmt.Sprint(f.Clique(i))
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
