package exp

import (
	"fmt"
	"math"

	"repro/internal/chordal"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/peel"
	"repro/internal/verify"
)

// E4PruningLayers measures the pruning lemma (Lemma 6 / Corollary 1):
// the number of peeling layers against ⌈log₂ n⌉, with the pendant-only
// ablation alongside.
func E4PruningLayers(quick bool) (*Table, error) {
	sizes := []int{256, 1024, 4096, 16384}
	depths := []int{3, 5, 7}
	if quick {
		sizes = []int{256, 1024}
		depths = []int{3, 5}
	}
	t := &Table{
		ID:      "E4",
		Title:   "Lemma 6: peeling layers vs ⌈log n⌉ (threshold 12 = 3k for k=4)",
		Columns: []string{"workload", "n", "ceil(log2 n)", "layers", "layers (pendant-only ablation)"},
		Notes: []string{
			"Paper: at most ⌈log n⌉ iterations.",
			"Ablation: on hub trees (binary trees of K4 hubs joined by 40-node chains), " +
				"pendant-only peeling works inward one level per iteration while " +
				"internal-path peeling removes every chain at once — the design choice " +
				"internal-path peeling embodies.",
		},
	}
	for _, n := range sizes {
		g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, int64(n))
		full, err := peel.Run(g, peel.Options{InternalDiameter: 12})
		if err != nil {
			return nil, err
		}
		ablated, err := peel.Run(g, peel.Options{InternalDiameter: 0})
		if err != nil {
			return nil, err
		}
		t.AddRow("random chordal", n, int(math.Ceil(math.Log2(float64(n)))), len(full.Layers), len(ablated.Layers))
	}
	for _, depth := range depths {
		g := gen.HubTree(depth, 40)
		n := g.NumNodes()
		full, err := peel.Run(g, peel.Options{InternalDiameter: 12})
		if err != nil {
			return nil, err
		}
		ablated, err := peel.Run(g, peel.Options{InternalDiameter: 0})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("hub tree depth %d", depth), n,
			int(math.Ceil(math.Log2(float64(n)))), len(full.Layers), len(ablated.Layers))
	}
	return t, nil
}

// E5MVCApproximation measures Theorem 3: colors used by Algorithm 1
// against the bound (1+ε)χ across ε.
func E5MVCApproximation(quick bool) (*Table, error) {
	n := 600
	if quick {
		n = 200
	}
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 3: MVC approximation vs ε",
		Columns: []string{"workload", "eps", "k", "χ=ω", "colors", "bound ⌊(1+1/k)χ⌋+1", "ratio", "1+eps"},
		Notes: []string{
			"Guarantee requires ε ≥ 2/χ; ratio = colors/χ must stay ≤ bound/χ.",
			"The path workload (χ=2) shows why: the +1 slack costs 50% when χ is tiny — the regime Theorem 3 excludes for small ε.",
		},
	}
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"random chordal", gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 8, AttachFull: 0.6}, 7)},
		{"3-tree (χ=4)", gen.KTree(n, 3, 7)},
		{"path (χ=2)", gen.Path(n)},
	}
	for _, w := range workloads {
		omega, err := chordal.CliqueNumber(w.g)
		if err != nil {
			return nil, err
		}
		for _, eps := range []float64{1, 0.5, 0.25, 0.125} {
			cc, err := core.ColorChordal(w.g, eps)
			if err != nil {
				return nil, err
			}
			used, err := verify.Coloring(w.g, cc.Colors)
			if err != nil {
				return nil, err
			}
			t.AddRow(w.name, eps, cc.K, omega, used, cc.Palette, float64(used)/float64(omega), 1+eps)
		}
	}
	return t, nil
}

// E6MVCRounds measures Theorem 4: LOCAL rounds of the distributed MVC
// against (1/ε)·log n.
func E6MVCRounds(quick bool) (*Table, error) {
	sizes := []int{64, 128, 256, 512, 1024}
	if quick {
		sizes = []int{64, 128}
	}
	const eps = 0.7
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 4: distributed MVC rounds vs n (ε=0.7)",
		Columns: []string{"n", "layers", "rounds", "rounds/log2(n)", "colors", "palette"},
		Notes:   []string{"Theory: O((1/ε)·log n) rounds; rounds/log n should stay near-constant."},
	}
	for _, n := range sizes {
		g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, int64(3*n))
		cc, err := core.ColorChordalDistributed(g, eps)
		if err != nil {
			return nil, err
		}
		used, err := verify.Coloring(g, cc.Colors)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, cc.Layers, cc.Rounds, float64(cc.Rounds)/math.Log2(float64(n)), used, cc.Palette)
	}
	return t, nil
}

// E7ColIntGraph measures the reimplemented Halldórsson–Konrad interval
// coloring: quality ≤ ⌊(1+1/k)χ⌋+1 and round growth with n.
func E7ColIntGraph(quick bool) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	if quick {
		sizes = []int{256, 1024}
	}
	t := &Table{
		ID:      "E7",
		Title:   "ColIntGraph [21]: interval coloring quality and rounds (k=4)",
		Columns: []string{"n", "χ", "colors", "bound", "blocks", "rounds"},
		Notes:   []string{"Rounds contain the Linial log* component plus Θ(k) block work; growth in n is ~log*."},
	}
	for _, n := range sizes {
		ivs := gen.RandomIntervals(n, float64(n)/8, 4, int64(n))
		g := gen.FromIntervals(ivs)
		path := interval.CliquePathFromModel(ivs)
		omega, err := chordal.CliqueNumber(g)
		if err != nil {
			return nil, err
		}
		ic, err := core.ColIntGraph(g, path, 4, n)
		if err != nil {
			return nil, err
		}
		if _, err := verify.Coloring(g, ic.Colors); err != nil {
			return nil, err
		}
		t.AddRow(n, omega, ic.ColorsUsed, ic.Palette, ic.Blocks, ic.Rounds)
	}
	return t, nil
}

// E8Recoloring stress-tests the Lemma 9/10 engine: random interval strips
// with both boundary cliques fixed must always extend within the palette.
func E8Recoloring(quick bool) (*Table, error) {
	trials := 200
	if quick {
		trials = 50
	}
	t := &Table{
		ID:      "E8",
		Title:   "Lemmas 9–10: recoloring engine success rate",
		Columns: []string{"k", "trials", "successes", "max colors", "palette bound respected"},
	}
	for _, k := range []int{3, 5, 8} {
		successes, maxUsed, bound := 0, 0, true
		for trial := 0; trial < trials; trial++ {
			ivs := gen.RandomIntervals(80, 25, 3, int64(trial*31+k))
			g := gen.FromIntervals(ivs)
			path := interval.CliquePathFromModel(ivs)
			if len(path) < 3 {
				successes++
				continue
			}
			omega, err := chordal.CliqueNumber(g)
			if err != nil {
				return nil, err
			}
			palette := (k+1)*omega/k + 1
			// Fix both end cliques with an optimal coloring's values.
			opt, err := chordal.OptimalColoring(g)
			if err != nil {
				return nil, err
			}
			fixed := make(map[graph.ID]int)
			for _, v := range path[0] {
				fixed[v] = opt[v]
			}
			for _, v := range path[len(path)-1] {
				if _, dup := fixed[v]; !dup {
					fixed[v] = opt[v]%palette + 1
					// Perturb the far end so the strips genuinely conflict;
					// keep the end clique itself proper.
				}
			}
			if !properOn(g, path[len(path)-1], fixed) || !properOn(g, path[0], fixed) {
				successes++ // skip degenerate perturbations
				continue
			}
			colors, err := core.ExtendColoring(g, path, fixed, palette)
			if err != nil {
				continue
			}
			used, err := verify.Coloring(g, colors)
			if err != nil {
				return nil, err
			}
			successes++
			if used > maxUsed {
				maxUsed = used
			}
			if used > palette {
				bound = false
			}
		}
		t.AddRow(k, trials, successes, maxUsed, matchWord(bound))
	}
	return t, nil
}

func properOn(g *graph.Graph, clique graph.Set, colors map[graph.ID]int) bool {
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			if colors[clique[i]] == colors[clique[j]] {
				return false
			}
		}
	}
	return true
}
