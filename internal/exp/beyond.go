package exp

import (
	"math/rand"

	"repro/internal/chordal"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// E16BeyondChordal explores the paper's concluding question — handling
// graphs with longer induced cycles — via triangulation: starting from a
// chordal graph, random non-chordal edges are injected, the result is
// chordalized by minimum-degree fill-in, and Algorithm 1 colors the
// triangulation. The table tracks how the fill and the color count grow
// with the distance from chordality.
func E16BeyondChordal(quick bool) (*Table, error) {
	n := 400
	if quick {
		n = 150
	}
	t := &Table{
		ID:    "E16",
		Title: "Beyond chordal (Section 9): triangulate-then-color on near-chordal graphs",
		Columns: []string{"extra edges", "chordal?", "fill edges", "ω(G)", "χ(tri)",
			"colors (Alg 1 on tri, ε=0.5)", "colors/ω(G)"},
		Notes: []string{
			"ω(G) lower-bounds χ(G); colors/ω(G) bounds the end-to-end approximation of the pipeline.",
			"The paper leaves k-chordal graphs open; triangulation is the natural baseline answer.",
		},
	}
	base := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 33)
	rng := rand.New(rand.NewSource(77))
	g := base.Clone()
	nodes := g.Nodes()
	injected := 0
	for _, target := range []int{0, 5, 20, 80} {
		for injected < target {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				injected++
			}
		}
		tri, fill := chordal.FillIn(g)
		triOmega, err := chordal.CliqueNumber(tri)
		if err != nil {
			return nil, err
		}
		cc, err := core.ColorChordal(tri, 0.5)
		if err != nil {
			return nil, err
		}
		// The triangulation's coloring must be legal for g itself.
		used, err := verify.Coloring(g, cc.Colors)
		if err != nil {
			return nil, err
		}
		omegaLB := cliqueLowerBound(g)
		t.AddRow(injected, yesNo(chordal.IsChordal(g)), len(fill), omegaLB, triOmega,
			used, float64(used)/float64(omegaLB))
	}
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// cliqueLowerBound returns a greedy clique lower bound for ω(g) (exact ω
// is NP-hard on general graphs): grow a clique greedily from each vertex.
func cliqueLowerBound(g *graph.Graph) int {
	best := 0
	for _, v := range g.Nodes() {
		clique := graph.Set{v}
		for _, u := range g.Neighbors(v) {
			ok := true
			for _, w := range clique {
				if !g.HasEdge(u, w) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, u)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}
