package exp

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceRunSchema runs the -trace workload in quick mode and checks
// the JSONL output line by line: every line is a JSON object of the
// stable schema, round events carry the engine fields, layer events the
// peel fields, kernel events the v3 per-worker spans, and within each
// (phase, run) the round indices are the contiguous sequence 0..R —
// one event per engine round, none missing.
func TestTraceRunSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("trace workload is slow")
	}
	var buf bytes.Buffer
	if err := TraceRun(&buf, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short trace: %d lines", len(lines))
	}
	rounds, layers, kernels, phases := 0, 0, 0, 0
	lastRound := make(map[string]int) // "phase/run" -> last round index
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: invalid JSON: %v\n%s", i, err, line)
		}
		if ev.V != obs.SchemaVersion {
			t.Fatalf("line %d: schema version %d, want %d", i, ev.V, obs.SchemaVersion)
		}
		switch ev.Kind {
		case obs.KindRound:
			rounds++
			if ev.Nodes <= 0 {
				t.Errorf("line %d: round event with nodes=%d", i, ev.Nodes)
			}
			if ev.WallNS <= 0 {
				t.Errorf("line %d: round event with wall_ns=%d", i, ev.WallNS)
			}
			runKey := ev.Phase + "#" + strconv.Itoa(ev.Run)
			if prev, ok := lastRound[runKey]; ok {
				if ev.Round != prev+1 {
					t.Errorf("line %d: phase %s run %d jumps from round %d to %d", i, ev.Phase, ev.Run, prev, ev.Round)
				}
			} else if ev.Round != 0 {
				t.Errorf("line %d: phase %s run %d starts at round %d, want 0", i, ev.Phase, ev.Run, ev.Round)
			}
			lastRound[runKey] = ev.Round
		case obs.KindLayer:
			layers++
			if ev.NodesPeeled <= 0 {
				t.Errorf("line %d: layer event peeled %d nodes", i, ev.NodesPeeled)
			}
		case obs.KindKernel:
			kernels++
			if ev.Kernel == "" || ev.Shards < 1 {
				t.Errorf("line %d: kernel event %q with shards=%d", i, ev.Kernel, ev.Shards)
			}
			if len(ev.BusyNS) != ev.Shards || len(ev.Items) != ev.Shards {
				t.Errorf("line %d: kernel %q busy/items have %d/%d entries, want %d",
					i, ev.Kernel, len(ev.BusyNS), len(ev.Items), ev.Shards)
			}
		case obs.KindPhase:
			phases++
			if ev.WallNS <= 0 {
				t.Errorf("line %d: phase span with wall_ns=%d", i, ev.WallNS)
			}
		case obs.KindMem:
			// Opt-in; TraceRun does not enable mem snapshots.
			t.Errorf("line %d: mem event without SetMemStats", i)
		default:
			t.Errorf("line %d: unknown event kind %q", i, ev.Kind)
		}
	}
	if rounds == 0 || layers == 0 || kernels == 0 || phases == 0 {
		t.Fatalf("trace has %d round, %d layer, %d kernel, %d phase events; want all four kinds",
			rounds, layers, kernels, phases)
	}
	// The workload's phases all appear.
	out := buf.String()
	for _, phase := range []string{"prune-i01", "correction", "flood-n1000", "peel-n1000"} {
		if !strings.Contains(out, `"phase":"`+phase+`"`) {
			t.Errorf("trace missing phase %q", phase)
		}
	}
}

// TestTraceTablesDeterministic regenerates E18 and E19 twice and
// requires byte-identical tables: the columns deliberately exclude every
// schedule- or hardware-dependent quantity.
func TestTraceTablesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trace tables are slow")
	}
	for _, run := range []func(bool) (*Table, error){E18RoundTrace, E19PeelTrace} {
		var a, b bytes.Buffer
		t1, err := run(true)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := run(true)
		if err != nil {
			t.Fatal(err)
		}
		t1.Fprint(&a)
		t2.Fprint(&b)
		if a.String() != b.String() {
			t.Errorf("%s not deterministic:\n%s\nvs\n%s", t1.ID, a.String(), b.String())
		}
	}
}
