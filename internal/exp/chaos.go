package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// faultTally is a minimal RoundObserver whose only job is to aggregate
// the engine's per-round FaultStats across every engine run of a
// pipeline, so experiment tables can report fault counters without the
// full obs.Collector machinery.
type faultTally struct {
	dropped, duplicated, deadLetters, stall int
}

func (t *faultTally) RunStart(nodes, edges int)    {}
func (t *faultTally) RoundStart(round, shards int) {}
func (t *faultTally) ShardStart(shard int)         {}
func (t *faultTally) ShardEnd(shard int)           {}
func (t *faultTally) RoundEnd(dist.RoundStats)     {}
func (t *faultTally) RunEnd(rounds int)            {}

func (t *faultTally) FaultRound(fs dist.FaultStats) {
	t.dropped += fs.Dropped
	t.duplicated += fs.Duplicated
	t.deadLetters += fs.DeadLetters
	t.stall += fs.Stall
}

// classifyFaultErr maps a pipeline error under fault injection to a
// stable outcome label, so the E20 table stays byte-reproducible while
// still distinguishing the detection paths.
func classifyFaultErr(err error) string {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "crashed"):
		return "crash reported"
	case strings.Contains(msg, "Lemma 12") || strings.Contains(msg, "divergence"):
		return "divergence detected"
	case strings.Contains(msg, "peeled nothing") || strings.Contains(msg, "never decided"):
		return "corruption detected"
	case strings.Contains(msg, "did not terminate") || strings.Contains(msg, "never finalized"):
		return "stall detected"
	default:
		return "error"
	}
}

// E20FaultMatrix runs the full distributed coloring pipeline on the
// paper's Figure-1 graph under one fault scenario per row and tables
// what the contract promises: duplication and per-edge delay are
// absorbed (the coloring and round count are identical to the fault-free
// run, with only the fault counters betraying that anything happened),
// while message loss and crashes — which the plain flooding protocol
// cannot survive — surface as clean diagnosable errors, never as a
// silently wrong coloring.
func E20FaultMatrix(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E20",
		Title:   "fault-injection matrix for distributed MVC (Figure-1 graph, ε=0.5)",
		Columns: []string{"scenario", "outcome", "colors", "rounds", "dropped", "duplicated", "stall"},
	}
	g := figures.Fig1()
	want, err := core.ColorChordalDistributed(g, 0.5)
	if err != nil {
		return nil, fmt.Errorf("E20 baseline: %w", err)
	}
	scenarios := []struct {
		name string
		f    *dist.Faults
	}{
		{"fault-free", nil},
		{"dup p=0.30", &dist.Faults{Plan: fault.Plan{Seed: 21, Dup: 0.3}}},
		{"delay ≤2", &dist.Faults{Plan: fault.Plan{Seed: 21, MaxDelay: 2}}},
		{"dup+delay", &dist.Faults{Plan: fault.Plan{Seed: 21, Dup: 0.3, MaxDelay: 2}}},
		{"drop p=0.30", &dist.Faults{Plan: fault.Plan{Seed: 2, Drop: 0.3}}},
		{"crash 7@2", &dist.Faults{Crash: map[graph.ID]int{7: 2}}},
	}
	for _, sc := range scenarios {
		tally := &faultTally{}
		got, err := core.ColorChordalDistributedFaulty(g, 0.5, tally, nil, sc.f)
		if err != nil {
			t.AddRow(sc.name, classifyFaultErr(err), "—", "—", tally.dropped, tally.duplicated, tally.stall)
			continue
		}
		outcome := "identical"
		if got.ColorsUsed != want.ColorsUsed || got.Rounds != want.Rounds {
			outcome = "DIVERGED (undetected)"
		} else {
			for v, c := range want.Colors {
				if got.Colors[v] != c {
					outcome = "DIVERGED (undetected)"
					break
				}
			}
		}
		t.AddRow(sc.name, outcome, got.ColorsUsed, got.Rounds, tally.dropped, tally.duplicated, tally.stall)
	}
	t.Notes = append(t.Notes,
		"The fault schedule is a pure function of (seed, round, sender, queue position), so every cell is reproducible.",
		"\"stall\" is the summed per-round maximum link delay: the round-synchronous model absorbs delay, it never reorders.",
		"Drops corrupt the pruning floods and are caught by the Lemma-12 cross-check or the prune's progress guard; crashes are reported by the engine itself.")
	return t, nil
}

// E21RetransFlood measures the retransmitting flood under message loss:
// CollectBallsRetrans must reconstruct exactly the knowledge the plain
// lossless flood gathers, paying only extra rounds and retransmission
// traffic. Extra rounds are counted against the protocol's own
// fault-free run (the p=0 row).
func E21RetransFlood(quick bool) (*Table, error) {
	n := 800
	if quick {
		n = 200
	}
	const radius, budget = 3, 200
	t := &Table{
		ID:      "E21",
		Title:   fmt.Sprintf("retransmitting flood under message loss (random chordal, n=%d, radius %d)", n, radius),
		Columns: []string{"drop p", "rounds", "extra rounds", "messages", "dropped", "knowledge"},
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 29)
	want, _, err := dist.CollectBallsStats(g, radius, nil)
	if err != nil {
		return nil, fmt.Errorf("E21 baseline: %w", err)
	}
	cleanRounds := 0
	for i, p := range []float64{0, 0.1, 0.3} {
		var f *dist.Faults
		if p > 0 {
			f = &dist.Faults{Plan: fault.Plan{Seed: 5, Drop: p}}
		}
		know, res, err := dist.CollectBallsRetrans(g, radius, budget, nil, f, nil)
		if err != nil {
			return nil, fmt.Errorf("E21 drop=%.1f: %w", p, err)
		}
		if i == 0 {
			cleanRounds = res.Rounds
		}
		match := "exact"
		for v, w := range want {
			k := know[v]
			if k.Size() != w.Size() {
				match = "DIVERGED"
				break
			}
			ok := true
			for _, u := range g.Nodes() {
				dw, inW := w.DistOf(u)
				dk, inK := k.DistOf(u)
				if inW != inK || dw != dk {
					ok = false
					break
				}
			}
			if !ok {
				match = "DIVERGED"
				break
			}
		}
		t.AddRow(fmt.Sprintf("%.1f", p), res.Rounds, res.Rounds-cleanRounds, res.Messages, res.Dropped, match)
	}
	t.Notes = append(t.Notes,
		"\"knowledge\" compares every node's ball (membership and distances) against the lossless plain flood: the protocol trades rounds for exactness.",
		"Extra rounds count from the protocol's own fault-free run; even that pays an ack round trip over the plain flood's radius+1 schedule.")
	return t, nil
}

// FaultTraceRun is the workload behind `cmd/experiments -trace -faults`:
// it streams a JSONL round trace (schema v2, fault fields populated) for
// (1) the full distributed coloring of the Figure-1 graph under the
// absorbable projection of the plan — drop and crash stripped, because
// the plain floods have no retransmission and E20 already tables those
// error paths — and (2) a retransmitting flood on a random chordal
// graph under the full plan, message loss included, exercising the
// recovery machinery end to end.
func FaultTraceRun(w io.Writer, quick bool, f *dist.Faults) error {
	c := obs.NewCollector()
	c.SetTrace(w)
	return FaultTraceRunCollector(c, quick, f)
}

// FaultTraceRunCollector runs the fault-trace workload under a
// caller-configured Collector (see TraceRunCollector). It finishes the
// collector; the caller must not reuse it.
func FaultTraceRunCollector(c *obs.Collector, quick bool, f *dist.Faults) error {
	if f == nil {
		f = &dist.Faults{Plan: fault.Plan{Seed: 7, Drop: 0.2, Dup: 0.2, MaxDelay: 2}}
	}

	absorbable := &dist.Faults{Plan: f.Plan}
	absorbable.Plan.Drop = 0
	c.SetPhase("fig1-faulty")
	if _, err := core.ColorChordalDistributedFaulty(figures.Fig1(), 0.5, c, nil, absorbable); err != nil {
		return fmt.Errorf("fault trace fig1: %w", err)
	}

	n := 1000
	if quick {
		n = 300
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 11)
	c.SetPhase(fmt.Sprintf("retrans-n%d", n))
	if _, _, err := dist.CollectBallsRetrans(g, 3, 200, nil, f, c); err != nil {
		return fmt.Errorf("fault trace retrans: %w", err)
	}
	return c.Finish()
}

// defaultFaultSpec is the spec form of FaultTraceRunCollector's default
// plan; the partitioned workload needs the spec (not just the plan)
// because shard processes re-derive the schedule from it.
const defaultFaultSpec = "drop=0.2,dup=0.2,delay=2"

// FaultTraceRunCollectorPart is FaultTraceRunCollector with the
// message-passing stages executed on partitions supplied by partFor
// (nil = the in-process engine). Partitioned schedules must come from
// dist.ParseFaults — the spec is what ships to the shard processes — so
// the absorbable projection is built by stripping drop/crash from the
// spec and re-parsing under the same seed.
func FaultTraceRunCollectorPart(c *obs.Collector, quick bool, f *dist.Faults, partFor Partitioner) error {
	if partFor == nil {
		return FaultTraceRunCollector(c, quick, f)
	}
	spec, seed := defaultFaultSpec, uint64(7)
	if f != nil {
		if f.Spec == "" {
			return fmt.Errorf("fault trace: partitioned runs need a ParseFaults-built schedule")
		}
		spec, seed = f.Spec, f.Seed
	}
	full, err := dist.ParseFaults(spec, seed)
	if err != nil {
		return fmt.Errorf("fault trace: %w", err)
	}
	absorbable, err := dist.ParseFaults(stripDropCrash(spec), seed)
	if err != nil && !dist.IsInactive(err) {
		return fmt.Errorf("fault trace: %w", err)
	}

	c.SetPhase("fig1-faulty")
	fig := figures.Fig1()
	part, err := partFor(graph.NewIndexed(fig))
	if err != nil {
		return fmt.Errorf("fault trace fig1: %w", err)
	}
	if _, err := core.ColorChordalDistributedFaultyPart(fig, 0.5, c, nil, absorbable, part); err != nil {
		return fmt.Errorf("fault trace fig1: %w", err)
	}

	n := 1000
	if quick {
		n = 300
	}
	g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 11)
	ix := graph.NewIndexed(g)
	c.SetPhase(fmt.Sprintf("retrans-n%d", n))
	if part, err = partFor(ix); err != nil {
		return fmt.Errorf("fault trace retrans: %w", err)
	}
	if _, _, err := dist.CollectBallsRetransPart(part, ix, 3, 200, nil, c, full); err != nil {
		return fmt.Errorf("fault trace retrans: %w", err)
	}
	return c.Finish()
}

// stripDropCrash removes the drop= and crash= components of a fault
// spec, leaving its absorbable projection (dup/delay).
func stripDropCrash(spec string) string {
	var keep []string
	for _, comp := range strings.Split(spec, ",") {
		t := strings.TrimSpace(comp)
		if strings.HasPrefix(t, "drop=") || strings.HasPrefix(t, "crash=") {
			continue
		}
		if t != "" {
			keep = append(keep, t)
		}
	}
	return strings.Join(keep, ",")
}
