package exp

import (
	"repro/internal/core"
	"repro/internal/gen"
)

// E17MessageComplexity measures the communication the distributed pruning
// phase actually uses. The LOCAL model allows unbounded messages; the
// incremental full-information flooding our Algorithm 3 implementation
// uses sends each node record across each edge at most once per
// iteration, so volume ≈ Σ_v deg(v)·|ball_v| per iteration — this table
// makes that concrete.
func E17MessageComplexity(quick bool) (*Table, error) {
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{64, 128}
	}
	const k = 4 // ε ≈ 0.5
	t := &Table{
		ID:      "E17",
		Title:   "Message complexity of the distributed pruning phase (k=4)",
		Columns: []string{"n", "m", "iterations", "rounds", "messages", "volume (records)", "volume/(n·m)"},
		Notes: []string{
			"Volume counts NodeInfo records crossing edges; the incremental flood bound is iterations·2m·n.",
		},
	}
	for _, n := range sizes {
		g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, int64(5*n))
		out, err := core.DistributedPrune(g, k)
		if err != nil {
			return nil, err
		}
		m := g.NumEdges()
		t.AddRow(n, m, out.Iterations, out.Rounds, out.Messages, out.Volume,
			float64(out.Volume)/float64(n*m))
	}
	return t, nil
}
