package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestFaultMatrixOutcomes pins the contract the E20 table demonstrates:
// absorbable scenarios reproduce the baseline exactly, and drop/crash
// scenarios land on their detection paths — no scenario may reach the
// "DIVERGED (undetected)" escape hatch.
func TestFaultMatrixOutcomes(t *testing.T) {
	tbl, err := E20FaultMatrix(true)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"fault-free":  "identical",
		"dup p=0.30":  "identical",
		"delay ≤2":    "identical",
		"dup+delay":   "identical",
		"drop p=0.30": "corruption detected",
		"crash 7@2":   "crash reported",
	}
	if len(tbl.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), len(want))
	}
	for _, row := range tbl.Rows {
		if got := row[1]; got != want[row[0]] {
			t.Errorf("scenario %q: outcome %q, want %q", row[0], got, want[row[0]])
		}
	}
}

// TestRetransFloodExact requires the E21 knowledge column to read
// "exact" on every row: under every tabled drop rate the retransmitting
// flood fully reconstructs the lossless balls.
func TestRetransFloodExact(t *testing.T) {
	if testing.Short() {
		t.Skip("retrans sweep is slow")
	}
	tbl, err := E21RetransFlood(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "exact" {
			t.Errorf("drop %s: knowledge %q, want exact", row[0], row[len(row)-1])
		}
	}
}

// TestChaosTablesDeterministic regenerates E20 and E21 twice and
// requires byte-identical tables: the fault schedule is a pure function
// of the seed, so the chaos tables must be as reproducible as the
// fault-free ones.
func TestChaosTablesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos tables are slow")
	}
	for _, run := range []func(bool) (*Table, error){E20FaultMatrix, E21RetransFlood} {
		var a, b bytes.Buffer
		t1, err := run(true)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := run(true)
		if err != nil {
			t.Fatal(err)
		}
		t1.Fprint(&a)
		t2.Fprint(&b)
		if a.String() != b.String() {
			t.Errorf("%s not deterministic:\n%s\nvs\n%s", t1.ID, a.String(), b.String())
		}
	}
}

// TestFaultTraceRunSchema runs the -faults trace workload in quick mode
// and checks the stream: valid schema-v2 JSONL, fault fields present on
// some rounds, and both workload phases covered.
func TestFaultTraceRunSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("fault trace workload is slow")
	}
	var buf bytes.Buffer
	f := &dist.Faults{Plan: fault.Plan{Seed: 7, Drop: 0.2, Dup: 0.2, MaxDelay: 2}}
	if err := FaultTraceRun(&buf, true, f); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short trace: %d lines", len(lines))
	}
	sawFault := false
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: invalid JSON: %v\n%s", i, err, line)
		}
		if ev.V != obs.SchemaVersion {
			t.Fatalf("line %d: schema version %d, want %d", i, ev.V, obs.SchemaVersion)
		}
		if ev.Dropped > 0 || ev.Duplicated > 0 || ev.Stall > 0 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("no trace event carried fault counters")
	}
	out := buf.String()
	for _, phase := range []string{"prune-i01", "correction", "retrans-n300"} {
		if !strings.Contains(out, `"phase":"`+phase+`"`) {
			t.Errorf("trace missing phase %q", phase)
		}
	}
}
