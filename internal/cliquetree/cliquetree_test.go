package cliquetree

import (
	"strings"
	"testing"

	"repro/internal/chordal"
	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/graph"
)

func mustForest(t *testing.T, g *graph.Graph) *Forest {
	t.Helper()
	f, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWCIGFig1Weights(t *testing.T) {
	g := figures.Fig1()
	cliques, err := chordal.MaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 15 {
		t.Fatalf("Fig1 has %d maximal cliques, want 15", len(cliques))
	}
	find := func(name string) int {
		want := figures.Fig1CliqueNames[name]
		for i, c := range cliques {
			if c.Equal(want) {
				return i
			}
		}
		t.Fatalf("clique %s = %v not found", name, want)
		return -1
	}
	edges := WCIG(cliques)
	weightOf := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		for _, e := range edges {
			if e.A == a && e.B == b {
				return e.Weight
			}
		}
		return 0
	}
	cases := []struct {
		a, b string
		want int
	}{
		{"C1", "C2", 2},   // {2,3}
		{"C2", "C5", 2},   // {2,4}
		{"C3", "C4", 2},   // {5,6}
		{"C6", "C7", 2},   // {9,10}
		{"C8", "C9", 2},   // {12,13}
		{"C10", "C11", 2}, // {15,16}
		{"C5", "C6", 1},   // {8}
		{"C1", "C5", 1},   // {2}
		{"C13", "C14", 1}, // {21}
		{"C1", "C3", 0},   // disjoint
		{"C6", "C8", 0},   // disjoint
	}
	for _, c := range cases {
		if got := weightOf(find(c.a), find(c.b)); got != c.want {
			t.Errorf("weight(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestForestFig1Structure(t *testing.T) {
	g := figures.Fig1()
	f := mustForest(t, g)
	if f.NumVertices() != 15 {
		t.Fatalf("forest has %d vertices, want 15", f.NumVertices())
	}
	// Fig 1's graph is connected, so the forest is a tree with 14 edges.
	if got := len(f.Edges()); got != 14 {
		t.Fatalf("forest has %d edges, want 14", got)
	}
	// Every clique matches one of the paper's labels.
	for i := 0; i < f.NumVertices(); i++ {
		found := false
		for _, want := range figures.Fig1CliqueNames {
			if f.Clique(i).Equal(want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("clique %v does not appear in Figure 2", f.Clique(i))
		}
	}
	// All weight-2 edges are bridges between components of the weight-2
	// subgraph and must be in any maximum-weight spanning forest.
	mustHave := [][2]string{
		{"C1", "C2"}, {"C2", "C5"}, {"C3", "C4"},
		{"C6", "C7"}, {"C8", "C9"}, {"C10", "C11"},
		{"C5", "C6"}, // unique bridge between the two halves
	}
	idx := func(name string) int {
		want := figures.Fig1CliqueNames[name]
		for i := 0; i < f.NumVertices(); i++ {
			if f.Clique(i).Equal(want) {
				return i
			}
		}
		t.Fatalf("missing clique %s", name)
		return -1
	}
	for _, e := range mustHave {
		if !f.HasEdge(idx(e[0]), idx(e[1])) {
			t.Errorf("forest misses required edge %s-%s", e[0], e[1])
		}
	}
	// Clique-forest property: every node's subtree is connected.
	for _, v := range g.Nodes() {
		if !f.SubtreeConnected(v) {
			t.Errorf("T(%d) is disconnected", v)
		}
	}
}

func TestForestIsMaximumWeight(t *testing.T) {
	// The canonical forest's total weight must equal the weight of a
	// weight-only Kruskal forest.
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(50, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		cliques, err := chordal.MaximalCliques(g)
		if err != nil {
			t.Fatal(err)
		}
		edges := WCIG(cliques)
		canonical := MaxWeightSpanningForest(cliques, edges)
		weightByPair := make(map[[2]int]int, len(edges))
		for _, e := range edges {
			weightByPair[[2]int{e.A, e.B}] = e.Weight
		}
		total := 0
		for _, e := range canonical {
			total += weightByPair[[2]int{e[0], e[1]}]
		}
		best := weightOnlyForestWeight(len(cliques), edges)
		if total != best {
			t.Fatalf("seed %d: canonical forest weight %d != max %d", seed, total, best)
		}
	}
}

// weightOnlyForestWeight computes the max spanning forest weight with
// plain weight-descending Kruskal.
func weightOnlyForestWeight(n int, edges []WeightedEdge) int {
	sorted := make([]WeightedEdge, len(edges))
	copy(sorted, edges)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Weight > sorted[i].Weight {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	uf := newUnionFind(n)
	total := 0
	for _, e := range sorted {
		if uf.union(e.A, e.B) {
			total += e.Weight
		}
	}
	return total
}

func TestForestPropertiesRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.3}, seed)
		f := mustForest(t, g)
		// Subtree connectivity for every node.
		for _, v := range g.Nodes() {
			if !f.SubtreeConnected(v) {
				t.Fatalf("seed %d: T(%d) disconnected", seed, v)
			}
		}
		// Adjacency characterization: uv ∈ E iff φ(u) ∩ φ(v) ≠ ∅.
		for _, u := range g.Nodes() {
			for _, v := range g.Nodes() {
				if u >= v {
					continue
				}
				share := false
				phiV := make(map[int]bool)
				for _, i := range f.Phi(v) {
					phiV[i] = true
				}
				for _, i := range f.Phi(u) {
					if phiV[i] {
						share = true
						break
					}
				}
				if share != g.HasEdge(u, v) {
					t.Fatalf("seed %d: edge %d-%d=%v but share=%v", seed, u, v, g.HasEdge(u, v), share)
				}
			}
		}
		// Forest is acyclic and spans each WCIG component: |E| = |C| - #components.
		if got, want := len(f.Edges()), f.NumVertices()-len(f.Components()); got != want {
			t.Fatalf("seed %d: %d edges, want %d", seed, got, want)
		}
	}
}

func TestLemma2SubtreeEqualsLocalMWSF(t *testing.T) {
	// Lemma 2: for every node v, the unique MWSF of W_G[φ(v)] equals the
	// induced subtree T(v).
	g := figures.Fig1()
	f := mustForest(t, g)
	for _, v := range g.Nodes() {
		phiIdx := f.Phi(v)
		local := make([]graph.Set, len(phiIdx))
		for i, ci := range phiIdx {
			local[i] = f.Clique(ci)
		}
		mwsf := MaxWeightSpanningForest(local, WCIG(local))
		// Every local MWSF edge must be a global forest edge between the
		// corresponding cliques, and the counts must match.
		induced := 0
		for _, e := range f.Edges() {
			inPhi := func(x int) bool {
				for _, ci := range phiIdx {
					if ci == x {
						return true
					}
				}
				return false
			}
			if inPhi(e[0]) && inPhi(e[1]) {
				induced++
			}
		}
		if len(mwsf) != induced {
			t.Fatalf("node %d: local MWSF has %d edges, induced subtree %d", v, len(mwsf), induced)
		}
		for _, e := range mwsf {
			gi, gj := phiIdx[e[0]], phiIdx[e[1]]
			if !f.HasEdge(gi, gj) {
				t.Fatalf("node %d: local MWSF edge %v-%v not in global forest",
					v, f.Clique(gi), f.Clique(gj))
			}
		}
	}
}

func TestLocalViewFig34(t *testing.T) {
	g := figures.Fig1()
	ball := g.InducedSubgraph(g.Ball(figures.Fig3Center, figures.Fig3Radius))
	lv, err := ComputeLocalView(ball, figures.Fig3Center, figures.Fig3Radius)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4: the view contains exactly C1,C2,C3,C5,C6,C7,C8,C9.
	if len(lv.Cliques) != len(figures.Fig4ViewCliques) {
		t.Fatalf("view has %d cliques, want %d: %v", len(lv.Cliques), len(figures.Fig4ViewCliques), lv.Cliques)
	}
	for _, name := range figures.Fig4ViewCliques {
		if lv.FindClique(figures.Fig1CliqueNames[name]) == -1 {
			t.Errorf("view misses clique %s = %v", name, figures.Fig1CliqueNames[name])
		}
	}
	// The view's edges are a sub-picture of the global forest.
	f := mustForest(t, g)
	if err := lv.ConsistentWith(f); err != nil {
		t.Fatal(err)
	}
	// Figure 4's bold edges form the subtree induced by C′, which has 7
	// edges (8 cliques, connected).
	if len(lv.Edges) != 7 {
		t.Fatalf("view has %d edges, want 7", len(lv.Edges))
	}
}

func TestLocalViewConsistencyRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.RandomChordal(50, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		f := mustForest(t, g)
		for _, d := range []int{2, 3, 5} {
			for _, v := range []graph.ID{0, 10, 25, 49} {
				ball := g.InducedSubgraph(g.Ball(v, d))
				lv, err := ComputeLocalView(ball, v, d)
				if err != nil {
					t.Fatalf("seed %d v %d d %d: %v", seed, v, d, err)
				}
				if err := lv.ConsistentWith(f); err != nil {
					t.Fatalf("seed %d v %d d %d: %v", seed, v, d, err)
				}
			}
		}
	}
}

func TestMaximalCliquesContainingMatchesGlobal(t *testing.T) {
	g := figures.Fig1()
	all, err := chordal.MaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range g.Nodes() {
		got, err := MaximalCliquesContaining(g, u)
		if err != nil {
			t.Fatal(err)
		}
		var want []graph.Set
		for _, c := range all {
			if c.Contains(u) {
				want = append(want, c)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: got %d cliques, want %d", u, len(got), len(want))
		}
		for _, w := range want {
			found := false
			for _, c := range got {
				if c.Equal(w) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d: missing clique %v", u, w)
			}
		}
	}
}

func TestIsLinear(t *testing.T) {
	// Theorem 1 concerns the existence of a linear clique forest; the
	// canonical MWSF may resolve weight ties non-linearly even for
	// interval graphs. Here we check IsLinear itself: a path graph's
	// forest is linear, a subdivided claw's (not an interval graph) has a
	// degree-3 clique and is not.
	if f := mustForest(t, gen.Path(8)); !f.IsLinear() {
		t.Fatal("path graph's clique forest should be linear")
	}
	claw := graph.New()
	// Center 0, arms 1-2, 3-4, 5-6 (each arm a path of two nodes).
	for _, e := range [][2]graph.ID{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {0, 5}, {5, 6}} {
		claw.AddEdge(e[0], e[1])
	}
	f := mustForest(t, claw)
	if f.IsLinear() {
		t.Fatal("subdivided claw should not have a linear clique forest")
	}
}

func TestMaximalBinaryPathsOnPathGraph(t *testing.T) {
	// A path graph's clique forest is a path of n-1 edge-cliques: one
	// maximal pendant path covering everything.
	g := gen.Path(8)
	f := mustForest(t, g)
	paths := f.MaximalBinaryPaths()
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Kind != Pendant {
		t.Fatalf("kind = %v, want pendant", p.Kind)
	}
	if len(p.Cliques) != f.NumVertices() {
		t.Fatalf("path covers %d cliques, want %d", len(p.Cliques), f.NumVertices())
	}
	if p.AttachStart != -1 || p.AttachEnd != -1 {
		t.Fatal("whole-component path should have no attachments")
	}
	if got := f.SubpathNodes(p); len(got) != 8 {
		t.Fatalf("SubpathNodes = %v, want all 8 nodes", got)
	}
	if d := f.PathDiameter(g, p); d != 7 {
		t.Fatalf("PathDiameter = %d, want 7", d)
	}
	alpha, err := f.PathIndependenceNumber(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 4 {
		t.Fatalf("path independence number = %d, want 4", alpha)
	}
}

func TestMaximalBinaryPathsInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		f := mustForest(t, g)
		paths := f.MaximalBinaryPaths()
		covered := make(map[int]bool)
		for _, p := range paths {
			for i, c := range p.Cliques {
				if covered[c] {
					t.Fatalf("seed %d: clique %d in two paths", seed, c)
				}
				covered[c] = true
				if f.Degree(c) > 2 {
					t.Fatalf("seed %d: clique %d in path has degree %d", seed, c, f.Degree(c))
				}
				if i > 0 && !f.HasEdge(p.Cliques[i-1], c) {
					t.Fatalf("seed %d: path cliques %d,%d not adjacent", seed, p.Cliques[i-1], c)
				}
			}
			switch p.Kind {
			case Internal:
				if p.AttachStart == -1 || p.AttachEnd == -1 {
					t.Fatalf("seed %d: internal path lacks attachment", seed)
				}
				if f.Degree(p.AttachStart) < 3 || f.Degree(p.AttachEnd) < 3 {
					t.Fatalf("seed %d: internal path attaches to degree < 3", seed)
				}
			case Pendant:
				if p.AttachStart != -1 {
					t.Fatalf("seed %d: pendant path not leaf-first", seed)
				}
				if p.AttachEnd != -1 && f.Degree(p.AttachEnd) < 3 {
					t.Fatalf("seed %d: pendant attachment has degree < 3", seed)
				}
			default:
				t.Fatalf("seed %d: unclassified path", seed)
			}
		}
		// Every degree-≤2 clique is covered.
		for i := 0; i < f.NumVertices(); i++ {
			if f.Degree(i) <= 2 && !covered[i] {
				t.Fatalf("seed %d: clique %d not covered by any path", seed, i)
			}
		}
	}
}

func TestFig5SubpathNodes(t *testing.T) {
	g := figures.Fig1()
	f := mustForest(t, g)
	var idxs []int
	for _, name := range figures.Fig5Path {
		want := figures.Fig1CliqueNames[name]
		found := -1
		for i := 0; i < f.NumVertices(); i++ {
			if f.Clique(i).Equal(want) {
				found = i
				break
			}
		}
		if found == -1 {
			t.Fatalf("clique %s missing", name)
		}
		idxs = append(idxs, found)
	}
	p := Path{Cliques: idxs, Kind: Internal}
	got := f.SubpathNodes(p)
	if !got.Equal(figures.Fig5PeeledNodes) {
		t.Fatalf("SubpathNodes = %v, want %v", got, figures.Fig5PeeledNodes)
	}
}

func TestCanonicalLessTotalOrder(t *testing.T) {
	g := figures.Fig1()
	cliques, err := chordal.MaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	edges := WCIG(cliques)
	for i := range edges {
		for j := range edges {
			li := CanonicalLess(cliques, edges[i], edges[j])
			lj := CanonicalLess(cliques, edges[j], edges[i])
			if i == j {
				if li || lj {
					t.Fatal("edge compares less than itself")
				}
				continue
			}
			if li == lj {
				t.Fatalf("order not total/antisymmetric for edges %v, %v", edges[i], edges[j])
			}
		}
	}
}

func TestForestWriteDOT(t *testing.T) {
	f := mustForest(t, figures.Fig1())
	var buf strings.Builder
	if err := f.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph CliqueForest {") {
		t.Fatalf("missing header: %s", out[:50])
	}
	if strings.Count(out, " -- ") != 14 {
		t.Fatalf("expected 14 forest edges in DOT, got %d", strings.Count(out, " -- "))
	}
	if !strings.Contains(out, "{1,2,3}") {
		t.Fatal("missing clique label {1,2,3}")
	}
}

func TestLocalViewForestAssembly(t *testing.T) {
	g := figures.Fig1()
	ball := g.InducedSubgraph(g.Ball(figures.Fig3Center, figures.Fig3Radius))
	lv, err := ComputeLocalView(ball, figures.Fig3Center, figures.Fig3Radius)
	if err != nil {
		t.Fatal(err)
	}
	f := lv.Forest()
	if f.NumVertices() != len(lv.Cliques) {
		t.Fatalf("view forest has %d vertices, want %d", f.NumVertices(), len(lv.Cliques))
	}
	if len(f.Edges()) != len(lv.Edges) {
		t.Fatalf("view forest has %d edges, want %d", len(f.Edges()), len(lv.Edges))
	}
	// φ(10) within the view: node 10 is in C6 and C7.
	if got := len(f.Phi(10)); got != 2 {
		t.Fatalf("view φ(10) has %d cliques, want 2", got)
	}
}
