// Package cliquetree implements the paper's central data structure
// (Sections 2–3): the weighted clique intersection graph W_G of a chordal
// graph, the canonical linear order on its edges, the unique
// maximum-weight spanning forest under that order (the clique forest), and
// the machinery built on top of it — φ(v) / T(v) queries, maximal binary,
// pendant and internal paths, path diameters and independence numbers, and
// the local views of Lemma 2 / Figures 3–4.
package cliquetree

import (
	"fmt"
	"sort"

	"repro/internal/chordal"
	"repro/internal/graph"
)

// WeightedEdge is an edge of the weighted clique intersection graph W_G
// between cliques with indices A < B and weight |C_A ∩ C_B| >= 1.
type WeightedEdge struct {
	A, B   int
	Weight int
}

// WCIG builds the weighted clique intersection graph over the given
// cliques: any two cliques with a nonempty intersection are connected by an
// edge weighted by the intersection size.
func WCIG(cliques []graph.Set) []WeightedEdge {
	// Index cliques by member so we only compare intersecting pairs.
	byMember := make(map[graph.ID][]int)
	for i, c := range cliques {
		for _, v := range c {
			byMember[v] = append(byMember[v], i)
		}
	}
	weight := make(map[[2]int]int)
	for _, idxs := range byMember {
		for x := 0; x < len(idxs); x++ {
			for y := x + 1; y < len(idxs); y++ {
				a, b := idxs[x], idxs[y]
				if a > b {
					a, b = b, a
				}
				weight[[2]int{a, b}]++
			}
		}
	}
	edges := make([]WeightedEdge, 0, len(weight))
	for key, w := range weight {
		edges = append(edges, WeightedEdge{A: key[0], B: key[1], Weight: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// CanonicalLess implements the paper's strict total order < on W_G edges:
// e < f iff w_e < w_f, or weights are equal and le ≺ lf, or additionally
// le = lf and he ≺ hf, where le/he are the lexicographically smaller/larger
// σ-words of the edge's endpoint cliques. The order is total because
// distinct edges have distinct (le, he) pairs.
func CanonicalLess(cliques []graph.Set, e, f WeightedEdge) bool {
	if e.Weight != f.Weight {
		return e.Weight < f.Weight
	}
	eLo, eHi := sortedPair(cliques[e.A], cliques[e.B])
	fLo, fHi := sortedPair(cliques[f.A], cliques[f.B])
	if c := eLo.Compare(fLo); c != 0 {
		return c < 0
	}
	return eHi.Compare(fHi) < 0
}

func sortedPair(a, b graph.Set) (lo, hi graph.Set) {
	if a.Compare(b) <= 0 {
		return a, b
	}
	return b, a
}

// MaxWeightSpanningForest runs Kruskal's algorithm over the given W_G
// edges, preferring larger edges under the canonical order, and returns
// the forest's edges (as index pairs with A < B). Because the canonical
// order is a strict total order refining the weight order, the result is
// the unique maximum-weight spanning forest the paper's mechanism selects.
func MaxWeightSpanningForest(cliques []graph.Set, edges []WeightedEdge) [][2]int {
	sorted := make([]WeightedEdge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		return CanonicalLess(cliques, sorted[j], sorted[i]) // descending
	})
	uf := newUnionFind(len(cliques))
	var out [][2]int
	for _, e := range sorted {
		if uf.union(e.A, e.B) {
			out = append(out, [2]int{e.A, e.B})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

// Forest is the canonical clique forest of a chordal graph: its vertices
// are the maximal cliques, its edges the unique maximum-weight spanning
// forest of W_G under the canonical order.
type Forest struct {
	cliques []graph.Set
	adj     [][]int
	phi     map[graph.ID][]int
}

// New computes the clique forest of a chordal graph g. It returns an error
// if g is not chordal.
func New(g *graph.Graph) (*Forest, error) {
	cliques, err := chordal.MaximalCliques(g)
	if err != nil {
		return nil, fmt.Errorf("clique forest: %w", err)
	}
	return FromCliques(cliques), nil
}

// FromCliques builds the canonical clique forest over the given cliques,
// which must be the maximal cliques of some chordal graph.
func FromCliques(cliques []graph.Set) *Forest {
	f := &Forest{
		cliques: cliques,
		adj:     make([][]int, len(cliques)),
		phi:     make(map[graph.ID][]int),
	}
	for i, c := range cliques {
		for _, v := range c {
			f.phi[v] = append(f.phi[v], i)
		}
	}
	for _, e := range MaxWeightSpanningForest(cliques, WCIG(cliques)) {
		f.adj[e[0]] = append(f.adj[e[0]], e[1])
		f.adj[e[1]] = append(f.adj[e[1]], e[0])
	}
	for i := range f.adj {
		sort.Ints(f.adj[i])
	}
	return f
}

// NumVertices returns the number of forest vertices (maximal cliques).
func (f *Forest) NumVertices() int { return len(f.cliques) }

// Clique returns the vertex set of forest vertex i.
func (f *Forest) Clique(i int) graph.Set { return f.cliques[i] }

// Cliques returns all cliques (shared slice; treat as read-only).
func (f *Forest) Cliques() []graph.Set { return f.cliques }

// Neighbors returns the forest neighbors of vertex i in increasing order.
func (f *Forest) Neighbors(i int) []int { return f.adj[i] }

// Degree returns the forest degree of vertex i.
func (f *Forest) Degree(i int) int { return len(f.adj[i]) }

// Edges returns the forest edges as index pairs with A < B, sorted.
func (f *Forest) Edges() [][2]int {
	var out [][2]int
	for i, nbrs := range f.adj {
		for _, j := range nbrs {
			if i < j {
				out = append(out, [2]int{i, j})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Phi returns φ(v): the indices of the cliques containing node v.
func (f *Forest) Phi(v graph.ID) []int { return f.phi[v] }

// HasEdge reports whether cliques i and j are adjacent in the forest.
func (f *Forest) HasEdge(i, j int) bool {
	for _, k := range f.adj[i] {
		if k == j {
			return true
		}
	}
	return false
}

// SubtreeConnected reports whether T(v) = T[φ(v)] is connected (a tree),
// which the clique-forest property guarantees for every node.
func (f *Forest) SubtreeConnected(v graph.ID) bool {
	idxs := f.phi[v]
	if len(idxs) <= 1 {
		return true
	}
	inPhi := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		inPhi[i] = true
	}
	seen := map[int]bool{idxs[0]: true}
	stack := []int{idxs[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range f.adj[cur] {
			if inPhi[nb] && !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(idxs)
}

// IsLinear reports whether every component of the forest is a path
// (Theorem 1: the underlying chordal graph is then an interval graph).
func (f *Forest) IsLinear() bool {
	for i := range f.adj {
		if len(f.adj[i]) > 2 {
			return false
		}
	}
	return true
}

// VertexSetOf returns the union of the cliques with the given indices.
func (f *Forest) VertexSetOf(indices []int) graph.Set {
	var out graph.Set
	for _, i := range indices {
		out = out.Union(f.cliques[i])
	}
	return out
}

// Components returns the forest's connected components as sorted index
// slices, ordered by smallest index.
func (f *Forest) Components() [][]int {
	seen := make([]bool, len(f.adj))
	var comps [][]int
	for start := range f.adj {
		if seen[start] {
			continue
		}
		comp := []int{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, nb := range f.adj[comp[i]] {
				if !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}
