package cliquetree

import (
	"sort"

	"repro/internal/chordal"
	"repro/internal/graph"
)

// PathKind classifies a maximal binary path of the clique forest.
type PathKind int

const (
	// Pendant paths contain a forest leaf (or are a whole path component,
	// including isolated forest vertices).
	Pendant PathKind = iota + 1
	// Internal paths consist solely of degree-2 forest vertices; both ends
	// attach to vertices of degree at least 3.
	Internal
)

func (k PathKind) String() string {
	switch k {
	case Pendant:
		return "pendant"
	case Internal:
		return "internal"
	default:
		return "unknown"
	}
}

// Path is a maximal binary path C_1, ..., C_k in a clique forest: every
// C_i has forest degree at most 2 and the path cannot be extended by
// another degree-≤2 vertex.
type Path struct {
	// Cliques lists the forest vertex indices in path order.
	Cliques []int
	Kind    PathKind
	// AttachStart and AttachEnd are the forest vertices outside the path
	// adjacent to Cliques[0] and Cliques[len-1] respectively; -1 if none.
	// Internal paths have both; pendant paths have at most AttachEnd
	// (paths that form an entire forest component have neither).
	AttachStart, AttachEnd int
}

// MaximalBinaryPaths returns all maximal binary paths of the forest:
// the connected components of the subforest induced by vertices of degree
// at most 2. Pendant paths are oriented with their leaf end first;
// internal paths are oriented so that the first clique has the smaller
// index. Paths are ordered by their smallest clique index.
func (f *Forest) MaximalBinaryPaths() []Path {
	n := len(f.adj)
	isBinary := make([]bool, n)
	for i := range f.adj {
		isBinary[i] = len(f.adj[i]) <= 2
	}
	seen := make([]bool, n)
	var paths []Path
	for start := 0; start < n; start++ {
		if !isBinary[start] || seen[start] {
			continue
		}
		// Collect the component of degree-≤2 vertices containing start.
		comp := []int{start}
		seen[start] = true
		for i := 0; i < len(comp); i++ {
			for _, nb := range f.adj[comp[i]] {
				if isBinary[nb] && !seen[nb] {
					seen[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		paths = append(paths, f.orderPath(comp, isBinary))
	}
	sort.Slice(paths, func(i, j int) bool {
		return minOf(paths[i].Cliques) < minOf(paths[j].Cliques)
	})
	return paths
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// orderPath linearizes a binary component into path order and classifies
// it. comp is the set of component vertices (unordered).
func (f *Forest) orderPath(comp []int, isBinary []bool) Path {
	inComp := make(map[int]bool, len(comp))
	for _, c := range comp {
		inComp[c] = true
	}
	// binaryDegree counts neighbors inside the component.
	binaryDegree := func(c int) int {
		d := 0
		for _, nb := range f.adj[c] {
			if inComp[nb] {
				d++
			}
		}
		return d
	}
	// Endpoints have at most one neighbor inside the component.
	var ends []int
	for _, c := range comp {
		if binaryDegree(c) <= 1 {
			ends = append(ends, c)
		}
	}
	sort.Ints(ends)
	start := ends[0] // single vertex: its own endpoint (degree 0)

	ordered := make([]int, 0, len(comp))
	prev := -1
	cur := start
	for {
		ordered = append(ordered, cur)
		next := -1
		for _, nb := range f.adj[cur] {
			if inComp[nb] && nb != prev {
				next = nb
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}

	attachOf := func(c int, exclude int) int {
		for _, nb := range f.adj[c] {
			if !inComp[nb] && nb != exclude {
				return nb
			}
		}
		return -1
	}
	p := Path{Cliques: ordered}
	if len(ordered) == 1 {
		// A single binary vertex can attach to zero, one, or two outside
		// vertices; distinguish them so lone leaves stay pendant.
		p.AttachStart = attachOf(ordered[0], -1)
		p.AttachEnd = attachOf(ordered[0], p.AttachStart)
		if p.AttachEnd == -1 {
			// At most one attachment: keep it at the end (leaf-first).
			p.AttachStart, p.AttachEnd = -1, p.AttachStart
		}
	} else {
		p.AttachStart = attachOf(ordered[0], -1)
		p.AttachEnd = attachOf(ordered[len(ordered)-1], -1)
	}
	// Classify: the path is internal iff every vertex has forest degree
	// exactly 2, which for a linearized binary component means both ends
	// attach outside.
	if p.AttachStart != -1 && p.AttachEnd != -1 {
		p.Kind = Internal
	} else {
		p.Kind = Pendant
		// Orient pendant paths leaf-first.
		if p.AttachStart != -1 {
			reverseInts(p.Cliques)
			p.AttachStart, p.AttachEnd = p.AttachEnd, p.AttachStart
		}
	}
	return p
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// PathVertexSet returns V_P = C_1 ∪ ... ∪ C_k, all nodes whose subtrees
// intersect the path.
func (f *Forest) PathVertexSet(p Path) graph.Set {
	return f.VertexSetOf(p.Cliques)
}

// SubpathNodes returns the nodes w whose subtree T(w) is a subpath of P,
// i.e. φ(w) ⊆ P's cliques. These are the nodes the peeling process removes
// for path P.
func (f *Forest) SubpathNodes(p Path) graph.Set {
	inPath := make(map[int]bool, len(p.Cliques))
	for _, c := range p.Cliques {
		inPath[c] = true
	}
	var out graph.Set
	for _, v := range f.PathVertexSet(p) {
		all := true
		for _, ci := range f.phi[v] {
			if !inPath[ci] {
				all = false
				break
			}
		}
		if all {
			out = append(out, v)
		}
	}
	return graph.NewSet(out...)
}

// PathDiameter returns the diameter of the path per the paper's
// definition: the maximum distance in g between nodes of V_P. Distances
// are anchored at the two end cliques (the maximum over pairs with one
// endpoint in C_1 ∪ C_k), which realizes the diameter on clique paths and
// is always a lower bound; the peeling process only needs a sound
// "diameter at least threshold" test, for which a lower bound is safe.
func (f *Forest) PathDiameter(g *graph.Graph, p Path) int {
	return f.PathDiameterCapped(g, p, 1<<30)
}

// PathDiameterCapped is PathDiameter with BFS exploration capped at cap
// hops: it returns min(diameter, cap). The peeling process only compares
// diameters against a threshold, so capping at the threshold preserves
// every decision while keeping each BFS local to the path's
// neighborhood.
func (f *Forest) PathDiameterCapped(g *graph.Graph, p Path, cap int) int {
	members := f.PathVertexSet(p)
	inPath := make(map[graph.ID]bool, len(members))
	for _, v := range members {
		inPath[v] = true
	}
	anchors := f.cliques[p.Cliques[0]].Union(f.cliques[p.Cliques[len(p.Cliques)-1]])
	best := 0
	for _, a := range anchors {
		reached := 0
		seen := map[graph.ID]bool{a: true}
		frontier := []graph.ID{a}
		if inPath[a] {
			reached++
		}
		for depth := 0; depth < cap && len(frontier) > 0 && reached < len(members); depth++ {
			var next []graph.ID
			for _, v := range frontier {
				g.ForEachNeighbor(v, func(u graph.ID) {
					if seen[u] {
						return
					}
					seen[u] = true
					next = append(next, u)
					if inPath[u] {
						reached++
						if depth+1 > best {
							best = depth + 1
						}
					}
				})
			}
			frontier = next
		}
		if reached < len(members) {
			// Some path member is farther than cap from this anchor.
			return cap
		}
		if best >= cap {
			return cap
		}
	}
	return best
}

// PathIndependenceNumber returns α(G[V_P]) for the path's induced
// subgraph, computed exactly (the induced subgraph is interval, hence
// chordal, so Gavril's algorithm applies).
func (f *Forest) PathIndependenceNumber(g *graph.Graph, p Path) (int, error) {
	sub := g.InducedSubgraph(f.PathVertexSet(p))
	return chordal.IndependenceNumber(sub)
}
