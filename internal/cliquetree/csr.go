package cliquetree

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// This file is the snapshot-index CSR counterpart of cliquetree.go: a
// reusable Builder that computes the canonical clique forest of the
// alive-masked subgraph of a graph.Indexed snapshot without touching
// map-backed structures. The peeling process rebuilds the forest once
// per iteration on a shrinking vertex set, so everything here works over
// an alive mask and recycles its scratch between builds.
//
// Equivalence with the map-backed path (chordal.MaximalCliques +
// FromCliques) is exact, not approximate:
//
//   - snapshot index order coincides with ID order (graph.Indexed), so
//     every ID-based tie-break below is an index-based tie-break;
//   - MCS pops (max weight, then min ID), reproduced by a packed max-heap
//     on (weight<<32 | n-1-idx) with lazy deletion;
//   - the PEO validity check is Tarjan–Yannakakis (the candidate parent
//     absorbs the rest of the later neighborhood), which accepts exactly
//     the orderings chordal.IsPEO accepts;
//   - candidate cliques, their maximality filter, the WCIG weights, the
//     canonical edge order, and Kruskal's scan are literal translations,
//     so the resulting clique list (in PEO-position order) and forest
//     edges are identical to the seed's.

// CSRForest is a clique forest over snapshot indices: cliques in
// PEO-position order with ascending member rows, the forest adjacency
// with ascending neighbor rows, and the phi table (clique ids per node,
// ascending). A CSRForest is rebuilt in place by Builder.Build; all
// slices are views into storage reused across builds.
type CSRForest struct {
	NumCliques int
	cliquePtr  []int32
	cliqueMem  []int32
	adjPtr     []int32
	adj        []int32
	phiPtr     []int32 // indexed by snapshot index; rows valid for alive nodes only
	phi        []int32
}

// Clique returns the ascending member indices of clique c.
func (f *CSRForest) Clique(c int32) []int32 {
	return f.cliqueMem[f.cliquePtr[c]:f.cliquePtr[c+1]]
}

// Nbrs returns the ascending forest neighbors of clique c.
func (f *CSRForest) Nbrs(c int32) []int32 { return f.adj[f.adjPtr[c]:f.adjPtr[c+1]] }

// Deg returns the forest degree of clique c.
func (f *CSRForest) Deg(c int32) int { return int(f.adjPtr[c+1] - f.adjPtr[c]) }

// PhiRow returns the ascending clique ids containing the node at
// snapshot index v. Only valid for nodes alive in the build.
func (f *CSRForest) PhiRow(v int32) []int32 { return f.phi[f.phiPtr[v]:f.phiPtr[v+1]] }

// wedge is a WCIG edge between cliques a < b.
type wedge struct {
	a, b, w int32
}

// Builder computes CSR clique forests over one snapshot, reusing all
// working storage between builds. Not safe for concurrent use.
type Builder struct {
	ix *graph.Indexed

	// MCS state.
	heap    []uint64
	weight  []int32
	visited []bool
	order   []int32
	pos     []int32

	mark  []bool // generic per-index marks, clean between uses
	cand  []int32
	pairs []uint64
	edges []wedge

	ufParent []int32
	ufRank   []int8
	accepted [][2]int32
	degBuf   []int32
}

// NewBuilder returns a Builder over the given snapshot.
func NewBuilder(ix *graph.Indexed) *Builder { return &Builder{ix: ix} }

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Build computes the clique forest of the subgraph induced by the alive
// mask (nil = all alive; nAlive must match) into out. It returns the
// seed-identical error when that subgraph is not chordal.
func (b *Builder) Build(alive []bool, nAlive int, out *CSRForest) error {
	ix := b.ix
	n := ix.NumNodes()
	b.weight = growInt32(b.weight, n)
	b.order = growInt32(b.order, nAlive)
	b.pos = growInt32(b.pos, n)
	if cap(b.visited) < n {
		b.visited = make([]bool, n)
		b.mark = make([]bool, n)
	}
	b.visited = b.visited[:n]
	b.mark = b.mark[:n]
	for i := 0; i < n; i++ {
		b.weight[i] = 0
		b.visited[i] = false
	}

	// MCS with a packed max-heap: key = weight<<32 | (n-1-idx), so the
	// max key is the max weight with the smallest index (= smallest ID),
	// matching chordal.MCS's tie-break. Stale entries (an index whose
	// weight has grown since the push) are skipped on pop.
	// Seeding in ascending index order appends descending keys, so every
	// push is already in heap position (O(1) sift).
	h := b.heap[:0]
	for i := 0; i < n; i++ {
		if alive == nil || alive[i] {
			h = heapPush(h, uint64(n-1-i))
		}
	}
	order := b.order
	for i := nAlive - 1; i >= 0; i-- {
		var v int32
		for {
			top := h[0]
			h = heapPop(h)
			w := int32(top >> 32)
			idx := int32(n-1) - int32(top&0xffffffff)
			if b.visited[idx] || b.weight[idx] != w {
				continue
			}
			v = idx
			break
		}
		order[i] = v
		b.visited[v] = true
		for _, u := range ix.NeighborIndices(int(v)) {
			if (alive != nil && !alive[u]) || b.visited[u] {
				continue
			}
			b.weight[u]++
			h = heapPush(h, uint64(b.weight[u])<<32|uint64(int32(n-1)-u))
		}
	}
	b.heap = h[:0]
	pos := b.pos
	for i, v := range order {
		pos[v] = int32(i)
	}

	// Tarjan–Yannakakis PEO verification: for each vertex, its earliest
	// later neighbor u must absorb the rest of the later neighborhood
	// (L(v) \ {u} ⊆ Γ(u)). This accepts exactly the orderings IsPEO
	// accepts, and order is a PEO iff the alive subgraph is chordal.
	for i := 0; i < nAlive; i++ {
		v := order[i]
		var u int32 = -1
		uPos := int32(1) << 30
		row := ix.NeighborIndices(int(v))
		for _, w := range row {
			if alive != nil && !alive[w] {
				continue
			}
			if pos[w] > int32(i) && pos[w] < uPos {
				uPos = pos[w]
				u = w
			}
		}
		if u < 0 {
			continue
		}
		for _, w := range ix.NeighborIndices(int(u)) {
			if alive == nil || alive[w] {
				b.mark[w] = true
			}
		}
		ok := true
		for _, w := range row {
			if alive != nil && !alive[w] {
				continue
			}
			if pos[w] > int32(i) && w != u && !b.mark[w] {
				ok = false
				break
			}
		}
		for _, w := range ix.NeighborIndices(int(u)) {
			b.mark[w] = false
		}
		if !ok {
			m := 0
			for idx := 0; idx < n; idx++ {
				if alive != nil && !alive[idx] {
					continue
				}
				for _, w := range ix.NeighborIndices(idx) {
					if alive == nil || alive[w] {
						m++
					}
				}
			}
			return fmt.Errorf("clique forest: graph is not chordal (n=%d, m=%d)", nAlive, m/2)
		}
	}

	// Maximal cliques in PEO-position order: C_i = {v_i} ∪ Γ_later(v_i),
	// kept iff no earlier neighbor of v_i is adjacent to all of C_i
	// (counted against marks instead of per-pair HasEdge probes).
	out.cliquePtr = append(out.cliquePtr[:0], 0)
	out.cliqueMem = out.cliqueMem[:0]
	for i := 0; i < nAlive; i++ {
		v := order[i]
		cand := b.cand[:0]
		inserted := false
		for _, u := range ix.NeighborIndices(int(v)) {
			if (alive != nil && !alive[u]) || pos[u] <= int32(i) {
				continue
			}
			if !inserted && v < u {
				cand = append(cand, v)
				inserted = true
			}
			cand = append(cand, u)
		}
		if !inserted {
			cand = append(cand, v)
		}
		b.cand = cand
		for _, w := range cand {
			b.mark[w] = true
		}
		maximal := true
		for _, u := range ix.NeighborIndices(int(v)) {
			if (alive != nil && !alive[u]) || pos[u] >= int32(i) {
				continue
			}
			cnt := 0
			for _, w := range ix.NeighborIndices(int(u)) {
				if b.mark[w] {
					cnt++
				}
			}
			if cnt == len(cand) {
				maximal = false
				break
			}
		}
		for _, w := range cand {
			b.mark[w] = false
		}
		if maximal {
			out.cliqueMem = append(out.cliqueMem, cand...)
			out.cliquePtr = append(out.cliquePtr, int32(len(out.cliqueMem)))
		}
	}
	out.NumCliques = len(out.cliquePtr) - 1

	// Phi CSR: clique ids per alive node, ascending (cliques are scanned
	// in increasing id, so counting-sort fill preserves that order).
	out.phiPtr = growInt32(out.phiPtr, n+1)
	for i := range out.phiPtr {
		out.phiPtr[i] = 0
	}
	for _, v := range out.cliqueMem {
		out.phiPtr[v+1]++
	}
	for i := 0; i < n; i++ {
		out.phiPtr[i+1] += out.phiPtr[i]
	}
	out.phi = growInt32(out.phi, len(out.cliqueMem))
	fill := b.weight[:n] // reuse as cursor scratch; overwritten above
	for i := 0; i < n; i++ {
		fill[i] = 0
	}
	for c := 0; c < out.NumCliques; c++ {
		for _, v := range out.Clique(int32(c)) {
			out.phi[out.phiPtr[v]+fill[v]] = int32(c)
			fill[v]++
		}
	}

	// WCIG: every pair of cliques sharing a node, weighted by shared
	// count. Pairs are packed (a<<32|b) with a<b (phi rows ascend), so a
	// sort + run-length pass yields the edge list already in (A,B) order.
	pairs := b.pairs[:0]
	for i := 0; i < nAlive; i++ {
		row := out.PhiRow(order[i])
		for x := 0; x < len(row); x++ {
			for y := x + 1; y < len(row); y++ {
				pairs = append(pairs, uint64(row[x])<<32|uint64(row[y]))
			}
		}
	}
	sortUint64(pairs)
	b.pairs = pairs
	edges := b.edges[:0]
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		edges = append(edges, wedge{a: int32(pairs[i] >> 32), b: int32(pairs[i] & 0xffffffff), w: int32(j - i)})
		i = j
	}
	b.edges = edges

	// Canonical maximum-weight spanning forest: Kruskal over the edges
	// in descending canonical order. The order is strict and total, so
	// the unstable sort still has a unique result.
	sort.Slice(edges, func(i, j int) bool { return b.canonicalLess(out, edges[j], edges[i]) })
	nc := out.NumCliques
	b.ufParent = growInt32(b.ufParent, nc)
	if cap(b.ufRank) < nc {
		b.ufRank = make([]int8, nc)
	}
	b.ufRank = b.ufRank[:nc]
	for i := 0; i < nc; i++ {
		b.ufParent[i] = int32(i)
		b.ufRank[i] = 0
	}
	accepted := b.accepted[:0]
	for _, e := range edges {
		if b.union(e.a, e.b) {
			accepted = append(accepted, [2]int32{e.a, e.b})
		}
	}
	sort.Slice(accepted, func(i, j int) bool {
		if accepted[i][0] != accepted[j][0] {
			return accepted[i][0] < accepted[j][0]
		}
		return accepted[i][1] < accepted[j][1]
	})
	b.accepted = accepted

	// Forest adjacency CSR. Scanning the (A,B)-sorted accepted edges
	// appends every row's smaller neighbors (as B-side entries, ascending
	// A) before its larger ones (as A-side entries, ascending B), so each
	// row comes out sorted without a per-row sort.
	deg := growInt32(b.degBuf, nc)
	for i := 0; i < nc; i++ {
		deg[i] = 0
	}
	for _, e := range accepted {
		deg[e[0]]++
		deg[e[1]]++
	}
	out.adjPtr = growInt32(out.adjPtr, nc+1)
	out.adjPtr[0] = 0
	for i := 0; i < nc; i++ {
		out.adjPtr[i+1] = out.adjPtr[i] + deg[i]
	}
	out.adj = growInt32(out.adj, int(out.adjPtr[nc]))
	for i := 0; i < nc; i++ {
		deg[i] = 0
	}
	b.degBuf = deg
	for _, e := range accepted {
		out.adj[out.adjPtr[e[1]]+deg[e[1]]] = e[0]
		deg[e[1]]++
	}
	for _, e := range accepted {
		out.adj[out.adjPtr[e[0]]+deg[e[0]]] = e[1]
		deg[e[0]]++
	}
	return nil
}

// compareClique orders cliques by their σ-words: member-wise, shorter
// first on a shared prefix — identical to graph.Set.Compare because
// index order is ID order.
func compareClique(f *CSRForest, x, y int32) int {
	a, b := f.Clique(x), f.Clique(y)
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// canonicalLess is CanonicalLess on CSR cliques: weight first, then the
// lexicographically smaller σ-words, then the larger ones.
func (b *Builder) canonicalLess(f *CSRForest, e, g wedge) bool {
	if e.w != g.w {
		return e.w < g.w
	}
	eLo, eHi := e.a, e.b
	if compareClique(f, eLo, eHi) > 0 {
		eLo, eHi = eHi, eLo
	}
	gLo, gHi := g.a, g.b
	if compareClique(f, gLo, gHi) > 0 {
		gLo, gHi = gHi, gLo
	}
	if c := compareClique(f, eLo, gLo); c != 0 {
		return c < 0
	}
	return compareClique(f, eHi, gHi) < 0
}

func (b *Builder) find(x int32) int32 {
	for b.ufParent[x] != x {
		b.ufParent[x] = b.ufParent[b.ufParent[x]]
		x = b.ufParent[x]
	}
	return x
}

func (b *Builder) union(x, y int32) bool {
	rx, ry := b.find(x), b.find(y)
	if rx == ry {
		return false
	}
	if b.ufRank[rx] < b.ufRank[ry] {
		rx, ry = ry, rx
	}
	b.ufParent[ry] = rx
	if b.ufRank[rx] == b.ufRank[ry] {
		b.ufRank[rx]++
	}
	return true
}

// ToForest materializes a CSRForest as a map-backed Forest over original
// IDs, identical to what New would have produced on the alive subgraph.
func ToForest(f *CSRForest, ids []graph.ID) *Forest {
	out := &Forest{
		cliques: make([]graph.Set, f.NumCliques),
		adj:     make([][]int, f.NumCliques),
		phi:     make(map[graph.ID][]int),
	}
	for c := 0; c < f.NumCliques; c++ {
		row := f.Clique(int32(c))
		set := make(graph.Set, len(row))
		for i, v := range row {
			set[i] = ids[v] // ascending indices → ascending IDs: a valid Set
		}
		out.cliques[c] = set
	}
	for i, c := range out.cliques {
		for _, v := range c {
			out.phi[v] = append(out.phi[v], i)
		}
	}
	for c := 0; c < f.NumCliques; c++ {
		row := f.Nbrs(int32(c))
		if len(row) == 0 {
			continue
		}
		adj := make([]int, len(row))
		for i, nb := range row {
			adj[i] = int(nb)
		}
		out.adj[c] = adj
	}
	return out
}

// heapPush pushes a key onto the packed max-heap.
func heapPush(h []uint64, key uint64) []uint64 {
	h = append(h, key)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// heapPop removes the max key (inspect h[0] first).
func heapPop(h []uint64) []uint64 {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h[l] > h[big] {
			big = l
		}
		if r < last && h[r] > h[big] {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return h
}

// sortUint64 sorts in place (radix by byte: the pair lists are large and
// uniformly distributed, so this beats comparison sorting).
func sortUint64(s []uint64) {
	if len(s) < 64 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return
	}
	buf := make([]uint64, len(s))
	var count [256]int
	src, dst := s, buf
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, v := range src {
			count[(v>>shift)&0xff]++
		}
		total := 0
		for i, c := range count {
			count[i] = total
			total += c
		}
		for _, v := range src {
			b := (v >> shift) & 0xff
			dst[count[b]] = v
			count[b]++
		}
		src, dst = dst, src
	}
	// 8 passes: src has rotated back to s.
	_ = dst
}
