package cliquetree

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the clique forest in Graphviz DOT format: vertices are
// labelled with their clique members, edges with their separators.
func (f *Forest) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "CliqueForest"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n  node [shape=box];\n", name); err != nil {
		return err
	}
	for i := 0; i < f.NumVertices(); i++ {
		members := make([]string, len(f.cliques[i]))
		for j, v := range f.cliques[i] {
			members[j] = fmt.Sprint(v)
		}
		if _, err := fmt.Fprintf(w, "  c%d [label=\"{%s}\"];\n", i, strings.Join(members, ",")); err != nil {
			return err
		}
	}
	for _, e := range f.Edges() {
		sep := f.cliques[e[0]].Intersect(f.cliques[e[1]])
		if _, err := fmt.Fprintf(w, "  c%d -- c%d [label=\"%v\"];\n", e[0], e[1], sep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
