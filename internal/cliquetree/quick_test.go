package cliquetree

import (
	"testing"
	"testing/quick"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestQuickForestInvariants drives the clique-forest invariants with
// generated seeds: forests are acyclic and spanning, subtrees are
// connected, and the forest weight is maximal.
func TestQuickForestInvariants(t *testing.T) {
	f := func(seedRaw uint16, sizeRaw uint8) bool {
		seed := int64(seedRaw)
		n := 20 + int(sizeRaw)%60
		g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		forest, err := New(g)
		if err != nil {
			return false
		}
		for _, v := range g.Nodes() {
			if !forest.SubtreeConnected(v) {
				return false
			}
		}
		return len(forest.Edges()) == forest.NumVertices()-len(forest.Components())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma2 drives Lemma 2 with generated seeds: per-node local
// MWSFs coincide with the induced subtrees.
func TestQuickLemma2(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		g := gen.RandomChordal(40, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, seed)
		forest, err := New(g)
		if err != nil {
			return false
		}
		for _, v := range g.Nodes() {
			phiIdx := forest.Phi(v)
			local := make([]graph.Set, len(phiIdx))
			for i, ci := range phiIdx {
				local[i] = forest.Clique(ci)
			}
			mwsf := MaxWeightSpanningForest(local, WCIG(local))
			for _, e := range mwsf {
				if !forest.HasEdge(phiIdx[e[0]], phiIdx[e[1]]) {
					return false
				}
			}
			if len(mwsf) != len(phiIdx)-1 && len(phiIdx) > 0 {
				// T(v) is a tree: |edges| = |φ(v)| − 1.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubpathNodesPartition checks that across the maximal binary
// paths of a forest, the subpath-node sets are pairwise disjoint.
func TestQuickSubpathNodesPartition(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		g := gen.RandomChordal(50, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		forest, err := New(g)
		if err != nil {
			return false
		}
		seen := make(map[graph.ID]bool)
		for _, p := range forest.MaximalBinaryPaths() {
			for _, v := range forest.SubpathNodes(p) {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathDiameterCapConsistency checks capped vs uncapped diameters.
func TestQuickPathDiameterCapConsistency(t *testing.T) {
	f := func(seedRaw uint16, capRaw uint8) bool {
		seed := int64(seedRaw)
		cap := 2 + int(capRaw)%12
		g := gen.RandomChordal(40, gen.ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.3}, seed)
		forest, err := New(g)
		if err != nil {
			return false
		}
		for _, p := range forest.MaximalBinaryPaths() {
			full := forest.PathDiameter(g, p)
			capped := forest.PathDiameterCapped(g, p, cap)
			if full >= cap && capped != cap {
				return false
			}
			if full < cap && capped != full {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaximalCliquesCount confirms the ≤ n bound on random chordal
// graphs (used throughout the paper).
func TestQuickMaximalCliquesCount(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		g := gen.RandomChordal(45, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.5}, seed)
		cliques, err := chordal.MaximalCliques(g)
		if err != nil {
			return false
		}
		return len(cliques) <= g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
