package cliquetree

import (
	"fmt"
	"sort"

	"repro/internal/chordal"
	"repro/internal/graph"
)

// MaximalCliquesContaining returns the maximal cliques of g that contain
// node u, computed purely from u's closed neighborhood: a clique C ∋ u is
// maximal in g iff it is maximal in g[Γ[u]] (any witness of
// non-maximality is adjacent to u and hence inside Γ[u]).
func MaximalCliquesContaining(g *graph.Graph, u graph.ID) ([]graph.Set, error) {
	nbhd := g.InducedSubgraph(g.ClosedNeighbors(u))
	all, err := chordal.MaximalCliques(nbhd)
	if err != nil {
		return nil, fmt.Errorf("neighborhood of %d: %w", u, err)
	}
	var out []graph.Set
	for _, c := range all {
		if c.Contains(u) {
			out = append(out, c)
		}
	}
	return out, nil
}

// LocalView is the partial picture of the global clique forest a network
// node assembles from its distance-d ball (paper Section 3, Figures 3–4):
// the cliques containing any node at distance at most d−1 from the
// center, plus, for each such node u, the edges of T(u) obtained as the
// unique maximum-weight spanning forest of W_G restricted to φ(u)
// (Lemma 2).
type LocalView struct {
	Center  graph.ID
	Cliques []graph.Set
	Edges   [][2]int // index pairs into Cliques, A < B
}

// ComputeLocalView builds the local view of the clique forest from a ball
// graph: ball must be the subgraph of the global graph induced by
// Γ^d[center]. Nodes at distance at most d−1 within the ball have their
// full closed neighborhood (and all edges among it) inside the ball, so
// their φ(u) and T(u) are computed exactly.
func ComputeLocalView(ball *graph.Graph, center graph.ID, d int) (*LocalView, error) {
	dist := ball.BFSDistances(center)
	index := make(map[string]int)
	var cliques []graph.Set
	addClique := func(c graph.Set) int {
		key := cliqueKey(c)
		if i, ok := index[key]; ok {
			return i
		}
		index[key] = len(cliques)
		cliques = append(cliques, c)
		return len(cliques) - 1
	}
	edgeSet := make(map[[2]int]bool)

	inner := make([]graph.ID, 0, len(dist))
	for u, du := range dist {
		if du <= d-1 {
			inner = append(inner, u)
		}
	}
	sort.Slice(inner, func(i, j int) bool { return inner[i] < inner[j] })

	for _, u := range inner {
		phi, err := MaximalCliquesContaining(ball, u)
		if err != nil {
			return nil, fmt.Errorf("local view of %d: %w", center, err)
		}
		localIdx := make([]int, len(phi))
		for i, c := range phi {
			localIdx[i] = addClique(c)
		}
		// T(u): unique MWSF of W_G restricted to φ(u) (Lemma 2).
		for _, e := range MaxWeightSpanningForest(phi, WCIG(phi)) {
			a, b := localIdx[e[0]], localIdx[e[1]]
			if a > b {
				a, b = b, a
			}
			edgeSet[[2]int{a, b}] = true
		}
	}

	edges := make([][2]int, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return &LocalView{Center: center, Cliques: cliques, Edges: edges}, nil
}

func cliqueKey(c graph.Set) string {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Forest assembles the view into a Forest-shaped structure so that the
// path machinery can run on it. Degrees of cliques near the knowledge
// horizon are underestimates of their global forest degree; callers must
// keep a safety margin, as the distributed algorithms do.
func (lv *LocalView) Forest() *Forest {
	f := &Forest{
		cliques: lv.Cliques,
		adj:     make([][]int, len(lv.Cliques)),
		phi:     make(map[graph.ID][]int),
	}
	for i, c := range lv.Cliques {
		for _, v := range c {
			f.phi[v] = append(f.phi[v], i)
		}
	}
	for _, e := range lv.Edges {
		f.adj[e[0]] = append(f.adj[e[0]], e[1])
		f.adj[e[1]] = append(f.adj[e[1]], e[0])
	}
	for i := range f.adj {
		sort.Ints(f.adj[i])
	}
	return f
}

// FindClique returns the index of the clique with exactly the given
// members, or -1.
func (lv *LocalView) FindClique(c graph.Set) int {
	for i, x := range lv.Cliques {
		if x.Equal(c) {
			return i
		}
	}
	return -1
}

// ConsistentWith checks that the view is a sub-picture of the global
// forest: every view clique is a global maximal clique and every view
// edge is a global forest edge. It returns an error describing the first
// inconsistency.
func (lv *LocalView) ConsistentWith(global *Forest) error {
	toGlobal := make([]int, len(lv.Cliques))
	for i, c := range lv.Cliques {
		toGlobal[i] = -1
		for j, gc := range global.cliques {
			if c.Equal(gc) {
				toGlobal[i] = j
				break
			}
		}
		if toGlobal[i] == -1 {
			return fmt.Errorf("view clique %v is not a global maximal clique", c)
		}
	}
	for _, e := range lv.Edges {
		if !global.HasEdge(toGlobal[e[0]], toGlobal[e[1]]) {
			return fmt.Errorf("view edge %v-%v is not a global forest edge",
				lv.Cliques[e[0]], lv.Cliques[e[1]])
		}
	}
	return nil
}
