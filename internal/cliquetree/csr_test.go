package cliquetree

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// forestsEqual compares two forests structurally: same cliques in the
// same order, same adjacency, same phi rows.
func forestsEqual(t *testing.T, want, got *Forest) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() {
		t.Fatalf("clique count %d vs %d", got.NumVertices(), want.NumVertices())
	}
	for i := 0; i < want.NumVertices(); i++ {
		if want.Clique(i).Compare(got.Clique(i)) != 0 {
			t.Fatalf("clique %d: %v vs %v", i, got.Clique(i), want.Clique(i))
		}
		wn, gn := want.Neighbors(i), got.Neighbors(i)
		if len(wn) != len(gn) {
			t.Fatalf("degree of clique %d: %v vs %v", i, gn, wn)
		}
		for j := range wn {
			if wn[j] != gn[j] {
				t.Fatalf("adjacency of clique %d: %v vs %v", i, gn, wn)
			}
		}
	}
	for v, wp := range want.phi {
		gp := got.Phi(v)
		if len(wp) != len(gp) {
			t.Fatalf("phi(%d): %v vs %v", v, gp, wp)
		}
		for j := range wp {
			if wp[j] != gp[j] {
				t.Fatalf("phi(%d): %v vs %v", v, gp, wp)
			}
		}
	}
	if len(got.phi) != len(want.phi) {
		t.Fatalf("phi size %d vs %d", len(got.phi), len(want.phi))
	}
}

func buildCSR(t *testing.T, g *graph.Graph) *Forest {
	t.Helper()
	ix := graph.NewIndexed(g)
	b := NewBuilder(ix)
	var f CSRForest
	if err := b.Build(nil, ix.NumNodes(), &f); err != nil {
		t.Fatalf("csr build: %v", err)
	}
	return ToForest(&f, ix.IDs())
}

func TestCSRBuilderMatchesNew(t *testing.T) {
	cases := map[string]*graph.Graph{
		"empty":       graph.New(),
		"single":      gen.Path(1),
		"path":        gen.Path(30),
		"star":        gen.Star(12),
		"complete":    gen.Complete(8),
		"caterpillar": gen.Caterpillar(10, 3),
		"hubtree":     gen.HubTree(3, 4),
	}
	for seed := int64(0); seed < 10; seed++ {
		cases["chordal"+string(rune('0'+seed))] = gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, seed)
		cases["ktree"+string(rune('0'+seed))] = gen.KTree(50, 3, seed)
		cases["tree"+string(rune('0'+seed))] = gen.Tree(60, seed)
		cases["subtree"+string(rune('0'+seed))] = gen.RandomChordalSubtree(120, 3, 5, seed)
		cases["interval"+string(rune('0'+seed))] = gen.RandomInterval(60, 20, 3, seed)
	}
	for name, g := range cases {
		want, err := New(g)
		if err != nil {
			t.Fatalf("%s: reference build: %v", name, err)
		}
		forestsEqual(t, want, buildCSR(t, g))
	}
}

// TestCSRBuilderAliveMask peels an arbitrary node subset away and checks
// the masked build equals a fresh build of the induced subgraph — the
// exact reuse pattern of the peeling process.
func TestCSRBuilderAliveMask(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(100, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		ix := graph.NewIndexed(g)
		n := ix.NumNodes()
		alive := make([]bool, n)
		var kept graph.Set
		nAlive := 0
		for i := 0; i < n; i++ {
			// Drop every third node: the survivors keep a chordal graph
			// (every induced subgraph of a chordal graph is chordal).
			if i%3 != 0 {
				alive[i] = true
				kept = append(kept, ix.IDOf(i))
				nAlive++
			}
		}
		want, err := New(g.InducedSubgraph(kept))
		if err != nil {
			t.Fatalf("seed %d: reference build: %v", seed, err)
		}
		b := NewBuilder(ix)
		var f CSRForest
		if err := b.Build(alive, nAlive, &f); err != nil {
			t.Fatalf("seed %d: csr build: %v", seed, err)
		}
		forestsEqual(t, want, ToForest(&f, ix.IDs()))
	}
}

// TestCSRBuilderReuse rebuilds with the same Builder across shrinking
// masks, checking scratch reuse does not leak state between builds.
func TestCSRBuilderReuse(t *testing.T) {
	g := gen.RandomChordalSubtree(150, 3, 5, 9)
	ix := graph.NewIndexed(g)
	n := ix.NumNodes()
	b := NewBuilder(ix)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	nAlive := n
	var f CSRForest
	for cut := 0; cut < 3; cut++ {
		var kept graph.Set
		for i := 0; i < n; i++ {
			if alive[i] {
				kept = append(kept, ix.IDOf(i))
			}
		}
		want, err := New(g.InducedSubgraph(kept))
		if err != nil {
			t.Fatalf("cut %d: reference: %v", cut, err)
		}
		if err := b.Build(alive, nAlive, &f); err != nil {
			t.Fatalf("cut %d: csr: %v", cut, err)
		}
		forestsEqual(t, want, ToForest(&f, ix.IDs()))
		// Remove the members of every clique that is a forest leaf.
		for c := 0; c < f.NumCliques && nAlive > 10; c++ {
			if f.Deg(int32(c)) <= 1 {
				for _, v := range f.Clique(int32(c)) {
					if alive[v] && nAlive > 10 {
						alive[v] = false
						nAlive--
					}
				}
			}
		}
	}
}

func TestCSRBuilderNonChordalError(t *testing.T) {
	g := gen.Cycle(5)
	_, wantErr := New(g)
	if wantErr == nil {
		t.Fatal("reference accepted C5")
	}
	ix := graph.NewIndexed(g)
	var f CSRForest
	err := NewBuilder(ix).Build(nil, ix.NumNodes(), &f)
	if err == nil {
		t.Fatal("csr build accepted C5")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("error text %q vs %q", err.Error(), wantErr.Error())
	}
}
