package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders g in Graphviz DOT format. Optional per-node labels
// replace the default ID labels; nil entries fall back to the ID.
func (g *Graph) WriteDOT(w io.Writer, name string, labels map[ID]string) error {
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for _, v := range g.Nodes() {
		label, ok := labels[v]
		if !ok {
			label = fmt.Sprint(v)
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", v, label); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d;\n", e[0], e[1]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
