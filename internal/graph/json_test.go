package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := FromEdges([]ID{42}, [][2]ID{{1, 2}, {2, 3}, {1, 3}})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip changed graph: %v vs %v", g, back)
	}
}

func TestReadJSONImplicitNodes(t *testing.T) {
	g, err := ReadJSON(strings.NewReader(`{"edges":[[5,7]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(5, 7) || g.NumNodes() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestWriteDOT(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "", map[ID]string{1: "alpha"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", `n1 [label="alpha"]`, `n3 [label="3"]`, "n1 -- n2;", "n2 -- n3;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
