// Package graph provides the undirected-graph substrate used throughout the
// reproduction: graphs over arbitrary integer node IDs with deterministic
// (sorted) adjacency iteration, breadth-first search, induced subgraphs,
// connected components, and graph powers.
//
// Node identifiers are opaque integers. The paper's algorithms break
// symmetry with unique IDs, so IDs are part of the model, not just an
// implementation detail.
package graph

import (
	"fmt"
	"slices"
	"strings"
)

// ID identifies a node of a graph. IDs are unique within a graph and are
// used by the distributed algorithms for symmetry breaking.
type ID int

// Graph is an undirected simple graph. The zero value is not usable; create
// instances with New. Graph is not safe for concurrent mutation.
type Graph struct {
	adj map[ID]map[ID]struct{}
	// nbrCache holds sorted adjacency slices built by Neighbors, so that
	// repeated reads (the common case after construction) are
	// allocation-free. Entries are invalidated when the incident node's
	// adjacency mutates; cached slices are never modified in place, so a
	// slice handed out before a mutation stays a valid pre-mutation
	// snapshot. nil until the first Neighbors call, so pure construction
	// pays nothing.
	nbrCache map[ID][]ID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[ID]map[ID]struct{})}
}

// invalidate drops v's cached adjacency slice after a mutation.
func (g *Graph) invalidate(v ID) {
	if g.nbrCache != nil {
		delete(g.nbrCache, v)
	}
}

// FromEdges builds a graph containing the given nodes and edges. Nodes
// mentioned only in edges are added implicitly.
func FromEdges(nodes []ID, edges [][2]ID) *Graph {
	g := New()
	for _, v := range nodes {
		g.AddNode(v)
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// AddNode inserts node v. Adding an existing node is a no-op.
func (g *Graph) AddNode(v ID) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[ID]struct{})
	}
}

// AddEdge inserts the undirected edge uv, adding endpoints as needed.
// Self-loops are ignored.
func (g *Graph) AddEdge(u, v ID) {
	if u == v {
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; ok {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.invalidate(u)
	g.invalidate(v)
}

// RemoveEdge deletes the edge uv if present.
func (g *Graph) RemoveEdge(u, v ID) {
	nb, ok := g.adj[u]
	if !ok {
		return
	}
	if _, ok := nb[v]; !ok {
		return
	}
	delete(nb, v)
	delete(g.adj[v], u)
	g.invalidate(u)
	g.invalidate(v)
}

// RemoveNode deletes node v and all incident edges.
func (g *Graph) RemoveNode(v ID) {
	for u := range g.adj[v] {
		delete(g.adj[u], v)
		g.invalidate(u)
	}
	delete(g.adj, v)
	g.invalidate(v)
}

// RemoveNodes deletes every node in vs.
func (g *Graph) RemoveNodes(vs []ID) {
	for _, v := range vs {
		g.RemoveNode(v)
	}
}

// HasNode reports whether v is a node of g.
func (g *Graph) HasNode(v ID) bool {
	_, ok := g.adj[v]
	return ok
}

// HasEdge reports whether the edge uv exists.
func (g *Graph) HasEdge(u, v ID) bool {
	nb, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = nb[v]
	return ok
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Nodes returns all nodes in increasing ID order.
func (g *Graph) Nodes() []ID {
	out := make([]ID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Edges returns all edges with e[0] < e[1], sorted lexicographically.
func (g *Graph) Edges() [][2]ID {
	out := make([][2]ID, 0, g.NumEdges())
	for u, nb := range g.adj {
		for v := range nb {
			if u < v {
				out = append(out, [2]ID{u, v})
			}
		}
	}
	slices.SortFunc(out, func(a, b [2]ID) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return out
}

// Neighbors returns the open neighborhood Γ(v) in increasing ID order.
// The result is cached until v's adjacency next mutates and is shared
// between callers: treat it as read-only.
func (g *Graph) Neighbors(v ID) []ID {
	if out, ok := g.nbrCache[v]; ok {
		return out
	}
	nb := g.adj[v]
	out := make([]ID, 0, len(nb))
	for u := range nb {
		out = append(out, u)
	}
	slices.Sort(out)
	if g.nbrCache == nil {
		g.nbrCache = make(map[ID][]ID)
	}
	g.nbrCache[v] = out
	return out
}

// ClosedNeighbors returns Γ[v] = Γ(v) ∪ {v} in increasing ID order.
func (g *Graph) ClosedNeighbors(v ID) []ID {
	nb := g.Neighbors(v)
	out := make([]ID, 0, len(nb)+1)
	i := 0
	for ; i < len(nb) && nb[i] < v; i++ {
		out = append(out, nb[i])
	}
	out = append(out, v)
	out = append(out, nb[i:]...)
	return out
}

// ForEachNeighbor calls fn for every neighbor of v in unspecified order,
// without allocating. Hot paths (BFS and friends) use this instead of
// Neighbors; callers needing deterministic order use Neighbors.
func (g *Graph) ForEachNeighbor(v ID, fn func(u ID)) {
	for u := range g.adj[v] {
		fn(u)
	}
}

// Degree returns deg(v); zero if v is not a node.
func (g *Graph) Degree(v ID) int { return len(g.adj[v]) }

// MaxDegree returns Δ(g), the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[ID]map[ID]struct{}, len(g.adj))}
	for v, nb := range g.adj {
		cnb := make(map[ID]struct{}, len(nb))
		for u := range nb {
			cnb[u] = struct{}{}
		}
		c.adj[v] = cnb
	}
	return c
}

// InducedSubgraph returns g[vs], the subgraph induced by the given nodes.
// Nodes not present in g are ignored.
func (g *Graph) InducedSubgraph(vs []ID) *Graph {
	sub := New()
	keep := make(map[ID]struct{}, len(vs))
	for _, v := range vs {
		if g.HasNode(v) {
			keep[v] = struct{}{}
			sub.AddNode(v)
		}
	}
	for v := range keep {
		for u := range g.adj[v] {
			if _, ok := keep[u]; ok && v < u {
				sub.AddEdge(v, u)
			}
		}
	}
	return sub
}

// IsClique reports whether the given nodes are pairwise adjacent in g.
func (g *Graph) IsClique(vs []ID) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// BFSDistances returns the distance from src to every reachable node.
func (g *Graph) BFSDistances(src ID) map[ID]int {
	dist := map[ID]int{src: 0}
	frontier := []ID{src}
	for len(frontier) > 0 {
		var next []ID
		for _, v := range frontier {
			d := dist[v]
			for u := range g.adj[v] {
				if _, seen := dist[u]; !seen {
					dist[u] = d + 1
					//chordalvet:ignore maporder frontier order does not affect the distance map: BFS levels are order-independent
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return dist
}

// Distance returns dist(u, v), or -1 if v is unreachable from u.
func (g *Graph) Distance(u, v ID) int {
	if u == v {
		if g.HasNode(u) {
			return 0
		}
		return -1
	}
	dist := map[ID]int{u: 0}
	frontier := []ID{u}
	for len(frontier) > 0 {
		var next []ID
		for _, w := range frontier {
			d := dist[w]
			for x := range g.adj[w] {
				if x == v {
					return d + 1
				}
				if _, seen := dist[x]; !seen {
					dist[x] = d + 1
					//chordalvet:ignore maporder frontier order does not affect the returned distance
					next = append(next, x)
				}
			}
		}
		frontier = next
	}
	return -1
}

// Ball returns the closed distance-r neighborhood Γ^r[v] in increasing ID
// order: all nodes at distance at most r from v.
func (g *Graph) Ball(v ID, r int) []ID {
	dist := map[ID]int{v: 0}
	frontier := []ID{v}
	for step := 0; step < r && len(frontier) > 0; step++ {
		var next []ID
		for _, w := range frontier {
			for u := range g.adj[w] {
				if _, seen := dist[u]; !seen {
					dist[u] = step + 1
					//chordalvet:ignore maporder frontier order does not affect the ball: members are collected from the map and sorted below
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	out := make([]ID, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	slices.Sort(out)
	return out
}

// Components returns the connected components of g, each sorted by ID,
// ordered by their smallest node ID.
func (g *Graph) Components() [][]ID {
	seen := make(map[ID]struct{}, len(g.adj))
	var comps [][]ID
	for _, start := range g.Nodes() {
		if _, ok := seen[start]; ok {
			continue
		}
		comp := []ID{start}
		seen[start] = struct{}{}
		for i := 0; i < len(comp); i++ {
			for u := range g.adj[comp[i]] {
				if _, ok := seen[u]; !ok {
					seen[u] = struct{}{}
					comp = append(comp, u)
				}
			}
		}
		slices.Sort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the maximum eccentricity over all nodes, computed per
// connected component (the largest component diameter). Returns 0 for
// graphs with at most one node.
func (g *Graph) Diameter() int {
	max := 0
	for v := range g.adj {
		for _, d := range g.BFSDistances(v) {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Power returns g^k: same node set, with an edge uv whenever
// 0 < dist_g(u, v) <= k.
func (g *Graph) Power(k int) *Graph {
	p := New()
	for v := range g.adj {
		p.AddNode(v)
	}
	for v := range g.adj {
		for _, u := range g.Ball(v, k) {
			if u != v {
				p.AddEdge(v, u)
			}
		}
	}
	return p
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	for v, nb := range g.adj {
		hnb, ok := h.adj[v]
		if !ok || len(nb) != len(hnb) {
			return false
		}
		for u := range nb {
			if _, ok := hnb[u]; !ok {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "n=<nodes> m=<edges> {u-v, ...}" for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d {", g.NumNodes(), g.NumEdges())
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
	}
	b.WriteString("}")
	return b.String()
}

// Degeneracy returns the graph's degeneracy d (every subgraph has a node
// of degree ≤ d) and a degeneracy ordering (repeatedly removing a
// minimum-degree node). Chordal graphs satisfy degeneracy = ω − 1.
func (g *Graph) Degeneracy() (int, []ID) {
	work := g.Clone()
	order := make([]ID, 0, g.NumNodes())
	degeneracy := 0
	for work.NumNodes() > 0 {
		var best ID
		bestDeg := 1 << 30
		for _, v := range work.Nodes() {
			if d := work.Degree(v); d < bestDeg {
				best = v
				bestDeg = d
			}
		}
		if bestDeg > degeneracy {
			degeneracy = bestDeg
		}
		order = append(order, best)
		work.RemoveNode(best)
	}
	return degeneracy, order
}
