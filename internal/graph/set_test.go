package graph

import (
	"testing"
	"testing/quick"
)

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet(5, 1, 3, 5, 1)
	want := Set{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewSet = %v, want %v", s, want)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(2, 4, 6)
	for _, v := range []ID{2, 4, 6} {
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false", v)
		}
	}
	for _, v := range []ID{1, 3, 5, 7} {
		if s.Contains(v) {
			t.Fatalf("Contains(%d) = true", v)
		}
	}
	if NewSet().Contains(0) {
		t.Fatal("empty set contains 0")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(1, 2, 3, 4)
	b := NewSet(3, 4, 5, 6)
	if got := a.Intersect(b); !got.Equal(NewSet(3, 4)) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(NewSet(1, 2, 3, 4, 5, 6)) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewSet(1, 2)) {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false")
	}
	if NewSet(1, 2).Intersects(NewSet(3, 4)) {
		t.Fatal("disjoint sets reported intersecting")
	}
}

func TestSubsetRelations(t *testing.T) {
	a := NewSet(2, 4)
	b := NewSet(1, 2, 3, 4)
	if !a.SubsetOf(b) || !a.ProperSubsetOf(b) {
		t.Fatal("subset relations wrong")
	}
	if b.SubsetOf(a) {
		t.Fatal("superset reported as subset")
	}
	if !a.SubsetOf(a) || a.ProperSubsetOf(a) {
		t.Fatal("reflexive subset relations wrong")
	}
	var empty Set
	if !empty.SubsetOf(a) {
		t.Fatal("empty set must be subset of everything")
	}
}

func TestSetCompareLexicographic(t *testing.T) {
	cases := []struct {
		a, b Set
		want int
	}{
		{NewSet(1, 2, 3), NewSet(1, 2, 3), 0},
		{NewSet(1, 2), NewSet(1, 2, 3), -1},
		{NewSet(1, 2, 3), NewSet(1, 2), 1},
		{NewSet(1, 2, 4), NewSet(1, 3), -1}, // word 124 ≺ 13 because 2 < 3
		{NewSet(5), NewSet(1, 9), 1},
		{nil, NewSet(1), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSetCloneIndependent(t *testing.T) {
	a := NewSet(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func toSet(raw []uint8) Set {
	ids := make([]ID, len(raw))
	for i, v := range raw {
		ids[i] = ID(v % 32)
	}
	return NewSet(ids...)
}

func TestPropertySetAlgebra(t *testing.T) {
	f := func(ar, br []uint8) bool {
		a, b := toSet(ar), toSet(br)
		inter := a.Intersect(b)
		union := a.Union(b)
		minus := a.Minus(b)
		// |A∪B| = |A| + |B| - |A∩B|
		if len(union) != len(a)+len(b)-len(inter) {
			return false
		}
		// A\B and A∩B partition A.
		if len(minus)+len(inter) != len(a) {
			return false
		}
		// Membership consistency.
		for _, v := range union {
			if !a.Contains(v) && !b.Contains(v) {
				return false
			}
		}
		for _, v := range inter {
			if !a.Contains(v) || !b.Contains(v) {
				return false
			}
		}
		for _, v := range minus {
			if !a.Contains(v) || b.Contains(v) {
				return false
			}
		}
		return inter.SubsetOf(a) && inter.SubsetOf(b) && a.SubsetOf(union)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompareIsTotalOrder(t *testing.T) {
	f := func(ar, br, cr []uint8) bool {
		a, b, c := toSet(ar), toSet(br), toSet(cr)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Compare == 0 iff Equal.
		if (a.Compare(b) == 0) != a.Equal(b) {
			return false
		}
		// Transitivity (only check the <= direction).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
