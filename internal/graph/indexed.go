package graph

import (
	"fmt"
	"slices"
)

// Indexed is a frozen, index-based snapshot of a Graph: the n nodes are
// densely numbered 0..n-1 in increasing ID order and adjacency is stored
// in compressed sparse row (CSR) form with every neighbor list sorted
// ascending. Lookups in both directions (ID→index, index→ID) are O(1),
// and neighbor slices are shared views into the snapshot, so repeated
// reads allocate nothing.
//
// An Indexed is immutable and safe for any number of concurrent readers;
// mutating the source Graph after the snapshot is taken does not affect
// it. The simulation hot paths (dist.Engine, flooding, pruning) run on
// snapshots; the mutable Graph remains the construction-time interface.
type Indexed struct {
	ids    []ID         // index -> ID, strictly increasing
	index  map[ID]int32 // ID -> index
	rowPtr []int32      // CSR row pointers, len n+1
	colIdx []int32      // neighbor indices, sorted ascending within a row
	colID  []ID         // neighbor IDs, aligned with colIdx
}

// NewIndexed takes a snapshot of g. The snapshot orders nodes by
// increasing ID, matching g.Nodes().
//
//chordalvet:coldpath snapshot construction runs once per iteration, not per center
func NewIndexed(g *Graph) *Indexed {
	ids := g.Nodes()
	n := len(ids)
	ix := &Indexed{
		ids:    ids,
		index:  make(map[ID]int32, n),
		rowPtr: make([]int32, n+1),
	}
	for i, v := range ids {
		ix.index[v] = int32(i)
	}
	total := 0
	for _, v := range ids {
		total += len(g.adj[v])
	}
	ix.colIdx = make([]int32, 0, total)
	ix.colID = make([]ID, total)
	for i, v := range ids {
		ix.rowPtr[i] = int32(len(ix.colIdx))
		for u := range g.adj[v] {
			//chordalvet:ignore maporder each CSR row is sorted in place immediately below
			ix.colIdx = append(ix.colIdx, ix.index[u])
		}
		row := ix.colIdx[ix.rowPtr[i]:]
		slices.Sort(row)
		for k, j := range row {
			ix.colID[int(ix.rowPtr[i])+k] = ix.ids[j]
		}
	}
	ix.rowPtr[n] = int32(len(ix.colIdx))
	return ix
}

// CSR returns the snapshot's raw compressed-sparse-row form: the ID
// table and the row-pointer/column-index arrays. The slices are shared
// views into the snapshot and must not be modified. Together with
// NewIndexedFromCSR this is the serialization boundary of a snapshot —
// the partitioned runtime ships exactly these three arrays to shard
// processes, which rebuild an identical Indexed on the other side.
func (ix *Indexed) CSR() (ids []ID, rowPtr, colIdx []int32) {
	return ix.ids, ix.rowPtr, ix.colIdx
}

// NewIndexedFromCSR rebuilds a snapshot from its CSR form (see CSR).
// The inputs must describe a valid snapshot: ids strictly increasing,
// rowPtr of length len(ids)+1 nondecreasing from 0 to len(colIdx), and
// every column index in range with each row sorted ascending. The
// arrays are adopted, not copied — the caller must not modify them
// afterwards. Validation is O(n+m): a shard process rebuilding a
// coordinator's snapshot must fail loudly on a corrupted transfer
// rather than silently diverge.
func NewIndexedFromCSR(ids []ID, rowPtr, colIdx []int32) (*Indexed, error) {
	n := len(ids)
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("graph: CSR rowPtr has %d entries for %d nodes, want %d", len(rowPtr), n, n+1)
	}
	if rowPtr[0] != 0 || int(rowPtr[n]) != len(colIdx) {
		return nil, fmt.Errorf("graph: CSR rowPtr spans [%d, %d], want [0, %d]", rowPtr[0], rowPtr[n], len(colIdx))
	}
	ix := &Indexed{
		ids:    ids,
		index:  make(map[ID]int32, n),
		rowPtr: rowPtr,
		colIdx: colIdx,
		colID:  make([]ID, len(colIdx)),
	}
	for i, v := range ids {
		if i > 0 && v <= ids[i-1] {
			return nil, fmt.Errorf("graph: CSR ids not strictly increasing at index %d", i)
		}
		ix.index[v] = int32(i)
	}
	for i := 0; i < n; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("graph: CSR rowPtr decreases at row %d", i)
		}
		row := colIdx[rowPtr[i]:rowPtr[i+1]]
		for k, j := range row {
			if j < 0 || int(j) >= n {
				return nil, fmt.Errorf("graph: CSR row %d names index %d, out of range [0, %d)", i, j, n)
			}
			if k > 0 && j <= row[k-1] {
				return nil, fmt.Errorf("graph: CSR row %d not sorted ascending at position %d", i, k)
			}
			ix.colID[int(rowPtr[i])+k] = ids[j]
		}
	}
	return ix, nil
}

// NumNodes returns the number of nodes.
func (ix *Indexed) NumNodes() int { return len(ix.ids) }

// NumEdges returns the number of edges.
func (ix *Indexed) NumEdges() int { return len(ix.colIdx) / 2 }

// IDs returns all node IDs in increasing order. The slice is shared with
// the snapshot and must not be modified.
func (ix *Indexed) IDs() []ID { return ix.ids }

// IDOf returns the ID of the node at index i.
func (ix *Indexed) IDOf(i int) ID { return ix.ids[i] }

// IndexOf returns the dense index of node v, and whether v is a node.
func (ix *Indexed) IndexOf(v ID) (int, bool) {
	i, ok := ix.index[v]
	return int(i), ok
}

// Degree returns the degree of the node at index i.
func (ix *Indexed) Degree(i int) int {
	return int(ix.rowPtr[i+1] - ix.rowPtr[i])
}

// MaxDegree returns the maximum degree over all nodes (0 when empty).
func (ix *Indexed) MaxDegree() int {
	max := 0
	for i := range ix.ids {
		if d := ix.Degree(i); d > max {
			max = d
		}
	}
	return max
}

// NeighborIndices returns the neighbor indices of node i in ascending
// index order. The slice is shared with the snapshot and must not be
// modified.
func (ix *Indexed) NeighborIndices(i int) []int32 {
	return ix.colIdx[ix.rowPtr[i]:ix.rowPtr[i+1]]
}

// NeighborIDs returns the neighbor IDs of node i in ascending ID order
// (indices ascend with IDs, so the two orders agree). The slice is shared
// with the snapshot and must not be modified.
func (ix *Indexed) NeighborIDs(i int) []ID {
	return ix.colID[ix.rowPtr[i]:ix.rowPtr[i+1]]
}

// HasEdge reports whether nodes at indices i and j are adjacent, by
// binary search over the shorter of the two rows.
func (ix *Indexed) HasEdge(i, j int) bool {
	if ix.Degree(i) > ix.Degree(j) {
		i, j = j, i
	}
	row := ix.NeighborIndices(i)
	_, found := slices.BinarySearch(row, int32(j))
	return found
}
