package graph

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks the graph parser never panics and that every graph
// it accepts survives a round trip.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[1,2],"edges":[[1,2]]}`))
	f.Add([]byte(`{"edges":[[5,7],[7,9]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"edges":[[1,1]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("serialize accepted graph: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if !g.Equal(back) {
			t.Fatalf("round trip changed graph")
		}
	})
}

// FuzzGraphOps drives basic operations from a fuzzed edge list.
func FuzzGraphOps(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := New()
		for i := 0; i+1 < len(data); i += 2 {
			g.AddEdge(ID(data[i]), ID(data[i+1]))
		}
		n := g.NumNodes()
		comps := g.Components()
		total := 0
		for _, c := range comps {
			total += len(c)
		}
		if total != n {
			t.Fatalf("components cover %d of %d nodes", total, n)
		}
		if len(g.Nodes()) != n {
			t.Fatal("Nodes length mismatch")
		}
		for _, v := range g.Nodes() {
			ball := g.Ball(v, 2)
			if len(ball) == 0 || ball[0] > v && !contains(ball, v) {
				t.Fatal("ball must contain its center")
			}
		}
	})
}

func contains(s []ID, v ID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
