package graph

import (
	"runtime"
	"sync"
	"testing"
)

// TestIndexedConcurrentReads hammers one Indexed snapshot from many
// goroutines at once. The snapshot's contract is "immutable, safe for
// any number of concurrent readers"; under `make race` this test turns
// any accidental write (or lazily-built internal state) into a
// race-detector failure, and in all modes it checks every reader
// observes identical data. The source graph is mutated mid-flight to
// verify snapshot isolation.
func TestIndexedConcurrentReads(t *testing.T) {
	g := New()
	const n = 300
	for v := 0; v < n; v++ {
		for _, u := range []int{(v + 1) % n, (v + 7) % n, (v * 13) % n} {
			g.AddEdge(ID(v), ID(u))
		}
	}
	ix := NewIndexed(g)
	want := snapshotChecksum(ix)

	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	sums := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				sums[w] = snapshotChecksum(ix)
			}
		}(w)
	}
	// Concurrent mutation of the source graph must not affect readers.
	g.AddEdge(0, ID(n/2+1))
	g.RemoveEdge(1, 2)
	g.RemoveNode(ID(n - 1))
	wg.Wait()

	for w, got := range sums {
		if got != want {
			t.Fatalf("worker %d read checksum %d, sequential baseline %d", w, got, want)
		}
	}
	if got := snapshotChecksum(ix); got != want {
		t.Fatalf("snapshot changed after source mutation: %d != %d", got, want)
	}
}

// snapshotChecksum folds every accessor the engine's hot paths use into
// one order-sensitive hash.
func snapshotChecksum(ix *Indexed) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x int) {
		h = (h ^ uint64(x)) * prime
	}
	mix(ix.NumNodes())
	mix(ix.NumEdges())
	mix(ix.MaxDegree())
	for i, v := range ix.IDs() {
		mix(int(v))
		if j, ok := ix.IndexOf(v); !ok || j != i {
			mix(-1)
		}
		mix(ix.Degree(i))
		for _, u := range ix.NeighborIDs(i) {
			mix(int(u))
		}
		for _, j := range ix.NeighborIndices(i) {
			mix(int(j))
			if !ix.HasEdge(i, int(j)) {
				mix(-2)
			}
		}
	}
	return h
}
