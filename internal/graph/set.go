package graph

import (
	"slices"
	"sort"
)

// Set is a sorted, duplicate-free slice of node IDs. The order makes set
// algebra deterministic, which the canonical clique-forest construction
// depends on. All operations treat their receivers/arguments as immutable
// and return fresh slices.
type Set []ID

// NewSet returns the set containing the given IDs, sorted and deduplicated.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	copy(s, ids)
	slices.Sort(s)
	return dedup(s)
}

func dedup(s Set) Set {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether v is in s.
func (s Set) Contains(v ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) {
		for j < len(t) && t[j] < s[i] {
			j++
		}
		if j < len(t) && t[j] == s[i] {
			i++
			continue
		}
		out = append(out, s[i])
		i++
	}
	return out
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	i, j := 0, 0
	for i < len(s) {
		for j < len(t) && t[j] < s[i] {
			j++
		}
		if j >= len(t) || t[j] != s[i] {
			return false
		}
		i++
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return len(s) < len(t) && s.SubsetOf(t)
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s Set) Intersects(t Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Compare orders sets by the lexicographic order ≺ over ID words that the
// paper uses for σ(C) (identifiers listed in increasing order). It returns
// -1, 0, or +1.
func (s Set) Compare(t Set) int {
	for i := 0; i < len(s) && i < len(t); i++ {
		if s[i] != t[i] {
			if s[i] < t[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}
