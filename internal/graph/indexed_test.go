package graph

import (
	"slices"
	"testing"
)

func buildTestGraph() *Graph {
	g := New()
	// Deliberately non-contiguous, unordered IDs.
	for _, e := range [][2]ID{{10, 3}, {3, 7}, {7, 10}, {7, 42}, {1, 42}} {
		g.AddEdge(e[0], e[1])
	}
	g.AddNode(99) // isolated
	return g
}

func TestIndexedSnapshot(t *testing.T) {
	g := buildTestGraph()
	ix := NewIndexed(g)

	if ix.NumNodes() != g.NumNodes() || ix.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			ix.NumNodes(), ix.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	ids := ix.IDs()
	if !slices.IsSorted(ids) {
		t.Fatalf("IDs not sorted: %v", ids)
	}
	for i, v := range ids {
		if ix.IDOf(i) != v {
			t.Fatalf("IDOf(%d) = %d, want %d", i, ix.IDOf(i), v)
		}
		if j, ok := ix.IndexOf(v); !ok || j != i {
			t.Fatalf("IndexOf(%d) = (%d,%v), want (%d,true)", v, j, ok, i)
		}
		wantNbrs := g.Neighbors(v)
		if !slices.Equal(ix.NeighborIDs(i), wantNbrs) {
			t.Fatalf("NeighborIDs(%d) = %v, want %v", v, ix.NeighborIDs(i), wantNbrs)
		}
		if ix.Degree(i) != len(wantNbrs) {
			t.Fatalf("Degree(%d) = %d, want %d", v, ix.Degree(i), len(wantNbrs))
		}
		// Index and ID neighbor views must be aligned and sorted.
		nbrIdx := ix.NeighborIndices(i)
		if !slices.IsSorted(nbrIdx) {
			t.Fatalf("NeighborIndices(%d) not sorted: %v", v, nbrIdx)
		}
		for k, j := range nbrIdx {
			if ix.IDOf(int(j)) != ix.NeighborIDs(i)[k] {
				t.Fatalf("node %d: colIdx/colID misaligned at %d", v, k)
			}
		}
	}
	if _, ok := ix.IndexOf(1234); ok {
		t.Fatal("IndexOf of a non-node reported ok")
	}
	for i := range ids {
		for j := range ids {
			if ix.HasEdge(i, j) != g.HasEdge(ids[i], ids[j]) {
				t.Fatalf("HasEdge(%d,%d) disagrees with graph", ids[i], ids[j])
			}
		}
	}
}

func TestIndexedImmuneToMutation(t *testing.T) {
	g := buildTestGraph()
	ix := NewIndexed(g)
	before := slices.Clone(ix.NeighborIDs(mustIndex(t, ix, 7)))
	g.AddEdge(7, 99)
	g.RemoveEdge(7, 3)
	if !slices.Equal(ix.NeighborIDs(mustIndex(t, ix, 7)), before) {
		t.Fatal("snapshot changed after source graph mutation")
	}
}

func mustIndex(t *testing.T, ix *Indexed, v ID) int {
	t.Helper()
	i, ok := ix.IndexOf(v)
	if !ok {
		t.Fatalf("node %d missing from snapshot", v)
	}
	return i
}

// TestNeighborsCacheInvalidation drives the mutation paths that must
// invalidate the cached sorted adjacency of Graph.Neighbors.
func TestNeighborsCacheInvalidation(t *testing.T) {
	g := buildTestGraph()
	if got := g.Neighbors(7); !slices.Equal(got, Set{3, 10, 42}) {
		t.Fatalf("Neighbors(7) = %v", got)
	}
	// AddEdge invalidates both endpoints.
	g.AddEdge(7, 99)
	if got := g.Neighbors(7); !slices.Equal(got, Set{3, 10, 42, 99}) {
		t.Fatalf("after AddEdge: Neighbors(7) = %v", got)
	}
	if got := g.Neighbors(99); !slices.Equal(got, Set{7}) {
		t.Fatalf("after AddEdge: Neighbors(99) = %v", got)
	}
	// Re-adding an existing edge is a no-op and must not corrupt anything.
	g.AddEdge(7, 99)
	if got := g.Neighbors(7); !slices.Equal(got, Set{3, 10, 42, 99}) {
		t.Fatalf("after duplicate AddEdge: Neighbors(7) = %v", got)
	}
	// RemoveEdge invalidates both endpoints.
	g.RemoveEdge(7, 3)
	if got := g.Neighbors(7); !slices.Equal(got, Set{10, 42, 99}) {
		t.Fatalf("after RemoveEdge: Neighbors(7) = %v", got)
	}
	if got := g.Neighbors(3); !slices.Equal(got, Set{10}) {
		t.Fatalf("after RemoveEdge: Neighbors(3) = %v", got)
	}
	// RemoveNode invalidates the node and all former neighbors.
	g.Neighbors(10) // warm the cache
	g.RemoveNode(10)
	if got := g.Neighbors(7); !slices.Equal(got, Set{42, 99}) {
		t.Fatalf("after RemoveNode: Neighbors(7) = %v", got)
	}
	if got := g.Neighbors(3); len(got) != 0 {
		t.Fatalf("after RemoveNode: Neighbors(3) = %v", got)
	}
	// Handed-out slices must stay valid after invalidation.
	before := g.Neighbors(42)
	snapshot := slices.Clone(before)
	g.AddEdge(42, 3)
	if !slices.Equal(before, snapshot) {
		t.Fatal("previously returned Neighbors slice was mutated by a later edit")
	}
	if got := g.Neighbors(42); !slices.Equal(got, Set{1, 3, 7}) {
		t.Fatalf("after re-add: Neighbors(42) = %v", got)
	}
	// ClosedNeighbors merges the node in without disturbing the cache.
	if got := g.ClosedNeighbors(42); !slices.Equal(got, Set{1, 3, 7, 42}) {
		t.Fatalf("ClosedNeighbors(42) = %v", got)
	}
	if got := g.Neighbors(42); !slices.Equal(got, Set{1, 3, 7}) {
		t.Fatalf("Neighbors(42) corrupted by ClosedNeighbors: %v", got)
	}
}
