package graph

import (
	"slices"
	"testing"
)

// These tests pin the neighbor-cache invalidation contract that the
// snapshotmut analyzer reasons about: Neighbors returns a shared cached
// slice, any mutation of the incident adjacency invalidates exactly the
// affected entries, and a slice handed out before the mutation remains a
// valid (sorted) pre-mutation snapshot because cached slices are never
// modified in place.

// freshNeighbors computes v's sorted adjacency without the cache.
func freshNeighbors(g *Graph, v ID) []ID {
	var out []ID
	g.ForEachNeighbor(v, func(u ID) { out = append(out, u) })
	slices.Sort(out)
	return out
}

func wantNeighbors(t *testing.T, g *Graph, v ID, want []ID) {
	t.Helper()
	got := g.Neighbors(v)
	if !slices.Equal(got, want) {
		t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("Neighbors(%d) = %v is not sorted", v, got)
	}
	if fresh := freshNeighbors(g, v); !slices.Equal(got, fresh) {
		t.Fatalf("Neighbors(%d) = %v disagrees with adjacency %v", v, got, fresh)
	}
}

func TestNeighborCacheAddEdgeInvalidates(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {1, 4}})
	wantNeighbors(t, g, 1, []ID{2, 4}) // populate cache
	wantNeighbors(t, g, 2, []ID{1})

	g.AddEdge(1, 3)
	wantNeighbors(t, g, 1, []ID{2, 3, 4}) // re-query reflects the new edge, sorted in the middle
	wantNeighbors(t, g, 3, []ID{1})
	wantNeighbors(t, g, 2, []ID{1}) // untouched node keeps a correct entry

	// Adding an existing edge is a no-op and must not corrupt anything.
	g.AddEdge(3, 1)
	wantNeighbors(t, g, 1, []ID{2, 3, 4})
}

func TestNeighborCacheRemoveEdgeInvalidates(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {1, 3}, {1, 4}, {2, 3}})
	wantNeighbors(t, g, 1, []ID{2, 3, 4})
	wantNeighbors(t, g, 3, []ID{1, 2})

	g.RemoveEdge(1, 3)
	wantNeighbors(t, g, 1, []ID{2, 4})
	wantNeighbors(t, g, 3, []ID{2})

	// Removing a non-existent edge is a no-op.
	g.RemoveEdge(1, 3)
	g.RemoveEdge(1, 99)
	wantNeighbors(t, g, 1, []ID{2, 4})
}

func TestNeighborCacheRemoveNodeInvalidatesAllIncident(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {1, 3}, {2, 3}, {3, 4}})
	for _, v := range g.Nodes() {
		wantNeighbors(t, g, v, freshNeighbors(g, v)) // warm every cache entry
	}
	g.RemoveNode(3)
	wantNeighbors(t, g, 1, []ID{2})
	wantNeighbors(t, g, 2, []ID{1})
	wantNeighbors(t, g, 4, nil)
	if got := g.Neighbors(3); len(got) != 0 {
		t.Fatalf("Neighbors of removed node = %v, want empty", got)
	}
}

func TestNeighborCacheMutateAfterQuerySequence(t *testing.T) {
	// An interleaved add/remove/re-query sequence, checking the cache
	// against the raw adjacency at every step.
	g := New()
	type step struct {
		op   string
		u, v ID
	}
	steps := []step{
		{"add", 1, 2}, {"add", 2, 3}, {"add", 1, 3}, {"add", 3, 4},
		{"del", 1, 2}, {"add", 1, 5}, {"add", 2, 5}, {"del", 2, 3},
		{"add", 1, 2}, {"del", 3, 4}, {"add", 4, 5}, {"add", 0, 1},
	}
	for i, s := range steps {
		switch s.op {
		case "add":
			g.AddEdge(s.u, s.v)
		case "del":
			g.RemoveEdge(s.u, s.v)
		}
		// Query a fixed probe set every step so stale entries would
		// survive into a later comparison if invalidation missed one.
		for _, v := range []ID{0, 1, 2, 3, 4, 5} {
			got := g.Neighbors(v)
			if fresh := freshNeighbors(g, v); !slices.Equal(got, fresh) {
				t.Fatalf("step %d (%s %d-%d): Neighbors(%d) = %v, want %v",
					i, s.op, s.u, s.v, v, got, fresh)
			}
		}
	}
}

func TestNeighborsPreMutationSnapshotStable(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {1, 4}})
	before := g.Neighbors(1)
	snapshot := slices.Clone(before)

	g.AddEdge(1, 3)
	g.RemoveEdge(1, 2)
	g.AddEdge(1, 0)

	// The slice handed out earlier is never modified in place.
	if !slices.Equal(before, snapshot) {
		t.Fatalf("pre-mutation Neighbors slice changed: %v, want %v", before, snapshot)
	}
	wantNeighbors(t, g, 1, []ID{0, 3, 4})
}

func TestClosedNeighborsAfterMutation(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{2, 1}, {2, 5}})
	if got := g.ClosedNeighbors(2); !slices.Equal(got, []ID{1, 2, 5}) {
		t.Fatalf("ClosedNeighbors(2) = %v, want [1 2 5]", got)
	}
	g.AddEdge(2, 3)
	if got := g.ClosedNeighbors(2); !slices.Equal(got, []ID{1, 2, 3, 5}) {
		t.Fatalf("ClosedNeighbors(2) after AddEdge = %v, want [1 2 3 5]", got)
	}
	g.RemoveEdge(2, 1)
	if got := g.ClosedNeighbors(2); !slices.Equal(got, []ID{2, 3, 5}) {
		t.Fatalf("ClosedNeighbors(2) after RemoveEdge = %v, want [2 3 5]", got)
	}
}
