package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(ID(i), ID(i+1))
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(5)
	g.AddNode(5)
	if got := g.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge 1-2 missing in one direction")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	g.AddEdge(1, 2) // duplicate
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge changed count: %d", g.NumEdges())
	}
	g.AddEdge(3, 3) // self-loop ignored
	if g.HasEdge(3, 3) {
		t.Fatal("self-loop was added")
	}
}

func TestRemoveNode(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}, {1, 3}})
	g.RemoveNode(2)
	if g.HasNode(2) {
		t.Fatal("node 2 still present")
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 3) {
		t.Fatal("edges incident to 2 still present")
	}
	if !g.HasEdge(1, 3) {
		t.Fatal("unrelated edge 1-3 was removed")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}})
	g.RemoveEdge(2, 1)
	if g.HasEdge(1, 2) {
		t.Fatal("edge 1-2 still present")
	}
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("RemoveEdge removed a node")
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, v := range []ID{9, 3, 7, 1} {
		g.AddNode(v)
	}
	got := g.Nodes()
	want := []ID{1, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{5, 9}, {5, 1}, {5, 3}})
	got := g.Neighbors(5)
	want := []ID{1, 3, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", got, want)
		}
	}
	closed := g.ClosedNeighbors(5)
	if len(closed) != 4 || closed[2] != 5 {
		t.Fatalf("ClosedNeighbors(5) = %v", closed)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{3, 1}, {2, 1}, {3, 2}})
	edges := g.Edges()
	want := [][2]ID{{1, 2}, {1, 3}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestDistanceAndBFS(t *testing.T) {
	g := pathGraph(10)
	if d := g.Distance(0, 9); d != 9 {
		t.Fatalf("Distance(0,9) = %d, want 9", d)
	}
	if d := g.Distance(4, 4); d != 0 {
		t.Fatalf("Distance(4,4) = %d, want 0", d)
	}
	g.AddNode(100)
	if d := g.Distance(0, 100); d != -1 {
		t.Fatalf("Distance to unreachable = %d, want -1", d)
	}
	dist := g.BFSDistances(3)
	if dist[0] != 3 || dist[9] != 6 {
		t.Fatalf("BFSDistances wrong: %v", dist)
	}
	if _, ok := dist[100]; ok {
		t.Fatal("BFS reached disconnected node")
	}
}

func TestBall(t *testing.T) {
	g := pathGraph(10)
	got := g.Ball(5, 2)
	want := []ID{3, 4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Ball(5,2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ball(5,2) = %v, want %v", got, want)
		}
	}
	if b := g.Ball(0, 0); len(b) != 1 || b[0] != 0 {
		t.Fatalf("Ball(0,0) = %v, want [0]", b)
	}
}

func TestComponents(t *testing.T) {
	g := FromEdges([]ID{42}, [][2]ID{{1, 2}, {2, 3}, {10, 11}})
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 {
		t.Fatalf("first component %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 10 {
		t.Fatalf("second component %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 42 {
		t.Fatalf("third component %v", comps[2])
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}, {3, 4}, {1, 4}, {1, 3}})
	sub := g.InducedSubgraph([]ID{1, 2, 3, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d, want 3", sub.NumNodes())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 3) || !sub.HasEdge(1, 3) {
		t.Fatal("induced edges missing")
	}
	if sub.HasEdge(3, 4) || sub.HasNode(4) {
		t.Fatal("node outside induced set leaked in")
	}
}

func TestIsClique(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}, {1, 3}, {3, 4}})
	if !g.IsClique([]ID{1, 2, 3}) {
		t.Fatal("{1,2,3} should be a clique")
	}
	if g.IsClique([]ID{1, 2, 3, 4}) {
		t.Fatal("{1,2,3,4} should not be a clique")
	}
	if !g.IsClique([]ID{1}) || !g.IsClique(nil) {
		t.Fatal("trivial sets are cliques")
	}
}

func TestPower(t *testing.T) {
	g := pathGraph(6)
	p := g.Power(2)
	if !p.HasEdge(0, 2) || !p.HasEdge(0, 1) {
		t.Fatal("power-2 edges missing")
	}
	if p.HasEdge(0, 3) {
		t.Fatal("power-2 has distance-3 edge")
	}
	if p.NumNodes() != g.NumNodes() {
		t.Fatal("power changed node set")
	}
}

func TestDiameter(t *testing.T) {
	if d := pathGraph(7).Diameter(); d != 6 {
		t.Fatalf("path diameter = %d, want 6", d)
	}
	g := New()
	g.AddNode(1)
	if d := g.Diameter(); d != 0 {
		t.Fatalf("singleton diameter = %d, want 0", d)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{1, 2}})
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasNode(3) {
		t.Fatal("mutating clone affected original")
	}
	if !g.Equal(FromEdges(nil, [][2]ID{{1, 2}})) {
		t.Fatal("original changed")
	}
}

func TestEqual(t *testing.T) {
	a := FromEdges(nil, [][2]ID{{1, 2}, {2, 3}})
	b := FromEdges(nil, [][2]ID{{2, 3}, {1, 2}})
	if !a.Equal(b) {
		t.Fatal("equal graphs reported unequal")
	}
	b.AddEdge(1, 3)
	if a.Equal(b) {
		t.Fatal("unequal graphs reported equal")
	}
}

func TestMaxDegree(t *testing.T) {
	g := FromEdges(nil, [][2]ID{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if d := g.MaxDegree(); d != 3 {
		t.Fatalf("MaxDegree = %d, want 3", d)
	}
	if d := New().MaxDegree(); d != 0 {
		t.Fatalf("empty MaxDegree = %d, want 0", d)
	}
}

// randomGraph builds a GNP graph over n nodes with the given seed.
func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(ID(i), ID(j))
			}
		}
	}
	return g
}

func TestPropertyBallMatchesBFS(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		g := randomGraph(20, 0.15, seed)
		r := int(rRaw % 6)
		dist := g.BFSDistances(0)
		ball := g.Ball(0, r)
		inBall := make(map[ID]bool, len(ball))
		for _, v := range ball {
			inBall[v] = true
		}
		for _, v := range g.Nodes() {
			d, reach := dist[v]
			want := reach && d <= r
			if inBall[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.05, seed)
		seen := make(map[ID]int)
		for ci, comp := range g.Components() {
			for _, v := range comp {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = ci
			}
		}
		if len(seen) != g.NumNodes() {
			return false
		}
		// Every edge stays within one component.
		for _, e := range g.Edges() {
			if seen[e[0]] != seen[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPowerDistance(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(15, 0.12, seed)
		p := g.Power(2)
		for _, u := range g.Nodes() {
			for _, v := range g.Nodes() {
				if u >= v {
					continue
				}
				d := g.Distance(u, v)
				want := d > 0 && d <= 2
				if p.HasEdge(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", New(), 0},
		{"path", pathGraph(10), 1},
		{"triangle", FromEdges(nil, [][2]ID{{0, 1}, {1, 2}, {0, 2}}), 2},
	}
	for _, c := range cases {
		got, order := c.g.Degeneracy()
		if got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, got, c.want)
		}
		if len(order) != c.g.NumNodes() {
			t.Errorf("%s: ordering covers %d of %d", c.name, len(order), c.g.NumNodes())
		}
	}
}

func TestDegeneracyOrderingProperty(t *testing.T) {
	g := randomGraph(40, 0.2, 11)
	d, order := g.Degeneracy()
	// In a degeneracy ordering, each node has ≤ d neighbors later on.
	pos := make(map[ID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		later := 0
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				later++
			}
		}
		if later > d {
			t.Fatalf("node %d has %d later neighbors > degeneracy %d", v, later, d)
		}
	}
}
