package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation used by the CLI tools.
type jsonGraph struct {
	Nodes []ID    `json:"nodes"`
	Edges [][2]ID `json:"edges"`
}

// WriteJSON serializes g as {"nodes": [...], "edges": [[u,v], ...]}.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(jsonGraph{Nodes: g.Nodes(), Edges: g.Edges()})
}

// ReadJSON parses a graph from the WriteJSON format. Nodes referenced
// only by edges are added implicitly.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("decode graph: %w", err)
	}
	return FromEdges(jg.Nodes, jg.Edges), nil
}
