package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// This file runs the correction choreography on the partitioned
// runtime. The choreography's shared state (corrShared plus the
// per-node parent/group tables) is precomputed coordinator-side — so
// the "correction-setup" kernel spans stay in the coordinator's trace
// exactly as on a LOCAL run — and shipped to the shards as the
// program's parameters. Payloads are value types (finalMsg /
// setColorMsg) with no Sizer, matching the LOCAL engine's unit volume
// accounting; the codec preserves the concrete types so the protocol's
// type switch behaves identically on both sides of the wire.

// corrGroupWire / corrParamsWire are the gob form of corrPre.
type corrGroupWire struct {
	Layer            int32
	KidOff, KidEnd   int32
	GateOff, GateEnd int32
}

type corrParamsWire struct {
	Groups    []corrGroupWire
	KidIdx    []int32
	KidColor  []int
	Gates     []int32
	HasParent []bool
	NodeGOff  []int32
	TTL       int
}

func encodeCorrectionParams(pre *corrPre) ([]byte, error) {
	w := corrParamsWire{
		Groups:    make([]corrGroupWire, len(pre.sh.groups)),
		KidIdx:    pre.sh.kidIdx,
		KidColor:  pre.sh.kidColor,
		Gates:     pre.sh.gates,
		HasParent: pre.hasParent,
		NodeGOff:  pre.nodeGOff,
		TTL:       pre.ttl,
	}
	for i, g := range pre.sh.groups {
		w.Groups[i] = corrGroupWire{Layer: g.layer, KidOff: g.kidOff, KidEnd: g.kidEnd, GateOff: g.gateOff, GateEnd: g.gateEnd}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("correction: encoding params: %w", err)
	}
	return buf.Bytes(), nil
}

// correctionProgram adapts the correction choreography to
// dist.Program.
type correctionProgram struct {
	sh        *corrShared
	hasParent []bool
	nodeGOff  []int32
	ttl       int
}

func newCorrectionProgram(ix *graph.Indexed, params []byte) (dist.Program, error) {
	var w corrParamsWire
	if err := gob.NewDecoder(bytes.NewReader(params)).Decode(&w); err != nil {
		return nil, fmt.Errorf("correction: decoding params: %w", err)
	}
	n := ix.NumNodes()
	if len(w.HasParent) != n || len(w.NodeGOff) != n+1 {
		return nil, fmt.Errorf("correction: params describe %d/%d nodes, snapshot has %d",
			len(w.HasParent), len(w.NodeGOff), n)
	}
	sh := &corrShared{
		groups:   make([]corrGroup, len(w.Groups)),
		kidIdx:   w.KidIdx,
		kidColor: w.KidColor,
		gates:    w.Gates,
	}
	for i, g := range w.Groups {
		sh.groups[i] = corrGroup{layer: g.Layer, kidOff: g.KidOff, kidEnd: g.KidEnd, gateOff: g.GateOff, gateEnd: g.GateEnd}
	}
	return &correctionProgram{sh: sh, hasParent: w.HasParent, nodeGOff: w.NodeGOff, ttl: w.TTL}, nil
}

func (p *correctionProgram) NewNode(i int) dist.Protocol {
	node := correctionNode{
		sh:        p.sh,
		idx:       int32(i),
		hasParent: p.hasParent[i],
		ttl:       p.ttl,
		gOff:      p.nodeGOff[i],
		gEnd:      p.nodeGOff[i+1],
	}
	return &node
}

// Payload wire format: a kind byte, then fixed-width little-endian
// int32 fields.
const (
	corrKindFinal    = 0
	corrKindSetColor = 1
)

func corrI32(b []byte, v int32) []byte { return binary.LittleEndian.AppendUint32(b, uint32(v)) }

func (p *correctionProgram) EncodePayload(pl any) ([]byte, error) {
	switch m := pl.(type) {
	case finalMsg:
		out := make([]byte, 1, 9)
		out[0] = corrKindFinal
		out = corrI32(out, m.Origin)
		out = corrI32(out, m.Expire)
		return out, nil
	case setColorMsg:
		out := make([]byte, 1, 13)
		out[0] = corrKindSetColor
		out = corrI32(out, m.Target)
		out = corrI32(out, int32(m.Color))
		out = corrI32(out, m.Expire)
		return out, nil
	default:
		return nil, fmt.Errorf("correction: payload is %T, want finalMsg or setColorMsg", pl)
	}
}

func (p *correctionProgram) DecodePayload(data []byte) (any, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("correction: empty payload")
	}
	kind, body := data[0], data[1:]
	i32 := func(off int) int32 { return int32(binary.LittleEndian.Uint32(body[off:])) }
	switch kind {
	case corrKindFinal:
		if len(body) != 8 {
			return nil, fmt.Errorf("correction: final payload has %d bytes, want 8", len(body))
		}
		return finalMsg{Origin: i32(0), Expire: i32(4)}, nil
	case corrKindSetColor:
		if len(body) != 12 {
			return nil, fmt.Errorf("correction: setcolor payload has %d bytes, want 12", len(body))
		}
		return setColorMsg{Target: i32(0), Color: int(i32(4)), Expire: i32(8)}, nil
	default:
		return nil, fmt.Errorf("correction: payload kind %d unknown", kind)
	}
}

func (p *correctionProgram) EncodeOutput(i int, proto dist.Protocol) ([]byte, error) {
	node, ok := proto.(*correctionNode)
	if !ok {
		return nil, fmt.Errorf("correction: protocol is %T", proto)
	}
	if node.Output().(bool) {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

func (p *correctionProgram) DecodeOutput(i int, data []byte) (any, error) {
	if len(data) != 1 {
		return nil, fmt.Errorf("correction: output has %d bytes, want 1", len(data))
	}
	return data[0] != 0, nil
}

func init() {
	dist.RegisterProgram("correction", newCorrectionProgram)
}

// RunCorrectionPhasePart is RunCorrectionPhaseFaulty executed on a
// partition: precompute and trace kernels stay coordinator-side, the
// choreography itself runs on the shards.
func RunCorrectionPhasePart(p *dist.Partition, g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int, o dist.RoundObserver, f *dist.Faults) (int, error) {
	pre := correctionPrecompute(g, layer, parent, finalColors, k, o)
	params, err := encodeCorrectionParams(pre)
	if err != nil {
		return 0, err
	}
	c, err := dist.NewCoordinator(pre.ix, p, "correction", params)
	if err != nil {
		return 0, err
	}
	c.Observer = o
	c.Faults = f
	res, err := c.Run(pre.maxRounds)
	if err != nil {
		return 0, fmt.Errorf("correction phase: %w", err)
	}
	for _, v := range pre.ix.IDs() {
		if !res.Outputs[v].(bool) {
			return 0, fmt.Errorf("node %d never finalized", v)
		}
	}
	return res.Rounds, nil
}
