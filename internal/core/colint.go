package core

import (
	"fmt"
	"sort"

	"repro/internal/colorreduce"
	"repro/internal/graph"
	"repro/internal/interval"
)

// IntervalColoring is the result of ColIntGraph.
type IntervalColoring struct {
	Colors     map[graph.ID]int
	ColorsUsed int
	// Palette is the quality guarantee ⌊(1+1/k)χ⌋+1 the coloring respects.
	Palette int
	Rounds  int
	Blocks  int
	Omega   int
}

// ColIntGraph reimplements the Halldórsson–Konrad interval coloring
// algorithm [21] the paper reuses: for k = ⌈2/ε⌉ it colors an interval
// graph with at most ⌊(1+1/k)χ⌋+1 colors in O(k·log* n)-flavoured rounds.
//
// Structure: a chain of per-clique leaders is derived from the clique
// path; anchors at pairwise distance ≥ 2k+8 are selected on it via
// Linial color reduction (the log* component); anchors cut the path into
// blocks, each colored optimally by a local coordinator; boundary
// conflicts between adjacent blocks are repaired inside a radius-(k+3)
// zone by the Lemma-9 recoloring engine, which the distance between
// anchors keeps collision-free.
//
// path must be a consecutive arrangement of the maximal cliques of g
// (empty restrictions allowed to have been dropped); idBound bounds node
// IDs for the symmetry-breaking palette.
func ColIntGraph(g *graph.Graph, path []graph.Set, k, idBound int) (*IntervalColoring, error) {
	if k < 1 {
		return nil, fmt.Errorf("k must be >= 1, got %d", k)
	}
	res := &IntervalColoring{Colors: make(map[graph.ID]int, g.NumNodes())}
	if g.NumNodes() == 0 {
		return res, nil
	}
	omega := 0
	for _, c := range path {
		if len(c) > omega {
			omega = len(c)
		}
	}
	res.Omega = omega
	res.Palette = (k+1)*omega/k + 1

	cuts, anchorRounds, err := selectCuts(g, path, 2*k+8, idBound)
	if err != nil {
		return nil, err
	}
	res.Rounds += 4 // chain construction from O(1)-radius local views
	res.Rounds += anchorRounds

	blocks := splitBlocks(len(path), cuts)
	res.Blocks = len(blocks)

	// Assign each node to the block containing its first clique.
	firstClique := make(map[graph.ID]int)
	for i, c := range path {
		for _, v := range c {
			if _, ok := firstClique[v]; !ok {
				firstClique[v] = i
			}
		}
	}
	blockOf := make(map[graph.ID]int)
	for b, span := range blocks {
		for p := span[0]; p <= span[1]; p++ {
			for _, v := range path[p] {
				if firstClique[v] == p {
					// First occurrence decides; only record once.
					if _, ok := blockOf[v]; !ok {
						blockOf[v] = b
					}
				}
			}
		}
	}

	// Color every block optimally and independently (in the LOCAL run all
	// block coordinators work concurrently; we charge the max cost once).
	maxBlockCost := 0
	blockNodes := make([][]graph.ID, len(blocks))
	for v, b := range blockOf {
		blockNodes[b] = append(blockNodes[b], v)
	}
	for b := range blocks {
		nodes := blockNodes[b]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		sub := g.InducedSubgraph(nodes)
		keep := make(map[graph.ID]bool, len(nodes))
		for _, v := range nodes {
			keep[v] = true
		}
		subPath := interval.RestrictCliquePath(path, func(v graph.ID) bool { return keep[v] })
		colors, err := ExtendColoring(sub, subPath, nil, res.Palette)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", b, err)
		}
		for v, c := range colors {
			res.Colors[v] = c
		}
		if cost := sub.Diameter() + 1; cost > maxBlockCost {
			maxBlockCost = cost
		}
	}
	res.Rounds += maxBlockCost

	// Repair each cut: nodes of the right block within distance k+3 of the
	// crossing clique are recolored against the crossing's (left-block)
	// colors and the right block's untouched interior. Cuts are ≥ 2k+8
	// apart, so zones do not collide and repairs run concurrently.
	if len(cuts) > 0 {
		for b := 1; b < len(blocks); b++ {
			if err := repairCut(g, path, blocks, blockNodes, b, k, res); err != nil {
				return nil, err
			}
		}
		res.Rounds += k + 5
	}

	used := make(map[int]bool)
	for _, c := range res.Colors {
		used[c] = true
	}
	res.ColorsUsed = len(used)
	return res, nil
}

// selectCuts builds the leader chain over clique-path positions and runs
// the anchor selection; it returns the cut positions (clique indices).
func selectCuts(g *graph.Graph, path []graph.Set, minGap, idBound int) ([]int, int, error) {
	if len(path) <= 1 {
		return nil, 0, nil
	}
	// One chain vertex per clique position with a unique synthetic ID
	// derived from (leader, per-leader occurrence index) — locally
	// computable since a node knows the order of its own cliques.
	leaders := make([]graph.ID, len(path))
	occur := make(map[graph.ID]int)
	chainID := make([]graph.ID, len(path))
	maxPhi := 1
	for i, c := range path {
		leader := c[len(c)-1] // max ID in the sorted set
		leaders[i] = leader
		chainID[i] = graph.ID(int(leader)*(len(path)+1) + occur[leader])
		occur[leader]++
		if occur[leader] > maxPhi {
			maxPhi = occur[leader]
		}
	}
	ch := colorreduce.NewChain()
	pos := make(map[graph.ID]int, len(path))
	for i := range path {
		ch.AddNode(chainID[i])
		pos[chainID[i]] = i
	}
	dist := func(a, b graph.ID) int {
		d := g.Distance(leaders[pos[a]], leaders[pos[b]])
		if d < 0 {
			// Different components of the strip: a free cut.
			return minGap
		}
		return d
	}
	ch.Dist = dist
	for i := 0; i+1 < len(path); i++ {
		ch.AddEdge(chainID[i], chainID[i+1], dist(chainID[i], chainID[i+1]))
	}
	resAnchors, err := colorreduce.SelectAnchors(ch, minGap, idBound*(len(path)+1)+maxPhi+1)
	if err != nil {
		return nil, 0, fmt.Errorf("anchor selection: %w", err)
	}
	var cuts []int
	for _, a := range resAnchors.Anchors {
		cuts = append(cuts, pos[a])
	}
	sort.Ints(cuts)
	return cuts, resAnchors.Rounds, nil
}

// splitBlocks partitions clique positions [0, n) into blocks delimited by
// the cut positions: block boundaries fall after each cut position.
func splitBlocks(n int, cuts []int) [][2]int {
	var blocks [][2]int
	start := 0
	for _, c := range cuts {
		if c+1 <= n-1 && c >= start {
			blocks = append(blocks, [2]int{start, c})
			start = c + 1
		}
	}
	if start <= n-1 {
		blocks = append(blocks, [2]int{start, n - 1})
	}
	if len(blocks) == 0 && n > 0 {
		blocks = append(blocks, [2]int{0, n - 1})
	}
	return blocks
}

// repairCut fixes coloring conflicts between block b-1 and block b: the
// nodes crossing the cut keep their left-block colors; right-block nodes
// within distance k+3 of them are recolored via ExtendColoring.
func repairCut(g *graph.Graph, path []graph.Set, blocks [][2]int, blockNodes [][]graph.ID, b, k int, res *IntervalColoring) error {
	cutPos := blocks[b-1][1]
	if cutPos+1 >= len(path) {
		return nil
	}
	crossing := path[cutPos].Intersect(path[cutPos+1])
	if len(crossing) == 0 {
		return nil
	}
	// Restrict crossing to nodes actually assigned to earlier blocks.
	var fixedBoundary graph.Set
	for _, v := range crossing {
		fixedBoundary = append(fixedBoundary, v)
	}
	right := blockNodes[b]
	inRight := make(map[graph.ID]bool, len(right))
	for _, v := range right {
		inRight[v] = true
	}
	// The repair strip: right-block nodes plus the crossing clique.
	stripNodes := graph.NewSet(append(fixedBoundary.Clone(), right...)...)
	strip := g.InducedSubgraph(stripNodes)
	keep := make(map[graph.ID]bool, len(stripNodes))
	for _, v := range stripNodes {
		keep[v] = true
	}
	stripPath := interval.RestrictCliquePath(path, func(v graph.ID) bool { return keep[v] })

	zone := RecolorZone(strip, fixedBoundary, k+3)
	inZone := make(map[graph.ID]bool, len(zone))
	for _, v := range zone {
		if inRight[v] {
			inZone[v] = true
		}
	}
	fixed := make(map[graph.ID]int)
	for _, v := range stripNodes {
		if !inZone[v] {
			fixed[v] = res.Colors[v]
		}
	}
	colors, err := ExtendColoring(strip, stripPath, fixed, res.Palette)
	if err != nil {
		return fmt.Errorf("cut repair between blocks %d and %d: %w", b-1, b, err)
	}
	for v := range inZone {
		res.Colors[v] = colors[v]
	}
	return nil
}
