// Package core implements the paper's contribution: the centralized and
// distributed (1+ε)-approximation algorithms for Minimum Vertex Coloring
// (Algorithms 1–4, Theorems 3–4) and Maximum Independent Set
// (Algorithms 5–6, Theorems 5–8) on chordal and interval graphs, built on
// the clique-forest, peeling, LOCAL-simulation and symmetry-breaking
// substrates.
package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// ExtendColoring implements the constructive side of Lemmas 9–10: given an
// interval strip (nodes of g) where some nodes carry fixed colors (the
// boundary cliques and the untouched interior), properly color the
// remaining nodes with colors from [1, palette]. Nodes are processed in
// left-endpoint order along the clique path; when plain greedy fails the
// engine falls back to exhaustive backtracking, whose success within the
// Lemma-9 palette is guaranteed whenever the fixed regions are at distance
// at least k+3.
//
// path must be a consecutive arrangement of the maximal cliques of g.
func ExtendColoring(g *graph.Graph, path []graph.Set, fixed map[graph.ID]int, palette int) (map[graph.ID]int, error) {
	order := leftEndpointOrder(g, path)
	free := make([]graph.ID, 0, len(order))
	for _, v := range order {
		if _, ok := fixed[v]; !ok {
			free = append(free, v)
		}
	}
	colors := make(map[graph.ID]int, len(order))
	for v, c := range fixed {
		if c < 1 || c > palette {
			return nil, fmt.Errorf("fixed color %d of node %d outside palette [1,%d]", c, v, palette)
		}
		colors[v] = c
	}
	// Fixed nodes must already be mutually consistent.
	for v, c := range fixed {
		for _, u := range g.Neighbors(v) {
			if cu, ok := fixed[u]; ok && cu == c {
				return nil, fmt.Errorf("fixed colors conflict on edge %d-%d", v, u)
			}
		}
	}
	budget := backtrackBudget
	if backtrack(g, free, 0, colors, palette, &budget) {
		return colors, nil
	}
	if budget <= 0 {
		return nil, fmt.Errorf("recoloring search exceeded %d steps (palette %d)", backtrackBudget, palette)
	}
	return nil, fmt.Errorf("no extension with %d colors exists", palette)
}

// backtrackBudget bounds the recoloring search. LOCAL allows unbounded
// computation, but a library should fail loudly rather than hang; the
// Lemma-9 instances the algorithms generate resolve in near-linear steps,
// orders of magnitude below this cap (experiment E8).
const backtrackBudget = 20_000_000

// backtrack assigns free[i:] in order, trying colors ascending. Processing
// in left-endpoint order keeps already-colored neighbors to a clique, so
// plain greedy succeeds whenever the right boundary is far; the
// backtracking only engages near fixed right boundaries.
func backtrack(g *graph.Graph, free []graph.ID, i int, colors map[graph.ID]int, palette int, budget *int) bool {
	if i == len(free) {
		return true
	}
	*budget--
	if *budget <= 0 {
		return false
	}
	v := free[i]
	used := make(map[int]bool)
	for _, u := range g.Neighbors(v) {
		if c, ok := colors[u]; ok {
			used[c] = true
		}
	}
	for c := 1; c <= palette; c++ {
		if used[c] {
			continue
		}
		colors[v] = c
		if backtrack(g, free, i+1, colors, palette, budget) {
			return true
		}
		delete(colors, v)
	}
	return false
}

// leftEndpointOrder orders the strip's nodes by the position of their
// first clique along the path (ties by last clique, then ID) — the
// interval-graph left-endpoint order.
func leftEndpointOrder(g *graph.Graph, path []graph.Set) []graph.ID {
	first := make(map[graph.ID]int)
	last := make(map[graph.ID]int)
	for i, c := range path {
		for _, v := range c {
			if _, ok := first[v]; !ok {
				first[v] = i
			}
			last[v] = i
		}
	}
	nodes := g.Nodes()
	sort.Slice(nodes, func(a, b int) bool {
		va, vb := nodes[a], nodes[b]
		if first[va] != first[vb] {
			return first[va] < first[vb]
		}
		if last[va] != last[vb] {
			return last[va] < last[vb]
		}
		return va < vb
	})
	return nodes
}

// RecolorZone computes, per Lemma 10, the set of strip nodes that must be
// recolored: those at distance at most horizon (= k+3) in g from any node
// of boundary. The remaining nodes keep their colors.
func RecolorZone(g *graph.Graph, boundary graph.Set, horizon int) graph.Set {
	var zone graph.Set
	reached := make(map[graph.ID]int)
	var frontier []graph.ID
	for _, b := range boundary {
		if g.HasNode(b) {
			reached[b] = 0
			frontier = append(frontier, b)
		}
	}
	for d := 1; d <= horizon && len(frontier) > 0; d++ {
		var next []graph.ID
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if _, ok := reached[u]; !ok {
					reached[u] = d
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	inBoundary := make(map[graph.ID]bool, len(boundary))
	for _, b := range boundary {
		inBoundary[b] = true
	}
	for v := range reached {
		if !inBoundary[v] {
			zone = append(zone, v)
		}
	}
	return graph.NewSet(zone...)
}
