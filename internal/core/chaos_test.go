package core

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestColorChordalAbsorbsDupAndDelay: the round-synchronous model must
// absorb duplication and delay — the full distributed coloring pipeline
// (pruning floods + correction choreography) produces a byte-identical
// coloring under them.
func TestColorChordalAbsorbsDupAndDelay(t *testing.T) {
	g := figures.Fig1()
	want, err := ColorChordalDistributed(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := &dist.Faults{Plan: fault.Plan{Seed: 21, Dup: 0.3, MaxDelay: 2}}
	got, err := ColorChordalDistributedFaulty(g, 0.5, nil, nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if got.ColorsUsed != want.ColorsUsed {
		t.Fatalf("dup/delay changed the palette: %d colors vs %d", got.ColorsUsed, want.ColorsUsed)
	}
	for v, c := range want.Colors {
		if got.Colors[v] != c {
			t.Errorf("node %d: color %d under dup/delay, want %d", v, got.Colors[v], c)
		}
	}
	if got.Rounds != want.Rounds {
		t.Errorf("dup/delay changed the round count: %d vs %d", got.Rounds, want.Rounds)
	}
}

// TestColorChordalDropDiverges: without retransmission, dropped messages
// corrupt the pruning floods, and the built-in Lemma-12 cross-check (or
// the prune's own termination guard) must turn that into a clean error —
// never a silently wrong coloring.
func TestColorChordalDropDiverges(t *testing.T) {
	g := figures.Fig1()
	f := &dist.Faults{Plan: fault.Plan{Seed: 2, Drop: 0.3}}
	col, err := ColorChordalDistributedFaulty(g, 0.5, nil, nil, f)
	if err == nil {
		// An undetected-corruption escape would return a coloring built
		// from truncated balls; the contract is a diagnosable error.
		t.Fatalf("30%% drop produced no error (got %d colors)", col.ColorsUsed)
	}
	t.Logf("drop diagnosis: %v", err)
}

// TestColorChordalCrashErrors: a crash schedule must fail the run with
// an error naming the node, not hang or time out.
func TestColorChordalCrashErrors(t *testing.T) {
	g := figures.Fig1()
	f := &dist.Faults{Crash: map[graph.ID]int{7: 2}}
	_, err := ColorChordalDistributedFaulty(g, 0.5, nil, nil, f)
	if err == nil {
		t.Fatal("crash of node 7 produced no error")
	}
	if !strings.Contains(err.Error(), "node 7 crashed") {
		t.Errorf("error %q does not name the crashed node", err)
	}
}

// TestMISChordalAbsorbsDupAndDelay: same absorption guarantee for the
// MIS pipeline.
func TestMISChordalAbsorbsDupAndDelay(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 47)
	want, err := MISChordalDistributed(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := &dist.Faults{Plan: fault.Plan{Seed: 33, Dup: 0.25, MaxDelay: 3}}
	got, err := MISChordalDistributedFaulty(g, 0.5, nil, nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Set.Equal(want.Set) {
		t.Fatalf("dup/delay changed the MIS: %v vs %v", got.Set, want.Set)
	}
}

// TestMISChordalDropDiverges: drop corruption of the pruning floods is
// diagnosable in the MIS pipeline too. There is no correction phase to
// stall here, so the detection relies on Knowledge.CoversComponent
// refusing to certify a drop-truncated ball (its known set is not
// adjacency-closed): the affected nodes fall back to deciding from
// their partial view, which either diverges from the centralized peel
// or peels nothing and trips the prune's progress guard.
func TestMISChordalDropDiverges(t *testing.T) {
	g := gen.KTree(60, 1, 47)
	f := &dist.Faults{Plan: fault.Plan{Seed: 8, Drop: 0.5}}
	res, err := MISChordalDistributedFaulty(g, 0.5, nil, nil, f)
	if err == nil {
		t.Fatalf("50%% drop produced no error (got MIS of %d)", len(res.Set))
	}
	t.Logf("drop diagnosis: %v", err)
}

// TestCorrectionPhaseAbsorbsDup: the correction choreography dedups
// every message kind (seenFinal/seenSet), so duplication alone must not
// change the measured schedule length or the choreography's success.
func TestCorrectionPhaseAbsorbsDup(t *testing.T) {
	g := figures.Fig1()
	want, err := ColorChordalDistributed(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := DistributedPrune(g, EffectiveK(0.5))
	if err != nil {
		t.Fatal(err)
	}
	cleanRounds, err := RunCorrectionPhase(g, outcome.Layer, outcome.Parent, want.Colors, EffectiveK(0.5))
	if err != nil {
		t.Fatal(err)
	}
	f := &dist.Faults{Plan: fault.Plan{Seed: 14, Dup: 0.4}}
	faultRounds, err := RunCorrectionPhaseFaulty(g, outcome.Layer, outcome.Parent, want.Colors, EffectiveK(0.5), nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if faultRounds != cleanRounds {
		t.Errorf("dup changed the correction schedule length: %d vs %d", faultRounds, cleanRounds)
	}
}
