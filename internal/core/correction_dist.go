package core

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/graph"
)

// The correction-phase choreography of Algorithms 2/4: after the coloring
// phase, nodes without parents are final immediately and announce it;
// every parent waits until (a) it is final itself and (b) every
// higher-layer neighbor of its layer-l children is final, then sends
// SetColor to those children (Lemma 10's recoloring, computed from the
// parent's (k+5)-ball knowledge), which finalizes them in turn. The
// engine measures the real asynchronous schedule length (the induction of
// Lemma 12).
//
// Protocol state is precomputed into shared index-space slabs resolved
// through the engine's CSR snapshot: messages carry int32 snapshot
// indices, each node's child groups and finality gates are contiguous
// slab ranges, and the per-node dedup sets are open-addressing IdxSets
// instead of map[graph.ID]bool. Children within a (parent, layer) group
// are sent SetColor in ascending index order, which fixes one
// deterministic send schedule (the map-backed predecessor iterated a Go
// map here, so its fault coordinates varied run to run).

// Both message kinds carry an absolute expiry step instead of a
// decrementing TTL: a message originated at step r with flooding budget
// ttl expires at step r+ttl+1, and a receiver processing it at step s
// relays iff Expire−s > 1 — the same predicate as decrementing a TTL
// from ttl and relaying while it exceeds 1, because the engine delivers
// every message exactly one hop per step (fault delays add synchronizer
// stall, not delivery latency). The payoff: a relay re-broadcasts the
// received boxed payload verbatim, so the flood's dominant path
// allocates nothing.

type finalMsg struct {
	Origin int32 // snapshot index of the finalized node
	Expire int32
}

type setColorMsg struct {
	Target int32 // snapshot index of the recolored child
	Color  int
	Expire int32
}

// corrGroup is one (parent, layer) child group: the children to recolor
// and the finality gate, both as ranges into the shared slabs.
type corrGroup struct {
	layer            int32
	kidOff, kidEnd   int32 // range into corrShared.kidIdx / kidColor
	gateOff, gateEnd int32 // range into corrShared.gates
}

// corrShared is the read-only precomputed state shared by every
// correctionNode of one engine run.
type corrShared struct {
	groups   []corrGroup
	kidIdx   []int32 // children, ascending index within each group
	kidColor []int   // the Lemma-10 color each child receives
	gates    []int32 // sorted, deduped gate node indices per group
}

// correctionNode is one node's state machine for the correction phase.
type correctionNode struct {
	sh        *corrShared
	idx       int32
	hasParent bool
	final     bool
	ttl       int // flooding TTL: k+5

	// This node's child groups are sh.groups[gOff:gEnd], descending
	// layer (CorrectChildren processes lv−1 … 1); pendingAt is the next
	// group to correct.
	gOff, gEnd int32
	pendingAt  int32

	// seenFinal doubles as the finality gate set: the choreography only
	// ever records a node as final when it first sees (or originates)
	// its announcement, so the two sets coincide.
	seenFinal dist.IdxSet
	seenSet   dist.IdxSet
}

func (c *correctionNode) Init(ctx *dist.Context) {
	if !c.hasParent {
		c.final = true
		c.announce(ctx)
	}
	c.tryCorrect(ctx)
}

// QuiescentRound declares that an empty-inbox Round call is a no-op:
// every enabled SetColor is drained by the tryCorrect at the end of the
// step that enabled it, so progress is driven entirely by received
// messages and the engine may skip idle nodes.
func (c *correctionNode) QuiescentRound() {}

func (c *correctionNode) announce(ctx *dist.Context) {
	if c.seenFinal.Add(c.idx) {
		ctx.Broadcast(finalMsg{Origin: c.idx, Expire: int32(ctx.Round()) + int32(c.ttl) + 1})
	}
}

func (c *correctionNode) Round(ctx *dist.Context, inbox []dist.Message) {
	rnd := int32(ctx.Round())
	for _, m := range inbox {
		switch msg := m.Payload.(type) {
		case finalMsg:
			if c.seenFinal.Add(msg.Origin) && msg.Expire-rnd > 1 {
				ctx.Broadcast(m.Payload)
			}
		case setColorMsg:
			if msg.Target == c.idx {
				if !c.final {
					c.final = true
					c.announce(ctx)
				}
				continue
			}
			if c.seenSet.Add(msg.Target) && msg.Expire-rnd > 1 {
				ctx.Broadcast(m.Payload)
			}
		}
	}
	c.tryCorrect(ctx)
}

// tryCorrect sends SetColor for the next child groups whose gates are
// satisfied. Groups are processed top-down, as in CorrectChildren.
func (c *correctionNode) tryCorrect(ctx *dist.Context) {
	if !c.final {
		return
	}
	for c.pendingAt < c.gEnd-c.gOff {
		grp := &c.sh.groups[c.gOff+c.pendingAt]
		for _, u := range c.sh.gates[grp.gateOff:grp.gateEnd] {
			if !c.seenFinal.Has(u) {
				return
			}
		}
		for j := grp.kidOff; j < grp.kidEnd; j++ {
			ctx.Broadcast(setColorMsg{Target: c.sh.kidIdx[j], Color: c.sh.kidColor[j], Expire: int32(ctx.Round()) + int32(c.ttl) + 1})
		}
		c.pendingAt++
	}
}

func (c *correctionNode) Done() bool  { return c.final && c.pendingAt >= c.gEnd-c.gOff }
func (c *correctionNode) Output() any { return c.final }

// RunCorrectionPhase executes the correction choreography on the LOCAL
// engine. Inputs: the layer map and parent map from the pruning phase and
// the final colors (each parent's local Lemma-10 result); every node they
// mention must be a node of g. It returns the measured rounds of the
// asynchronous schedule.
func RunCorrectionPhase(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int) (int, error) {
	return RunCorrectionPhaseObserved(g, layer, parent, finalColors, k, nil)
}

// RunCorrectionPhaseObserved is RunCorrectionPhase with a RoundObserver
// attached to the correction engine (nil behaves identically).
func RunCorrectionPhaseObserved(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int, o dist.RoundObserver) (int, error) {
	return RunCorrectionPhaseFaulty(g, layer, parent, finalColors, k, o, nil)
}

// RunCorrectionPhaseFaulty is RunCorrectionPhaseObserved with a fault
// schedule attached to the correction engine. The choreography dedups
// every message kind (seenFinal/seenSet), so duplication and delay leave
// the corrected coloring untouched; dropped messages stall the
// choreography and surface as the engine's did-not-terminate error.
func RunCorrectionPhaseFaulty(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int, o dist.RoundObserver, f *dist.Faults) (int, error) {
	pre := correctionPrecompute(g, layer, parent, finalColors, k, o)
	ix := pre.ix
	n := ix.NumNodes()
	nodes := make([]correctionNode, n)
	eng := dist.NewEngineIndexed(ix, func(v graph.ID) dist.Protocol {
		i, _ := ix.IndexOf(v)
		nodes[i] = pre.node(int32(i))
		return &nodes[i]
	})
	eng.Observer = o
	eng.Faults = f
	res, err := eng.Run(pre.maxRounds)
	if err != nil {
		return 0, fmt.Errorf("correction phase: %w", err)
	}
	for _, v := range ix.IDs() {
		if !res.Outputs[v].(bool) {
			return 0, fmt.Errorf("node %d never finalized", v)
		}
	}
	return res.Rounds, nil
}

// corrPre is the precomputed shared state of one correction run — the
// part of the choreography that is a pure function of its inputs and
// runs coordinator-side in every execution mode (the "correction-setup"
// kernel shards stay in the coordinator's trace, LOCAL or partitioned).
type corrPre struct {
	ix        *graph.Indexed
	sh        *corrShared
	hasParent []bool
	nodeGOff  []int32
	ttl       int
	maxRounds int
}

// node builds the protocol state of the node at snapshot index i.
func (pre *corrPre) node(i int32) correctionNode {
	return correctionNode{
		sh:        pre.sh,
		idx:       i,
		hasParent: pre.hasParent[i],
		ttl:       pre.ttl,
		gOff:      pre.nodeGOff[i],
		gEnd:      pre.nodeGOff[i+1],
	}
}

// correctionPrecompute flattens the layer/parent/color maps into the
// shared index-space slabs the choreography runs on.
func correctionPrecompute(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int, o dist.RoundObserver) *corrPre {
	ix := graph.NewIndexed(g)
	n := ix.NumNodes()
	ids := ix.IDs()
	layerOf := make([]int32, n)
	for i, v := range ids {
		layerOf[i] = int32(layer[v])
	}

	// Flatten the parent relation into (parent, layer desc, child asc)
	// triples; contiguous runs become the per-parent child groups.
	type kidRec struct{ p, l, c int32 }
	hasParent := make([]bool, n)
	kids := make([]kidRec, 0, len(parent))
	for child, p := range parent {
		ci, ok := ix.IndexOf(child)
		if !ok {
			continue
		}
		hasParent[ci] = true
		pi, ok := ix.IndexOf(p)
		if !ok {
			continue
		}
		kids = append(kids, kidRec{int32(pi), layerOf[ci], int32(ci)})
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].p != kids[j].p {
			return kids[i].p < kids[j].p
		}
		if kids[i].l != kids[j].l {
			return kids[i].l > kids[j].l
		}
		return kids[i].c < kids[j].c
	})
	kidIdx := make([]int32, len(kids))
	kidColor := make([]int, len(kids))
	for i, kr := range kids {
		kidIdx[i] = kr.c
		kidColor[i] = finalColors[ids[kr.c]]
	}
	var groups []corrGroup
	var groupOwner []int32
	for i := 0; i < len(kids); {
		j := i
		for j < len(kids) && kids[j].p == kids[i].p && kids[j].l == kids[i].l {
			j++
		}
		groups = append(groups, corrGroup{layer: kids[i].l, kidOff: int32(i), kidEnd: int32(j)})
		groupOwner = append(groupOwner, kids[i].p)
		i = j
	}
	// groupOwner is ascending, so per-node group ranges fall out of one scan.
	nodeGOff := make([]int32, n+1)
	gi := 0
	for v := 0; v < n; v++ {
		nodeGOff[v] = int32(gi)
		for gi < len(groups) && groupOwner[gi] == int32(v) {
			gi++
		}
	}
	nodeGOff[n] = int32(len(groups))

	// Gate sets — the higher-layer neighbors of each group's children —
	// are pure per-group computations over the snapshot: shard them with
	// per-group result slots, then flatten in group order.
	gateSlots := make([][]int32, len(groups))
	runStageShards("correction-setup", len(groups), resolveStageWorkers(0, len(groups)), o, func(lo, hi int) {
		var buf []int32
		for gi := lo; gi < hi; gi++ {
			grp := &groups[gi]
			buf = buf[:0]
			for _, c := range kidIdx[grp.kidOff:grp.kidEnd] {
				for _, u := range ix.NeighborIndices(int(c)) {
					if layerOf[u] > grp.layer {
						buf = append(buf, u)
					}
				}
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
			out := make([]int32, 0, len(buf))
			for i, u := range buf {
				if i == 0 || u != buf[i-1] {
					out = append(out, u)
				}
			}
			gateSlots[gi] = out
		}
	})
	total := 0
	for _, gs := range gateSlots {
		total += len(gs)
	}
	gates := make([]int32, 0, total)
	for gi := range groups {
		groups[gi].gateOff = int32(len(gates))
		gates = append(gates, gateSlots[gi]...)
		groups[gi].gateEnd = int32(len(gates))
	}
	sh := &corrShared{groups: groups, kidIdx: kidIdx, kidColor: kidColor, gates: gates}
	return &corrPre{
		ix:        ix,
		sh:        sh,
		hasParent: hasParent,
		nodeGOff:  nodeGOff,
		ttl:       k + 5,
		maxRounds: 20 * (g.NumNodes() + 10) * (k + 5),
	}
}
