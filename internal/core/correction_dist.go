package core

import (
	"fmt"
	"slices"

	"repro/internal/dist"
	"repro/internal/graph"
)

// The correction-phase choreography of Algorithms 2/4: after the coloring
// phase, nodes without parents are final immediately and announce it;
// every parent waits until (a) it is final itself and (b) every
// higher-layer neighbor of its layer-l children is final, then sends
// SetColor to those children (Lemma 10's recoloring, computed from the
// parent's (k+5)-ball knowledge), which finalizes them in turn. The
// engine measures the real asynchronous schedule length (the induction of
// Lemma 12).

type finalMsg struct {
	Origin graph.ID
	TTL    int
}

type setColorMsg struct {
	Target graph.ID
	Color  int
	TTL    int
}

// correctionNode is one node's state machine for the correction phase.
type correctionNode struct {
	id        graph.ID
	hasParent bool
	final     bool
	ttl       int // flooding TTL: k+5

	// children[l] lists this node's children in layer l, descending l.
	childLayers []int
	children    map[int][]graph.ID
	// need[l] is the set of nodes whose finality gates correcting layer l.
	need map[int]map[graph.ID]bool
	// assign holds the colors this parent will hand to its children
	// (its local Lemma-10 computation, precomputed).
	assign map[graph.ID]int

	seenFinal map[graph.ID]bool
	seenSet   map[graph.ID]bool
	finals    map[graph.ID]bool
	pendingAt int // index into childLayers of the next layer to correct
}

func (c *correctionNode) Init(ctx *dist.Context) {
	if !c.hasParent {
		c.final = true
		c.announce(ctx)
	}
	c.tryCorrect(ctx)
}

func (c *correctionNode) announce(ctx *dist.Context) {
	if c.seenFinal[c.id] {
		return
	}
	c.seenFinal[c.id] = true
	c.finals[c.id] = true
	ctx.Broadcast(finalMsg{Origin: c.id, TTL: c.ttl})
}

func (c *correctionNode) Round(ctx *dist.Context, inbox []dist.Message) {
	for _, m := range inbox {
		switch msg := m.Payload.(type) {
		case finalMsg:
			c.finals[msg.Origin] = true
			if !c.seenFinal[msg.Origin] {
				c.seenFinal[msg.Origin] = true
				if msg.TTL > 1 {
					ctx.Broadcast(finalMsg{Origin: msg.Origin, TTL: msg.TTL - 1})
				}
			}
		case setColorMsg:
			if msg.Target == c.id {
				if !c.final {
					c.final = true
					c.announce(ctx)
				}
				continue
			}
			if !c.seenSet[msg.Target] {
				c.seenSet[msg.Target] = true
				if msg.TTL > 1 {
					ctx.Broadcast(setColorMsg{Target: msg.Target, Color: msg.Color, TTL: msg.TTL - 1})
				}
			}
		}
	}
	c.tryCorrect(ctx)
}

// tryCorrect sends SetColor for the next child layers whose gates are
// satisfied. Layers are processed top-down, as in CorrectChildren.
func (c *correctionNode) tryCorrect(ctx *dist.Context) {
	if !c.final {
		return
	}
	for c.pendingAt < len(c.childLayers) {
		l := c.childLayers[c.pendingAt]
		for v := range c.need[l] {
			if !c.finals[v] {
				return
			}
		}
		for _, child := range c.children[l] {
			ctx.Broadcast(setColorMsg{Target: child, Color: c.assign[child], TTL: c.ttl})
		}
		c.pendingAt++
	}
}

func (c *correctionNode) Done() bool  { return c.final && c.pendingAt >= len(c.childLayers) }
func (c *correctionNode) Output() any { return c.final }

// RunCorrectionPhase executes the correction choreography on the LOCAL
// engine. Inputs: the layer map and parent map from the pruning phase and
// the final colors (each parent's local Lemma-10 result). It returns the
// measured rounds of the asynchronous schedule.
func RunCorrectionPhase(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int) (int, error) {
	return RunCorrectionPhaseObserved(g, layer, parent, finalColors, k, nil)
}

// RunCorrectionPhaseObserved is RunCorrectionPhase with a RoundObserver
// attached to the correction engine (nil behaves identically).
func RunCorrectionPhaseObserved(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int, o dist.RoundObserver) (int, error) {
	return RunCorrectionPhaseFaulty(g, layer, parent, finalColors, k, o, nil)
}

// RunCorrectionPhaseFaulty is RunCorrectionPhaseObserved with a fault
// schedule attached to the correction engine. The choreography dedups
// every message kind (seenFinal/seenSet), so duplication and delay leave
// the corrected coloring untouched; dropped messages stall the
// choreography and surface as the engine's did-not-terminate error.
func RunCorrectionPhaseFaulty(g *graph.Graph, layer map[graph.ID]int, parent map[graph.ID]graph.ID, finalColors map[graph.ID]int, k int, o dist.RoundObserver, f *dist.Faults) (int, error) {
	children := make(map[graph.ID]map[int][]graph.ID)
	for child, p := range parent {
		if children[p] == nil {
			children[p] = make(map[int][]graph.ID)
		}
		l := layer[child]
		children[p][l] = append(children[p][l], child)
	}
	eng := dist.NewEngine(g, func(v graph.ID) dist.Protocol {
		node := &correctionNode{
			id:        v,
			hasParent: false,
			ttl:       k + 5,
			children:  children[v],
			need:      make(map[int]map[graph.ID]bool),
			assign:    make(map[graph.ID]int),
			seenFinal: make(map[graph.ID]bool),
			seenSet:   make(map[graph.ID]bool),
			finals:    make(map[graph.ID]bool),
		}
		if _, ok := parent[v]; ok {
			node.hasParent = true
		}
		for l, kids := range children[v] {
			node.childLayers = append(node.childLayers, l)
			gate := make(map[graph.ID]bool)
			for _, child := range kids {
				node.assign[child] = finalColors[child]
				for _, u := range g.Neighbors(child) {
					if layer[u] > l {
						gate[u] = true
					}
				}
			}
			node.need[l] = gate
		}
		// Descending layer order (CorrectChildren processes lv−1 … 1).
		slices.SortFunc(node.childLayers, func(a, b int) int { return b - a })
		return node
	})
	eng.Observer = o
	eng.Faults = f
	res, err := eng.Run(20 * (g.NumNodes() + 10) * (k + 5))
	if err != nil {
		return 0, fmt.Errorf("correction phase: %w", err)
	}
	for v, o := range res.Outputs {
		if !o.(bool) {
			return 0, fmt.Errorf("node %d never finalized", v)
		}
	}
	return res.Rounds, nil
}
