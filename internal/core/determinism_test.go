package core

import (
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
)

// TestDistributedPruneDeterministicAcrossModes runs the full pruning
// phase (an E4/E6-style workload) under the pooled, per-node-goroutine,
// and sequential engine schedules and requires bit-for-bit identical
// outcomes: same layers, parents, rounds, and traffic counters.
func TestDistributedPruneDeterministicAcrossModes(t *testing.T) {
	g := gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 9)
	run := func(m dist.ExecMode) *PruneOutcome {
		old := dist.DefaultMode
		dist.DefaultMode = m
		defer func() { dist.DefaultMode = old }()
		out, err := DistributedPrune(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(dist.ModeSequential)
	for _, m := range []dist.ExecMode{dist.ModePooled, dist.ModePerNode} {
		got := run(m)
		if got.Rounds != ref.Rounds || got.Iterations != ref.Iterations ||
			got.Messages != ref.Messages || got.Volume != ref.Volume {
			t.Fatalf("mode %d: counters (rounds=%d iter=%d msgs=%d vol=%d), want (%d,%d,%d,%d)",
				m, got.Rounds, got.Iterations, got.Messages, got.Volume,
				ref.Rounds, ref.Iterations, ref.Messages, ref.Volume)
		}
		if !reflect.DeepEqual(got.Layer, ref.Layer) {
			t.Fatalf("mode %d: layer assignment differs from sequential", m)
		}
		if !reflect.DeepEqual(got.Parent, ref.Parent) {
			t.Fatalf("mode %d: parent assignment differs from sequential", m)
		}
	}
}
