package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chordal"
	"repro/internal/colorreduce"
	"repro/internal/graph"
	"repro/internal/interval"
)

// IntervalMISResult is the outcome of the (1+ε)-approximate interval MIS.
type IntervalMISResult struct {
	Set     graph.Set
	K       int
	Rounds  int
	Anchors int
}

// MISIntervalK returns the paper's parameter k = ⌈2.5/ε + 0.5⌉.
func MISIntervalK(eps float64) int {
	k := int(math.Ceil(2.5/eps + 0.5))
	if k < 3 {
		k = 3
	}
	return k
}

// MISInterval implements Algorithm 5, the deterministic
// (1+ε)-approximation for Maximum Independent Set on interval graphs
// (Theorems 5–6): dominated vertices are discarded (leaving a proper
// interval graph of the same independence number); small-diameter
// components are solved exactly by a local coordinator; in large
// components a distance-k independent set I₁ is selected via the
// chain-anchor machinery (our stand-in for simulating MISUnitInterval on
// G^k), and exact maximum independent sets are computed in the segments
// between consecutive members and beyond the extremes.
//
// idBound bounds node IDs (for the symmetry-breaking palette).
func MISInterval(g *graph.Graph, eps float64, idBound int) (*IntervalMISResult, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("epsilon must be positive, got %v", eps)
	}
	k := MISIntervalK(eps)
	res := &IntervalMISResult{K: k}

	proper := interval.RemoveDominated(g)
	res.Rounds += 2 // each node compares closed neighborhoods with neighbors

	for _, comp := range proper.Components() {
		sub := proper.InducedSubgraph(comp)
		diam := sub.Diameter()
		if diam <= 10*k {
			// A coordinator sees the whole component within 10k+1 hops.
			exact, err := chordal.MaximumIndependentSet(sub)
			if err != nil {
				return nil, fmt.Errorf("component MIS: %w", err)
			}
			// The coordinator's collection radius is covered by the
			// diameter-test charge below; components run concurrently.
			res.Set = res.Set.Union(exact)
			continue
		}
		segRounds, err := misLargeComponent(sub, k, idBound, res)
		if err != nil {
			return nil, err
		}
		if segRounds > res.Rounds {
			res.Rounds = segRounds
		}
	}
	res.Rounds += 10*k + 1 // the diameter test itself
	return res, nil
}

// misLargeComponent handles one large proper-interval component.
func misLargeComponent(sub *graph.Graph, k, idBound int, res *IntervalMISResult) (int, error) {
	order, err := interval.UmbrellaOrder(sub)
	if err != nil {
		return 0, fmt.Errorf("component is not proper interval after reduction: %w", err)
	}
	pos := interval.PositionsOf(order)
	rounds := 0

	// Distance-k independent set I₁: anchors on the umbrella chain with
	// pairwise graph distance ≥ k+1.
	ch := colorreduce.NewChain()
	ch.AddNode(order[0])
	for i := 0; i+1 < len(order); i++ {
		ch.AddEdge(order[i], order[i+1], 1)
	}
	ch.Dist = func(u, v graph.ID) int {
		d := sub.Distance(u, v)
		if d < 0 {
			return k + 1
		}
		return d
	}
	anchorRes, err := colorreduce.SelectAnchors(ch, k+1, idBound)
	if err != nil {
		return 0, fmt.Errorf("distance-k independent set: %w", err)
	}
	rounds += anchorRes.Rounds
	i1 := anchorRes.Anchors
	res.Anchors += len(i1)
	res.Set = res.Set.Union(i1)

	// Order I₁ along the line and solve each gap exactly.
	members := append(graph.Set(nil), i1...)
	sort.Slice(members, func(a, b int) bool { return pos[members[a]] < pos[members[b]] })

	blocked := make(map[graph.ID]bool)
	for _, u := range i1 {
		blocked[u] = true
		for _, w := range sub.Neighbors(u) {
			blocked[w] = true
		}
	}
	segmentMIS := func(lo, hi int) error { // positions (exclusive bounds handled by caller)
		var seg []graph.ID
		for p := lo; p <= hi; p++ {
			if !blocked[order[p]] {
				seg = append(seg, order[p])
			}
		}
		if len(seg) == 0 {
			return nil
		}
		exact, err := chordal.MaximumIndependentSet(sub.InducedSubgraph(seg))
		if err != nil {
			return err
		}
		res.Set = res.Set.Union(exact)
		return nil
	}
	if len(members) > 0 {
		if err := segmentMIS(0, pos[members[0]]-1); err != nil { // left of v_l
			return 0, err
		}
		if err := segmentMIS(pos[members[len(members)-1]]+1, len(order)-1); err != nil { // right of v_r
			return 0, err
		}
	}
	maxGap := 0
	for i := 0; i+1 < len(members); i++ {
		lo, hi := pos[members[i]]+1, pos[members[i+1]]-1
		if err := segmentMIS(lo, hi); err != nil {
			return 0, err
		}
		if d := sub.Distance(members[i], members[i+1]); d > maxGap {
			maxGap = d
		}
	}
	// Segment solving is local: each pair coordinates a region of its gap
	// diameter; all segments run concurrently.
	rounds += maxGap + 2
	return rounds, nil
}
