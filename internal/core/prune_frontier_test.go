package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/peel"
	"repro/internal/verify"
)

// barbell builds two forced degree-3 hubs joined by a chain of the given
// length (same construction as the peel tests): the chain is an internal
// path of the clique forest whose length can far exceed the 10k knowledge
// horizon.
func barbell(chainLen int) *graph.Graph {
	g := graph.New()
	for _, e := range [][2]graph.ID{
		{1, 2}, {2, 3}, {1, 3},
		{1, 7}, {2, 7}, {2, 8}, {3, 8}, {1, 9}, {3, 9},
	} {
		g.AddEdge(e[0], e[1])
	}
	last := graph.ID(9)
	next := graph.ID(10)
	for i := 0; i < chainLen; i++ {
		g.AddEdge(last, next)
		last = next
		next++
	}
	// Right hub K2 = {next, next+1, next+2} joined via a weight-2 clique.
	a, b, c := next, next+1, next+2
	g.AddEdge(last, a)
	g.AddEdge(last, b)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(a, c)
	g.AddEdge(b, c+1)
	g.AddEdge(c, c+1)
	g.AddEdge(a, c+2)
	g.AddEdge(c, c+2)
	return g
}

// TestDistributedPruneBeyondHorizon exercises the frontier case: with
// k=3 the knowledge radius is 30, far less than the 200-clique internal
// chain, so mid-chain nodes must peel themselves via the
// "binary path reaches my horizon ⇒ diameter ≥ 3k" rule, while hub-area
// nodes must wait for a later iteration. The partition must still match
// the centralized algorithm exactly (Lemma 12).
func TestDistributedPruneBeyondHorizon(t *testing.T) {
	g := barbell(200)
	const k = 3
	out, err := DistributedPrune(g, k)
	if err != nil {
		t.Fatal(err)
	}
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 3 * k})
	if err != nil {
		t.Fatal(err)
	}
	central := peeled.NodeLayers()
	for v, l := range out.Layer {
		if central[v] != l {
			t.Fatalf("node %d: distributed layer %d, centralized %d", v, l, central[v])
		}
	}
	if out.Iterations < 2 {
		t.Fatalf("expected at least 2 iterations, got %d", out.Iterations)
	}
	// Mid-chain nodes (far from both hubs) must be layer 1.
	if out.Layer[100] != 1 {
		t.Fatalf("mid-chain node in layer %d, want 1", out.Layer[100])
	}
}

// TestColorChordalDistributedBeyondHorizon runs the whole distributed
// pipeline on the barbell, checking legality and the palette bound.
func TestColorChordalDistributedBeyondHorizon(t *testing.T) {
	g := barbell(150)
	cc, err := ColorChordalDistributed(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(g, cc.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > cc.Palette {
		t.Fatalf("used %d > palette %d", used, cc.Palette)
	}
}

// TestDistributedPruneSpiderKValues checks the local decision across k on
// a spider (many pendant arms of varying length).
func TestDistributedPruneSpiderKValues(t *testing.T) {
	g := graph.New()
	next := graph.ID(1)
	for arm := 0; arm < 6; arm++ {
		last := graph.ID(0)
		for i := 0; i <= arm*7; i++ {
			g.AddEdge(last, next)
			last = next
			next++
		}
	}
	for _, k := range []int{3, 5} {
		out, err := DistributedPrune(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		peeled, err := peel.Run(g, peel.Options{InternalDiameter: 3 * k})
		if err != nil {
			t.Fatal(err)
		}
		central := peeled.NodeLayers()
		for v, l := range out.Layer {
			if central[v] != l {
				t.Fatalf("k=%d node %d: distributed %d, centralized %d", k, v, l, central[v])
			}
		}
	}
}

// TestDistributedPruneDisconnected checks per-component behaviour.
func TestDistributedPruneDisconnected(t *testing.T) {
	g := gen.Path(30)
	h := gen.RandomChordal(40, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 5)
	for _, e := range h.Edges() {
		g.AddEdge(e[0]+1000, e[1]+1000)
	}
	out, err := DistributedPrune(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 9})
	if err != nil {
		t.Fatal(err)
	}
	central := peeled.NodeLayers()
	for v, l := range out.Layer {
		if central[v] != l {
			t.Fatalf("node %d: distributed %d, centralized %d", v, l, central[v])
		}
	}
}

// TestCorrectionPhaseOnHubTree drives the correction choreography through
// several layers: pendant-only style depth in the hub tree means parents
// must cascade SetColor messages layer by layer.
func TestCorrectionPhaseOnHubTree(t *testing.T) {
	g := gen.HubTree(3, 12)
	cc, err := ColorChordalDistributed(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Coloring(g, cc.Colors); err != nil {
		t.Fatal(err)
	}
	if cc.Layers < 2 {
		t.Fatalf("expected multi-layer peel, got %d", cc.Layers)
	}
	if cc.Rounds <= 0 {
		t.Fatal("no rounds")
	}
	// Some nodes must actually have been recolored by their parents.
	recolored := 0
	for v, final := range cc.Colors {
		if final != cc.Provisional[v] {
			recolored++
		}
	}
	t.Logf("layers=%d rounds=%d recolored=%d/%d", cc.Layers, cc.Rounds, recolored, g.NumNodes())
}

// TestCorrectionPhaseDirect exercises RunCorrectionPhase standalone.
func TestCorrectionPhaseDirect(t *testing.T) {
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 41)
	k := 3
	outcome, err := DistributedPrune(g, k)
	if err != nil {
		t.Fatal(err)
	}
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 3 * k})
	if err != nil {
		t.Fatal(err)
	}
	col, err := colorLayers(g, k, peeled, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := RunCorrectionPhase(g, outcome.Layer, outcome.Parent, col.Colors, k)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 0 {
		t.Fatal("negative rounds")
	}
}
