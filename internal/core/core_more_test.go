package core

import (
	"testing"
	"testing/quick"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/peel"
	"repro/internal/verify"
)

func TestColorChordalEdgeCases(t *testing.T) {
	// Empty graph.
	cc, err := ColorChordal(graph.New(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Colors) != 0 {
		t.Fatal("empty graph should get empty coloring")
	}
	// Single node.
	single := graph.New()
	single.AddNode(7)
	cc, err = ColorChordal(single, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Colors[7] < 1 {
		t.Fatal("single node uncolored")
	}
	// Complete graph: χ = n, approximation is trivially optimal.
	k6 := gen.Complete(6)
	cc, err = ColorChordal(k6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(k6, cc.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used != 6 {
		t.Fatalf("K6 colored with %d colors", used)
	}
	// Disconnected graph.
	dis := gen.Path(10)
	for _, e := range gen.Complete(4).Edges() {
		dis.AddEdge(e[0]+100, e[1]+100)
	}
	cc, err = ColorChordal(dis, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Coloring(dis, cc.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestColorChordalOnDeepPaths(t *testing.T) {
	// Long paths exercise many blocks and corrections with χ = 2.
	g := gen.Path(600)
	for _, eps := range []float64{1, 0.25} {
		cc, err := ColorChordal(g, eps)
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		used, err := verify.Coloring(g, cc.Colors)
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		if used > 3 {
			t.Fatalf("eps %v: path colored with %d colors", eps, used)
		}
	}
}

func TestColorChordalOnCaterpillarForest(t *testing.T) {
	// Many branch vertices force multi-layer peeling.
	g := gen.Caterpillar(120, 3)
	cc, err := ColorChordal(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(g, cc.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > 3 {
		t.Fatalf("caterpillar colored with %d colors", used)
	}
	if cc.Layers < 2 {
		t.Fatalf("expected ≥ 2 layers, got %d", cc.Layers)
	}
}

func TestColorChordalRelabelInvariantQuality(t *testing.T) {
	base := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 17)
	omega, _ := chordal.CliqueNumber(base)
	for seed := int64(0); seed < 4; seed++ {
		g, _ := gen.RelabelRandom(base, seed)
		cc, err := ColorChordal(g, 0.5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		used, err := verify.Coloring(g, cc.Colors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if used > cc.Palette || cc.Omega != omega {
			t.Fatalf("seed %d: used=%d palette=%d ω=%d want ω=%d", seed, used, cc.Palette, cc.Omega, omega)
		}
	}
}

func TestPropertyColorChordal(t *testing.T) {
	f := func(seedRaw uint16, epsPick uint8) bool {
		seed := int64(seedRaw)
		eps := []float64{1, 0.6, 0.3}[int(epsPick)%3]
		g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		cc, err := ColorChordal(g, eps)
		if err != nil {
			return false
		}
		used, err := verify.Coloring(g, cc.Colors)
		if err != nil {
			return false
		}
		return used <= cc.Palette
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMISChordal(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.35}, seed)
		res, err := MISChordal(g, 0.4)
		if err != nil {
			return false
		}
		if verify.IndependentSet(g, res.Set) != nil {
			return false
		}
		alpha, err := chordal.IndependenceNumber(g)
		if err != nil {
			return false
		}
		return float64(alpha) <= 1.4*float64(len(res.Set))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMISIntervalEdgeCases(t *testing.T) {
	// Empty.
	res, err := MISInterval(graph.New(), 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 0 {
		t.Fatal("empty graph must give empty set")
	}
	// Single clique: MIS = 1.
	res, err = MISInterval(gen.Complete(5), 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("clique MIS = %d, want 1", len(res.Set))
	}
	// Edgeless: everyone.
	e := graph.New()
	for i := 0; i < 6; i++ {
		e.AddNode(graph.ID(i))
	}
	res, err = MISInterval(e, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 6 {
		t.Fatalf("edgeless MIS = %d, want 6", len(res.Set))
	}
	// Invalid epsilon.
	if _, err := MISInterval(gen.Path(3), 0, 3); err == nil {
		t.Fatal("expected error for eps=0")
	}
}

func TestMISChordalOnStarsAndPaths(t *testing.T) {
	star := gen.Star(50)
	res, err := MISChordal(star, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 49 {
		t.Fatalf("star MIS = %d, want 49", len(res.Set))
	}
	path := gen.Path(301)
	res, err = MISChordal(path, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IndependentSet(path, res.Set); err != nil {
		t.Fatal(err)
	}
	if float64(151) > 1.3*float64(len(res.Set)) {
		t.Fatalf("path MIS = %d, α = 151", len(res.Set))
	}
}

func TestAbsorbingMISAbsorptionEquation(t *testing.T) {
	// The defining property from Section 7.1: for components H of peeled
	// paths with small α, the algorithm's IH satisfies
	// |IH| = α(Γ_{G_i}[IH] \ Γ_G[I_prev]). We exercise it through
	// MISChordal runs by checking the weaker, directly testable variant
	// on standalone anchored components.
	for seed := int64(0); seed < 10; seed++ {
		host := gen.RandomInterval(25, 8, 2.5, seed)
		// Attach an anchor clique to the right end.
		nodes := host.Nodes()
		if len(nodes) == 0 {
			continue
		}
		anchorID := graph.ID(1000)
		host2 := host.Clone()
		host2.AddEdge(nodes[len(nodes)-1], anchorID)
		anchor := graph.NewSet(anchorID)
		ih := AbsorbingMIS(host, host2, anchor)
		if err := verify.IndependentSet(host, ih); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		alpha, err := chordal.IndependenceNumber(host)
		if err != nil {
			t.Fatal(err)
		}
		if len(ih) != alpha {
			t.Fatalf("seed %d: |IH| = %d, α = %d", seed, len(ih), alpha)
		}
		// Absorption within the host: α of the closed neighborhood of IH
		// inside the host equals |IH|.
		var closed graph.Set
		for _, v := range ih {
			closed = append(closed, v)
			closed = append(closed, host.Neighbors(v)...)
		}
		closed = graph.NewSet(closed...)
		a, err := chordal.IndependenceNumber(host.InducedSubgraph(closed))
		if err != nil {
			t.Fatal(err)
		}
		if a != len(ih) {
			t.Fatalf("seed %d: absorption violated: α(Γ[IH]) = %d, |IH| = %d", seed, a, len(ih))
		}
	}
}

func TestColIntGraphMatchesLayerPipeline(t *testing.T) {
	// ColIntGraph on a peeled layer's clique path must color G[W].
	g := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.35}, 23)
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range peeled.Layers {
		for _, rec := range layer.Paths {
			sub := g.InducedSubgraph(rec.Nodes)
			path := peel.LayerCliquePath(rec)
			if err := interval.ValidCliquePath(sub, path); err != nil {
				t.Fatalf("layer %d: %v", layer.Index, err)
			}
			ic, err := ColIntGraph(sub, path, 3, 200)
			if err != nil {
				t.Fatalf("layer %d: %v", layer.Index, err)
			}
			if _, err := verify.Coloring(sub, ic.Colors); err != nil {
				t.Fatalf("layer %d: %v", layer.Index, err)
			}
		}
	}
}

func TestDistributedPruneOnPath(t *testing.T) {
	// A path peels in one iteration (one pendant path).
	g := gen.Path(40)
	out, err := DistributedPrune(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations != 1 {
		t.Fatalf("path peeled in %d iterations, want 1", out.Iterations)
	}
	for v, l := range out.Layer {
		if l != 1 {
			t.Fatalf("node %d in layer %d", v, l)
		}
	}
	if out.Rounds != 30 {
		t.Fatalf("rounds = %d, want 10k = 30", out.Rounds)
	}
}

func TestDistributedPruneParents(t *testing.T) {
	// Parents must be in strictly higher layers (Corollary 2).
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 31)
	out, err := DistributedPrune(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range out.Parent {
		if out.Layer[p] <= out.Layer[v] {
			t.Fatalf("parent %d (layer %d) of %d (layer %d) not in higher layer",
				p, out.Layer[p], v, out.Layer[v])
		}
		// The parent is within distance k+3.
		if d := g.Distance(v, p); d > 6 {
			t.Fatalf("parent %d at distance %d > k+3 from %d", p, d, v)
		}
	}
}

func TestEffectiveK(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{
		{2, 3}, {1, 3}, {0.5, 4}, {0.25, 8}, {0.1, 20},
	}
	for _, c := range cases {
		if got := EffectiveK(c.eps); got != c.want {
			t.Errorf("EffectiveK(%v) = %d, want %d", c.eps, got, c.want)
		}
	}
}

func TestMISChordalParams(t *testing.T) {
	d, iters := MISChordalParams(0.5)
	if d != 128 {
		t.Fatalf("d = %d, want 128", d)
	}
	if iters < 8 {
		t.Fatalf("iterations = %d, too small", iters)
	}
}

func TestMISChordalDistributedMatches(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 19)
	res, err := MISChordalDistributed(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IndependentSet(g, res.Set); err != nil {
		t.Fatal(err)
	}
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		t.Fatal(err)
	}
	if float64(alpha) > 1.8*float64(len(res.Set))+1e-9 {
		t.Fatalf("|I| = %d, α = %d", len(res.Set), alpha)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds reported")
	}
	// The distributed and centralized pipelines agree on the result set.
	central, err := MISChordal(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Set.Equal(central.Set) {
		t.Fatalf("distributed set %v != centralized %v", res.Set, central.Set)
	}
}

func TestMISChordalDistributedOnSpider(t *testing.T) {
	g := spiderK4(6)
	res, err := MISChordalDistributed(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 10 {
		t.Fatalf("spider MIS = %d, want α = 10", len(res.Set))
	}
}

func TestDistributedDominatedMatchesCentralized(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.RandomInterval(60, 15, 3, seed)
		distSet, rounds, err := DistributedDominated(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		central := interval.Dominated(g)
		if !distSet.Equal(central) {
			t.Fatalf("seed %d: distributed %v != centralized %v", seed, distSet, central)
		}
		if rounds != 1 {
			t.Fatalf("seed %d: rounds = %d, want 1", seed, rounds)
		}
	}
}

// TestDeterminism: the canonical tie-breaking order exists so that all
// nodes (and all runs) agree on one clique forest; end to end, both
// algorithms must be bit-for-bit deterministic, including under the
// concurrent engine.
func TestDeterminism(t *testing.T) {
	g := gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, 77)
	c1, err := ColorChordal(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ColorChordal(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		if c1.Colors[v] != c2.Colors[v] {
			t.Fatalf("node %d colored %d then %d", v, c1.Colors[v], c2.Colors[v])
		}
	}
	m1, err := MISChordal(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MISChordal(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Set.Equal(m2.Set) {
		t.Fatal("MIS not deterministic")
	}
	d1, err := ColorChordalDistributed(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ColorChordalDistributed(g, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		if d1.Colors[v] != d2.Colors[v] {
			t.Fatalf("distributed: node %d colored %d then %d", v, d1.Colors[v], d2.Colors[v])
		}
	}
	if d1.Rounds != d2.Rounds {
		t.Fatalf("distributed rounds differ: %d vs %d", d1.Rounds, d2.Rounds)
	}
}
