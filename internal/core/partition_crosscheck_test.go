package core

import (
	"fmt"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// This file is the headline cross-check of the partitioned runtime: the
// full coloring and MIS pipelines must produce byte-identical results —
// outputs, round counts, and the deterministic trace fields — whether
// the message-passing phases run on the in-process engine or on a
// partition, fault-free and under dup/delay/drop schedules.

// traceRecorder flattens every deterministic observer event into a
// string stream. Shards (legitimately different between modes) and
// anything wall-clock are exactly what it leaves out — the same fields
// the tracestat diff treats as deterministic.
type traceRecorder struct {
	phase  string
	events []string
}

func (o *traceRecorder) SetPhase(name string)      { o.phase = name }
func (o *traceRecorder) RunStart(nodes, edges int) { o.add("run-start %d %d", nodes, edges) }
func (o *traceRecorder) RoundStart(round, _ int)   { o.add("round-start %d", round) }
func (o *traceRecorder) ShardStart(shard int)      {}
func (o *traceRecorder) ShardEnd(shard int)        {}
func (o *traceRecorder) RunEnd(rounds int)         { o.add("run-end %d", rounds) }
func (o *traceRecorder) RoundEnd(s dist.RoundStats) {
	o.add("round-end %d n=%d m=%d v=%d done=%d inbox=%d",
		s.Round, s.Nodes, s.Messages, s.Volume, s.Done, s.MaxInbox)
}
func (o *traceRecorder) FaultRound(fs dist.FaultStats) {
	o.add("faults %d drop=%d dup=%d dead=%d stall=%d crashed=%v",
		fs.Round, fs.Dropped, fs.Duplicated, fs.DeadLetters, fs.Stall, fs.Crashed)
}
func (o *traceRecorder) add(format string, args ...any) {
	o.events = append(o.events, o.phase+": "+fmt.Sprintf(format, args...))
}

func sameTrace(t *testing.T, at string, local, part *traceRecorder) {
	t.Helper()
	for i := 0; i < len(local.events) && i < len(part.events); i++ {
		if local.events[i] != part.events[i] {
			t.Fatalf("%s: trace event %d diverges:\n  local: %s\n  part:  %s",
				at, i, local.events[i], part.events[i])
		}
	}
	if len(local.events) != len(part.events) {
		t.Fatalf("%s: trace lengths diverge: %d local events, %d partitioned",
			at, len(local.events), len(part.events))
	}
}

func parseFaultsPair(t *testing.T, spec string, seed uint64) (*dist.Faults, *dist.Faults) {
	t.Helper()
	if spec == "" {
		return nil, nil
	}
	lf, err := dist.ParseFaults(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := dist.ParseFaults(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return lf, pf
}

// TestPartitionedColoringMatchesLocal: the full distributed coloring —
// pruning floods, Lemma-12 cross-check, coloring, correction
// choreography — is byte-identical between LOCAL and 2- or 4-shard
// partitioned execution, fault-free and under absorbed fault schedules.
func TestPartitionedColoringMatchesLocal(t *testing.T) {
	g := gen.RandomChordal(100, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 13)
	ix := graph.NewIndexed(g)
	for _, spec := range []string{"", "dup=0.25,delay=2", "dup=0.1,delay=1"} {
		for _, parts := range []int{2, 4} {
			at := fmt.Sprintf("%q/parts=%d", spec, parts)
			lf, pf := parseFaultsPair(t, spec, 29)
			lObs, pObs := &traceRecorder{}, &traceRecorder{}
			want, err := ColorChordalDistributedFaulty(g, 0.5, lObs, nil, lf)
			if err != nil {
				t.Fatalf("%s: local: %v", at, err)
			}
			got, err := ColorChordalDistributedFaultyPart(g, 0.5, pObs, nil, pf, dist.NewLocalPartition(ix, parts))
			if err != nil {
				t.Fatalf("%s: partitioned: %v", at, err)
			}
			if got.ColorsUsed != want.ColorsUsed || got.Rounds != want.Rounds {
				t.Fatalf("%s: (colors %d, rounds %d), want (%d, %d)",
					at, got.ColorsUsed, got.Rounds, want.ColorsUsed, want.Rounds)
			}
			for v, c := range want.Colors {
				if got.Colors[v] != c {
					t.Fatalf("%s: node %d colored %d, want %d", at, v, got.Colors[v], c)
				}
			}
			for v, c := range want.Provisional {
				if got.Provisional[v] != c {
					t.Fatalf("%s: node %d provisional %d, want %d", at, v, got.Provisional[v], c)
				}
			}
			sameTrace(t, at, lObs, pObs)
		}
	}
}

// TestPartitionedColoringDropDivergesIdentically: a drop schedule that
// corrupts the pruning floods must produce the identical diagnosis in
// both modes — same deterministic schedule, same truncated balls, same
// error string.
func TestPartitionedColoringDropDivergesIdentically(t *testing.T) {
	g := gen.KTree(60, 1, 47)
	ix := graph.NewIndexed(g)
	lf, pf := parseFaultsPair(t, "drop=0.5", 8)
	_, lerr := ColorChordalDistributedFaulty(g, 0.5, nil, nil, lf)
	if lerr == nil {
		t.Fatal("50% drop produced no local error")
	}
	_, perr := ColorChordalDistributedFaultyPart(g, 0.5, nil, nil, pf, dist.NewLocalPartition(ix, 3))
	if perr == nil {
		t.Fatal("50% drop produced no partitioned error")
	}
	if lerr.Error() != perr.Error() {
		t.Fatalf("drop diagnoses diverge:\n  local: %v\n  part:  %v", lerr, perr)
	}
}

// TestPartitionedMISMatchesLocal: same cross-check for the MIS pipeline.
func TestPartitionedMISMatchesLocal(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 47)
	ix := graph.NewIndexed(g)
	for _, spec := range []string{"", "dup=0.25,delay=3"} {
		for _, parts := range []int{2, 4} {
			at := fmt.Sprintf("%q/parts=%d", spec, parts)
			lf, pf := parseFaultsPair(t, spec, 33)
			lObs, pObs := &traceRecorder{}, &traceRecorder{}
			want, err := MISChordalDistributedFaulty(g, 0.5, lObs, nil, lf)
			if err != nil {
				t.Fatalf("%s: local: %v", at, err)
			}
			got, err := MISChordalDistributedFaultyPart(g, 0.5, pObs, nil, pf, dist.NewLocalPartition(ix, parts))
			if err != nil {
				t.Fatalf("%s: partitioned: %v", at, err)
			}
			if !got.Set.Equal(want.Set) {
				t.Fatalf("%s: MIS diverges: %v vs %v", at, got.Set, want.Set)
			}
			if got.Rounds != want.Rounds || got.Iterations != want.Iterations {
				t.Fatalf("%s: (rounds %d, iters %d), want (%d, %d)",
					at, got.Rounds, got.Iterations, want.Rounds, want.Iterations)
			}
			sameTrace(t, at, lObs, pObs)
		}
	}
}

// TestPartitionedCorrectionMatchesLocal exercises the correction
// choreography's shipped program directly: precomputed group state,
// value payload codecs, and the bool outputs must reproduce the LOCAL
// schedule exactly, including under duplication.
func TestPartitionedCorrectionMatchesLocal(t *testing.T) {
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 31)
	k := EffectiveK(0.5)
	col, err := ColorChordalDistributed(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := DistributedPrune(g, k)
	if err != nil {
		t.Fatal(err)
	}
	ix := graph.NewIndexed(g)
	for _, spec := range []string{"", "dup=0.4", "dup=0.2,delay=2"} {
		for _, parts := range []int{1, 2, 5} {
			at := fmt.Sprintf("%q/parts=%d", spec, parts)
			lf, pf := parseFaultsPair(t, spec, 14)
			lObs, pObs := &traceRecorder{}, &traceRecorder{}
			want, err := RunCorrectionPhaseFaulty(g, outcome.Layer, outcome.Parent, col.Colors, k, lObs, lf)
			if err != nil {
				t.Fatalf("%s: local: %v", at, err)
			}
			got, err := RunCorrectionPhasePart(dist.NewLocalPartition(ix, parts), g, outcome.Layer, outcome.Parent, col.Colors, k, pObs, pf)
			if err != nil {
				t.Fatalf("%s: partitioned: %v", at, err)
			}
			if got != want {
				t.Fatalf("%s: %d correction rounds, want %d", at, got, want)
			}
			sameTrace(t, at, lObs, pObs)
		}
	}
}
