package core

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// decideWorkerSweep is the satellite determinism matrix: the kernel
// must be bit-identical at 1 worker (the sequential loop), 2, and
// GOMAXPROCS.
func decideWorkerSweep() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// TestDecideKernelDeterministicAcrossWorkers requires the parallel
// decide kernel to produce bit-identical outcomes — layers, parents,
// iteration and round counts, traffic counters — for every worker
// count, on workloads covering both view paths: balls that cover their
// component (shared G_i ball) and balls clipped by the radius
// (per-center index-space rebuild).
func TestDecideKernelDeterministicAcrossWorkers(t *testing.T) {
	graphs := map[string]*graph.Graph{
		// Small diameter: every ball covers its component.
		"chordal150": gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 9),
		// Diameter far beyond the radius: per-center ball rebuilds.
		"tree400": gen.Tree(400, 11),
		"path200": gen.Path(200),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			var ref *PruneOutcome
			for _, w := range decideWorkerSweep() {
				out, err := DistributedPruneSpec(g, PruneSpec{
					DiamThreshold: 6, Radius: 20, DecideWorkers: w,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if ref == nil {
					ref = out
					continue
				}
				if out.Rounds != ref.Rounds || out.Iterations != ref.Iterations ||
					out.Messages != ref.Messages || out.Volume != ref.Volume {
					t.Fatalf("workers=%d: counters (rounds=%d iter=%d msgs=%d vol=%d), want (%d,%d,%d,%d)",
						w, out.Rounds, out.Iterations, out.Messages, out.Volume,
						ref.Rounds, ref.Iterations, ref.Messages, ref.Volume)
				}
				if !reflect.DeepEqual(out.Layer, ref.Layer) {
					t.Fatalf("workers=%d: layer assignment differs from workers=1", w)
				}
				if !reflect.DeepEqual(out.Parent, ref.Parent) {
					t.Fatalf("workers=%d: parent assignment differs from workers=1", w)
				}
			}
		})
	}
}

// TestDecideKernelAlphaRuleDeterministicAcrossWorkers sweeps the worker
// count over the MIS pipeline (Algorithm 6), which exercises the decide
// kernel's α-rule last iteration on top of the diameter rule, via the
// DefaultDecideWorkers global the command-line front ends set.
func TestDecideKernelAlphaRuleDeterministicAcrossWorkers(t *testing.T) {
	g := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 5)
	old := DefaultDecideWorkers
	defer func() { DefaultDecideWorkers = old }()
	var ref *ChordalMISResult
	for _, w := range decideWorkerSweep() {
		DefaultDecideWorkers = w
		out, err := MISChordalDistributed(g, 0.4)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = out
			continue
		}
		if out.Rounds != ref.Rounds || out.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: rounds=%d iter=%d, want rounds=%d iter=%d",
				w, out.Rounds, out.Iterations, ref.Rounds, ref.Iterations)
		}
		if !reflect.DeepEqual(out.Set, ref.Set) {
			t.Fatalf("workers=%d: MIS differs from workers=1", w)
		}
	}
}

// TestDecideKernelErrorDeterministicAcrossWorkers checks first-error-
// wins semantics: on a non-chordal input the failing center — and hence
// the error text — must not depend on the worker count. The graph is a
// C4 wheel: node 4's closed neighborhood contains an induced 4-cycle,
// so the first center in snapshot-index order whose walk ensures node 4
// (center 0) reports the failure.
func TestDecideKernelErrorDeterministicAcrossWorkers(t *testing.T) {
	g := graph.FromEdges(nil, [][2]graph.ID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // C4
		{0, 4}, {1, 4}, {2, 4}, {3, 4}, // hub
	})
	var ref error
	for _, w := range decideWorkerSweep() {
		_, err := DistributedPruneSpec(g, PruneSpec{
			DiamThreshold: 3, Radius: 10, DecideWorkers: w,
		})
		if err == nil {
			t.Fatalf("workers=%d: expected a non-chordal error", w)
		}
		if ref == nil {
			ref = err
			continue
		}
		if err.Error() != ref.Error() {
			t.Fatalf("workers=%d: error %q, want %q", w, err, ref)
		}
	}
}

// TestDecideErrorAppliesNothing checks the merge's two-pass contract: a
// failing iteration must not commit any per-center result, exactly like
// the sequential loop that stopped at its first error.
func TestDecideErrorAppliesNothing(t *testing.T) {
	g := graph.FromEdges(nil, [][2]graph.ID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{0, 4}, {1, 4}, {2, 4}, {3, 4},
	})
	out, err := DistributedPruneSpec(g, PruneSpec{DiamThreshold: 3, Radius: 10})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("outcome must be nil on error, got %+v", out)
	}
	var de *decideError
	if !errors.As(err, &de) {
		// The public error is the wrapped form; the internal carrier
		// must not leak.
		_ = de
	} else {
		t.Fatalf("decideError leaked unwrapped: %v", err)
	}
}

// TestDecideKernelRaceStress drives the parallel kernel at GOMAXPROCS
// workers on a workload with several iterations; under `make race` this
// is the dedicated stress entry for the shared cache, the shared G_i
// ball, and the per-shard result slots.
func TestDecideKernelRaceStress(t *testing.T) {
	g := gen.RandomChordal(200, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.3}, 21)
	out, err := DistributedPrune(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Layer) != g.NumNodes() {
		t.Fatalf("decided %d of %d nodes", len(out.Layer), g.NumNodes())
	}
}
