package core

import (
	"fmt"
	"math"

	"repro/internal/chordal"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/peel"
)

// ChordalColoring is the result of the (1+ε)-approximation coloring.
type ChordalColoring struct {
	Colors map[graph.ID]int
	// Provisional holds the pre-correction colors from the coloring
	// phase; nodes whose final color differs received a SetColor from
	// their parent in the correction phase.
	Provisional map[graph.ID]int
	ColorsUsed  int
	Omega       int // χ(G) = ω(G) for chordal graphs
	// Palette is the guarantee ⌊(1+1/k)χ⌋+1 ≤ (1+ε)χ (for ε ≥ 2/χ).
	Palette int
	K       int
	Layers  int
	// Rounds is the LOCAL round count (only set by the distributed
	// variant; the centralized algorithm reports 0).
	Rounds int
}

// EffectiveK maps ε to the paper's parameter k = ⌈2/ε⌉, clamped to at
// least 3 so that the two recoloring zones of a peeled internal path
// (radius k+3 each, path diameter ≥ 3k) can always be handled by a single
// Lemma-9 extension between boundaries at distance ≥ k+3.
func EffectiveK(eps float64) int {
	k := int(math.Ceil(2 / eps))
	if k < 3 {
		k = 3
	}
	return k
}

// ColorChordal runs the centralized Algorithm 1: peel the clique forest
// into interval layers, color each peeled path with ColIntGraph, then
// correct inter-layer conflicts top-down with the Lemma-10 recoloring.
// It requires a chordal input and ε > 0; the (1+ε) approximation guarantee
// holds for ε ≥ 2/χ(G) (Theorem 3).
func ColorChordal(g *graph.Graph, eps float64) (*ChordalColoring, error) {
	return ColorChordalObserved(g, eps, nil)
}

// ColorChordalObserved is ColorChordal with metrics hooks: an observer
// implementing dist.KernelObserver (and peel.KernelObserver — one
// implementation satisfies both, see obs.Collector) receives per-worker
// kernel spans from the centralized pipeline's sharded stages: the
// peeling path measurement and the per-path coloring. Unlike
// ColorChordalDistributedObserved there are no engine rounds to
// observe; nil keeps the zero-cost fast path and the result is
// bit-identical either way.
func ColorChordalObserved(g *graph.Graph, eps float64, o dist.RoundObserver) (*ChordalColoring, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("epsilon must be positive, got %v", eps)
	}
	k := EffectiveK(eps)
	po, _ := o.(peel.KernelObserver)
	res, err := peel.Run(g, peel.Options{InternalDiameter: 3 * k, NoForests: true, Observer: po})
	if err != nil {
		return nil, fmt.Errorf("pruning phase: %w", err)
	}
	return colorLayers(g, k, res, nil, o)
}

// colorLayers runs the coloring and color-correction phases over a peel
// result. rounds, when non-nil, accumulates the LOCAL round cost of the
// coloring and correction phases. o, when it implements
// dist.KernelObserver, receives the per-path coloring stage as a
// "color-paths" kernel span.
func colorLayers(g *graph.Graph, k int, peeled *peel.Result, rounds *int, o dist.RoundObserver) (*ChordalColoring, error) {
	out := &ChordalColoring{
		Colors: make(map[graph.ID]int, g.NumNodes()),
		K:      k,
		Layers: len(peeled.Layers),
	}
	omega, err := chordal.CliqueNumberIndexed(graph.NewIndexed(g))
	if err != nil {
		return nil, err
	}
	out.Omega = omega
	out.Palette = (k+1)*omega/k + 1
	idBound := 1
	for _, v := range g.Nodes() {
		if int(v) >= idBound {
			idBound = int(v) + 1
		}
	}

	// Coloring phase: every peeled path is an interval graph, colored
	// independently by ColIntGraph. Paths run concurrently in the LOCAL
	// model; we charge the maximum cost. Each path's coloring is a pure
	// function of (g, rec, k, idBound), so the paths shard over workers
	// with per-path result slots merged in path order — bit-identical to
	// the sequential loop for every worker count, including which error
	// surfaces first.
	type pathRef struct {
		layerIndex int
		rec        *peel.PathRecord
	}
	var refs []pathRef
	for li := range peeled.Layers {
		layer := &peeled.Layers[li]
		for pi := range layer.Paths {
			refs = append(refs, pathRef{layer.Index, &layer.Paths[pi]})
		}
	}
	type colorSlot struct {
		ic  *IntervalColoring
		err error
	}
	slots := make([]colorSlot, len(refs))
	runStageShards("color-paths", len(refs), resolveStageWorkers(0, len(refs)), o, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sub := g.InducedSubgraph(refs[i].rec.Nodes)
			ic, err := ColIntGraph(sub, peel.LayerCliquePath(*refs[i].rec), k, idBound)
			slots[i] = colorSlot{ic: ic, err: err}
		}
	})
	maxColorRounds := 0
	for i := range slots {
		if slots[i].err != nil {
			return nil, fmt.Errorf("coloring layer %d: %w", refs[i].layerIndex, slots[i].err)
		}
		for v, c := range slots[i].ic.Colors {
			out.Colors[v] = c
		}
		if slots[i].ic.Rounds > maxColorRounds {
			maxColorRounds = slots[i].ic.Rounds
		}
	}
	if rounds != nil {
		*rounds += maxColorRounds
	}
	out.Provisional = make(map[graph.ID]int, len(out.Colors))
	for v, c := range out.Colors {
		out.Provisional[v] = c
	}

	// Color correction phase (Algorithm 1 step 3): top layer keeps its
	// colors; lower layers recolor a radius-(k+3) zone around their
	// higher-layer neighbors via the Lemma-10 engine.
	layerOf := peeled.NodeLayers()
	for i := len(peeled.Layers) - 2; i >= 0; i-- {
		layer := peeled.Layers[i]
		for _, rec := range layer.Paths {
			if err := correctPath(g, rec, layer.Index, layerOf, k, out); err != nil {
				return nil, fmt.Errorf("correcting layer %d: %w", layer.Index, err)
			}
		}
	}

	used := make(map[int]bool)
	for _, c := range out.Colors {
		used[c] = true
	}
	out.ColorsUsed = len(used)
	return out, nil
}

// correctPath resolves the conflicts of one peeled path against its
// higher-layer neighborhood W′ (Lemma 10): W′ and the far interior of W
// stay fixed, the zone within distance k+3 of W′ is recolored with the
// global palette.
func correctPath(g *graph.Graph, rec peel.PathRecord, layerIndex int, layerOf map[graph.ID]int, k int, out *ChordalColoring) error {
	inW := make(map[graph.ID]bool, len(rec.Nodes))
	for _, v := range rec.Nodes {
		inW[v] = true
	}
	var wPrime graph.Set
	seen := make(map[graph.ID]bool)
	for _, v := range rec.Nodes {
		for _, u := range g.Neighbors(v) {
			if !inW[u] && !seen[u] && layerOf[u] > layerIndex {
				seen[u] = true
				wPrime = append(wPrime, u)
			}
		}
	}
	if len(wPrime) == 0 {
		return nil
	}
	wPrime = graph.NewSet(wPrime...)

	stripNodes := graph.NewSet(append(rec.Nodes.Clone(), wPrime...)...)
	strip := g.InducedSubgraph(stripNodes)
	// The strip's clique path per Lemma 8: the peeled path flanked by its
	// attachment cliques, restricted to the strip's nodes.
	full := make([]graph.Set, 0, len(rec.Cliques)+2)
	if rec.AttachStart != nil {
		full = append(full, rec.AttachStart)
	}
	full = append(full, rec.Cliques...)
	if rec.AttachEnd != nil {
		full = append(full, rec.AttachEnd)
	}
	keep := make(map[graph.ID]bool, len(stripNodes))
	for _, v := range stripNodes {
		keep[v] = true
	}
	stripPath := interval.RestrictCliquePath(full, func(v graph.ID) bool { return keep[v] })

	zone := RecolorZone(strip, wPrime, k+3)
	inZone := make(map[graph.ID]bool)
	for _, v := range zone {
		if inW[v] {
			inZone[v] = true
		}
	}
	if len(inZone) == 0 {
		return nil
	}
	fixed := make(map[graph.ID]int, len(stripNodes))
	for _, v := range stripNodes {
		if !inZone[v] {
			fixed[v] = out.Colors[v]
		}
	}
	colors, err := ExtendColoring(strip, stripPath, fixed, out.Palette)
	if err != nil {
		return err
	}
	for v := range inZone {
		out.Colors[v] = colors[v]
	}
	return nil
}
