package core

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/view"
)

// This file is the pruning phase's decide kernel: given one iteration's
// flooded knowledge, every undecided center decides from its local view
// alone whether its subtree lies on a peelable path. The kernel is
// deterministic and parallel — centers are sharded over workers in
// snapshot-index order, each worker reuses one decideScratch for every
// center it processes, and results are merged in index order with
// first-error-wins semantics, so the outcome is bit-identical to
// running the centers one at a time.
//
// The per-center machinery is the Section 3 lazy clique-forest view
// that used to live in prune_dist.go, rebuilt on slice-backed,
// epoch-stamped scratch state over a CSR ball (view.Ball) instead of
// per-center map-backed graphs. Decisions are unchanged: local clique
// ids are assigned in ensure order (independent of the shared cache's
// intern numbering), forest adjacency is kept sorted by local id
// exactly as the old sort of map keys produced, and the BFS facts the
// rules consume — center distances, anchored diameters, induced-
// subgraph independence numbers — are order-independent.

// DefaultDecideWorkers is the process-wide default worker count for the
// decide kernel when PruneSpec.DecideWorkers is zero; zero means
// GOMAXPROCS. Command-line front ends set it from -decide-workers.
var DefaultDecideWorkers int

// resolveDecideWorkers turns a PruneSpec.DecideWorkers value into an
// actual worker count.
func resolveDecideWorkers(specWorkers int) int {
	w := specWorkers
	if w <= 0 {
		w = DefaultDecideWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// shardCount mirrors the engine's shard arithmetic (dist.Engine.step):
// contiguous chunks of ceil(n/workers), so the work partition — and
// therefore the per-shard observer events — is a deterministic function
// of (n, workers).
func shardCount(n, workers int) int {
	if n == 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	chunk := (n + workers - 1) / workers
	return (n + chunk - 1) / chunk
}

// runShards partitions [0, n) into shardCount(n, workers) contiguous
// ranges and runs body on each, bracketing every shard with the
// observer's ShardStart/ShardEnd hooks (the same contract as the
// engine's pooled schedule: distinct shard indices may run
// concurrently, each on exactly one goroutine). ko, when non-nil,
// additionally receives the per-shard kernel-span brackets with
// items = range width (callers pass the observer's KernelObserver side
// so the assertion happens once per launch, outside the shard loop).
// workers <= 1 runs on the calling goroutine. The kernel never reads
// the wall clock — the observer stamps the hooks itself, exactly as
// with engine rounds.
func runShards(n, workers int, o dist.RoundObserver, ko dist.KernelObserver, body func(shard, lo, hi int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if o != nil {
			o.ShardStart(0)
		}
		if ko != nil {
			ko.KernelShardStart(0)
		}
		body(0, 0, n)
		if ko != nil {
			ko.KernelShardEnd(0, n)
		}
		if o != nil {
			o.ShardEnd(0)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			if o != nil {
				o.ShardStart(shard)
			}
			if ko != nil {
				ko.KernelShardStart(shard)
			}
			body(shard, lo, hi)
			if ko != nil {
				ko.KernelShardEnd(shard, hi-lo)
			}
			if o != nil {
				o.ShardEnd(shard)
			}
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
}

// cliqueCache shares the per-node Section 3 computations — φ(u), the
// maximal cliques containing u, and T(u), the MWSF of W_G restricted to
// φ(u) (Lemma 2) — across all centers of one pruning iteration. Both
// depend only on G_i[Γ[u]] (MaximalCliquesContaining computes from the
// closed neighborhood; the forest restriction is a function of φ(u)
// alone), and every center whose ball trusts u sees exactly that
// neighborhood, so computing them once on G_i is bit-for-bit equivalent
// to recomputing them inside each ball. Cliques are interned to integer
// ids so per-center views dedup by id instead of hashing members; each
// interned clique also carries its member list in snapshot-index space
// (memberIdx) so the kernel's ball lookups are plain array reads.
//
// Concurrency: prepopulate computes every undecided node's view in a
// deterministic two-phase pass (parallel pure compute, then sequential
// interning in node order), after which the cache is read-only — the
// parallel decide stage shares it without locks. The lazy node path
// remains only for the private per-ball caches the radius < 2 fallback
// builds, which are single-goroutine by construction.
type cliqueCache struct {
	gi        *graph.Graph
	ix        *graph.Indexed // the index space memberIdx lives in
	idx       map[string]int
	sets      []graph.Set // by interned id
	memberIdx [][]int32   // by interned id, aligned with sets
	views     map[graph.ID]*nodeCliques
}

// nodeCliques is one node's cached share: φ(u) in canonical order, the
// interned id of each clique, T(u) as index pairs into phi, and the
// computation error, if any — recorded rather than raised so the
// parallel pre-populate reports failures at exactly the center walk
// that would have tripped over them in the sequential lazy path.
type nodeCliques struct {
	phi   []graph.Set
	ids   []int
	edges [][2]int
	err   error
}

//chordalvet:coldpath cache construction, once per iteration or on the rare private fallback
func newCliqueCache(gi *graph.Graph, ix *graph.Indexed) *cliqueCache {
	return &cliqueCache{
		gi:    gi,
		ix:    ix,
		idx:   make(map[string]int),
		views: make(map[graph.ID]*nodeCliques),
	}
}

func (cc *cliqueCache) intern(c graph.Set) int {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	key := string(b)
	if i, ok := cc.idx[key]; ok {
		return i
	}
	i := len(cc.idx)
	cc.idx[key] = i
	cc.sets = append(cc.sets, c)
	mi := make([]int32, len(c))
	for j, v := range c {
		r, _ := cc.ix.IndexOf(v)
		mi[j] = int32(r)
	}
	cc.memberIdx = append(cc.memberIdx, mi)
	return i
}

// computeNode is the pure part of a node's view: no cache mutation, so
// prepopulate runs it concurrently.
//
//chordalvet:coldpath clique-view computation is amortized once per node; hot centers hit the prepopulated cache
func (cc *cliqueCache) computeNode(u graph.ID) *nodeCliques {
	phi, err := cliquetree.MaximalCliquesContaining(cc.gi, u)
	if err != nil {
		return &nodeCliques{err: err}
	}
	return &nodeCliques{
		phi:   phi,
		edges: cliquetree.MaxWeightSpanningForest(phi, cliquetree.WCIG(phi)),
	}
}

//chordalvet:coldpath clique interning runs once per node at cache fill, not per center
func (cc *cliqueCache) internNode(nv *nodeCliques) {
	nv.ids = make([]int, len(nv.phi))
	for i, c := range nv.phi {
		nv.ids[i] = cc.intern(c)
	}
}

// prepopulate fills the cache for every given node: phase one computes
// the views in parallel (each is a pure function of gi), phase two
// interns cliques sequentially in node order so ids are deterministic.
// After prepopulate the cache is read-only and safe to share across
// decide workers.
func (cc *cliqueCache) prepopulate(nodes []graph.ID, workers int) {
	// The parallel phase reads gi through Graph.Neighbors, whose sorted-
	// adjacency cache fills lazily; warm it sequentially first so the
	// concurrent readers never write it.
	for _, u := range nodes {
		cc.gi.Neighbors(u)
	}
	computed := make([]*nodeCliques, len(nodes))
	runShards(len(nodes), workers, nil, nil, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			computed[i] = cc.computeNode(nodes[i])
		}
	})
	for i, u := range nodes {
		nv := computed[i]
		if nv.err == nil {
			cc.internNode(nv)
		}
		cc.views[u] = nv
	}
}

// node returns u's cached view, computing it on demand on the private-
// cache fallback path. A recorded error surfaces here, at the first
// center walk that needs the failed node — the same attribution the
// sequential lazy computation produced.
func (cc *cliqueCache) node(u graph.ID) (*nodeCliques, error) {
	if nv, ok := cc.views[u]; ok {
		if nv.err != nil {
			return nil, nv.err
		}
		return nv, nil
	}
	nv := cc.computeNode(u)
	if nv.err != nil {
		return nil, nv.err
	}
	cc.internNode(nv)
	cc.views[u] = nv
	return nv, nil
}

// decideScratch is one worker's reusable state for deciding centers: a
// view.Scratch (private CSR ball + BFS storage) plus the slice-backed
// lazy clique-forest view. All per-center maps of the old
// implementation are replaced by epoch-stamped arrays, so starting the
// next center is a counter increment, not a reallocation.
type decideScratch struct {
	view.Scratch

	// Per-center context, set by beginCenter.
	cache   *cliqueCache
	ball    *view.Ball
	horizon int
	epoch   int32

	// localOf maps a cache clique id to its local id for the current
	// center (valid when localMark holds the epoch). Local ids are
	// assigned densely in ensure order — the quantity every walk
	// comparison and sort key actually uses, which is why the cache's
	// intern numbering never leaks into decisions.
	localOf   []int32
	localMark []int32
	// ensMark marks already-ensured nodes by snapshot index.
	ensMark []int32

	// Per-local-id state, truncated per center and regrown by addClique.
	cliqueIDs []int32   // local id -> cache clique id
	adjRows   [][]int32 // local id -> forest neighbors, sorted by local id
	inWalked  []int32   // walk membership, == epoch (includes consumed ends)
	inDiam    []int32   // walkedDiameter membership, == epoch (walked only)

	// Per-ball-row marks (epoch-stamped) and small reusable buffers.
	memMark    []int32 // member dedup by row
	anchorMark []int32 // anchor BFS dedup by row
	phiBuf     []int32 // ensureNode's φ(u) -> local id mapping
	own        []int32
	walked     []int32
	ends       []int32
	memRows    []int32
}

// beginCenter resets the scratch for a new center over the given ball.
func (sc *decideScratch) beginCenter(cache *cliqueCache, ball *view.Ball, horizon int) {
	sc.cache = cache
	sc.ball = ball
	sc.horizon = horizon
	if sc.epoch == math.MaxInt32 {
		for i := range sc.localMark {
			sc.localMark[i] = 0
		}
		for i := range sc.ensMark {
			sc.ensMark[i] = 0
		}
		for i := range sc.inWalked {
			sc.inWalked[i] = 0
		}
		for i := range sc.inDiam {
			sc.inDiam[i] = 0
		}
		for i := range sc.memMark {
			sc.memMark[i] = 0
		}
		for i := range sc.anchorMark {
			sc.anchorMark[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	sc.cliqueIDs = sc.cliqueIDs[:0]
	sc.own = sc.own[:0]
	sc.walked = sc.walked[:0]
	if n := len(cache.ix.IDs()); len(sc.ensMark) < n {
		sc.ensMark = growMarks(sc.ensMark, n)
	}
	if nr := ball.NumRows(); len(sc.memMark) < nr {
		sc.memMark = growMarks(sc.memMark, nr)
		sc.anchorMark = growMarks(sc.anchorMark, nr)
	}
}

// growMarks grows an epoch-stamped mark array; fresh entries are zero,
// which no live epoch ever equals.
func growMarks(a []int32, n int) []int32 {
	na := make([]int32, n)
	copy(na, a)
	return na
}

// addClique assigns (or returns) the local id of an interned clique.
func (sc *decideScratch) addClique(cacheID int) int32 {
	if cacheID >= len(sc.localOf) {
		sc.localOf = append(sc.localOf, make([]int32, cacheID+1-len(sc.localOf))...)
		sc.localMark = growMarks(sc.localMark, cacheID+1)
	}
	if sc.localMark[cacheID] == sc.epoch {
		return sc.localOf[cacheID]
	}
	i := int32(len(sc.cliqueIDs))
	sc.localMark[cacheID] = sc.epoch
	sc.localOf[cacheID] = i
	sc.cliqueIDs = append(sc.cliqueIDs, int32(cacheID))
	if int(i) < len(sc.adjRows) {
		sc.adjRows[i] = sc.adjRows[i][:0]
	} else {
		sc.adjRows = append(sc.adjRows, make([]int32, 0, 4))
	}
	if int(i) >= len(sc.inWalked) {
		sc.inWalked = append(sc.inWalked, 0)
		sc.inDiam = append(sc.inDiam, 0)
	}
	return i
}

// insertNb inserts b into a's sorted forest-neighbor row, ignoring
// duplicates — the slice equivalent of the old adjacency-set insert,
// with the sort the old neighbors() accessor performed paid once here.
func (sc *decideScratch) insertNb(a, b int32) {
	row := sc.adjRows[a]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == b {
		return
	}
	row = append(row, 0)
	copy(row[lo+1:], row[lo:])
	row[lo] = b
	sc.adjRows[a] = row
}

func (sc *decideScratch) degree(i int32) int { return len(sc.adjRows[i]) }

// trusted reports whether every member of the clique with local id i is
// far enough from the knowledge horizon that its neighborhood (and
// hence the clique's full forest adjacency) is known exactly. A member
// outside the ball or unreachable from the center is untrusted, exactly
// as the old BFS-distance map miss was.
func (sc *decideScratch) trusted(i int32) bool {
	for _, uIdx := range sc.cache.memberIdx[sc.cliqueIDs[i]] {
		r := sc.ball.RowOf(uIdx)
		if r < 0 {
			return false
		}
		d := sc.DistC[r]
		if d < 0 || int(d) > sc.horizon-3 {
			return false
		}
	}
	return true
}

// ensureNode merges φ(u) and the edges of T(u) (Lemma 2) into the view.
// Only valid for nodes within the trusted zone.
func (sc *decideScratch) ensureNode(u graph.ID, uIdx int32) error {
	if sc.ensMark[uIdx] == sc.epoch {
		return nil
	}
	sc.ensMark[uIdx] = sc.epoch
	nc, err := sc.cache.node(u)
	if err != nil {
		return err
	}
	sc.phiBuf = sc.phiBuf[:0]
	for _, cid := range nc.ids {
		sc.phiBuf = append(sc.phiBuf, sc.addClique(cid))
	}
	for _, e := range nc.edges {
		a, b := sc.phiBuf[e[0]], sc.phiBuf[e[1]]
		sc.insertNb(a, b)
		sc.insertNb(b, a)
	}
	return nil
}

// ensureClique expands T(u) for every member of the clique with local
// id i, making its forest adjacency exact (requires trusted(i)).
func (sc *decideScratch) ensureClique(i int32) error {
	cid := sc.cliqueIDs[i]
	set := sc.cache.sets[cid]
	mi := sc.cache.memberIdx[cid]
	for j, u := range set {
		if err := sc.ensureNode(u, mi[j]); err != nil {
			return err
		}
	}
	return nil
}

// pathEnds returns the (at most two) cliques of the own-path with fewer
// than two neighbors inside it; for a single clique it returns it
// twice. The center's own cliques hold local ids 0..len(own)-1 (they
// are the first ensure), so own-membership is an id comparison, and the
// ascending scan yields the ends already sorted.
func (sc *decideScratch) pathEnds() []int32 {
	own := sc.own
	sc.ends = sc.ends[:0]
	if len(own) == 1 {
		sc.ends = append(sc.ends, own[0], own[0])
		return sc.ends
	}
	m := int32(len(own))
	for _, ci := range own {
		inside := 0
		for _, nb := range sc.adjRows[ci] {
			if nb < m {
				inside++
			}
		}
		if inside <= 1 {
			sc.ends = append(sc.ends, ci)
		}
	}
	return sc.ends
}

// walkDirection extends the walked path from one end through binary
// trusted cliques, marking everything it visits (including the
// terminating frontier or branch clique, consumed so the other
// direction's walk skips it). It returns the end state (0 leaf,
// 1 branch, 2 frontier) and the branch clique's local id (-1 if none).
func (sc *decideScratch) walkDirection(start int32) (int, int32, error) {
	cur := start
	for {
		next := int32(-1)
		for _, nb := range sc.adjRows[cur] {
			if sc.inWalked[nb] != sc.epoch {
				next = nb
				break
			}
		}
		if next == -1 {
			return 0, -1, nil // leaf end
		}
		if !sc.trusted(next) {
			sc.inWalked[next] = sc.epoch
			return 2, -1, nil // frontier
		}
		if err := sc.ensureClique(next); err != nil {
			return 0, -1, err
		}
		if sc.degree(next) > 2 {
			sc.inWalked[next] = sc.epoch
			return 1, next, nil // branch vertex
		}
		sc.walked = append(sc.walked, next)
		sc.inWalked[next] = sc.epoch
		cur = next
	}
}

// memberRows collects the deduplicated ball rows of the members of the
// given cliques. Walked cliques are trusted, so every member is in the
// ball; the r < 0 skip mirrors the old InducedSubgraph's silent drop of
// absent nodes all the same.
func (sc *decideScratch) memberRows(cliques []int32) []int32 {
	sc.memRows = sc.memRows[:0]
	for _, ci := range cliques {
		for _, uIdx := range sc.cache.memberIdx[sc.cliqueIDs[ci]] {
			r := sc.ball.RowOf(uIdx)
			if r < 0 || sc.memMark[r] == sc.epoch {
				continue
			}
			sc.memMark[r] = sc.epoch
			sc.memRows = append(sc.memRows, r)
		}
	}
	return sc.memRows
}

// walkedDiameter computes the anchored diameter of the walked path: the
// maximum ball distance from a member of the two extreme cliques to any
// walked node. For pairs below the 3k threshold, ball distances equal
// true distances (shortest paths fit inside the 10k ball). Membership
// is rebuilt from the walked slice alone — the walk's inWalked marks
// also hold consumed frontier/branch cliques, which are not part of the
// path being measured.
func (sc *decideScratch) walkedDiameter() int {
	members := sc.memberRows(sc.walked)
	for _, ci := range sc.walked {
		sc.inDiam[ci] = sc.epoch
	}
	best := 0
	for _, ci := range sc.walked {
		inside := 0
		for _, nb := range sc.adjRows[ci] {
			if sc.inDiam[nb] == sc.epoch {
				inside++
			}
		}
		if inside > 1 {
			continue
		}
		// Extreme clique: BFS from each member (deduplicated across
		// cliques — the max over repeated anchors cannot change it).
		for _, uIdx := range sc.cache.memberIdx[sc.cliqueIDs[ci]] {
			r := sc.ball.RowOf(uIdx)
			if r < 0 || sc.anchorMark[r] == sc.epoch {
				continue
			}
			sc.anchorMark[r] = sc.epoch
			sc.AnchorBFS(sc.ball, r)
			for _, mr := range members {
				if d := int(sc.DistA[mr]); d > best {
					best = d
				}
			}
		}
	}
	return best
}

// decideCenter determines, purely from the center's G_i-restricted ball
// view, whether it is peeled in the current iteration under the given
// rule, and if so returns its parent (-1 = ⊥). ball must contain the
// center at snapshot index vIdx; ids is the cache index space's
// index -> ID table.
func decideCenter(sc *decideScratch, cache *cliqueCache, ball *view.Ball, ids []graph.ID, v graph.ID, vIdx int32, rule decideRule, radius int) (bool, graph.ID, error) {
	sc.beginCenter(cache, ball, radius)
	sc.CenterBFS(ball, ball.RowOf(vIdx))
	if err := sc.ensureNode(v, vIdx); err != nil {
		return false, -1, err
	}
	// The center's ensure ran first, so φ(v) occupies local ids
	// 0..len-1 in canonical order: exactly the old phi[v] snapshot.
	for i := int32(0); i < int32(len(sc.cliqueIDs)); i++ {
		sc.own = append(sc.own, i)
	}
	own := sc.own
	// Every clique containing v sits within Γ[v]; ensure their members
	// so degrees of φ(v) are exact, and require them all binary.
	for _, ci := range own {
		if !sc.trusted(ci) {
			// Cannot happen for radius ≥ 4; be conservative.
			return false, -1, nil
		}
		if err := sc.ensureClique(ci); err != nil {
			return false, -1, err
		}
	}
	for _, ci := range own {
		if sc.degree(ci) > 2 {
			return false, -1, nil
		}
	}

	// φ(v) induces a path in the forest; walk outward from its ends.
	sc.walked = append(sc.walked, own...)
	for _, ci := range sc.walked {
		sc.inWalked[ci] = sc.epoch
	}
	// endState: 0 leaf, 1 branch (deg>=3), 2 frontier (untrusted).
	var ends [2]int
	attach := [2]int32{-1, -1} // branch clique local id per end
	endIdx := 0
	for _, start := range sc.pathEnds() {
		state, att, err := sc.walkDirection(start)
		if err != nil {
			return false, -1, err
		}
		ends[endIdx] = state
		attach[endIdx] = att
		endIdx++
		if endIdx == 2 {
			break
		}
	}

	peelMe := false
	if ends[0] == 0 || ends[1] == 0 {
		peelMe = true // pendant path
	} else if rule.alphaThreshold > 0 {
		// Algorithm 6's last iteration: peel internal paths whose
		// independence number reaches the threshold. The walked portion
		// suffices: paths cut at the frontier span enough distance that
		// their α already exceeds the threshold, and fully visible
		// paths are measured exactly.
		rows := sc.memberRows(sc.walked)
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		alpha, err := chordal.IndependenceNumber(ball.InducedGraph(ids, rows))
		if err != nil {
			return false, -1, err
		}
		peelMe = alpha >= rule.alphaThreshold
	} else {
		// Internal (or frontier-extended) path: peel iff anchored
		// diameter reaches the threshold within the walked portion.
		if sc.walkedDiameter() >= rule.diamThreshold {
			peelMe = true
		}
	}
	if !peelMe {
		return false, -1, nil
	}

	// Parent (Definition 1): the closest attachment clique within k+3,
	// distances read off the center BFS already in DistC.
	parent := graph.ID(-1)
	bestDist := 1 << 30
	for e := 0; e < 2; e++ {
		if attach[e] < 0 {
			continue
		}
		cid := sc.cliqueIDs[attach[e]]
		d := 1 << 30
		for _, uIdx := range cache.memberIdx[cid] {
			if r := ball.RowOf(uIdx); r >= 0 {
				if dd := int(sc.DistC[r]); dd >= 0 && dd < d {
					d = dd
				}
			}
		}
		if d <= rule.parentHorizon && d < bestDist {
			bestDist = d
			set := cache.sets[cid]
			parent = set[len(set)-1] // max ID in sorted set
		}
	}
	return true, parent, nil
}

// decideOne decides a single center, choosing its view: the iteration-
// shared G_i ball when the center's knowledge provably covers its
// component, an index-space rebuild of its own ball otherwise, or — on
// the radius < 2 fallback, where the cache sharing argument does not
// apply — a private map-built ball graph with a private cache, exactly
// the old per-center construction.
func decideOne(sc *decideScratch, cache *cliqueCache, sharedBall *view.Ball, ix *graph.Indexed, know *dist.Knowledge, undecidedIdx []bool, undecided func(graph.ID) bool, v graph.ID, vIdx int32, rule decideRule, radius int) (bool, graph.ID, error) {
	if cache != nil && know.IndexReady() {
		if know.CoversComponent() {
			// The ball provably covers v's entire component, so the
			// shared remaining-graph view IS the component's share of
			// G_i (other components stay invisible: they are
			// unreachable in the center BFS, hence untrusted).
			return decideCenter(sc, cache, sharedBall, ix.IDs(), v, vIdx, rule, radius)
		}
		sc.Priv.BuildFromSource(know, ix.NumNodes(), radius, undecidedIdx)
		return decideCenter(sc, cache, &sc.Priv, ix.IDs(), v, vIdx, rule, radius)
	}
	ballGi := know.FilteredBallGraph(radius, undecided)
	bix := graph.NewIndexed(ballGi)
	priv := newCliqueCache(ballGi, bix)
	sc.Priv.BuildFromIndexed(bix, nil)
	localIdx, _ := bix.IndexOf(v)
	return decideCenter(sc, priv, &sc.Priv, bix.IDs(), v, int32(localIdx), rule, radius)
}

// decideResult is one shard's per-center output slot.
type decideResult struct {
	peel   bool
	parent graph.ID
}

// runDecideStage runs the decide kernel for one pruning iteration:
// centers (snapshot indices of the undecided nodes, ascending) are
// sharded over workers, decided concurrently, and merged in index
// order. The returned results are aligned with centers; a non-nil error
// is the error of the earliest-index failing center and means no result
// should be applied — matching the sequential loop, which stopped at
// its first error without mutating anything.
//
// The observer (may be nil) sees the stage as a synthetic single-round
// engine run under the caller's current phase label: RunStart,
// RoundStart(0, shards), the per-shard Start/End brackets from the
// workers, then RoundEnd with Done = the number of centers peeled, and
// RunEnd — or no RoundEnd/RunEnd on error, like a failed engine run.
// An observer implementing dist.KernelObserver additionally sees the
// stage as one "decide" kernel span with per-shard busy/item counts
// (the span closes even on error, so partial launches stay visible).
//
//chordalvet:hotpath budget=33 decide kernel: per-center work must stay on scratch reuse
func runDecideStage(ix *graph.Indexed, know []*dist.Knowledge, cache *cliqueCache, sharedBall *view.Ball, scratches []*decideScratch, centers []int32, undecidedIdx []bool, undecided func(graph.ID) bool, rule decideRule, radius, workers int, o dist.RoundObserver, results []decideResult) ([]decideResult, error) {
	n := len(centers)
	shards := shardCount(n, workers)
	if cap(results) < n {
		results = make([]decideResult, n)
	}
	results = results[:n]
	errPos := make([]int, shards)
	errs := make([]error, shards)
	ids := ix.IDs()
	ko, _ := o.(dist.KernelObserver)
	if o != nil {
		o.RunStart(n, 0)
		o.RoundStart(0, shards)
	}
	if ko != nil {
		ko.KernelStart("decide", shards)
	}
	runShards(n, workers, o, ko, func(shard, lo, hi int) {
		sc := scratches[shard]
		for pos := lo; pos < hi; pos++ {
			vIdx := centers[pos]
			v := ids[vIdx]
			peel, parent, err := decideOne(sc, cache, sharedBall, ix, know[vIdx], undecidedIdx, undecided, v, vIdx, rule, radius)
			if err != nil {
				errPos[shard] = pos
				errs[shard] = err
				return
			}
			results[pos] = decideResult{peel: peel, parent: parent}
		}
	})
	if ko != nil {
		ko.KernelEnd()
	}
	// First-error-wins in center index order: shards cover ascending
	// disjoint ranges, so the first shard with an error holds the
	// earliest failing center.
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			return results, &decideError{pos: errPos[s], node: ids[centers[errPos[s]]], err: errs[s]}
		}
	}
	if o != nil {
		done := 0
		for i := range results {
			if results[i].peel {
				done++
			}
		}
		o.RoundEnd(dist.RoundStats{Round: 0, Nodes: n, Shards: shards, Done: done})
		o.RunEnd(0)
	}
	return results, nil
}

// decideError carries the failing center so the caller can reproduce
// the sequential loop's "iteration %d node %d" wrapping.
type decideError struct {
	pos  int
	node graph.ID
	err  error
}

func (e *decideError) Error() string { return e.err.Error() }
func (e *decideError) Unwrap() error { return e.err }
