package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/peel"
)

// withStageWorkers runs fn with the process-wide stage worker defaults
// (core.DefaultStageWorkers and peel.DefaultWorkers, the pair the CLIs'
// -workers flag sets) temporarily forced to w.
func withStageWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	oldStage, oldPeel := DefaultStageWorkers, peel.DefaultWorkers
	DefaultStageWorkers = w
	peel.DefaultWorkers = w
	defer func() {
		DefaultStageWorkers = oldStage
		peel.DefaultWorkers = oldPeel
	}()
	fn()
}

// stageWorkerSweep mirrors decideWorkerSweep for the pure-compute
// pipeline stages: sequential, minimal parallelism, full parallelism.
func stageWorkerSweep() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// absorbablePlan is an E20-style fault schedule the pipelines must
// absorb byte-identically: duplication and delay perturb the message
// schedule without corrupting it.
func absorbablePlan() *dist.Faults {
	return &dist.Faults{Plan: fault.Plan{Seed: 21, Dup: 0.3, MaxDelay: 2}}
}

// TestColoringPipelineDeterministicAcrossStageWorkers runs the full
// distributed coloring pipeline — peeling, per-path coloring, correction
// choreography — under every stage worker count, fault-free and under an
// absorbable fault plan, and requires byte-identical colorings: same
// layers, same provisional and final colors, same round counts.
func TestColoringPipelineDeterministicAcrossStageWorkers(t *testing.T) {
	g := gen.RandomChordal(220, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 33)
	for _, f := range []*dist.Faults{nil, absorbablePlan()} {
		var ref *ChordalColoring
		for _, w := range stageWorkerSweep() {
			var col *ChordalColoring
			var err error
			withStageWorkers(t, w, func() {
				col, err = ColorChordalDistributedFaulty(g, 0.5, nil, nil, f)
			})
			if err != nil {
				t.Fatalf("faults=%v workers=%d: %v", f != nil, w, err)
			}
			if ref == nil {
				ref = col
				continue
			}
			if col.Rounds != ref.Rounds || col.ColorsUsed != ref.ColorsUsed ||
				col.Layers != ref.Layers || col.Omega != ref.Omega {
				t.Fatalf("faults=%v workers=%d: (rounds=%d colors=%d layers=%d omega=%d), want (%d,%d,%d,%d)",
					f != nil, w, col.Rounds, col.ColorsUsed, col.Layers, col.Omega,
					ref.Rounds, ref.ColorsUsed, ref.Layers, ref.Omega)
			}
			if !reflect.DeepEqual(col.Colors, ref.Colors) {
				t.Fatalf("faults=%v workers=%d: final colors differ from workers=1", f != nil, w)
			}
			if !reflect.DeepEqual(col.Provisional, ref.Provisional) {
				t.Fatalf("faults=%v workers=%d: provisional colors differ from workers=1", f != nil, w)
			}
		}
	}
}

// TestMISPipelineDeterministicAcrossStageWorkers is the MIS counterpart:
// the distributed Algorithm 6 pipeline must return the identical
// independent set (membership, not just size) for every stage worker
// count, fault-free and under the absorbable plan.
func TestMISPipelineDeterministicAcrossStageWorkers(t *testing.T) {
	g := gen.RandomChordal(200, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 35)
	for _, f := range []*dist.Faults{nil, absorbablePlan()} {
		var ref *ChordalMISResult
		for _, w := range stageWorkerSweep() {
			var res *ChordalMISResult
			var err error
			withStageWorkers(t, w, func() {
				res, err = MISChordalDistributedFaulty(g, 0.5, nil, nil, f)
			})
			if err != nil {
				t.Fatalf("faults=%v workers=%d: %v", f != nil, w, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Rounds != ref.Rounds || res.Iterations != ref.Iterations ||
				res.ExactComponents != ref.ExactComponents || res.ApproxComponents != ref.ApproxComponents {
				t.Fatalf("faults=%v workers=%d: (rounds=%d iters=%d exact=%d approx=%d), want (%d,%d,%d,%d)",
					f != nil, w, res.Rounds, res.Iterations, res.ExactComponents, res.ApproxComponents,
					ref.Rounds, ref.Iterations, ref.ExactComponents, ref.ApproxComponents)
			}
			if !reflect.DeepEqual(res.Set, ref.Set) {
				t.Fatalf("faults=%v workers=%d: MIS membership differs from workers=1", f != nil, w)
			}
		}
	}
}

// TestCorrectionPhaseDeterministicAcrossStageWorkers isolates the
// correction choreography: its shared-slab setup (child groups, gate
// sets) is built by sharded stage workers, and the measured asynchronous
// schedule must not depend on the worker count — with or without the
// absorbable fault plan.
func TestCorrectionPhaseDeterministicAcrossStageWorkers(t *testing.T) {
	g := gen.RandomChordal(180, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 37)
	out, err := DistributedPrune(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	col, err := ColorChordal(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*dist.Faults{nil, absorbablePlan()} {
		refRounds := -1
		for _, w := range stageWorkerSweep() {
			var rounds int
			withStageWorkers(t, w, func() {
				rounds, err = RunCorrectionPhaseFaulty(g, out.Layer, out.Parent, col.Colors, 3, nil, f)
			})
			if err != nil {
				t.Fatalf("faults=%v workers=%d: %v", f != nil, w, err)
			}
			if refRounds < 0 {
				refRounds = rounds
				continue
			}
			if rounds != refRounds {
				t.Fatalf("faults=%v workers=%d: %d correction rounds, want %d", f != nil, w, rounds, refRounds)
			}
		}
	}
}

// TestStagePipelinesRaceStress drives both full pipelines at GOMAXPROCS
// stage workers on a larger graph; under -race this is the data-race
// gate for the sharded stage code paths (peeling measurement, per-path
// coloring, correction setup, MIS components).
func TestStagePipelinesRaceStress(t *testing.T) {
	g := gen.RandomChordal(400, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.5}, 39)
	withStageWorkers(t, runtime.GOMAXPROCS(0), func() {
		col, err := ColorChordalDistributed(g, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if col.ColorsUsed > col.Palette {
			t.Fatalf("coloring uses %d colors, palette %d", col.ColorsUsed, col.Palette)
		}
		res, err := MISChordalDistributed(g, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Set) == 0 {
			t.Fatal("empty MIS")
		}
		seen := make(map[graph.ID]bool, len(res.Set))
		for _, v := range res.Set {
			seen[v] = true
		}
		for _, v := range res.Set {
			for _, u := range g.Neighbors(v) {
				if seen[u] {
					t.Fatalf("MIS contains adjacent pair %d-%d", v, u)
				}
			}
		}
	})
}
