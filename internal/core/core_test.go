package core

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/verify"
)

func TestExtendColoringGreedy(t *testing.T) {
	// No fixed colors: behaves like optimal left-endpoint greedy.
	for seed := int64(0); seed < 6; seed++ {
		ivs := gen.RandomIntervals(40, 12, 3, seed)
		g := gen.FromIntervals(ivs)
		path := interval.CliquePathFromModel(ivs)
		omega, _ := chordal.CliqueNumber(g)
		colors, err := ExtendColoring(g, path, nil, omega)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		used, err := verify.Coloring(g, colors)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if used > omega {
			t.Fatalf("seed %d: used %d > ω = %d", seed, used, omega)
		}
	}
}

func TestExtendColoringRespectsFixed(t *testing.T) {
	// Path 0-1-2-3-4 with ends fixed to color 1: odd positions need a
	// second color, middle gets recolored consistently.
	g := gen.Path(5)
	path := []graph.Set{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	fixed := map[graph.ID]int{0: 1, 4: 1}
	colors, err := ExtendColoring(g, path, fixed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if colors[0] != 1 || colors[4] != 1 {
		t.Fatal("fixed colors changed")
	}
	if _, err := verify.Coloring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestExtendColoringNeedsBacktracking(t *testing.T) {
	// Path 0-1-2-3, palette 2, only node 3 fixed to color 1. Plain greedy
	// (smallest-first) paints 0→1, 1→2, 2→1 and collides with the fixed
	// node; the backtracking must recover with 0→2, 1→1, 2→2.
	g := gen.Path(4)
	path := []graph.Set{{0, 1}, {1, 2}, {2, 3}}
	colors, err := ExtendColoring(g, path, map[graph.ID]int{3: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Coloring(g, colors); err != nil {
		t.Fatal(err)
	}
	if colors[3] != 1 {
		t.Fatal("fixed color changed")
	}
	// Same strip with both parities pinned incompatibly is infeasible.
	if _, err := ExtendColoring(g, path, map[graph.ID]int{0: 2, 3: 2}, 2); err == nil {
		t.Fatal("expected infeasibility: 0=2 and 3=2 cannot coexist with 2 colors")
	}
}

func TestExtendColoringInfeasible(t *testing.T) {
	// Triangle with palette 2 is infeasible.
	g := gen.Complete(3)
	path := []graph.Set{{0, 1, 2}}
	if _, err := ExtendColoring(g, path, nil, 2); err == nil {
		t.Fatal("expected infeasibility error")
	}
	// Conflicting fixed colors are rejected.
	g2 := gen.Path(2)
	if _, err := ExtendColoring(g2, []graph.Set{{0, 1}}, map[graph.ID]int{0: 1, 1: 1}, 3); err == nil {
		t.Fatal("expected fixed-conflict error")
	}
	// Fixed color outside palette is rejected.
	if _, err := ExtendColoring(g2, []graph.Set{{0, 1}}, map[graph.ID]int{0: 5}, 3); err == nil {
		t.Fatal("expected out-of-palette error")
	}
}

func TestRecolorZone(t *testing.T) {
	g := gen.Path(10)
	zone := RecolorZone(g, graph.Set{0}, 3)
	if !zone.Equal(graph.NewSet(1, 2, 3)) {
		t.Fatalf("zone = %v, want {1,2,3}", zone)
	}
	// Boundary nodes themselves are excluded.
	if z := RecolorZone(g, graph.Set{5}, 0); len(z) != 0 {
		t.Fatalf("radius 0 should give empty zone, got %v", z)
	}
}

func TestColIntGraphQuality(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ivs := gen.RandomIntervals(120, 40, 4, seed)
		g := gen.FromIntervals(ivs)
		path := interval.CliquePathFromModel(ivs)
		omega, _ := chordal.CliqueNumber(g)
		for _, k := range []int{3, 5, 10} {
			ic, err := ColIntGraph(g, path, k, 200)
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			used, err := verify.Coloring(g, ic.Colors)
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			bound := (k+1)*omega/k + 1
			if used > bound {
				t.Fatalf("seed %d k %d: used %d colors > bound %d (ω=%d)", seed, k, used, bound, omega)
			}
		}
	}
}

func TestColIntGraphLongThinStrip(t *testing.T) {
	// A long path graph forces many blocks.
	g := gen.Path(400)
	var path []graph.Set
	for i := 0; i+1 < 400; i++ {
		path = append(path, graph.NewSet(graph.ID(i), graph.ID(i+1)))
	}
	ic, err := ColIntGraph(g, path, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Coloring(g, ic.Colors); err != nil {
		t.Fatal(err)
	}
	if ic.Blocks < 2 {
		t.Fatalf("expected multiple blocks on a long strip, got %d", ic.Blocks)
	}
	if ic.ColorsUsed > 3 {
		t.Fatalf("path colored with %d colors, bound 3", ic.ColorsUsed)
	}
}

func TestColIntGraphEmpty(t *testing.T) {
	ic, err := ColIntGraph(graph.New(), nil, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ic.Colors) != 0 {
		t.Fatal("empty graph should give empty coloring")
	}
}

func TestColorChordalQuality(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 6, AttachFull: 0.5}, seed)
		omega, _ := chordal.CliqueNumber(g)
		for _, eps := range []float64{1, 0.5, 0.25} {
			cc, err := ColorChordal(g, eps)
			if err != nil {
				t.Fatalf("seed %d eps %v: %v", seed, eps, err)
			}
			used, err := verify.Coloring(g, cc.Colors)
			if err != nil {
				t.Fatalf("seed %d eps %v: %v", seed, eps, err)
			}
			if used > cc.Palette {
				t.Fatalf("seed %d eps %v: used %d > palette %d (ω=%d)", seed, eps, used, cc.Palette, omega)
			}
			// Theorem 3: for ε ≥ 2/χ the bound is (1+ε)χ.
			if eps >= 2/float64(omega) {
				if float64(used) > (1+eps)*float64(omega)+1e-9 {
					t.Fatalf("seed %d eps %v: used %d > (1+ε)χ = %v", seed, eps, used, (1+eps)*float64(omega))
				}
			}
		}
	}
}

func TestColorChordalOnTrees(t *testing.T) {
	// Trees are chordal with χ=2; the +1 slack allows 3 colors.
	g := gen.Tree(200, 5)
	cc, err := ColorChordal(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(g, cc.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > 3 {
		t.Fatalf("tree colored with %d colors", used)
	}
}

func TestColorChordalErrors(t *testing.T) {
	if _, err := ColorChordal(gen.Cycle(5), 0.5); err == nil {
		t.Fatal("expected error on non-chordal input")
	}
	if _, err := ColorChordal(gen.Path(5), 0); err == nil {
		t.Fatal("expected error on eps = 0")
	}
}

func TestDistributedPruneMatchesCentralized(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		if _, err := ColorChordalDistributed(g, 0.7); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestColorChordalDistributedQuality(t *testing.T) {
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.5}, 11)
	cc, err := ColorChordalDistributed(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	used, err := verify.Coloring(g, cc.Colors)
	if err != nil {
		t.Fatal(err)
	}
	if used > cc.Palette {
		t.Fatalf("used %d > palette %d", used, cc.Palette)
	}
	if cc.Rounds <= 0 {
		t.Fatal("distributed run must report rounds")
	}
}

func TestMISIntervalQuality(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ivs := gen.RandomIntervals(150, 60, 3, seed)
		g := gen.FromIntervals(ivs)
		alpha, _ := chordal.IndependenceNumber(g)
		for _, eps := range []float64{1, 0.5, 0.25} {
			res, err := MISInterval(g, eps, 200)
			if err != nil {
				t.Fatalf("seed %d eps %v: %v", seed, eps, err)
			}
			if err := verify.IndependentSet(g, res.Set); err != nil {
				t.Fatalf("seed %d eps %v: %v", seed, eps, err)
			}
			if float64(alpha) > (1+eps)*float64(len(res.Set))+1e-9 {
				t.Fatalf("seed %d eps %v: |I| = %d, α = %d, ratio %v > 1+ε",
					seed, eps, len(res.Set), alpha, float64(alpha)/float64(len(res.Set)))
			}
		}
	}
}

func TestMISIntervalOnLongPath(t *testing.T) {
	g := gen.Path(500)
	alpha := 250
	res, err := MISInterval(g, 0.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IndependentSet(g, res.Set); err != nil {
		t.Fatal(err)
	}
	if float64(alpha) > 1.5*float64(len(res.Set)) {
		t.Fatalf("|I| = %d, α = %d", len(res.Set), alpha)
	}
}

func TestMISChordalQuality(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.4}, seed)
		alpha, _ := chordal.IndependenceNumber(g)
		for _, eps := range []float64{0.45, 0.25} {
			res, err := MISChordal(g, eps)
			if err != nil {
				t.Fatalf("seed %d eps %v: %v", seed, eps, err)
			}
			if err := verify.IndependentSet(g, res.Set); err != nil {
				t.Fatalf("seed %d eps %v: %v", seed, eps, err)
			}
			if float64(alpha) > (1+eps)*float64(len(res.Set))+1e-9 {
				t.Fatalf("seed %d eps %v: |I| = %d, α = %d", seed, eps, len(res.Set), alpha)
			}
		}
	}
}

func TestMISChordalErrors(t *testing.T) {
	if _, err := MISChordal(gen.Path(5), 0); err == nil {
		t.Fatal("expected error for eps = 0")
	}
	if _, err := MISChordal(gen.Path(5), 1); err == nil {
		t.Fatal("expected error for eps = 1")
	}
	if _, err := MISChordal(gen.Cycle(4), 0.3); err == nil {
		t.Fatal("expected error for non-chordal input")
	}
}

func TestAbsorbingMISIsMaximum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := gen.RandomInterval(30, 10, 2.5, seed)
		alpha, _ := chordal.IndependenceNumber(g)
		is := AbsorbingMIS(g, g, nil)
		if err := verify.IndependentSet(g, is); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(is) != alpha {
			t.Fatalf("seed %d: |IS| = %d, α = %d", seed, len(is), alpha)
		}
	}
}

func TestAbsorbingMISAbsorbs(t *testing.T) {
	// A path leaning on an anchor at its right end: the absorbing MIS
	// must cover the path so that α(Γ[IH]) = |IH| — taking far-first
	// simplicial vertices achieves it, e.g. on P4 anchored right, IS
	// {0,2} absorbs {0,1,2,3}... verify the defining equation.
	g := gen.Path(6) // 0..5
	anchorHost := g.Clone()
	anchorHost.AddEdge(5, 100)
	anchorHost.AddEdge(100, 101)
	anchor := graph.NewSet(100)
	ih := AbsorbingMIS(g, anchorHost, anchor)
	if len(ih) != 3 {
		t.Fatalf("|IH| = %d, want α(P6) = 3", len(ih))
	}
	// Absorption: α over Γ_host[IH] restricted to the path equals |IH|.
	var closed graph.Set
	for _, v := range ih {
		closed = append(closed, v)
		for _, u := range anchorHost.Neighbors(v) {
			if g.HasNode(u) {
				closed = append(closed, u)
			}
		}
	}
	closed = graph.NewSet(closed...)
	a, err := chordal.IndependenceNumber(g.InducedSubgraph(closed))
	if err != nil {
		t.Fatal(err)
	}
	if a != len(ih) {
		t.Fatalf("absorption violated: α(Γ[IH]) = %d, |IH| = %d", a, len(ih))
	}
	// Far-first ordering: node 0 (farthest from the anchor) must be in IH.
	if !ih.Contains(0) {
		t.Fatalf("far end not selected first: %v", ih)
	}
}
