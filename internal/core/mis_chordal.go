package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chordal"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/peel"
)

// ChordalMISResult is the outcome of the (1+ε)-approximate chordal MIS.
type ChordalMISResult struct {
	Set        graph.Set
	D          int
	Iterations int
	Rounds     int
	// ExactComponents / ApproxComponents count the two branches of
	// Algorithm 6's inner loop.
	ExactComponents  int
	ApproxComponents int
}

// MISChordalParams returns Algorithm 6's parameters d = ⌈64/ε⌉ and
// k = ⌈log(d/ε)⌉ + 2.
func MISChordalParams(eps float64) (d, iterations int) {
	d = int(math.Ceil(64 / eps))
	iterations = int(math.Ceil(math.Log2(float64(d)/eps))) + 2
	return d, iterations
}

// MISChordal implements Algorithm 6, the deterministic
// (1+ε)-approximation for Maximum Independent Set on chordal graphs
// (Theorems 7–8): the peeling process runs for Θ(log(1/ε)) iterations
// (with the last iteration peeling internal paths of independence number
// ≥ d), and each peeled path contributes either an absorbing maximum
// independent set (small components) or a (1+ε/8)-approximate set via the
// interval algorithm (large components).
func MISChordal(g *graph.Graph, eps float64) (*ChordalMISResult, error) {
	return MISChordalWithOptions(g, eps, ChordalMISOptions{})
}

// ChordalMISOptions toggles ablations of Algorithm 6's design choices.
type ChordalMISOptions struct {
	// DisableAbsorbing replaces the absorbing maximum independent sets of
	// small components with arbitrary maximum independent sets, ablating
	// the design choice Section 7.1 motivates (experiment E14/ablation).
	DisableAbsorbing bool
	// Observer, when it implements dist.KernelObserver (and the
	// structurally identical peel.KernelObserver), receives per-worker
	// kernel spans from the sharded stages: the peeling measurement and
	// the per-component MIS computation. nil keeps the zero-cost fast
	// path; the result is bit-identical either way.
	Observer dist.RoundObserver
}

// MISChordalWithOptions is MISChordal with ablation switches.
func MISChordalWithOptions(g *graph.Graph, eps float64, opts ChordalMISOptions) (*ChordalMISResult, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("epsilon must be in (0,1), got %v", eps)
	}
	d, iterations := MISChordalParams(eps)
	res := &ChordalMISResult{D: d, Iterations: iterations}
	po, _ := opts.Observer.(peel.KernelObserver)
	peeled, err := peel.Run(g, peel.Options{
		InternalDiameter: 2*d + 3,
		MaxIterations:    iterations,
		FinalAlpha:       d,
		NoForests:        true,
		Observer:         po,
	})
	if err != nil {
		return nil, fmt.Errorf("peeling: %w", err)
	}
	// LOCAL accounting: each iteration collects a Θ(d)-ball to identify
	// paths and thresholds.
	res.Rounds = len(peeled.Layers) * (2*d + 4)
	if err := misFromPeel(g, peeled, d, eps, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// MISChordalDistributed runs Algorithm 6 with the pruning phase executed
// by genuine per-node message passing and local views (the Theorem 8
// pipeline). Like ColorChordalDistributed, it self-checks the distributed
// layer partition against the centralized peel and fails loudly on
// divergence.
func MISChordalDistributed(g *graph.Graph, eps float64) (*ChordalMISResult, error) {
	return MISChordalDistributedObserved(g, eps, nil, nil)
}

// MISChordalDistributedObserved is MISChordalDistributed with
// observability hooks: o (may be nil) observes every pruning flood,
// phase-labeled per iteration, and peelTrace (may be nil) receives the
// centralized cross-check peel's per-layer events.
func MISChordalDistributedObserved(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent)) (*ChordalMISResult, error) {
	return MISChordalDistributedFaulty(g, eps, o, peelTrace, nil)
}

// MISChordalDistributedFaulty is MISChordalDistributedObserved with a
// fault schedule attached to every pruning flood. Duplication and delay
// are absorbed (the MIS is byte-identical to the fault-free run); drops
// corrupt the pruning layers and are caught by the centralized
// cross-check below, and crashes surface as engine errors.
func MISChordalDistributedFaulty(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults) (*ChordalMISResult, error) {
	return misChordalDistributed(g, eps, o, peelTrace, f, nil)
}

// MISChordalDistributedFaultyPart is MISChordalDistributedFaulty with
// the pruning floods executed on a partition (shard hosts that may live
// in other processes). The post-prune stages are centralized either way,
// so the MIS is byte-identical to the LOCAL run on the same seed.
func MISChordalDistributedFaultyPart(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults, part *dist.Partition) (*ChordalMISResult, error) {
	if part == nil {
		return nil, fmt.Errorf("partitioned MIS needs a partition")
	}
	return misChordalDistributed(g, eps, o, peelTrace, f, part)
}

func misChordalDistributed(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults, part *dist.Partition) (*ChordalMISResult, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("epsilon must be in (0,1), got %v", eps)
	}
	d, iterations := MISChordalParams(eps)
	spec := PruneSpec{
		DiamThreshold: 2*d + 3,
		Radius:        3*(2*d+3) + 2,
		MaxIterations: iterations,
		FinalAlpha:    d,
		Observer:      o,
		Faults:        f,
		Part:          part,
	}
	outcome, err := DistributedPruneSpec(g, spec)
	if err != nil {
		return nil, fmt.Errorf("distributed prune: %w", err)
	}
	po, _ := o.(peel.KernelObserver)
	peeled, err := peel.Run(g, peel.Options{
		InternalDiameter: 2*d + 3,
		MaxIterations:    iterations,
		FinalAlpha:       d,
		Trace:            peelTrace,
		NoForests:        true,
		Observer:         po,
	})
	if err != nil {
		return nil, err
	}
	central := peeled.NodeLayers()
	for v, l := range outcome.Layer {
		if central[v] != l {
			return nil, fmt.Errorf("distributed/centralized divergence: node %d in layer %d vs %d",
				v, l, central[v])
		}
	}
	for v := range central {
		if _, ok := outcome.Layer[v]; !ok {
			return nil, fmt.Errorf("distributed prune never decided node %d (centralized layer %d)",
				v, central[v])
		}
	}
	res := &ChordalMISResult{D: d, Iterations: iterations, Rounds: outcome.Rounds}
	if err := misFromPeel(g, peeled, d, eps, ChordalMISOptions{Observer: o}, res); err != nil {
		return nil, err
	}
	return res, nil
}

// misFromPeel runs Algorithm 6's per-layer independent-set computation
// over a peel result, accumulating into res. Per-record state lives in
// index-keyed slices over one CSR snapshot instead of map-backed induced
// subgraphs, and the per-component computations — pure functions of
// (g, h, rec) that never consult the cross-record blocked state — run
// sharded over workers with per-component result slots merged in
// component order, so the output is bit-identical to the sequential
// map-backed loop for every worker count.
func misFromPeel(g *graph.Graph, peeled *peel.Result, d int, eps float64, opts ChordalMISOptions, res *ChordalMISResult) error {
	idBound := 1
	for _, v := range g.Nodes() {
		if int(v) >= idBound {
			idBound = int(v) + 1
		}
	}
	ix := graph.NewIndexed(g)
	ids := ix.IDs()
	// Nodes excluded once a neighbor joins I (Γ_G[I] grows as we go).
	blocked := make([]bool, idBound)
	inAvail := make([]bool, ix.NumNodes())
	inComp := make([]bool, ix.NumNodes())
	var avail, queue []int32
	var comps [][]int32
	type compSlot struct {
		ih     graph.Set
		rounds int
		exact  bool
		err    error
	}
	var slots []compSlot
	maxComponentRounds := 0
	for li, layer := range peeled.Layers {
		last := li == len(peeled.Layers)-1
		for _, rec := range layer.Paths {
			avail = avail[:0]
			for _, v := range rec.Nodes {
				if int(v) < idBound && !blocked[v] {
					i, _ := ix.IndexOf(v)
					avail = append(avail, int32(i))
					inAvail[i] = true
				}
			}
			// Components of G[avail], discovered from ascending indices:
			// ordered by smallest member with sorted members, exactly as
			// Components() on the induced subgraph.
			comps = comps[:0]
			for _, start := range avail {
				if inComp[start] {
					continue
				}
				queue = queue[:0]
				queue = append(queue, start)
				inComp[start] = true
				for i := 0; i < len(queue); i++ {
					for _, u := range ix.NeighborIndices(int(queue[i])) {
						if inAvail[u] && !inComp[u] {
							inComp[u] = true
							queue = append(queue, u)
						}
					}
				}
				comp := make([]int32, len(queue))
				copy(comp, queue)
				sort.Slice(comp, func(a, b int) bool { return comp[a] < comp[b] })
				comps = append(comps, comp)
			}
			if cap(slots) < len(comps) {
				slots = make([]compSlot, len(comps))
			}
			slots = slots[:len(comps)]
			workers := resolveStageWorkers(0, len(comps))
			recLocal := rec
			runStageShards("mis-components", len(comps), workers, opts.Observer, func(lo, hi int) {
				for ci := lo; ci < hi; ci++ {
					comp := comps[ci]
					h := graph.New()
					for _, i := range comp {
						h.AddNode(ids[i])
					}
					for _, i := range comp {
						for _, j := range ix.NeighborIndices(int(i)) {
							// An available neighbor shares the component.
							if inAvail[j] && j > i {
								h.AddEdge(ids[i], ids[j])
							}
						}
					}
					ih, compRounds, exact, err := componentIS(g, h, recLocal, d, last, eps, idBound, opts)
					slots[ci] = compSlot{ih: ih, rounds: compRounds, exact: exact, err: err}
				}
			})
			for ci := range slots {
				slot := &slots[ci]
				if slot.err != nil {
					return fmt.Errorf("layer %d: %w", layer.Index, slot.err)
				}
				if slot.exact {
					res.ExactComponents++
				} else {
					res.ApproxComponents++
				}
				if slot.rounds > maxComponentRounds {
					maxComponentRounds = slot.rounds
				}
				for _, v := range slot.ih {
					res.Set = append(res.Set, v)
					blocked[v] = true
					g.ForEachNeighbor(v, func(u graph.ID) {
						blocked[u] = true
					})
				}
			}
			for _, i := range avail {
				inAvail[i] = false
				inComp[i] = false
			}
		}
	}
	res.Rounds += maxComponentRounds
	res.Set = graph.NewSet(res.Set...)
	return nil
}

// componentIS computes the independent set for one maximal connected
// subgraph H of a peeled path's available nodes.
func componentIS(g *graph.Graph, h *graph.Graph, rec peel.PathRecord, d int, last bool, eps float64, idBound int, opts ChordalMISOptions) (graph.Set, int, bool, error) {
	alpha, err := chordal.IndependenceNumber(h)
	if err != nil {
		return nil, 0, false, err
	}
	if alpha < d {
		// Small component: exact maximum independent set; before the last
		// iteration it must additionally be absorbing w.r.t. the outside
		// clique the component touches.
		var anchor graph.Set
		if !last && !opts.DisableAbsorbing {
			anchor = componentAnchor(g, h, rec)
		}
		ih := AbsorbingMIS(h, g, anchor)
		return ih, 2*(d-1) + 2, true, nil
	}
	im, err := MISInterval(h, eps/8, idBound)
	if err != nil {
		return nil, 0, false, err
	}
	return im.Set, im.Rounds, false, nil
}

// componentAnchor returns the attachment clique of the peeled path that
// the component touches (at most one when α(H) < d, as argued in
// Section 7.1), or nil. It walks adjacency via ForEachNeighbor, which
// reads g without populating its neighbor cache, keeping the per-record
// component stage safe to shard.
func componentAnchor(g *graph.Graph, h *graph.Graph, rec peel.PathRecord) graph.Set {
	touches := func(c graph.Set) bool {
		if c == nil {
			return false
		}
		found := false
		for _, v := range h.Nodes() {
			g.ForEachNeighbor(v, func(u graph.ID) {
				if !found && c.Contains(u) {
					found = true
				}
			})
			if found {
				return true
			}
		}
		return false
	}
	if touches(rec.AttachStart) {
		return rec.AttachStart
	}
	if touches(rec.AttachEnd) {
		return rec.AttachEnd
	}
	return nil
}

// AbsorbingMIS computes a maximum independent set of h that, when h leans
// on an outside clique anchor, absorbs its own closed neighborhood:
// simplicial vertices are taken furthest-from-anchor first (Section 7.1).
// Any simplicial vertex lies in some maximum independent set, so the
// greedy is exact regardless of order; the ordering provides the
// absorption property.
func AbsorbingMIS(h *graph.Graph, g *graph.Graph, anchor graph.Set) graph.Set {
	// Distances from the anchor measured in g restricted to h's nodes
	// plus the anchor clique, held in a slice keyed by position in the
	// sorted scope set (the region subgraph is never materialized; BFS
	// walks g's adjacency filtered to the scope). Unreached scope nodes
	// keep distance 0, matching the zero value the map-backed version
	// reported for them.
	var scope graph.Set
	var dist []int32
	if len(anchor) > 0 {
		scope = graph.NewSet(append(anchor.Clone(), h.Nodes()...)...)
		dist = make([]int32, len(scope))
		seen := make([]bool, len(scope))
		queue := make([]int32, 0, len(scope))
		for _, a := range anchor {
			if li, ok := scopeIndex(scope, a); ok && g.HasNode(a) && !seen[li] {
				seen[li] = true
				queue = append(queue, int32(li))
			}
		}
		for head := 0; head < len(queue); head++ {
			li := queue[head]
			g.ForEachNeighbor(scope[li], func(u graph.ID) {
				if uj, ok := scopeIndex(scope, u); ok && !seen[uj] {
					seen[uj] = true
					dist[uj] = dist[li] + 1
					queue = append(queue, int32(uj))
				}
			})
		}
	}
	distOf := func(v graph.ID) int32 {
		if dist == nil {
			return 0
		}
		if li, ok := scopeIndex(scope, v); ok {
			return dist[li]
		}
		return 0
	}
	work := h.Clone()
	var out graph.Set
	for work.NumNodes() > 0 {
		// The furthest-first, smallest-ID-on-ties pick: scanning the
		// sorted node list with a strict > keeps the smallest ID among
		// the maximum-distance simplicial vertices.
		best := graph.ID(0)
		var bestDist int32
		found := false
		for _, v := range work.Nodes() {
			if !chordal.IsSimplicial(work, v) {
				continue
			}
			if dv := distOf(v); !found || dv > bestDist {
				found = true
				best = v
				bestDist = dv
			}
		}
		out = append(out, best)
		for _, u := range work.Neighbors(best) {
			work.RemoveNode(u)
		}
		work.RemoveNode(best)
	}
	return graph.NewSet(out...)
}

// scopeIndex locates v in the sorted set by binary search.
func scopeIndex(scope graph.Set, v graph.ID) (int, bool) {
	i := sort.Search(len(scope), func(j int) bool { return scope[j] >= v })
	if i < len(scope) && scope[i] == v {
		return i, true
	}
	return 0, false
}
