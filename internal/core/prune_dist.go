package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/peel"
	"repro/internal/view"
)

// PruneOutcome is the result of the distributed pruning phase
// (Algorithm 3): the layer assignment, each node's parent for the color
// correction phase, and the LOCAL rounds consumed.
type PruneOutcome struct {
	Layer      map[graph.ID]int      // 1-based layer per node
	Parent     map[graph.ID]graph.ID // parent per Definition 1; absent = ⊥
	Rounds     int
	Iterations int
	// Messages and Volume (in NodeInfo records) measure the flooding
	// traffic of the whole pruning phase — LOCAL allows unbounded
	// messages; this is what the protocol actually used.
	Messages int
	Volume   int
}

// PruneSpec configures the distributed pruning phase. The zero value is
// invalid; use the constructors or fill every relevant field.
type PruneSpec struct {
	// DiamThreshold peels internal paths of anchored diameter at least
	// this value (Algorithm 2 uses 3k, Algorithm 6 uses 2d+3).
	DiamThreshold int
	// Radius is the per-iteration knowledge radius; it must comfortably
	// exceed DiamThreshold (Algorithm 2 uses 10k ≈ 3.3×) so that
	// threshold comparisons are exact within the ball.
	Radius int
	// MaxIterations truncates the process (Algorithm 6); 0 = until all
	// nodes are decided.
	MaxIterations int
	// FinalAlpha, when positive with MaxIterations > 0, switches the last
	// iteration's internal-path rule to "independence number ≥ FinalAlpha"
	// (Algorithm 6's last iteration).
	FinalAlpha int
	// Observer, when non-nil, is attached to every flooding engine run.
	// If it also implements dist.PhaseSetter, each iteration's flood is
	// labeled "prune-iNN" so traces resolve the phase structure.
	Observer dist.RoundObserver
	// Faults, when non-nil, attaches the fault schedule to every
	// flooding engine run. The plain flood tolerates duplication and
	// delay; dropped messages shrink balls and typically surface as a
	// Lemma-12 divergence in the callers' centralized cross-check.
	Faults *dist.Faults
	// DecideWorkers bounds the decide kernel's worker count: 0 falls
	// back to DefaultDecideWorkers (and then GOMAXPROCS), 1 forces the
	// sequential schedule. The decision outcome is bit-identical for
	// every value; only wall time changes.
	DecideWorkers int
	// Part, when non-nil, runs every flood on the partitioned runtime
	// (shards host index ranges; see dist.Coordinator) instead of the
	// in-process engine. Results are identical by construction — the
	// decide kernel and all other stages stay coordinator-side.
	Part *dist.Partition
}

// DistributedPrune runs the PruneTree subroutine of Algorithm 2 with
// parameter k: per iteration, nodes flood their distance-10k
// neighborhoods (genuine message passing, 10k rounds charged), undecided
// nodes rebuild their local view of the clique forest of the remaining
// graph, and each decides from that view alone whether its subtree lies
// on a peelable path (a pendant path, or a binary path of diameter ≥ 3k).
func DistributedPrune(g *graph.Graph, k int) (*PruneOutcome, error) {
	return DistributedPruneSpec(g, PruneSpec{DiamThreshold: 3 * k, Radius: 10 * k})
}

// DistributedPruneSpec runs the distributed pruning phase under an
// arbitrary rule set (Algorithm 2's or Algorithm 6's).
func DistributedPruneSpec(g *graph.Graph, spec PruneSpec) (*PruneOutcome, error) {
	if spec.Radius < spec.DiamThreshold*3 {
		return nil, fmt.Errorf("radius %d too small for threshold %d (need ≥ 3×)",
			spec.Radius, spec.DiamThreshold)
	}
	if spec.FinalAlpha > 0 && spec.Radius < 2*spec.FinalAlpha+16 {
		return nil, fmt.Errorf("radius %d too small for α-threshold %d", spec.Radius, spec.FinalAlpha)
	}
	out := &PruneOutcome{
		Layer:  make(map[graph.ID]int, g.NumNodes()),
		Parent: make(map[graph.ID]graph.ID),
	}
	// The communication graph never changes across iterations: snapshot it
	// once and reuse the snapshot for every flood.
	ix := graph.NewIndexed(g)
	nodes := ix.IDs()
	// Decide-kernel state reused across iterations: the undecided-set
	// views, the iteration-shared G_i ball, and one scratch per worker
	// shard (see decide.go).
	workers := resolveDecideWorkers(spec.DecideWorkers)
	// noteOf[i] is the flood annotation of the node at snapshot index i:
	// its layer once decided, nil while undecided. Maintained in place as
	// layers are assigned, so no per-iteration note map is ever built.
	noteOf := make([]any, ix.NumNodes())
	undecidedIdx := make([]bool, ix.NumNodes())
	centers := make([]int32, 0, ix.NumNodes())
	undecidedAll := make([]graph.ID, 0, ix.NumNodes())
	var sharedBall view.Ball
	var scratches []*decideScratch
	var results []decideResult
	for iteration := 1; len(out.Layer) < g.NumNodes(); iteration++ {
		if spec.MaxIterations > 0 && iteration > spec.MaxIterations {
			break
		}
		if iteration > g.NumNodes()+1 {
			return nil, fmt.Errorf("distributed prune did not terminate")
		}
		out.Iterations = iteration
		last := spec.MaxIterations > 0 && iteration == spec.MaxIterations
		if ps, ok := spec.Observer.(dist.PhaseSetter); ok {
			ps.SetPhase(fmt.Sprintf("prune-i%02d", iteration))
		}
		var know []*dist.Knowledge
		var stats *dist.Result
		var err error
		if spec.Part != nil {
			know, stats, err = dist.CollectBallsByIndexPart(spec.Part, ix, spec.Radius, noteOf, spec.Observer, spec.Faults)
		} else {
			know, stats, err = dist.CollectBallsByIndex(ix, spec.Radius, noteOf, spec.Observer, spec.Faults)
		}
		if err != nil {
			return nil, err
		}
		out.Rounds += stats.Rounds
		out.Messages += stats.Messages
		out.Volume += stats.Volume

		rule := decideRule{
			diamThreshold: spec.DiamThreshold,
			parentHorizon: spec.DiamThreshold/3 + 3,
		}
		if last && spec.FinalAlpha > 0 {
			rule.alphaThreshold = spec.FinalAlpha
		}
		undecided := func(u graph.ID) bool {
			_, done := out.Layer[u]
			return !done
		}
		centers = centers[:0]
		undecidedAll = undecidedAll[:0]
		for i, v := range nodes {
			if undecided(v) {
				undecidedIdx[i] = true
				centers = append(centers, int32(i))
				undecidedAll = append(undecidedAll, v)
			} else {
				undecidedIdx[i] = false
			}
		}
		// G_i, the global remaining graph, and the iteration-wide clique
		// cache over it. Each node still decides from its own ball alone;
		// the cache only shares the φ(u)/T(u) computations that every ball
		// trusting u performs identically (see cliqueCache). The cache is
		// pre-populated deterministically and the shared G_i ball built
		// up front, so the decide workers only ever read them.
		gi := g.InducedSubgraph(undecidedAll)
		var cache *cliqueCache
		if spec.Radius >= 2 {
			cache = newCliqueCache(gi, ix)
			cache.prepopulate(undecidedAll, workers)
			sharedBall.BuildFromIndexed(ix, undecidedIdx)
		}
		for s := shardCount(len(centers), workers); len(scratches) < s; {
			scratches = append(scratches, &decideScratch{})
		}
		if ps, ok := spec.Observer.(dist.PhaseSetter); ok {
			ps.SetPhase(fmt.Sprintf("decide-i%02d", iteration))
		}
		var derr error
		results, derr = runDecideStage(ix, know, cache, &sharedBall, scratches,
			centers, undecidedIdx, undecided, rule, spec.Radius, workers, spec.Observer, results)
		if derr != nil {
			de := derr.(*decideError)
			return nil, fmt.Errorf("iteration %d node %d: %w", iteration, de.node, de.err)
		}
		peeled := 0
		for i := range results {
			if results[i].peel {
				peeled++
			}
		}
		if peeled == 0 && !last {
			return nil, fmt.Errorf("iteration %d peeled nothing", iteration)
		}
		for pos, ci := range centers {
			if !results[pos].peel {
				continue
			}
			v := nodes[ci]
			out.Layer[v] = iteration
			noteOf[ci] = iteration
			if parent := results[pos].parent; parent >= 0 {
				out.Parent[v] = parent
			}
		}
	}
	return out, nil
}

// decideRule is the per-iteration peeling rule used by the decide
// kernel (decide.go).
type decideRule struct {
	diamThreshold  int
	alphaThreshold int // >0 switches internal paths to the α rule
	parentHorizon  int // parent adoption distance (k+3)
}

// ColorChordalDistributed runs the full distributed Algorithm 2: the
// genuinely message-passed pruning phase, then the coloring and color
// correction phases with LOCAL round accounting. As a built-in
// self-check it verifies that the distributed layer partition matches the
// centralized Algorithm 1 partition (Lemma 12) and fails loudly if not.
func ColorChordalDistributed(g *graph.Graph, eps float64) (*ChordalColoring, error) {
	return ColorChordalDistributedObserved(g, eps, nil, nil)
}

// ColorChordalDistributedObserved is ColorChordalDistributed with
// observability hooks: o (may be nil) is attached to every engine run —
// the pruning floods, phase-labeled per iteration, and the correction
// choreography, labeled "correction" — and peelTrace (may be nil)
// receives the centralized cross-check peel's per-layer events.
func ColorChordalDistributedObserved(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent)) (*ChordalColoring, error) {
	return ColorChordalDistributedFaulty(g, eps, o, peelTrace, nil)
}

// ColorChordalDistributedFaulty is ColorChordalDistributedObserved with
// a fault schedule attached to every engine run (the pruning floods and
// the correction choreography). Duplication and delay are absorbed — the
// coloring is byte-identical to the fault-free run — while drops and
// crashes surface as errors: the Lemma-12 cross-check against the
// centralized peel catches corrupted pruning, and the engine reports
// crashes directly.
func ColorChordalDistributedFaulty(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults) (*ChordalColoring, error) {
	return colorChordalDistributed(g, eps, o, peelTrace, f, nil)
}

// ColorChordalDistributedFaultyPart is ColorChordalDistributedFaulty
// with the message-passing phases (the pruning floods and the correction
// choreography) executed on a partition — shard hosts that may live in
// other processes. Everything else (decide kernel, centralized
// cross-check, coloring) stays in this process, and the result is
// byte-identical to the LOCAL run on the same seed by construction.
func ColorChordalDistributedFaultyPart(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults, part *dist.Partition) (*ChordalColoring, error) {
	if part == nil {
		return nil, fmt.Errorf("partitioned coloring needs a partition")
	}
	return colorChordalDistributed(g, eps, o, peelTrace, f, part)
}

func colorChordalDistributed(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults, part *dist.Partition) (*ChordalColoring, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("epsilon must be positive, got %v", eps)
	}
	k := EffectiveK(eps)
	outcome, err := DistributedPruneSpec(g, PruneSpec{DiamThreshold: 3 * k, Radius: 10 * k, Observer: o, Faults: f, Part: part})
	if err != nil {
		return nil, fmt.Errorf("distributed prune: %w", err)
	}
	po, _ := o.(peel.KernelObserver)
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 3 * k, Trace: peelTrace, NoForests: true, Observer: po})
	if err != nil {
		return nil, err
	}
	central := peeled.NodeLayers()
	for v, l := range outcome.Layer {
		if central[v] != l {
			return nil, fmt.Errorf("Lemma 12 violation: node %d in distributed layer %d, centralized layer %d",
				v, l, central[v])
		}
	}
	rounds := outcome.Rounds
	col, err := colorLayers(g, k, peeled, &rounds, o)
	if err != nil {
		return nil, err
	}
	// Correction-phase sanity: only nodes with parents may have been
	// recolored (they are the only ones that receive SetColor).
	for v, final := range col.Colors {
		if final != col.Provisional[v] {
			if _, ok := outcome.Parent[v]; !ok {
				return nil, fmt.Errorf("node %d recolored without a parent", v)
			}
		}
	}
	// Run the correction choreography with real messages and charge its
	// measured asynchronous schedule length.
	if ps, ok := o.(dist.PhaseSetter); ok {
		ps.SetPhase("correction")
	}
	var corrRounds int
	if part != nil {
		corrRounds, err = RunCorrectionPhasePart(part, g, outcome.Layer, outcome.Parent, col.Colors, k, o, f)
	} else {
		corrRounds, err = RunCorrectionPhaseFaulty(g, outcome.Layer, outcome.Parent, col.Colors, k, o, f)
	}
	if err != nil {
		return nil, err
	}
	col.Rounds = rounds + corrRounds
	return col, nil
}
