package core

import (
	"fmt"
	"sort"

	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/peel"
)

// PruneOutcome is the result of the distributed pruning phase
// (Algorithm 3): the layer assignment, each node's parent for the color
// correction phase, and the LOCAL rounds consumed.
type PruneOutcome struct {
	Layer      map[graph.ID]int      // 1-based layer per node
	Parent     map[graph.ID]graph.ID // parent per Definition 1; absent = ⊥
	Rounds     int
	Iterations int
	// Messages and Volume (in NodeInfo records) measure the flooding
	// traffic of the whole pruning phase — LOCAL allows unbounded
	// messages; this is what the protocol actually used.
	Messages int
	Volume   int
}

// PruneSpec configures the distributed pruning phase. The zero value is
// invalid; use the constructors or fill every relevant field.
type PruneSpec struct {
	// DiamThreshold peels internal paths of anchored diameter at least
	// this value (Algorithm 2 uses 3k, Algorithm 6 uses 2d+3).
	DiamThreshold int
	// Radius is the per-iteration knowledge radius; it must comfortably
	// exceed DiamThreshold (Algorithm 2 uses 10k ≈ 3.3×) so that
	// threshold comparisons are exact within the ball.
	Radius int
	// MaxIterations truncates the process (Algorithm 6); 0 = until all
	// nodes are decided.
	MaxIterations int
	// FinalAlpha, when positive with MaxIterations > 0, switches the last
	// iteration's internal-path rule to "independence number ≥ FinalAlpha"
	// (Algorithm 6's last iteration).
	FinalAlpha int
	// Observer, when non-nil, is attached to every flooding engine run.
	// If it also implements dist.PhaseSetter, each iteration's flood is
	// labeled "prune-iNN" so traces resolve the phase structure.
	Observer dist.RoundObserver
	// Faults, when non-nil, attaches the fault schedule to every
	// flooding engine run. The plain flood tolerates duplication and
	// delay; dropped messages shrink balls and typically surface as a
	// Lemma-12 divergence in the callers' centralized cross-check.
	Faults *dist.Faults
}

// DistributedPrune runs the PruneTree subroutine of Algorithm 2 with
// parameter k: per iteration, nodes flood their distance-10k
// neighborhoods (genuine message passing, 10k rounds charged), undecided
// nodes rebuild their local view of the clique forest of the remaining
// graph, and each decides from that view alone whether its subtree lies
// on a peelable path (a pendant path, or a binary path of diameter ≥ 3k).
func DistributedPrune(g *graph.Graph, k int) (*PruneOutcome, error) {
	return DistributedPruneSpec(g, PruneSpec{DiamThreshold: 3 * k, Radius: 10 * k})
}

// DistributedPruneSpec runs the distributed pruning phase under an
// arbitrary rule set (Algorithm 2's or Algorithm 6's).
func DistributedPruneSpec(g *graph.Graph, spec PruneSpec) (*PruneOutcome, error) {
	if spec.Radius < spec.DiamThreshold*3 {
		return nil, fmt.Errorf("radius %d too small for threshold %d (need ≥ 3×)",
			spec.Radius, spec.DiamThreshold)
	}
	if spec.FinalAlpha > 0 && spec.Radius < 2*spec.FinalAlpha+16 {
		return nil, fmt.Errorf("radius %d too small for α-threshold %d", spec.Radius, spec.FinalAlpha)
	}
	out := &PruneOutcome{
		Layer:  make(map[graph.ID]int, g.NumNodes()),
		Parent: make(map[graph.ID]graph.ID),
	}
	// The communication graph never changes across iterations: snapshot it
	// once and reuse the snapshot for every flood.
	ix := graph.NewIndexed(g)
	nodes := ix.IDs()
	for iteration := 1; len(out.Layer) < g.NumNodes(); iteration++ {
		if spec.MaxIterations > 0 && iteration > spec.MaxIterations {
			break
		}
		if iteration > g.NumNodes()+1 {
			return nil, fmt.Errorf("distributed prune did not terminate")
		}
		out.Iterations = iteration
		last := spec.MaxIterations > 0 && iteration == spec.MaxIterations
		notes := make(map[graph.ID]any, len(out.Layer))
		for v, l := range out.Layer {
			notes[v] = l
		}
		if ps, ok := spec.Observer.(dist.PhaseSetter); ok {
			ps.SetPhase(fmt.Sprintf("prune-i%02d", iteration))
		}
		know, stats, err := dist.CollectBallsIndexedFaulty(ix, spec.Radius, notes, spec.Observer, spec.Faults)
		if err != nil {
			return nil, err
		}
		out.Rounds += stats.Rounds
		out.Messages += stats.Messages
		out.Volume += stats.Volume

		rule := decideRule{
			diamThreshold: spec.DiamThreshold,
			parentHorizon: spec.DiamThreshold/3 + 3,
		}
		if last && spec.FinalAlpha > 0 {
			rule.alphaThreshold = spec.FinalAlpha
		}
		undecided := func(u graph.ID) bool {
			_, done := out.Layer[u]
			return !done
		}
		// G_i, the global remaining graph, and the iteration-wide clique
		// cache over it. Each node still decides from its own ball alone;
		// the cache only shares the φ(u)/T(u) computations that every ball
		// trusting u performs identically (see cliqueCache).
		var undecidedAll []graph.ID
		for _, v := range nodes {
			if undecided(v) {
				undecidedAll = append(undecidedAll, v)
			}
		}
		gi := g.InducedSubgraph(undecidedAll)
		var cache *cliqueCache
		if spec.Radius >= 2 {
			cache = newCliqueCache(gi)
		}
		decided := make(map[graph.ID]graph.ID) // node -> parent (or -1)
		for _, v := range nodes {
			if !undecided(v) {
				continue
			}
			// The node's local picture of G_i: its ball restricted to the
			// still-undecided nodes (each node learned the layers via the
			// flood notes). When the ball provably covers v's entire
			// component, that picture IS the component's share of G_i, so
			// the shared graph substitutes for a per-node copy.
			var ballGi *graph.Graph
			if cache != nil && know[v].CoversComponent() {
				ballGi = gi
			} else {
				ballGi = know[v].FilteredBallGraph(spec.Radius, undecided)
			}
			peelMe, parent, err := decideNodeRule(ballGi, v, rule, spec.Radius, cache)
			if err != nil {
				return nil, fmt.Errorf("iteration %d node %d: %w", iteration, v, err)
			}
			if peelMe {
				decided[v] = parent
			}
		}
		if len(decided) == 0 && !last {
			return nil, fmt.Errorf("iteration %d peeled nothing", iteration)
		}
		for v, parent := range decided {
			out.Layer[v] = iteration
			if parent >= 0 {
				out.Parent[v] = parent
			}
		}
	}
	return out, nil
}

// decideRule is the per-iteration peeling rule used by decideNodeRule.
type decideRule struct {
	diamThreshold  int
	alphaThreshold int // >0 switches internal paths to the α rule
	parentHorizon  int // parent adoption distance (k+3)
}

// cliqueCache shares the per-node Section 3 computations — φ(u), the
// maximal cliques containing u, and T(u), the MWSF of W_G restricted to
// φ(u) (Lemma 2) — across all centers of one pruning iteration. Both
// depend only on G_i[Γ[u]] (MaximalCliquesContaining computes from the
// closed neighborhood; the forest restriction is a function of φ(u)
// alone), and every center whose ball trusts u sees exactly that
// neighborhood, so computing them once on G_i is bit-for-bit equivalent
// to recomputing them inside each ball. Cliques are interned to integer
// ids so per-center views dedup by id instead of hashing members.
type cliqueCache struct {
	gi    *graph.Graph
	idx   map[string]int
	views map[graph.ID]*nodeCliques
}

// nodeCliques is one node's cached share: φ(u) in canonical order, the
// interned id of each clique, and T(u) as index pairs into phi.
type nodeCliques struct {
	phi   []graph.Set
	ids   []int
	edges [][2]int
}

func newCliqueCache(gi *graph.Graph) *cliqueCache {
	return &cliqueCache{
		gi:    gi,
		idx:   make(map[string]int),
		views: make(map[graph.ID]*nodeCliques),
	}
}

func (cc *cliqueCache) intern(c graph.Set) int {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	key := string(b)
	if i, ok := cc.idx[key]; ok {
		return i
	}
	i := len(cc.idx)
	cc.idx[key] = i
	return i
}

func (cc *cliqueCache) node(u graph.ID) (*nodeCliques, error) {
	if nv, ok := cc.views[u]; ok {
		return nv, nil
	}
	phi, err := cliquetree.MaximalCliquesContaining(cc.gi, u)
	if err != nil {
		return nil, err
	}
	nv := &nodeCliques{phi: phi, ids: make([]int, len(phi))}
	for i, c := range phi {
		nv.ids[i] = cc.intern(c)
	}
	nv.edges = cliquetree.MaxWeightSpanningForest(phi, cliquetree.WCIG(phi))
	cc.views[u] = nv
	return nv, nil
}

// lazyView incrementally reconstructs the clique forest of the ball graph
// around a center node, expanding T(u) only for the members of cliques the
// walk actually visits (Section 3 machinery, computed on demand). The
// φ(u)/T(u) building blocks come from the shared per-iteration cache;
// which cliques get merged, and in which local order, is still driven by
// this center's walk alone.
type lazyView struct {
	g       *graph.Graph
	cache   *cliqueCache
	distV   map[graph.ID]int
	horizon int

	localIdx map[int]int // cache clique id -> local index
	cliques  []graph.Set
	adj      map[int]map[int]bool
	ensured  map[graph.ID]bool
	phi      map[graph.ID][]int
}

func newLazyView(ballGi *graph.Graph, center graph.ID, horizon int, cache *cliqueCache) *lazyView {
	if cache == nil {
		// Horizon too small for the sharing argument: fall back to a
		// private cache over this center's own ball.
		cache = newCliqueCache(ballGi)
	}
	return &lazyView{
		g:        ballGi,
		cache:    cache,
		distV:    ballGi.BFSDistances(center),
		horizon:  horizon,
		localIdx: make(map[int]int),
		adj:      make(map[int]map[int]bool),
		ensured:  make(map[graph.ID]bool),
		phi:      make(map[graph.ID][]int),
	}
}

func (lv *lazyView) addClique(cacheID int, c graph.Set) int {
	if i, ok := lv.localIdx[cacheID]; ok {
		return i
	}
	i := len(lv.cliques)
	lv.localIdx[cacheID] = i
	lv.cliques = append(lv.cliques, c)
	lv.adj[i] = make(map[int]bool)
	for _, v := range c {
		lv.phi[v] = append(lv.phi[v], i)
	}
	return i
}

// trusted reports whether every member of clique i is far enough from the
// knowledge horizon that its neighborhood (and hence the clique's full
// forest adjacency) is known exactly.
func (lv *lazyView) trusted(i int) bool {
	for _, v := range lv.cliques[i] {
		d, ok := lv.distV[v]
		if !ok || d > lv.horizon-3 {
			return false
		}
	}
	return true
}

// ensureNode merges φ(u) and the edges of T(u) (Lemma 2) into the view.
// Only valid for nodes within the trusted zone.
func (lv *lazyView) ensureNode(u graph.ID) error {
	if lv.ensured[u] {
		return nil
	}
	lv.ensured[u] = true
	nc, err := lv.cache.node(u)
	if err != nil {
		return err
	}
	idx := make([]int, len(nc.phi))
	for i, c := range nc.phi {
		idx[i] = lv.addClique(nc.ids[i], c)
	}
	for _, e := range nc.edges {
		a, b := idx[e[0]], idx[e[1]]
		lv.adj[a][b] = true
		lv.adj[b][a] = true
	}
	return nil
}

// ensureClique expands T(u) for every member of clique i, making the
// clique's forest adjacency exact (requires trusted(i)).
func (lv *lazyView) ensureClique(i int) error {
	for _, u := range lv.cliques[i] {
		if err := lv.ensureNode(u); err != nil {
			return err
		}
	}
	return nil
}

func (lv *lazyView) degree(i int) int { return len(lv.adj[i]) }

func (lv *lazyView) neighbors(i int) []int {
	var out []int
	for j := range lv.adj[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// decideNodeRule determines, purely from v's G_i-restricted ball, whether
// v is peeled in the current iteration under the given rule, and if so
// returns its parent (-1 = ⊥).
func decideNodeRule(ballGi *graph.Graph, v graph.ID, rule decideRule, radius int, cache *cliqueCache) (bool, graph.ID, error) {
	lv := newLazyView(ballGi, v, radius, cache)
	if err := lv.ensureNode(v); err != nil {
		return false, -1, err
	}
	own := append([]int(nil), lv.phi[v]...)
	// Every clique containing v sits within Γ[v]; ensure their members so
	// degrees of φ(v) are exact, and require them all binary.
	for _, ci := range own {
		if !lv.trusted(ci) {
			// Cannot happen for radius ≥ 4; be conservative.
			return false, -1, nil
		}
		if err := lv.ensureClique(ci); err != nil {
			return false, -1, err
		}
	}
	for _, ci := range own {
		if lv.degree(ci) > 2 {
			return false, -1, nil
		}
	}

	// φ(v) induces a path in the forest; find its two ends.
	inOwn := make(map[int]bool, len(own))
	for _, ci := range own {
		inOwn[ci] = true
	}
	walked := append([]int(nil), own...)
	inWalked := make(map[int]bool, len(walked))
	for _, ci := range walked {
		inWalked[ci] = true
	}

	// endState: 0 leaf, 1 branch (deg>=3), 2 frontier (untrusted).
	var ends [2]int
	var attach [2]graph.Set // branch clique per end, nil otherwise
	endIdx := 0
	// Walk outward from each end of the own-path.
	for _, start := range pathEnds(lv, own) {
		state, att, extension, err := walkDirection(lv, start, inWalked)
		if err != nil {
			return false, -1, err
		}
		for _, ci := range extension {
			walked = append(walked, ci)
			inWalked[ci] = true
		}
		ends[endIdx] = state
		attach[endIdx] = att
		endIdx++
		if endIdx == 2 {
			break
		}
	}

	peelMe := false
	if ends[0] == 0 || ends[1] == 0 {
		peelMe = true // pendant path
	} else if rule.alphaThreshold > 0 {
		// Algorithm 6's last iteration: peel internal paths whose
		// independence number reaches the threshold. The walked portion
		// suffices: paths cut at the frontier span enough distance that
		// their α already exceeds the threshold, and fully visible paths
		// are measured exactly.
		members := make(map[graph.ID]bool)
		for _, ci := range walked {
			for _, u := range lv.cliques[ci] {
				members[u] = true
			}
		}
		ms := make([]graph.ID, 0, len(members))
		for u := range members {
			ms = append(ms, u)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		alpha, err := chordal.IndependenceNumber(lv.g.InducedSubgraph(ms))
		if err != nil {
			return false, -1, err
		}
		peelMe = alpha >= rule.alphaThreshold
	} else {
		// Internal (or frontier-extended) path: peel iff anchored
		// diameter reaches the threshold within the walked portion.
		if walkedDiameter(lv, walked) >= rule.diamThreshold {
			peelMe = true
		}
	}
	if !peelMe {
		return false, -1, nil
	}

	// Parent (Definition 1): the closest attachment clique within k+3.
	parent := graph.ID(-1)
	bestDist := 1 << 30
	for e := 0; e < 2; e++ {
		if attach[e] == nil {
			continue
		}
		d := distToSet(ballGi, v, attach[e])
		if d <= rule.parentHorizon && d < bestDist {
			bestDist = d
			parent = attach[e][len(attach[e])-1] // max ID in sorted set
		}
	}
	return true, parent, nil
}

// pathEnds returns the (at most two) cliques of the own-path with fewer
// than two neighbors inside it; for a single clique it returns it twice.
func pathEnds(lv *lazyView, own []int) []int {
	if len(own) == 1 {
		return []int{own[0], own[0]}
	}
	inOwn := make(map[int]bool, len(own))
	for _, ci := range own {
		inOwn[ci] = true
	}
	var ends []int
	for _, ci := range own {
		inside := 0
		for _, nb := range lv.neighbors(ci) {
			if inOwn[nb] {
				inside++
			}
		}
		if inside <= 1 {
			ends = append(ends, ci)
		}
	}
	sort.Ints(ends)
	return ends
}

// walkDirection extends the walked path from one end through binary
// trusted cliques. It returns the end state (0 leaf, 1 branch,
// 2 frontier), the branch clique if any, and the cliques added.
func walkDirection(lv *lazyView, start int, inWalked map[int]bool) (int, graph.Set, []int, error) {
	var added []int
	cur := start
	for {
		next := -1
		for _, nb := range lv.neighbors(cur) {
			if !inWalked[nb] && !contains(added, nb) {
				next = nb
				break
			}
		}
		if next == -1 {
			return 0, nil, added, nil // leaf end
		}
		if !lv.trusted(next) {
			inWalked[next] = true     // consume so the other walk skips it
			return 2, nil, added, nil // frontier
		}
		if err := lv.ensureClique(next); err != nil {
			return 0, nil, added, err
		}
		if lv.degree(next) > 2 {
			inWalked[next] = true                  // consume so the other walk skips it
			return 1, lv.cliques[next], added, nil // branch vertex
		}
		added = append(added, next)
		inWalked[next] = true
		cur = next
	}
}

func contains(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// walkedDiameter computes the anchored diameter of the walked path: the
// maximum ball-graph distance from a member of the two extreme cliques to
// any walked node. For pairs below the 3k threshold, ball distances equal
// true distances (shortest paths fit inside the 10k ball).
func walkedDiameter(lv *lazyView, walked []int) int {
	members := make(map[graph.ID]bool)
	for _, ci := range walked {
		for _, v := range lv.cliques[ci] {
			members[v] = true
		}
	}
	// Extreme cliques: those with ≤1 neighbor inside walked.
	inWalked := make(map[int]bool, len(walked))
	for _, ci := range walked {
		inWalked[ci] = true
	}
	var anchors []graph.ID
	for _, ci := range walked {
		inside := 0
		for _, nb := range lv.neighbors(ci) {
			if inWalked[nb] {
				inside++
			}
		}
		if inside <= 1 {
			anchors = append(anchors, lv.cliques[ci]...)
		}
	}
	best := 0
	for _, a := range anchors {
		for u, d := range lv.g.BFSDistances(a) {
			if members[u] && d > best {
				best = d
			}
		}
	}
	return best
}

func distToSet(g *graph.Graph, v graph.ID, set graph.Set) int {
	dist := g.BFSDistances(v)
	best := 1 << 30
	for _, u := range set {
		if d, ok := dist[u]; ok && d < best {
			best = d
		}
	}
	return best
}

// ColorChordalDistributed runs the full distributed Algorithm 2: the
// genuinely message-passed pruning phase, then the coloring and color
// correction phases with LOCAL round accounting. As a built-in
// self-check it verifies that the distributed layer partition matches the
// centralized Algorithm 1 partition (Lemma 12) and fails loudly if not.
func ColorChordalDistributed(g *graph.Graph, eps float64) (*ChordalColoring, error) {
	return ColorChordalDistributedObserved(g, eps, nil, nil)
}

// ColorChordalDistributedObserved is ColorChordalDistributed with
// observability hooks: o (may be nil) is attached to every engine run —
// the pruning floods, phase-labeled per iteration, and the correction
// choreography, labeled "correction" — and peelTrace (may be nil)
// receives the centralized cross-check peel's per-layer events.
func ColorChordalDistributedObserved(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent)) (*ChordalColoring, error) {
	return ColorChordalDistributedFaulty(g, eps, o, peelTrace, nil)
}

// ColorChordalDistributedFaulty is ColorChordalDistributedObserved with
// a fault schedule attached to every engine run (the pruning floods and
// the correction choreography). Duplication and delay are absorbed — the
// coloring is byte-identical to the fault-free run — while drops and
// crashes surface as errors: the Lemma-12 cross-check against the
// centralized peel catches corrupted pruning, and the engine reports
// crashes directly.
func ColorChordalDistributedFaulty(g *graph.Graph, eps float64, o dist.RoundObserver, peelTrace func(peel.LayerEvent), f *dist.Faults) (*ChordalColoring, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("epsilon must be positive, got %v", eps)
	}
	k := EffectiveK(eps)
	outcome, err := DistributedPruneSpec(g, PruneSpec{DiamThreshold: 3 * k, Radius: 10 * k, Observer: o, Faults: f})
	if err != nil {
		return nil, fmt.Errorf("distributed prune: %w", err)
	}
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 3 * k, Trace: peelTrace})
	if err != nil {
		return nil, err
	}
	central := peeled.NodeLayers()
	for v, l := range outcome.Layer {
		if central[v] != l {
			return nil, fmt.Errorf("Lemma 12 violation: node %d in distributed layer %d, centralized layer %d",
				v, l, central[v])
		}
	}
	rounds := outcome.Rounds
	col, err := colorLayers(g, k, peeled, &rounds)
	if err != nil {
		return nil, err
	}
	// Correction-phase sanity: only nodes with parents may have been
	// recolored (they are the only ones that receive SetColor).
	for v, final := range col.Colors {
		if final != col.Provisional[v] {
			if _, ok := outcome.Parent[v]; !ok {
				return nil, fmt.Errorf("node %d recolored without a parent", v)
			}
		}
	}
	// Run the correction choreography with real messages and charge its
	// measured asynchronous schedule length.
	if ps, ok := o.(dist.PhaseSetter); ok {
		ps.SetPhase("correction")
	}
	corrRounds, err := RunCorrectionPhaseFaulty(g, outcome.Layer, outcome.Parent, col.Colors, k, o, f)
	if err != nil {
		return nil, err
	}
	col.Rounds = rounds + corrRounds
	return col, nil
}
