package core

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/graph"
	"repro/internal/verify"
)

// spiderK4 builds the adversarial instance where absorption matters: a K4
// hub {100,101,102,103} with three arms attached through weight-3 sockets.
// Each arm is an even path whose head (adjacent to three hub nodes) has
// the smallest ID in the arm, so an arbitrary (min-ID-first) maximum
// independent set takes the head and blocks the hub, while the absorbing
// (furthest-first) choice leaves the hub free.
func spiderK4(armLen int) *graph.Graph {
	g := graph.New()
	hub := []graph.ID{100, 101, 102, 103}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(hub[i], hub[j])
		}
	}
	sockets := [][3]graph.ID{
		{100, 101, 102}, {100, 101, 103}, {100, 102, 103},
	}
	next := graph.ID(0)
	for arm := 0; arm < 3; arm++ {
		head := next
		next++
		for _, u := range sockets[arm] {
			g.AddEdge(head, u)
		}
		prev := head
		for i := 1; i < armLen; i++ {
			g.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return g
}

func TestAbsorbingAblationLosesNodes(t *testing.T) {
	g := spiderK4(6) // even arms: α = 3·3 + 1 = 10
	alpha, err := chordal.IndependenceNumber(g)
	if err != nil {
		t.Fatal(err)
	}
	if alpha != 10 {
		t.Fatalf("α = %d, want 10", alpha)
	}
	withAbsorb, err := MISChordal(g, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IndependentSet(g, withAbsorb.Set); err != nil {
		t.Fatal(err)
	}
	ablated, err := MISChordalWithOptions(g, 0.45, ChordalMISOptions{DisableAbsorbing: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.IndependentSet(g, ablated.Set); err != nil {
		t.Fatal(err)
	}
	if len(withAbsorb.Set) != alpha {
		t.Fatalf("absorbing run found %d, want α = %d", len(withAbsorb.Set), alpha)
	}
	if len(ablated.Set) >= len(withAbsorb.Set) {
		t.Fatalf("ablation should lose nodes: ablated %d vs absorbing %d",
			len(ablated.Set), len(withAbsorb.Set))
	}
}

func TestAbsorbingMISSkipsArmHead(t *testing.T) {
	// Directly on one arm: the absorbing MIS anchored at the hub must
	// exclude the head; the unanchored variant picks it.
	g := spiderK4(6)
	arm := g.InducedSubgraph([]graph.ID{0, 1, 2, 3, 4, 5})
	anchor := graph.NewSet(100, 101, 102)
	anchored := AbsorbingMIS(arm, g, anchor)
	if anchored.Contains(0) {
		t.Fatalf("anchored absorbing MIS picked the head: %v", anchored)
	}
	free := AbsorbingMIS(arm, g, nil)
	if !free.Contains(0) {
		t.Fatalf("unanchored variant should pick min-ID head: %v", free)
	}
	if len(anchored) != 3 || len(free) != 3 {
		t.Fatalf("both must be maximum (3): %d, %d", len(anchored), len(free))
	}
}
