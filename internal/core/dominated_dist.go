package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/graph"
)

// neighborList is the payload of the dominated-check protocol.
type neighborList []graph.ID

// PayloadSize implements dist.Sizer.
func (n neighborList) PayloadSize() int { return len(n) }

// dominatedProtocol is the genuinely distributed version of Algorithm 5's
// first step: in one exchange every node learns its neighbors' closed
// neighborhoods and decides locally whether some neighbor u satisfies
// Γ[u] ⊊ Γ[v] (then v is dominated and drops out).
type dominatedProtocol struct {
	closed    graph.Set
	dominated bool
	done      bool
}

func (p *dominatedProtocol) Init(ctx *dist.Context) {
	p.closed = graph.NewSet(append(append(graph.Set{}, ctx.Neighbors()...), ctx.ID())...)
	ctx.Broadcast(neighborList(p.closed))
}

func (p *dominatedProtocol) Round(ctx *dist.Context, inbox []dist.Message) {
	if p.done {
		return
	}
	for _, m := range inbox {
		other := graph.Set(m.Payload.(neighborList))
		if other.ProperSubsetOf(p.closed) {
			p.dominated = true
		}
	}
	p.done = true
}

func (p *dominatedProtocol) Done() bool  { return p.done }
func (p *dominatedProtocol) Output() any { return p.dominated }

// DistributedDominated runs the dominated-vertex check as a LOCAL
// protocol and returns the dominated set plus the rounds used (1 exchange
// after the initial broadcast).
func DistributedDominated(g *graph.Graph) (graph.Set, int, error) {
	eng := dist.NewEngine(g, func(graph.ID) dist.Protocol { return &dominatedProtocol{} })
	res, err := eng.Run(3)
	if err != nil {
		return nil, 0, fmt.Errorf("dominated check: %w", err)
	}
	var out graph.Set
	for v, o := range res.Outputs {
		if o.(bool) {
			out = append(out, v)
		}
	}
	return graph.NewSet(out...), res.Rounds, nil
}
