package core

import (
	"runtime"
	"sync"

	"repro/internal/dist"
)

// DefaultStageWorkers is the process-wide default worker count for the
// pure-compute stages of the centralized pipeline (per-component MIS
// work, per-path coloring, correction-phase node setup): 0 picks
// GOMAXPROCS, 1 runs sequentially. Stages write into deterministic
// per-item result slots, so every worker count produces bit-identical
// output. The CLIs expose it as -workers.
var DefaultStageWorkers int

func resolveStageWorkers(specWorkers, tasks int) int {
	w := specWorkers
	if w == 0 {
		w = DefaultStageWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runStageShards splits [0, n) into contiguous chunks, one per worker,
// and runs body on each. body must only write state owned by its range.
//
// When o implements dist.KernelObserver the launch is reported as one
// named kernel span — KernelStart/KernelEnd around the launch, with
// each worker's range bracketed by KernelShardStart/KernelShardEnd
// (items = range width) from its own goroutine. The chunking is
// identical with and without an observer, so observability never
// changes the schedule, and the stage itself never reads the wall
// clock — the observer stamps the hooks, as everywhere else.
func runStageShards(kernel string, n, workers int, o dist.RoundObserver, body func(lo, hi int)) {
	if n == 0 {
		return
	}
	ko, _ := o.(dist.KernelObserver)
	if workers <= 1 {
		if ko != nil {
			ko.KernelStart(kernel, 1)
			ko.KernelShardStart(0)
		}
		body(0, n)
		if ko != nil {
			ko.KernelShardEnd(0, n)
			ko.KernelEnd()
		}
		return
	}
	chunk := (n + workers - 1) / workers
	if ko != nil {
		ko.KernelStart(kernel, (n+chunk-1)/chunk)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if ko != nil {
				ko.KernelShardStart(w)
			}
			body(lo, hi)
			if ko != nil {
				ko.KernelShardEnd(w, hi-lo)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if ko != nil {
		ko.KernelEnd()
	}
}
