package core

import (
	"runtime"
	"sync"
)

// DefaultStageWorkers is the process-wide default worker count for the
// pure-compute stages of the centralized pipeline (per-component MIS
// work, per-path coloring, correction-phase node setup): 0 picks
// GOMAXPROCS, 1 runs sequentially. Stages write into deterministic
// per-item result slots, so every worker count produces bit-identical
// output. The CLIs expose it as -workers.
var DefaultStageWorkers int

func resolveStageWorkers(specWorkers, tasks int) int {
	w := specWorkers
	if w == 0 {
		w = DefaultStageWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runStageRanges splits [0, n) into contiguous chunks, one per worker,
// and runs body on each. body must only write state owned by its range.
func runStageRanges(n, workers int, body func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
