// Package fault provides the deterministic fault-injection schedules of
// the LOCAL simulator (stdlib-only). A Plan describes message-level
// perturbations — drop, duplication, and per-edge delivery delay — whose
// per-message decision is a pure function of (seed, round, sender index,
// queue position). The engine asks the plan one question per queued
// message at the round boundary; because the answer depends only on
// those coordinates, every ExecMode (and every rerun) sees the identical
// fault schedule, so faulty runs stay as reproducible as clean ones.
//
// Randomness comes from a private SplitMix64 finalizer chained over the
// decision coordinates rather than from math/rand, both to keep the
// schedule a stateless function and to keep chordalvet's noglobalrand
// invariant trivially satisfied: there is no source to seed and no
// stream whose position could depend on process history.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Decision-stream constants: each fault kind draws from its own stream
// so that, e.g., lowering the drop rate never shifts which messages get
// duplicated. Arbitrary distinct odd constants.
const (
	streamDrop  uint64 = 0xd10b_97f4_a7c1_5d01
	streamDup   uint64 = 0x9e37_79b9_7f4a_7c15
	streamDelay uint64 = 0xc2b2_ae3d_27d4_eb4f
)

// SplitMix64 is the SplitMix64 output finalizer (Steele, Lea & Flood,
// "Fast splittable pseudorandom number generators"): a bijective avalanche
// mix used here as a keyed hash over fault coordinates.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash chains the decision coordinates through SplitMix64. Each absorb
// step applies the full finalizer, so nearby coordinates (adjacent queue
// positions, consecutive rounds) land on unrelated outputs.
func hash(seed, stream uint64, round, sender, pos int) uint64 {
	x := SplitMix64(seed ^ stream)
	x = SplitMix64(x + uint64(round))
	x = SplitMix64(x + uint64(sender))
	x = SplitMix64(x + uint64(pos))
	return x
}

// u01 maps a hash to [0,1) using the high 53 bits, the standard
// float64-from-uint64 construction.
func u01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Plan is a seeded deterministic message-perturbation schedule. The zero
// value perturbs nothing. Probabilities are per message; MaxDelay > 0
// assigns each delivered message a latency in [0, MaxDelay] rounds drawn
// uniformly from its own stream.
type Plan struct {
	// Seed keys all three decision streams.
	Seed uint64
	// Drop is the probability that a queued message is discarded.
	Drop float64
	// Dup is the probability that a delivered message arrives twice
	// (the copy lands at the adjacent queue position).
	Dup float64
	// MaxDelay, when positive, enables the per-edge latency schedule:
	// each delivered message is assigned a delay in [0, MaxDelay] rounds.
	// The round-synchronous engine absorbs the delay (delivery content
	// and order are unchanged) and charges it as synchronizer stall time.
	MaxDelay int
}

// Action is the plan's verdict for one queued message.
type Action struct {
	Drop  bool
	Dup   bool
	Delay int
}

// Perturbs reports whether the plan can affect any message.
func (p Plan) Perturbs() bool {
	return p.Drop > 0 || p.Dup > 0 || p.MaxDelay > 0
}

// Decide returns the fault action for the message at queue position pos
// of the sender's outbox in the given round — a pure function of
// (Seed, round, sender, pos).
func (p Plan) Decide(round, sender, pos int) Action {
	var a Action
	if p.Drop > 0 && u01(hash(p.Seed, streamDrop, round, sender, pos)) < p.Drop {
		a.Drop = true
		return a
	}
	if p.Dup > 0 && u01(hash(p.Seed, streamDup, round, sender, pos)) < p.Dup {
		a.Dup = true
	}
	if p.MaxDelay > 0 {
		a.Delay = int(hash(p.Seed, streamDelay, round, sender, pos) % uint64(p.MaxDelay+1))
	}
	return a
}

// Parse parses a fault specification of the form
//
//	drop=P,dup=P,delay=D,crash=NODE@ROUND[,crash=NODE@ROUND...]
//
// (any subset of keys, in any order) into a Plan plus a crash schedule
// keyed by node ID. The seed is supplied separately so the same spec can
// be replayed under many seeds. Probabilities must lie in [0,1]; delay
// and crash rounds must be non-negative.
func Parse(spec string, seed uint64) (Plan, map[int64]int, error) {
	p := Plan{Seed: seed}
	var crash map[int64]int
	if strings.TrimSpace(spec) == "" {
		return p, nil, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, nil, fmt.Errorf("fault: malformed field %q (want key=value)", field)
		}
		switch key {
		case "drop", "dup":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return Plan{}, nil, fmt.Errorf("fault: %s=%q is not a probability in [0,1]", key, val)
			}
			if key == "drop" {
				p.Drop = f
			} else {
				p.Dup = f
			}
		case "delay":
			d, err := strconv.Atoi(val)
			if err != nil || d < 0 {
				return Plan{}, nil, fmt.Errorf("fault: delay=%q is not a non-negative round count", val)
			}
			p.MaxDelay = d
		case "crash":
			node, round, ok := strings.Cut(val, "@")
			if !ok {
				return Plan{}, nil, fmt.Errorf("fault: crash=%q (want crash=NODE@ROUND)", val)
			}
			id, err1 := strconv.ParseInt(node, 10, 64)
			r, err2 := strconv.Atoi(round)
			if err1 != nil || err2 != nil || r < 0 {
				return Plan{}, nil, fmt.Errorf("fault: crash=%q (want crash=NODE@ROUND with ROUND ≥ 0)", val)
			}
			if crash == nil {
				crash = make(map[int64]int)
			}
			crash[id] = r
		default:
			return Plan{}, nil, fmt.Errorf("fault: unknown key %q (want drop, dup, delay, or crash)", key)
		}
	}
	return p, crash, nil
}
