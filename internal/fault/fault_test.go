package fault

import "testing"

func TestDecideDeterministic(t *testing.T) {
	p := Plan{Seed: 42, Drop: 0.3, Dup: 0.3, MaxDelay: 4}
	for round := 0; round < 5; round++ {
		for sender := 0; sender < 5; sender++ {
			for pos := 0; pos < 5; pos++ {
				a := p.Decide(round, sender, pos)
				b := p.Decide(round, sender, pos)
				if a != b {
					t.Fatalf("Decide(%d,%d,%d) not stable: %+v vs %+v", round, sender, pos, a, b)
				}
			}
		}
	}
}

func TestDecideZeroPlan(t *testing.T) {
	var p Plan
	if p.Perturbs() {
		t.Fatal("zero plan reports Perturbs")
	}
	if a := p.Decide(3, 7, 11); a != (Action{}) {
		t.Fatalf("zero plan produced action %+v", a)
	}
}

// TestDecideRates checks the drop/dup streams hit their configured
// probabilities to within a loose tolerance, and that delays cover the
// full [0, MaxDelay] range.
func TestDecideRates(t *testing.T) {
	p := Plan{Seed: 7, Drop: 0.25, Dup: 0.25, MaxDelay: 3}
	const total = 40000
	drops, dups := 0, 0
	delaySeen := make(map[int]bool)
	for i := 0; i < total; i++ {
		a := p.Decide(i%97, i%31, i%53)
		if a.Drop {
			drops++
		}
		if a.Dup {
			dups++
		}
		if a.Delay < 0 || a.Delay > p.MaxDelay {
			t.Fatalf("delay %d outside [0,%d]", a.Delay, p.MaxDelay)
		}
		delaySeen[a.Delay] = true
	}
	if got := float64(drops) / total; got < 0.20 || got > 0.30 {
		t.Errorf("drop rate %.3f, want ~0.25", got)
	}
	// Dup is only decided for non-dropped messages, so its observed rate
	// is 0.25 of the surviving 75%.
	if got := float64(dups) / total; got < 0.14 || got > 0.24 {
		t.Errorf("dup rate %.3f, want ~0.1875", got)
	}
	for d := 0; d <= p.MaxDelay; d++ {
		if !delaySeen[d] {
			t.Errorf("delay value %d never drawn", d)
		}
	}
}

// TestDecideStreamsIndependent: changing the drop rate must not change
// which surviving messages get duplicated or delayed.
func TestDecideStreamsIndependent(t *testing.T) {
	lo := Plan{Seed: 9, Drop: 0.01, Dup: 0.5, MaxDelay: 5}
	hi := Plan{Seed: 9, Drop: 0.99, Dup: 0.5, MaxDelay: 5}
	for i := 0; i < 2000; i++ {
		a, b := lo.Decide(i, i%13, i%7), hi.Decide(i, i%13, i%7)
		if a.Drop || b.Drop {
			continue // both survived in neither plan or one of them
		}
		if a.Dup != b.Dup || a.Delay != b.Delay {
			t.Fatalf("coord %d: dup/delay shifted with drop rate: %+v vs %+v", i, a, b)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the SplitMix64 generator seeded with 0 and
	// 1234567 (first output = finalizer applied to the seed).
	if got := SplitMix64(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("SplitMix64(0) = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if got := SplitMix64(1234567); got != SplitMix64(1234567) {
		t.Error("SplitMix64 not a pure function")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Error("SplitMix64 collides on adjacent inputs")
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		spec    string
		want    Plan
		crash   map[int64]int
		wantErr bool
	}{
		{spec: "", want: Plan{Seed: 5}},
		{spec: "drop=0.25", want: Plan{Seed: 5, Drop: 0.25}},
		{spec: "dup=0.1,delay=3", want: Plan{Seed: 5, Dup: 0.1, MaxDelay: 3}},
		{
			spec:  "drop=0.5,crash=4@2,crash=17@0",
			want:  Plan{Seed: 5, Drop: 0.5},
			crash: map[int64]int{4: 2, 17: 0},
		},
		{spec: "drop=1.5", wantErr: true},
		{spec: "drop=-0.1", wantErr: true},
		{spec: "delay=-1", wantErr: true},
		{spec: "crash=4", wantErr: true},
		{spec: "crash=x@2", wantErr: true},
		{spec: "crash=4@-1", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "drop", wantErr: true},
	}
	for _, tc := range tests {
		p, crash, err := Parse(tc.spec, 5)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %+v", tc.spec, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if p != tc.want {
			t.Errorf("Parse(%q) plan = %+v, want %+v", tc.spec, p, tc.want)
		}
		if len(crash) != len(tc.crash) {
			t.Errorf("Parse(%q) crash = %v, want %v", tc.spec, crash, tc.crash)
			continue
		}
		for id, r := range tc.crash {
			if crash[id] != r {
				t.Errorf("Parse(%q) crash[%d] = %d, want %d", tc.spec, id, crash[id], r)
			}
		}
	}
}
