package dist

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestEmptyGraphAllModes: a node-count-0 network must terminate
// immediately with an empty output map under every schedule.
func TestEmptyGraphAllModes(t *testing.T) {
	g := graph.New()
	for _, mode := range []ExecMode{ModePooled, ModePerNode, ModeSequential} {
		eng := NewEngine(g, func(v graph.ID) Protocol {
			t.Fatal("factory called for empty graph")
			return nil
		})
		eng.Mode = mode
		res, err := eng.Run(5)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Rounds != 0 || len(res.Outputs) != 0 || res.Messages != 0 {
			t.Errorf("mode %v: empty graph ran %d rounds, %d outputs", mode, res.Rounds, len(res.Outputs))
		}
	}
}

// TestRunTwiceErrors: protocols hold terminal state after a run, so a
// second Run must fail loudly instead of reporting a 0-round success.
func TestRunTwiceErrors(t *testing.T) {
	g := gen.Cycle(8)
	eng := NewEngine(g, func(v graph.ID) Protocol {
		return &countingProtocol{limit: 3}
	})
	res, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("first run reported 0 rounds")
	}
	if _, err := eng.Run(10); err == nil || !strings.Contains(err.Error(), "Run called twice") {
		t.Fatalf("second Run: err = %v, want 'Run called twice' error", err)
	}
}

// shardsObserver records the shard count RoundStart announces and the
// one RoundEnd reports, per round.
type shardsObserver struct {
	mu         sync.Mutex
	startByRnd map[int]int
	endByRnd   map[int]int
}

func (o *shardsObserver) RunStart(nodes, edges int) {}
func (o *shardsObserver) RoundStart(round, shards int) {
	o.mu.Lock()
	o.startByRnd[round] = shards
	o.mu.Unlock()
}
func (o *shardsObserver) ShardStart(shard int) {}
func (o *shardsObserver) ShardEnd(shard int)   {}
func (o *shardsObserver) RoundEnd(stats RoundStats) {
	o.mu.Lock()
	o.endByRnd[stats.Round] = stats.Shards
	o.mu.Unlock()
}
func (o *shardsObserver) RunEnd(rounds int) {}

// gomaxprocsProtocol shrinks GOMAXPROCS mid-run (from node 0, round 2)
// to force the pooled schedule's shard count to change between rounds.
type gomaxprocsProtocol struct {
	id     graph.ID
	rounds int
	limit  int
	target int
}

func (p *gomaxprocsProtocol) Init(ctx *Context) { ctx.Broadcast(1) }
func (p *gomaxprocsProtocol) Round(ctx *Context, inbox []Message) {
	p.rounds++
	if p.id == 0 && p.rounds == 2 {
		runtime.GOMAXPROCS(p.target)
	}
	if p.rounds < p.limit {
		ctx.Broadcast(1)
	}
}
func (p *gomaxprocsProtocol) Done() bool  { return p.rounds >= p.limit }
func (p *gomaxprocsProtocol) Output() any { return nil }

// TestShardsConsistentUnderGOMAXPROCSChange is the regression test for
// RoundStats.Shards being recomputed at RoundEnd: a GOMAXPROCS change
// between a round's step and its collect made RoundStart and RoundEnd
// disagree about the shard count. The engine must report the count the
// step actually used.
func TestShardsConsistentUnderGOMAXPROCSChange(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	obs := &shardsObserver{startByRnd: make(map[int]int), endByRnd: make(map[int]int)}
	eng := NewEngine(gen.Cycle(100), func(v graph.ID) Protocol {
		return &gomaxprocsProtocol{id: v, limit: 5, target: 2}
	})
	eng.Mode = ModePooled
	eng.Observer = obs
	if _, err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
	for round, start := range obs.startByRnd {
		if end, ok := obs.endByRnd[round]; !ok || end != start {
			t.Errorf("round %d: RoundStart announced %d shards, RoundEnd reported %d", round, start, end)
		}
	}
	// The change must actually have taken: 100 nodes over 4 procs is 4
	// shards, over 2 procs it is 2 — if every round saw the same count
	// the regression scenario was never exercised.
	distinct := make(map[int]bool)
	for _, s := range obs.startByRnd {
		distinct[s] = true
	}
	if len(distinct) < 2 {
		t.Skipf("GOMAXPROCS change did not alter shard count (counts %v); machine too narrow to exercise the regression", distinct)
	}
}

// TestDoneFlipContinuesRun: oscillating nodes next to a late-settling
// node force the run through repeated Done→not-Done transitions (the
// negative delta path) while the run keeps going; the counter must not
// drift under any schedule.
func TestDoneFlipContinuesRun(t *testing.T) {
	g := gen.Cycle(12)
	for _, mode := range []ExecMode{ModePooled, ModePerNode, ModeSequential} {
		eng := NewEngine(g, func(v graph.ID) Protocol {
			return &oscillatingProtocol{settle: 7}
		})
		eng.Mode = mode
		res, err := eng.Run(20)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Rounds != 0 {
			// All-oscillator networks are Done right after Init (round 0
			// counts as even); this pins the baseline the mixed case
			// below must beat.
			t.Fatalf("mode %v: homogeneous oscillators stopped at round %d, want 0", mode, res.Rounds)
		}
	}
	for _, mode := range []ExecMode{ModePooled, ModePerNode, ModeSequential} {
		eng := NewEngine(g, func(v graph.ID) Protocol {
			if v == 0 {
				return &holdProtocol{until: 7}
			}
			return &oscillatingProtocol{settle: 7}
		})
		eng.Mode = mode
		res, err := eng.Run(20)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Rounds != 7 {
			t.Errorf("mode %v: mixed network stopped at round %d, want 7 (done counter drifted through the flips)", mode, res.Rounds)
		}
	}
}

// holdProtocol is not Done until a fixed round, sending nothing.
type holdProtocol struct {
	rounds int
	until  int
}

func (p *holdProtocol) Init(ctx *Context)                   {}
func (p *holdProtocol) Round(ctx *Context, inbox []Message) { p.rounds++ }
func (p *holdProtocol) Done() bool                          { return p.rounds >= p.until }
func (p *holdProtocol) Output() any                         { return p.rounds }

// TestSendToNonNodeAllModes: the Send panic must be recovered and
// surfaced as an error from Run under every schedule — in pooled mode a
// panicking worker previously left the WaitGroup hanging.
func TestSendToNonNodeAllModes(t *testing.T) {
	g := gen.Path(50)
	for _, mode := range []ExecMode{ModePooled, ModePerNode, ModeSequential} {
		eng := NewEngine(g, func(v graph.ID) Protocol {
			return &badSenderProtocol{}
		})
		eng.Mode = mode
		_, err := eng.Run(10)
		if err == nil {
			t.Fatalf("mode %v: send to a non-node did not error", mode)
		}
		if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "not a node of the network") {
			t.Errorf("mode %v: error %q does not describe the panic", mode, err)
		}
	}
}

// TestCoversComponentBoundary is the regression table for the radius-0
// boundary bug: a radius-0 flood on an isolated node covers its
// component (maxDist == Radius == 0), and a ball that fills its
// component on exactly the last hop does too.
func TestCoversComponentBoundary(t *testing.T) {
	isolated := graph.New()
	isolated.AddNode(1)
	edge := graph.New()
	edge.AddEdge(1, 2)
	path3 := graph.New()
	path3.AddEdge(1, 2)
	path3.AddEdge(2, 3)

	cases := []struct {
		name   string
		g      *graph.Graph
		radius int
		want   map[graph.ID]bool
	}{
		{"isolated-r0", isolated, 0, map[graph.ID]bool{1: true}},
		{"isolated-r1", isolated, 1, map[graph.ID]bool{1: true}},
		{"edge-r0", edge, 0, map[graph.ID]bool{1: false, 2: false}},
		{"edge-r1", edge, 1, map[graph.ID]bool{1: true, 2: true}},
		{"edge-r2", edge, 2, map[graph.ID]bool{1: true, 2: true}},
		// Radius 1 on a 3-path: the middle node sees the whole component
		// on its last hop (covered); the endpoints' balls are clipped.
		{"path3-r1", path3, 1, map[graph.ID]bool{1: false, 2: true, 3: false}},
		{"path3-r2", path3, 2, map[graph.ID]bool{1: true, 2: true, 3: true}},
	}
	for _, tc := range cases {
		know, _, err := CollectBalls(tc.g, tc.radius, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for v, want := range tc.want {
			if got := know[v].CoversComponent(); got != want {
				t.Errorf("%s: node %d CoversComponent() = %v, want %v", tc.name, v, got, want)
			}
		}
	}
}
