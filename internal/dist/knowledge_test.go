package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// forceMapPath returns a copy of k with the dedup bitmap and sparse
// index set detached and the position map unbuilt, so CoversComponent
// and KnownIdx take the reference map/scan paths.
func forceMapPath(k *Knowledge) *Knowledge {
	kc := *k
	kc.seen = nil
	kc.known = IdxSet{}
	kc.pos = nil
	return &kc
}

// TestCoversComponentBitmapMatchesMapPath checks that the dense-bitmap
// fast path of CoversComponent agrees with the position-map path on
// both answers: balls that cover their component (radius beyond the
// diameter) and balls the radius clips.
func TestCoversComponentBitmapMatchesMapPath(t *testing.T) {
	g := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 17)
	// A second component so coverage is per-component, not per-graph.
	g.AddEdge(5000, 5001)
	g.AddEdge(5001, 5002)
	for _, radius := range []int{0, 1, 2, 3, 50} {
		ix := graph.NewIndexed(g)
		know, _, err := CollectBallsIndexed(ix, radius, nil)
		if err != nil {
			t.Fatal(err)
		}
		covered, clipped := 0, 0
		for _, v := range ix.IDs() {
			k := know[v]
			if k.seen == nil {
				t.Fatalf("radius %d: knowledge of %d has no dedup bitmap at n=%d", radius, v, ix.NumNodes())
			}
			got := k.CoversComponent()
			if k.pos != nil {
				t.Fatalf("radius %d: bitmap CoversComponent of %d built the position map", radius, v)
			}
			if want := forceMapPath(k).CoversComponent(); got != want {
				t.Fatalf("radius %d: CoversComponent of %d: bitmap %v, map path %v", radius, v, got, want)
			}
			if got {
				covered++
			} else {
				clipped++
			}
		}
		// Both answers must actually occur across the radius sweep ends.
		if radius == 0 && covered != 0 {
			t.Fatalf("radius 0: %d balls claim component coverage", covered)
		}
		if radius == 50 && clipped != 0 {
			t.Fatalf("radius 50: %d balls still clipped", clipped)
		}
	}
}

// TestKnownIdxBitmapAndScanAgree checks KnownIdx's bit-test path against
// the record-scan fallback and against Known on IDs, for clipped balls.
func TestKnownIdxBitmapAndScanAgree(t *testing.T) {
	g := gen.Tree(90, 7)
	ix := graph.NewIndexed(g)
	know, _, err := CollectBallsIndexed(ix, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := ix.IDs()
	for _, v := range ids {
		k := know[v]
		if !k.IndexReady() {
			t.Fatalf("knowledge of %d not index-ready", v)
		}
		scan := forceMapPath(k)
		for i := range ids {
			bit := k.KnownIdx(int32(i))
			if slow := scan.KnownIdx(int32(i)); bit != slow {
				t.Fatalf("center %d idx %d: bitmap KnownIdx %v, scan %v", v, i, bit, slow)
			}
			if byID := k.Known(ids[i]); bit != byID {
				t.Fatalf("center %d idx %d: KnownIdx %v, Known(%d) %v", v, i, bit, ids[i], byID)
			}
		}
	}
}

// TestRetransKnowledgeIndexReady checks that retransmission-protocol
// knowledge is index-ready (the decide kernel consumes it through
// view.Source) while carrying no bitmap — its CoversComponent goes
// through the sparse index set, agreeing with the position-map path.
func TestRetransKnowledgeIndexReady(t *testing.T) {
	g := gen.Path(40)
	know, _, err := CollectBallsRetrans(g, 4, 50, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		k := know[v]
		if !k.IndexReady() {
			t.Fatalf("retrans knowledge of %d not index-ready", v)
		}
		if k.seen != nil {
			t.Fatalf("retrans knowledge of %d unexpectedly carries a dedup bitmap", v)
		}
		if k.known.Len() != k.Size() {
			t.Fatalf("retrans knowledge of %d: index set has %d entries, want %d", v, k.known.Len(), k.Size())
		}
		if got, want := k.CoversComponent(), forceMapPath(k).CoversComponent(); got != want {
			t.Fatalf("retrans CoversComponent of %d: %v vs %v", v, got, want)
		}
	}
}

// TestBigNSparseSetRegime exercises the flood above seenBitmapMaxN,
// where dedup and membership run through the sparse index set: no
// bitmap, no eagerly-built position map, and KnownIdx/CoversComponent
// agreeing with the ID-keyed reference paths.
func TestBigNSparseSetRegime(t *testing.T) {
	g := gen.Path(seenBitmapMaxN + 100)
	// A second, tiny component whose radius-3 balls cover it entirely,
	// so CoversComponent exercises both answers in this regime.
	g.AddEdge(1_000_000, 1_000_001)
	g.AddEdge(1_000_001, 1_000_002)
	ix := graph.NewIndexed(g)
	know, _, err := CollectBallsIndexed(ix, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := ix.IDs()
	covered, clipped := 0, 0
	for _, v := range []graph.ID{0, 77, seenBitmapMaxN / 2, 1_000_000, 1_000_001} {
		k := know[v]
		if k.seen != nil {
			t.Fatalf("knowledge of %d carries a dense bitmap at n=%d", v, ix.NumNodes())
		}
		if k.known.Len() != k.Size() {
			t.Fatalf("knowledge of %d: index set has %d entries, want %d", v, k.known.Len(), k.Size())
		}
		got := k.CoversComponent()
		if k.pos != nil {
			t.Fatalf("index-space CoversComponent of %d built the position map", v)
		}
		if want := forceMapPath(k).CoversComponent(); got != want {
			t.Fatalf("CoversComponent of %d: sparse set %v, map path %v", v, got, want)
		}
		if got {
			covered++
		} else {
			clipped++
		}
		scan := forceMapPath(k)
		for _, u := range []graph.ID{0, v, 1_000_000, 1_000_002, graph.ID(seenBitmapMaxN - 1)} {
			i, ok := ix.IndexOf(u)
			if !ok {
				t.Fatalf("probe node %d missing from snapshot", u)
			}
			set := k.KnownIdx(int32(i))
			if slow := scan.KnownIdx(int32(i)); set != slow {
				t.Fatalf("center %d idx %d: sparse KnownIdx %v, scan %v", v, i, set, slow)
			}
			if byID := k.Known(ids[i]); set != byID {
				t.Fatalf("center %d idx %d: KnownIdx %v, Known(%d) %v", v, i, set, ids[i], byID)
			}
		}
	}
	if covered == 0 || clipped == 0 {
		t.Fatalf("probe set saw covered=%d clipped=%d; want both regimes", covered, clipped)
	}
}
