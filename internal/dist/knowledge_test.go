package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// forceMapPath returns a copy of k with the dedup bitmap detached and
// the position map unbuilt, so CoversComponent and KnownIdx take the
// reference map/scan paths.
func forceMapPath(k *Knowledge) *Knowledge {
	kc := *k
	kc.seen = nil
	kc.pos = nil
	return &kc
}

// TestCoversComponentBitmapMatchesMapPath checks that the dense-bitmap
// fast path of CoversComponent agrees with the position-map path on
// both answers: balls that cover their component (radius beyond the
// diameter) and balls the radius clips.
func TestCoversComponentBitmapMatchesMapPath(t *testing.T) {
	g := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 17)
	// A second component so coverage is per-component, not per-graph.
	g.AddEdge(5000, 5001)
	g.AddEdge(5001, 5002)
	for _, radius := range []int{0, 1, 2, 3, 50} {
		ix := graph.NewIndexed(g)
		know, _, err := CollectBallsIndexed(ix, radius, nil)
		if err != nil {
			t.Fatal(err)
		}
		covered, clipped := 0, 0
		for _, v := range ix.IDs() {
			k := know[v]
			if k.seen == nil {
				t.Fatalf("radius %d: knowledge of %d has no dedup bitmap at n=%d", radius, v, ix.NumNodes())
			}
			got := k.CoversComponent()
			if k.pos != nil {
				t.Fatalf("radius %d: bitmap CoversComponent of %d built the position map", radius, v)
			}
			if want := forceMapPath(k).CoversComponent(); got != want {
				t.Fatalf("radius %d: CoversComponent of %d: bitmap %v, map path %v", radius, v, got, want)
			}
			if got {
				covered++
			} else {
				clipped++
			}
		}
		// Both answers must actually occur across the radius sweep ends.
		if radius == 0 && covered != 0 {
			t.Fatalf("radius 0: %d balls claim component coverage", covered)
		}
		if radius == 50 && clipped != 0 {
			t.Fatalf("radius 50: %d balls still clipped", clipped)
		}
	}
}

// TestKnownIdxBitmapAndScanAgree checks KnownIdx's bit-test path against
// the record-scan fallback and against Known on IDs, for clipped balls.
func TestKnownIdxBitmapAndScanAgree(t *testing.T) {
	g := gen.Tree(90, 7)
	ix := graph.NewIndexed(g)
	know, _, err := CollectBallsIndexed(ix, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := ix.IDs()
	for _, v := range ids {
		k := know[v]
		if !k.IndexReady() {
			t.Fatalf("knowledge of %d not index-ready", v)
		}
		scan := forceMapPath(k)
		for i := range ids {
			bit := k.KnownIdx(int32(i))
			if slow := scan.KnownIdx(int32(i)); bit != slow {
				t.Fatalf("center %d idx %d: bitmap KnownIdx %v, scan %v", v, i, bit, slow)
			}
			if byID := k.Known(ids[i]); bit != byID {
				t.Fatalf("center %d idx %d: KnownIdx %v, Known(%d) %v", v, i, bit, ids[i], byID)
			}
		}
	}
}

// TestRetransKnowledgeIndexReady checks that retransmission-protocol
// knowledge is index-ready (the decide kernel consumes it through
// view.Source) while carrying no bitmap — its CoversComponent takes the
// position-map path.
func TestRetransKnowledgeIndexReady(t *testing.T) {
	g := gen.Path(40)
	know, _, err := CollectBallsRetrans(g, 4, 50, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		k := know[v]
		if !k.IndexReady() {
			t.Fatalf("retrans knowledge of %d not index-ready", v)
		}
		if k.seen != nil {
			t.Fatalf("retrans knowledge of %d unexpectedly carries a dedup bitmap", v)
		}
		if got, want := k.CoversComponent(), forceMapPath(k).CoversComponent(); got != want {
			t.Fatalf("retrans CoversComponent of %d: %v vs %v", v, got, want)
		}
	}
}
