package dist

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// sameKnowledge compares two ball collections by content: same node
// sets, same distances. Record order may legitimately differ between
// the plain flood (discovery order) and the retransmitting one (sorted
// by hops then ID), so the comparison goes through DistOf.
func sameKnowledge(t *testing.T, name string, want, got map[graph.ID]*Knowledge) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d knowledges, want %d", name, len(got), len(want))
	}
	for v, wk := range want {
		gk := got[v]
		if gk == nil {
			t.Fatalf("%s: node %d missing", name, v)
		}
		if gk.Size() != wk.Size() {
			t.Fatalf("%s node %d: ball size %d, want %d", name, v, gk.Size(), wk.Size())
		}
		for _, rec := range wk.recs {
			wd, _ := wk.DistOf(rec.Node)
			gd, ok := gk.DistOf(rec.Node)
			if !ok || gd != wd {
				t.Fatalf("%s node %d: dist to %d = %d (known=%v), want %d", name, v, rec.Node, gd, ok, wd)
			}
		}
	}
}

// TestRetransMatchesFloodFaultFree: with no faults, the retransmitting
// flood gathers exactly the knowledge the plain flood does, paying the
// ack round-trip (radius + 2 rounds) for the delivery guarantee.
func TestRetransMatchesFloodFaultFree(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"chordal": gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 19),
		"path":    gen.Path(20),
		"star":    gen.Star(15),
	}
	for name, g := range graphs {
		for _, radius := range []int{0, 1, 3} {
			want, _, err := CollectBalls(g, radius, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, res, err := CollectBallsRetrans(g, radius, 4*radius+10, nil, nil, nil)
			if err != nil {
				t.Fatalf("%s r=%d: %v", name, radius, err)
			}
			sameKnowledge(t, name, want, got)
			if radius > 0 && res.Rounds > radius+2 {
				t.Errorf("%s r=%d: fault-free retransmission took %d rounds, want ≤ %d", name, radius, res.Rounds, radius+2)
			}
		}
	}
}

// TestRetransSurvivesDrops is the graceful-degradation guarantee: under
// heavy message loss the retransmitting flood still converges to the
// exact fault-free knowledge, spending extra rounds.
func TestRetransSurvivesDrops(t *testing.T) {
	g := gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 23)
	radius := 3
	want, _, err := CollectBalls(g, radius, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.3, 0.5} {
		f := &Faults{Plan: fault.Plan{Seed: 41, Drop: p}}
		got, res, err := CollectBallsRetrans(g, radius, 200, nil, f, nil)
		if err != nil {
			t.Fatalf("drop=%.1f: %v", p, err)
		}
		if res.Dropped == 0 {
			t.Fatalf("drop=%.1f dropped nothing", p)
		}
		sameKnowledge(t, "drops", want, got)
		if res.Rounds <= radius {
			t.Errorf("drop=%.1f: converged in %d rounds, implausibly fast", p, res.Rounds)
		}
	}
}

// TestRetransAbsorbsDupAndDelay: duplication and delay must not change
// the converged knowledge either.
func TestRetransAbsorbsDupAndDelay(t *testing.T) {
	g := gen.KTree(100, 3, 29)
	radius := 2
	want, _, err := CollectBalls(g, radius, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &Faults{Plan: fault.Plan{Seed: 5, Drop: 0.2, Dup: 0.3, MaxDelay: 2}}
	got, res, err := CollectBallsRetrans(g, radius, 200, nil, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameKnowledge(t, "dup+delay", want, got)
	if res.Duplicated == 0 || res.Stall == 0 {
		t.Errorf("expected dup and stall activity: %+v", res)
	}
}

// TestRetransDeterministicAcrossModes: the faulty retransmitting run is
// as schedule-independent as everything else.
func TestRetransDeterministicAcrossModes(t *testing.T) {
	g := gen.RandomChordal(100, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 31)
	f := &Faults{Plan: fault.Plan{Seed: 13, Drop: 0.25}}
	type fp struct {
		rounds, messages, volume, dropped int
	}
	run := func() (map[graph.ID]*Knowledge, fp) {
		know, res, err := CollectBallsRetrans(g, 3, 200, nil, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		return know, fp{res.Rounds, res.Messages, res.Volume, res.Dropped}
	}
	var refK map[graph.ID]*Knowledge
	var refFP fp
	withMode(t, ModeSequential, func() { refK, refFP = run() })
	for _, m := range []ExecMode{ModePooled, ModePerNode} {
		var gotK map[graph.ID]*Knowledge
		var gotFP fp
		withMode(t, m, func() { gotK, gotFP = run() })
		if gotFP != refFP {
			t.Fatalf("mode %d: %+v, want %+v", m, gotFP, refFP)
		}
		sameKnowledge(t, "modes", refK, gotK)
	}
}

// TestRetransBudgetExhaustion: an impossible budget fails with the
// engine's did-not-terminate error rather than returning short balls.
func TestRetransBudgetExhaustion(t *testing.T) {
	g := gen.Path(30)
	f := &Faults{Plan: fault.Plan{Seed: 1, Drop: 0.5}}
	_, _, err := CollectBallsRetrans(g, 5, 3, nil, f, nil)
	if err == nil {
		t.Fatal("budget of 3 rounds under 50% drop succeeded")
	}
	if !strings.Contains(err.Error(), "did not terminate") {
		t.Errorf("error %q is not the budget-exhaustion diagnosis", err)
	}
}

// TestRetransNotes: annotations ride along like in the plain flood.
func TestRetransNotes(t *testing.T) {
	g := gen.Path(5)
	notes := map[graph.ID]any{0: "a", 4: "z"}
	know, _, err := CollectBallsRetrans(g, 2, 20, notes, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := know[2].Note(0); got != "a" {
		t.Errorf("note of node 0 seen by node 2 = %v, want a", got)
	}
	if got := know[3].Note(4); got != "z" {
		t.Errorf("note of node 4 seen by node 3 = %v, want z", got)
	}
}
