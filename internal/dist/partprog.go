package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"repro/internal/graph"
)

// This file adapts the flooding protocols to the partitioned runtime.
// Both flood variants disseminate NodeInfo records, and a record is a
// pure function of its snapshot index: Node and Adj come from the CSR
// snapshot every shard holds, and Note comes from the per-run note
// table shipped in the program parameters. So the wire format of a
// record is just the index — payload codecs move int32s, not adjacency
// lists, and the decoded record is bit-identical to the one the LOCAL
// engine would have delivered (shared snapshot views included).

// floodNotes is the wire form of a flood note table. Prune annotations
// are iteration numbers, so the codec supports exactly nil-or-int
// notes; richer annotations would silently diverge between LOCAL and
// partitioned runs and are rejected loudly instead.
type floodNotes struct {
	Set []bool
	Val []int64
}

type floodParamsWire struct {
	Radius int
	Budget int // retrans only: engine round budget
	Notes  floodNotes
}

func encodeNotes(n int, notes []any) (floodNotes, error) {
	var fn floodNotes
	if notes == nil {
		return fn, nil
	}
	if len(notes) != n {
		return fn, fmt.Errorf("dist: note table has %d entries for %d nodes", len(notes), n)
	}
	fn.Set = make([]bool, n)
	fn.Val = make([]int64, n)
	for i, v := range notes {
		if v == nil {
			continue
		}
		iv, ok := v.(int)
		if !ok {
			return fn, fmt.Errorf("dist: note %d is %T; partitioned floods carry nil-or-int notes only", i, v)
		}
		fn.Set[i] = true
		fn.Val[i] = int64(iv)
	}
	return fn, nil
}

func (fn *floodNotes) table(n int) ([]any, error) {
	if fn.Set == nil {
		return nil, nil
	}
	if len(fn.Set) != n || len(fn.Val) != n {
		return nil, fmt.Errorf("dist: note table has %d/%d entries for %d nodes", len(fn.Set), len(fn.Val), n)
	}
	notes := make([]any, n)
	for i, set := range fn.Set {
		if set {
			notes[i] = int(fn.Val[i])
		}
	}
	return notes, nil
}

func encodeFloodParams(n, radius, budget int, notes []any) ([]byte, error) {
	fn, err := encodeNotes(n, notes)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(floodParamsWire{Radius: radius, Budget: budget, Notes: fn}); err != nil {
		return nil, fmt.Errorf("dist: encoding flood params: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeFloodParams(ix *graph.Indexed, params []byte) (radius, budget int, notes []any, err error) {
	var w floodParamsWire
	if err := gob.NewDecoder(bytes.NewReader(params)).Decode(&w); err != nil {
		return 0, 0, nil, fmt.Errorf("dist: decoding flood params: %w", err)
	}
	notes, err = w.Notes.table(ix.NumNodes())
	if err != nil {
		return 0, 0, nil, err
	}
	return w.Radius, w.Budget, notes, nil
}

// appendI32 / readI32 are the payload codecs' primitive: fixed-width
// little-endian int32s, so every encoded size is a deterministic
// function of the record count.
func appendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

func readI32(b []byte) (int32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("dist: truncated payload: %d trailing bytes", len(b))
	}
	return int32(binary.LittleEndian.Uint32(b)), b[4:], nil
}

// rebuildInfo reconstructs the NodeInfo the LOCAL engine would deliver
// for snapshot index idx: identity and adjacency resolve through the
// shared snapshot, the note through the per-run table.
func rebuildInfo(ix *graph.Indexed, notes []any, idx int32) (NodeInfo, error) {
	if idx < 0 || int(idx) >= ix.NumNodes() {
		return NodeInfo{}, fmt.Errorf("dist: record index %d out of range [0, %d)", idx, ix.NumNodes())
	}
	var note any
	if notes != nil {
		note = notes[idx]
	}
	return NodeInfo{
		Node: ix.IDOf(int(idx)),
		Adj:  ix.NeighborIDs(int(idx)),
		Note: note,
		idx:  idx,
	}, nil
}

// encodeKnowledge flattens a flood result to (maxDist, [idx, dist]...):
// everything else in a Knowledge is derivable from the snapshot, the
// note table, and the record regime.
func encodeKnowledge(k *Knowledge) []byte {
	out := make([]byte, 0, 8+8*len(k.recs))
	out = appendI32(out, int32(k.maxDist))
	out = appendI32(out, int32(len(k.recs)))
	for i := range k.recs {
		out = appendI32(out, k.recs[i].idx)
		out = appendI32(out, k.dist[i])
	}
	return out
}

// decodeKnowledge rebuilds node center's flood result. bitmapRegime
// selects the membership structure the originating protocol would have
// used: the plain flood's dense bitmap at n ≤ seenBitmapMaxN, the
// sparse index set otherwise and for all retransmitted knowledge — so
// downstream index-space consumers take the same code paths as on a
// LOCAL run.
func decodeKnowledge(ix *graph.Indexed, notes []any, center, radius int, bitmapRegime bool, data []byte) (*Knowledge, error) {
	maxDist, data, err := readI32(data)
	if err != nil {
		return nil, err
	}
	count, data, err := readI32(data)
	if err != nil {
		return nil, err
	}
	if count < 0 || len(data) != int(count)*8 {
		return nil, fmt.Errorf("dist: knowledge record block has %d bytes for %d records", len(data), count)
	}
	n := ix.NumNodes()
	k := &Knowledge{
		Center:  ix.IDOf(center),
		Radius:  radius,
		recs:    make([]NodeInfo, 0, count),
		dist:    make([]int32, 0, count),
		snap:    ix,
		maxDist: int(maxDist),
	}
	if bitmapRegime && n <= seenBitmapMaxN {
		k.seen = make([]uint64, (n+63)/64)
	} else {
		k.known.Reserve(int(count))
	}
	for range int(count) {
		var idx, dist int32
		idx, data, err = readI32(data)
		if err != nil {
			return nil, err
		}
		dist, data, err = readI32(data)
		if err != nil {
			return nil, err
		}
		info, err := rebuildInfo(ix, notes, idx)
		if err != nil {
			return nil, err
		}
		k.recs = append(k.recs, info)
		k.dist = append(k.dist, dist)
		if k.seen != nil {
			k.seen[idx>>6] |= 1 << (uint(idx) & 63)
		} else {
			k.known.Add(idx)
		}
	}
	return k, nil
}

// floodProgram runs the incremental flood (flood.go) under the
// partitioned runtime.
type floodProgram struct {
	ix     *graph.Indexed
	radius int
	notes  []any
	avgDeg int
}

func newFloodProgram(ix *graph.Indexed, params []byte) (Program, error) {
	radius, _, notes, err := decodeFloodParams(ix, params)
	if err != nil {
		return nil, err
	}
	avgDeg := 0
	if n := ix.NumNodes(); n > 0 {
		avgDeg = 2 * ix.NumEdges() / n
	}
	return &floodProgram{ix: ix, radius: radius, notes: notes, avgDeg: avgDeg}, nil
}

func (f *floodProgram) NewNode(i int) Protocol {
	var note any
	if f.notes != nil {
		note = f.notes[i]
	}
	n := f.ix.NumNodes()
	hint := ballSizeHint(f.ix.Degree(i), f.avgDeg, f.radius, n)
	return newFloodProtocol(f.ix.IDOf(i), i, f.ix, note, f.radius, hint)
}

func (f *floodProgram) EncodePayload(p any) ([]byte, error) {
	batch, ok := p.(*infoBatch)
	if !ok {
		return nil, fmt.Errorf("dist: flood payload is %T, want *infoBatch", p)
	}
	out := make([]byte, 0, 4*len(*batch))
	for i := range *batch {
		out = appendI32(out, (*batch)[i].idx)
	}
	return out, nil
}

func (f *floodProgram) DecodePayload(data []byte) (any, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("dist: flood batch has %d bytes, not a multiple of 4", len(data))
	}
	batch := make(infoBatch, 0, len(data)/4)
	for len(data) > 0 {
		idx, rest, err := readI32(data)
		if err != nil {
			return nil, err
		}
		data = rest
		info, err := rebuildInfo(f.ix, f.notes, idx)
		if err != nil {
			return nil, err
		}
		batch = append(batch, info)
	}
	return &batch, nil
}

func (f *floodProgram) EncodeOutput(i int, p Protocol) ([]byte, error) {
	fp, ok := p.(*floodProtocol)
	if !ok {
		return nil, fmt.Errorf("dist: flood protocol is %T", p)
	}
	return encodeKnowledge(fp.know), nil
}

func (f *floodProgram) DecodeOutput(i int, data []byte) (any, error) {
	return decodeKnowledge(f.ix, f.notes, i, f.radius, true, data)
}

// retransProgram runs the retransmitting flood (retrans.go) under the
// partitioned runtime.
type retransProgram struct {
	ix     *graph.Indexed
	radius int
	notes  []any
}

func newRetransProgram(ix *graph.Indexed, params []byte) (Program, error) {
	radius, _, notes, err := decodeFloodParams(ix, params)
	if err != nil {
		return nil, err
	}
	return &retransProgram{ix: ix, radius: radius, notes: notes}, nil
}

func (f *retransProgram) NewNode(i int) Protocol {
	var note any
	if f.notes != nil {
		note = f.notes[i]
	}
	return newRetransProtocol(f.ix.IDOf(i), i, f.ix, note, f.radius)
}

// Retrans payload wire format: a kind byte (0 = data batch, 1 = ack)
// followed by fixed-width int32 fields — (idx, hops) pairs for a batch,
// the index list then the hop list for an ack.
const (
	retransKindBatch = 0
	retransKindAck   = 1
)

func (f *retransProgram) EncodePayload(p any) ([]byte, error) {
	switch pl := p.(type) {
	case *retransBatch:
		out := make([]byte, 1, 1+8*len(pl.Recs))
		out[0] = retransKindBatch
		for i := range pl.Recs {
			out = appendI32(out, pl.Recs[i].Info.idx)
			out = appendI32(out, pl.Recs[i].Hops)
		}
		return out, nil
	case *retransAck:
		out := make([]byte, 1, 1+8*len(pl.Idxs))
		out[0] = retransKindAck
		for _, v := range pl.Idxs {
			out = appendI32(out, v)
		}
		for _, v := range pl.Hops {
			out = appendI32(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("dist: retrans payload is %T, want *retransBatch or *retransAck", p)
	}
}

func (f *retransProgram) DecodePayload(data []byte) (any, error) {
	if len(data) < 1 || (len(data)-1)%8 != 0 {
		return nil, fmt.Errorf("dist: retrans payload has %d bytes, want 1+8k", len(data))
	}
	kind, body := data[0], data[1:]
	count := len(body) / 8
	switch kind {
	case retransKindBatch:
		batch := &retransBatch{Recs: make([]retransRec, 0, count)}
		for len(body) > 0 {
			var idx, hops int32
			var err error
			idx, body, err = readI32(body)
			if err != nil {
				return nil, err
			}
			hops, body, err = readI32(body)
			if err != nil {
				return nil, err
			}
			info, err := rebuildInfo(f.ix, f.notes, idx)
			if err != nil {
				return nil, err
			}
			batch.Recs = append(batch.Recs, retransRec{Info: info, Hops: hops})
		}
		return batch, nil
	case retransKindAck:
		ack := &retransAck{Idxs: make([]int32, count), Hops: make([]int32, count)}
		for i := range ack.Idxs {
			v, rest, err := readI32(body)
			if err != nil {
				return nil, err
			}
			ack.Idxs[i], body = v, rest
		}
		for i := range ack.Hops {
			v, rest, err := readI32(body)
			if err != nil {
				return nil, err
			}
			ack.Hops[i], body = v, rest
		}
		return ack, nil
	default:
		return nil, fmt.Errorf("dist: retrans payload kind %d unknown", kind)
	}
}

func (f *retransProgram) EncodeOutput(i int, p Protocol) ([]byte, error) {
	rp, ok := p.(*retransProtocol)
	if !ok {
		return nil, fmt.Errorf("dist: retrans protocol is %T", p)
	}
	return encodeKnowledge(rp.Output().(*Knowledge)), nil
}

func (f *retransProgram) DecodeOutput(i int, data []byte) (any, error) {
	// Retransmitted knowledge always uses the sparse index set (the
	// rebuild in Output does), regardless of n.
	return decodeKnowledge(f.ix, f.notes, i, f.radius, false, data)
}

func init() {
	RegisterProgram("flood", newFloodProgram)
	RegisterProgram("retrans", newRetransProgram)
}

// CollectBallsByIndexPart is CollectBallsByIndex executed on a
// partition: the same flood, the same observer stream, the same fault
// semantics, with the shards doing the work. notes must be nil-or-int
// per entry (see floodNotes).
func CollectBallsByIndexPart(p *Partition, ix *graph.Indexed, radius int, notes []any, o RoundObserver, f *Faults) ([]*Knowledge, *Result, error) {
	params, err := encodeFloodParams(ix.NumNodes(), radius, 0, notes)
	if err != nil {
		return nil, nil, err
	}
	c, err := NewCoordinator(ix, p, "flood", params)
	if err != nil {
		return nil, nil, err
	}
	c.Observer = o
	c.Faults = f
	c.SkipOutputs = true
	res, err := c.Run(radius + 1)
	if err != nil {
		return nil, nil, fmt.Errorf("flooding: %w", err)
	}
	return knowledgeByIndex(c), res, nil
}

// CollectBallsRetransPart is the retransmitting flood executed on a
// partition, by snapshot index.
func CollectBallsRetransPart(p *Partition, ix *graph.Indexed, radius, budget int, notes []any, o RoundObserver, f *Faults) ([]*Knowledge, *Result, error) {
	params, err := encodeFloodParams(ix.NumNodes(), radius, budget, notes)
	if err != nil {
		return nil, nil, err
	}
	c, err := NewCoordinator(ix, p, "retrans", params)
	if err != nil {
		return nil, nil, err
	}
	c.Observer = o
	c.Faults = f
	c.SkipOutputs = true
	res, err := c.Run(budget)
	if err != nil {
		return nil, nil, fmt.Errorf("retransmitting flood: %w", err)
	}
	return knowledgeByIndex(c), res, nil
}

func knowledgeByIndex(c *Coordinator) []*Knowledge {
	outs := c.OutputsByIndex()
	ks := make([]*Knowledge, len(outs))
	for i, o := range outs {
		ks[i] = o.(*Knowledge)
	}
	return ks
}
