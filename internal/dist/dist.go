// Package dist simulates the LOCAL model of distributed computation
// (paper Section 1): the input graph is the communication network, every
// node hosts a state machine, and execution proceeds in synchronous
// rounds. In each round a node may perform unbounded local computation and
// send an unbounded message to each neighbor; the cost of an algorithm is
// the number of communication rounds.
//
// The engine runs on a frozen graph.Indexed snapshot: nodes are dense
// indices, inboxes are per-node slices reused across rounds, and messages
// are delivered by walking senders in index order, which yields the
// deterministic (sender, queue position) delivery order without sorting.
// Per-round work is sharded over a bounded worker pool sized by
// GOMAXPROCS; node programs execute genuinely concurrently but interact
// only through messages delivered at round boundaries, so every schedule
// produces identical results. The legacy goroutine-per-node schedule and
// a sequential schedule are kept for determinism cross-checks and
// debugging.
package dist

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Message is a point-to-point message delivered at the next round
// boundary. Payloads must be treated as immutable by both sender and
// receiver.
type Message struct {
	From    graph.ID
	Payload any
}

// Protocol is the per-node state machine of a LOCAL algorithm. The engine
// calls Init once before the first round and Round once per communication
// round until every node reports Done.
type Protocol interface {
	// Init runs before round 1; the node may send its first messages.
	Init(ctx *Context)
	// Round runs once per communication round with the messages sent to
	// this node in the previous round. The inbox slice is only valid for
	// the duration of the call: the engine reuses its backing array.
	Round(ctx *Context, inbox []Message)
	// Done reports whether this node's output is final. Done nodes keep
	// receiving Round calls (LOCAL nodes still relay messages); the run
	// stops when all nodes are simultaneously Done.
	Done() bool
	// Output returns the node's final output.
	Output() any
}

// ExecMode selects how the engine schedules per-node work within a round.
// Every mode produces identical results; they differ only in scheduling.
type ExecMode int

const (
	// ModePooled shards the node range over a bounded worker pool sized
	// by GOMAXPROCS. This is the default: it scales to 10^5-node graphs
	// without paying one goroutine per node per round.
	ModePooled ExecMode = iota
	// ModePerNode launches one goroutine per node per round (the legacy
	// schedule, kept for determinism cross-checks).
	ModePerNode
	// ModeSequential runs all nodes on the calling goroutine (useful
	// under -race or for bisecting nondeterminism suspicions).
	ModeSequential
)

// DefaultMode is the schedule NewEngine assigns to new engines. The
// determinism cross-check tests override it temporarily; production code
// leaves it alone.
var DefaultMode = ModePooled

// RoundStats is the per-round summary handed to a RoundObserver at each
// round boundary. Every field except Shards is a pure function of
// (graph, protocol) and therefore identical across all ExecModes; Shards
// describes the schedule that happened to run the round.
type RoundStats struct {
	// Round is the step index: 0 for the Init step, then the 1-based
	// communication round.
	Round int
	// Nodes is the network size.
	Nodes int
	// Shards is the number of worker shards the schedule used for this
	// round (1 in sequential mode, 0 in per-node mode, where shard
	// boundaries do not exist).
	Shards int
	// Messages counts the point-to-point messages queued during this
	// round (delivered at the next round boundary).
	Messages int
	// Volume sums the payload sizes of those messages (Sizer units;
	// 1 per message otherwise).
	Volume int
	// Done is the number of nodes reporting Done after this round.
	Done int
	// MaxInbox is the largest single next-round inbox fill — the
	// inbox-capacity high-water mark of this round's delivery.
	MaxInbox int
}

// RoundObserver receives engine lifecycle events at round boundaries.
// The engine itself never reads the wall clock (the LOCAL model measures
// time in rounds, and the chordalvet wallclock invariant enforces it);
// an observer that wants wall times stamps these callbacks itself — see
// internal/obs for the canonical implementation.
//
// Concurrency contract: RunStart, RoundStart, RoundEnd, and RunEnd are
// called from the goroutine driving Engine.Run. ShardStart/ShardEnd are
// called from worker goroutines — calls with distinct shard indices may
// be concurrent, and each shard index is used by exactly one goroutine
// per round. Observers are never invoked when the engine's Observer
// field is nil, and a nil observer adds no per-node work to the round
// loop.
type RoundObserver interface {
	// RunStart fires once before the Init step.
	RunStart(nodes, edges int)
	// RoundStart fires before the round's node programs run. shards is
	// the worker-shard count of RoundStats.Shards.
	RoundStart(round, shards int)
	// ShardStart/ShardEnd bracket one worker shard's per-node work
	// within the round (pooled and sequential schedules only).
	ShardStart(shard int)
	ShardEnd(shard int)
	// RoundEnd fires after the round's messages are delivered.
	RoundEnd(stats RoundStats)
	// RunEnd fires after the final round, with the total round count.
	RunEnd(rounds int)
}

// PhaseSetter is optionally implemented by observers that label trace
// events with caller-defined phases (e.g. "prune-i03", "correction").
// Code that drives several engine runs under one observer sets the phase
// between runs; the engine itself never calls it.
type PhaseSetter interface {
	SetPhase(name string)
}

// Context is a node's interface to the network during Init/Round calls.
type Context struct {
	id      graph.ID
	idx     int32 // own dense index in the snapshot
	nbrIDs  []graph.ID
	nbrIdx  []int32
	ix      *graph.Indexed
	outbox  []Message
	targets []int32
}

// ID returns the node's unique identifier.
func (c *Context) ID() graph.ID { return c.id }

// Neighbors returns the node's neighbors in increasing ID order. The
// slice is shared with the engine's graph snapshot: treat it as
// read-only.
func (c *Context) Neighbors() []graph.ID { return c.nbrIDs }

// Degree returns the number of neighbors.
func (c *Context) Degree() int { return len(c.nbrIDs) }

// Send queues a message to node to, delivered next round. The hot path —
// sending to a neighbor, the only kind of send the LOCAL model grants for
// free — resolves the target index by binary search over the node's own
// sorted neighbor row instead of the snapshot-wide ID→index map; self
// sends use the precomputed own index; only sends to distant nodes fall
// back to the map lookup.
func (c *Context) Send(to graph.ID, payload any) {
	var j int32
	if p, ok := slices.BinarySearch(c.nbrIDs, to); ok {
		j = c.nbrIdx[p]
	} else if to == c.id {
		j = c.idx
	} else {
		ji, ok := c.ix.IndexOf(to)
		if !ok {
			panic(fmt.Sprintf("dist: node %d sent to %d, which is not a node of the network", c.id, to))
		}
		j = int32(ji)
	}
	c.outbox = append(c.outbox, Message{From: c.id, Payload: payload})
	c.targets = append(c.targets, j)
}

// Broadcast queues the same payload to every neighbor.
func (c *Context) Broadcast(payload any) {
	m := Message{From: c.id, Payload: payload}
	for _, j := range c.nbrIdx {
		c.outbox = append(c.outbox, m)
		c.targets = append(c.targets, j)
	}
}

// Sizer lets payload types report a size in abstract units (e.g. record
// counts) for bandwidth accounting; payloads without it count as 1 unit.
type Sizer interface {
	PayloadSize() int
}

// Result summarizes a finished run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Outputs maps each node to its protocol output.
	Outputs map[graph.ID]any
	// Messages counts point-to-point messages sent over the whole run.
	Messages int
	// Volume sums payload sizes (Sizer units; 1 per message otherwise).
	// LOCAL allows unbounded messages — this measures what the protocols
	// actually use.
	Volume int

	// Fault accounting (all zero when Engine.Faults is nil): messages
	// dropped / duplicated / dead-lettered by the schedule, and the total
	// synchronizer stall (sum over rounds of the max link delay).
	Dropped     int
	Duplicated  int
	DeadLetters int
	Stall       int
}

// Engine executes a Protocol instance on every node of a graph.
type Engine struct {
	ix    *graph.Indexed
	progs []Protocol // by node index
	// Mode selects the per-round schedule; all modes give identical
	// results.
	Mode ExecMode
	// Sequential forces ModeSequential regardless of Mode (legacy knob,
	// kept for existing callers).
	Sequential bool
	// Observer, when non-nil, receives per-round events (see
	// RoundObserver). Nil — the default — is the zero-cost fast path:
	// no callback, no inbox high-water scan, no extra allocation.
	Observer RoundObserver
	// Faults, when non-nil, attaches a deterministic fault-injection
	// schedule (see Faults). Nil — the default — keeps the unperturbed
	// delivery loop with no per-message decision.
	Faults *Faults

	// done[i] mirrors progs[i].Done() after the node's latest step;
	// doneCount is the number of true entries. Maintained inside the
	// round loop so termination needs no O(n) rescan per round.
	done      []bool
	doneCount atomic.Int64

	// ran guards against a second Run: progs hold terminal protocol
	// state after a run, so rerunning them would report a bogus 0-round
	// success.
	ran bool

	// crashAt[i] is the step at which node i fail-stops (-1 = never);
	// dead[i] flips once that step is reached. Both nil without a crash
	// schedule.
	crashAt []int
	dead    []bool

	// failMu/failErr capture the first node-program panic of the run;
	// worker goroutines recover so a panicking node cannot deadlock the
	// pool, and Run surfaces the failure as an error.
	failMu  sync.Mutex
	failErr error
}

// NewEngine creates an engine running factory(v) on every node v of g.
func NewEngine(g *graph.Graph, factory func(v graph.ID) Protocol) *Engine {
	return NewEngineIndexed(graph.NewIndexed(g), factory)
}

// NewEngineIndexed creates an engine on an existing snapshot, letting
// callers that run many protocols over the same graph (e.g. iterated
// pruning) pay the snapshot cost once.
func NewEngineIndexed(ix *graph.Indexed, factory func(v graph.ID) Protocol) *Engine {
	e := &Engine{
		ix:    ix,
		progs: make([]Protocol, ix.NumNodes()),
		Mode:  DefaultMode,
	}
	for i, v := range ix.IDs() {
		e.progs[i] = factory(v)
	}
	return e
}

// Run executes the protocol until every node is Done, or fails after
// maxRounds rounds. It returns the number of rounds executed and each
// node's output. An engine runs at most once: the protocols hold
// terminal state afterwards, so a second Run returns an error instead of
// a bogus 0-round success.
func (e *Engine) Run(maxRounds int) (*Result, error) {
	if e.ran {
		return nil, fmt.Errorf("dist: Engine.Run called twice; protocol state is terminal after a run — build a new engine")
	}
	e.ran = true
	if err := e.initFaults(); err != nil {
		return nil, err
	}
	n := e.ix.NumNodes()
	ctxs := make([]Context, n)
	for i := range ctxs {
		ctxs[i] = Context{
			id:     e.ix.IDOf(i),
			idx:    int32(i),
			nbrIDs: e.ix.NeighborIDs(i),
			nbrIdx: e.ix.NeighborIndices(i),
			ix:     e.ix,
		}
	}
	// cur/next are per-node inboxes indexed by node index, double-buffered
	// so the backing arrays are reused across rounds.
	cur := make([][]Message, n)
	next := make([][]Message, n)

	obs := e.Observer
	e.done = make([]bool, n)
	e.doneCount.Store(0)
	if obs != nil {
		obs.RunStart(n, e.ix.NumEdges())
	}

	res := &Result{}
	crashed := e.markCrashes(0)
	shards := e.step(obs, 0, func(i int) {
		e.progs[i].Init(&ctxs[i])
	})
	if err := e.failure(); err != nil {
		return nil, err
	}
	e.collect(obs, 0, shards, ctxs, next, res, crashed)

	for e.doneCount.Load() != int64(n) {
		if v, r, blocked := e.crashBlocked(); blocked {
			return nil, fmt.Errorf("dist: node %d crashed at round %d and cannot finish; all surviving nodes are done", v, r)
		}
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("protocol did not terminate within %d rounds", maxRounds)
		}
		res.Rounds++
		cur, next = next, cur
		crashed = e.markCrashes(res.Rounds)
		shards = e.step(obs, res.Rounds, func(i int) {
			e.progs[i].Round(&ctxs[i], cur[i])
		})
		if err := e.failure(); err != nil {
			return nil, err
		}
		e.collect(obs, res.Rounds, shards, ctxs, next, res, crashed)
	}

	res.Outputs = make(map[graph.ID]any, n)
	for i, v := range e.ix.IDs() {
		res.Outputs[v] = e.progs[i].Output()
	}
	if obs != nil {
		obs.RunEnd(res.Rounds)
	}
	return res, nil
}

// step runs fn for every node index according to the engine mode,
// tracking per-node Done transitions so the run loop never rescans, and
// returns the worker-shard count it actually used (1 sequential, 0
// per-node) so RoundEnd reports the same figure RoundStart announced
// even if GOMAXPROCS changes mid-run. Shards are contiguous index
// ranges, so the work partition is deterministic; node programs touch
// only their own state and context, so any schedule is race-free and
// equivalent. The observer's round/shard hooks bracket the work
// (per-node mode reports zero shards: with one goroutine per node there
// is no shard boundary worth timing).
func (e *Engine) step(obs RoundObserver, round int, fn func(i int)) int {
	n := len(e.progs)
	mode := e.Mode
	if e.Sequential {
		mode = ModeSequential
	}
	switch mode {
	case ModeSequential:
		if obs != nil {
			obs.RoundStart(round, 1)
		}
		e.runShard(obs, 0, 0, n, fn)
		return 1
	case ModePerNode:
		if obs != nil {
			obs.RoundStart(round, 0)
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				if err := e.runRange(i, i+1, fn); err != nil {
					e.recordFailure(err)
				}
			}(i)
		}
		wg.Wait()
		return 0
	default: // ModePooled
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers <= 1 {
			if obs != nil {
				obs.RoundStart(round, 1)
			}
			e.runShard(obs, 0, 0, n, fn)
			return 1
		}
		chunk := (n + workers - 1) / workers
		shards := (n + chunk - 1) / chunk
		if obs != nil {
			obs.RoundStart(round, shards)
		}
		var wg sync.WaitGroup
		shard := 0
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(shard, lo, hi int) {
				defer wg.Done()
				e.runShard(obs, shard, lo, hi, fn)
			}(shard, lo, hi)
			shard++
		}
		wg.Wait()
		return shards
	}
}

// runShard executes one contiguous index range on the calling goroutine,
// bracketing it with the observer's shard hooks and capturing any
// node-program failure.
func (e *Engine) runShard(obs RoundObserver, shard, lo, hi int, fn func(i int)) {
	if obs != nil {
		obs.ShardStart(shard)
	}
	if err := e.runRange(lo, hi, fn); err != nil {
		e.recordFailure(err)
	}
	if obs != nil {
		obs.ShardEnd(shard)
	}
}

// runRange executes fn for each node index in [lo, hi), skipping crashed
// nodes, folding the per-node Done checks into the loop so they run in
// parallel with the round work, and publishing the range's done-delta
// with a single atomic add (flushed even on panic, so partial progress
// stays counted). A panicking node program is recovered into an error:
// the worker must return normally or the pool's WaitGroup would deadlock
// the run.
func (e *Engine) runRange(lo, hi int, fn func(i int)) (err error) {
	delta := 0
	defer func() {
		if delta != 0 {
			e.doneCount.Add(int64(delta))
		}
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: node program panicked: %v", r)
		}
	}()
	for i := lo; i < hi; i++ {
		if e.dead != nil && e.dead[i] {
			continue
		}
		fn(i)
		if d := e.progs[i].Done(); d != e.done[i] {
			e.done[i] = d
			if d {
				delta++
			} else {
				delta--
			}
		}
	}
	return nil
}

// recordFailure keeps the first node-program failure of the run; Run
// checks for one after every step.
func (e *Engine) recordFailure(err error) {
	e.failMu.Lock()
	if e.failErr == nil {
		e.failErr = err
	}
	e.failMu.Unlock()
}

// failure returns the captured node-program failure, if any.
func (e *Engine) failure() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

// collect moves queued messages into next-round inboxes. Walking senders
// in increasing node index (= increasing ID) order delivers every inbox
// already sorted by (sender, queue position) — the order the legacy
// engine produced with a global stable sort — without sorting. Inbox
// slices are truncated and refilled in place, so steady-state rounds
// allocate nothing. With an observer attached it also reports the
// round's message/volume deltas and the inbox high-water mark; shards is
// the count step actually used, so RoundStart and RoundEnd always agree.
//
// With a fault schedule attached, delivery runs on this single driving
// goroutine in the same (sender, queue position) order, so each
// message's fault coordinates — and hence the whole schedule — are
// identical under every ExecMode. Without one, the loop is the original
// branch-free path.
func (e *Engine) collect(obs RoundObserver, round, shards int, ctxs []Context, next [][]Message, res *Result, crashed []graph.ID) {
	for i := range next {
		next[i] = next[i][:0]
	}
	msgs, vol := 0, 0
	var fs FaultStats
	faulty := e.Faults.active()
	if !faulty {
		for i := range ctxs {
			c := &ctxs[i]
			for k, msg := range c.outbox {
				to := c.targets[k]
				next[to] = append(next[to], msg)
				msgs++
				if s, ok := msg.Payload.(Sizer); ok {
					vol += s.PayloadSize()
				} else {
					vol++
				}
			}
			c.outbox = c.outbox[:0]
			c.targets = c.targets[:0]
		}
	} else {
		fs.Round = round
		fs.Crashed = crashed
		plan := e.Faults.Plan
		perturb := plan.Perturbs()
		for i := range ctxs {
			c := &ctxs[i]
			for k, msg := range c.outbox {
				to := c.targets[k]
				// Messages queued in step round are delivered at step
				// round+1; a receiver that crashes at or before that step
				// never reads them.
				if e.crashAt != nil && e.crashAt[to] >= 0 && e.crashAt[to] <= round+1 {
					fs.DeadLetters++
					continue
				}
				var act fault.Action
				if perturb {
					act = plan.Decide(round, i, k)
				}
				if act.Drop {
					fs.Dropped++
					continue
				}
				if act.Delay > fs.Stall {
					fs.Stall = act.Delay
				}
				next[to] = append(next[to], msg)
				msgs++
				sz := 1
				if s, ok := msg.Payload.(Sizer); ok {
					sz = s.PayloadSize()
				}
				vol += sz
				if act.Dup {
					fs.Duplicated++
					next[to] = append(next[to], msg)
					msgs++
					vol += sz
				}
			}
			c.outbox = c.outbox[:0]
			c.targets = c.targets[:0]
		}
	}
	res.Messages += msgs
	res.Volume += vol
	if faulty && fs.any() {
		res.Dropped += fs.Dropped
		res.Duplicated += fs.Duplicated
		res.DeadLetters += fs.DeadLetters
		res.Stall += fs.Stall
		if fo, ok := obs.(FaultObserver); ok {
			fo.FaultRound(fs)
		}
	}
	if obs != nil {
		maxInbox := 0
		for i := range next {
			if len(next[i]) > maxInbox {
				maxInbox = len(next[i])
			}
		}
		obs.RoundEnd(RoundStats{
			Round:    round,
			Nodes:    len(ctxs),
			Shards:   shards,
			Messages: msgs,
			Volume:   vol,
			Done:     int(e.doneCount.Load()),
			MaxInbox: maxInbox,
		})
	}
}
