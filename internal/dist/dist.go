// Package dist simulates the LOCAL model of distributed computation
// (paper Section 1): the input graph is the communication network, every
// node hosts a state machine, and execution proceeds in synchronous
// rounds. In each round a node may perform unbounded local computation and
// send an unbounded message to each neighbor; the cost of an algorithm is
// the number of communication rounds.
//
// The engine runs on a frozen graph.Indexed snapshot: nodes are dense
// indices, inboxes are per-node slices reused across rounds, and messages
// are delivered by walking senders in index order, which yields the
// deterministic (sender, queue position) delivery order without sorting.
// Per-round work is sharded over a bounded worker pool sized by
// GOMAXPROCS; node programs execute genuinely concurrently but interact
// only through messages delivered at round boundaries, so every schedule
// produces identical results. The legacy goroutine-per-node schedule and
// a sequential schedule are kept for determinism cross-checks and
// debugging.
package dist

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Message is a point-to-point message delivered at the next round
// boundary. Payloads must be treated as immutable by both sender and
// receiver.
type Message struct {
	From    graph.ID
	Payload any
}

// Protocol is the per-node state machine of a LOCAL algorithm. The engine
// calls Init once before the first round and Round once per communication
// round until every node reports Done.
type Protocol interface {
	// Init runs before round 1; the node may send its first messages.
	Init(ctx *Context)
	// Round runs once per communication round with the messages sent to
	// this node in the previous round. The inbox slice is only valid for
	// the duration of the call: the engine reuses its backing array.
	Round(ctx *Context, inbox []Message)
	// Done reports whether this node's output is final. Done nodes keep
	// receiving Round calls (LOCAL nodes still relay messages); the run
	// stops when all nodes are simultaneously Done.
	Done() bool
	// Output returns the node's final output.
	Output() any
}

// ExecMode selects how the engine schedules per-node work within a round.
// Every mode produces identical results; they differ only in scheduling.
type ExecMode int

const (
	// ModePooled shards the node range over a bounded worker pool sized
	// by GOMAXPROCS. This is the default: it scales to 10^5-node graphs
	// without paying one goroutine per node per round.
	ModePooled ExecMode = iota
	// ModePerNode launches one goroutine per node per round (the legacy
	// schedule, kept for determinism cross-checks).
	ModePerNode
	// ModeSequential runs all nodes on the calling goroutine (useful
	// under -race or for bisecting nondeterminism suspicions).
	ModeSequential
)

// DefaultMode is the schedule NewEngine assigns to new engines. The
// determinism cross-check tests override it temporarily; production code
// leaves it alone.
var DefaultMode = ModePooled

// Context is a node's interface to the network during Init/Round calls.
type Context struct {
	id      graph.ID
	nbrIDs  []graph.ID
	nbrIdx  []int32
	ix      *graph.Indexed
	outbox  []Message
	targets []int32
}

// ID returns the node's unique identifier.
func (c *Context) ID() graph.ID { return c.id }

// Neighbors returns the node's neighbors in increasing ID order. The
// slice is shared with the engine's graph snapshot: treat it as
// read-only.
func (c *Context) Neighbors() []graph.ID { return c.nbrIDs }

// Degree returns the number of neighbors.
func (c *Context) Degree() int { return len(c.nbrIDs) }

// Send queues a message to node to, delivered next round.
func (c *Context) Send(to graph.ID, payload any) {
	j, ok := c.ix.IndexOf(to)
	if !ok {
		panic(fmt.Sprintf("dist: node %d sent to %d, which is not a node of the network", c.id, to))
	}
	c.outbox = append(c.outbox, Message{From: c.id, Payload: payload})
	c.targets = append(c.targets, int32(j))
}

// Broadcast queues the same payload to every neighbor.
func (c *Context) Broadcast(payload any) {
	m := Message{From: c.id, Payload: payload}
	for _, j := range c.nbrIdx {
		c.outbox = append(c.outbox, m)
		c.targets = append(c.targets, j)
	}
}

// Sizer lets payload types report a size in abstract units (e.g. record
// counts) for bandwidth accounting; payloads without it count as 1 unit.
type Sizer interface {
	PayloadSize() int
}

// Result summarizes a finished run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Outputs maps each node to its protocol output.
	Outputs map[graph.ID]any
	// Messages counts point-to-point messages sent over the whole run.
	Messages int
	// Volume sums payload sizes (Sizer units; 1 per message otherwise).
	// LOCAL allows unbounded messages — this measures what the protocols
	// actually use.
	Volume int
}

// Engine executes a Protocol instance on every node of a graph.
type Engine struct {
	ix    *graph.Indexed
	progs []Protocol // by node index
	// Mode selects the per-round schedule; all modes give identical
	// results.
	Mode ExecMode
	// Sequential forces ModeSequential regardless of Mode (legacy knob,
	// kept for existing callers).
	Sequential bool
}

// NewEngine creates an engine running factory(v) on every node v of g.
func NewEngine(g *graph.Graph, factory func(v graph.ID) Protocol) *Engine {
	return NewEngineIndexed(graph.NewIndexed(g), factory)
}

// NewEngineIndexed creates an engine on an existing snapshot, letting
// callers that run many protocols over the same graph (e.g. iterated
// pruning) pay the snapshot cost once.
func NewEngineIndexed(ix *graph.Indexed, factory func(v graph.ID) Protocol) *Engine {
	e := &Engine{
		ix:    ix,
		progs: make([]Protocol, ix.NumNodes()),
		Mode:  DefaultMode,
	}
	for i, v := range ix.IDs() {
		e.progs[i] = factory(v)
	}
	return e
}

// Run executes the protocol until every node is Done, or fails after
// maxRounds rounds. It returns the number of rounds executed and each
// node's output.
func (e *Engine) Run(maxRounds int) (*Result, error) {
	n := e.ix.NumNodes()
	ctxs := make([]Context, n)
	for i := range ctxs {
		ctxs[i] = Context{
			id:     e.ix.IDOf(i),
			nbrIDs: e.ix.NeighborIDs(i),
			nbrIdx: e.ix.NeighborIndices(i),
			ix:     e.ix,
		}
	}
	// cur/next are per-node inboxes indexed by node index, double-buffered
	// so the backing arrays are reused across rounds.
	cur := make([][]Message, n)
	next := make([][]Message, n)

	res := &Result{}
	e.forEachNode(func(i int) {
		e.progs[i].Init(&ctxs[i])
	})
	e.collect(ctxs, next, res)

	for !e.allDone() {
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("protocol did not terminate within %d rounds", maxRounds)
		}
		res.Rounds++
		cur, next = next, cur
		e.forEachNode(func(i int) {
			e.progs[i].Round(&ctxs[i], cur[i])
		})
		e.collect(ctxs, next, res)
	}

	res.Outputs = make(map[graph.ID]any, n)
	for i, v := range e.ix.IDs() {
		res.Outputs[v] = e.progs[i].Output()
	}
	return res, nil
}

// forEachNode runs fn for every node index according to the engine mode.
// Shards are contiguous index ranges, so the work partition is
// deterministic; node programs touch only their own state and context, so
// any schedule is race-free and equivalent.
func (e *Engine) forEachNode(fn func(i int)) {
	n := len(e.progs)
	mode := e.Mode
	if e.Sequential {
		mode = ModeSequential
	}
	switch mode {
	case ModeSequential:
		for i := 0; i < n; i++ {
			fn(i)
		}
	case ModePerNode:
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				fn(i)
			}(i)
		}
		wg.Wait()
	default: // ModePooled
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers <= 1 {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
}

// collect moves queued messages into next-round inboxes. Walking senders
// in increasing node index (= increasing ID) order delivers every inbox
// already sorted by (sender, queue position) — the order the legacy
// engine produced with a global stable sort — without sorting. Inbox
// slices are truncated and refilled in place, so steady-state rounds
// allocate nothing.
func (e *Engine) collect(ctxs []Context, next [][]Message, res *Result) {
	for i := range next {
		next[i] = next[i][:0]
	}
	for i := range ctxs {
		c := &ctxs[i]
		for k, msg := range c.outbox {
			to := c.targets[k]
			next[to] = append(next[to], msg)
			res.Messages++
			if s, ok := msg.Payload.(Sizer); ok {
				res.Volume += s.PayloadSize()
			} else {
				res.Volume++
			}
		}
		c.outbox = c.outbox[:0]
		c.targets = c.targets[:0]
	}
}

func (e *Engine) allDone() bool {
	for _, p := range e.progs {
		if !p.Done() {
			return false
		}
	}
	return true
}
