// Package dist simulates the LOCAL model of distributed computation
// (paper Section 1): the input graph is the communication network, every
// node hosts a state machine, and execution proceeds in synchronous
// rounds. In each round a node may perform unbounded local computation and
// send an unbounded message to each neighbor; the cost of an algorithm is
// the number of communication rounds.
//
// The engine runs one goroutine per node per round with a barrier between
// rounds, so node programs execute genuinely concurrently; determinism is
// preserved because nodes interact only through messages delivered at
// round boundaries. A sequential mode exists for debugging.
package dist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Message is a point-to-point message delivered at the next round
// boundary. Payloads must be treated as immutable by both sender and
// receiver.
type Message struct {
	From    graph.ID
	Payload any
}

// Protocol is the per-node state machine of a LOCAL algorithm. The engine
// calls Init once before the first round and Round once per communication
// round until every node reports Done.
type Protocol interface {
	// Init runs before round 1; the node may send its first messages.
	Init(ctx *Context)
	// Round runs once per communication round with the messages sent to
	// this node in the previous round.
	Round(ctx *Context, inbox []Message)
	// Done reports whether this node's output is final. Done nodes keep
	// receiving Round calls (LOCAL nodes still relay messages); the run
	// stops when all nodes are simultaneously Done.
	Done() bool
	// Output returns the node's final output.
	Output() any
}

// Context is a node's interface to the network during Init/Round calls.
type Context struct {
	id        graph.ID
	neighbors []graph.ID
	outbox    []Message
	targets   []graph.ID
}

// ID returns the node's unique identifier.
func (c *Context) ID() graph.ID { return c.id }

// Neighbors returns the node's neighbors in increasing ID order.
func (c *Context) Neighbors() []graph.ID { return c.neighbors }

// Degree returns the number of neighbors.
func (c *Context) Degree() int { return len(c.neighbors) }

// Send queues a message to neighbor to, delivered next round.
func (c *Context) Send(to graph.ID, payload any) {
	c.outbox = append(c.outbox, Message{From: c.id, Payload: payload})
	c.targets = append(c.targets, to)
}

// Broadcast queues the same payload to every neighbor.
func (c *Context) Broadcast(payload any) {
	for _, nb := range c.neighbors {
		c.Send(nb, payload)
	}
}

// Sizer lets payload types report a size in abstract units (e.g. record
// counts) for bandwidth accounting; payloads without it count as 1 unit.
type Sizer interface {
	PayloadSize() int
}

// Result summarizes a finished run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Outputs maps each node to its protocol output.
	Outputs map[graph.ID]any
	// Messages counts point-to-point messages sent over the whole run.
	Messages int
	// Volume sums payload sizes (Sizer units; 1 per message otherwise).
	// LOCAL allows unbounded messages — this measures what the protocols
	// actually use.
	Volume int
}

// Engine executes a Protocol instance on every node of a graph.
type Engine struct {
	g     *graph.Graph
	nodes []graph.ID
	progs map[graph.ID]Protocol
	// Sequential disables per-round goroutines (useful under -race or for
	// bisecting nondeterminism suspicions).
	Sequential bool
}

// NewEngine creates an engine running factory(v) on every node v of g.
func NewEngine(g *graph.Graph, factory func(v graph.ID) Protocol) *Engine {
	e := &Engine{
		g:     g,
		nodes: g.Nodes(),
		progs: make(map[graph.ID]Protocol, g.NumNodes()),
	}
	for _, v := range e.nodes {
		e.progs[v] = factory(v)
	}
	return e
}

// Run executes the protocol until every node is Done, or fails after
// maxRounds rounds. It returns the number of rounds executed and each
// node's output.
func (e *Engine) Run(maxRounds int) (*Result, error) {
	inboxes := make(map[graph.ID][]Message, len(e.nodes))
	ctxs := make(map[graph.ID]*Context, len(e.nodes))
	for _, v := range e.nodes {
		ctxs[v] = &Context{id: v, neighbors: e.g.Neighbors(v)}
	}

	res := &Result{}
	e.parallel(func(v graph.ID) {
		e.progs[v].Init(ctxs[v])
	})
	next := e.collectOutboxes(ctxs, res)

	for !e.allDone() {
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("protocol did not terminate within %d rounds", maxRounds)
		}
		res.Rounds++
		inboxes = next
		e.parallel(func(v graph.ID) {
			e.progs[v].Round(ctxs[v], inboxes[v])
		})
		next = e.collectOutboxes(ctxs, res)
	}

	res.Outputs = make(map[graph.ID]any, len(e.nodes))
	for _, v := range e.nodes {
		res.Outputs[v] = e.progs[v].Output()
	}
	return res, nil
}

// parallel runs fn for every node, concurrently unless Sequential.
func (e *Engine) parallel(fn func(v graph.ID)) {
	if e.Sequential {
		for _, v := range e.nodes {
			fn(v)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(e.nodes))
	for _, v := range e.nodes {
		go func(v graph.ID) {
			defer wg.Done()
			fn(v)
		}(v)
	}
	wg.Wait()
}

// collectOutboxes moves queued messages into next-round inboxes,
// deterministically ordered by (sender, queue position).
func (e *Engine) collectOutboxes(ctxs map[graph.ID]*Context, res *Result) map[graph.ID][]Message {
	next := make(map[graph.ID][]Message)
	for _, v := range e.nodes {
		ctx := ctxs[v]
		for i, msg := range ctx.outbox {
			to := ctx.targets[i]
			next[to] = append(next[to], msg)
			res.Messages++
			if s, ok := msg.Payload.(Sizer); ok {
				res.Volume += s.PayloadSize()
			} else {
				res.Volume++
			}
		}
		ctx.outbox = ctx.outbox[:0]
		ctx.targets = ctx.targets[:0]
	}
	for to := range next {
		msgs := next[to]
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
	}
	return next
}

func (e *Engine) allDone() bool {
	for _, v := range e.nodes {
		if !e.progs[v].Done() {
			return false
		}
	}
	return true
}
