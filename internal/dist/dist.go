// Package dist simulates the LOCAL model of distributed computation
// (paper Section 1): the input graph is the communication network, every
// node hosts a state machine, and execution proceeds in synchronous
// rounds. In each round a node may perform unbounded local computation and
// send an unbounded message to each neighbor; the cost of an algorithm is
// the number of communication rounds.
//
// The engine runs on a frozen graph.Indexed snapshot: nodes are dense
// indices, inboxes are per-node slices reused across rounds, and messages
// are delivered by walking senders in index order, which yields the
// deterministic (sender, queue position) delivery order without sorting.
// Per-round work is sharded over a bounded worker pool sized by
// GOMAXPROCS; node programs execute genuinely concurrently but interact
// only through messages delivered at round boundaries, so every schedule
// produces identical results. The legacy goroutine-per-node schedule and
// a sequential schedule are kept for determinism cross-checks and
// debugging.
package dist

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Message is a point-to-point message delivered at the next round
// boundary. Payloads must be treated as immutable by both sender and
// receiver.
type Message struct {
	From    graph.ID
	Payload any
}

// Protocol is the per-node state machine of a LOCAL algorithm. The engine
// calls Init once before the first round and Round once per communication
// round until every node reports Done.
type Protocol interface {
	// Init runs before round 1; the node may send its first messages.
	Init(ctx *Context)
	// Round runs once per communication round with the messages sent to
	// this node in the previous round. The inbox slice is only valid for
	// the duration of the call: the engine reuses its backing array.
	Round(ctx *Context, inbox []Message)
	// Done reports whether this node's output is final. Done nodes keep
	// receiving Round calls (LOCAL nodes still relay messages); the run
	// stops when all nodes are simultaneously Done.
	Done() bool
	// Output returns the node's final output.
	Output() any
}

// Quiescent marks Protocol implementations whose Round call with an
// empty inbox is guaranteed to be a no-op: no state change, no sends.
// That holds for choreographies that drain every enabled action at the
// end of each step (so progress is driven entirely by received
// messages). When every node's protocol implements it, the engine skips
// the Round call for nodes with empty inboxes, making idle rounds cost
// O(active nodes) instead of O(n) protocol invocations — with outputs,
// message schedules, and round counts identical by construction.
type Quiescent interface {
	QuiescentRound()
}

// ExecMode selects how the engine schedules per-node work within a round.
// Every mode produces identical results; they differ only in scheduling.
type ExecMode int

const (
	// ModePooled shards the node range over a bounded worker pool sized
	// by GOMAXPROCS. This is the default: it scales to 10^5-node graphs
	// without paying one goroutine per node per round.
	ModePooled ExecMode = iota
	// ModePerNode launches one goroutine per node per round (the legacy
	// schedule, kept for determinism cross-checks).
	ModePerNode
	// ModeSequential runs all nodes on the calling goroutine (useful
	// under -race or for bisecting nondeterminism suspicions).
	ModeSequential
)

// DefaultMode is the schedule NewEngine assigns to new engines. The
// determinism cross-check tests override it temporarily; production code
// leaves it alone.
var DefaultMode = ModePooled

// RoundStats is the per-round summary handed to a RoundObserver at each
// round boundary. Every field except Shards is a pure function of
// (graph, protocol) and therefore identical across all ExecModes; Shards
// describes the schedule that happened to run the round.
type RoundStats struct {
	// Round is the step index: 0 for the Init step, then the 1-based
	// communication round.
	Round int
	// Nodes is the network size.
	Nodes int
	// Shards is the number of worker shards the schedule used for this
	// round (1 in sequential mode, 0 in per-node mode, where shard
	// boundaries do not exist).
	Shards int
	// Messages counts the point-to-point messages queued during this
	// round (delivered at the next round boundary).
	Messages int
	// Volume sums the payload sizes of those messages (Sizer units;
	// 1 per message otherwise).
	Volume int
	// Done is the number of nodes reporting Done after this round.
	Done int
	// MaxInbox is the largest single next-round inbox fill — the
	// inbox-capacity high-water mark of this round's delivery.
	MaxInbox int
}

// RoundObserver receives engine lifecycle events at round boundaries.
// The engine itself never reads the wall clock (the LOCAL model measures
// time in rounds, and the chordalvet wallclock invariant enforces it);
// an observer that wants wall times stamps these callbacks itself — see
// internal/obs for the canonical implementation.
//
// Concurrency contract: RunStart, RoundStart, RoundEnd, and RunEnd are
// called from the goroutine driving Engine.Run. ShardStart/ShardEnd are
// called from worker goroutines — calls with distinct shard indices may
// be concurrent, and each shard index is used by exactly one goroutine
// per round. Observers are never invoked when the engine's Observer
// field is nil, and a nil observer adds no per-node work to the round
// loop.
type RoundObserver interface {
	// RunStart fires once before the Init step.
	RunStart(nodes, edges int)
	// RoundStart fires before the round's node programs run. shards is
	// the worker-shard count of RoundStats.Shards.
	RoundStart(round, shards int)
	// ShardStart/ShardEnd bracket one worker shard's per-node work
	// within the round (pooled and sequential schedules only).
	ShardStart(shard int)
	ShardEnd(shard int)
	// RoundEnd fires after the round's messages are delivered.
	RoundEnd(stats RoundStats)
	// RunEnd fires after the final round, with the total round count.
	RunEnd(rounds int)
}

// PhaseSetter is optionally implemented by observers that label trace
// events with caller-defined phases (e.g. "prune-i03", "correction").
// Code that drives several engine runs under one observer sets the phase
// between runs; the engine itself never calls it.
type PhaseSetter interface {
	SetPhase(name string)
}

// KernelObserver is optionally implemented by RoundObservers that want
// per-worker spans from the sharded compute kernels running *outside*
// the round engine: the pruning decide kernel, the per-path coloring and
// MIS-component stages, the correction gate-set setup, and the peeling
// path measurement (internal/peel declares a structurally identical
// interface so it does not have to import this package; one
// implementation satisfies both). Kernels type-assert their
// RoundObserver — a nil or non-implementing observer keeps the
// documented zero-cost fast path, and the assertion itself never
// allocates, so the hotalloc budgets of the kernels are unaffected.
//
// Like RoundObserver, the kernel never reads the wall clock; the
// observer stamps the callbacks itself. items is the number of work
// items (centers, paths, components, groups) the shard processed, so
// imbalance ratios can separate skewed schedules from skewed items.
//
// Concurrency contract: KernelStart and KernelEnd are called from the
// goroutine driving the kernel; KernelShardStart/KernelShardEnd are
// called from worker goroutines — calls with distinct shard indices may
// be concurrent, each shard index used by exactly one goroutine per
// launch, and the kernel's WaitGroup orders every shard callback before
// KernelEnd. Kernel launches never nest under one observer.
type KernelObserver interface {
	// KernelStart fires once per launch, before any shard runs.
	KernelStart(kernel string, shards int)
	// KernelShardStart/KernelShardEnd bracket one worker shard's work.
	KernelShardStart(shard int)
	KernelShardEnd(shard, items int)
	// KernelEnd fires after every shard has finished.
	KernelEnd()
}

// Context is a node's interface to the network during Init/Round calls.
// The outbox stores one entry per Send or Broadcast call: targets[k] is
// the receiver's index for a Send, or broadcastTarget for a Broadcast,
// which collect expands over the neighbor row at delivery. Queue
// positions — the fault schedule's coordinates — are counted over the
// expanded sequence, so the compressed representation is invisible to
// fault plans.
type Context struct {
	id      graph.ID
	idx     int32 // own dense index in the snapshot
	nbrIDs  []graph.ID
	nbrIdx  []int32
	ix      *graph.Indexed
	round   *int32 // engine's current step, shared by all contexts
	outbox  []Message
	targets []int32
}

// broadcastTarget marks an outbox entry addressed to every neighbor.
const broadcastTarget int32 = -1

// ID returns the node's unique identifier.
func (c *Context) ID() graph.ID { return c.id }

// Round returns the current step index: 0 during Init, then the 1-based
// communication round. Rounds are synchronous, so every node observes
// the same value; protocols use it to anchor absolute-expiry flooding
// deadlines without keeping a per-node counter (which would drift for
// Quiescent protocols whose idle Round calls are skipped).
func (c *Context) Round() int { return int(*c.round) }

// Neighbors returns the node's neighbors in increasing ID order. The
// slice is shared with the engine's graph snapshot: treat it as
// read-only.
func (c *Context) Neighbors() []graph.ID { return c.nbrIDs }

// Degree returns the number of neighbors.
func (c *Context) Degree() int { return len(c.nbrIDs) }

// Send queues a message to node to, delivered next round. The hot path —
// sending to a neighbor, the only kind of send the LOCAL model grants for
// free — resolves the target index by binary search over the node's own
// sorted neighbor row instead of the snapshot-wide ID→index map; self
// sends use the precomputed own index; only sends to distant nodes fall
// back to the map lookup.
func (c *Context) Send(to graph.ID, payload any) {
	var j int32
	if p, ok := slices.BinarySearch(c.nbrIDs, to); ok {
		j = c.nbrIdx[p]
	} else if to == c.id {
		j = c.idx
	} else {
		ji, ok := c.ix.IndexOf(to)
		if !ok {
			panic(fmt.Sprintf("dist: node %d sent to %d, which is not a node of the network", c.id, to))
		}
		j = int32(ji)
	}
	c.outbox = append(c.outbox, Message{From: c.id, Payload: payload})
	c.targets = append(c.targets, j)
}

// Broadcast queues the same payload to every neighbor. It stores a
// single outbox entry; delivery expands it over the neighbor row in
// order, exactly as the equivalent sequence of Sends would.
func (c *Context) Broadcast(payload any) {
	if len(c.nbrIdx) == 0 {
		return
	}
	c.outbox = append(c.outbox, Message{From: c.id, Payload: payload})
	c.targets = append(c.targets, broadcastTarget)
}

// Sizer lets payload types report a size in abstract units (e.g. record
// counts) for bandwidth accounting; payloads without it count as 1 unit.
type Sizer interface {
	PayloadSize() int
}

// Result summarizes a finished run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Outputs maps each node to its protocol output.
	Outputs map[graph.ID]any
	// Messages counts point-to-point messages sent over the whole run.
	Messages int
	// Volume sums payload sizes (Sizer units; 1 per message otherwise).
	// LOCAL allows unbounded messages — this measures what the protocols
	// actually use.
	Volume int

	// Fault accounting (all zero when Engine.Faults is nil): messages
	// dropped / duplicated / dead-lettered by the schedule, and the total
	// synchronizer stall (sum over rounds of the max link delay).
	Dropped     int
	Duplicated  int
	DeadLetters int
	Stall       int
}

// Engine executes a Protocol instance on every node of a graph.
type Engine struct {
	ix    *graph.Indexed
	progs []Protocol // by node index
	// Mode selects the per-round schedule; all modes give identical
	// results.
	Mode ExecMode
	// Sequential forces ModeSequential regardless of Mode (legacy knob,
	// kept for existing callers).
	Sequential bool
	// Observer, when non-nil, receives per-round events (see
	// RoundObserver). Nil — the default — is the zero-cost fast path:
	// no callback, no inbox high-water scan, no extra allocation.
	Observer RoundObserver
	// Faults, when non-nil, attaches a deterministic fault-injection
	// schedule (see Faults). Nil — the default — keeps the unperturbed
	// delivery loop with no per-message decision.
	Faults *Faults
	// SkipOutputs, when true, leaves Result.Outputs nil. Callers that
	// keep their own by-index references to the protocols (the
	// index-space flood collection) set it to skip the n-entry map build.
	SkipOutputs bool

	// done[i] mirrors progs[i].Done() after the node's latest step;
	// doneCount is the number of true entries. Maintained inside the
	// round loop so termination needs no O(n) rescan per round.
	done      []bool
	doneCount atomic.Int64

	// ran guards against a second Run: progs hold terminal protocol
	// state after a run, so rerunning them would report a bogus 0-round
	// success.
	ran bool

	// crashAt[i] is the step at which node i fail-stops (-1 = never);
	// dead[i] flips once that step is reached. Both nil without a crash
	// schedule.
	crashAt []int
	dead    []bool

	// deliver is collect's per-receiver message-count scratch, used to
	// reserve each inbox exactly once per round instead of growing it by
	// repeated append-doubling.
	deliver []int32

	// quiescent is true when every node's protocol implements Quiescent;
	// curRound is the step index shared with the contexts; skipInbox,
	// when non-nil, is the current round's inbox buffer — runRange
	// passes over nodes whose inbox is empty; touched is collect's
	// scratch list of this round's receivers.
	quiescent bool
	curRound  int32
	skipInbox [][]Message
	touched   []int32

	// inboxSlab holds the fault-free path's inbox backing arrays: each
	// round's inboxes are carved out of one slab sized by the counting
	// pass, double-buffered in step with cur/next so a slab is never
	// rewritten while its slices are being consumed.
	inboxSlab [2][]Message
	slabIdx   int

	// failMu/failErr capture the first node-program panic of the run;
	// worker goroutines recover so a panicking node cannot deadlock the
	// pool, and Run surfaces the failure as an error.
	failMu  sync.Mutex
	failErr error
}

// NewEngine creates an engine running factory(v) on every node v of g.
func NewEngine(g *graph.Graph, factory func(v graph.ID) Protocol) *Engine {
	return NewEngineIndexed(graph.NewIndexed(g), factory)
}

// NewEngineIndexed creates an engine on an existing snapshot, letting
// callers that run many protocols over the same graph (e.g. iterated
// pruning) pay the snapshot cost once.
func NewEngineIndexed(ix *graph.Indexed, factory func(v graph.ID) Protocol) *Engine {
	e := &Engine{
		ix:    ix,
		progs: make([]Protocol, ix.NumNodes()),
		Mode:  DefaultMode,
	}
	quiescent := ix.NumNodes() > 0
	for i, v := range ix.IDs() {
		e.progs[i] = factory(v)
		if _, ok := e.progs[i].(Quiescent); !ok {
			quiescent = false
		}
	}
	e.quiescent = quiescent
	return e
}

// Run executes the protocol until every node is Done, or fails after
// maxRounds rounds. It returns the number of rounds executed and each
// node's output. An engine runs at most once: the protocols hold
// terminal state afterwards, so a second Run returns an error instead of
// a bogus 0-round success.
func (e *Engine) Run(maxRounds int) (*Result, error) {
	if e.ran {
		return nil, fmt.Errorf("dist: Engine.Run called twice; protocol state is terminal after a run — build a new engine")
	}
	e.ran = true
	if err := e.initFaults(); err != nil {
		return nil, err
	}
	n := e.ix.NumNodes()
	ctxs := make([]Context, n)
	for i := range ctxs {
		ctxs[i] = Context{
			id:     e.ix.IDOf(i),
			idx:    int32(i),
			nbrIDs: e.ix.NeighborIDs(i),
			nbrIdx: e.ix.NeighborIndices(i),
			ix:     e.ix,
			round:  &e.curRound,
		}
	}
	// cur/next are per-node inboxes indexed by node index, double-buffered
	// so the backing arrays are reused across rounds.
	cur := make([][]Message, n)
	next := make([][]Message, n)

	obs := e.Observer
	e.done = make([]bool, n)
	e.doneCount.Store(0)
	if obs != nil {
		obs.RunStart(n, e.ix.NumEdges())
	}

	res := &Result{}
	e.curRound = 0
	crashed := e.markCrashes(0)
	shards := e.step(obs, 0, func(i int) {
		e.progs[i].Init(&ctxs[i])
	})
	if err := e.failure(); err != nil {
		return nil, err
	}
	e.collect(obs, 0, shards, ctxs, next, res, crashed)

	for e.doneCount.Load() != int64(n) {
		if v, r, blocked := e.crashBlocked(); blocked {
			return nil, fmt.Errorf("dist: node %d crashed at round %d and cannot finish; all surviving nodes are done", v, r)
		}
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("protocol did not terminate within %d rounds", maxRounds)
		}
		res.Rounds++
		cur, next = next, cur
		e.curRound = int32(res.Rounds)
		if e.quiescent {
			e.skipInbox = cur
		}
		crashed = e.markCrashes(res.Rounds)
		shards = e.step(obs, res.Rounds, func(i int) {
			// Truncate the inbox as it is consumed (the slice view handed
			// to Round keeps its own length), so collect never needs an
			// O(n) truncation pass on the fault-free path.
			inbox := cur[i]
			cur[i] = cur[i][:0]
			e.progs[i].Round(&ctxs[i], inbox)
		})
		if err := e.failure(); err != nil {
			return nil, err
		}
		e.collect(obs, res.Rounds, shards, ctxs, next, res, crashed)
	}

	if !e.SkipOutputs {
		res.Outputs = make(map[graph.ID]any, n)
		for i, v := range e.ix.IDs() {
			res.Outputs[v] = e.progs[i].Output()
		}
	}
	if obs != nil {
		obs.RunEnd(res.Rounds)
	}
	return res, nil
}

// step runs fn for every node index according to the engine mode,
// tracking per-node Done transitions so the run loop never rescans, and
// returns the worker-shard count it actually used (1 sequential, 0
// per-node) so RoundEnd reports the same figure RoundStart announced
// even if GOMAXPROCS changes mid-run. Shards are contiguous index
// ranges, so the work partition is deterministic; node programs touch
// only their own state and context, so any schedule is race-free and
// equivalent. The observer's round/shard hooks bracket the work
// (per-node mode reports zero shards: with one goroutine per node there
// is no shard boundary worth timing).
//
//chordalvet:hotpath budget=3 engine round loop: runs once per round per protocol
func (e *Engine) step(obs RoundObserver, round int, fn func(i int)) int {
	n := len(e.progs)
	mode := e.Mode
	if e.Sequential {
		mode = ModeSequential
	}
	switch mode {
	case ModeSequential:
		if obs != nil {
			obs.RoundStart(round, 1)
		}
		e.runShard(obs, 0, 0, n, fn)
		return 1
	case ModePerNode:
		if obs != nil {
			obs.RoundStart(round, 0)
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				if err := e.runRange(i, i+1, fn); err != nil {
					e.recordFailure(err)
				}
			}(i)
		}
		wg.Wait()
		return 0
	default: // ModePooled
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers <= 1 {
			if obs != nil {
				obs.RoundStart(round, 1)
			}
			e.runShard(obs, 0, 0, n, fn)
			return 1
		}
		chunk := (n + workers - 1) / workers
		shards := (n + chunk - 1) / chunk
		if obs != nil {
			obs.RoundStart(round, shards)
		}
		var wg sync.WaitGroup
		shard := 0
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(shard, lo, hi int) {
				defer wg.Done()
				e.runShard(obs, shard, lo, hi, fn)
			}(shard, lo, hi)
			shard++
		}
		wg.Wait()
		return shards
	}
}

// runShard executes one contiguous index range on the calling goroutine,
// bracketing it with the observer's shard hooks and capturing any
// node-program failure.
func (e *Engine) runShard(obs RoundObserver, shard, lo, hi int, fn func(i int)) {
	if obs != nil {
		obs.ShardStart(shard)
	}
	if err := e.runRange(lo, hi, fn); err != nil {
		e.recordFailure(err)
	}
	if obs != nil {
		obs.ShardEnd(shard)
	}
}

// runRange executes fn for each node index in [lo, hi), skipping crashed
// nodes, folding the per-node Done checks into the loop so they run in
// parallel with the round work, and publishing the range's done-delta
// with a single atomic add (flushed even on panic, so partial progress
// stays counted). A panicking node program is recovered into an error:
// the worker must return normally or the pool's WaitGroup would deadlock
// the run.
func (e *Engine) runRange(lo, hi int, fn func(i int)) (err error) {
	delta := 0
	defer func() {
		if delta != 0 {
			e.doneCount.Add(int64(delta))
		}
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: node program panicked: %v", r)
		}
	}()
	for i := lo; i < hi; i++ {
		if e.dead != nil && e.dead[i] {
			continue
		}
		if e.skipInbox != nil && len(e.skipInbox[i]) == 0 {
			// Empty inbox on a Quiescent protocol: the call would be a
			// no-op, so neither state nor Done can change.
			continue
		}
		fn(i)
		if d := e.progs[i].Done(); d != e.done[i] {
			e.done[i] = d
			if d {
				delta++
			} else {
				delta--
			}
		}
	}
	return nil
}

// deliverFaulty routes one expanded message copy through the fault
// schedule: dead-letter to crashed receivers, then the plan's
// drop/delay/dup decision keyed by (round, sender index, queue
// position).
func (e *Engine) deliverFaulty(msg Message, to int32, round, sender, pos, sz int, perturb bool, plan fault.Plan, next [][]Message, fs *FaultStats, msgs, vol *int) {
	// Messages queued in step round are delivered at step round+1; a
	// receiver that crashes at or before that step never reads them.
	if e.crashAt != nil && e.crashAt[to] >= 0 && e.crashAt[to] <= round+1 {
		fs.DeadLetters++
		return
	}
	var act fault.Action
	if perturb {
		act = plan.Decide(round, sender, pos)
	}
	if act.Drop {
		fs.Dropped++
		return
	}
	if act.Delay > fs.Stall {
		fs.Stall = act.Delay
	}
	next[to] = append(next[to], msg)
	*msgs++
	*vol += sz
	if act.Dup {
		fs.Duplicated++
		next[to] = append(next[to], msg)
		*msgs++
		*vol += sz
	}
}

// recordFailure keeps the first node-program failure of the run; Run
// checks for one after every step.
func (e *Engine) recordFailure(err error) {
	e.failMu.Lock()
	if e.failErr == nil {
		e.failErr = err
	}
	e.failMu.Unlock()
}

// failure returns the captured node-program failure, if any.
func (e *Engine) failure() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

// collect moves queued messages into next-round inboxes. Walking senders
// in increasing node index (= increasing ID) order delivers every inbox
// already sorted by (sender, queue position) — the order the legacy
// engine produced with a global stable sort — without sorting. Inbox
// slices are truncated and refilled in place, so steady-state rounds
// allocate nothing. With an observer attached it also reports the
// round's message/volume deltas and the inbox high-water mark; shards is
// the count step actually used, so RoundStart and RoundEnd always agree.
//
// With a fault schedule attached, delivery runs on this single driving
// goroutine in the same (sender, queue position) order, so each
// message's fault coordinates — and hence the whole schedule — are
// identical under every ExecMode. Without one, the loop is the original
// branch-free path.
func (e *Engine) collect(obs RoundObserver, round, shards int, ctxs []Context, next [][]Message, res *Result, crashed []graph.ID) {
	msgs, vol := 0, 0
	var fs FaultStats
	faulty := e.Faults.active()
	if !faulty {
		// Counting pass: reserve every receiving inbox at its exact fill
		// before delivering, so a round's delivery performs at most one
		// allocation per inbox whose high-water mark rises (instead of a
		// doubling ramp), and the delivery appends never move memory.
		// Inboxes were truncated as the step consumed them, so only this
		// round's receivers — the touched list — need any work at all.
		if e.deliver == nil {
			e.deliver = make([]int32, len(next))
		}
		cnt := e.deliver
		touched := e.touched[:0]
		total := 0
		for i := range ctxs {
			c := &ctxs[i]
			for _, to := range c.targets {
				if to >= 0 {
					total++
					if cnt[to] == 0 {
						touched = append(touched, to)
					}
					cnt[to]++
					continue
				}
				total += len(c.nbrIdx)
				for _, u := range c.nbrIdx {
					if cnt[u] == 0 {
						touched = append(touched, u)
					}
					cnt[u]++
				}
			}
		}
		e.touched = touched
		e.slabIdx ^= 1
		slab := e.inboxSlab[e.slabIdx]
		if cap(slab) < total {
			slab = make([]Message, 0, total)
			e.inboxSlab[e.slabIdx] = slab
		}
		pos := 0
		for _, to := range touched {
			c := int(cnt[to])
			cnt[to] = 0
			next[to] = slab[pos : pos : pos+c]
			pos += c
		}
		for i := range ctxs {
			c := &ctxs[i]
			for k, msg := range c.outbox {
				sz := 1
				if s, ok := msg.Payload.(Sizer); ok {
					sz = s.PayloadSize()
				}
				if to := c.targets[k]; to >= 0 {
					next[to] = append(next[to], msg)
					msgs++
					vol += sz
					continue
				}
				for _, u := range c.nbrIdx {
					next[u] = append(next[u], msg)
				}
				msgs += len(c.nbrIdx)
				vol += sz * len(c.nbrIdx)
			}
			c.outbox = c.outbox[:0]
			c.targets = c.targets[:0]
		}
	} else {
		for i := range next {
			next[i] = next[i][:0]
		}
		fs.Round = round
		fs.Crashed = crashed
		plan := e.Faults.Plan
		perturb := plan.Perturbs()
		for i := range ctxs {
			c := &ctxs[i]
			// pos is the queue position over the expanded send sequence —
			// a Broadcast counts one position per neighbor — so fault
			// coordinates match the uncompressed outbox exactly.
			pos := 0
			for k, msg := range c.outbox {
				sz := 1
				if s, ok := msg.Payload.(Sizer); ok {
					sz = s.PayloadSize()
				}
				if to := c.targets[k]; to >= 0 {
					e.deliverFaulty(msg, to, round, i, pos, sz, perturb, plan, next, &fs, &msgs, &vol)
					pos++
					continue
				}
				for _, u := range c.nbrIdx {
					e.deliverFaulty(msg, u, round, i, pos, sz, perturb, plan, next, &fs, &msgs, &vol)
					pos++
				}
			}
			c.outbox = c.outbox[:0]
			c.targets = c.targets[:0]
		}
	}
	res.Messages += msgs
	res.Volume += vol
	if faulty && fs.any() {
		res.Dropped += fs.Dropped
		res.Duplicated += fs.Duplicated
		res.DeadLetters += fs.DeadLetters
		res.Stall += fs.Stall
		if fo, ok := obs.(FaultObserver); ok {
			fo.FaultRound(fs)
		}
	}
	if obs != nil {
		maxInbox := 0
		for i := range next {
			if len(next[i]) > maxInbox {
				maxInbox = len(next[i])
			}
		}
		obs.RoundEnd(RoundStats{
			Round:    round,
			Nodes:    len(ctxs),
			Shards:   shards,
			Messages: msgs,
			Volume:   vol,
			Done:     int(e.doneCount.Load()),
			MaxInbox: maxInbox,
		})
	}
}
