package dist

// IdxSet is a small open-addressing hash set of int32 snapshot indices,
// used for per-node dedup state in flooding protocols. Entries are
// stored +1 so the zero value of a table slot means empty; the zero
// value of IdxSet is an empty set ready for use. Compared to
// map[int32]struct{} it allocates only on growth and never boxes.
type IdxSet struct {
	table []int32
	n     int
}

// idxSetMinCap is the first table size. Flooding dedup sets typically
// reach the radius-ball size, so starting a bit above the minimum skips
// the earliest rehash ramps without bloating nodes that stay small.
const idxSetMinCap = 16

func idxSetHash(x int32, mask uint32) uint32 {
	return (uint32(x) * 2654435761) & mask
}

// Has reports whether x is in the set.
func (s *IdxSet) Has(x int32) bool {
	if s.n == 0 {
		return false
	}
	mask := uint32(len(s.table) - 1)
	for h := idxSetHash(x, mask); ; h = (h + 1) & mask {
		e := s.table[h]
		if e == 0 {
			return false
		}
		if e == x+1 {
			return true
		}
	}
}

// Add inserts x and reports whether it was newly added.
func (s *IdxSet) Add(x int32) bool {
	if 4*(s.n+1) > 3*len(s.table) {
		s.grow()
	}
	mask := uint32(len(s.table) - 1)
	for h := idxSetHash(x, mask); ; h = (h + 1) & mask {
		e := s.table[h]
		if e == 0 {
			s.table[h] = x + 1
			s.n++
			return true
		}
		if e == x+1 {
			return false
		}
	}
}

// Len returns the number of elements.
func (s *IdxSet) Len() int { return s.n }

// Reserve presizes an empty set so n elements fit without rehashing; on
// a non-empty set it is a no-op. A capacity hint only — the set still
// grows past it as needed.
func (s *IdxSet) Reserve(n int) {
	if s.n > 0 || n <= 0 {
		return
	}
	need := idxSetMinCap
	for 4*n > 3*need {
		need *= 2
	}
	if need > len(s.table) {
		s.table = make([]int32, need)
	}
}

// Reset empties the set, keeping the table for reuse.
func (s *IdxSet) Reset() {
	for i := range s.table {
		s.table[i] = 0
	}
	s.n = 0
}

func (s *IdxSet) grow() {
	oldTable := s.table
	newCap := idxSetMinCap
	if len(oldTable) > 0 {
		newCap = 2 * len(oldTable)
	}
	s.table = make([]int32, newCap)
	mask := uint32(newCap - 1)
	for _, e := range oldTable {
		if e == 0 {
			continue
		}
		for h := idxSetHash(e-1, mask); ; h = (h + 1) & mask {
			if s.table[h] == 0 {
				s.table[h] = e
				break
			}
		}
	}
}

// IdxMap is an open-addressing hash map from int32 snapshot indices to
// int32 values, the map counterpart of IdxSet. The zero value is an
// empty map ready for use.
type IdxMap struct {
	keys []int32 // stored +1; 0 = empty
	vals []int32
	n    int
}

// Get returns the value for x and whether it is present.
func (m *IdxMap) Get(x int32) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	mask := uint32(len(m.keys) - 1)
	for h := idxSetHash(x, mask); ; h = (h + 1) & mask {
		e := m.keys[h]
		if e == 0 {
			return 0, false
		}
		if e == x+1 {
			return m.vals[h], true
		}
	}
}

// Put sets the value for x, reporting whether the key was newly added.
func (m *IdxMap) Put(x, v int32) bool {
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	mask := uint32(len(m.keys) - 1)
	for h := idxSetHash(x, mask); ; h = (h + 1) & mask {
		e := m.keys[h]
		if e == 0 {
			m.keys[h] = x + 1
			m.vals[h] = v
			m.n++
			return true
		}
		if e == x+1 {
			m.vals[h] = v
			return false
		}
	}
}

// Len returns the number of entries.
func (m *IdxMap) Len() int { return m.n }

func (m *IdxMap) grow() {
	oldKeys, oldVals := m.keys, m.vals
	newCap := idxSetMinCap
	if len(oldKeys) > 0 {
		newCap = 2 * len(oldKeys)
	}
	m.keys = make([]int32, newCap)
	m.vals = make([]int32, newCap)
	mask := uint32(newCap - 1)
	for i, e := range oldKeys {
		if e == 0 {
			continue
		}
		for h := idxSetHash(e-1, mask); ; h = (h + 1) & mask {
			if m.keys[h] == 0 {
				m.keys[h] = e
				m.vals[h] = oldVals[i]
				break
			}
		}
	}
}
