package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// echoProtocol floods a counter for a fixed number of rounds.
type echoProtocol struct {
	rounds int
	target int
	sum    int
}

func (p *echoProtocol) Init(ctx *Context) { ctx.Broadcast(1) }
func (p *echoProtocol) Round(ctx *Context, inbox []Message) {
	if p.rounds >= p.target {
		return
	}
	p.rounds++
	for _, m := range inbox {
		p.sum += m.Payload.(int)
	}
	if p.rounds < p.target {
		ctx.Broadcast(1)
	}
}
func (p *echoProtocol) Done() bool  { return p.rounds >= p.target }
func (p *echoProtocol) Output() any { return p.sum }

func TestEngineRoundsAndDelivery(t *testing.T) {
	g := gen.Cycle(6)
	for _, sequential := range []bool{true, false} {
		eng := NewEngine(g, func(v graph.ID) Protocol {
			return &echoProtocol{target: 3}
		})
		eng.Sequential = sequential
		res, err := eng.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != 3 {
			t.Fatalf("sequential=%v: rounds = %d, want 3", sequential, res.Rounds)
		}
		// Each node receives 2 messages per round for 3 rounds.
		for v, out := range res.Outputs {
			if out.(int) != 6 {
				t.Fatalf("sequential=%v: node %d sum = %d, want 6", sequential, v, out)
			}
		}
	}
}

func TestEngineTimeout(t *testing.T) {
	g := gen.Path(3)
	eng := NewEngine(g, func(v graph.ID) Protocol {
		return &echoProtocol{target: 100}
	})
	if _, err := eng.Run(5); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestEngineConcurrentMatchesSequential(t *testing.T) {
	g := gen.RandomChordal(40, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 7)
	run := func(sequential bool) map[graph.ID]any {
		eng := NewEngine(g, func(v graph.ID) Protocol {
			return &echoProtocol{target: 4}
		})
		eng.Sequential = sequential
		res, err := eng.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	seq := run(true)
	con := run(false)
	for v := range seq {
		if seq[v] != con[v] {
			t.Fatalf("node %d: sequential %v != concurrent %v", v, seq[v], con[v])
		}
	}
}

func TestCollectBallsExactBalls(t *testing.T) {
	g := gen.RandomChordal(30, gen.ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.5}, 3)
	for _, radius := range []int{0, 1, 2, 4} {
		know, rounds, err := CollectBalls(g, radius, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != radius {
			t.Fatalf("radius %d: rounds = %d", radius, rounds)
		}
		for _, v := range g.Nodes() {
			k := know[v]
			wantBall := g.Ball(v, radius)
			if k.Size() != len(wantBall) {
				t.Fatalf("radius %d node %d: knows %d nodes, want %d",
					radius, v, k.Size(), len(wantBall))
			}
			for _, u := range wantBall {
				wantDist := g.Distance(v, u)
				if d, ok := k.DistOf(u); !ok || d != wantDist {
					t.Fatalf("radius %d node %d: dist[%d] = %d (known %v), want %d",
						radius, v, u, d, ok, wantDist)
				}
			}
			// Ball graph equals the true induced subgraph.
			ball := k.BallGraph(radius)
			want := g.InducedSubgraph(wantBall)
			if !ball.Equal(want) {
				t.Fatalf("radius %d node %d: ball graph mismatch", radius, v)
			}
		}
	}
}

func TestCollectBallsNotes(t *testing.T) {
	g := gen.Path(5)
	notes := map[graph.ID]any{0: "a", 4: "b"}
	know, _, err := CollectBalls(g, 4, notes)
	if err != nil {
		t.Fatal(err)
	}
	k := know[2]
	if k.Note(0) != "a" || k.Note(4) != "b" {
		t.Fatalf("notes not propagated: %v, %v", k.Note(0), k.Note(4))
	}
	if k.Note(1) != nil {
		t.Fatal("unexpected note on node 1")
	}
}

func TestCollectBallsDisconnected(t *testing.T) {
	g := gen.Path(4)
	g.AddEdge(10, 11)
	know, _, err := CollectBalls(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if know[0].Known(10) {
		t.Fatal("knowledge crossed components")
	}
	if know[10].Size() != 2 {
		t.Fatalf("node 10 knows %d nodes, want 2", know[10].Size())
	}
}
