package dist

import (
	"fmt"

	"repro/internal/graph"
)

// NodeInfo is the unit of knowledge the full-information flooding protocol
// disseminates: a node's identity, its full adjacency list, and an
// arbitrary annotation (e.g. its layer number).
type NodeInfo struct {
	Node graph.ID
	Adj  []graph.ID
	Note any
	// idx is the node's dense index in the engine's graph snapshot; it
	// travels with the record so receivers can dedup with a bitmap
	// instead of a hash lookup, and so index-space consumers (the
	// pruning decide kernel's view.Ball) can fetch the record's CSR
	// adjacency row straight from the shared snapshot — the record
	// itself stays three words plus the index, since flooding copies
	// every record through many inboxes.
	idx int32
}

// Knowledge is what a node has learned after r rounds of flooding: the
// info of every node at distance at most r, with distances. Records are
// stored in discovery order (distances nondecreasing, center first);
// by-ID lookups go through a position map that is built lazily, so
// flood-only workloads never pay for it. Knowledge is not safe for
// concurrent use.
type Knowledge struct {
	Center graph.ID
	Radius int
	recs   []NodeInfo
	dist   []int32 // aligned with recs
	pos    map[graph.ID]int32
	// seen is the flood protocol's dense dedup bitmap by snapshot index,
	// handed over to the knowledge it built (nil in the sparse-set regime
	// and for retransmitted knowledge). CoversComponent and KnownIdx
	// reuse it so small-n pruning never allocates a per-center position
	// map.
	seen []uint64
	// known is the sparse dedup set by snapshot index — the big-n
	// counterpart of seen, populated by the flood protocol above
	// seenBitmapMaxN and by the retransmitting protocol's rebuild.
	// KnownIdx and CoversComponent resolve through it, so index-space
	// consumers never trigger the lazy position map regardless of n.
	known IdxSet
	// snap is the engine snapshot the flood ran on. Every record carries
	// its snapshot index, so index-space accessors (RecordAt, KnownIdx,
	// the bitmap CoversComponent) resolve adjacency rows through the
	// snapshot's CSR instead of shipping a second slice per record.
	// Non-nil for all protocol-built knowledge.
	snap *graph.Indexed
	// maxDist is the largest distance at which the flood still learned a
	// new node.
	maxDist int
}

// ensurePos returns the ID→record-index map, building it on first use.
// All protocols dedup in index space (bitmap or IdxSet), so only the
// ID-keyed accessors ever pay for this map.
func (k *Knowledge) ensurePos() map[graph.ID]int32 {
	if k.pos == nil {
		k.pos = make(map[graph.ID]int32, len(k.recs))
		for i, rec := range k.recs {
			k.pos[rec.Node] = int32(i)
		}
	}
	return k.pos
}

// Size returns the number of known nodes (the center counts).
func (k *Knowledge) Size() int { return len(k.recs) }

// RecordCount returns the number of records, implementing the decide
// kernel's view.Source.
func (k *Knowledge) RecordCount() int { return len(k.recs) }

// RecordAt returns record i's snapshot index, its hop distance from the
// center, and its adjacency row in snapshot-index space (a shared view —
// read-only), implementing view.Source. Records are in nondecreasing-
// distance discovery order with the center first. Only meaningful when
// IndexReady reports true.
func (k *Knowledge) RecordAt(i int) (idx int32, dist int32, adj []int32) {
	idx = k.recs[i].idx
	return idx, k.dist[i], k.snap.NeighborIndices(int(idx))
}

// IndexReady reports whether the knowledge can resolve records in
// snapshot-index space, i.e. whether RecordAt and KnownIdx are usable.
// True for all knowledge built by the flooding protocols.
func (k *Knowledge) IndexReady() bool { return k.snap != nil }

// KnownIdx reports whether the node at snapshot index i is within the
// collected ball. In the dense-bitmap regime this is a single bit test
// with no map build; in the sparse-set regime a single probe; otherwise
// it falls back to a record scan. Only meaningful when IndexReady
// reports true.
func (k *Knowledge) KnownIdx(i int32) bool {
	if k.seen != nil {
		return k.seen[i>>6]&(1<<(uint(i)&63)) != 0
	}
	if k.known.Len() > 0 {
		return k.known.Has(i)
	}
	for j := range k.recs {
		if k.recs[j].idx == i {
			return true
		}
	}
	return false
}

// Known reports whether v is within the collected ball.
func (k *Knowledge) Known(v graph.ID) bool {
	_, ok := k.ensurePos()[v]
	return ok
}

// DistOf returns the distance from the center to v, and whether v is
// known.
func (k *Knowledge) DistOf(v graph.ID) (int, bool) {
	i, ok := k.ensurePos()[v]
	if !ok {
		return 0, false
	}
	return int(k.dist[i]), true
}

// InfoOf returns the record of a known node.
func (k *Knowledge) InfoOf(v graph.ID) (NodeInfo, bool) {
	i, ok := k.ensurePos()[v]
	if !ok {
		return NodeInfo{}, false
	}
	return k.recs[i], true
}

// CoversComponent reports whether the knowledge provably covers the
// center's entire connected component: the known set is closed under
// adjacency (every known node's full adjacency list is known), which
// for a set containing the center means it IS the component. The
// closure criterion handles the boundary cases a quiescence test
// ("maxDist < Radius") gets wrong — a radius-0 flood on an isolated
// node has maxDist == Radius == 0 yet covers its component, and a ball
// that fills its component on exactly the last hop does too — and,
// unlike quiescence, it stays sound when the flood ran under message
// loss: a drop-truncated ball also quiesces early, but any strict
// subset of a connected component has a member whose adjacency names
// an absent node, so the closure scan reports it uncovered instead of
// letting corrupted knowledge masquerade as complete. Records are
// scanned frontier-first (reverse discovery order): a clipped ball's
// unknown neighbors hang off the last hop, so the common negative
// answer stays near-O(1). False means only that the ball was clipped,
// never that coverage is uncertain.
//
// Whenever the flood's own dedup structure survives — the dense bitmap
// at n ≤ seenBitmapMaxN, the sparse index set above it — the scan runs
// in snapshot-index space against it, so the per-center position map is
// never built: the pruning phase calls this once per undecided center
// per iteration, and the index-space paths keep that allocation-free at
// every n.
func (k *Knowledge) CoversComponent() bool {
	if k.seen != nil && k.snap != nil {
		for i := len(k.recs) - 1; i >= 0; i-- {
			for _, u := range k.snap.NeighborIndices(int(k.recs[i].idx)) {
				if k.seen[u>>6]&(1<<(uint(u)&63)) == 0 {
					return false
				}
			}
		}
		return true
	}
	if k.known.Len() > 0 && k.snap != nil {
		for i := len(k.recs) - 1; i >= 0; i-- {
			for _, u := range k.snap.NeighborIndices(int(k.recs[i].idx)) {
				if !k.known.Has(u) {
					return false
				}
			}
		}
		return true
	}
	pos := k.ensurePos()
	for i := len(k.recs) - 1; i >= 0; i-- {
		for _, u := range k.recs[i].Adj {
			if _, ok := pos[u]; !ok {
				return false
			}
		}
	}
	return true
}

// BallGraph returns the subgraph induced by the known nodes at distance at
// most r from the center. Because each known node carries its full
// adjacency list, the induced subgraph is exact for r <= Radius.
func (k *Knowledge) BallGraph(r int) *graph.Graph {
	return k.FilteredBallGraph(r, func(graph.ID) bool { return true })
}

// FilteredBallGraph returns the subgraph induced by the known nodes at
// distance at most r that satisfy keep — equivalent to
// BallGraph(r).InducedSubgraph of the kept nodes, built in one pass.
// Records are stored in nondecreasing distance order, so both passes stop
// at the first record beyond r.
//
//chordalvet:coldpath map-built ball graph, used only on the radius<2 decide fallback
func (k *Knowledge) FilteredBallGraph(r int, keep func(graph.ID) bool) *graph.Graph {
	g := graph.New()
	pos := k.ensurePos()
	for i, rec := range k.recs {
		if int(k.dist[i]) > r {
			break
		}
		if keep(rec.Node) {
			g.AddNode(rec.Node)
		}
	}
	for i, rec := range k.recs {
		if int(k.dist[i]) > r {
			break
		}
		if !keep(rec.Node) {
			continue
		}
		for _, u := range rec.Adj {
			if j, ok := pos[u]; ok && int(k.dist[j]) <= r && keep(u) {
				g.AddEdge(rec.Node, u)
			}
		}
	}
	return g
}

// Note returns the annotation of a known node (nil if unknown).
func (k *Knowledge) Note(v graph.ID) any {
	if info, ok := k.InfoOf(v); ok {
		return info.Note
	}
	return nil
}

// infoBatch is the flood message payload; its size is its record count.
// Batches travel as *infoBatch so queueing a payload never boxes a slice
// header into an allocation.
type infoBatch []NodeInfo

// PayloadSize implements Sizer.
func (b *infoBatch) PayloadSize() int { return len(*b) }

// seenBitmapMaxN bounds the graphs for which flood protocols dedup with a
// dense per-node bitmap (n²/8 bytes network-wide; 32 MB at the bound).
// Larger networks dedup with a sparse open-addressing set of snapshot
// indices sized by the ball, which costs nothing extra when balls are
// small relative to n — the only regime in which such networks are
// floodable at all.
const seenBitmapMaxN = 1 << 14

// floodProtocol implements incremental full-information flooding: each
// round a node forwards only the NodeInfo records it learned in the
// previous round, so total communication is proportional to the knowledge
// gathered rather than quadratic in it. Fresh records are the tail of the
// knowledge's record slice appended this round; the outgoing batch is a
// capacity-capped view of that tail, so no separate fresh buffer exists.
// The two batch headers alternate because a header written in round r is
// read by neighbors in round r+1 and is dead by round r+2.
type floodProtocol struct {
	radius int
	round  int
	know   *Knowledge
	batch  [2]infoBatch
	seen   []uint64 // dense dedup bitmap by snapshot index; nil for big n
}

func newFloodProtocol(v graph.ID, idx int, ix *graph.Indexed, note any, radius, sizeHint int) *floodProtocol {
	n := ix.NumNodes()
	self := NodeInfo{Node: v, Adj: ix.NeighborIDs(idx), Note: note, idx: int32(idx)}
	k := &Knowledge{
		Center: v,
		Radius: radius,
		recs:   make([]NodeInfo, 0, sizeHint),
		dist:   make([]int32, 0, sizeHint),
		snap:   ix,
	}
	k.recs = append(k.recs, self)
	k.dist = append(k.dist, 0)
	p := &floodProtocol{radius: radius, know: k}
	if n <= seenBitmapMaxN {
		p.seen = make([]uint64, (n+63)/64)
		p.seen[idx>>6] |= 1 << (uint(idx) & 63)
		// The knowledge shares the bitmap: after the run it serves as
		// the index-space membership test (CoversComponent, KnownIdx).
		k.seen = p.seen
	} else {
		// Big-n regime: dedup with the knowledge's own sparse index set,
		// which doubles as its membership test after the run. The lazy
		// position map is built only if an ID-keyed accessor asks.
		k.known.Reserve(sizeHint)
		k.known.Add(int32(idx))
	}
	p.batch[0] = infoBatch(k.recs[0:1:1])
	return p
}

func (p *floodProtocol) Init(ctx *Context) {
	if p.radius > 0 {
		ctx.Broadcast(&p.batch[0])
	}
}

func (p *floodProtocol) Round(ctx *Context, inbox []Message) {
	if p.round >= p.radius {
		return
	}
	p.round++
	k := p.know
	start := len(k.recs)
	for _, m := range inbox {
		for _, info := range *m.Payload.(*infoBatch) {
			if p.seen != nil {
				w, b := info.idx>>6, uint64(1)<<(uint(info.idx)&63)
				if p.seen[w]&b != 0 {
					continue
				}
				p.seen[w] |= b
			} else if !k.known.Add(info.idx) {
				continue
			}
			k.recs = append(k.recs, info)
			k.dist = append(k.dist, int32(p.round))
		}
	}
	if len(k.recs) > start {
		k.maxDist = p.round
		if p.round < p.radius {
			cur := p.round % 2
			p.batch[cur] = infoBatch(k.recs[start:len(k.recs):len(k.recs)])
			ctx.Broadcast(&p.batch[cur])
		}
	}
}

func (p *floodProtocol) Done() bool  { return p.round >= p.radius }
func (p *floodProtocol) Output() any { return p.know }

// maxBallHint caps the per-node presize so a mis-estimate can never
// front-load more memory than the flood would actually gather; slices
// and maps simply grow past it when balls really are larger.
const maxBallHint = 1 << 12

// ballSizeHint estimates |Γ^radius[v]| for presizing knowledge storage:
// the node's own degree for the first hop, average-degree growth after
// that, capped at n and at maxBallHint. Using the average rather than
// the maximum degree matters at scale — one hub must not inflate every
// node's presize. Only a capacity hint; correctness never depends on it.
func ballSizeHint(deg, avgDeg, radius, n int) int {
	if deg == 0 || radius == 0 {
		return 1
	}
	grow := avgDeg - 1
	if grow < 1 {
		grow = 1
	}
	s, f := 1, deg
	for r := 0; r < radius; r++ {
		s += f
		if s >= n || s >= maxBallHint {
			break
		}
		if f > n/grow {
			f = n
		} else {
			f *= grow
		}
	}
	if s > n {
		s = n
	}
	if s > maxBallHint {
		s = maxBallHint
	}
	return s
}

// CollectBalls runs full-information flooding for radius rounds on g, with
// optional per-node annotations, and returns each node's Knowledge. The
// second return value is the number of communication rounds used (always
// radius).
func CollectBalls(g *graph.Graph, radius int, notes map[graph.ID]any) (map[graph.ID]*Knowledge, int, error) {
	out, res, err := CollectBallsStats(g, radius, notes)
	if err != nil {
		return nil, 0, err
	}
	return out, res.Rounds, nil
}

// CollectBallsStats is CollectBalls with the full engine result (rounds,
// message count, volume in NodeInfo records) for bandwidth measurements.
func CollectBallsStats(g *graph.Graph, radius int, notes map[graph.ID]any) (map[graph.ID]*Knowledge, *Result, error) {
	return CollectBallsIndexed(graph.NewIndexed(g), radius, notes)
}

// CollectBallsIndexed is CollectBallsStats on an existing snapshot,
// letting iterated callers (the pruning phase) pay the snapshot cost
// once. Adjacency lists in the disseminated NodeInfo records are shared
// views into the snapshot, so collection allocates no per-node adjacency
// copies.
func CollectBallsIndexed(ix *graph.Indexed, radius int, notes map[graph.ID]any) (map[graph.ID]*Knowledge, *Result, error) {
	return CollectBallsIndexedObserved(ix, radius, notes, nil)
}

// CollectBallsIndexedObserved is CollectBallsIndexed with a RoundObserver
// attached to the flooding engine (nil behaves exactly like
// CollectBallsIndexed).
func CollectBallsIndexedObserved(ix *graph.Indexed, radius int, notes map[graph.ID]any, o RoundObserver) (map[graph.ID]*Knowledge, *Result, error) {
	return CollectBallsIndexedFaulty(ix, radius, notes, o, nil)
}

// CollectBallsIndexedFaulty is CollectBallsIndexedObserved with a fault
// schedule attached to the flooding engine. The protocol itself has no
// retransmission: duplicates are absorbed by its dedup and delays by the
// round-synchronous model, but drops silently shrink the collected balls
// and crashes surface as engine errors — callers that must survive drops
// use CollectBallsRetrans instead.
func CollectBallsIndexedFaulty(ix *graph.Indexed, radius int, notes map[graph.ID]any, o RoundObserver, f *Faults) (map[graph.ID]*Knowledge, *Result, error) {
	var noteOf []any
	if len(notes) > 0 {
		noteOf = make([]any, ix.NumNodes())
		for v, note := range notes {
			if i, ok := ix.IndexOf(v); ok {
				noteOf[i] = note
			}
		}
	}
	ks, res, err := collectBalls(ix, radius, noteOf, o, f, false)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[graph.ID]*Knowledge, len(ks))
	for i, v := range ix.IDs() {
		out[v] = ks[i]
	}
	return out, res, nil
}

// CollectBallsByIndex is the index-space collection path: notes[i]
// annotates the node at snapshot index i (a nil slice means no
// annotations), and the returned knowledge slice is indexed the same
// way. The ID-keyed variants above are wrappers over it; iterated
// big-n callers — the pruning phase floods a million-node snapshot once
// per iteration — use it directly, so neither an n-entry note map nor
// an n-entry output map is ever built.
func CollectBallsByIndex(ix *graph.Indexed, radius int, notes []any, o RoundObserver, f *Faults) ([]*Knowledge, *Result, error) {
	return collectBalls(ix, radius, notes, o, f, true)
}

// collectBalls runs the flood engine and hands each node's knowledge
// back by snapshot index. skipOutputs elides the engine's ID-keyed
// Result.Outputs map (the protocols themselves are the by-index output
// channel); the ID-keyed wrappers keep it populated for callers that
// read the Result directly.
func collectBalls(ix *graph.Indexed, radius int, notes []any, o RoundObserver, f *Faults, skipOutputs bool) ([]*Knowledge, *Result, error) {
	n := ix.NumNodes()
	avgDeg := 0
	if n > 0 {
		avgDeg = 2 * ix.NumEdges() / n
	}
	ps := make([]*floodProtocol, n)
	eng := NewEngineIndexed(ix, func(v graph.ID) Protocol {
		i, _ := ix.IndexOf(v)
		var note any
		if notes != nil {
			note = notes[i]
		}
		hint := ballSizeHint(ix.Degree(i), avgDeg, radius, n)
		ps[i] = newFloodProtocol(v, i, ix, note, radius, hint)
		return ps[i]
	})
	eng.Observer = o
	eng.Faults = f
	eng.SkipOutputs = skipOutputs
	res, err := eng.Run(radius + 1)
	if err != nil {
		return nil, nil, fmt.Errorf("flooding: %w", err)
	}
	out := make([]*Knowledge, n)
	for i, p := range ps {
		out[i] = p.know
	}
	return out, res, nil
}
