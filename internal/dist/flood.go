package dist

import (
	"fmt"

	"repro/internal/graph"
)

// NodeInfo is the unit of knowledge the full-information flooding protocol
// disseminates: a node's identity, its full adjacency list, and an
// arbitrary annotation (e.g. its layer number).
type NodeInfo struct {
	Node graph.ID
	Adj  []graph.ID
	Note any
}

// Knowledge is what a node has learned after r rounds of flooding: the
// info of every node at distance at most r, with distances.
type Knowledge struct {
	Center graph.ID
	Radius int
	Info   map[graph.ID]NodeInfo
	Dist   map[graph.ID]int
}

// BallGraph returns the subgraph induced by the known nodes at distance at
// most r from the center. Because each known node carries its full
// adjacency list, the induced subgraph is exact for r <= Radius.
func (k *Knowledge) BallGraph(r int) *graph.Graph {
	g := graph.New()
	for v, d := range k.Dist {
		if d <= r {
			g.AddNode(v)
		}
	}
	for v, d := range k.Dist {
		if d > r {
			continue
		}
		for _, u := range k.Info[v].Adj {
			if du, ok := k.Dist[u]; ok && du <= r {
				g.AddEdge(v, u)
			}
		}
	}
	return g
}

// Note returns the annotation of a known node (nil if unknown).
func (k *Knowledge) Note(v graph.ID) any {
	if info, ok := k.Info[v]; ok {
		return info.Note
	}
	return nil
}

// infoBatch is the flood message payload; its size is its record count.
type infoBatch []NodeInfo

// PayloadSize implements Sizer.
func (b infoBatch) PayloadSize() int { return len(b) }

// floodProtocol implements incremental full-information flooding: each
// round a node forwards only the NodeInfo records it learned in the
// previous round, so total communication is proportional to the knowledge
// gathered rather than quadratic in it.
type floodProtocol struct {
	radius int
	round  int
	know   *Knowledge
	fresh  []NodeInfo
}

func newFloodProtocol(v graph.ID, adj []graph.ID, note any, radius int) *floodProtocol {
	self := NodeInfo{Node: v, Adj: adj, Note: note}
	return &floodProtocol{
		radius: radius,
		know: &Knowledge{
			Center: v,
			Radius: radius,
			Info:   map[graph.ID]NodeInfo{v: self},
			Dist:   map[graph.ID]int{v: 0},
		},
		fresh: []NodeInfo{self},
	}
}

func (p *floodProtocol) Init(ctx *Context) {
	if p.radius > 0 {
		ctx.Broadcast(infoBatch(p.fresh))
	}
}

func (p *floodProtocol) Round(ctx *Context, inbox []Message) {
	if p.round >= p.radius {
		return
	}
	p.round++
	var fresh []NodeInfo
	for _, m := range inbox {
		for _, info := range m.Payload.(infoBatch) {
			if _, known := p.know.Dist[info.Node]; !known {
				p.know.Info[info.Node] = info
				p.know.Dist[info.Node] = p.round
				fresh = append(fresh, info)
			}
		}
	}
	p.fresh = fresh
	if p.round < p.radius && len(fresh) > 0 {
		ctx.Broadcast(infoBatch(fresh))
	}
}

func (p *floodProtocol) Done() bool  { return p.round >= p.radius }
func (p *floodProtocol) Output() any { return p.know }

// CollectBalls runs full-information flooding for radius rounds on g, with
// optional per-node annotations, and returns each node's Knowledge. The
// second return value is the number of communication rounds used (always
// radius).
func CollectBalls(g *graph.Graph, radius int, notes map[graph.ID]any) (map[graph.ID]*Knowledge, int, error) {
	out, res, err := CollectBallsStats(g, radius, notes)
	if err != nil {
		return nil, 0, err
	}
	return out, res.Rounds, nil
}

// CollectBallsStats is CollectBalls with the full engine result (rounds,
// message count, volume in NodeInfo records) for bandwidth measurements.
func CollectBallsStats(g *graph.Graph, radius int, notes map[graph.ID]any) (map[graph.ID]*Knowledge, *Result, error) {
	eng := NewEngine(g, func(v graph.ID) Protocol {
		return newFloodProtocol(v, g.Neighbors(v), notes[v], radius)
	})
	res, err := eng.Run(radius + 1)
	if err != nil {
		return nil, nil, fmt.Errorf("flooding: %w", err)
	}
	out := make(map[graph.ID]*Knowledge, len(res.Outputs))
	for v, o := range res.Outputs {
		out[v] = o.(*Knowledge)
	}
	return out, res, nil
}
