package dist

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// recordingObserver captures every engine callback. It is test-local so
// package dist needs no import of internal/obs (which imports dist).
type recordingObserver struct {
	mu          sync.Mutex
	runNodes    int
	runEdges    int
	rounds      []RoundStats
	roundStarts []int
	shardStarts map[int]int // shard index -> count
	shardEnds   map[int]int
	runEnds     []int
	phases      []string
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{shardStarts: make(map[int]int), shardEnds: make(map[int]int)}
}

func (r *recordingObserver) RunStart(nodes, edges int) {
	r.runNodes, r.runEdges = nodes, edges
}
func (r *recordingObserver) RoundStart(round, shards int) {
	r.roundStarts = append(r.roundStarts, round)
}
func (r *recordingObserver) ShardStart(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardStarts[shard]++
}
func (r *recordingObserver) ShardEnd(shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shardEnds[shard]++
}
func (r *recordingObserver) RoundEnd(stats RoundStats) {
	r.rounds = append(r.rounds, stats)
}
func (r *recordingObserver) RunEnd(rounds int) {
	r.runEnds = append(r.runEnds, rounds)
}
func (r *recordingObserver) SetPhase(name string) {
	r.phases = append(r.phases, name)
}

// scheduleFree strips the schedule-dependent Shards field, leaving only
// the values promised identical across ExecModes.
func scheduleFree(stats []RoundStats) []RoundStats {
	out := append([]RoundStats(nil), stats...)
	for i := range out {
		out[i].Shards = 0
	}
	return out
}

// TestObserverDeterministicAcrossModes runs the same protocol under all
// three schedules and requires identical event counts and values — every
// RoundStats field except Shards is a pure function of (graph, protocol).
func TestObserverDeterministicAcrossModes(t *testing.T) {
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 9)
	run := func(mode ExecMode) *recordingObserver {
		rec := newRecordingObserver()
		eng := NewEngine(g, func(v graph.ID) Protocol {
			return &echoProtocol{target: 4}
		})
		eng.Mode = mode
		eng.Observer = rec
		if _, err := eng.Run(10); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	pooled := run(ModePooled)
	perNode := run(ModePerNode)
	seq := run(ModeSequential)

	for _, rec := range []*recordingObserver{pooled, perNode, seq} {
		if rec.runNodes != g.NumNodes() || rec.runEdges != g.NumEdges() {
			t.Errorf("RunStart saw n=%d m=%d, want n=%d m=%d", rec.runNodes, rec.runEdges, g.NumNodes(), g.NumEdges())
		}
		if len(rec.runEnds) != 1 {
			t.Fatalf("RunEnd fired %d times, want 1", len(rec.runEnds))
		}
		// One RoundStart and one RoundEnd per step (Init = round 0).
		if len(rec.rounds) != rec.runEnds[0]+1 || len(rec.roundStarts) != len(rec.rounds) {
			t.Errorf("got %d RoundEnds and %d RoundStarts for %d rounds", len(rec.rounds), len(rec.roundStarts), rec.runEnds[0])
		}
	}
	if !reflect.DeepEqual(scheduleFree(pooled.rounds), scheduleFree(seq.rounds)) {
		t.Errorf("pooled and sequential traces differ:\n%+v\nvs\n%+v", pooled.rounds, seq.rounds)
	}
	if !reflect.DeepEqual(scheduleFree(perNode.rounds), scheduleFree(seq.rounds)) {
		t.Errorf("per-node and sequential traces differ:\n%+v\nvs\n%+v", perNode.rounds, seq.rounds)
	}
	// Schedule shape: sequential runs exactly one shard per round;
	// per-node reports zero shards and no shard events.
	for _, st := range seq.rounds {
		if st.Shards != 1 {
			t.Errorf("sequential round %d: shards=%d, want 1", st.Round, st.Shards)
		}
	}
	if len(perNode.shardStarts) != 0 || len(perNode.shardEnds) != 0 {
		t.Errorf("per-node mode fired shard events: %v", perNode.shardStarts)
	}
	for shard, n := range pooled.shardStarts {
		if pooled.shardEnds[shard] != n {
			t.Errorf("shard %d: %d starts but %d ends", shard, n, pooled.shardEnds[shard])
		}
	}
	// The per-round Done counts are monotone and end at n.
	last := seq.rounds[len(seq.rounds)-1]
	if last.Done != g.NumNodes() {
		t.Errorf("final Done=%d, want %d", last.Done, g.NumNodes())
	}
	for i := 1; i < len(seq.rounds); i++ {
		if seq.rounds[i].Done < seq.rounds[i-1].Done {
			t.Errorf("Done regressed from %d to %d at round %d (echo protocol never un-finishes)",
				seq.rounds[i-1].Done, seq.rounds[i].Done, i)
		}
	}
}

// sizedPayload gives each message an explicit size in Sizer units.
type sizedPayload struct{ size int }

func (s sizedPayload) PayloadSize() int { return s.size }

// sizerProtocol sends one sized message per neighbor for two rounds.
type sizerProtocol struct {
	size   int
	rounds int
}

func (p *sizerProtocol) Init(ctx *Context) {
	for _, u := range ctx.Neighbors() {
		ctx.Send(u, sizedPayload{size: p.size})
	}
}
func (p *sizerProtocol) Round(ctx *Context, inbox []Message) {
	if p.rounds++; p.rounds < 2 {
		for _, u := range ctx.Neighbors() {
			ctx.Send(u, sizedPayload{size: p.size})
		}
	}
}
func (p *sizerProtocol) Done() bool  { return p.rounds >= 2 }
func (p *sizerProtocol) Output() any { return nil }

// TestResultVolumeWithSizer checks that Result.Volume and the per-round
// observer Volume both honour Sizer payloads instead of counting 1 per
// message.
func TestResultVolumeWithSizer(t *testing.T) {
	g := gen.Cycle(5)
	rec := newRecordingObserver()
	eng := NewEngine(g, func(v graph.ID) Protocol {
		return &sizerProtocol{size: 7}
	})
	eng.Observer = rec
	res, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// 5 nodes × 2 neighbors × 2 sending steps (Init + round 1).
	wantMsgs := 5 * 2 * 2
	if res.Messages != wantMsgs {
		t.Fatalf("messages=%d, want %d", res.Messages, wantMsgs)
	}
	if res.Volume != 7*wantMsgs {
		t.Errorf("volume=%d, want %d (Sizer units)", res.Volume, 7*wantMsgs)
	}
	sum := 0
	for _, st := range rec.rounds {
		sum += st.Volume
		if st.Messages > 0 && st.Volume != 7*st.Messages {
			t.Errorf("round %d: volume=%d for %d messages, want %d", st.Round, st.Volume, st.Messages, 7*st.Messages)
		}
	}
	if sum != res.Volume {
		t.Errorf("per-round volumes sum to %d, result says %d", sum, res.Volume)
	}
}

// mixedSizeProtocol sends one Sizer and one plain payload per round, so
// both accounting branches run in one engine pass.
type mixedSizeProtocol struct{ done bool }

func (p *mixedSizeProtocol) Init(ctx *Context) {
	nbrs := ctx.Neighbors()
	ctx.Send(nbrs[0], sizedPayload{size: 10})
	ctx.Send(nbrs[0], "plain")
}
func (p *mixedSizeProtocol) Round(ctx *Context, inbox []Message) { p.done = true }
func (p *mixedSizeProtocol) Done() bool                          { return p.done }
func (p *mixedSizeProtocol) Output() any                         { return nil }

func TestResultVolumeMixedPayloads(t *testing.T) {
	g := gen.Cycle(4)
	eng := NewEngine(g, func(v graph.ID) Protocol {
		return &mixedSizeProtocol{}
	})
	res, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// Per node: one 10-unit payload + one default 1-unit payload.
	if want := 4 * (10 + 1); res.Volume != want {
		t.Errorf("volume=%d, want %d", res.Volume, want)
	}
}

// sendEverywhereProtocol exercises every Send target class: self
// (precomputed index), neighbors (binary search on the sorted row), and
// a distant node (map fallback).
type sendEverywhereProtocol struct {
	far    graph.ID
	got    map[graph.ID]int
	rounds int
}

func (p *sendEverywhereProtocol) Init(ctx *Context) {
	ctx.Send(ctx.ID(), 1)
	for _, u := range ctx.Neighbors() {
		ctx.Send(u, 1)
	}
	ctx.Send(p.far, 1)
}
func (p *sendEverywhereProtocol) Round(ctx *Context, inbox []Message) {
	if p.rounds++; p.rounds > 1 {
		return
	}
	for _, m := range inbox {
		p.got[m.From]++
	}
}
func (p *sendEverywhereProtocol) Done() bool  { return p.rounds >= 1 }
func (p *sendEverywhereProtocol) Output() any { return p.got }

// TestSendTargetClasses pins the Send fast path's correctness: self and
// distant sends must deliver exactly like neighbor sends.
func TestSendTargetClasses(t *testing.T) {
	g := gen.Path(6) // IDs 0..5 in a path; 0 and 5 are not adjacent
	eng := NewEngine(g, func(v graph.ID) Protocol {
		far := graph.ID(5)
		if v == 5 {
			far = 0
		}
		return &sendEverywhereProtocol{far: far, got: make(map[graph.ID]int)}
	})
	eng.Mode = ModeSequential
	res, err := eng.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		got := out.(map[graph.ID]int)
		// Self delivery.
		if got[v] != 1 {
			t.Errorf("node %d: self message count %d, want 1", v, got[v])
		}
		// Neighbor delivery.
		for _, u := range g.Neighbors(v) {
			if got[u] < 1 {
				t.Errorf("node %d: missing message from neighbor %d", v, u)
			}
		}
	}
	// Distant sends: node 0 heard from 5 and vice versa (each node sent
	// to its far endpoint).
	for _, pair := range [][2]graph.ID{{0, 5}, {5, 0}} {
		got := res.Outputs[pair[0]].(map[graph.ID]int)
		if got[pair[1]] != 1 {
			t.Errorf("node %d: distant message count from %d = %d, want 1", pair[0], pair[1], got[pair[1]])
		}
	}
}

// TestSendUnknownTarget pins the Send error contract: the node-program
// panic is recovered by the engine and surfaced as an error from Run —
// under every ExecMode, without deadlocking the worker pool (see also
// adversarial_test.go for the full mode matrix).
func TestSendUnknownTarget(t *testing.T) {
	g := gen.Path(3)
	eng := NewEngine(g, func(v graph.ID) Protocol {
		return &badSenderProtocol{}
	})
	eng.Mode = ModeSequential
	_, err := eng.Run(10)
	if err == nil {
		t.Fatal("send to a non-node did not surface an error from Run")
	}
	if !strings.Contains(err.Error(), "not a node of the network") {
		t.Errorf("error %q does not name the bad target", err)
	}
}

type badSenderProtocol struct{ done bool }

func (p *badSenderProtocol) Init(ctx *Context)                   { ctx.Send(graph.ID(999), 1) }
func (p *badSenderProtocol) Round(ctx *Context, inbox []Message) { p.done = true }
func (p *badSenderProtocol) Done() bool                          { return p.done }
func (p *badSenderProtocol) Output() any                         { return nil }

// oscillatingProtocol reports Done on even rounds and not-done on odd
// rounds until it finally settles: the engine's done counter must track
// transitions in both directions.
type oscillatingProtocol struct {
	rounds int
	settle int
}

func (p *oscillatingProtocol) Init(ctx *Context) { ctx.Broadcast(1) }
func (p *oscillatingProtocol) Round(ctx *Context, inbox []Message) {
	p.rounds++
	if p.rounds < p.settle {
		ctx.Broadcast(1)
	}
}
func (p *oscillatingProtocol) Done() bool {
	if p.rounds >= p.settle {
		return true
	}
	return p.rounds%2 == 0
}
func (p *oscillatingProtocol) Output() any { return p.rounds }

// TestDoneCounterOscillation ensures the incremental done counter stays
// correct when Done() flips back and forth (the contract allows it: the
// run stops only when all nodes are simultaneously Done after a round).
func TestDoneCounterOscillation(t *testing.T) {
	g := gen.Cycle(4)
	for _, mode := range []ExecMode{ModePooled, ModePerNode, ModeSequential} {
		// settle=5 (odd): nodes report done after even rounds 2 and 4
		// but un-done after 1, 3; all settle for good at round 5.
		eng := NewEngine(g, func(v graph.ID) Protocol {
			return &oscillatingProtocol{settle: 5}
		})
		eng.Mode = mode
		res, err := eng.Run(20)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		// All nodes report Done after round 2 already (rounds=2 is even),
		// so the run stops there — the point is the counter must agree.
		for v, out := range res.Outputs {
			if out.(int) != res.Rounds {
				t.Errorf("mode %v: node %d ran %d rounds, engine says %d", mode, v, out, res.Rounds)
			}
		}
	}
}
