package dist

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Faults attaches a deterministic fault-injection schedule to an Engine:
// a message-perturbation plan (drop / duplicate / delay, decided per
// message by fault.Plan) plus a crash schedule mapping node IDs to the
// round at which they fail-stop. A nil *Faults on the engine keeps the
// existing zero-cost delivery path; a non-nil plan is consulted once per
// queued message at the round boundary, on the single goroutine that
// drives delivery, so the schedule is identical under every ExecMode.
//
// Semantics in the round-synchronous LOCAL model:
//
//   - Delay is absorbed: a synchronous round is only complete once every
//     message of the round has arrived, so a link delay of d rounds does
//     not change what is delivered or when — it lengthens the round. The
//     engine charges it as synchronizer stall time (per round, the max
//     delay over the round's messages) in Result.Stall.
//   - Duplication delivers one extra copy at the adjacent queue position.
//     Well-behaved protocols (flooding dedup, correction-phase seen-sets)
//     absorb it; outputs must stay byte-identical.
//   - Drop removes the message entirely. Protocols built for the
//     failure-free model are expected to corrupt or diverge — loudly
//     (cross-checks downstream turn this into diagnosable errors) — and
//     CollectBallsRetrans exists to tolerate it.
//   - A node crashed at round r executes steps 0..r-1 (Init is step 0)
//     and nothing afterwards; messages queued to it from step r-1 onwards
//     (i.e. delivered at step r or later) become dead letters. If the
//     run can no longer terminate because every live node is Done but a
//     crashed node is not, Run fails with an error naming the node.
type Faults struct {
	// Plan decides per-message drop/dup/delay actions.
	Plan fault.Plan
	// Crash maps a node ID to the first step it does NOT execute
	// (crash at round 0 means the node never even runs Init).
	Crash map[graph.ID]int

	// Spec and Seed record the ParseFaults inputs that produced this
	// schedule. The partitioned runtime ships them to shard processes,
	// which re-parse the spec locally — the schedule is a pure function
	// of (Spec, Seed), so both sides decide identically. Hand-built
	// Faults values leave Spec empty and cannot be partitioned.
	Spec string
	Seed uint64
}

// active reports whether the schedule can perturb anything.
func (f *Faults) active() bool {
	return f != nil && (f.Plan.Perturbs() || len(f.Crash) > 0)
}

// ErrFaultsInactive reports a fault spec that parsed successfully but
// describes a schedule that can never perturb anything: every rate is
// zero and no crash is listed. An empty spec is the documented
// "no plan requested" case and does NOT produce this error; a non-empty
// inert spec almost always is a misconfiguration (a typo'd rate of 0.0
// would otherwise silently run a fault-free "chaos" experiment), so
// ParseFaults surfaces it as a typed sentinel that callers match with
// errors.Is or the IsInactive helper.
var ErrFaultsInactive = errors.New("fault spec is inactive: all rates zero and no crashes")

// IsInactive reports whether err is (or wraps) ErrFaultsInactive.
func IsInactive(err error) bool { return errors.Is(err, ErrFaultsInactive) }

// ParseFaults parses a fault spec string (see fault.Parse for the
// grammar) into a Faults plan keyed by seed. An empty (or all-blank)
// spec returns (nil, nil) — no plan requested, the engine's fast path.
// A non-empty spec that parses to a schedule which cannot perturb
// anything returns (nil, ErrFaultsInactive) so callers can distinguish
// "no plan requested" from "plan parsed empty" and fail loudly on
// misconfiguration.
func ParseFaults(spec string, seed uint64) (*Faults, error) {
	plan, crash, err := fault.Parse(spec, seed)
	if err != nil {
		return nil, err
	}
	f := &Faults{Plan: plan, Spec: spec, Seed: seed}
	if len(crash) > 0 {
		f.Crash = make(map[graph.ID]int, len(crash))
		for id, r := range crash {
			f.Crash[graph.ID(id)] = r
		}
	}
	if !f.active() {
		if isBlank(spec) {
			return nil, nil
		}
		return nil, fmt.Errorf("fault: %q: %w", spec, ErrFaultsInactive)
	}
	return f, nil
}

// isBlank reports whether a spec requests nothing at all (empty or
// whitespace), mirroring fault.Parse's empty-spec fast path.
func isBlank(spec string) bool {
	for _, c := range spec {
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return false
		}
	}
	return true
}

// FaultStats summarizes the fault events of one round boundary. A stats
// value is only reported (via FaultObserver) when at least one field is
// non-zero.
type FaultStats struct {
	// Round matches RoundStats.Round: 0 for the Init step, then the
	// 1-based communication round whose outboxes were delivered.
	Round int
	// Dropped / Duplicated count messages removed / doubled this round.
	Dropped    int
	Duplicated int
	// DeadLetters counts messages addressed to already-crashed nodes.
	DeadLetters int
	// Stall is the synchronizer stall charged this round: the maximum
	// link delay over the round's delivered messages.
	Stall int
	// Crashed lists the nodes that crashed at this step, in ID order.
	Crashed []graph.ID
}

func (fs *FaultStats) any() bool {
	return fs.Dropped != 0 || fs.Duplicated != 0 || fs.DeadLetters != 0 ||
		fs.Stall != 0 || len(fs.Crashed) != 0
}

// FaultObserver is an optional extension of RoundObserver: observers
// that also implement it receive a FaultRound callback — from the
// goroutine driving Run, just before the matching RoundEnd — for every
// round in which the fault schedule did something. Rounds without fault
// events produce no callback, so fault-free traces are unchanged.
type FaultObserver interface {
	FaultRound(stats FaultStats)
}

// initFaults validates the crash schedule against the snapshot and
// builds the per-index crash tables. Called by Run before the Init step.
func (e *Engine) initFaults() error {
	e.crashAt = nil
	e.dead = nil
	f := e.Faults
	if !f.active() || len(f.Crash) == 0 {
		return nil
	}
	n := e.ix.NumNodes()
	e.crashAt = make([]int, n)
	for i := range e.crashAt {
		e.crashAt[i] = -1 // never crashes
	}
	e.dead = make([]bool, n)
	for v, r := range f.Crash {
		i, ok := e.ix.IndexOf(v)
		if !ok {
			return fmt.Errorf("dist: fault plan crashes node %d, which is not a node of the network", v)
		}
		e.crashAt[i] = r
	}
	return nil
}

// markCrashes flips nodes whose crash round is step into the dead set
// and returns them in ID order (node index order = ID order). A dead
// node that was not Done counts against termination; crashBlocked turns
// that into a diagnosable error instead of a maxRounds timeout.
func (e *Engine) markCrashes(step int) []graph.ID {
	if e.crashAt == nil {
		return nil
	}
	var crashed []graph.ID
	for i, r := range e.crashAt {
		if r == step {
			e.dead[i] = true
			crashed = append(crashed, e.ix.IDOf(i))
		}
	}
	sortIDs(crashed)
	return crashed
}

// crashBlocked reports the first crashed-but-not-Done node when every
// live node is Done, i.e. when the run can never terminate.
func (e *Engine) crashBlocked() (graph.ID, int, bool) {
	if e.dead == nil {
		return 0, 0, false
	}
	deadNotDone := 0
	first := -1
	for i := range e.dead {
		if e.dead[i] && !e.done[i] {
			deadNotDone++
			if first < 0 {
				first = i
			}
		}
	}
	if deadNotDone == 0 {
		return 0, 0, false
	}
	if int(e.doneCount.Load())+deadNotDone == len(e.progs) {
		return e.ix.IDOf(first), e.crashAt[first], true
	}
	return 0, 0, false
}

// sortIDs sorts a crash list into ID order. markCrashes already emits in
// index order, which equals ID order for snapshots built from sorted
// node lists; this keeps the reported order canonical regardless.
func sortIDs(ids []graph.ID) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}
