package dist

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Coordinator drives one partitioned program run over a Partition,
// implementing the LOCAL engine's round/observer/faults contracts: the
// same step sequence, the same termination and crash-blocked checks in
// the same order, the same error strings, and the same per-round
// RoundStats/FaultStats — so traces, experiment tables, and fault plans
// are byte-identical between LOCAL and partitioned execution (only
// RoundStats.Shards, which describes the schedule and is excluded from
// deterministic trace comparison, reports the shard count instead of
// the worker-pool width).
type Coordinator struct {
	ix      *graph.Indexed
	part    *Partition
	program string
	params  []byte

	// Observer, Faults, and SkipOutputs mirror the Engine fields of the
	// same names.
	Observer    RoundObserver
	Faults      *Faults
	SkipOutputs bool

	prog    Program
	crashAt []int // by snapshot index; nil without a crash schedule

	outByIdx []any
	ran      bool

	wireIn, wireOut int64
}

// NewCoordinator prepares a partitioned run of the named program over
// ix. The partition's ranges must cover [0, n) contiguously. The
// program is instantiated coordinator-side too — with the exact
// (params, snapshot) every shard receives — to decode outputs.
func NewCoordinator(ix *graph.Indexed, part *Partition, program string, params []byte) (*Coordinator, error) {
	n := int32(ix.NumNodes())
	if len(part.Links) == 0 || len(part.Links) != len(part.Ranges) {
		return nil, fmt.Errorf("dist: partition has %d links for %d ranges", len(part.Links), len(part.Ranges))
	}
	want := int32(0)
	for s, rg := range part.Ranges {
		if rg.Lo != want || rg.Hi <= rg.Lo {
			return nil, fmt.Errorf("dist: partition range %d is [%d, %d), want contiguous from %d", s, rg.Lo, rg.Hi, want)
		}
		want = rg.Hi
	}
	if want != n {
		return nil, fmt.Errorf("dist: partition covers [0, %d), snapshot has %d nodes", want, n)
	}
	prog, err := NewProgram(program, ix, params)
	if err != nil {
		return nil, err
	}
	return &Coordinator{ix: ix, part: part, program: program, params: params, prog: prog}, nil
}

// initFaults mirrors Engine.initFaults: validate the crash schedule and
// build the global crash tables the coordinator uses for the per-round
// Crashed lists. It also rejects hand-built fault plans that did not
// come from ParseFaults — without the (Spec, Seed) pair the schedule
// cannot be reproduced on the shards.
func (c *Coordinator) initFaults() error {
	f := c.Faults
	if !f.active() {
		return nil
	}
	if f.Spec == "" {
		return fmt.Errorf("dist: partitioned runs need a ParseFaults-built schedule (hand-built Faults carry no spec to ship to shards)")
	}
	if len(f.Crash) == 0 {
		return nil
	}
	n := c.ix.NumNodes()
	c.crashAt = make([]int, n)
	for i := range c.crashAt {
		c.crashAt[i] = -1
	}
	for v, r := range f.Crash {
		i, ok := c.ix.IndexOf(v)
		if !ok {
			return fmt.Errorf("dist: fault plan crashes node %d, which is not a node of the network", v)
		}
		c.crashAt[i] = r
	}
	return nil
}

// markCrashes mirrors Engine.markCrashes for the coordinator's own
// Crashed-list bookkeeping (shards mark their local ranges themselves).
func (c *Coordinator) markCrashes(step int) []graph.ID {
	if c.crashAt == nil {
		return nil
	}
	var crashed []graph.ID
	for i, r := range c.crashAt {
		if r == step {
			crashed = append(crashed, c.ix.IDOf(i))
		}
	}
	sortIDs(crashed)
	return crashed
}

// meterDelta samples every metered link and returns the bytes moved
// since the previous sample.
func (c *Coordinator) meterDelta() (dIn, dOut int64, metered bool) {
	var in, out int64
	for _, l := range c.part.Links {
		if m, ok := l.(WireMeter); ok {
			metered = true
			li, lo := m.WireBytes()
			in += li
			out += lo
		}
	}
	dIn, dOut = in-c.wireIn, out-c.wireOut
	c.wireIn, c.wireOut = in, out
	return dIn, dOut, metered
}

// step runs one partitioned step: broadcast Step to every shard, await
// results in shard order, route the cross-shard blocks, deliver, and
// await the inbox high-water acks. It aggregates the shard counters
// into the run result and fires the observer exactly like the LOCAL
// engine's step+collect.
func (c *Coordinator) step(round int, res *Result, crashed []graph.ID) (doneTotal, deadNotDone int, blockedIdx int32, blockedRound int, err error) {
	obs := c.Observer
	links := c.part.Links
	if obs != nil {
		obs.RoundStart(round, len(links))
	}
	for _, l := range links {
		if err := l.Step(round); err != nil {
			return 0, 0, -1, 0, err
		}
	}
	results := make([]*ShardStepResult, len(links))
	var failure error
	for s, l := range links {
		r, err := l.StepResult()
		if err != nil {
			return 0, 0, -1, 0, err
		}
		if r.Err != "" && failure == nil {
			failure = errors.New(r.Err)
		}
		results[s] = r
	}
	if failure != nil {
		return 0, 0, -1, 0, failure
	}

	msgs, vol := 0, 0
	fs := FaultStats{Round: round, Crashed: crashed}
	blockedIdx = -1
	for _, r := range results {
		doneTotal += r.Done
		deadNotDone += r.DeadNotDone
		if r.BlockedIdx >= 0 && blockedIdx < 0 {
			blockedIdx, blockedRound = r.BlockedIdx, r.BlockedRound
		}
		msgs += r.Messages
		vol += r.Volume
		fs.Dropped += r.Dropped
		fs.Duplicated += r.Duplicated
		fs.DeadLetters += r.DeadLetters
		if r.Stall > fs.Stall {
			fs.Stall = r.Stall
		}
	}

	// Route: for each destination shard, concatenate the per-source
	// blocks in shard order. Source blocks are in sender order and
	// shards are ascending contiguous ranges, so each destination
	// receives its copies in global sender order.
	route := make([][]PartMsg, len(links))
	for _, r := range results {
		for _, m := range r.Msgs {
			d := c.part.shardOf(m.To)
			route[d] = append(route[d], m)
		}
	}
	for s, l := range links {
		if err := l.Deliver(round, route[s]); err != nil {
			return 0, 0, -1, 0, err
		}
	}
	maxInbox := 0
	for _, l := range links {
		mi, err := l.DeliverResult()
		if err != nil {
			return 0, 0, -1, 0, err
		}
		if mi > maxInbox {
			maxInbox = mi
		}
	}

	res.Messages += msgs
	res.Volume += vol
	if c.Faults.active() && fs.any() {
		res.Dropped += fs.Dropped
		res.Duplicated += fs.Duplicated
		res.DeadLetters += fs.DeadLetters
		res.Stall += fs.Stall
		if fo, ok := obs.(FaultObserver); ok {
			fo.FaultRound(fs)
		}
	}
	if obs != nil {
		if wo, ok := obs.(WireObserver); ok {
			if dIn, dOut, metered := c.meterDelta(); metered {
				wo.WireRound(round, dIn, dOut)
			}
		}
		obs.RoundEnd(RoundStats{
			Round:    round,
			Nodes:    c.ix.NumNodes(),
			Shards:   len(links),
			Messages: msgs,
			Volume:   vol,
			Done:     doneTotal,
			MaxInbox: maxInbox,
		})
	}
	return doneTotal, deadNotDone, blockedIdx, blockedRound, nil
}

// Run executes the partitioned program until every node is Done, or
// fails after maxRounds rounds, following Engine.Run's control flow
// decision for decision.
func (c *Coordinator) Run(maxRounds int) (*Result, error) {
	if c.ran {
		return nil, fmt.Errorf("dist: Coordinator.Run called twice; protocol state is terminal after a run — build a new coordinator")
	}
	c.ran = true
	if err := c.initFaults(); err != nil {
		return nil, err
	}
	n := c.ix.NumNodes()
	faultSpec, faultSeed := "", uint64(0)
	if c.Faults.active() {
		faultSpec, faultSeed = c.Faults.Spec, c.Faults.Seed
	}
	for s, l := range c.part.Links {
		err := l.Start(ShardConfig{
			Lo: c.part.Ranges[s].Lo, Hi: c.part.Ranges[s].Hi,
			Program: c.program, Params: c.params,
			FaultSpec: faultSpec, FaultSeed: faultSeed,
			MaxRounds: maxRounds,
		})
		if err != nil {
			return nil, err
		}
	}
	c.meterDelta() // baseline: Start/Session traffic is not a round's

	obs := c.Observer
	if obs != nil {
		obs.RunStart(n, c.ix.NumEdges())
	}
	res := &Result{}
	crashed := c.markCrashes(0)
	doneTotal, deadNotDone, blockedIdx, blockedRound, err := c.step(0, res, crashed)
	if err != nil {
		return nil, err
	}
	for doneTotal != n {
		if deadNotDone > 0 && doneTotal+deadNotDone == n {
			return nil, fmt.Errorf("dist: node %d crashed at round %d and cannot finish; all surviving nodes are done",
				c.ix.IDOf(int(blockedIdx)), blockedRound)
		}
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("protocol did not terminate within %d rounds", maxRounds)
		}
		res.Rounds++
		crashed = c.markCrashes(res.Rounds)
		doneTotal, deadNotDone, blockedIdx, blockedRound, err = c.step(res.Rounds, res, crashed)
		if err != nil {
			return nil, err
		}
	}

	c.outByIdx = make([]any, n)
	for s, l := range c.part.Links {
		data, err := l.Outputs()
		if err != nil {
			return nil, err
		}
		rg := c.part.Ranges[s]
		if len(data) != int(rg.Hi-rg.Lo) {
			return nil, fmt.Errorf("dist: shard %d returned %d outputs for range [%d, %d)", s, len(data), rg.Lo, rg.Hi)
		}
		for j, d := range data {
			out, err := c.prog.DecodeOutput(int(rg.Lo)+j, d)
			if err != nil {
				return nil, fmt.Errorf("dist: output decoding failed for index %d: %w", int(rg.Lo)+j, err)
			}
			c.outByIdx[int(rg.Lo)+j] = out
		}
	}
	if !c.SkipOutputs {
		res.Outputs = make(map[graph.ID]any, n)
		for i, v := range c.ix.IDs() {
			res.Outputs[v] = c.outByIdx[i]
		}
	}
	if obs != nil {
		obs.RunEnd(res.Rounds)
	}
	return res, nil
}

// OutputsByIndex returns every node's decoded output by snapshot index.
// Valid after a successful Run, regardless of SkipOutputs.
func (c *Coordinator) OutputsByIndex() []any { return c.outByIdx }
