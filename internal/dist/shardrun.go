package dist

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/graph"
)

// ShardRunner hosts one contiguous node range of a partitioned run. It
// executes the range's protocols step by step under the coordinator's
// direction, mirroring the LOCAL engine's semantics exactly: nodes run
// in index order (the sequential schedule — all schedules are
// observationally identical), inboxes are truncated as they are
// consumed, Quiescent protocols skip empty-inbox rounds, crashed nodes
// stop executing, and every outgoing copy is routed through the fault
// schedule sender-side with global coordinates.
type ShardRunner struct {
	ix     *graph.Indexed
	lo, hi int32
	prog   Program

	progs     []Protocol // by local offset i-lo
	ctxs      []Context
	curRound  int32
	quiescent bool

	done      []bool // by local offset
	doneCount int

	faults  *Faults
	crashAt []int  // by GLOBAL index; nil without a crash schedule
	dead    []bool // by local offset

	inbox  [][]Message // by local offset; the current round's inboxes
	staged [][]Message // by local offset; local-destination copies of the step
	out    []PartMsg

	stepped bool // a step ran since the last Deliver (barrier misuse guard)
}

// NewShardRunner builds a runner for range [cfg.Lo, cfg.Hi) of ix. The
// fault schedule is re-parsed locally from (FaultSpec, FaultSeed) — it
// is a pure function of the pair, so every shard and the coordinator
// decide identically without shipping schedule state.
func NewShardRunner(ix *graph.Indexed, cfg ShardConfig) (*ShardRunner, error) {
	n := ix.NumNodes()
	if cfg.Lo < 0 || cfg.Hi > int32(n) || cfg.Lo >= cfg.Hi {
		return nil, fmt.Errorf("dist: shard range [%d, %d) invalid for %d nodes", cfg.Lo, cfg.Hi, n)
	}
	prog, err := NewProgram(cfg.Program, ix, cfg.Params)
	if err != nil {
		return nil, err
	}
	r := &ShardRunner{
		ix:   ix,
		lo:   cfg.Lo,
		hi:   cfg.Hi,
		prog: prog,
	}
	if cfg.FaultSpec != "" {
		f, err := ParseFaults(cfg.FaultSpec, cfg.FaultSeed)
		if err != nil {
			return nil, err
		}
		r.faults = f
	}
	local := int(cfg.Hi - cfg.Lo)
	r.progs = make([]Protocol, local)
	r.ctxs = make([]Context, local)
	r.done = make([]bool, local)
	r.inbox = make([][]Message, local)
	r.staged = make([][]Message, local)
	r.quiescent = local > 0
	for j := range r.progs {
		i := int(cfg.Lo) + j
		r.progs[j] = prog.NewNode(i)
		if _, ok := r.progs[j].(Quiescent); !ok {
			r.quiescent = false
		}
		r.ctxs[j] = Context{
			id:     ix.IDOf(i),
			idx:    int32(i),
			nbrIDs: ix.NeighborIDs(i),
			nbrIdx: ix.NeighborIndices(i),
			ix:     ix,
			round:  &r.curRound,
		}
	}
	if r.faults != nil && len(r.faults.Crash) > 0 {
		r.crashAt = make([]int, n)
		for i := range r.crashAt {
			r.crashAt[i] = -1
		}
		r.dead = make([]bool, local)
		for v, round := range r.faults.Crash {
			i, ok := ix.IndexOf(v)
			if !ok {
				return nil, fmt.Errorf("dist: fault plan crashes node %d, which is not a node of the network", v)
			}
			r.crashAt[i] = round
		}
	}
	return r, nil
}

// Step executes step round (0 = Init) on every live local node and
// routes the outboxes: local-destination copies are staged for the
// coming Deliver, remote copies are returned in sender order. All
// delivery accounting — including drops, duplicates, dead letters, and
// stall — is charged here, sender-side, so the coordinator's sums equal
// the LOCAL engine's counters field for field.
func (r *ShardRunner) Step(round int) *ShardStepResult {
	r.curRound = int32(round)
	r.stepped = true
	if r.crashAt != nil {
		for j := range r.dead {
			if r.crashAt[int(r.lo)+j] == round {
				r.dead[j] = true
			}
		}
	}
	res := &ShardStepResult{Round: round, BlockedIdx: -1}
	if err := r.runNodes(round); err != nil {
		res.Err = err.Error()
		return res
	}
	r.route(round, res)
	res.Done = r.doneCount
	if r.dead != nil {
		for j := range r.dead {
			if r.dead[j] && !r.done[j] {
				res.DeadNotDone++
				if res.BlockedIdx < 0 {
					res.BlockedIdx = r.lo + int32(j)
					res.BlockedRound = r.crashAt[int(r.lo)+j]
				}
			}
		}
	}
	return res
}

// runNodes runs the step's protocol calls in local index order with the
// engine's panic recovery: a panicking node program aborts the
// remaining range and surfaces as the engine-formatted error.
func (r *ShardRunner) runNodes(round int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("dist: node program panicked: %v", rec)
		}
	}()
	for j := range r.progs {
		if r.dead != nil && r.dead[j] {
			continue
		}
		if round == 0 {
			r.progs[j].Init(&r.ctxs[j])
		} else {
			if r.quiescent && len(r.inbox[j]) == 0 {
				continue
			}
			inbox := r.inbox[j]
			r.inbox[j] = r.inbox[j][:0]
			r.progs[j].Round(&r.ctxs[j], inbox)
		}
		if d := r.progs[j].Done(); d != r.done[j] {
			r.done[j] = d
			if d {
				r.doneCount++
			} else {
				r.doneCount--
			}
		}
	}
	return nil
}

// route walks the step's outboxes in sender order, expanding broadcasts
// over neighbor rows, and delivers each copy through the fault schedule
// with global (round, sender, queue position) coordinates — the LOCAL
// engine's exact delivery pass, with remote copies encoded instead of
// appended.
func (r *ShardRunner) route(round int, res *ShardStepResult) {
	r.out = r.out[:0]
	var plan fault.Plan
	perturb := false
	if r.faults.active() {
		plan = r.faults.Plan
		perturb = plan.Perturbs()
	}
	for j := range r.ctxs {
		c := &r.ctxs[j]
		sender := int(r.lo) + j
		pos := 0
		var encErr error
		for k, msg := range c.outbox {
			sz := 1
			if s, ok := msg.Payload.(Sizer); ok {
				sz = s.PayloadSize()
			}
			var enc []byte // lazily encoded once per outbox entry
			deliver := func(to int32) {
				if r.crashAt != nil && r.crashAt[to] >= 0 && r.crashAt[to] <= round+1 {
					res.DeadLetters++
					return
				}
				var act fault.Action
				if perturb {
					act = plan.Decide(round, sender, pos)
				}
				if act.Drop {
					res.Dropped++
					return
				}
				if act.Delay > res.Stall {
					res.Stall = act.Delay
				}
				copies := 1
				if act.Dup {
					res.Duplicated++
					copies = 2
				}
				for range copies {
					if to >= r.lo && to < r.hi {
						off := to - r.lo
						r.staged[off] = append(r.staged[off], msg)
					} else {
						if enc == nil && encErr == nil {
							enc, encErr = r.prog.EncodePayload(msg.Payload)
						}
						r.out = append(r.out, PartMsg{From: int32(sender), To: to, Data: enc})
					}
					res.Messages++
					res.Volume += sz
				}
			}
			if to := c.targets[k]; to >= 0 {
				deliver(to)
				pos++
			} else {
				for _, u := range c.nbrIdx {
					deliver(u)
					pos++
				}
			}
		}
		c.outbox = c.outbox[:0]
		c.targets = c.targets[:0]
		if encErr != nil && res.Err == "" {
			res.Err = fmt.Sprintf("dist: shard payload encoding failed: %v", encErr)
		}
	}
	res.Msgs = r.out
}

// Deliver fills the next round's inboxes from the remote copies the
// coordinator routed here plus the locally staged block. incoming is in
// global sender order and contains no local senders, so it splits at
// the first sender ≥ hi: lower-shard copies, then the staged local
// block, then higher-shard copies — exactly the (sender, queue
// position) order the LOCAL engine delivers. Returns the post-delivery
// inbox high-water mark.
func (r *ShardRunner) Deliver(incoming []PartMsg) (int, error) {
	if !r.stepped {
		return 0, fmt.Errorf("dist: shard Deliver without a preceding Step")
	}
	r.stepped = false
	split := len(incoming)
	for i, m := range incoming {
		if m.From >= r.hi {
			split = i
			break
		}
	}
	appendRemote := func(msgs []PartMsg) error {
		for _, m := range msgs {
			if m.To < r.lo || m.To >= r.hi {
				return fmt.Errorf("dist: misrouted message for index %d on shard [%d, %d)", m.To, r.lo, r.hi)
			}
			pl, err := r.prog.DecodePayload(m.Data)
			if err != nil {
				return fmt.Errorf("dist: shard payload decoding failed: %w", err)
			}
			off := m.To - r.lo
			r.inbox[off] = append(r.inbox[off], Message{From: r.ix.IDOf(int(m.From)), Payload: pl})
		}
		return nil
	}
	if err := appendRemote(incoming[:split]); err != nil {
		return 0, err
	}
	for j := range r.staged {
		if len(r.staged[j]) > 0 {
			r.inbox[j] = append(r.inbox[j], r.staged[j]...)
			r.staged[j] = r.staged[j][:0]
		}
	}
	if err := appendRemote(incoming[split:]); err != nil {
		return 0, err
	}
	maxInbox := 0
	for j := range r.inbox {
		if len(r.inbox[j]) > maxInbox {
			maxInbox = len(r.inbox[j])
		}
	}
	return maxInbox, nil
}

// Outputs encodes every local node's final output, by local offset.
func (r *ShardRunner) Outputs() ([][]byte, error) {
	out := make([][]byte, len(r.progs))
	for j := range r.progs {
		data, err := r.prog.EncodeOutput(int(r.lo)+j, r.progs[j])
		if err != nil {
			return nil, fmt.Errorf("dist: shard output encoding failed for index %d: %w", int(r.lo)+j, err)
		}
		out[j] = data
	}
	return out, nil
}
