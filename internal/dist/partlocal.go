package dist

import (
	"fmt"

	"repro/internal/graph"
)

// LocalLink hosts a ShardRunner in-process behind the ShardLink
// interface. It exists for two reasons: it is the partitioned runtime's
// reference transport — every codec and ordering rule is exercised
// without sockets, so the equality tests against the LOCAL engine
// isolate the runtime's semantics from the wire — and it is the
// fallback when a caller asks for a partitioned run without child
// processes. It deliberately does not implement WireMeter: no bytes
// move.
type LocalLink struct {
	ix     *graph.Indexed
	runner *ShardRunner

	stepRes   *ShardStepResult
	deliverHi int
	deliverEr error
	delivered bool
}

// NewLocalPartition builds an all-in-process partition of ix into parts
// shards.
func NewLocalPartition(ix *graph.Indexed, parts int) *Partition {
	ranges := SplitRange(ix.NumNodes(), parts)
	p := &Partition{Ranges: ranges}
	for range ranges {
		p.Links = append(p.Links, &LocalLink{ix: ix})
	}
	return p
}

// Start implements ShardLink.
func (l *LocalLink) Start(cfg ShardConfig) error {
	r, err := NewShardRunner(l.ix, cfg)
	if err != nil {
		return err
	}
	l.runner = r
	l.stepRes = nil
	l.delivered = false
	return nil
}

// Step implements ShardLink. The work runs synchronously here; the
// begin/await split only matters for transports that pipeline.
func (l *LocalLink) Step(round int) error {
	if l.runner == nil {
		return fmt.Errorf("dist: link used before Start")
	}
	l.stepRes = l.runner.Step(round)
	return nil
}

// StepResult implements ShardLink.
func (l *LocalLink) StepResult() (*ShardStepResult, error) {
	if l.stepRes == nil {
		return nil, fmt.Errorf("dist: StepResult without a preceding Step")
	}
	res := l.stepRes
	l.stepRes = nil
	return res, nil
}

// Deliver implements ShardLink.
func (l *LocalLink) Deliver(round int, msgs []PartMsg) error {
	if l.runner == nil {
		return fmt.Errorf("dist: link used before Start")
	}
	l.deliverHi, l.deliverEr = l.runner.Deliver(msgs)
	l.delivered = true
	return nil
}

// DeliverResult implements ShardLink.
func (l *LocalLink) DeliverResult() (int, error) {
	if !l.delivered {
		return 0, fmt.Errorf("dist: DeliverResult without a preceding Deliver")
	}
	l.delivered = false
	return l.deliverHi, l.deliverEr
}

// Outputs implements ShardLink.
func (l *LocalLink) Outputs() ([][]byte, error) {
	if l.runner == nil {
		return nil, fmt.Errorf("dist: link used before Start")
	}
	return l.runner.Outputs()
}

// Close implements ShardLink.
func (l *LocalLink) Close() error {
	l.runner = nil
	return nil
}
