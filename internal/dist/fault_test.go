package dist

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// faultRecorder implements RoundObserver + FaultObserver, capturing the
// per-round fault stats alongside the regular round stream.
type faultRecorder struct {
	mu     sync.Mutex
	rounds []RoundStats
	faults []FaultStats
}

func (r *faultRecorder) RunStart(nodes, edges int) {}
func (r *faultRecorder) RoundStart(round, shards int) {
	r.mu.Lock()
	defer r.mu.Unlock()
}
func (r *faultRecorder) ShardStart(shard int) {}
func (r *faultRecorder) ShardEnd(shard int)   {}
func (r *faultRecorder) RoundEnd(stats RoundStats) {
	r.mu.Lock()
	r.rounds = append(r.rounds, stats)
	r.mu.Unlock()
}
func (r *faultRecorder) RunEnd(rounds int) {}
func (r *faultRecorder) FaultRound(stats FaultStats) {
	r.mu.Lock()
	r.faults = append(r.faults, stats)
	r.mu.Unlock()
}

// TestNilAndZeroFaultsEquivalent: an all-zero fault plan must behave
// exactly like the nil fast path — same results, no fault counters, no
// FaultRound callbacks.
func TestNilAndZeroFaultsEquivalent(t *testing.T) {
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 3)
	ref := floodRun(t, g, 3)

	rec := &faultRecorder{}
	ix := graph.NewIndexed(g)
	know, res, err := CollectBallsIndexedFaulty(ix, 3, nil, rec, &Faults{})
	if err != nil {
		t.Fatal(err)
	}
	got := floodFingerprint{
		rounds: res.Rounds, messages: res.Messages, volume: res.Volume,
		recs:  make(map[graph.ID][]NodeInfo),
		dists: make(map[graph.ID][]int32),
	}
	for v, k := range know {
		got.recs[v] = k.recs
		got.dists[v] = k.dist
	}
	compareFloodRuns(t, "zero-plan", ref, got)
	if res.Dropped+res.Duplicated+res.DeadLetters+res.Stall != 0 {
		t.Errorf("zero plan produced fault counters: %+v", res)
	}
	if len(rec.faults) != 0 {
		t.Errorf("zero plan produced %d FaultRound callbacks", len(rec.faults))
	}
}

// TestDupAndDelayAbsorbed: the flood dedups duplicates and the
// round-synchronous model absorbs delays, so knowledge must be
// byte-identical to the fault-free run; only the message counters and
// the stall accounting may differ.
func TestDupAndDelayAbsorbed(t *testing.T) {
	g := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 7)
	radius := 4
	ref := floodRun(t, g, radius)

	f := &Faults{Plan: fault.Plan{Seed: 11, Dup: 0.3, MaxDelay: 3}}
	know, res, err := CollectBallsIndexedFaulty(graph.NewIndexed(g), radius, nil, nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicated == 0 {
		t.Fatal("dup=0.3 duplicated nothing")
	}
	if res.Stall == 0 {
		t.Fatal("delay=3 charged no stall")
	}
	for v, k := range know {
		wantRecs, wantDists := ref.recs[v], ref.dists[v]
		if len(k.recs) != len(wantRecs) {
			t.Fatalf("node %d: %d records under dup/delay, want %d", v, len(k.recs), len(wantRecs))
		}
		for i := range wantRecs {
			if k.recs[i].Node != wantRecs[i].Node || k.dist[i] != wantDists[i] {
				t.Fatalf("node %d record %d diverged under dup/delay", v, i)
			}
		}
	}
}

// TestFaultScheduleDeterministicAcrossModes: same (graph, protocol,
// seed, plan) must produce identical results — including the fault
// counters and the per-round fault stream — under all three schedules.
func TestFaultScheduleDeterministicAcrossModes(t *testing.T) {
	g := gen.RandomChordal(150, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 5)
	radius := 3
	run := func() (*Result, *faultRecorder) {
		rec := &faultRecorder{}
		f := &Faults{Plan: fault.Plan{Seed: 99, Drop: 0.1, Dup: 0.1, MaxDelay: 2}}
		_, res, err := CollectBallsIndexedFaulty(graph.NewIndexed(g), radius, nil, rec, f)
		if err != nil {
			t.Fatal(err)
		}
		return res, rec
	}
	var refRes *Result
	var refRec *faultRecorder
	withMode(t, ModeSequential, func() { refRes, refRec = run() })
	for _, m := range []ExecMode{ModePooled, ModePerNode} {
		var gotRes *Result
		var gotRec *faultRecorder
		withMode(t, m, func() { gotRes, gotRec = run() })
		if gotRes.Dropped != refRes.Dropped || gotRes.Duplicated != refRes.Duplicated ||
			gotRes.Stall != refRes.Stall || gotRes.Messages != refRes.Messages ||
			gotRes.Volume != refRes.Volume {
			t.Fatalf("mode %d: fault counters diverged: %+v vs %+v", m, gotRes, refRes)
		}
		if len(gotRec.faults) != len(refRec.faults) {
			t.Fatalf("mode %d: %d fault rounds, want %d", m, len(gotRec.faults), len(refRec.faults))
		}
		for i := range refRec.faults {
			w, g := refRec.faults[i], gotRec.faults[i]
			if w.Round != g.Round || w.Dropped != g.Dropped || w.Duplicated != g.Duplicated ||
				w.Stall != g.Stall || w.DeadLetters != g.DeadLetters {
				t.Fatalf("mode %d fault round %d: %+v, want %+v", m, i, g, w)
			}
		}
	}
}

// TestFaultRoundSumsMatchResult: the per-round FaultStats stream must
// sum to the run's Result counters.
func TestFaultRoundSumsMatchResult(t *testing.T) {
	g := gen.KTree(100, 3, 13)
	rec := &faultRecorder{}
	f := &Faults{Plan: fault.Plan{Seed: 3, Drop: 0.2, Dup: 0.2, MaxDelay: 4}}
	_, res, err := CollectBallsIndexedFaulty(graph.NewIndexed(g), 3, nil, rec, f)
	if err != nil {
		t.Fatal(err)
	}
	var drop, dup, stall int
	for _, fs := range rec.faults {
		drop += fs.Dropped
		dup += fs.Duplicated
		stall += fs.Stall
	}
	if drop != res.Dropped || dup != res.Duplicated || stall != res.Stall {
		t.Errorf("fault stream sums (%d,%d,%d) != result (%d,%d,%d)",
			drop, dup, stall, res.Dropped, res.Duplicated, res.Stall)
	}
	if res.Dropped == 0 || res.Duplicated == 0 || res.Stall == 0 {
		t.Errorf("expected all fault kinds to fire: %+v", res)
	}
}

// TestCrashBlocksRun: a node crashed before it can finish must turn
// into a diagnosable error naming the node, not a timeout.
func TestCrashBlocksRun(t *testing.T) {
	g := gen.Path(6)
	f := &Faults{Crash: map[graph.ID]int{2: 1}}
	_, _, err := CollectBallsIndexedFaulty(graph.NewIndexed(g), 4, nil, nil, f)
	if err == nil {
		t.Fatal("crashed node did not fail the run")
	}
	if !strings.Contains(err.Error(), "node 2 crashed at round 1") {
		t.Errorf("error %q does not name the crashed node and round", err)
	}
}

// TestCrashDeadLetters: messages to a crashed node are counted as dead
// letters and the crash round is reported via FaultRound.
func TestCrashDeadLetters(t *testing.T) {
	g := gen.Path(6)
	rec := &faultRecorder{}
	f := &Faults{Crash: map[graph.ID]int{2: 1}}
	eng := NewEngine(g, func(v graph.ID) Protocol { return &countingProtocol{limit: 3} })
	eng.Observer = rec
	eng.Faults = f
	_, err := eng.Run(10)
	if err == nil {
		t.Fatal("want crash error")
	}
	sawCrash := false
	for _, fs := range rec.faults {
		for _, v := range fs.Crashed {
			if v == 2 {
				if fs.Round != 1 {
					t.Errorf("crash of node 2 reported at round %d, want 1", fs.Round)
				}
				sawCrash = true
			}
		}
	}
	if !sawCrash {
		t.Error("crash of node 2 never reported via FaultRound")
	}
}

// TestCrashUnknownNode: a crash schedule naming a non-node is rejected
// up front.
func TestCrashUnknownNode(t *testing.T) {
	g := gen.Path(3)
	eng := NewEngine(g, func(v graph.ID) Protocol { return &countingProtocol{limit: 2} })
	eng.Faults = &Faults{Crash: map[graph.ID]int{99: 1}}
	_, err := eng.Run(10)
	if err == nil || !strings.Contains(err.Error(), "not a node of the network") {
		t.Fatalf("unknown crash node: err = %v", err)
	}
}

// TestDropCorruptsPlainFlood documents the failure mode the
// retransmitting variant exists for: under drops the round-counted
// flood still "succeeds" but collects strictly less knowledge.
func TestDropCorruptsPlainFlood(t *testing.T) {
	g := gen.KTree(150, 3, 21)
	radius := 3
	ref := floodRun(t, g, radius)
	f := &Faults{Plan: fault.Plan{Seed: 17, Drop: 0.4}}
	know, res, err := CollectBallsIndexedFaulty(graph.NewIndexed(g), radius, nil, nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("drop=0.4 dropped nothing")
	}
	lost := 0
	for v, k := range know {
		if len(k.recs) < len(ref.recs[v]) {
			lost++
		}
	}
	if lost == 0 {
		t.Error("40% drop rate lost no knowledge anywhere — fault injection is not reaching delivery")
	}
}

// TestParseFaults covers the dist-level wrapper: an empty spec collapses
// to (nil, nil) — the documented "no plan requested" fast path — while a
// syntactically valid but inert spec surfaces as ErrFaultsInactive so a
// typo'd rate of 0.0 can no longer silently run a fault-free chaos
// experiment. Crash IDs are converted, and the ParseFaults inputs are
// recorded on the plan for the partitioned runtime.
func TestParseFaults(t *testing.T) {
	if f, err := ParseFaults("", 1); err != nil || f != nil {
		t.Errorf("empty spec: (%v, %v), want (nil, nil)", f, err)
	}
	if f, err := ParseFaults("  \t", 1); err != nil || f != nil {
		t.Errorf("blank spec: (%v, %v), want (nil, nil)", f, err)
	}
	f, err := ParseFaults("drop=0,dup=0", 1)
	if f != nil {
		t.Errorf("no-op spec returned a plan: %+v", f)
	}
	if !IsInactive(err) {
		t.Errorf("no-op spec: err = %v, want ErrFaultsInactive", err)
	}
	if _, err := ParseFaults("delay=0", 1); !IsInactive(err) {
		t.Errorf("delay=0: err = %v, want ErrFaultsInactive", err)
	}
	f, err = ParseFaults("drop=0.5,crash=7@3", 9)
	if err != nil {
		t.Fatal(err)
	}
	if f.Plan.Drop != 0.5 || f.Plan.Seed != 9 || f.Crash[graph.ID(7)] != 3 {
		t.Errorf("parsed %+v", f)
	}
	if f.Spec != "drop=0.5,crash=7@3" || f.Seed != 9 {
		t.Errorf("ParseFaults inputs not recorded: Spec=%q Seed=%d", f.Spec, f.Seed)
	}
	if _, err := ParseFaults("drop=2", 1); err == nil {
		t.Error("bad spec accepted")
	}
	if IsInactive(fmt.Errorf("other")) {
		t.Error("IsInactive matched an unrelated error")
	}
}
