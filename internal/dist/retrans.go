package dist

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// This file implements the retransmitting variant of full-information
// flooding: the graceful-degradation answer to message drops. The plain
// floodProtocol is round-counted — it trusts that every broadcast
// arrives, so a single dropped batch silently truncates a ball. The
// retransmitting protocol instead tracks, per neighbor, the set of
// records it owes that neighbor and keeps resending them every round
// until the neighbor acknowledges each record; a node is Done exactly
// when it owes nothing. Records carry their hop distance and are
// accepted Bellman-Ford style (keep the smaller), so duplicated and
// reordered deliveries are absorbed, and the final Knowledge is
// identical to the fault-free flood's — the price of drops is paid in
// extra rounds and messages, which CollectBallsRetrans reports.
//
// All per-record bookkeeping lives in slot space: each node numbers the
// records it learns 0, 1, 2, … in acceptance order, an IdxMap resolves
// a record's snapshot index to its slot, and the distance/info/queue
// state are dense slices indexed by slot. The only hashing on the
// record path is that single idx→slot probe; everything else — the
// Bellman-Ford relax, the obligation flags, the retransmit walk — is
// array indexing.

// retransRec is one disseminated record: a node's info plus the hop
// distance the receiver would know it at.
type retransRec struct {
	Info NodeInfo
	Hops int32
}

// retransBatch is the data message: every record the sender currently
// owes the receiver. Its payload size is its record count, like
// infoBatch.
type retransBatch struct {
	Recs []retransRec
}

// PayloadSize implements Sizer.
func (b *retransBatch) PayloadSize() int { return len(b.Recs) }

// retransAck acknowledges the records of one received batch: the node
// at snapshot index Idxs[i] is known to the acking node at Hops[i].
// Parallel slices rather than a map so the payload has a deterministic
// order.
type retransAck struct {
	Idxs []int32
	Hops []int32
}

// PayloadSize implements Sizer.
func (a *retransAck) PayloadSize() int { return len(a.Idxs) }

// retransQueue is the per-neighbor obligation set over record slots.
// order records every slot ever enqueued, in first-enqueue order;
// pending marks which of them are currently owed. Retransmission walks
// order, so the batch layout is a deterministic function of the
// protocol history alone.
type retransQueue struct {
	order   []int32
	ever    []bool // by slot: slot appears in order
	pending []bool // by slot: currently owed
	count   int
}

// ensure grows the per-slot flag slices to cover slot indices below n.
func (q *retransQueue) ensure(n int) {
	for len(q.pending) < n {
		q.pending = append(q.pending, false)
		q.ever = append(q.ever, false)
	}
}

type retransProtocol struct {
	v      graph.ID
	ix     *graph.Indexed
	radius int
	nbrs   []graph.ID
	nbrPos map[graph.ID]int

	// slotOf maps a record's snapshot index to its slot; infos and best
	// are the record store and Bellman-Ford distances by slot. Slot 0 is
	// always the node's own record.
	slotOf IdxMap
	infos  []NodeInfo
	best   []int32

	queues       []retransQueue
	pendingCount int
}

func newRetransProtocol(v graph.ID, idx int, ix *graph.Indexed, note any, radius int) *retransProtocol {
	adj := ix.NeighborIDs(idx)
	p := &retransProtocol{
		v:      v,
		ix:     ix,
		radius: radius,
		nbrs:   adj,
		nbrPos: make(map[graph.ID]int, len(adj)),
		infos:  []NodeInfo{{Node: v, Adj: adj, Note: note, idx: int32(idx)}},
		best:   []int32{0},
		queues: make([]retransQueue, len(adj)),
	}
	p.slotOf.Put(int32(idx), 0)
	for i, u := range adj {
		p.nbrPos[u] = i
	}
	return p
}

// enqueueExcept marks slot as owed to every neighbor queue but fromQ —
// the one the record just arrived on: that neighbor offered it, so it
// already knows the record at a hop count at most ours. fromQ < 0
// enqueues to every neighbor (the initial self-record).
func (p *retransProtocol) enqueueExcept(fromQ int, slot int32) {
	for i := range p.queues {
		if i == fromQ {
			continue
		}
		q := &p.queues[i]
		q.ensure(int(slot) + 1)
		if !q.pending[slot] {
			if !q.ever[slot] {
				q.ever[slot] = true
				q.order = append(q.order, slot)
			}
			q.pending[slot] = true
			q.count++
			p.pendingCount++
		}
	}
}

func (p *retransProtocol) Init(ctx *Context) {
	if p.radius > 0 {
		p.enqueueExcept(-1, 0)
	}
	p.retransmit(ctx)
}

func (p *retransProtocol) Round(ctx *Context, inbox []Message) {
	for _, m := range inbox {
		switch pl := m.Payload.(type) {
		case *retransBatch:
			fromQ := p.nbrPos[m.From]
			ack := &retransAck{
				Idxs: make([]int32, 0, len(pl.Recs)),
				Hops: make([]int32, 0, len(pl.Recs)),
			}
			for _, rec := range pl.Recs {
				ri := rec.Info.idx
				slot, known := p.slotOf.Get(ri)
				if !known {
					slot = int32(len(p.infos))
					p.slotOf.Put(ri, slot)
					p.infos = append(p.infos, rec.Info)
					p.best = append(p.best, rec.Hops)
					if int(rec.Hops) < p.radius {
						p.enqueueExcept(fromQ, slot)
					}
				} else if rec.Hops < p.best[slot] {
					p.best[slot] = rec.Hops
					p.infos[slot] = rec.Info
					if int(rec.Hops) < p.radius {
						p.enqueueExcept(fromQ, slot)
					}
				}
				// Always ack, even duplicates: the previous ack may
				// itself have been dropped.
				ack.Idxs = append(ack.Idxs, ri)
				ack.Hops = append(ack.Hops, p.best[slot])
			}
			ctx.Send(m.From, ack)
		case *retransAck:
			q := &p.queues[p.nbrPos[m.From]]
			for i, ri := range pl.Idxs {
				slot, known := p.slotOf.Get(ri)
				if !known || int(slot) >= len(q.pending) {
					continue
				}
				// The obligation is met once the neighbor knows the
				// record at least as well as we could tell it. A stale
				// ack (we have since found a shorter path) keeps the
				// record pending.
				if q.pending[slot] && pl.Hops[i] <= p.best[slot]+1 {
					q.pending[slot] = false
					q.count--
					p.pendingCount--
				}
			}
		}
	}
	p.retransmit(ctx)
}

// retransmit resends every currently-owed record to each neighbor. The
// protocol retries every round rather than waiting out the two-round ack
// latency: the redundancy costs messages, never correctness, and keeps
// the worst-case round overhead at the ack round-trip.
func (p *retransProtocol) retransmit(ctx *Context) {
	for i, u := range p.nbrs {
		q := &p.queues[i]
		if q.count == 0 {
			continue
		}
		batch := &retransBatch{Recs: make([]retransRec, 0, q.count)}
		for _, slot := range q.order {
			if q.pending[slot] {
				batch.Recs = append(batch.Recs, retransRec{Info: p.infos[slot], Hops: p.best[slot] + 1})
			}
		}
		ctx.Send(u, batch)
	}
}

// Done flips back to false when a new record arrives and creates fresh
// obligations; the run ends only when every node simultaneously owes
// nothing.
func (p *retransProtocol) Done() bool { return p.pendingCount == 0 }

// Output rebuilds a Knowledge equivalent to the fault-free flood's: the
// record slice sorted by (hops, id) restores the nondecreasing-distance
// invariant FilteredBallGraph relies on, with the center first. The
// knowledge gets the sparse index set as its membership structure, so
// CoversComponent and KnownIdx take the index-space path like the plain
// flood's.
func (p *retransProtocol) Output() any {
	slots := make([]int32, len(p.infos))
	for i := range slots {
		slots[i] = int32(i)
	}
	slices.SortFunc(slots, func(a, b int32) int {
		if p.best[a] != p.best[b] {
			return int(p.best[a] - p.best[b])
		}
		na, nb := p.infos[a].Node, p.infos[b].Node
		if na < nb {
			return -1
		}
		if na > nb {
			return 1
		}
		return 0
	})
	k := &Knowledge{
		Center: p.v,
		Radius: p.radius,
		recs:   make([]NodeInfo, 0, len(slots)),
		dist:   make([]int32, 0, len(slots)),
		snap:   p.ix,
	}
	k.known.Reserve(len(slots))
	for _, s := range slots {
		k.recs = append(k.recs, p.infos[s])
		k.dist = append(k.dist, p.best[s])
		k.known.Add(p.infos[s].idx)
		if int(p.best[s]) > k.maxDist {
			k.maxDist = int(p.best[s])
		}
	}
	return k
}

// CollectBallsRetrans runs the retransmitting flood for at most budget
// rounds on g under the given fault schedule (nil = fault-free) and
// returns each node's Knowledge plus the engine result; Result.Rounds
// tells the caller how many rounds tolerating the faults cost (the
// fault-free protocol pays radius + 2: the last-hop records still need
// their ack round-trip). A budget too small for the drop rate surfaces
// as the engine's did-not-terminate error, not as silently truncated
// balls.
func CollectBallsRetrans(g *graph.Graph, radius, budget int, notes map[graph.ID]any, f *Faults, o RoundObserver) (map[graph.ID]*Knowledge, *Result, error) {
	ix := graph.NewIndexed(g)
	eng := NewEngineIndexed(ix, func(v graph.ID) Protocol {
		i, _ := ix.IndexOf(v)
		return newRetransProtocol(v, i, ix, notes[v], radius)
	})
	eng.Observer = o
	eng.Faults = f
	res, err := eng.Run(budget)
	if err != nil {
		return nil, nil, fmt.Errorf("retransmitting flood: %w", err)
	}
	out := make(map[graph.ID]*Knowledge, len(res.Outputs))
	for v, o := range res.Outputs {
		out[v] = o.(*Knowledge)
	}
	return out, res, nil
}
